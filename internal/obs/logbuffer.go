package obs

import (
	"context"
	"log/slog"
	"sync"
	"time"
)

// LogRecord is one captured structured log line: flattened attributes plus
// the extracted correlation fields, ready to serve as JSON from /debug/logs.
type LogRecord struct {
	Time      time.Time         `json:"time"`
	Level     string            `json:"level"`
	Component string            `json:"component,omitempty"`
	Message   string            `json:"msg"`
	TraceID   string            `json:"trace_id,omitempty"`
	TaskID    string            `json:"task_id,omitempty"`
	Endpoint  string            `json:"endpoint_id,omitempty"`
	Attrs     map[string]string `json:"attrs,omitempty"`
}

// LogBuffer is a bounded concurrent-safe ring of LogRecords — the queryable
// in-memory logging backend. Memory is fixed: capacity records, oldest
// overwritten first.
type LogBuffer struct {
	mu    sync.Mutex
	ring  []LogRecord
	next  int
	n     int
	total int64
}

// NewLogBuffer returns a buffer retaining up to capacity records
// (<=0 selects DefaultLogCapacity).
func NewLogBuffer(capacity int) *LogBuffer {
	if capacity <= 0 {
		capacity = DefaultLogCapacity
	}
	return &LogBuffer{ring: make([]LogRecord, capacity)}
}

// Append stores one record.
func (b *LogBuffer) Append(rec LogRecord) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ring[b.next] = rec
	b.next = (b.next + 1) % len(b.ring)
	if b.n < len(b.ring) {
		b.n++
	}
	b.total++
}

// Len reports retained records; Total reports all records ever appended.
func (b *LogBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Total reports records appended over the buffer's lifetime (retained or
// overwritten).
func (b *LogBuffer) Total() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.total
}

// snapshot copies the retained records oldest-first (caller-free of locks).
func (b *LogBuffer) snapshot() []LogRecord {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]LogRecord, 0, b.n)
	start := b.next - b.n
	if start < 0 {
		start += len(b.ring)
	}
	for i := 0; i < b.n; i++ {
		out = append(out, b.ring[(start+i)%len(b.ring)])
	}
	return out
}

// Tail returns the most recent n records, oldest-first (n<=0 returns all
// retained).
func (b *LogBuffer) Tail(n int) []LogRecord {
	recs := b.snapshot()
	if n > 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// Query filters retained records; zero-valued fields match everything.
type Query struct {
	TraceID   string
	TaskID    string
	Endpoint  string
	Component string
	MinLevel  slog.Level
	// Limit caps the result from the newest end (0 = no cap).
	Limit int
}

// Search returns retained records matching q, oldest-first.
func (b *LogBuffer) Search(q Query) []LogRecord {
	var out []LogRecord
	for _, r := range b.snapshot() {
		if q.TraceID != "" && r.TraceID != q.TraceID {
			continue
		}
		if q.TaskID != "" && r.TaskID != q.TaskID {
			continue
		}
		if q.Endpoint != "" && r.Endpoint != q.Endpoint {
			continue
		}
		if q.Component != "" && r.Component != q.Component {
			continue
		}
		if parseLevel(r.Level) < q.MinLevel {
			continue
		}
		out = append(out, r)
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// ByTrace returns every retained record correlated to one trace ID — the
// "all log lines for this task's lifecycle" query.
func (b *LogBuffer) ByTrace(id string) []LogRecord {
	return b.Search(Query{TraceID: id})
}

func parseLevel(s string) slog.Level {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return slog.LevelInfo
	}
	return l
}

// handler adapts the buffer into a slog.Handler honoring the pipeline
// level.
func (b *LogBuffer) handler(level slog.Leveler) slog.Handler {
	return &bufferHandler{buf: b, level: level}
}

// bufferHandler captures slog records (including attributes accumulated via
// WithAttrs) into the ring.
type bufferHandler struct {
	buf   *LogBuffer
	level slog.Leveler
	attrs []slog.Attr
	group string
}

func (h *bufferHandler) Enabled(_ context.Context, l slog.Level) bool {
	min := slog.LevelInfo
	if h.level != nil {
		min = h.level.Level()
	}
	return l >= min
}

func (h *bufferHandler) Handle(_ context.Context, r slog.Record) error {
	rec := LogRecord{Time: r.Time, Level: r.Level.String(), Message: r.Message}
	set := func(a slog.Attr) {
		key := a.Key
		if h.group != "" {
			key = h.group + "." + key
		}
		val := a.Value.Resolve().String()
		switch key {
		case KeyComponent:
			rec.Component = val
		case KeyTrace:
			rec.TraceID = val
		case KeyTask:
			rec.TaskID = val
		case KeyEndpoint:
			rec.Endpoint = val
		default:
			if rec.Attrs == nil {
				rec.Attrs = make(map[string]string, 4)
			}
			rec.Attrs[key] = val
		}
	}
	for _, a := range h.attrs {
		set(a)
	}
	r.Attrs(func(a slog.Attr) bool {
		set(a)
		return true
	})
	h.buf.Append(rec)
	return nil
}

func (h *bufferHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := *h
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return &nh
}

func (h *bufferHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if name != "" {
		if nh.group != "" {
			nh.group += "." + name
		} else {
			nh.group = name
		}
	}
	return &nh
}

// multiHandler fans one record out to several handlers.
type multiHandler []slog.Handler

func (m multiHandler) Enabled(ctx context.Context, l slog.Level) bool {
	for _, h := range m {
		if h.Enabled(ctx, l) {
			return true
		}
	}
	return false
}

func (m multiHandler) Handle(ctx context.Context, r slog.Record) error {
	var first error
	for _, h := range m {
		if !h.Enabled(ctx, r.Level) {
			continue
		}
		if err := h.Handle(ctx, r.Clone()); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func (m multiHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	out := make(multiHandler, len(m))
	for i, h := range m {
		out[i] = h.WithAttrs(attrs)
	}
	return out
}

func (m multiHandler) WithGroup(name string) slog.Handler {
	out := make(multiHandler, len(m))
	for i, h := range m {
		out[i] = h.WithGroup(name)
	}
	return out
}

// discardHandler drops everything (a pipeline with no sinks).
type discardHandler struct{}

func (discardHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (discardHandler) Handle(context.Context, slog.Record) error { return nil }
func (discardHandler) WithAttrs([]slog.Attr) slog.Handler        { return discardHandler{} }
func (discardHandler) WithGroup(string) slog.Handler             { return discardHandler{} }
