package obs

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// AlertState is an alert's position in the inactive → pending → firing
// lifecycle.
type AlertState string

const (
	StateInactive AlertState = "inactive"
	StatePending  AlertState = "pending"
	StateFiring   AlertState = "firing"
)

// RuleKind selects a rule's evaluation strategy.
type RuleKind string

const (
	// RuleFailureRatio is a multi-window burn-rate rule over a bad/total
	// counter pair: burn = (bad/total)/Objective per window; firing needs
	// both the fast and slow windows burning, pending needs only the fast
	// one. The slow window filters blips, the fast window bounds detection
	// and recovery latency — the standard SRE-workbook construction.
	RuleFailureRatio RuleKind = "failure_ratio"
	// RuleLatencyP99 breaches when a histogram's p99 exceeds MaxP99: pending
	// on the latest sample, firing when the breach spans the fast window.
	RuleLatencyP99 RuleKind = "latency_p99"
	// RuleGaugeMax breaches when a gauge exceeds Max, with the same
	// pending/firing escalation as RuleLatencyP99.
	RuleGaugeMax RuleKind = "gauge_max"
	// RuleStaleness breaches when an endpoint stops reporting: pending past
	// MaxStaleness, firing past twice MaxStaleness.
	RuleStaleness RuleKind = "staleness"
)

// Rule is one declarative SLO. Only the fields for its Kind are read.
type Rule struct {
	Name string   `json:"name"`
	Kind RuleKind `json:"kind"`

	// Failure-ratio fields.
	BadCounter   string  `json:"bad_counter,omitempty"`
	TotalCounter string  `json:"total_counter,omitempty"`
	Objective    float64 `json:"objective,omitempty"` // tolerated bad/total ratio
	BurnRate     float64 `json:"burn_rate,omitempty"` // firing multiple of Objective

	// Latency fields.
	Histogram string        `json:"histogram,omitempty"`
	MaxP99    time.Duration `json:"max_p99,omitempty"`

	// Gauge fields.
	Gauge string `json:"gauge,omitempty"`
	Max   int64  `json:"max,omitempty"`

	// Staleness field.
	MaxStaleness time.Duration `json:"max_staleness,omitempty"`

	// Evaluation windows (failure ratio, latency, gauge).
	FastWindow time.Duration `json:"fast_window,omitempty"`
	SlowWindow time.Duration `json:"slow_window,omitempty"`
}

// DefaultRules returns the stock fleet SLOs: task round-trip p99, terminal
// failure rate, egress backlog, and heartbeat staleness. Callers scale the
// windows to their deployment (the smoke harness runs them at millisecond
// scale).
func DefaultRules() []Rule {
	return []Rule{
		{
			Name: "task_p99_latency", Kind: RuleLatencyP99,
			Histogram: "ws_task_roundtrip", MaxP99: 5 * time.Second,
			FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		},
		{
			Name: "terminal_failure_rate", Kind: RuleFailureRatio,
			BadCounter: "ws_results_failed", TotalCounter: "ws_results",
			Objective: 0.05, BurnRate: 2,
			FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		},
		{
			// Shed ratio per endpoint: the service counts every submit
			// attempt targeting an endpoint and every shed (queue depth or
			// egress-backlog pressure) against it. Sustained shedding above
			// 10% of offered load means the endpoint is saturated, not
			// blipping.
			Name: "shed_ratio", Kind: RuleFailureRatio,
			BadCounter: "ws_sheds", TotalCounter: "ws_submit_attempts",
			Objective: 0.10, BurnRate: 2,
			FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		},
		{
			Name: "egress_backlog", Kind: RuleGaugeMax,
			Gauge: "egress_backlog", Max: 1000,
			FastWindow: time.Minute, SlowWindow: 5 * time.Minute,
		},
		{
			Name: "heartbeat_staleness", Kind: RuleStaleness,
			MaxStaleness: 30 * time.Second,
		},
	}
}

// Alert is one rule's live status for one endpoint.
type Alert struct {
	Rule       string     `json:"rule"`
	EndpointID string     `json:"endpoint_id"`
	State      AlertState `json:"state"`
	Since      time.Time  `json:"since"`
	Value      float64    `json:"value"`
	Threshold  float64    `json:"threshold"`
	Message    string     `json:"message,omitempty"`
}

// Notifier receives every alert state transition (including recoveries to
// inactive). Hook point for paging/chat integrations; must not block.
type Notifier func(Alert)

// SLOEngine evaluates declarative rules against a FleetStore's ring buffers
// and maintains per-(rule, endpoint) alert state machines.
type SLOEngine struct {
	store *FleetStore

	mu       sync.Mutex
	rules    []Rule
	alerts   map[string]*Alert
	notify   Notifier
	registry *metrics.Registry
	log      *Logger
}

// NewSLOEngine builds an engine over store with the given rules (nil selects
// DefaultRules).
func NewSLOEngine(store *FleetStore, rules []Rule) *SLOEngine {
	if rules == nil {
		rules = DefaultRules()
	}
	return &SLOEngine{
		store:  store,
		rules:  rules,
		alerts: make(map[string]*Alert),
		log:    Component("slo"),
	}
}

// SetNotifier installs the transition hook.
func (e *SLOEngine) SetNotifier(fn Notifier) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.notify = fn
}

// SetRegistry makes the engine export aggregate alert gauges
// (slo_alerts_pending, slo_alerts_firing) and a transition counter
// (slo_alert_transitions) into r on every Evaluate.
func (e *SLOEngine) SetRegistry(r *metrics.Registry) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.registry = r
}

// Rules returns the configured rules.
func (e *SLOEngine) Rules() []Rule {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Rule(nil), e.rules...)
}

// Alerts returns every non-inactive alert, sorted by rule then endpoint.
func (e *SLOEngine) Alerts() []Alert {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Alert, 0, len(e.alerts))
	for _, a := range e.alerts {
		if a.State != StateInactive {
			out = append(out, *a)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rule != out[j].Rule {
			return out[i].Rule < out[j].Rule
		}
		return out[i].EndpointID < out[j].EndpointID
	})
	return out
}

// Evaluate runs every rule against every tracked endpoint, advancing alert
// state machines, notifying on transitions, and refreshing exported gauges.
// It returns the current non-inactive alerts.
func (e *SLOEngine) Evaluate(now time.Time) []Alert {
	ids := e.store.Endpoints()

	e.mu.Lock()
	rules := append([]Rule(nil), e.rules...)
	e.mu.Unlock()

	type verdict struct {
		key              string
		rule             Rule
		id               string
		state            AlertState
		value, threshold float64
		msg              string
	}
	var verdicts []verdict
	for _, r := range rules {
		for _, id := range ids {
			st, val, thr, msg := e.evalRule(r, id, now)
			verdicts = append(verdicts, verdict{
				key: r.Name + "|" + id, rule: r, id: id,
				state: st, value: val, threshold: thr, msg: msg,
			})
		}
	}

	e.mu.Lock()
	var transitions []Alert
	pending, firing := 0, 0
	for _, v := range verdicts {
		a, ok := e.alerts[v.key]
		if !ok {
			a = &Alert{Rule: v.rule.Name, EndpointID: v.id, State: StateInactive, Since: now}
			e.alerts[v.key] = a
		}
		a.Value, a.Threshold, a.Message = v.value, v.threshold, v.msg
		if a.State != v.state {
			a.State = v.state
			a.Since = now
			transitions = append(transitions, *a)
		}
		switch a.State {
		case StatePending:
			pending++
		case StateFiring:
			firing++
		}
	}
	notify := e.notify
	reg := e.registry
	e.mu.Unlock()

	if reg != nil {
		reg.Gauge("slo_alerts_pending").Set(int64(pending))
		reg.Gauge("slo_alerts_firing").Set(int64(firing))
		reg.Counter("slo_alert_transitions").Add(int64(len(transitions)))
	}
	for _, a := range transitions {
		lg := e.log.WithEndpoint(a.EndpointID)
		switch a.State {
		case StateFiring:
			lg.Error("slo alert firing", "rule", a.Rule, "value", a.Value, "threshold", a.Threshold, "detail", a.Message)
		case StatePending:
			lg.Warn("slo alert pending", "rule", a.Rule, "value", a.Value, "threshold", a.Threshold, "detail", a.Message)
		default:
			lg.Info("slo alert resolved", "rule", a.Rule)
		}
		if notify != nil {
			notify(a)
		}
	}
	return e.Alerts()
}

// evalRule computes one rule's state for one endpoint.
func (e *SLOEngine) evalRule(r Rule, id string, now time.Time) (AlertState, float64, float64, string) {
	switch r.Kind {
	case RuleFailureRatio:
		return e.evalFailureRatio(r, id, now)
	case RuleLatencyP99:
		breach := func(s metrics.Snapshot) (float64, bool) {
			hs, ok := s.HistogramValue(r.Histogram)
			if !ok || hs.Count == 0 {
				return 0, false
			}
			return hs.P99.Seconds(), hs.P99 > r.MaxP99
		}
		return e.evalSustained(r, id, now, breach, r.MaxP99.Seconds(), "p99 latency over objective")
	case RuleGaugeMax:
		breach := func(s metrics.Snapshot) (float64, bool) {
			v, ok := s.GaugeValue(r.Gauge)
			if !ok {
				return 0, false
			}
			return float64(v), v > r.Max
		}
		return e.evalSustained(r, id, now, breach, float64(r.Max), "gauge over objective")
	case RuleStaleness:
		stale, ok := e.store.Staleness(id, now)
		if !ok {
			return StateInactive, 0, r.MaxStaleness.Seconds(), ""
		}
		switch {
		case stale > 2*r.MaxStaleness:
			return StateFiring, stale.Seconds(), r.MaxStaleness.Seconds(), "endpoint stopped reporting"
		case stale > r.MaxStaleness:
			return StatePending, stale.Seconds(), r.MaxStaleness.Seconds(), "heartbeats late"
		}
		return StateInactive, stale.Seconds(), r.MaxStaleness.Seconds(), ""
	}
	return StateInactive, 0, 0, ""
}

// evalFailureRatio implements the two-window burn-rate check.
func (e *SLOEngine) evalFailureRatio(r Rule, id string, now time.Time) (AlertState, float64, float64, string) {
	burn := func(w time.Duration) (rate float64, covered, ok bool) {
		bad, span, ok := e.store.CounterDelta(id, r.BadCounter, w, now)
		if !ok {
			return 0, false, false
		}
		total, _, _ := e.store.CounterDelta(id, r.TotalCounter, w, now)
		if total <= 0 {
			return 0, false, false
		}
		// A window is only trustworthy once the ring actually spans most of
		// it; otherwise a cold-start spike would satisfy the slow window with
		// seconds of history and fire without sustained evidence.
		return (float64(bad) / float64(total)) / r.Objective, span >= w/2, true
	}
	fast, _, okFast := burn(r.FastWindow)
	if !okFast {
		return StateInactive, 0, r.BurnRate, ""
	}
	slow, slowCovered, okSlow := burn(r.SlowWindow)
	okSlow = okSlow && slowCovered
	msg := fmt.Sprintf("error budget burning at %.1fx (fast) / %.1fx (slow)", fast, slow)
	switch {
	case fast >= r.BurnRate && okSlow && slow >= r.BurnRate:
		return StateFiring, fast, r.BurnRate, msg
	case fast >= r.BurnRate:
		return StatePending, fast, r.BurnRate, msg
	}
	return StateInactive, fast, r.BurnRate, ""
}

// evalSustained grades point-in-time breach rules: the newest sample
// breaching makes the alert pending; every sample across the fast window
// breaching makes it firing.
func (e *SLOEngine) evalSustained(r Rule, id string, now time.Time, breach func(metrics.Snapshot) (float64, bool), threshold float64, msg string) (AlertState, float64, float64, string) {
	pts := e.store.Points(id)
	if len(pts) == 0 {
		return StateInactive, 0, threshold, ""
	}
	latest := pts[len(pts)-1]
	val, bad := breach(latest.Snap)
	if !bad {
		return StateInactive, val, threshold, ""
	}
	cutoff := now.Add(-r.FastWindow)
	sustained := false
	for i := len(pts) - 1; i >= 0; i-- {
		p := pts[i]
		if p.Time.Before(cutoff) {
			break
		}
		if _, b := breach(p.Snap); !b {
			return StatePending, val, threshold, msg
		}
		// Firing needs the breach to actually span the window, not just the
		// few most recent samples.
		if i < len(pts)-1 && now.Sub(p.Time) >= r.FastWindow/2 {
			sustained = true
		}
	}
	if sustained {
		return StateFiring, val, threshold, msg
	}
	return StatePending, val, threshold, msg
}

// Start runs the evaluation loop: every interval the store samples a tick and
// the rules re-evaluate. The returned stop function blocks until the loop
// exits.
func (e *SLOEngine) Start(interval time.Duration) (stop func()) {
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case now := <-t.C:
				e.store.Tick(now)
				e.Evaluate(now)
			}
		}
	}()
	return func() {
		close(done)
		<-finished
	}
}
