// Package obs is the fleet-observability layer: structured trace-correlated
// logging over log/slog, a fixed-memory per-endpoint metrics time-series
// store fed by heartbeat snapshots, an SLO engine with multi-window
// burn-rate alerting, and a small Prometheus exposition parser used by the
// smoke tooling. Everything is stdlib-only and safe for concurrent use.
//
// Logging model: one process-wide pipeline fans every component logger out
// to stderr (text, human-oriented) and a bounded in-memory ring buffer (the
// queryable backend behind GET /debug/logs). Component loggers carry a
// `component` field and helpers attach the standard correlation fields —
// endpoint_id, task_id, trace_id — so any log line joins to the trace of the
// task that produced it.
package obs

import (
	"io"
	"log/slog"
	"os"
	"sync"

	"globuscompute/internal/trace"
)

// Standard correlation attribute keys. Every component uses these exact keys
// so /debug/logs queries and trace joins work fleet-wide.
const (
	KeyComponent = "component"
	KeyEndpoint  = "endpoint_id"
	KeyTask      = "task_id"
	KeyTrace     = "trace_id"
)

// Logger is a thin wrapper over *slog.Logger adding the correlation-field
// helpers. The zero value and nil are both safe: they log through the
// process-default pipeline, so components can accept an optional *Logger
// without nil checks at call sites.
type Logger struct {
	s *slog.Logger
}

// Pipeline is a logging destination set: an optional human-readable writer
// and an optional ring buffer, with one shared level control.
type Pipeline struct {
	handler slog.Handler
	buffer  *LogBuffer
	level   *slog.LevelVar
}

// PipelineConfig assembles a pipeline.
type PipelineConfig struct {
	// Writer receives human-readable text lines (nil = discard). The default
	// pipeline uses os.Stderr.
	Writer io.Writer
	// Buffer is the queryable ring sink (nil = none).
	Buffer *LogBuffer
	// Level is the minimum level (default slog.LevelInfo).
	Level slog.Leveler
}

// NewPipeline builds a pipeline fanning out to the configured sinks.
func NewPipeline(cfg PipelineConfig) *Pipeline {
	lv := new(slog.LevelVar)
	if cfg.Level != nil {
		lv.Set(cfg.Level.Level())
	} else {
		lv.Set(slog.LevelInfo)
	}
	var hs []slog.Handler
	if cfg.Writer != nil {
		hs = append(hs, slog.NewTextHandler(cfg.Writer, &slog.HandlerOptions{Level: lv}))
	}
	if cfg.Buffer != nil {
		hs = append(hs, cfg.Buffer.handler(lv))
	}
	p := &Pipeline{buffer: cfg.Buffer, level: lv}
	switch len(hs) {
	case 0:
		p.handler = discardHandler{}
	case 1:
		p.handler = hs[0]
	default:
		p.handler = multiHandler(hs)
	}
	return p
}

// Component returns a logger stamped with the component field.
func (p *Pipeline) Component(name string) *Logger {
	return &Logger{s: slog.New(p.handler).With(KeyComponent, name)}
}

// Buffer returns the pipeline's ring sink (nil when unconfigured).
func (p *Pipeline) Buffer() *LogBuffer { return p.buffer }

// SetLevel adjusts the pipeline's minimum level at runtime.
func (p *Pipeline) SetLevel(l slog.Level) { p.level.Set(l) }

// DefaultLogCapacity sizes the default pipeline's ring buffer.
const DefaultLogCapacity = 4096

var (
	defaultMu       sync.RWMutex
	defaultPipeline = NewPipeline(PipelineConfig{
		Writer: os.Stderr,
		Buffer: NewLogBuffer(DefaultLogCapacity),
	})
)

// Default returns the process-wide pipeline. Components resolve their
// loggers through it when not explicitly configured, so a single-process
// deployment (testbed, gc-webservice) aggregates every component's records
// in one queryable buffer — the way a logging backend would in production.
func Default() *Pipeline {
	defaultMu.RLock()
	defer defaultMu.RUnlock()
	return defaultPipeline
}

// SetDefault replaces the process-wide pipeline (tests use this to silence
// or capture output).
func SetDefault(p *Pipeline) {
	defaultMu.Lock()
	defer defaultMu.Unlock()
	defaultPipeline = p
}

// DefaultBuffer returns the default pipeline's ring sink.
func DefaultBuffer() *LogBuffer { return Default().Buffer() }

// Component returns a logger for the named component on the default
// pipeline.
func Component(name string) *Logger { return Default().Component(name) }

// logger resolves the receiver, falling back to a bare default-pipeline
// logger so a nil *Logger is always usable.
func (l *Logger) logger() *slog.Logger {
	if l == nil || l.s == nil {
		return slog.New(Default().handler)
	}
	return l.s
}

// With returns a logger with extra key/value attributes attached.
func (l *Logger) With(args ...any) *Logger {
	return &Logger{s: l.logger().With(args...)}
}

// WithEndpoint attaches the endpoint correlation field.
func (l *Logger) WithEndpoint(id string) *Logger {
	return l.With(KeyEndpoint, id)
}

// WithTask attaches the task correlation field.
func (l *Logger) WithTask(id string) *Logger {
	return l.With(KeyTask, id)
}

// WithTrace attaches the trace correlation field from a propagated context;
// invalid or nil contexts attach nothing, so callers need no guards.
func (l *Logger) WithTrace(tc *trace.Context) *Logger {
	if !tc.Valid() {
		return l
	}
	return l.With(KeyTrace, string(tc.TraceID))
}

// Debug logs at debug level.
func (l *Logger) Debug(msg string, args ...any) { l.logger().Debug(msg, args...) }

// Info logs at info level.
func (l *Logger) Info(msg string, args ...any) { l.logger().Info(msg, args...) }

// Warn logs at warn level.
func (l *Logger) Warn(msg string, args ...any) { l.logger().Warn(msg, args...) }

// Error logs at error level.
func (l *Logger) Error(msg string, args ...any) { l.logger().Error(msg, args...) }
