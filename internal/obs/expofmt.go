package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Minimal Prometheus text-exposition (0.0.4) parser. It exists so the smoke
// tooling can validate /metrics and /metrics/fleet output structurally —
// families typed exactly once, sample names legal, label syntax sound —
// instead of grepping for substrings, without pulling in a client library.

// Sample is one exposition sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family groups the samples sharing one metric family (a summary family owns
// its _sum/_count samples).
type Family struct {
	Name    string
	Type    string // counter | gauge | summary | histogram | untyped
	Samples []Sample
}

// Exposition is a parsed scrape.
type Exposition struct {
	Families map[string]*Family
	// Order preserves first-seen family order for deterministic reports.
	Order []string
}

// Family returns a family by name (nil when absent).
func (e *Exposition) Family(name string) *Family {
	return e.Families[name]
}

// Sample returns the first sample of the named family matching all the given
// labels (pass nil to match any).
func (e *Exposition) Sample(family string, labels map[string]string) (Sample, bool) {
	f := e.Families[family]
	if f == nil {
		return Sample{}, false
	}
	for _, s := range f.Samples {
		match := true
		for k, v := range labels {
			if s.Labels[k] != v {
				match = false
				break
			}
		}
		if match {
			return s, true
		}
	}
	return Sample{}, false
}

// ParseExposition parses Prometheus text format, attributing samples to
// families and validating name/label/value syntax. Duplicate TYPE
// declarations for one family are an error.
func ParseExposition(r io.Reader) (*Exposition, error) {
	exp := &Exposition{Families: make(map[string]*Family)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.Fields(line)
			if len(fields) >= 4 && fields[1] == "TYPE" {
				name, typ := fields[2], fields[3]
				if !validMetricName(name) {
					return nil, fmt.Errorf("expofmt: line %d: invalid family name %q", lineNo, name)
				}
				if _, dup := exp.Families[name]; dup {
					return nil, fmt.Errorf("expofmt: line %d: duplicate TYPE for %q", lineNo, name)
				}
				exp.Families[name] = &Family{Name: name, Type: typ}
				exp.Order = append(exp.Order, name)
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("expofmt: line %d: %w", lineNo, err)
		}
		fam := exp.Families[familyOf(s.Name, exp.Families)]
		if fam == nil {
			// Untyped samples are legal exposition; track them under their
			// own name.
			fam = &Family{Name: s.Name, Type: "untyped"}
			exp.Families[s.Name] = fam
			exp.Order = append(exp.Order, s.Name)
		}
		fam.Samples = append(fam.Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return exp, nil
}

// familyOf maps a sample name onto its declaring family, handling summary
// _sum/_count suffixes.
func familyOf(name string, fams map[string]*Family) string {
	if _, ok := fams[name]; ok {
		return name
	}
	for _, suffix := range []string{"_sum", "_count", "_bucket"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if f, ok := fams[base]; ok && (f.Type == "summary" || f.Type == "histogram") {
				return base
			}
		}
	}
	return name
}

// parseSample parses `name{label="value",...} value` (labels optional).
func parseSample(line string) (Sample, error) {
	s := Sample{}
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return s, fmt.Errorf("sample %q has no value", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if strings.HasPrefix(rest, "{") {
		end, labels, err := parseLabels(rest)
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[end:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field.
	if sp := strings.IndexAny(valStr, " \t"); sp >= 0 {
		valStr = valStr[:sp]
	}
	v, err := strconv.ParseFloat(valStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %v", valStr, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses a {k="v",...} block, returning the index just past the
// closing brace.
func parseLabels(in string) (int, map[string]string, error) {
	labels := make(map[string]string)
	i := 1 // past '{'
	for {
		for i < len(in) && (in[i] == ',' || in[i] == ' ') {
			i++
		}
		if i < len(in) && in[i] == '}' {
			return i + 1, labels, nil
		}
		eq := strings.IndexByte(in[i:], '=')
		if eq < 0 {
			return 0, nil, fmt.Errorf("unterminated label block in %q", in)
		}
		key := in[i : i+eq]
		if !validLabelName(key) {
			return 0, nil, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(in) || in[i] != '"' {
			return 0, nil, fmt.Errorf("unquoted label value in %q", in)
		}
		i++
		var val strings.Builder
		for i < len(in) && in[i] != '"' {
			if in[i] == '\\' && i+1 < len(in) {
				i++
				switch in[i] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(in[i])
				}
			} else {
				val.WriteByte(in[i])
			}
			i++
		}
		if i >= len(in) {
			return 0, nil, fmt.Errorf("unterminated label value in %q", in)
		}
		i++ // past closing quote
		labels[key] = val.String()
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// knownUnitSuffixes are the base-unit (or unit-adjacent) suffixes the naming
// lint accepts on summary families.
var knownUnitSuffixes = []string{"_seconds", "_bytes", "_size", "_ratio"}

// Lint checks the scrape against the Prometheus naming conventions this repo
// enforces: counter families end in _total, non-counters never do, and
// summary families carry a unit suffix. Returns human-readable violations
// (empty = clean). Wired into `make obs-smoke` so convention drift fails CI.
func (e *Exposition) Lint() []string {
	var issues []string
	names := append([]string(nil), e.Order...)
	sort.Strings(names)
	for _, name := range names {
		f := e.Families[name]
		switch f.Type {
		case "counter":
			if !strings.HasSuffix(name, "_total") {
				issues = append(issues, fmt.Sprintf("counter %q should end in _total", name))
			}
		case "summary", "histogram":
			ok := false
			for _, suffix := range knownUnitSuffixes {
				if strings.HasSuffix(name, suffix) {
					ok = true
					break
				}
			}
			if !ok {
				issues = append(issues, fmt.Sprintf("%s %q should carry a unit suffix (one of %s)", f.Type, name, strings.Join(knownUnitSuffixes, " ")))
			}
		default:
			if strings.HasSuffix(name, "_total") {
				issues = append(issues, fmt.Sprintf("%s %q reserves the _total suffix for counters", f.Type, name))
			}
		}
	}
	return issues
}
