package obs

import (
	"log/slog"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/trace"
)

func testPipeline(cap int) *Pipeline {
	return NewPipeline(PipelineConfig{Buffer: NewLogBuffer(cap), Level: slog.LevelDebug})
}

func TestLoggerCorrelationFields(t *testing.T) {
	p := testPipeline(16)
	tc := &trace.Context{TraceID: trace.NewTraceID()}
	lg := p.Component("webservice").WithEndpoint("ep-1").WithTask("task-9").WithTrace(tc)
	lg.Info("result stored", "attempt", 2)

	recs := p.Buffer().ByTrace(string(tc.TraceID))
	if len(recs) != 1 {
		t.Fatalf("ByTrace = %d records, want 1", len(recs))
	}
	r := recs[0]
	if r.Component != "webservice" || r.Endpoint != "ep-1" || r.TaskID != "task-9" {
		t.Errorf("correlation fields not extracted: %+v", r)
	}
	if r.Attrs["attempt"] != "2" {
		t.Errorf("ad-hoc attr lost: %+v", r.Attrs)
	}
	if r.Message != "result stored" || r.Level != "INFO" {
		t.Errorf("record body: %+v", r)
	}

	// Invalid trace contexts attach nothing, and a nil logger is usable.
	var nilLogger *Logger
	nilLogger.WithTrace(nil).Debug("no trace")
	if got := p.Buffer().Search(Query{TraceID: ""}); len(got) == 0 {
		t.Fatal("buffer lost records")
	}
}

func TestLogBufferRingAndQueries(t *testing.T) {
	b := NewLogBuffer(4)
	for i := 0; i < 6; i++ {
		lvl := "INFO"
		if i%2 == 0 {
			lvl = "ERROR"
		}
		b.Append(LogRecord{Message: string(rune('a' + i)), Level: lvl, Endpoint: "ep"})
	}
	if b.Len() != 4 || b.Total() != 6 {
		t.Fatalf("Len=%d Total=%d, want 4/6", b.Len(), b.Total())
	}
	tail := b.Tail(2)
	if len(tail) != 2 || tail[1].Message != "f" {
		t.Fatalf("Tail order wrong: %+v", tail)
	}
	errs := b.Search(Query{MinLevel: slog.LevelError, Endpoint: "ep"})
	for _, r := range errs {
		if r.Level != "ERROR" {
			t.Fatalf("level filter leaked %+v", r)
		}
	}
	if len(errs) != 2 { // c was evicted; e and... indices 0,2,4 are ERROR; 0 ("a") and 2 ("c") evicted -> "e" only? ring keeps 2..5
		// ring retains messages c,d,e,f => errors are c (idx2) and e (idx4).
		t.Fatalf("error records = %d, want 2: %+v", len(errs), errs)
	}
}

func TestFleetIngestAndWindows(t *testing.T) {
	f := NewFleetStore(FleetConfig{RingPoints: 16, StaleAfter: time.Second})
	base := time.Unix(1000, 0)

	// First delta is a full snapshot; later deltas elide unchanged series.
	s1 := metrics.Snapshot{Counters: map[string]int64{"tasks_received": 10, "dead_lettered": 0}, Gauges: map[string]int64{"egress_backlog": 3}}
	if !f.Ingest("ep-1", s1, base) {
		t.Fatal("ingest rejected")
	}
	s2 := metrics.Snapshot{Counters: map[string]int64{"tasks_received": 50}}
	f.Ingest("ep-1", s2, base.Add(10*time.Second))

	merged, ok := f.Merged("ep-1")
	if !ok || merged.Counters["tasks_received"] != 50 {
		t.Fatalf("overlay failed: %+v", merged.Counters)
	}
	if merged.Gauges["egress_backlog"] != 3 {
		t.Error("unchanged gauge lost across delta overlay")
	}

	d, span, ok := f.CounterDelta("ep-1", "tasks_received", time.Minute, base.Add(10*time.Second))
	if !ok || d != 40 || span != 10*time.Second {
		t.Fatalf("CounterDelta = %d over %v (%v), want 40 over 10s", d, span, ok)
	}
	rate, ok := f.CounterRate("ep-1", "tasks_received", time.Minute, base.Add(10*time.Second))
	if !ok || rate != 4 {
		t.Fatalf("CounterRate = %v, want 4/s", rate)
	}

	// Counter reset (agent restart) counts from zero instead of negative.
	f.Ingest("ep-1", metrics.Snapshot{Counters: map[string]int64{"tasks_received": 5}}, base.Add(20*time.Second))
	d, _, _ = f.CounterDelta("ep-1", "tasks_received", time.Minute, base.Add(20*time.Second))
	if d != 5 {
		t.Fatalf("reset delta = %d, want 5", d)
	}

	if stale, ok := f.Staleness("ep-1", base.Add(25*time.Second)); !ok || stale != 5*time.Second {
		t.Fatalf("staleness = %v (%v)", stale, ok)
	}
}

func TestFleetLocalRegistryAndHealth(t *testing.T) {
	f := NewFleetStore(FleetConfig{RingPoints: 16, StaleAfter: time.Minute, HealthWindow: time.Minute})
	base := time.Unix(2000, 0)

	// Agent-side load gauges arrive via snapshot; webservice-side outcomes
	// land in the local registry and merge under ws_.
	f.Ingest("ep-1", metrics.Snapshot{
		Counters: map[string]int64{"tasks_received": 100, "results_published": 90, "dead_lettered": 2},
		Gauges:   map[string]int64{"pending_tasks": 4, "total_workers": 8, "free_workers": 2, "egress_backlog": 0},
	}, base)
	loc := f.Local("ep-1")
	loc.Counter("results").Add(90)
	loc.Counter("results_failed").Add(9)
	loc.Histogram("task_roundtrip").Observe(50 * time.Millisecond)
	f.Tick(base.Add(30 * time.Second))

	h := f.Health(base.Add(31 * time.Second))
	if h.EndpointsTotal != 1 || h.EndpointsOnline != 1 {
		t.Fatalf("health totals: %+v", h)
	}
	eh := h.Endpoints[0]
	if eh.WorkerUtilization != 0.75 {
		t.Errorf("utilization = %v, want 0.75", eh.WorkerUtilization)
	}
	if eh.EgressBacklog == nil || *eh.EgressBacklog != 0 {
		t.Errorf("reported zero backlog must be present-and-zero, got %v", eh.EgressBacklog)
	}
	if eh.FailureRatio != 0.1 {
		t.Errorf("failure ratio = %v, want 0.1", eh.FailureRatio)
	}
	if eh.DeadLettered != 2 || eh.P99LatencySeconds != 0.05 {
		t.Errorf("health row: %+v", eh)
	}

	// An endpoint that never reported the backlog gauge yields nil.
	f.Ingest("ep-2", metrics.Snapshot{Counters: map[string]int64{"tasks_received": 1}}, base)
	h = f.Health(base.Add(31 * time.Second))
	for _, row := range h.Endpoints {
		if row.EndpointID == "ep-2" && row.EgressBacklog != nil {
			t.Error("unreported backlog should be nil")
		}
	}
}

func TestFleetEndpointCap(t *testing.T) {
	f := NewFleetStore(FleetConfig{MaxEndpoints: 2, RingPoints: 4})
	now := time.Unix(3000, 0)
	f.Touch("a", now)
	f.Touch("b", now)
	if f.Ingest("c", metrics.Snapshot{}, now) {
		t.Fatal("cap should reject third endpoint")
	}
	if f.Rejected() != 1 || len(f.Endpoints()) != 2 {
		t.Fatalf("rejected=%d endpoints=%v", f.Rejected(), f.Endpoints())
	}
}

func TestWriteFederationParsesCleanly(t *testing.T) {
	f := NewFleetStore(FleetConfig{RingPoints: 8, StaleAfter: time.Minute})
	now := time.Unix(4000, 0)
	for _, id := range []string{"ep-1", "ep-2"} {
		f.Ingest(id, metrics.Snapshot{
			Counters:   map[string]int64{"tasks_received": 5},
			Gauges:     map[string]int64{"egress_backlog": 1},
			Histograms: map[string]metrics.HistogramStats{"egress_flush_size": {Count: 3, Sum: 6 * time.Second, P50: 2 * time.Second, P95: 2 * time.Second, P99: 2 * time.Second}},
		}, now)
	}
	loc := f.Local("ep-1")
	loc.Histogram("task_roundtrip").Observe(time.Millisecond)
	f.Tick(now)

	var sb strings.Builder
	if err := f.WriteFederation(&sb, now.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("federation output does not parse: %v\n%s", err, sb.String())
	}
	if issues := exp.Lint(); len(issues) != 0 {
		t.Fatalf("federation output fails lint: %v", issues)
	}

	// Counters gain _total; both endpoints appear as labeled samples of one
	// family (one TYPE header, verified by ParseExposition's duplicate check).
	fam := exp.Family("gc_endpoint_tasks_received_total")
	if fam == nil || fam.Type != "counter" || len(fam.Samples) != 2 {
		t.Fatalf("tasks_received family: %+v", fam)
	}
	if s, ok := exp.Sample("gc_endpoint_up", map[string]string{"endpoint_id": "ep-1"}); !ok || s.Value != 1 {
		t.Fatalf("up{ep-1} = %+v (%v)", s, ok)
	}
	// Unit histograms keep their unit name; duration histograms gain _seconds.
	if exp.Family("gc_endpoint_egress_flush_size") == nil {
		t.Error("size histogram should export under its unit name")
	}
	if exp.Family("gc_endpoint_ws_task_roundtrip_seconds") == nil {
		t.Error("duration histogram should export with _seconds")
	}
}

func TestSLOFailureRatioLifecycle(t *testing.T) {
	SetDefault(testPipeline(64))
	f := NewFleetStore(FleetConfig{RingPoints: 64, StaleAfter: time.Hour})
	rules := []Rule{{
		Name: "failures", Kind: RuleFailureRatio,
		BadCounter: "ws_results_failed", TotalCounter: "ws_results",
		Objective: 0.05, BurnRate: 2,
		FastWindow: 10 * time.Second, SlowWindow: 40 * time.Second,
	}}
	e := NewSLOEngine(f, rules)
	var transitions []Alert
	e.SetNotifier(func(a Alert) { transitions = append(transitions, a) })
	reg := metrics.NewRegistry()
	e.SetRegistry(reg)

	loc := f.Local("ep-1")
	base := time.Unix(5000, 0)
	step := func(at time.Duration, good, bad int64) []Alert {
		loc.Counter("results").Add(good + bad)
		loc.Counter("results_failed").Add(bad)
		now := base.Add(at)
		f.Touch("ep-1", now)
		f.Tick(now)
		return e.Evaluate(now)
	}

	// Healthy traffic: inactive.
	step(0, 50, 0)
	if alerts := step(2*time.Second, 50, 0); len(alerts) != 0 {
		t.Fatalf("healthy fleet alerted: %+v", alerts)
	}
	// Failures spike: the fast window breaches first -> pending.
	alerts := step(4*time.Second, 10, 40)
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("want pending, got %+v", alerts)
	}
	// Sustained failures: slow window catches up -> firing.
	var fired bool
	for at := 6 * time.Second; at <= 60*time.Second; at += 2 * time.Second {
		alerts = step(at, 10, 40)
		if len(alerts) == 1 && alerts[0].State == StateFiring {
			fired = true
			break
		}
	}
	if !fired {
		t.Fatalf("sustained failures never fired: %+v", alerts)
	}
	if reg.Gauge("slo_alerts_firing").Value() != 1 {
		t.Error("firing gauge not exported")
	}

	// Recovery: healthy traffic drains both windows -> inactive again.
	var cleared bool
	for at := 62 * time.Second; at <= 180*time.Second; at += 2 * time.Second {
		if alerts = step(at, 50, 0); len(alerts) == 0 {
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatalf("alert never recovered: %+v", alerts)
	}

	// Transitions observed: pending, firing, then resolve to inactive.
	var states []AlertState
	for _, a := range transitions {
		states = append(states, a.State)
	}
	want := []AlertState{StatePending, StateFiring, StateInactive}
	if len(states) < 3 {
		t.Fatalf("transitions = %v, want %v", states, want)
	}
	for i, s := range want {
		if states[i] != s {
			t.Fatalf("transition[%d] = %v, want %v (all: %v)", i, states[i], s, states)
		}
	}
	if reg.Counter("slo_alert_transitions").Value() < 3 {
		t.Error("transition counter not exported")
	}
}

func TestSLOStalenessEscalation(t *testing.T) {
	SetDefault(testPipeline(64))
	f := NewFleetStore(FleetConfig{RingPoints: 16})
	e := NewSLOEngine(f, []Rule{{Name: "stale", Kind: RuleStaleness, MaxStaleness: 10 * time.Second}})
	base := time.Unix(6000, 0)
	f.Touch("ep-1", base)

	if alerts := e.Evaluate(base.Add(5 * time.Second)); len(alerts) != 0 {
		t.Fatalf("fresh endpoint alerted: %+v", alerts)
	}
	alerts := e.Evaluate(base.Add(15 * time.Second))
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("late heartbeats: %+v, want pending", alerts)
	}
	alerts = e.Evaluate(base.Add(25 * time.Second))
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("stopped endpoint: %+v, want firing", alerts)
	}
	// Endpoint comes back.
	f.Touch("ep-1", base.Add(26*time.Second))
	if alerts = e.Evaluate(base.Add(27 * time.Second)); len(alerts) != 0 {
		t.Fatalf("recovered endpoint still alerting: %+v", alerts)
	}
}

func TestSLOGaugeSustained(t *testing.T) {
	SetDefault(testPipeline(64))
	f := NewFleetStore(FleetConfig{RingPoints: 64, StaleAfter: time.Hour})
	e := NewSLOEngine(f, []Rule{{
		Name: "backlog", Kind: RuleGaugeMax, Gauge: "egress_backlog", Max: 100,
		FastWindow: 10 * time.Second, SlowWindow: 30 * time.Second,
	}})
	base := time.Unix(7000, 0)
	set := func(at time.Duration, v int64) []Alert {
		now := base.Add(at)
		f.Ingest("ep-1", metrics.Snapshot{Gauges: map[string]int64{"egress_backlog": v}}, now)
		return e.Evaluate(now)
	}
	set(0, 10)
	if alerts := set(2*time.Second, 10); len(alerts) != 0 {
		t.Fatalf("healthy backlog alerted: %+v", alerts)
	}
	alerts := set(4*time.Second, 500)
	if len(alerts) != 1 || alerts[0].State != StatePending {
		t.Fatalf("first breach should pend: %+v", alerts)
	}
	for at := 6 * time.Second; at <= 20*time.Second; at += 2 * time.Second {
		alerts = set(at, 500)
	}
	if len(alerts) != 1 || alerts[0].State != StateFiring {
		t.Fatalf("sustained breach should fire: %+v", alerts)
	}
	if alerts = set(22*time.Second, 5); len(alerts) != 0 {
		t.Fatalf("drained backlog should resolve: %+v", alerts)
	}
}

func TestParseExpositionErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"duplicate type", "# TYPE a counter\n# TYPE a counter\n"},
		{"bad metric name", "9bad 1\n"},
		{"bad value", "ok{} x\n"},
		{"unterminated labels", "ok{a=\"b 1\n"},
		{"bad label name", "ok{__a=\"b\"} 1\n"},
	}
	for _, c := range cases {
		if _, err := ParseExposition(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}

	// Escaped label values round-trip.
	exp, err := ParseExposition(strings.NewReader("# TYPE m gauge\nm{ep=\"a\\\"b\\\\c\\nd\"} 2 1234567890\n"))
	if err != nil {
		t.Fatal(err)
	}
	s, ok := exp.Sample("m", nil)
	if !ok || s.Labels["ep"] != "a\"b\\c\nd" || s.Value != 2 {
		t.Fatalf("escape round-trip: %+v (%v)", s, ok)
	}
}

func TestLintFlagsViolations(t *testing.T) {
	in := strings.Join([]string{
		"# TYPE good_total counter", "good_total 1",
		"# TYPE bad counter", "bad 1", // counter without _total
		"# TYPE wrong_total gauge", "wrong_total 1", // gauge stealing _total
		"# TYPE lat summary", "lat_count 0", // summary without unit
		"# TYPE fine_seconds summary", "fine_seconds_count 0",
	}, "\n") + "\n"
	exp, err := ParseExposition(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	issues := exp.Lint()
	if len(issues) != 3 {
		t.Fatalf("lint issues = %v, want 3", issues)
	}
}
