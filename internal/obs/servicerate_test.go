package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// Two load reports a second apart with 50 more results published must yield
// a ~50 tasks/s estimate; before the second report no rate is known.
func TestServiceRateFromLoadDeltas(t *testing.T) {
	f := NewFleetStore(FleetConfig{})
	t0 := time.Now()
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 100}, t0)
	if _, ok := f.ServiceRate("ep"); ok {
		t.Fatal("service rate known after a single report")
	}
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 150}, t0.Add(time.Second))
	rate, ok := f.ServiceRate("ep")
	if !ok {
		t.Fatal("service rate unknown after two reports")
	}
	if math.Abs(rate-50) > 0.01 {
		t.Fatalf("rate = %v, want ~50", rate)
	}
}

// The EWMA must smooth toward a changed rate rather than jumping, and a
// counter reset (agent restart) must count from zero instead of going
// negative.
func TestServiceRateSmoothingAndRestart(t *testing.T) {
	f := NewFleetStore(FleetConfig{ServiceRateHalfLife: 10 * time.Second})
	t0 := time.Now()
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 0}, t0)
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 100}, t0.Add(time.Second))
	// Rate drops to 0: one second at half-life 10s moves alpha ~6.7%.
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 100}, t0.Add(2*time.Second))
	rate, _ := f.ServiceRate("ep")
	if rate >= 100 || rate < 80 {
		t.Fatalf("smoothed rate = %v, want in [80, 100)", rate)
	}
	// Restart: published falls to 10. The delta must be 10 (from zero), not
	// -90, so the estimate keeps decaying instead of going negative.
	f.ObserveLoad("ep", LoadReport{ResultsPublished: 10}, t0.Add(3*time.Second))
	rate, _ = f.ServiceRate("ep")
	if rate < 0 {
		t.Fatalf("rate went negative across restart: %v", rate)
	}
}

// Load reports with no metrics snapshot must still populate the health and
// federation views: pending/worker gauges via the ws_ fallback, cumulative
// counters, and the synthetic service-rate gauge.
func TestLoadReportOnlyEndpointVisible(t *testing.T) {
	f := NewFleetStore(FleetConfig{})
	t0 := time.Now()
	egress := 3
	lr := LoadReport{
		PendingTasks: 7, TotalWorkers: 4, FreeWorkers: 1,
		TasksReceived: 20, ResultsPublished: 10, EgressBacklog: &egress,
	}
	f.ObserveLoad("ep", lr, t0)
	f.Touch("ep", t0)
	lr.ResultsPublished = 30
	f.ObserveLoad("ep", lr, t0.Add(time.Second))
	f.Tick(t0.Add(time.Second))

	h := f.Health(t0.Add(time.Second))
	if len(h.Endpoints) != 1 {
		t.Fatalf("endpoints = %d, want 1", len(h.Endpoints))
	}
	eh := h.Endpoints[0]
	if eh.PendingTasks != 7 || eh.TotalWorkers != 4 || eh.FreeWorkers != 1 {
		t.Fatalf("gauges not populated from load report: %+v", eh)
	}
	if eh.EgressBacklog == nil || *eh.EgressBacklog != 3 {
		t.Fatalf("egress backlog not populated: %+v", eh.EgressBacklog)
	}
	if eh.TasksReceived != 20 || eh.ResultsPublished != 30 {
		t.Fatalf("cumulative counters not populated: %+v", eh)
	}
	if math.Abs(eh.ServiceRatePerS-20) > 0.01 {
		t.Fatalf("service rate = %v, want ~20", eh.ServiceRatePerS)
	}

	var sb strings.Builder
	if err := f.WriteFederation(&sb, t0.Add(time.Second)); err != nil {
		t.Fatal(err)
	}
	exp, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("federation does not parse: %v", err)
	}
	if issues := exp.Lint(); len(issues) > 0 {
		t.Fatalf("federation lint: %v", issues)
	}
	s, ok := exp.Sample("gc_endpoint_service_rate_tasks_per_second", map[string]string{"endpoint_id": "ep"})
	if !ok {
		t.Fatalf("service-rate gauge missing from federation:\n%s", sb.String())
	}
	if math.Abs(s.Value-20) > 0.01 {
		t.Fatalf("federated service rate = %v, want ~20", s.Value)
	}
	if _, ok := exp.Sample("gc_endpoint_ws_pending_tasks", map[string]string{"endpoint_id": "ep"}); !ok {
		t.Fatal("ws_pending_tasks gauge missing from federation")
	}
}
