package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// Fleet store defaults. Every bound is fixed at construction so the store's
// memory footprint is a hard function of configuration, never of traffic.
const (
	DefaultRingPoints   = 120
	DefaultMaxEndpoints = 256
	DefaultMaxSeries    = 512
	DefaultHealthWindow = time.Minute
	DefaultStaleAfter   = 30 * time.Second
	DefaultFleetPrefix  = "gc_endpoint"
	// DefaultServiceRateHalfLife is the EWMA half-life for the per-endpoint
	// service-rate estimate derived from heartbeat load-report deltas.
	DefaultServiceRateHalfLife = 10 * time.Second
)

// FleetConfig bounds and labels a FleetStore.
type FleetConfig struct {
	// RingPoints is the number of time-series samples retained per endpoint.
	RingPoints int
	// MaxEndpoints caps tracked endpoints; reports from endpoints beyond the
	// cap are counted and dropped rather than growing memory.
	MaxEndpoints int
	// MaxSeries caps distinct series per endpoint (metrics.Snapshot.Bound).
	MaxSeries int
	// HealthWindow is the lookback for rate fields in Health output.
	HealthWindow time.Duration
	// StaleAfter marks an endpoint offline in Health/federation output when
	// no report has arrived within it.
	StaleAfter time.Duration
	// Prefix prefixes federated metric names (default "gc_endpoint").
	Prefix string
	// ServiceRateHalfLife is the EWMA half-life for the service-rate
	// estimate (default DefaultServiceRateHalfLife). Shorter tracks bursts
	// faster; longer smooths heartbeat jitter.
	ServiceRateHalfLife time.Duration
}

func (c FleetConfig) withDefaults() FleetConfig {
	if c.RingPoints <= 0 {
		c.RingPoints = DefaultRingPoints
	}
	if c.MaxEndpoints <= 0 {
		c.MaxEndpoints = DefaultMaxEndpoints
	}
	if c.MaxSeries <= 0 {
		c.MaxSeries = DefaultMaxSeries
	}
	if c.HealthWindow <= 0 {
		c.HealthWindow = DefaultHealthWindow
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = DefaultStaleAfter
	}
	if c.Prefix == "" {
		c.Prefix = DefaultFleetPrefix
	}
	if c.ServiceRateHalfLife <= 0 {
		c.ServiceRateHalfLife = DefaultServiceRateHalfLife
	}
	return c
}

// Point is one ring-buffer sample: a merged (agent + service-local) snapshot
// at a known time.
type Point struct {
	Time time.Time
	Snap metrics.Snapshot
}

// endpointState is everything the store keeps per endpoint.
type endpointState struct {
	// absolute is the agent-reported view, maintained by overlaying heartbeat
	// deltas. Values are absolute, so a missed delta self-heals.
	absolute metrics.Snapshot
	// local is the service-side registry for this endpoint (result counts,
	// round-trip latency) — signals that must survive an agent crash.
	local *metrics.Registry
	ring  []Point
	next  int
	n     int
	// lastReport is the last heartbeat (Touch or Ingest) time.
	lastReport time.Time
	reports    int64
	// stopped marks a clean shutdown (final offline heartbeat): the endpoint
	// is expected to be silent, so staleness alerting must not page on it. A
	// crash never sets it — that is exactly the silence worth alerting on.
	stopped bool
	// Service-rate EWMA state, fed by ObserveLoad from heartbeat load
	// reports: lastPublished/lastLoadAt anchor the next delta, rate is the
	// smoothed tasks/s estimate (valid once rateKnown).
	lastPublished int64
	lastReceived  int64
	lastLoadAt    time.Time
	rate          float64
	rateKnown     bool
}

func (st *endpointState) push(p Point) {
	st.ring[st.next] = p
	st.next = (st.next + 1) % len(st.ring)
	if st.n < len(st.ring) {
		st.n++
	}
}

// points copies retained samples oldest-first.
func (st *endpointState) points() []Point {
	out := make([]Point, 0, st.n)
	start := st.next - st.n
	if start < 0 {
		start += len(st.ring)
	}
	for i := 0; i < st.n; i++ {
		out = append(out, st.ring[(start+i)%len(st.ring)])
	}
	return out
}

// merged folds the service-local registry over the agent-reported view.
func (st *endpointState) merged(maxSeries int) metrics.Snapshot {
	s := st.absolute.Clone()
	s.Merge("ws_", st.local.TakeSnapshot())
	s.Bound(maxSeries)
	return s
}

// FleetStore is the web service's fixed-memory metrics backend: one ring of
// merged snapshots per endpoint, fed by heartbeat-piggybacked deltas and by
// service-side observations. It backs GET /metrics/fleet (federation), GET
// /debug/fleet (health JSON), and the SLO engine's windowed queries.
type FleetStore struct {
	cfg FleetConfig

	mu       sync.Mutex
	eps      map[string]*endpointState
	rejected int64
}

// NewFleetStore builds a store with cfg (zero fields take defaults).
func NewFleetStore(cfg FleetConfig) *FleetStore {
	return &FleetStore{cfg: cfg.withDefaults(), eps: make(map[string]*endpointState)}
}

// Config returns the effective (defaulted) configuration.
func (f *FleetStore) Config() FleetConfig { return f.cfg }

// state returns the endpoint's state, creating it under the endpoint cap;
// nil when the cap rejects a new endpoint.
func (f *FleetStore) state(id string) *endpointState {
	st, ok := f.eps[id]
	if !ok {
		if len(f.eps) >= f.cfg.MaxEndpoints {
			f.rejected++
			return nil
		}
		st = &endpointState{
			local: metrics.NewRegistry(),
			ring:  make([]Point, f.cfg.RingPoints),
		}
		f.eps[id] = st
	}
	return st
}

// Touch records a heartbeat from the endpoint without metrics payload (most
// heartbeats: snapshots are interval-decimated on the agent side).
func (f *FleetStore) Touch(id string, now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.state(id); st != nil {
		st.lastReport = now
		st.stopped = false
	}
}

// MarkStopped records a clean shutdown: the endpoint reported itself offline,
// so its silence is expected and staleness alerting stands down until it
// reports again.
func (f *FleetStore) MarkStopped(id string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.state(id); st != nil {
		st.stopped = true
	}
}

// Ingest overlays a heartbeat-piggybacked snapshot delta onto the endpoint's
// absolute view and samples a ring point. Returns false when the endpoint cap
// dropped the report.
func (f *FleetStore) Ingest(id string, delta metrics.Snapshot, now time.Time) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.state(id)
	if st == nil {
		return false
	}
	st.absolute.Overlay(delta)
	st.absolute.Bound(f.cfg.MaxSeries)
	st.lastReport = now
	st.stopped = false
	st.reports++
	st.push(Point{Time: now, Snap: st.merged(f.cfg.MaxSeries)})
	return true
}

// LoadReport is the obs-side view of one heartbeat load report — the subset
// of statestore.EndpointLoad the fleet store folds into its per-endpoint
// series. Carried as its own type so obs stays decoupled from the statestore.
type LoadReport struct {
	PendingTasks int
	TotalWorkers int
	FreeWorkers  int
	// TasksReceived / ResultsPublished are the agent's cumulative counters;
	// the store differences them across reports into the service-rate EWMA.
	TasksReceived    int64
	ResultsPublished int64
	// EgressBacklog is nil when the agent does not report the gauge.
	EgressBacklog *int
}

// ObserveLoad folds one heartbeat load report into the endpoint's view: the
// utilization numbers land as service-side gauges (so load-report-only
// endpoints — sim agents, thin agents with no metrics registry — still show
// pending/worker columns in Health and federation), and the cumulative
// received/published counters drive a service-rate EWMA: the smoothed rate at
// which this endpoint actually completes work. That estimate is the
// observability groundwork for service-rate-aware placement — it breaks the
// depth-1 tie between a busy slow member and a busy fast one.
func (f *FleetStore) ObserveLoad(id string, lr LoadReport, now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := f.state(id)
	if st == nil {
		return
	}
	st.local.Gauge("pending_tasks").Set(int64(lr.PendingTasks))
	st.local.Gauge("total_workers").Set(int64(lr.TotalWorkers))
	st.local.Gauge("free_workers").Set(int64(lr.FreeWorkers))
	if lr.EgressBacklog != nil {
		st.local.Gauge("egress_backlog").Set(int64(*lr.EgressBacklog))
	}
	if !st.lastLoadAt.IsZero() {
		dt := now.Sub(st.lastLoadAt).Seconds()
		if dt > 0 {
			d := lr.ResultsPublished - st.lastPublished
			if d < 0 {
				// Agent restart reset the counter; count from zero.
				d = lr.ResultsPublished
			}
			inst := float64(d) / dt
			// Time-aware EWMA: alpha approaches 1 as the gap between
			// reports grows past the half-life, so sparse reporters still
			// converge instead of being stuck on stale history.
			alpha := 1 - math.Pow(0.5, dt/f.cfg.ServiceRateHalfLife.Seconds())
			if !st.rateKnown {
				st.rate = inst
				st.rateKnown = true
			} else {
				st.rate += alpha * (inst - st.rate)
			}
		}
	}
	st.lastLoadAt = now
	st.lastPublished = lr.ResultsPublished
	st.lastReceived = lr.TasksReceived
}

// ServiceRate returns the endpoint's smoothed completion rate in tasks per
// second. ok is false until two load reports have been observed.
func (f *FleetStore) ServiceRate(id string) (float64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, found := f.eps[id]
	if !found || !st.rateKnown {
		return 0, false
	}
	return st.rate, true
}

// Local returns the service-side registry for an endpoint, where the web
// service records its own per-endpoint observations (result outcomes,
// round-trip latency). Series merge into the endpoint's view under a "ws_"
// prefix. Returns nil when the endpoint cap is hit.
func (f *FleetStore) Local(id string) *metrics.Registry {
	f.mu.Lock()
	defer f.mu.Unlock()
	if st := f.state(id); st != nil {
		return st.local
	}
	return nil
}

// Tick samples every endpoint's merged view into its ring. Called on a timer
// (and before SLO evaluation) so windows advance even when heartbeats stall —
// exactly the regime staleness alerting must observe.
func (f *FleetStore) Tick(now time.Time) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, st := range f.eps {
		st.push(Point{Time: now, Snap: st.merged(f.cfg.MaxSeries)})
	}
}

// Endpoints lists tracked endpoint IDs, sorted.
func (f *FleetStore) Endpoints() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]string, 0, len(f.eps))
	for id := range f.eps {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Rejected reports how many endpoint reports the MaxEndpoints cap dropped.
func (f *FleetStore) Rejected() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rejected
}

// Staleness reports time since the endpoint's last report. ok is false for
// unknown or never-reporting endpoints.
func (f *FleetStore) Staleness(id string, now time.Time) (time.Duration, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.eps[id]
	if !ok || st.lastReport.IsZero() || st.stopped {
		return 0, false
	}
	return now.Sub(st.lastReport), true
}

// Merged returns the endpoint's current merged snapshot.
func (f *FleetStore) Merged(id string) (metrics.Snapshot, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.eps[id]
	if !ok {
		return metrics.Snapshot{}, false
	}
	return st.merged(f.cfg.MaxSeries), true
}

// Points returns the endpoint's retained ring samples, oldest first.
func (f *FleetStore) Points(id string) []Point {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.eps[id]
	if !ok {
		return nil
	}
	return st.points()
}

// window returns the oldest and newest ring points within [now-window, now].
func (f *FleetStore) window(id string, window time.Duration, now time.Time) (oldest, newest Point, ok bool) {
	f.mu.Lock()
	st, found := f.eps[id]
	var pts []Point
	if found {
		pts = st.points()
	}
	f.mu.Unlock()
	cutoff := now.Add(-window)
	first := -1
	for i, p := range pts {
		if !p.Time.Before(cutoff) {
			first = i
			break
		}
	}
	if first < 0 || first == len(pts)-1 {
		return Point{}, Point{}, false
	}
	return pts[first], pts[len(pts)-1], true
}

// CounterDelta returns the increase of a counter over the window along with
// the span actually covered. A decrease (agent restart) counts from zero.
func (f *FleetStore) CounterDelta(id, name string, window time.Duration, now time.Time) (int64, time.Duration, bool) {
	oldest, newest, ok := f.window(id, window, now)
	if !ok {
		return 0, 0, false
	}
	ov := oldest.Snap.Counters[name]
	nv := newest.Snap.Counters[name]
	d := nv - ov
	if d < 0 {
		d = nv
	}
	return d, newest.Time.Sub(oldest.Time), true
}

// CounterRate returns a counter's per-second rate over the window.
func (f *FleetStore) CounterRate(id, name string, window time.Duration, now time.Time) (float64, bool) {
	d, span, ok := f.CounterDelta(id, name, window, now)
	if !ok || span <= 0 {
		return 0, false
	}
	return float64(d) / span.Seconds(), true
}

// GaugeLatest returns the most recent value of a gauge.
func (f *FleetStore) GaugeLatest(id, name string) (int64, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.eps[id]
	if !ok {
		return 0, false
	}
	v, ok := st.merged(f.cfg.MaxSeries).GaugeValue(name)
	return v, ok
}

// LatestHistogram returns the most recent summary of a histogram.
func (f *FleetStore) LatestHistogram(id, name string) (metrics.HistogramStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	st, ok := f.eps[id]
	if !ok {
		return metrics.HistogramStats{}, false
	}
	return st.merged(f.cfg.MaxSeries).HistogramValue(name)
}

// EndpointHealth is one endpoint's row in the fleet health report.
type EndpointHealth struct {
	EndpointID string `json:"endpoint_id"`
	Online     bool   `json:"online"`
	// Stopped marks a clean shutdown (deliberately offline, not crashed).
	Stopped    bool      `json:"stopped,omitempty"`
	LastReport time.Time `json:"last_report,omitempty"`
	StalenessSeconds  float64   `json:"staleness_seconds"`
	PendingTasks      int64     `json:"pending_tasks"`
	TotalWorkers      int64     `json:"total_workers"`
	FreeWorkers       int64     `json:"free_workers"`
	WorkerUtilization float64   `json:"worker_utilization"`
	// EgressBacklog is nil when the agent has not reported the gauge —
	// distinguishable from a genuine zero backlog.
	EgressBacklog     *int64  `json:"egress_backlog,omitempty"`
	TasksReceived    int64 `json:"tasks_received"`
	ResultsPublished int64 `json:"results_published"`
	// Routed counts policy-driven placements onto this endpoint (submissions
	// addressed to a routing group the placement layer resolved here);
	// RoutedShare is this endpoint's fraction of all routed placements in the
	// fleet — the live view of how a placement policy is spreading load.
	Routed            int64   `json:"routed,omitempty"`
	RoutedShare       float64 `json:"routed_share,omitempty"`
	// ServiceRatePerS is the smoothed completion rate (tasks/s) derived from
	// heartbeat load-report deltas; zero until two reports have landed.
	ServiceRatePerS float64 `json:"service_rate_per_s,omitempty"`
	DeadLettered      int64   `json:"dead_lettered"`
	Requeued          int64   `json:"requeued"`
	DeadLetterPerMin  float64 `json:"dead_letter_per_min"`
	RequeuePerMin     float64 `json:"requeue_per_min"`
	FailureRatio      float64 `json:"failure_ratio"`
	P99LatencySeconds float64 `json:"p99_latency_seconds"`
	Series            int     `json:"series"`
}

// FleetHealth is the aggregate health report behind GET /debug/fleet.
type FleetHealth struct {
	Time              time.Time        `json:"time"`
	EndpointsTotal    int              `json:"endpoints_total"`
	EndpointsOnline   int              `json:"endpoints_online"`
	RejectedEndpoints int64            `json:"rejected_endpoints,omitempty"`
	Endpoints         []EndpointHealth `json:"endpoints"`
}

// counterAny sums the named counters (agent and engine register cognate
// series under different prefixes).
func counterAny(s metrics.Snapshot, names ...string) int64 {
	var total int64
	for _, n := range names {
		total += s.Counters[n]
	}
	return total
}

// gaugeAny returns the first present gauge among names — agent-reported
// series first, with the service-side "ws_" load-report gauges as fallback
// for endpoints that report load but no metrics snapshot.
func gaugeAny(s metrics.Snapshot, names ...string) int64 {
	for _, n := range names {
		if v, ok := s.GaugeValue(n); ok {
			return v
		}
	}
	return 0
}

// Health assembles the per-endpoint liveness / backlog / utilization /
// dead-letter view over the configured window.
func (f *FleetStore) Health(now time.Time) FleetHealth {
	h := FleetHealth{Time: now, RejectedEndpoints: f.Rejected()}
	for _, id := range f.Endpoints() {
		s, _ := f.Merged(id)
		eh := EndpointHealth{EndpointID: id, Series: s.Len()}
		if stale, ok := f.Staleness(id, now); ok {
			eh.StalenessSeconds = stale.Seconds()
			eh.Online = stale <= f.cfg.StaleAfter
		}
		f.mu.Lock()
		if st := f.eps[id]; st != nil {
			eh.LastReport = st.lastReport
			eh.Stopped = st.stopped
		}
		f.mu.Unlock()
		eh.PendingTasks = gaugeAny(s, "pending_tasks", "ws_pending_tasks")
		eh.TotalWorkers = gaugeAny(s, "total_workers", "ws_total_workers")
		eh.FreeWorkers = gaugeAny(s, "free_workers", "ws_free_workers")
		if eh.TotalWorkers > 0 {
			eh.WorkerUtilization = float64(eh.TotalWorkers-eh.FreeWorkers) / float64(eh.TotalWorkers)
		}
		for _, name := range []string{"egress_backlog", "ws_egress_backlog"} {
			if v, ok := s.GaugeValue(name); ok {
				b := v
				eh.EgressBacklog = &b
				break
			}
		}
		if rate, ok := f.ServiceRate(id); ok {
			eh.ServiceRatePerS = rate
		}
		eh.TasksReceived = s.Counters["tasks_received"]
		eh.ResultsPublished = s.Counters["results_published"]
		f.mu.Lock()
		if st := f.eps[id]; st != nil && !st.lastLoadAt.IsZero() {
			// Load-report-only endpoints (sim agents, thin agents) have no
			// metrics snapshot; their heartbeat counters are authoritative.
			if eh.TasksReceived == 0 {
				eh.TasksReceived = st.lastReceived
			}
			if eh.ResultsPublished == 0 {
				eh.ResultsPublished = st.lastPublished
			}
		}
		f.mu.Unlock()
		eh.Routed = s.Counters["ws_routed"]
		eh.DeadLettered = counterAny(s, "dead_lettered", "engine_deadlettered_tasks")
		eh.Requeued = counterAny(s, "engine_requeued")
		if d, span, ok := f.CounterDelta(id, "dead_lettered", f.cfg.HealthWindow, now); ok && span > 0 {
			eh.DeadLetterPerMin = float64(d) / span.Minutes()
		}
		if d, span, ok := f.CounterDelta(id, "engine_requeued", f.cfg.HealthWindow, now); ok && span > 0 {
			eh.RequeuePerMin = float64(d) / span.Minutes()
		}
		if done, _, ok := f.CounterDelta(id, "ws_results", f.cfg.HealthWindow, now); ok && done > 0 {
			failed, _, _ := f.CounterDelta(id, "ws_results_failed", f.cfg.HealthWindow, now)
			eh.FailureRatio = float64(failed) / float64(done)
		}
		if hs, ok := s.HistogramValue("ws_task_roundtrip"); ok {
			eh.P99LatencySeconds = hs.P99.Seconds()
		}
		h.Endpoints = append(h.Endpoints, eh)
		h.EndpointsTotal++
		if eh.Online {
			h.EndpointsOnline++
		}
	}
	var routedTotal int64
	for i := range h.Endpoints {
		routedTotal += h.Endpoints[i].Routed
	}
	if routedTotal > 0 {
		for i := range h.Endpoints {
			h.Endpoints[i].RoutedShare = float64(h.Endpoints[i].Routed) / float64(routedTotal)
		}
	}
	return h
}

// escapeLabelValue escapes a Prometheus label value.
func escapeLabelValue(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// federation sample carriers, grouped per exported family so each `# TYPE`
// header appears exactly once regardless of endpoint count.
type fedSample struct {
	labels string
	value  int64
	// float selects fval over value for families whose samples are not
	// integral (the synthetic service-rate gauge).
	float bool
	fval  float64
	hist  metrics.HistogramStats
}

type fedFamily struct {
	kind    string // "counter" | "gauge" | "summary"
	samples []fedSample
}

// WriteFederation renders every endpoint's merged snapshot in the Prometheus
// federation style: one family per metric, samples labeled by endpoint_id.
// Synthetic per-endpoint `up` and `staleness_seconds` gauges make liveness
// scrapeable without a separate endpoint.
func (f *FleetStore) WriteFederation(w io.Writer, now time.Time) error {
	prefix := metrics.SanitizeName(f.cfg.Prefix) + "_"
	fams := make(map[string]*fedFamily)
	add := func(name, kind string, s fedSample) {
		fam, ok := fams[name]
		if !ok {
			fam = &fedFamily{kind: kind}
			fams[name] = fam
		}
		fam.samples = append(fam.samples, s)
	}

	for _, id := range f.Endpoints() {
		s, ok := f.Merged(id)
		if !ok {
			continue
		}
		labels := fmt.Sprintf("endpoint_id=%q", escapeLabelValue(id))
		for name, v := range s.Counters {
			add(prefix+metrics.SanitizeName(name)+"_total", "counter", fedSample{labels: labels, value: v})
		}
		for name, v := range s.Gauges {
			add(prefix+metrics.SanitizeName(name), "gauge", fedSample{labels: labels, value: v})
		}
		for name, hs := range s.Histograms {
			mn := prefix + metrics.SanitizeName(name)
			if metrics.HistogramSeconds(name) {
				mn += "_seconds"
			}
			add(mn, "summary", fedSample{labels: labels, hist: hs})
		}
		var up int64
		var staleSec float64
		if stale, ok := f.Staleness(id, now); ok {
			staleSec = stale.Seconds()
			if stale <= f.cfg.StaleAfter {
				up = 1
			}
		}
		add(prefix+"up", "gauge", fedSample{labels: labels, value: up})
		add(prefix+"staleness_seconds", "gauge", fedSample{labels: labels, value: int64(staleSec)})
		if rate, ok := f.ServiceRate(id); ok {
			add(prefix+"service_rate_tasks_per_second", "gauge", fedSample{labels: labels, float: true, fval: rate})
		}
	}

	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fam := fams[name]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, fam.kind); err != nil {
			return err
		}
		for _, smp := range fam.samples {
			if fam.kind != "summary" {
				if smp.float {
					if _, err := fmt.Fprintf(w, "%s{%s} %g\n", name, smp.labels, smp.fval); err != nil {
						return err
					}
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{%s} %d\n", name, smp.labels, smp.value); err != nil {
					return err
				}
				continue
			}
			// Duration histograms export seconds; unit histograms use the
			// 1s==1-unit encoding, so Seconds() is the unit count either way.
			toVal := func(d time.Duration) float64 { return d.Seconds() }
			for _, q := range []struct {
				q string
				v time.Duration
			}{{"0.5", smp.hist.P50}, {"0.95", smp.hist.P95}, {"0.99", smp.hist.P99}} {
				if _, err := fmt.Fprintf(w, "%s{%s,quantile=%q} %g\n", name, smp.labels, q.q, toVal(q.v)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum{%s} %g\n%s_count{%s} %d\n",
				name, smp.labels, toVal(smp.hist.Sum), name, smp.labels, smp.hist.Count); err != nil {
				return err
			}
		}
	}
	return nil
}
