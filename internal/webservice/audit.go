package webservice

import (
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// AuditEvent records one action for the security model's traceability
// requirement ("every action performed within the system ... is logged with
// detailed metadata").
type AuditEvent struct {
	Time     time.Time `json:"time"`
	Actor    string    `json:"actor"`
	Action   string    `json:"action"`
	Resource string    `json:"resource,omitempty"`
	Outcome  string    `json:"outcome"` // "ok" or the error string
	Detail   string    `json:"detail,omitempty"`
}

// auditLog is a bounded in-memory ring of events.
type auditLog struct {
	mu     sync.Mutex
	events []AuditEvent
	start  int
	count  int
}

func newAuditLog(capacity int) *auditLog {
	if capacity <= 0 {
		capacity = 4096
	}
	return &auditLog{events: make([]AuditEvent, capacity)}
}

func (a *auditLog) record(ev AuditEvent) {
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.count == len(a.events) {
		a.events[a.start] = ev
		a.start = (a.start + 1) % len(a.events)
		return
	}
	a.events[(a.start+a.count)%len(a.events)] = ev
	a.count++
}

// tail returns the most recent n events, oldest first.
func (a *auditLog) tail(n int) []AuditEvent {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n <= 0 || n > a.count {
		n = a.count
	}
	out := make([]AuditEvent, 0, n)
	for i := a.count - n; i < a.count; i++ {
		out = append(out, a.events[(a.start+i)%len(a.events)])
	}
	return out
}

// audit records an action outcome on the service's log.
func (s *Service) audit(actor, action string, resource protocol.UUID, err error, detail string) {
	ev := AuditEvent{
		Actor: actor, Action: action,
		Resource: string(resource), Outcome: "ok", Detail: detail,
	}
	if err != nil {
		ev.Outcome = err.Error()
	}
	s.auditTrail.record(ev)
}

// AuditTail returns the most recent n audit events (all when n <= 0).
func (s *Service) AuditTail(n int) []AuditEvent {
	return s.auditTrail.tail(n)
}
