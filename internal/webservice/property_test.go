package webservice

import (
	"encoding/json"
	"math/rand"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

// TestPropertyTaskConservation drives the service with randomized agent
// behaviour (success, failure, nack-then-success, slow) and checks the
// global invariant: every submitted task reaches exactly one terminal
// state, and the terminal counts add up to the submission count.
func TestPropertyTaskConservation(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "prop", Owner: "o"})

	rng := rand.New(rand.NewSource(7))
	// A misbehaving agent: random outcomes, occasional redelivery.
	c, err := f.brk.Consume(TaskQueue(ep), 8)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	go func() {
		for m := range c.Messages() {
			var task protocol.Task
			if err := json.Unmarshal(m.Body, &task); err != nil {
				c.Reject(m.Tag)
				continue
			}
			switch rng.Intn(4) {
			case 0: // succeed
				res := protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte(`"ok"`)}
				b, _ := json.Marshal(res)
				f.brk.Publish(ResultQueue(ep), b)
				c.Ack(m.Tag)
			case 1: // fail
				res := protocol.Result{TaskID: task.ID, State: protocol.StateFailed, Error: "simulated"}
				b, _ := json.Marshal(res)
				f.brk.Publish(ResultQueue(ep), b)
				c.Ack(m.Tag)
			case 2: // nack once; redelivery succeeds
				if m.Redelivered {
					res := protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte(`"retried"`)}
					b, _ := json.Marshal(res)
					f.brk.Publish(ResultQueue(ep), b)
					c.Ack(m.Tag)
				} else {
					c.Nack(m.Tag)
				}
			default: // duplicate result then success (idempotency pressure)
				res := protocol.Result{TaskID: task.ID, State: protocol.StateSuccess, Output: []byte(`"dup"`)}
				b, _ := json.Marshal(res)
				f.brk.Publish(ResultQueue(ep), b)
				f.brk.Publish(ResultQueue(ep), b)
				c.Ack(m.Tag)
			}
		}
	}()

	const total = 120
	var ids []protocol.UUID
	for i := 0; i < total; i += 4 {
		reqs := make([]SubmitRequest, 4)
		for j := range reqs {
			reqs[j] = SubmitRequest{EndpointID: ep, FunctionID: fn, Payload: []byte(`{}`)}
		}
		batch, err := f.svc.Submit(f.token, reqs)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, batch...)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		counts := f.store.CountTasksByState()
		terminal := counts[protocol.StateSuccess] + counts[protocol.StateFailed] + counts[protocol.StateCancelled]
		if terminal == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("terminal = %d of %d (counts %v)", terminal, total, counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Conservation: terminal states partition the submissions exactly.
	counts := f.store.CountTasksByState()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != total {
		t.Errorf("state counts sum to %d, want %d: %v", sum, total, counts)
	}
	// Each task individually reached exactly one terminal state.
	for _, id := range ids {
		st, err := f.svc.GetTask(id)
		if err != nil {
			t.Fatalf("task %s lost: %v", id, err)
		}
		if !st.State.Terminal() {
			t.Errorf("task %s non-terminal: %s", id, st.State)
		}
	}
}
