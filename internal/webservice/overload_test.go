package webservice

import (
	"errors"
	"net/http/httptest"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/statestore"
)

// newOverloadFixture is newFixture with overload-protection config applied
// before construction.
func newOverloadFixture(t *testing.T, mod func(*Config)) *fixture {
	t.Helper()
	f := &fixture{
		store: statestore.New(),
		brk:   broker.New(),
		objs:  objectstore.New(),
		authS: auth.NewService(),
	}
	cfg := Config{Store: f.store, Broker: f.brk, Objects: f.objs, Auth: f.authS}
	if mod != nil {
		mod(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.svc = svc
	tok, err := f.authS.Issue(
		auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	f.token = tok
	t.Cleanup(func() {
		f.svc.Close()
		f.brk.Close()
	})
	return f
}

func TestSubmitIdempotencyKey(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})

	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}
	ids1, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	// A retry with the same key returns the original IDs and creates nothing.
	before := f.store.CountTasks()
	ids2, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{IdempotencyKey: "retry-1"})
	if err != nil {
		t.Fatal(err)
	}
	if len(ids2) != 1 || ids2[0] != ids1[0] {
		t.Fatalf("replay ids = %v, want %v", ids2, ids1)
	}
	if after := f.store.CountTasks(); after != before {
		t.Fatalf("replay created tasks: %d -> %d", before, after)
	}
	// A different key mints fresh tasks.
	ids3, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{IdempotencyKey: "retry-2"})
	if err != nil {
		t.Fatal(err)
	}
	if ids3[0] == ids1[0] {
		t.Fatal("distinct keys shared task IDs")
	}
}

func TestSubmitIdempotencyConcurrentRetries(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}

	const retries = 8
	got := make(chan protocol.UUID, retries)
	for i := 0; i < retries; i++ {
		go func() {
			ids, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{IdempotencyKey: "race"})
			if err != nil || len(ids) != 1 {
				got <- ""
				return
			}
			got <- ids[0]
		}()
	}
	first := <-got
	if first == "" {
		t.Fatal("submit failed")
	}
	for i := 1; i < retries; i++ {
		if id := <-got; id != first {
			t.Fatalf("racing retries minted different IDs: %s vs %s", id, first)
		}
	}
	if n := f.store.CountTasks(); n != 1 {
		t.Fatalf("task count = %d, want 1", n)
	}
}

func TestSubmitAdmissionRateShed(t *testing.T) {
	now := time.Unix(0, 0)
	adm := scheduler.NewAdmission(scheduler.AdmissionConfig{
		FillRate: 1, Burst: 2, FairWeight: -1, MaxInFlight: -1,
		Now: func() time.Time { return now },
	})
	f := newOverloadFixture(t, func(c *Config) { c.Admission = adm })
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}

	for i := 0; i < 2; i++ {
		if _, err := f.svc.Submit(f.token, req); err != nil {
			t.Fatalf("submit %d within burst: %v", i, err)
		}
	}
	_, err := f.svc.Submit(f.token, req)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-burst err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T does not carry OverloadError", err)
	}
	if oe.Status != 429 {
		t.Errorf("status = %d, want 429", oe.Status)
	}
	if oe.RetryAfter < time.Second {
		t.Errorf("RetryAfter = %s, want >= 1s", oe.RetryAfter)
	}
	// Tokens refill with time: the same tenant is admitted again later.
	now = now.Add(5 * time.Second)
	if _, err := f.svc.Submit(f.token, req); err != nil {
		t.Fatalf("submit after refill: %v", err)
	}
}

func TestSubmitInFlightReleasedOnResult(t *testing.T) {
	adm := scheduler.NewAdmission(scheduler.AdmissionConfig{
		FillRate: 1000, Burst: 1000, FairWeight: -1, MaxInFlight: 2,
	})
	f := newOverloadFixture(t, func(c *Config) { c.Admission = adm })
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}

	// Fill the in-flight cap with no agent attached.
	ids := make([]protocol.UUID, 0, 2)
	for i := 0; i < 2; i++ {
		out, err := f.svc.Submit(f.token, req)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, out...)
	}
	if _, err := f.svc.Submit(f.token, req); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over in-flight cap err = %v, want ErrOverloaded", err)
	}
	// Completing the tasks releases the slots.
	f.fakeAgent(t, ep)
	for _, id := range ids {
		waitTask(t, f.svc, id, 5*time.Second)
	}
	deadline := time.Now().Add(5 * time.Second)
	for adm.InFlight("alice@uchicago.edu") != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("inflight = %d, want 0", adm.InFlight("alice@uchicago.edu"))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := f.svc.Submit(f.token, req); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
}

func TestSubmitBacklogShed(t *testing.T) {
	f := newOverloadFixture(t, func(c *Config) { c.BacklogShedThreshold = 10 })
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}

	backlog := 12
	if err := f.svc.ReportEndpointLoad(ep, statestore.EndpointLoad{EgressBacklog: &backlog}); err != nil {
		t.Fatal(err)
	}
	_, err := f.svc.Submit(f.token, req)
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Status != 503 {
		t.Fatalf("batch submit err = %v, want 503 OverloadError", err)
	}
	// Interactive traffic tolerates twice the threshold.
	if _, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{Interactive: true}); err != nil {
		t.Fatalf("interactive under 2x threshold: %v", err)
	}
	backlog = 25
	if err := f.svc.ReportEndpointLoad(ep, statestore.EndpointLoad{EgressBacklog: &backlog}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{Interactive: true}); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("interactive over 2x threshold err = %v", err)
	}
	// An endpoint that has never reported a backlog is never shed.
	ep2 := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep2", Owner: "alice@uchicago.edu"})
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep2, FunctionID: fn, Payload: []byte(`1`)}}); err != nil {
		t.Fatalf("no-backlog endpoint shed: %v", err)
	}
}

func TestSubmitQueueFullShedsAndFailsTasks(t *testing.T) {
	f := newOverloadFixture(t, func(c *Config) { c.QueueLimit = 5 })
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	req := []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}}

	// No consumer: the queue fills to the batch watermark (80% of 5 = 4).
	for i := 0; i < 4; i++ {
		if _, err := f.svc.Submit(f.token, req); err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	ids, err := f.svc.Submit(f.token, req)
	if err == nil {
		t.Fatalf("expected shed, got ids %v", ids)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.Status != 503 {
		t.Fatalf("err = %v, want 503 OverloadError", err)
	}
	if oe.RetryAfter <= 0 {
		t.Error("queue-full shed missing Retry-After")
	}
	// The shed batch's tasks reached a terminal state (Failed), not limbo.
	byState := f.store.CountTasksByState()
	if byState[protocol.StateFailed] != 1 {
		t.Fatalf("failed tasks = %d, want 1 (states: %v)", byState[protocol.StateFailed], byState)
	}
	// Interactive priority still clears the watermark up to the hard limit.
	if _, err := f.svc.SubmitBatch(f.token, req, SubmitOptions{Interactive: true}); err != nil {
		t.Fatalf("interactive above watermark: %v", err)
	}
	// Shed metrics registered under the overload registry.
	snap := f.svc.Overload.TakeSnapshot()
	if snap.Counters["shed"] == 0 {
		t.Error("gc_shed_total not incremented")
	}
	if snap.Counters["queue_shed"] == 0 {
		t.Error("queue_shed not incremented")
	}
}

func TestOverloadHTTPResponse(t *testing.T) {
	err := error(&OverloadError{Status: 429, RetryAfter: 1500 * time.Millisecond, Reason: "admission rate"})
	if got := statusFor(err); got != 429 {
		t.Fatalf("statusFor = %d, want 429", got)
	}
	rr := httptest.NewRecorder()
	writeError(rr, statusFor(err), err)
	if rr.Code != 429 {
		t.Fatalf("code = %d", rr.Code)
	}
	// 1.5s rounds up to 2 whole seconds.
	if h := rr.Header().Get("Retry-After"); h != "2" {
		t.Fatalf("Retry-After = %q, want 2", h)
	}
	// Non-overload errors carry no Retry-After.
	rr2 := httptest.NewRecorder()
	writeError(rr2, 400, errors.New("bad"))
	if h := rr2.Header().Get("Retry-After"); h != "" {
		t.Fatalf("unexpected Retry-After %q", h)
	}
}
