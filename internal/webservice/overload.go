package webservice

import (
	"errors"
	"fmt"
	"hash/fnv"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// Overload protection: the submit front door applies per-tenant admission
// control (token bucket modulated by fairshare usage), sheds when a target
// endpoint's egress backlog signals downstream saturation, and converts
// broker queue-depth rejections into retryable errors. Every shed carries a
// computed Retry-After so well-behaved clients back off instead of
// retry-storming, and every admitted task holds one in-flight slot that is
// released exactly when the task reaches its terminal state (result
// recorded, cancelled, or lease-expired).

// ErrOverloaded is the sentinel wrapped by every shed decision; clients
// match it with errors.Is.
var ErrOverloaded = errors.New("webservice: overloaded")

// OverloadError is a shed decision: Status is the HTTP status the front end
// returns (429 for admission rejections the client caused, 503 for
// downstream pressure the client merely observes) and RetryAfter is the
// server's backoff hint.
type OverloadError struct {
	Status     int
	RetryAfter time.Duration
	Reason     string
}

func (e *OverloadError) Error() string {
	return fmt.Sprintf("webservice: overloaded (%s): retry after %s", e.Reason, e.RetryAfter)
}

func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// idemStripes is the stripe count for idempotency-key submit serialization.
// Two concurrent submits with the same (owner, key) must not both pass the
// lookup and create duplicate task sets; striping bounds the lock footprint
// while keeping unrelated keys concurrent.
const idemStripes = 64

// lockIdem serializes submissions sharing one idempotency key and returns
// the unlock function.
func (s *Service) lockIdem(owner, key string) func() {
	h := fnv.New32a()
	h.Write([]byte(owner))
	h.Write([]byte{0})
	h.Write([]byte(key))
	mu := &s.idemMu[h.Sum32()%idemStripes]
	mu.Lock()
	return mu.Unlock
}

// admit charges n task slots against the tenant's admission budget. A nil
// admission controller admits everything (overload protection off).
func (s *Service) admit(user string, n int) error {
	if s.cfg.Admission == nil {
		return nil
	}
	d := s.cfg.Admission.Admit(user, n)
	if !d.OK {
		s.Overload.Counter("admission_rejected_" + d.Reason).Inc()
		s.Overload.Counter("shed").Inc()
		s.audit(user, "submit_shed", "", ErrOverloaded, d.Reason)
		return &OverloadError{
			Status:     429, // the client's own rate; it should slow down
			RetryAfter: d.RetryAfter,
			Reason:     "admission " + d.Reason,
		}
	}
	s.Overload.Counter("admission_admitted").Add(int64(n))
	return nil
}

// release returns n slots to the tenant's in-flight budget (no-op without an
// admission controller).
func (s *Service) release(user string, n int) {
	if s.cfg.Admission == nil || n <= 0 {
		return
	}
	s.cfg.Admission.Release(user, n)
}

// releaseTerminal settles one task's admission accounting at its terminal
// transition: the in-flight slot frees and the fairshare ledger is charged
// with the task's node-time, which shrinks a heavy tenant's future refill
// rate.
func (s *Service) releaseTerminal(task protocol.Task, created time.Time) {
	if s.cfg.Admission == nil || task.UserIdentity == "" {
		return
	}
	s.cfg.Admission.Release(task.UserIdentity, 1)
	elapsed := time.Duration(0)
	if !created.IsZero() {
		elapsed = time.Since(created)
	}
	nodes := task.Resources.NumNodes
	if nodes < 1 {
		nodes = 1
	}
	s.cfg.Admission.Charge(task.UserIdentity, nodes, elapsed)
}

// checkBacklog sheds a submission when the target endpoint's self-reported
// egress backlog (completed results not yet published — the truest signal of
// a drowning endpoint) exceeds the configured threshold. Interactive
// submissions tolerate twice the batch threshold, mirroring the broker's
// watermark split. An endpoint that has never reported a backlog is never
// shed on this signal.
func (s *Service) checkBacklog(target protocol.UUID, interactive bool) error {
	if s.cfg.BacklogShedThreshold <= 0 {
		return nil
	}
	ep, err := s.cfg.Store.GetEndpoint(target)
	if err != nil {
		return nil
	}
	return s.checkBacklogRecord(ep, interactive)
}

// checkBacklogRecord is checkBacklog against an already-fetched record (the
// routing path holds cached member records). A report older than the
// staleness horizon (three heartbeat intervals) is treated as unknown, not
// trusted: a dead endpoint's last backlog must neither shed traffic forever
// nor, once it drains to zero in its final report, absorb it forever.
func (s *Service) checkBacklogRecord(ep statestore.EndpointRecord, interactive bool) error {
	threshold := s.cfg.BacklogShedThreshold
	if threshold <= 0 {
		return nil
	}
	if ep.Load == nil || ep.Load.EgressBacklog == nil {
		return nil
	}
	if age := ep.LoadAge(time.Now()); age < 0 || age >= s.staleAfter() {
		return nil
	}
	limit := threshold
	if interactive {
		limit = 2 * threshold
	}
	backlog := *ep.Load.EgressBacklog
	if backlog < limit {
		return nil
	}
	target := ep.ID
	s.Overload.Counter("backlog_shed").Inc()
	s.Overload.Counter("shed").Inc()
	s.shedLocal(target)
	return &OverloadError{
		Status:     503, // endpoint pressure, not the client's fault
		RetryAfter: backlogRetryAfter(backlog, limit),
		Reason:     fmt.Sprintf("endpoint %s egress backlog %d over limit %d", target, backlog, limit),
	}
}

// backlogRetryAfter scales the backoff hint with how far over the limit the
// backlog is: 2s per multiple of the limit, clamped to [1s, 60s].
func backlogRetryAfter(backlog, limit int) time.Duration {
	if limit <= 0 {
		return time.Second
	}
	d := time.Duration(backlog/limit) * 2 * time.Second
	if d < time.Second {
		d = time.Second
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// queueFullError converts a broker depth rejection into the client-facing
// shed. The broker sheds when an endpoint's task queue is saturated, which
// drains at the endpoint's pace — a short fixed backoff is the honest hint.
func (s *Service) queueFullError(target protocol.UUID, err error) error {
	s.Overload.Counter("queue_shed").Inc()
	s.Overload.Counter("shed").Inc()
	s.shedLocal(target)
	return &OverloadError{
		Status:     503,
		RetryAfter: 5 * time.Second,
		Reason:     fmt.Sprintf("task queue saturated: %v", err),
	}
}

// shedLocal records a shed against the target endpoint's fleet-local
// registry, feeding the shed-ratio SLO rule (ws_sheds / ws_submit_attempts).
func (s *Service) shedLocal(target protocol.UUID) {
	if target == "" {
		return
	}
	if loc := s.Fleet.Local(string(target)); loc != nil {
		loc.Counter("sheds").Inc()
	}
}

// observeSubmitAttempt records one submit attempt (admitted or shed) against
// the target endpoint, the denominator of the shed-ratio SLO.
func (s *Service) observeSubmitAttempt(target protocol.UUID, n int) {
	if target == "" {
		return
	}
	if loc := s.Fleet.Local(string(target)); loc != nil {
		loc.Counter("submit_attempts").Add(int64(n))
	}
}
