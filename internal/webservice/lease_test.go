package webservice

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

// submitOne submits a single task and returns its ID.
func submitOne(t *testing.T, f *fixture, ep, fn protocol.UUID, group protocol.UUID) protocol.UUID {
	t.Helper()
	ids, err := f.svc.Submit(f.token, []SubmitRequest{{
		EndpointID: ep, FunctionID: fn, Payload: []byte(`{}`), GroupID: group,
	}})
	if err != nil {
		t.Fatal(err)
	}
	return ids[0]
}

func TestWatchdogLeaseFailsStrandedTasks(t *testing.T) {
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "doomed", Owner: "alice@uchicago.edu"})
	fn := f.registerFunction(t)
	group := protocol.NewUUID()
	if err := f.brk.Declare(GroupResultQueue(group)); err != nil {
		t.Fatal(err)
	}
	gq, err := f.brk.Consume(GroupResultQueue(group), 4)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(gq.Close)

	// No agent consumes the task queue; the endpoint then goes silent. The
	// watchdog must mark it offline and, once the lease runs out, fail the
	// stranded task so the submitter's future resolves.
	id := submitOne(t, f, ep, fn, group)
	stop := f.svc.StartWatchdog(WatchdogConfig{
		HeartbeatTimeout: 30 * time.Millisecond,
		Interval:         10 * time.Millisecond,
		TaskLease:        50 * time.Millisecond,
	})
	defer stop()

	st := waitTask(t, f.svc, id, 5*time.Second)
	if st.State != protocol.StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if !strings.Contains(st.Error, "lease expired") {
		t.Errorf("error = %q, want lease expiry", st.Error)
	}
	if v := f.svc.Metrics.Counter("lease_expired").Value(); v != 1 {
		t.Errorf("lease_expired = %d, want 1", v)
	}
	if v := f.svc.Metrics.Counter("endpoints_marked_offline").Value(); v < 1 {
		t.Errorf("endpoints_marked_offline = %d, want >= 1", v)
	}
	// The failure streams to the executor's group queue.
	select {
	case m := <-gq.Messages():
		var res protocol.Result
		if err := json.Unmarshal(m.Body, &res); err != nil {
			t.Fatal(err)
		}
		if res.TaskID != id || res.State != protocol.StateFailed {
			t.Errorf("group result = %+v", res)
		}
		gq.Ack(m.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("lease failure never streamed to group queue")
	}
}

func TestHeartbeatsDeferLeaseExpiry(t *testing.T) {
	// While heartbeats keep arriving the endpoint stays online and the lease
	// never applies, even when the task far exceeds the lease duration; only
	// after heartbeats stop does the task expire.
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "alive", Owner: "alice@uchicago.edu"})
	fn := f.registerFunction(t)
	id := submitOne(t, f, ep, fn, "")

	stop := f.svc.StartWatchdog(WatchdogConfig{
		HeartbeatTimeout: 40 * time.Millisecond,
		Interval:         10 * time.Millisecond,
		TaskLease:        20 * time.Millisecond,
	})
	defer stop()

	// Heartbeat for ~8 lease periods.
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		for i := 0; i < 16; i++ {
			_ = f.svc.SetEndpointStatus(ep, true)
			time.Sleep(10 * time.Millisecond)
		}
	}()
	<-hbDone
	st, err := f.svc.GetTask(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State.Terminal() {
		t.Fatalf("task reached %s while endpoint was heartbeating", st.State)
	}
	// Heartbeats stop; the offline + lease path now fires.
	st = waitTask(t, f.svc, id, 5*time.Second)
	if st.State != protocol.StateFailed {
		t.Errorf("state = %s, want failed after heartbeats stopped", st.State)
	}
}

func TestLeaseExpiryLosesRaceToRealResult(t *testing.T) {
	// A terminal result recorded before the sweep wins; the sweep must not
	// double-fail the task or inflate the lease counter.
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "racy", Owner: "alice@uchicago.edu"})
	f.fakeAgent(t, ep)
	fn := f.registerFunction(t)
	id := submitOne(t, f, ep, fn, "")
	st := waitTask(t, f.svc, id, 5*time.Second)
	if st.State != protocol.StateSuccess {
		t.Fatalf("state = %s", st.State)
	}
	// Endpoint dies after completing the task; lease sweep runs over it.
	_ = f.svc.SetEndpointStatus(ep, false)
	f.svc.expireLeases(time.Nanosecond)
	st2, err := f.svc.GetTask(id)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != protocol.StateSuccess {
		t.Errorf("state = %s, terminal result overwritten by lease sweep", st2.State)
	}
	if v := f.svc.Metrics.Counter("lease_expired").Value(); v != 0 {
		t.Errorf("lease_expired = %d, want 0", v)
	}
}
