package webservice

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/statestore"
)

func TestDashboardRequiresToken(t *testing.T) {
	h := newHTTPFixture(t)
	resp, err := http.Get("http://" + h.srv.Addr() + "/dashboard")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: %d", resp.StatusCode)
	}
	resp, _ = h.do(t, "GET", "/dashboard?token=gc_bogus", "", nil)
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token: %d", resp.StatusCode)
	}
}

func TestDashboardRenders(t *testing.T) {
	h := newHTTPFixture(t)
	fn := h.registerFunction(t)
	ep := h.registerEndpoint(t, RegisterEndpointRequest{Name: "render-me", Owner: "o"})
	h.svc.ReportEndpointLoad(ep, statestore.EndpointLoad{TotalWorkers: 4, FreeWorkers: 2, TasksReceived: 7})
	h.fakeAgent(t, ep)
	ids, _ := h.svc.Submit(h.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`"x"`)}})
	waitTask(t, h.svc, ids[0], 5*time.Second)

	resp, body := h.do(t, "GET", "/dashboard?token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	html := string(body)
	for _, want := range []string{
		"render-me",         // fleet table
		"2/4",               // worker load
		"<th>success</th>",  // task state columns
		"register_endpoint", // audit trail
		"text/html",
	} {
		if want == "text/html" {
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/html") {
				t.Errorf("content type = %q", ct)
			}
			continue
		}
		if !strings.Contains(html, want) {
			t.Errorf("dashboard missing %q", want)
		}
	}
}
