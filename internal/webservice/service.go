// Package webservice implements the cloud-hosted Globus Compute web service:
// a REST API for function registration, endpoint registration, batched task
// submission, and task status; per-endpoint task and result queues on the
// message broker; a result processor; payload spill to the object store; and
// enforcement of the 10 MB payload limit, allowed-function lists, and
// authentication policies. Multi-user endpoints are driven through their
// command queue (start-user-endpoint requests keyed by configuration hash).
package webservice

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/metrics"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/obs"
	"globuscompute/internal/placement"
	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/serialize"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
)

// Queue name builders shared with endpoint agents and the SDK.
func TaskQueue(ep protocol.UUID) string       { return "tasks." + string(ep) }
func ResultQueue(ep protocol.UUID) string     { return "results." + string(ep) }
func CommandQueue(ep protocol.UUID) string    { return "mepcmd." + string(ep) }
func GroupResultQueue(g protocol.UUID) string { return "results.group." + string(g) }

// Common errors.
var (
	ErrFunctionNotAllowed = errors.New("webservice: function not in endpoint allowlist")
	ErrEndpointOffline    = errors.New("webservice: endpoint offline")
	ErrNeedsUserConfig    = errors.New("webservice: multi-user endpoint requires a user endpoint configuration")
)

// StartEndpointCommand is the message placed on a multi-user endpoint's
// command queue (Fig. 1 step 2): spawn (or reuse) a user endpoint for the
// given identity and configuration.
type StartEndpointCommand struct {
	ChildEndpointID protocol.UUID   `json:"child_endpoint_id"`
	UserIdentity    auth.Identity   `json:"user_identity"`
	UserConfig      json.RawMessage `json:"user_config"`
	ConfigHash      string          `json:"config_hash"`
}

// Config assembles a service from its substrates.
type Config struct {
	Store   *statestore.Store
	Broker  *broker.Broker
	Objects *objectstore.Store
	Auth    *auth.Service
	// InlineThreshold is the payload size above which payloads spill to
	// the object store (default serialize.DefaultInlineThreshold).
	InlineThreshold int
	// PayloadLimit caps task/result payloads (default serialize.MaxPayload,
	// the paper's 10 MB).
	PayloadLimit int
	// Tracer, when set, records submit and result-processing spans and
	// propagates trace context onto published tasks and results. Nil
	// disables tracing.
	Tracer *trace.Tracer
	// Fleet, when set, overrides the default fleet metrics store (tests and
	// the testbed tune ring sizes and staleness windows through this).
	Fleet *obs.FleetStore
	// SLORules overrides the default SLO rule set (nil = obs.DefaultRules).
	SLORules []obs.Rule
	// Log overrides the service's structured logger (default: the process
	// pipeline's "webservice" component).
	Log *obs.Logger
	// Logs is the ring buffer served by GET /debug/logs (default: the
	// process pipeline's buffer).
	Logs *obs.LogBuffer
	// DurableMetrics, when the service runs on a durable store (see
	// internal/durable), is that layer's registry; /metrics exposes it under
	// the gc_durable prefix (WAL appends/fsyncs, snapshot age, replay
	// timings). Nil when running in-memory.
	DurableMetrics *metrics.Registry
	// Admission, when set, gates every submission through per-tenant
	// token-bucket rate limiting and in-flight caps (see
	// internal/scheduler.Admission and overload.go). Nil admits everything.
	Admission *scheduler.Admission
	// QueueLimit, when > 0, bounds every endpoint task queue's depth in the
	// broker; batch-priority publishes shed at the 80% watermark and
	// interactive ones at the limit. Zero leaves queues unbounded.
	QueueLimit int
	// BacklogShedThreshold, when > 0, sheds batch submissions targeting an
	// endpoint whose heartbeat-reported egress backlog meets the threshold
	// (interactive submissions tolerate twice it). Zero disables the signal.
	BacklogShedThreshold int
	// HeartbeatInterval is the fleet's expected agent heartbeat cadence
	// (default 1s). It sizes the load-report staleness horizon: placement
	// and the backlog-shed path treat reports older than three intervals as
	// unknown rather than trusting a dead endpoint's last words.
	HeartbeatInterval time.Duration
	// RoutePolicy is the default placement policy for routing groups and
	// multi-user warm-candidate selection ("random", "round-robin",
	// "least-backlog", "p2c"; default "p2c"). Groups may override it per
	// record.
	RoutePolicy string
	// RouteSeed fixes placement randomness (benchmarks and tests; 0 uses a
	// policy-derived seed).
	RouteSeed int64
	// UserEndpointReplicas is how many user endpoints one (identity, config
	// hash) pair scales out to behind a multi-user endpoint (default 1, the
	// original single-child behavior). With N > 1 the first N submissions
	// each spawn a replica and later ones pick among the warm replicas via
	// the placement policy.
	UserEndpointReplicas int
	// Pprof registers net/http/pprof handlers under /debug/pprof/ on the
	// REST mux, behind the same ?token= authentication as the other debug
	// endpoints. Off by default: profiling exposes process internals and
	// costs CPU while sampling — opt in per process (gc-webservice -pprof).
	Pprof bool
}

// Service is the web service core, independent of its HTTP front end.
type Service struct {
	cfg Config

	mu sync.Mutex
	// resultConsumers tracks per-endpoint result processor goroutines.
	resultConsumers map[protocol.UUID]*broker.Consumer
	closed          bool

	wg         sync.WaitGroup
	auditTrail *auditLog
	log        *obs.Logger
	Metrics    *metrics.Registry

	// Overload is the overload-protection registry, exported on /metrics
	// under the bare gc prefix (gc_admission_*_total, gc_shed_total).
	Overload *metrics.Registry
	// idemMu stripes submissions by idempotency key (see overload.go).
	idemMu [idemStripes]sync.Mutex

	// Fleet is the per-endpoint metrics time-series store fed by heartbeat
	// snapshots; SLO evaluates burn-rate rules over it. Both back the
	// /metrics/fleet and /debug/fleet endpoints.
	Fleet *obs.FleetStore
	SLO   *obs.SLOEngine

	// Routing is the placement registry (route_picks*, route_reroutes,
	// route_pick_staleness), exported on /metrics under the bare gc prefix
	// like the overload series.
	Routing *metrics.Registry
	// routeMu guards routeGroups, the per-routing-group selector +
	// candidate-snapshot cache (see routing.go).
	routeMu     sync.Mutex
	routeGroups map[protocol.UUID]*groupRoute
	// mepSel picks among warm user-endpoint replicas behind a MEP.
	mepSel *placement.Selector
}

// New builds the service, filling config defaults.
func New(cfg Config) (*Service, error) {
	if cfg.Store == nil || cfg.Broker == nil || cfg.Objects == nil || cfg.Auth == nil {
		return nil, errors.New("webservice: store, broker, objects, and auth are all required")
	}
	if cfg.InlineThreshold <= 0 {
		cfg.InlineThreshold = serialize.DefaultInlineThreshold
	}
	if cfg.PayloadLimit <= 0 {
		cfg.PayloadLimit = serialize.MaxPayload
	}
	if cfg.Log == nil {
		cfg.Log = obs.Component("webservice")
	}
	if cfg.Logs == nil {
		cfg.Logs = obs.DefaultBuffer()
	}
	fleet := cfg.Fleet
	if fleet == nil {
		fleet = obs.NewFleetStore(obs.FleetConfig{})
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.RoutePolicy == "" {
		cfg.RoutePolicy = string(placement.PolicyP2C)
	}
	s := &Service{
		cfg:             cfg,
		resultConsumers: make(map[protocol.UUID]*broker.Consumer),
		auditTrail:      newAuditLog(0),
		log:             cfg.Log,
		Metrics:         metrics.NewRegistry(),
		Overload:        metrics.NewRegistry(),
		Routing:         metrics.NewRegistry(),
		Fleet:           fleet,
		SLO:             obs.NewSLOEngine(fleet, cfg.SLORules),
		routeGroups:     make(map[protocol.UUID]*groupRoute),
	}
	var err error
	if s.mepSel, err = s.newSelector(cfg.RoutePolicy); err != nil {
		return nil, err
	}
	// Alert counts surface on /metrics alongside the service counters.
	s.SLO.SetRegistry(s.Metrics)
	return s, nil
}

// RecordHeartbeat applies one agent heartbeat: endpoint status, the optional
// load report, and the optional piggybacked metrics snapshot. A heartbeat
// without a snapshot still refreshes fleet liveness; an offline heartbeat
// marks the endpoint cleanly stopped so staleness alerting stands down (a
// crashed agent never sends one — that silence is what fires the SLO).
func (s *Service) RecordHeartbeat(id protocol.UUID, online bool, load *statestore.EndpointLoad, snap *metrics.Snapshot) error {
	status := statestore.EndpointOffline
	if online {
		status = statestore.EndpointOnline
	}
	if err := s.cfg.Store.SetEndpointHeartbeat(id, status, load); err != nil {
		return err
	}
	now := time.Now()
	if load != nil {
		// Fold the load report into the fleet store before sampling the ring:
		// utilization gauges for endpoints with no metrics registry, and the
		// received/published deltas that drive the service-rate EWMA.
		s.Fleet.ObserveLoad(string(id), obs.LoadReport{
			PendingTasks: load.PendingTasks, TotalWorkers: load.TotalWorkers,
			FreeWorkers: load.FreeWorkers, TasksReceived: load.TasksReceived,
			ResultsPublished: load.ResultsPublished, EgressBacklog: load.EgressBacklog,
		}, now)
	}
	if snap != nil && snap.Len() > 0 {
		s.Fleet.Ingest(string(id), *snap, now)
	} else {
		s.Fleet.Touch(string(id), now)
	}
	if !online {
		s.Fleet.MarkStopped(string(id))
	}
	return nil
}

// StartSLOEvaluator runs the background tick+evaluate loop; the returned stop
// function blocks until the loop exits. The /debug/fleet handler also
// evaluates on demand, so the loop mainly keeps alert state moving while
// nobody is polling.
func (s *Service) StartSLOEvaluator(interval time.Duration) (stop func()) {
	return s.SLO.Start(interval)
}

// Close stops result processors.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	consumers := make([]*broker.Consumer, 0, len(s.resultConsumers))
	for _, c := range s.resultConsumers {
		consumers = append(consumers, c)
	}
	s.mu.Unlock()
	for _, c := range consumers {
		c.Close()
	}
	s.wg.Wait()
}

// --- functions ---

// RegisterFunction stores an immutable function and returns its UUID.
func (s *Service) RegisterFunction(owner string, kind protocol.FunctionKind, definition []byte) (protocol.UUID, error) {
	if len(definition) == 0 {
		return "", errors.New("webservice: empty function definition")
	}
	switch kind {
	case protocol.KindPython, protocol.KindShell, protocol.KindMPI:
	default:
		return "", fmt.Errorf("webservice: unknown function kind %q", kind)
	}
	id := protocol.NewUUID()
	err := s.cfg.Store.PutFunction(statestore.FunctionRecord{
		ID: id, Owner: owner, Kind: kind, Definition: definition,
	})
	s.audit(owner, "register_function", id, err, string(kind))
	if err != nil {
		return "", err
	}
	s.Metrics.Counter("functions_registered").Inc()
	return id, nil
}

// GetFunction fetches a registered function.
func (s *Service) GetFunction(id protocol.UUID) (statestore.FunctionRecord, error) {
	return s.cfg.Store.GetFunction(id)
}

// --- endpoints ---

// RegisterEndpointRequest registers or re-registers an endpoint.
type RegisterEndpointRequest struct {
	ID               protocol.UUID     `json:"endpoint_id,omitempty"` // empty = new
	Name             string            `json:"name"`
	Owner            string            `json:"owner"`
	MultiUser        bool              `json:"multi_user,omitempty"`
	Parent           protocol.UUID     `json:"parent,omitempty"`
	Metadata         map[string]string `json:"metadata,omitempty"`
	AllowedFunctions []protocol.UUID   `json:"allowed_functions,omitempty"`
	AuthPolicy       string            `json:"auth_policy,omitempty"`
}

// RegisterEndpoint creates the endpoint record and its queues, and starts
// the result processor for it. It returns the endpoint ID.
func (s *Service) RegisterEndpoint(req RegisterEndpointRequest) (protocol.UUID, error) {
	id := req.ID
	if id == "" {
		id = protocol.NewUUID()
	} else if !id.Valid() {
		return "", fmt.Errorf("webservice: invalid endpoint ID %q", id)
	}
	rec := statestore.EndpointRecord{
		ID: id, Name: req.Name, Owner: req.Owner,
		MultiUser: req.MultiUser, Parent: req.Parent,
		Status: statestore.EndpointOffline, Metadata: req.Metadata,
		AllowedFunctions: req.AllowedFunctions, AuthPolicy: req.AuthPolicy,
	}
	if err := s.cfg.Store.UpsertEndpoint(rec); err != nil {
		return "", err
	}
	if err := s.declareTaskQueue(id); err != nil {
		return "", err
	}
	if err := s.cfg.Broker.Declare(ResultQueue(id)); err != nil {
		return "", err
	}
	if req.MultiUser {
		if err := s.cfg.Broker.Declare(CommandQueue(id)); err != nil {
			return "", err
		}
	}
	if err := s.startResultProcessor(id); err != nil {
		return "", err
	}
	detail := "single-user"
	if req.MultiUser {
		detail = "multi-user"
	}
	s.audit(req.Owner, "register_endpoint", id, nil, detail)
	s.Metrics.Counter("endpoints_registered").Inc()
	return id, nil
}

// ResumeEndpoints re-attaches the service to every endpoint already present
// in the statestore: queues are re-declared and result processors restarted.
// A service restarted on a durable store calls this after recovery so
// buffered results drain immediately instead of waiting for each agent to
// re-register.
func (s *Service) ResumeEndpoints() error {
	resumed := 0
	for _, ep := range s.cfg.Store.ListEndpoints(statestore.EndpointFilter{}) {
		if err := s.declareTaskQueue(ep.ID); err != nil {
			return err
		}
		if err := s.cfg.Broker.Declare(ResultQueue(ep.ID)); err != nil {
			return err
		}
		if ep.MultiUser {
			if err := s.cfg.Broker.Declare(CommandQueue(ep.ID)); err != nil {
				return err
			}
		}
		if err := s.startResultProcessor(ep.ID); err != nil {
			return err
		}
		resumed++
	}
	if resumed > 0 {
		s.log.Info("resumed recovered endpoints", "endpoints", resumed)
	}
	return nil
}

// declareTaskQueue declares an endpoint's task queue and applies the
// configured depth bound so the broker sheds publishes once the endpoint
// falls behind.
func (s *Service) declareTaskQueue(id protocol.UUID) error {
	q := TaskQueue(id)
	if err := s.cfg.Broker.Declare(q); err != nil {
		return err
	}
	if s.cfg.QueueLimit > 0 {
		if err := s.cfg.Broker.SetQueueLimit(q, s.cfg.QueueLimit); err != nil {
			return err
		}
	}
	return nil
}

// SetEndpointStatus records an agent heartbeat.
func (s *Service) SetEndpointStatus(id protocol.UUID, online bool) error {
	status := statestore.EndpointOffline
	if online {
		status = statestore.EndpointOnline
	}
	return s.cfg.Store.SetEndpointStatus(id, status)
}

// ReportEndpointLoad records an agent's self-reported utilization.
func (s *Service) ReportEndpointLoad(id protocol.UUID, load statestore.EndpointLoad) error {
	return s.cfg.Store.SetEndpointLoad(id, load)
}

// GetEndpoint returns the endpoint record.
func (s *Service) GetEndpoint(id protocol.UUID) (statestore.EndpointRecord, error) {
	return s.cfg.Store.GetEndpoint(id)
}

// EndpointSummary is the discovery view of an endpoint (no queue or
// configuration details).
type EndpointSummary struct {
	ID        protocol.UUID             `json:"endpoint_id"`
	Name      string                    `json:"name"`
	Owner     string                    `json:"owner"`
	MultiUser bool                      `json:"multi_user"`
	Status    statestore.EndpointStatus `json:"status"`
	Metadata  map[string]string         `json:"metadata,omitempty"`
}

// SearchEndpoints finds endpoints whose name or metadata contains query
// (case-insensitive; empty matches all). Spawned user endpoints are
// excluded — users discover MEPs and single-user endpoints, not the
// per-user children.
func (s *Service) SearchEndpoints(query string) []EndpointSummary {
	q := strings.ToLower(query)
	var out []EndpointSummary
	for _, ep := range s.cfg.Store.ListEndpoints(statestore.EndpointFilter{}) {
		if ep.Parent != "" {
			continue
		}
		if q != "" && !endpointMatches(ep, q) {
			continue
		}
		out = append(out, EndpointSummary{
			ID: ep.ID, Name: ep.Name, Owner: ep.Owner,
			MultiUser: ep.MultiUser, Status: ep.Status, Metadata: ep.Metadata,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func endpointMatches(ep statestore.EndpointRecord, q string) bool {
	if strings.Contains(strings.ToLower(ep.Name), q) {
		return true
	}
	for k, v := range ep.Metadata {
		if strings.Contains(strings.ToLower(k), q) || strings.Contains(strings.ToLower(v), q) {
			return true
		}
	}
	return false
}

// startResultProcessor consumes the endpoint's result queue, records
// results, and republishes them onto group streams.
func (s *Service) startResultProcessor(id protocol.UUID) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("webservice: closed")
	}
	if _, dup := s.resultConsumers[id]; dup {
		return nil // re-registration; processor already attached
	}
	c, err := s.cfg.Broker.Consume(ResultQueue(id), 64)
	if err != nil {
		return err
	}
	s.resultConsumers[id] = c
	s.wg.Add(1)
	go s.runResultProcessor(c)
	return nil
}

// resultBatchMax bounds how many buffered results one statestore/ack round
// trip covers (matches the consumer prefetch).
const resultBatchMax = 64

// runResultProcessor drains a result consumer. The first receive blocks;
// whatever else is already buffered (up to resultBatchMax) is folded into
// the same batch, so one statestore write and one ack round trip cover a
// burst while a lone result is processed immediately.
func (s *Service) runResultProcessor(c *broker.Consumer) {
	defer s.wg.Done()
	msgs := c.Messages()
	for m := range msgs {
		batch := []broker.Message{m}
	drain:
		for len(batch) < resultBatchMax {
			select {
			case m2, ok := <-msgs:
				if !ok {
					break drain
				}
				batch = append(batch, m2)
			default:
				break drain
			}
		}
		s.processResultBatch(c, batch)
	}
}

// processResultBatch records a batch of result messages: parse and spill
// each, complete all tasks in one sharded statestore round trip, stream
// group results, and acknowledge every message in one batch. Malformed
// results are acked (dropped) rather than poison-pilled back onto the
// queue.
func (s *Service) processResultBatch(c *broker.Consumer, batch []broker.Message) {
	type pending struct {
		res protocol.Result
		sp  *trace.ActiveSpan
	}
	pendings := make([]pending, 0, len(batch))
	for _, m := range batch {
		res, sp, err := s.prepareResult(m.Body, m.Trace)
		if err != nil {
			s.log.WithTask(string(res.TaskID)).WithTrace(m.Trace).
				Warn("dropping unprocessable result", "error", err)
			continue
		}
		pendings = append(pendings, pending{res: res, sp: sp})
	}
	results := make([]protocol.Result, len(pendings))
	for i := range pendings {
		results[i] = pendings[i].res
	}
	errs := s.cfg.Store.CompleteTasks(results)
	// Batch-fetch the recorded tasks to find group streams to feed.
	ids := make([]protocol.UUID, 0, len(pendings))
	for i := range pendings {
		if errs[i] == nil {
			ids = append(ids, pendings[i].res.TaskID)
		}
	}
	recs := s.cfg.Store.GetTaskRecords(ids)
	for i := range pendings {
		p := &pendings[i]
		if errs[i] != nil {
			s.log.WithTask(string(p.res.TaskID)).WithTrace(p.res.Trace).
				Warn("result not recorded", "error", errs[i])
			p.sp.EndStatus("error")
			continue
		}
		s.Metrics.Counter("results_processed").Inc()
		if p.res.DeadLettered {
			// The engine gave up on this task after its attempt budget;
			// surface the count so operators can spot poison tasks.
			s.Metrics.Counter("deadlettered_tasks").Inc()
			s.log.WithTask(string(p.res.TaskID)).WithTrace(p.res.Trace).
				WithEndpoint(string(p.res.EndpointID)).
				Warn("task dead-lettered by engine", "error", p.res.Error)
		}
		rec, ok := recs[p.res.TaskID]
		if ok {
			s.observeResult(p.res, rec.Created)
			s.releaseTerminal(rec.Task, rec.Created)
		} else {
			s.observeResult(p.res, time.Time{})
		}
		if ok && rec.Task.GroupID != "" {
			s.publishGroupResult(rec.Task.GroupID, p.res, p.sp)
		}
		p.sp.End()
	}
	tags := make([]uint64, len(batch))
	for i, m := range batch {
		tags[i] = m.Tag
	}
	_ = c.AckBatch(tags)
}

// observeResult records one terminal result in the originating endpoint's
// fleet-local registry: outcome counters plus the submit→record round trip.
// These service-side series (merged under ws_) survive agent crashes, so the
// failure-rate and latency SLOs keep evaluating exactly when the agent-side
// view goes dark.
func (s *Service) observeResult(res protocol.Result, created time.Time) {
	if res.EndpointID == "" {
		return
	}
	loc := s.Fleet.Local(string(res.EndpointID))
	if loc == nil {
		return
	}
	loc.Counter("results").Inc()
	if res.State == protocol.StateFailed {
		loc.Counter("results_failed").Inc()
	}
	if !created.IsZero() {
		loc.Histogram("task_roundtrip").Observe(time.Since(created))
	}
}

// prepareResult parses and spills one result message, returning the result
// ready for recording plus its processing span (ended by the caller). tc is
// the trace context delivered with the message (the broker transit span);
// the result body's own context is the fallback for untraced transports.
func (s *Service) prepareResult(body []byte, tc *trace.Context) (protocol.Result, *trace.ActiveSpan, error) {
	var res protocol.Result
	if err := json.Unmarshal(body, &res); err != nil {
		return res, nil, fmt.Errorf("bad result message: %w", err)
	}
	if !tc.Valid() {
		tc = res.Trace
	}
	sp := s.cfg.Tracer.StartSpan(tc, "result.process")
	sp.SetAttr("task", string(res.TaskID))
	if !res.State.Terminal() {
		sp.SetAttr("error", "non-terminal state")
		sp.End()
		return res, nil, fmt.Errorf("non-terminal result state %q for task %s", res.State, res.TaskID)
	}
	// Spill oversized outputs to the object store before recording.
	if len(res.Output) > s.cfg.InlineThreshold && res.OutputRef == "" {
		key, err := s.cfg.Objects.PutContent(res.Output)
		if err != nil {
			sp.EndStatus("error")
			return res, nil, err
		}
		s.Metrics.Counter("spill_results").Inc()
		s.Metrics.Counter("spill_result_bytes").Add(int64(len(res.Output)))
		res.OutputRef = key
		res.Output = nil
	}
	return res, sp, nil
}

// publishGroupResult streams a recorded result onto the submitting
// executor's group queue so its futures resolve.
func (s *Service) publishGroupResult(g protocol.UUID, res protocol.Result, sp *trace.ActiveSpan) {
	q := GroupResultQueue(g)
	if err := s.cfg.Broker.Declare(q); err != nil {
		return
	}
	// Re-point the result's context at the processing span so the SDK's
	// resolution span chains off it.
	if next := sp.Context(); next != nil {
		res.Trace = next
	}
	if payload, err := json.Marshal(res); err == nil {
		_ = s.cfg.Broker.PublishTraced(q, payload, res.Trace)
	}
}

// --- submission ---

// SubmitRequest is one task in a batch submission.
type SubmitRequest struct {
	EndpointID protocol.UUID `json:"endpoint_id"`
	FunctionID protocol.UUID `json:"function_id"`
	// Payload carries serialized arguments (python) or a rendered
	// ShellSpec (shell/MPI).
	Payload   []byte                `json:"payload"`
	Resources protocol.ResourceSpec `json:"resources,omitempty"`
	// UserEndpointConfig routes submissions to multi-user endpoints: the
	// web service hashes it to locate or spawn the user endpoint.
	UserEndpointConfig json.RawMessage `json:"user_endpoint_config,omitempty"`
	GroupID            protocol.UUID   `json:"group_id,omitempty"`
	// Trace joins the submission to a trace begun by the client (the SDK's
	// per-task root span). Absent means the service starts a new trace if
	// tracing is enabled.
	Trace *trace.Context `json:"trace,omitempty"`
}

// SubmitOptions modifies a batch submission.
type SubmitOptions struct {
	// IdempotencyKey, when non-empty, makes the submission idempotent per
	// authenticated identity: a retry carrying the same key returns the task
	// IDs minted by the first attempt instead of enqueuing duplicates. The
	// mapping is journaled through the statestore WAL, so it survives
	// restarts of a durable deployment.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Interactive marks the batch latency-sensitive: it dispatches ahead of
	// batch-priority traffic and is shed only at the hard queue limit and at
	// twice the backlog threshold (batch traffic sheds at the watermarks).
	Interactive bool `json:"interactive,omitempty"`
}

// Submit validates and enqueues a batch of tasks under one authenticated
// identity, returning a task ID per request in order. The whole batch is
// validated before any task is enqueued.
func (s *Service) Submit(tok auth.Token, reqs []SubmitRequest) ([]protocol.UUID, error) {
	return s.SubmitBatch(tok, reqs, SubmitOptions{})
}

// SubmitBatch is Submit with overload-protection options. The admission
// order is: idempotency replay (free — no tokens charged), per-tenant
// admission, then per-target backlog checks inside validation; a rejection
// at any stage returns an OverloadError carrying Retry-After.
func (s *Service) SubmitBatch(tok auth.Token, reqs []SubmitRequest, opts SubmitOptions) ([]protocol.UUID, error) {
	if len(reqs) == 0 {
		return nil, errors.New("webservice: empty batch")
	}
	user := tok.Identity.Username
	if opts.IdempotencyKey != "" {
		// Serialize same-key submissions so two racing retries cannot both
		// miss the lookup and double-enqueue.
		unlock := s.lockIdem(user, opts.IdempotencyKey)
		defer unlock()
		if ids, ok := s.cfg.Store.GetIdempotency(user, opts.IdempotencyKey); ok {
			s.Overload.Counter("idempotent_replays").Inc()
			s.audit(user, "submit_replay", "", nil, opts.IdempotencyKey)
			return ids, nil
		}
	}
	if err := s.admit(user, len(reqs)); err != nil {
		return nil, err
	}
	ids, handedOff, err := s.submitAdmitted(tok, reqs, opts)
	if err != nil {
		// Tasks already handed to the broker settle their slots at their
		// terminal transition; only the ones that never made it are returned
		// here.
		s.release(user, len(reqs)-handedOff)
		return nil, err
	}
	if opts.IdempotencyKey != "" {
		if perr := s.cfg.Store.PutIdempotency(user, opts.IdempotencyKey, ids); perr != nil {
			s.log.Warn("idempotency record not stored", "key", opts.IdempotencyKey, "error", perr)
		}
	}
	return ids, nil
}

// submitAdmitted is the post-admission submit path. It returns the minted
// task IDs and, on error, how many tasks were already published (their
// admission slots settle at their terminal state, not in the error path).
func (s *Service) submitAdmitted(tok auth.Token, reqs []SubmitRequest, opts SubmitOptions) ([]protocol.UUID, int, error) {
	arrived := time.Now()
	type prepared struct {
		task   protocol.Task
		target protocol.UUID
		tc     *trace.Context
	}
	batch := make([]prepared, 0, len(reqs))
	for i, req := range reqs {
		fn, err := s.cfg.Store.GetFunction(req.FunctionID)
		if err != nil {
			return nil, 0, fmt.Errorf("task %d: %w", i, err)
		}
		ep, err := s.cfg.Store.GetEndpoint(req.EndpointID)
		// A routing group's UUID stands in for an endpoint: each task of the
		// batch is placed on a member by the group's policy (so one batch
		// fans out), with backlog sheds already applied per pick.
		var routingGroup protocol.UUID
		rerouted := 0
		if err != nil {
			if gep, grr, gerr := s.routePick(req.EndpointID, opts.Interactive); !errors.Is(gerr, statestore.ErrNotFound) {
				ep, rerouted, err = gep, grr, gerr
				routingGroup = req.EndpointID
			}
		}
		if err != nil {
			return nil, 0, fmt.Errorf("task %d: %w", i, err)
		}
		if err := s.cfg.Auth.EvaluatePolicy(ep.AuthPolicy, tok); err != nil {
			s.audit(tok.Identity.Username, "submit", ep.ID, err, "auth policy denied")
			return nil, 0, fmt.Errorf("task %d: %w", i, err)
		}
		if len(ep.AllowedFunctions) > 0 && !containsUUID(ep.AllowedFunctions, req.FunctionID) {
			s.audit(tok.Identity.Username, "submit", ep.ID, ErrFunctionNotAllowed, string(req.FunctionID))
			return nil, 0, fmt.Errorf("task %d: %w: %s", i, ErrFunctionNotAllowed, req.FunctionID)
		}
		if len(req.Payload) > s.cfg.PayloadLimit {
			return nil, 0, fmt.Errorf("task %d: %w", i, serialize.ErrPayloadTooLarge)
		}

		target := ep.ID
		if ep.MultiUser {
			child, err := s.resolveUserEndpoint(tok, ep, req.UserEndpointConfig)
			if err != nil {
				return nil, 0, fmt.Errorf("task %d: %w", i, err)
			}
			target = child
		}
		s.observeSubmitAttempt(target, 1)
		if routingGroup == "" {
			// Group picks already ran the backlog check (with reroutes)
			// inside routePick.
			if err := s.checkBacklog(target, opts.Interactive); err != nil {
				return nil, 0, fmt.Errorf("task %d: %w", i, err)
			}
		}

		task := protocol.Task{
			ID:           protocol.NewUUID(),
			FunctionID:   req.FunctionID,
			EndpointID:   target,
			Kind:         fn.Kind,
			Payload:      req.Payload,
			Resources:    req.Resources,
			UserIdentity: tok.Identity.Username,
			GroupID:      req.GroupID,
			RoutingGroup: routingGroup,
			Rerouted:     rerouted,
			Submitted:    time.Now(),
		}
		if len(task.Payload) > s.cfg.InlineThreshold {
			key, err := s.cfg.Objects.PutContent(task.Payload)
			if err != nil {
				return nil, 0, fmt.Errorf("task %d: %w", i, err)
			}
			s.Metrics.Counter("spill_payloads").Inc()
			s.Metrics.Counter("spill_payload_bytes").Add(int64(len(task.Payload)))
			task.PayloadRef = key
			task.Payload = nil
		}
		batch = append(batch, prepared{task: task, target: target, tc: req.Trace})
	}

	// Stamp spans and marshal bodies first, so a marshal failure aborts the
	// batch before any state changes. The submit span covers validation
	// through enqueue; with a batch, each task's span shares the batch
	// arrival time.
	ids := make([]protocol.UUID, len(batch))
	tasks := make([]protocol.Task, len(batch))
	spans := make([]*trace.ActiveSpan, len(batch))
	bodies := make([][]byte, len(batch))
	fail := func(err error) ([]protocol.UUID, int, error) {
		for _, sp := range spans {
			sp.EndStatus("error")
		}
		return nil, 0, err
	}
	for i := range batch {
		p := &batch[i]
		sp := s.cfg.Tracer.StartSpanAt(p.tc, "submit", arrived)
		sp.SetAttr("endpoint", string(p.target))
		p.task.Trace = sp.Context()
		if p.task.Trace == nil {
			p.task.Trace = p.tc // propagate the client's context even untraced
		}
		spans[i] = sp
		body, err := json.Marshal(p.task)
		if err != nil {
			return fail(err)
		}
		bodies[i], tasks[i], ids[i] = body, p.task, p.task.ID
	}
	// One sharded statestore round trip per state for the whole batch, then
	// one broker publish per distinct target queue.
	if err := s.cfg.Store.CreateTasks(tasks); err != nil {
		return fail(err)
	}
	if err := s.cfg.Store.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		return fail(err)
	}
	var queueOrder []string
	queueIdx := make(map[string][]int)
	for i := range batch {
		q := TaskQueue(batch[i].target)
		if _, ok := queueIdx[q]; !ok {
			queueOrder = append(queueOrder, q)
		}
		queueIdx[q] = append(queueIdx[q], i)
	}
	publish := s.cfg.Broker.PublishBatch
	if opts.Interactive {
		publish = s.cfg.Broker.PublishBatchInteractive
	}
	for qi, q := range queueOrder {
		idxs := queueIdx[q]
		qBodies := make([][]byte, len(idxs))
		qTraces := make([]*trace.Context, len(idxs))
		for j, i := range idxs {
			qBodies[j], qTraces[j] = bodies[i], tasks[i].Trace
		}
		if err := publish(q, qBodies, qTraces); err != nil {
			if errors.Is(err, broker.ErrQueueFull) {
				// The broker shed this queue's batch. Tasks already published
				// to earlier queues proceed (mark them Delivered so their
				// results record legally); the rest never reach an endpoint,
				// so fail them now — every created task still lands on
				// exactly one terminal state.
				var publishedIDs, shedIDs []protocol.UUID
				for _, q2 := range queueOrder[:qi] {
					for _, i := range queueIdx[q2] {
						publishedIDs = append(publishedIDs, ids[i])
					}
				}
				for _, q2 := range queueOrder[qi:] {
					for _, i := range queueIdx[q2] {
						shedIDs = append(shedIDs, ids[i])
					}
				}
				if len(publishedIDs) > 0 {
					_ = s.cfg.Store.TransitionTasks(publishedIDs, protocol.StateDelivered)
				}
				_ = s.cfg.Store.TransitionTasks(shedIDs, protocol.StateFailed)
				for _, sp := range spans {
					sp.EndStatus("error")
				}
				target := batch[idxs[0]].target
				return nil, len(publishedIDs), s.queueFullError(target, err)
			}
			return fail(err)
		}
	}
	if err := s.cfg.Store.TransitionTasks(ids, protocol.StateDelivered); err != nil {
		// An illegal transition here means a fast agent's result (or a
		// cancel) beat this ack and the task already moved past Delivered —
		// the batch's other tasks were still transitioned. The submit
		// succeeded; don't fail it retroactively.
		if !errors.Is(err, statestore.ErrIllegalTransition) {
			return fail(err)
		}
	}
	for _, sp := range spans {
		sp.End()
	}
	s.Metrics.Counter("tasks_submitted").Add(int64(len(ids)))
	s.audit(tok.Identity.Username, "submit", reqs[0].EndpointID, nil,
		fmt.Sprintf("%d tasks", len(ids)))
	return ids, len(ids), nil
}

// resolveUserEndpoint maps (MEP, identity, config hash) to a user endpoint,
// creating the child record and issuing a start command on first use —
// the Fig. 1 flow. With UserEndpointReplicas > 1 the pair scales out to N
// children, and repeat submissions pick among the warm (online) replicas
// through the placement policy instead of always landing on the first
// config-hash match.
func (s *Service) resolveUserEndpoint(tok auth.Token, mep statestore.EndpointRecord, userConfig json.RawMessage) (protocol.UUID, error) {
	if len(userConfig) == 0 {
		return "", ErrNeedsUserConfig
	}
	hash, err := HashConfig(userConfig)
	if err != nil {
		return "", err
	}
	replicas := s.cfg.UserEndpointReplicas
	if replicas < 1 {
		replicas = 1
	}
	// Reuse existing children with the same owner and config hash.
	s.mu.Lock()
	defer s.mu.Unlock()
	var matches []statestore.EndpointRecord
	for _, child := range s.cfg.Store.ListEndpoints(statestore.EndpointFilter{Parent: mep.ID, Owner: tok.Identity.Username}) {
		if child.Metadata["config_hash"] == hash {
			matches = append(matches, child)
		}
	}
	if len(matches) >= replicas {
		s.Metrics.Counter("uep_reused").Inc()
		return s.pickUserEndpoint(matches), nil
	}
	childID := protocol.NewUUID()
	rec := statestore.EndpointRecord{
		ID: childID, Name: mep.Name + "/uep", Owner: tok.Identity.Username,
		Parent: mep.ID, Status: statestore.EndpointOffline,
		Metadata: map[string]string{"config_hash": hash},
		// Children inherit the MEP's function allowlist.
		AllowedFunctions: mep.AllowedFunctions,
	}
	if err := s.cfg.Store.UpsertEndpoint(rec); err != nil {
		return "", err
	}
	if err := s.declareTaskQueue(childID); err != nil {
		return "", err
	}
	if err := s.cfg.Broker.Declare(ResultQueue(childID)); err != nil {
		return "", err
	}
	if err := s.startResultProcessorLocked(childID); err != nil {
		return "", err
	}
	cmd := StartEndpointCommand{
		ChildEndpointID: childID,
		UserIdentity:    tok.Identity,
		UserConfig:      userConfig,
		ConfigHash:      hash,
	}
	body, err := json.Marshal(cmd)
	if err != nil {
		return "", err
	}
	if err := s.cfg.Broker.Publish(CommandQueue(mep.ID), body); err != nil {
		return "", err
	}
	s.audit(tok.Identity.Username, "start_user_endpoint", childID, nil, "mep="+string(mep.ID)+" hash="+hash)
	s.Metrics.Counter("uep_spawn_requested").Inc()
	return childID, nil
}

// pickUserEndpoint chooses among a user's config-matching children by the
// placement policy. An offline child is only chosen when no replica is warm
// (the task then buffers until its agent comes up — the pre-replica
// behavior).
func (s *Service) pickUserEndpoint(matches []statestore.EndpointRecord) protocol.UUID {
	if len(matches) == 1 {
		return matches[0].ID
	}
	cands := make([]placement.Candidate, len(matches))
	for i, child := range matches {
		cands[i] = candidateFor(child)
	}
	c, err := s.mepSel.Pick(cands, time.Now())
	if err != nil {
		return matches[0].ID
	}
	return c.ID
}

// startResultProcessorLocked is startResultProcessor for callers already
// holding s.mu.
func (s *Service) startResultProcessorLocked(id protocol.UUID) error {
	if s.closed {
		return errors.New("webservice: closed")
	}
	if _, dup := s.resultConsumers[id]; dup {
		return nil
	}
	c, err := s.cfg.Broker.Consume(ResultQueue(id), 64)
	if err != nil {
		return err
	}
	s.resultConsumers[id] = c
	s.wg.Add(1)
	go s.runResultProcessor(c)
	return nil
}

// HashConfig canonicalizes a JSON user configuration (sorted keys) and
// hashes it, so semantically identical configs reuse one user endpoint.
func HashConfig(raw json.RawMessage) (string, error) {
	var v any
	if err := json.Unmarshal(raw, &v); err != nil {
		return "", fmt.Errorf("webservice: invalid user endpoint config: %w", err)
	}
	canon := canonicalize(v)
	b, err := json.Marshal(canon)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:8]), nil
}

// canonicalize rewrites maps into sorted key/value pair lists so hashing is
// order-independent.
func canonicalize(v any) any {
	switch x := v.(type) {
	case map[string]any:
		keys := make([]string, 0, len(x))
		for k := range x {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		pairs := make([][2]any, 0, len(keys))
		for _, k := range keys {
			pairs = append(pairs, [2]any{k, canonicalize(x[k])})
		}
		return pairs
	case []any:
		out := make([]any, len(x))
		for i, e := range x {
			out[i] = canonicalize(e)
		}
		return out
	default:
		return v
	}
}

// --- task status ---

// TaskStatus is the polling view of a task.
type TaskStatus struct {
	TaskID protocol.UUID      `json:"task_id"`
	State  protocol.TaskState `json:"state"`
	Result []byte             `json:"result,omitempty"`
	// ResultRef points into the object store for large outputs.
	ResultRef string `json:"result_ref,omitempty"`
	Error     string `json:"error,omitempty"`
}

// GetTask returns the status (and result if terminal) of a task.
func (s *Service) GetTask(id protocol.UUID) (TaskStatus, error) {
	rec, err := s.cfg.Store.GetTask(id)
	if err != nil {
		return TaskStatus{}, err
	}
	return TaskStatus{
		TaskID: rec.Task.ID, State: rec.State,
		Result: rec.Result, ResultRef: rec.ResultRef, Error: rec.Error,
	}, nil
}

// GetTasks returns the status of many tasks at once (the batch_status API),
// one shared read-lock round trip per statestore shard rather than one per
// task. Unknown IDs are reported with an empty state rather than failing
// the whole batch.
func (s *Service) GetTasks(ids []protocol.UUID) []TaskStatus {
	recs := s.cfg.Store.GetTaskRecords(ids)
	out := make([]TaskStatus, len(ids))
	for i, id := range ids {
		rec, ok := recs[id]
		if !ok {
			out[i] = TaskStatus{TaskID: id, Error: fmt.Sprintf("%v: task %s", statestore.ErrNotFound, id)}
			continue
		}
		out[i] = TaskStatus{
			TaskID: rec.Task.ID, State: rec.State,
			Result: rec.Result, ResultRef: rec.ResultRef, Error: rec.Error,
		}
	}
	return out
}

// CancelTask cancels a task that has not reached a terminal state. Tasks
// already executing may still produce a result; the first terminal
// transition wins (the state machine guarantees exactly one).
func (s *Service) CancelTask(tok auth.Token, id protocol.UUID) error {
	rec, err := s.cfg.Store.GetTask(id)
	if err != nil {
		return err
	}
	if rec.Task.UserIdentity != tok.Identity.Username {
		return fmt.Errorf("%w: task %s belongs to %s", auth.ErrPolicyDenied, id, rec.Task.UserIdentity)
	}
	err = s.cfg.Store.TransitionTask(id, protocol.StateCancelled)
	s.audit(tok.Identity.Username, "cancel_task", id, err, "")
	if err != nil {
		return err
	}
	s.Metrics.Counter("tasks_cancelled").Inc()
	s.releaseTerminal(rec.Task, rec.Created)
	// Stream the cancellation to the executor's group queue so futures
	// resolve promptly.
	if rec.Task.GroupID != "" {
		q := GroupResultQueue(rec.Task.GroupID)
		if err := s.cfg.Broker.Declare(q); err == nil {
			res := protocol.Result{TaskID: id, State: protocol.StateCancelled, Error: "cancelled by user"}
			if payload, err := json.Marshal(res); err == nil {
				_ = s.cfg.Broker.Publish(q, payload)
			}
		}
	}
	return nil
}

// MonitorHeartbeats starts a watchdog that marks endpoints offline when
// their heartbeats stop arriving for more than timeout. It returns a stop
// function. Tasks on offline endpoints keep buffering indefinitely; use
// StartWatchdog with a TaskLease to bound how long they may sit in flight.
func (s *Service) MonitorHeartbeats(timeout, interval time.Duration) (stop func()) {
	return s.StartWatchdog(WatchdogConfig{HeartbeatTimeout: timeout, Interval: interval})
}

// WatchdogConfig configures the combined heartbeat and task-lease watchdog.
type WatchdogConfig struct {
	// HeartbeatTimeout marks an endpoint offline when its heartbeats stop
	// arriving for longer than this.
	HeartbeatTimeout time.Duration
	// Interval is the sweep period.
	Interval time.Duration
	// TaskLease, when > 0, bounds how long a non-terminal task may sit on an
	// endpoint that has been marked offline: tasks whose last state change is
	// older than the lease are failed so client futures resolve instead of
	// waiting forever on a dead endpoint. Zero keeps the pre-lease behavior
	// (tasks buffer until the endpoint returns). If the endpoint does come
	// back and completes a lease-expired task, the late result is rejected by
	// the task state machine — exactly one terminal state wins.
	TaskLease time.Duration
}

// StartWatchdog starts the heartbeat/lease watchdog and returns a stop
// function.
func (s *Service) StartWatchdog(cfg WatchdogConfig) (stop func()) {
	done := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(cfg.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			cutoff := time.Now().Add(-cfg.HeartbeatTimeout)
			for _, ep := range s.cfg.Store.ListEndpoints(statestore.EndpointFilter{Status: statestore.EndpointOnline}) {
				if ep.LastHeartbeat.Before(cutoff) {
					_ = s.cfg.Store.SetEndpointStatus(ep.ID, statestore.EndpointOffline)
					s.Metrics.Counter("endpoints_marked_offline").Inc()
				}
			}
			if cfg.TaskLease > 0 {
				s.expireLeases(cfg.TaskLease)
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// expireLeases fails non-terminal tasks stranded on offline endpoints whose
// last state change is older than the lease, streaming the failure to the
// submitting executor's group queue so futures resolve.
func (s *Service) expireLeases(lease time.Duration) {
	cutoff := time.Now().Add(-lease)
	for _, ep := range s.cfg.Store.ListEndpoints(statestore.EndpointFilter{Status: statestore.EndpointOffline}) {
		for _, id := range s.cfg.Store.ListTasksByEndpoint(ep.ID) {
			rec, err := s.cfg.Store.GetTask(id)
			if err != nil || rec.State.Terminal() || rec.Updated.After(cutoff) {
				continue
			}
			res := protocol.Result{
				TaskID:     id,
				State:      protocol.StateFailed,
				EndpointID: ep.ID,
				Error:      fmt.Sprintf("webservice: task lease expired after %s on offline endpoint %s", lease, ep.ID),
			}
			if err := s.cfg.Store.CompleteTask(res); err != nil {
				continue // lost the race to a real terminal result
			}
			s.Metrics.Counter("lease_expired").Inc()
			s.observeResult(res, rec.Created)
			s.releaseTerminal(rec.Task, rec.Created)
			s.log.WithTask(string(id)).WithEndpoint(string(ep.ID)).
				Warn("task lease expired on offline endpoint", "lease", lease.String())
			if rec.Task.GroupID != "" {
				q := GroupResultQueue(rec.Task.GroupID)
				if err := s.cfg.Broker.Declare(q); err == nil {
					if payload, err := json.Marshal(res); err == nil {
						_ = s.cfg.Broker.Publish(q, payload)
					}
				}
			}
		}
	}
}

// ResultRetention is the documented result lifetime ("results ... are
// stored in the cloud for up to two weeks").
const ResultRetention = 14 * 24 * time.Hour

// StartRetentionSweeper purges terminal tasks older than retention
// (<=0 selects ResultRetention) every interval. It returns a stop function.
func (s *Service) StartRetentionSweeper(retention, interval time.Duration) (stop func()) {
	if retention <= 0 {
		retention = ResultRetention
	}
	done := make(chan struct{})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-done:
				return
			case <-ticker.C:
			}
			if n := s.cfg.Store.PurgeTasksBefore(time.Now().Add(-retention)); n > 0 {
				s.Metrics.Counter("tasks_purged").Add(int64(n))
			}
		}
	}()
	var once sync.Once
	return func() { once.Do(func() { close(done) }) }
}

// UsageStats aggregates deployment statistics (paper §VI).
type UsageStats struct {
	Functions     int                        `json:"functions"`
	Endpoints     int                        `json:"endpoints"`
	MultiUserEPs  int                        `json:"multi_user_endpoints"`
	UserEndpoints int                        `json:"user_endpoints"` // spawned by MEPs
	Tasks         int                        `json:"tasks"`
	TasksByState  map[protocol.TaskState]int `json:"tasks_by_state"`
}

// Usage reports aggregate statistics.
func (s *Service) Usage() UsageStats {
	tr := true
	meps := s.cfg.Store.ListEndpoints(statestore.EndpointFilter{MultiUser: &tr})
	ueps := 0
	for _, mep := range meps {
		ueps += len(s.cfg.Store.ListEndpoints(statestore.EndpointFilter{Parent: mep.ID}))
	}
	return UsageStats{
		Functions:     s.cfg.Store.CountFunctions(),
		Endpoints:     s.cfg.Store.CountEndpoints(),
		MultiUserEPs:  len(meps),
		UserEndpoints: ueps,
		Tasks:         s.cfg.Store.CountTasks(),
		TasksByState:  s.cfg.Store.CountTasksByState(),
	}
}

func containsUUID(list []protocol.UUID, id protocol.UUID) bool {
	for _, x := range list {
		if x == id {
			return true
		}
	}
	return false
}
