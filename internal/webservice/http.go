package webservice

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// Server is the REST front end (the FastAPI substitute). It carries the
// broker and object-store addresses so registering endpoints learn where to
// connect, the way the hosted service hands agents their AMQPS URLs.
type Server struct {
	svc  *Service
	http *http.Server
	ln   net.Listener

	// BrokerAddr and ObjectsAddr are returned in registration responses.
	BrokerAddr  string
	ObjectsAddr string
}

// ServeHTTP starts the REST API on addr.
func ServeHTTP(svc *Service, addr, brokerAddr, objectsAddr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("webservice: listen: %w", err)
	}
	s := &Server{svc: svc, ln: ln, BrokerAddr: brokerAddr, ObjectsAddr: objectsAddr}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v2/functions", s.auth(s.handleRegisterFunction))
	mux.HandleFunc("GET /v2/functions/{id}", s.auth(s.handleGetFunction))
	mux.HandleFunc("POST /v2/endpoints", s.auth(s.handleRegisterEndpoint))
	mux.HandleFunc("GET /v2/endpoints", s.auth(s.handleSearchEndpoints))
	mux.HandleFunc("GET /v2/endpoints/{id}", s.auth(s.handleGetEndpoint))
	mux.HandleFunc("POST /v2/endpoints/{id}/heartbeat", s.auth(s.handleHeartbeat))
	mux.HandleFunc("POST /v2/routing_groups", s.auth(s.handleCreateRoutingGroup))
	mux.HandleFunc("GET /v2/routing_groups", s.auth(s.handleListRoutingGroups))
	mux.HandleFunc("GET /v2/routing_groups/{id}", s.auth(s.handleGetRoutingGroup))
	mux.HandleFunc("PUT /v2/routing_groups/{id}", s.auth(s.handleUpdateRoutingGroup))
	mux.HandleFunc("POST /v2/submit", s.auth(s.handleSubmit))
	mux.HandleFunc("GET /v2/tasks/{id}", s.auth(s.handleGetTask))
	mux.HandleFunc("POST /v2/tasks/batch_status", s.auth(s.handleBatchStatus))
	mux.HandleFunc("POST /v2/tasks/{id}/cancel", s.auth(s.handleCancelTask))
	mux.HandleFunc("GET /v2/usage", s.auth(s.handleUsage))
	mux.HandleFunc("GET /v2/audit", s.auth(s.handleAudit))
	mux.HandleFunc("GET /dashboard", s.handleDashboard)
	mux.HandleFunc("GET /debug/traces", s.handleDebugTraces)
	mux.HandleFunc("GET /debug/fleet", s.handleDebugFleet)
	mux.HandleFunc("GET /debug/logs", s.handleDebugLogs)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /metrics/fleet", s.handleMetricsFleet)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	if svc.cfg.Pprof {
		// Continuous-profiling hooks (scenario harness, ad-hoc `go tool
		// pprof`): the stdlib pprof handlers behind the debug ?token= auth.
		// pprof.Index routes the named profiles (heap, goroutine, block, ...)
		// under the prefix itself.
		pprofWrap := func(h http.HandlerFunc) http.HandlerFunc {
			return func(w http.ResponseWriter, r *http.Request) {
				if !s.debugAuth(w, r) {
					return
				}
				h(w, r)
			}
		}
		mux.HandleFunc("GET /debug/pprof/", pprofWrap(pprof.Index))
		mux.HandleFunc("GET /debug/pprof/cmdline", pprofWrap(pprof.Cmdline))
		mux.HandleFunc("GET /debug/pprof/profile", pprofWrap(pprof.Profile))
		mux.HandleFunc("GET /debug/pprof/symbol", pprofWrap(pprof.Symbol))
		mux.HandleFunc("GET /debug/pprof/trace", pprofWrap(pprof.Trace))
	}
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 10 * time.Second}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP listener (the service itself is closed separately).
func (s *Server) Close() { s.http.Close() }

// Shutdown stops accepting new connections and waits for in-flight requests
// to finish (or ctx to expire). Used by the SIGTERM drain path so accepted
// submits are journaled rather than torn off mid-handler.
func (s *Server) Shutdown(ctx context.Context) error { return s.http.Shutdown(ctx) }

type errorResponse struct {
	Error string `json:"error"`
	// RetryAfter mirrors the Retry-After header (in seconds) on overload
	// sheds, for clients that only read bodies.
	RetryAfter int `json:"retry_after,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	resp := errorResponse{Error: err.Error()}
	var oe *OverloadError
	if errors.As(err, &oe) {
		// Retry-After is whole seconds, rounded up so clients never retry
		// before the deficit has actually refilled.
		secs := int((oe.RetryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		resp.RetryAfter = secs
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, status, resp)
}

// statusFor maps service errors onto HTTP statuses.
func statusFor(err error) int {
	var oe *OverloadError
	switch {
	case errors.As(err, &oe):
		return oe.Status // 429 admission, 503 downstream pressure
	case errors.Is(err, statestore.ErrNotFound):
		return http.StatusNotFound
	case errors.Is(err, auth.ErrPolicyDenied), errors.Is(err, ErrFunctionNotAllowed):
		return http.StatusForbidden
	case errors.Is(err, auth.ErrInvalidToken), errors.Is(err, auth.ErrMissingScope):
		return http.StatusUnauthorized
	default:
		return http.StatusBadRequest
	}
}

// auth wraps a handler with bearer-token authentication.
func (s *Server) auth(h func(http.ResponseWriter, *http.Request, auth.Token)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		header := r.Header.Get("Authorization")
		value, ok := strings.CutPrefix(header, "Bearer ")
		if !ok {
			writeError(w, http.StatusUnauthorized, errors.New("missing bearer token"))
			return
		}
		tok, err := s.svc.cfg.Auth.Authorize(value, auth.ScopeCompute)
		if err != nil {
			writeError(w, http.StatusUnauthorized, err)
			return
		}
		h(w, r, tok)
	}
}

func decodeBody(r *http.Request, v any) error {
	defer r.Body.Close()
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 64<<20))
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("webservice: bad request body: %w", err)
	}
	return nil
}

// --- handlers ---

type registerFunctionRequest struct {
	Kind       protocol.FunctionKind `json:"kind"`
	Definition []byte                `json:"definition"`
}

type registerFunctionResponse struct {
	FunctionID protocol.UUID `json:"function_uuid"`
}

func (s *Server) handleRegisterFunction(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	var req registerFunctionRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.svc.RegisterFunction(tok.Identity.Username, req.Kind, req.Definition)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, registerFunctionResponse{FunctionID: id})
}

func (s *Server) handleGetFunction(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	rec, err := s.svc.GetFunction(protocol.UUID(r.PathValue("id")))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// RegisterEndpointResponse tells an agent its identity and where to connect.
type RegisterEndpointResponse struct {
	EndpointID   protocol.UUID `json:"endpoint_uuid"`
	TaskQueue    string        `json:"task_queue"`
	ResultQueue  string        `json:"result_queue"`
	CommandQueue string        `json:"command_queue,omitempty"`
	BrokerAddr   string        `json:"broker_addr"`
	ObjectsAddr  string        `json:"objectstore_addr,omitempty"`
}

func (s *Server) handleRegisterEndpoint(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	var req RegisterEndpointRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if req.MultiUser && !tok.HasScope(auth.ScopeManage) {
		writeError(w, http.StatusForbidden, errors.New("multi-user endpoints require the manage scope"))
		return
	}
	req.Owner = tok.Identity.Username
	id, err := s.svc.RegisterEndpoint(req)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	resp := RegisterEndpointResponse{
		EndpointID:  id,
		TaskQueue:   TaskQueue(id),
		ResultQueue: ResultQueue(id),
		BrokerAddr:  s.BrokerAddr,
		ObjectsAddr: s.ObjectsAddr,
	}
	if req.MultiUser {
		resp.CommandQueue = CommandQueue(id)
	}
	writeJSON(w, http.StatusCreated, resp)
}

func (s *Server) handleSearchEndpoints(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	results := s.svc.SearchEndpoints(r.URL.Query().Get("search"))
	writeJSON(w, http.StatusOK, map[string]any{"endpoints": results})
}

func (s *Server) handleGetEndpoint(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	rec, err := s.svc.GetEndpoint(protocol.UUID(r.PathValue("id")))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// routingGroupRequest creates or updates a routing group: submissions naming
// the returned group UUID as their endpoint_id fan out across the members by
// the placement policy.
type routingGroupRequest struct {
	Name    string          `json:"name"`
	Policy  string          `json:"policy,omitempty"`
	Members []protocol.UUID `json:"members"`
}

func (s *Server) handleCreateRoutingGroup(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	var req routingGroupRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.svc.CreateRoutingGroup(tok, req.Name, req.Policy, req.Members)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusCreated, map[string]any{"routing_group_uuid": id})
}

func (s *Server) handleListRoutingGroups(w http.ResponseWriter, _ *http.Request, tok auth.Token) {
	writeJSON(w, http.StatusOK, map[string]any{
		"routing_groups": s.svc.ListRoutingGroups(tok.Identity.Username),
	})
}

func (s *Server) handleGetRoutingGroup(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	rec, err := s.svc.GetRoutingGroup(protocol.UUID(r.PathValue("id")))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleUpdateRoutingGroup(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	var req routingGroupRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := protocol.UUID(r.PathValue("id"))
	if err := s.svc.UpdateRoutingGroup(tok, id, req.Policy, req.Members); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type heartbeatRequest struct {
	Online bool `json:"online"`
	// Load is the agent's optional utilization report.
	Load *statestore.EndpointLoad `json:"load,omitempty"`
	// Metrics is an optional delta-encoded snapshot of the agent's metric
	// registries, piggybacked on the heartbeat so federation needs no extra
	// connection or listener on the agent side.
	Metrics *metrics.Snapshot `json:"metrics,omitempty"`
}

func (s *Server) handleHeartbeat(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	var req heartbeatRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	id := protocol.UUID(r.PathValue("id"))
	if err := s.svc.RecordHeartbeat(id, req.Online, req.Load, req.Metrics); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

type submitRequest struct {
	Tasks []SubmitRequest `json:"tasks"`
	// IdempotencyKey makes the whole batch idempotent per authenticated
	// identity: retries with the same key return the original task IDs.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
	// Priority "interactive" dispatches ahead of batch traffic and sheds
	// later; anything else (or absent) is batch priority.
	Priority string `json:"priority,omitempty"`
}

type submitResponse struct {
	TaskIDs []protocol.UUID `json:"task_uuids"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	var req submitRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	opts := SubmitOptions{
		IdempotencyKey: req.IdempotencyKey,
		Interactive:    req.Priority == "interactive",
	}
	ids, err := s.svc.SubmitBatch(tok, req.Tasks, opts)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, submitResponse{TaskIDs: ids})
}

func (s *Server) handleGetTask(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	st, err := s.svc.GetTask(protocol.UUID(r.PathValue("id")))
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

type batchStatusRequest struct {
	TaskIDs []protocol.UUID `json:"task_ids"`
}

type batchStatusResponse struct {
	Tasks []TaskStatus `json:"tasks"`
}

func (s *Server) handleBatchStatus(w http.ResponseWriter, r *http.Request, _ auth.Token) {
	var req batchStatusRequest
	if err := decodeBody(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if len(req.TaskIDs) > 1024 {
		writeError(w, http.StatusBadRequest, errors.New("webservice: batch_status limited to 1024 tasks"))
		return
	}
	writeJSON(w, http.StatusOK, batchStatusResponse{Tasks: s.svc.GetTasks(req.TaskIDs)})
}

func (s *Server) handleCancelTask(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	if err := s.svc.CancelTask(tok, protocol.UUID(r.PathValue("id"))); err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "cancelled"})
}

func (s *Server) handleUsage(w http.ResponseWriter, _ *http.Request, _ auth.Token) {
	writeJSON(w, http.StatusOK, s.svc.Usage())
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request, tok auth.Token) {
	if !tok.HasScope(auth.ScopeManage) {
		writeError(w, http.StatusForbidden, errors.New("audit access requires the manage scope"))
		return
	}
	n := 100
	if q := r.URL.Query().Get("n"); q != "" {
		fmt.Sscanf(q, "%d", &n)
	}
	writeJSON(w, http.StatusOK, map[string]any{"events": s.svc.AuditTail(n)})
}
