package webservice

import (
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"time"

	"globuscompute/internal/obs"
	"globuscompute/internal/trace"
)

// Observability endpoints: GET /debug/traces renders collected task
// lifecycle traces (list, per-trace stage breakdown, or JSONL export) and
// GET /metrics exposes the service and broker registries in the Prometheus
// text format. Both use the dashboard's ?token= authentication since they
// serve browsers and scrapers that cannot attach bearer headers.

// TraceCollector returns the span collector behind the service's tracer
// (nil when tracing is disabled).
func (s *Service) TraceCollector() *trace.Collector {
	return s.cfg.Tracer.Collector()
}

func (s *Server) debugAuth(w http.ResponseWriter, r *http.Request) bool {
	token := r.URL.Query().Get("token")
	if _, err := s.svc.cfg.Auth.Introspect(token); err != nil {
		http.Error(w, "unauthorized: pass ?token=<bearer token>", http.StatusUnauthorized)
		return false
	}
	return true
}

// handleDebugTraces serves the trace explorer:
//
//	/debug/traces            — recent traces, one line each
//	/debug/traces?id=<tid>   — stage breakdown and critical path of one trace
//	/debug/traces?format=jsonl — raw span export (all retained spans)
func (s *Server) handleDebugTraces(w http.ResponseWriter, r *http.Request) {
	if !s.debugAuth(w, r) {
		return
	}
	col := s.svc.TraceCollector()
	if col == nil {
		http.Error(w, "tracing disabled (no tracer configured)", http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")

	if r.URL.Query().Get("format") == "jsonl" {
		_ = col.WriteJSONL(w)
		return
	}
	if id := r.URL.Query().Get("id"); id != "" {
		spans := col.Trace(trace.TraceID(id))
		sum, err := trace.Analyze(spans)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		fmt.Fprint(w, sum.String())
		return
	}

	ids := col.TraceIDs()
	fmt.Fprintf(w, "%d traces retained (%d spans, %d total, %d dropped)\n\n",
		len(ids), col.Len(), col.Total(), col.Dropped())
	// Most recent first, capped for readability.
	const maxList = 200
	shown := 0
	for i := len(ids) - 1; i >= 0 && shown < maxList; i-- {
		spans := col.Trace(ids[i])
		sum, err := trace.Analyze(spans)
		if err != nil {
			continue
		}
		names := make([]string, 0, len(spans))
		for _, sp := range spans {
			names = append(names, sp.Name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%s  %8s  %2d spans  [%s]\n",
			sum.TraceID, sum.Duration.Round(1000), len(spans), joinMax(names, 8))
		shown++
	}
	if shown == 0 {
		fmt.Fprintln(w, "no complete traces yet")
	}
}

func joinMax(names []string, max int) string {
	if len(names) > max {
		names = append(names[:max:max], "...")
	}
	out := ""
	for i, n := range names {
		if i > 0 {
			out += " "
		}
		out += n
	}
	return out
}

// handleMetrics writes the service and broker registries in the Prometheus
// text exposition format.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !s.debugAuth(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.svc.Metrics.WriteText(w, "gc_webservice"); err != nil {
		return
	}
	// Overload-protection series export under the bare gc prefix so the
	// names the runbooks quote (gc_admission_*_total, gc_shed_total) hold
	// regardless of which component enforces them.
	if err := s.svc.Overload.WriteText(w, "gc"); err != nil {
		return
	}
	// Placement series (gc_route_picks_total, gc_route_reroutes_total,
	// gc_route_pick_staleness_seconds) share the bare gc prefix.
	if err := s.svc.Routing.WriteText(w, "gc"); err != nil {
		return
	}
	if s.svc.cfg.Broker != nil {
		_ = s.svc.cfg.Broker.Metrics.WriteText(w, "gc_broker")
	}
	if s.svc.cfg.DurableMetrics != nil {
		_ = s.svc.cfg.DurableMetrics.WriteText(w, "gc_durable")
	}
	if s.svc.cfg.Objects != nil && s.svc.cfg.Objects.Metrics != nil {
		_ = s.svc.cfg.Objects.Metrics.WriteText(w, "gc_objectstore")
	}
}

// handleMetricsFleet writes the federated fleet view: every tracked
// endpoint's metrics in one scrape, labeled by endpoint_id, plus synthetic
// up/staleness series. This is the single Prometheus target for the whole
// deployment — agents never expose listeners of their own.
func (s *Server) handleMetricsFleet(w http.ResponseWriter, r *http.Request) {
	if !s.debugAuth(w, r) {
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.svc.Fleet.WriteFederation(w, time.Now())
}

// handleDebugFleet serves the JSON health rollup: per-endpoint liveness,
// utilization, backlog, failure rates, and the current SLO alert set. The
// handler ticks the store and evaluates rules on demand so a scrape is never
// staler than the background evaluator interval.
func (s *Server) handleDebugFleet(w http.ResponseWriter, r *http.Request) {
	if !s.debugAuth(w, r) {
		return
	}
	now := time.Now()
	s.svc.Fleet.Tick(now)
	s.svc.SLO.Evaluate(now)
	writeJSON(w, http.StatusOK, map[string]any{
		"fleet":  s.svc.Fleet.Health(now),
		"alerts": s.svc.SLO.Alerts(),
		"rules":  s.svc.SLO.Rules(),
	})
}

// handleDebugLogs queries the retained structured-log ring:
//
//	/debug/logs?trace_id=<tid>      — every record on one trace, any component
//	/debug/logs?task_id=<id>        — records for one task
//	/debug/logs?endpoint_id=<id>&level=warn&n=50
func (s *Server) handleDebugLogs(w http.ResponseWriter, r *http.Request) {
	if !s.debugAuth(w, r) {
		return
	}
	buf := s.svc.cfg.Logs
	if buf == nil {
		http.Error(w, "log capture disabled", http.StatusNotFound)
		return
	}
	q := obs.Query{
		TraceID:   r.URL.Query().Get("trace_id"),
		TaskID:    r.URL.Query().Get("task_id"),
		Endpoint:  r.URL.Query().Get("endpoint_id"),
		Component: r.URL.Query().Get("component"),
		MinLevel:  slog.LevelDebug, // serve everything unless ?level= narrows it
		Limit:     200,
	}
	if lv := r.URL.Query().Get("level"); lv != "" {
		var l slog.Level
		if err := l.UnmarshalText([]byte(lv)); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("webservice: bad level %q: %w", lv, err))
			return
		}
		q.MinLevel = l
	}
	if n := r.URL.Query().Get("n"); n != "" {
		fmt.Sscanf(n, "%d", &q.Limit)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"total":   buf.Total(),
		"records": buf.Search(q),
	})
}

var errTracingDisabled = errors.New("webservice: tracing disabled")

// AnalyzeTrace is the programmatic counterpart of /debug/traces?id=: it
// analyzes one retained trace by ID.
func (s *Service) AnalyzeTrace(id trace.TraceID) (trace.Summary, error) {
	col := s.TraceCollector()
	if col == nil {
		return trace.Summary{}, errTracingDisabled
	}
	return trace.Analyze(col.Trace(id))
}
