package webservice

import (
	"errors"
	"fmt"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/placement"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// Routing groups: a group UUID is accepted anywhere an endpoint UUID is at
// submit time, and the service fans each task of the batch across the
// group's members through the group's placement policy, scored on the load
// reports heartbeats already carry. Membership is a journaled statestore
// record, so groups survive a -data-dir restart; the selector state
// (round-robin cursors, hysteresis charges, candidate snapshots) is
// ephemeral per process, rebuilt lazily on first use.

// ErrNotRoutable is wrapped when a routing-group submission cannot place a
// task on any member.
var ErrNotRoutable = errors.New("webservice: no routable member in group")

// routeCacheTTL bounds how often the submit hot path re-reads a group's
// member records from the statestore. Picks between refreshes run on the
// cached snapshot (the selector's hysteresis covers the gap), so a 10k-member
// group costs one bulk read per TTL, not per task.
const routeCacheTTL = 25 * time.Millisecond

// cacheTTL is the effective candidate-snapshot TTL: member records only
// change as heartbeats arrive, so refreshing faster than a quarter interval
// buys no freshness — it just re-copies a 10k-member group's records onto
// the submit path. Small groups (or short intervals) keep the 25ms floor.
func (s *Service) cacheTTL() time.Duration {
	if q := s.cfg.HeartbeatInterval / 4; q > routeCacheTTL {
		return q
	}
	return routeCacheTTL
}

// rerouteAttempts caps how many members one submission tries when picks keep
// landing on shedding endpoints before giving up and surfacing the shed.
const rerouteAttempts = 4

// groupRoute is the per-group routing state: the policy selector, the
// member list, and a TTL-cached snapshot of member records and placement
// candidates. The submit hot path runs entirely on this cache — the store's
// group record (with its defensively-copied 10k-member slice) is read once
// on first use and again only after UpdateRoutingGroup invalidates, never
// per task.
type groupRoute struct {
	sel     *placement.Selector
	policy  string
	members []protocol.UUID

	// Reference swaps are guarded by Service.routeMu; the slice and map
	// themselves are immutable once published (refreshes build fresh ones),
	// so routePick may keep reading a snapshot after dropping the lock.
	// The selector has its own lock for the pick itself.
	fetched time.Time
	cands   []placement.Candidate
	recs    map[protocol.UUID]statestore.EndpointRecord
}

// newSelector builds a placement selector on the service's staleness horizon
// and routing registry.
func (s *Service) newSelector(policy string) (*placement.Selector, error) {
	return placement.New(placement.Config{
		Policy:            placement.Policy(policy),
		Seed:              s.cfg.RouteSeed,
		HeartbeatInterval: s.cfg.HeartbeatInterval,
		StaleAfter:        s.staleAfter(),
		Metrics:           s.Routing,
	})
}

// staleAfter is the load-report trust horizon: three heartbeat intervals,
// shared by placement scoring and the backlog-shed path.
func (s *Service) staleAfter() time.Duration { return 3 * s.cfg.HeartbeatInterval }

// CreateRoutingGroup registers a routing group over existing endpoints.
// Members must be registered, non-multi-user endpoints (a MEP resolves to
// per-user children at submit time, which would make group fan-out
// ambiguous). Requires the manage scope, like registering a MEP.
func (s *Service) CreateRoutingGroup(tok auth.Token, name, policy string, members []protocol.UUID) (protocol.UUID, error) {
	if !tok.HasScope(auth.ScopeManage) {
		return "", errors.New("webservice: routing group registration requires the manage scope")
	}
	if err := s.validateGroupSpec(policy, members); err != nil {
		return "", err
	}
	id := protocol.NewUUID()
	err := s.cfg.Store.PutRoutingGroup(statestore.RoutingGroupRecord{
		ID: id, Name: name, Owner: tok.Identity.Username,
		Policy: policy, Members: members,
	})
	s.audit(tok.Identity.Username, "create_routing_group", id, err,
		fmt.Sprintf("%d members, policy=%s", len(members), policyOrDefault(policy, s.cfg.RoutePolicy)))
	if err != nil {
		return "", err
	}
	s.Metrics.Counter("routing_groups_created").Inc()
	return id, nil
}

// UpdateRoutingGroup replaces a group's membership (and optionally policy),
// revalidating both. Only the owner may update; the cached selector state is
// dropped so the next pick sees the new membership immediately.
func (s *Service) UpdateRoutingGroup(tok auth.Token, id protocol.UUID, policy string, members []protocol.UUID) error {
	g, err := s.cfg.Store.GetRoutingGroup(id)
	if err != nil {
		return err
	}
	if g.Owner != tok.Identity.Username {
		return errors.New("webservice: not the routing group owner")
	}
	if policy == "" {
		policy = g.Policy
	}
	if err := s.validateGroupSpec(policy, members); err != nil {
		return err
	}
	g.Policy, g.Members = policy, members
	if err := s.cfg.Store.PutRoutingGroup(g); err != nil {
		return err
	}
	s.invalidateGroupRoute(id)
	s.audit(tok.Identity.Username, "update_routing_group", id, nil,
		fmt.Sprintf("%d members, policy=%s", len(members), policyOrDefault(policy, s.cfg.RoutePolicy)))
	return nil
}

// validateGroupSpec checks a group's policy name and membership: members
// must be registered, distinct, non-multi-user endpoints.
func (s *Service) validateGroupSpec(policy string, members []protocol.UUID) error {
	if len(members) == 0 {
		return errors.New("webservice: routing group needs at least one member")
	}
	if policy != "" {
		if _, err := placement.New(placement.Config{Policy: placement.Policy(policy)}); err != nil {
			return err
		}
	}
	seen := make(map[protocol.UUID]bool, len(members))
	for _, m := range members {
		if seen[m] {
			return fmt.Errorf("webservice: duplicate member %s", m)
		}
		seen[m] = true
		ep, err := s.cfg.Store.GetEndpoint(m)
		if err != nil {
			return fmt.Errorf("webservice: member %s: %w", m, err)
		}
		if ep.MultiUser {
			return fmt.Errorf("webservice: member %s is a multi-user endpoint", m)
		}
	}
	return nil
}

// GetRoutingGroup fetches a routing group record.
func (s *Service) GetRoutingGroup(id protocol.UUID) (statestore.RoutingGroupRecord, error) {
	return s.cfg.Store.GetRoutingGroup(id)
}

// ListRoutingGroups lists routing groups owned by the identity.
func (s *Service) ListRoutingGroups(owner string) []statestore.RoutingGroupRecord {
	return s.cfg.Store.ListRoutingGroups(owner)
}

func policyOrDefault(policy, def string) string {
	if policy == "" {
		return def
	}
	return policy
}

func (s *Service) invalidateGroupRoute(id protocol.UUID) {
	s.routeMu.Lock()
	delete(s.routeGroups, id)
	s.routeMu.Unlock()
}

// groupRouteFor returns the cached routing state for a group, reading the
// group record from the store only on first use (UpdateRoutingGroup
// invalidates the cache, so policy and membership changes rebuild it), and
// refreshes the candidate snapshot when it is older than the cache TTL.
// Returns the store's ErrNotFound (wrapped) when the ID is not a routing
// group.
func (s *Service) groupRouteFor(id protocol.UUID, now time.Time) (*groupRoute, error) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	gr, ok := s.routeGroups[id]
	if !ok {
		g, err := s.cfg.Store.GetRoutingGroup(id)
		if err != nil {
			return nil, err
		}
		policy := policyOrDefault(g.Policy, s.cfg.RoutePolicy)
		sel, err := s.newSelector(policy)
		if err != nil {
			return nil, err
		}
		gr = &groupRoute{sel: sel, policy: policy, members: g.Members}
		s.routeGroups[id] = gr
	}
	if now.Sub(gr.fetched) >= s.cacheTTL() || gr.cands == nil {
		// Build fresh snapshots and swap the references: routePick reads
		// the previous cands/recs outside routeMu, so the maps and slices
		// already handed out must never be mutated in place. A fresh map
		// also drops members deleted from the store since the last refresh.
		recs := s.cfg.Store.GetEndpoints(gr.members)
		cands := make([]placement.Candidate, 0, len(recs))
		byID := make(map[protocol.UUID]statestore.EndpointRecord, len(recs))
		for _, ep := range recs {
			cands = append(cands, candidateFor(ep))
			byID[ep.ID] = ep
		}
		gr.cands, gr.recs = cands, byID
		gr.fetched = now
	}
	return gr, nil
}

// candidateFor projects an endpoint record onto a placement candidate.
func candidateFor(ep statestore.EndpointRecord) placement.Candidate {
	c := placement.Candidate{
		ID:            ep.ID,
		Online:        ep.Status == statestore.EndpointOnline,
		EgressBacklog: -1,
		ReportedAt:    ep.LoadAt,
	}
	if ep.Load != nil {
		c.QueuedIntake = ep.Load.PendingTasks
		c.FreeWorkers = ep.Load.FreeWorkers
		c.TotalWorkers = ep.Load.TotalWorkers
		if ep.Load.EgressBacklog != nil {
			c.EgressBacklog = *ep.Load.EgressBacklog
		}
	}
	return c
}

// routePick places one task within a routing group: pick a member by the
// group's policy, run the backlog shed check against the member's (cached)
// record, and on a shed re-pick among the remaining members. It returns the
// chosen member's record and how many reroutes it took. When every tried
// member sheds, the last shed error surfaces so the client backs off — a
// fully-saturated group is an overload, not a routing failure.
func (s *Service) routePick(id protocol.UUID, interactive bool) (statestore.EndpointRecord, int, error) {
	now := time.Now()
	gr, err := s.groupRouteFor(id, now)
	if err != nil {
		return statestore.EndpointRecord{}, 0, err
	}
	s.routeMu.Lock()
	cands := gr.cands
	recs := gr.recs
	s.routeMu.Unlock()

	var lastShed error
	pool := cands
	for attempt := 0; attempt <= rerouteAttempts && len(pool) > 0; attempt++ {
		c, err := gr.sel.Pick(pool, now)
		if err != nil {
			break
		}
		ep, ok := recs[c.ID]
		if !ok { // member record vanished between refreshes
			pool = withoutCandidate(pool, c.ID)
			continue
		}
		if err := s.checkBacklogRecord(ep, interactive); err != nil {
			lastShed = err
			gr.sel.NoteReroute()
			pool = withoutCandidate(pool, c.ID)
			continue
		}
		s.observeRouted(ep.ID)
		return ep, attempt, nil
	}
	if lastShed != nil {
		return statestore.EndpointRecord{}, 0, lastShed
	}
	return statestore.EndpointRecord{}, 0, fmt.Errorf("%w: group %s (%d members)", ErrNotRoutable, id, len(gr.members))
}

// withoutCandidate copies the pool minus one member (pools are small cached
// slices; reroutes are the rare path).
func withoutCandidate(pool []placement.Candidate, id protocol.UUID) []placement.Candidate {
	out := make([]placement.Candidate, 0, len(pool)-1)
	for _, c := range pool {
		if c.ID != id {
			out = append(out, c)
		}
	}
	return out
}

// observeRouted records a policy-driven placement against the member's
// fleet-local registry; gc-top derives each endpoint's routed share from the
// merged ws_routed counters.
func (s *Service) observeRouted(target protocol.UUID) {
	if loc := s.Fleet.Local(string(target)); loc != nil {
		loc.Counter("routed").Inc()
	}
}
