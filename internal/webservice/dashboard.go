package webservice

import (
	"html/template"
	"net/http"
	"strconv"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// The dashboard is the substitute for the hosted web application (which
// more than 4,000 users have accessed per the paper): a read-only HTML view
// of the fleet, task states, and recent audit activity. Browsers cannot
// attach bearer headers, so the token rides in the ?token= query parameter.

var dashboardTmpl = template.Must(template.New("dashboard").Parse(`<!DOCTYPE html>
<html><head><title>Globus Compute (Go) — Dashboard</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #222; }
h1 { font-size: 1.4rem; } h2 { font-size: 1.1rem; margin-top: 2rem; }
table { border-collapse: collapse; margin-top: .5rem; }
th, td { border: 1px solid #ccc; padding: .3rem .6rem; text-align: left; font-size: .9rem; }
th { background: #f2f2f2; }
.online { color: #0a7d38; font-weight: 600; } .offline { color: #b33; }
.muted { color: #777; }
</style></head><body>
<h1>Globus Compute (Go) — service dashboard</h1>
<p class="muted">generated {{.Now.Format "2006-01-02 15:04:05 MST"}}</p>

<h2>Fleet</h2>
<table>
<tr><th>Name</th><th>ID</th><th>Owner</th><th>Type</th><th>Status</th><th>Workers (free/total)</th><th>Tasks received</th></tr>
{{range .Endpoints}}<tr>
  <td>{{.Name}}</td><td class="muted">{{.ShortID}}</td><td>{{.Owner}}</td>
  <td>{{.Kind}}</td>
  <td class="{{.Status}}">{{.Status}}</td>
  <td>{{.Workers}}</td><td>{{.Received}}</td>
</tr>{{end}}
</table>

<h2>Tasks</h2>
<table>
<tr>{{range .TaskStates}}<th>{{.State}}</th>{{end}}</tr>
<tr>{{range .TaskStates}}<td>{{.Count}}</td>{{end}}</tr>
</table>

<h2>Robustness</h2>
<table>
<tr><th>Results processed</th><th>Dead-lettered tasks</th><th>Expired leases</th><th>Endpoints marked offline</th></tr>
<tr><td>{{.Robustness.ResultsProcessed}}</td><td>{{.Robustness.DeadLettered}}</td><td>{{.Robustness.LeaseExpired}}</td><td>{{.Robustness.MarkedOffline}}</td></tr>
</table>

<h2>Recent activity</h2>
<table>
<tr><th>Time</th><th>Actor</th><th>Action</th><th>Resource</th><th>Outcome</th></tr>
{{range .Audit}}<tr>
  <td class="muted">{{.Time.Format "15:04:05"}}</td><td>{{.Actor}}</td>
  <td>{{.Action}}</td><td class="muted">{{.Resource}}</td><td>{{.Outcome}}</td>
</tr>{{end}}
</table>

<p class="muted">observability: <a href="/debug/traces?token={{.Token}}">task traces</a> ·
<a href="/metrics?token={{.Token}}">prometheus metrics</a></p>
</body></html>`))

type dashboardEndpoint struct {
	Name, ShortID, Owner, Kind, Status, Workers string
	Received                                    int64
}

type dashboardTaskState struct {
	State string
	Count int
}

type dashboardRobustness struct {
	ResultsProcessed int64
	DeadLettered     int64
	LeaseExpired     int64
	MarkedOffline    int64
}

type dashboardData struct {
	Now        time.Time
	Token      string
	Endpoints  []dashboardEndpoint
	TaskStates []dashboardTaskState
	Robustness dashboardRobustness
	Audit      []AuditEvent
}

func (s *Server) handleDashboard(w http.ResponseWriter, r *http.Request) {
	token := r.URL.Query().Get("token")
	if _, err := s.svc.cfg.Auth.Introspect(token); err != nil {
		http.Error(w, "unauthorized: pass ?token=<bearer token>", http.StatusUnauthorized)
		return
	}
	data := dashboardData{Now: time.Now(), Token: token}
	for _, ep := range s.svc.cfg.Store.ListEndpoints(statestore.EndpointFilter{}) {
		kind := "single-user"
		if ep.MultiUser {
			kind = "multi-user"
		} else if ep.Parent != "" {
			kind = "user endpoint"
		}
		d := dashboardEndpoint{
			Name: ep.Name, ShortID: string(ep.ID[:8]), Owner: ep.Owner,
			Kind: kind, Status: string(ep.Status), Workers: "-",
		}
		if ep.Load != nil {
			d.Workers = strconv.Itoa(ep.Load.FreeWorkers) + "/" + strconv.Itoa(ep.Load.TotalWorkers)
			d.Received = ep.Load.TasksReceived
		}
		data.Endpoints = append(data.Endpoints, d)
	}
	counts := s.svc.cfg.Store.CountTasksByState()
	for _, st := range []string{"received", "waiting", "delivered", "running", "success", "failed", "cancelled"} {
		data.TaskStates = append(data.TaskStates, dashboardTaskState{State: st, Count: counts[protocol.TaskState(st)]})
	}
	data.Robustness = dashboardRobustness{
		ResultsProcessed: s.svc.Metrics.Counter("results_processed").Value(),
		DeadLettered:     s.svc.Metrics.Counter("deadlettered_tasks").Value(),
		LeaseExpired:     s.svc.Metrics.Counter("lease_expired").Value(),
		MarkedOffline:    s.svc.Metrics.Counter("endpoints_marked_offline").Value(),
	}
	data.Audit = s.svc.AuditTail(20)
	// newest first for display
	for i, j := 0, len(data.Audit)-1; i < j; i, j = i+1, j-1 {
		data.Audit[i], data.Audit[j] = data.Audit[j], data.Audit[i]
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	if err := dashboardTmpl.Execute(w, data); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
