package webservice

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

func TestCancelPendingTask(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	// No agent: the task stays queued.
	ids, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.svc.CancelTask(f.token, ids[0]); err != nil {
		t.Fatal(err)
	}
	st, _ := f.svc.GetTask(ids[0])
	if st.State != protocol.StateCancelled {
		t.Errorf("state = %s", st.State)
	}
	// Cancelling again fails: already terminal.
	if err := f.svc.CancelTask(f.token, ids[0]); !errors.Is(err, statestore.ErrIllegalTransition) {
		t.Errorf("double cancel = %v", err)
	}
}

func TestCancelRequiresOwnership(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})
	other, _ := f.authS.Issue(auth.Identity{Username: "mallory@evil.example", Provider: "evil"},
		[]string{auth.ScopeCompute}, time.Hour, time.Time{})
	if err := f.svc.CancelTask(other, ids[0]); !errors.Is(err, auth.ErrPolicyDenied) {
		t.Errorf("foreign cancel = %v", err)
	}
}

func TestCancelStreamsToGroup(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	group := protocol.NewUUID()
	f.brk.Declare(GroupResultQueue(group))
	stream, err := f.brk.Consume(GroupResultQueue(group), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{
		EndpointID: ep, FunctionID: fn, Payload: []byte("{}"), GroupID: group,
	}})
	if err := f.svc.CancelTask(f.token, ids[0]); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-stream.Messages():
		var res protocol.Result
		json.Unmarshal(m.Body, &res)
		if res.State != protocol.StateCancelled || res.TaskID != ids[0] {
			t.Errorf("streamed %+v", res)
		}
		stream.Ack(m.Tag)
	case <-time.After(2 * time.Second):
		t.Fatal("cancellation not streamed")
	}
}

func TestCancelLosesToCompletedResult(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`"x"`)}})
	waitTask(t, f.svc, ids[0], 5*time.Second)
	if err := f.svc.CancelTask(f.token, ids[0]); err == nil {
		t.Error("cancel of completed task succeeded")
	}
	st, _ := f.svc.GetTask(ids[0])
	if st.State != protocol.StateSuccess {
		t.Errorf("state overwritten to %s", st.State)
	}
}

func TestDuplicateResultIdempotent(t *testing.T) {
	// Redelivery can hand the result processor the same result twice; the
	// first terminal transition wins and the duplicate is dropped.
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})

	res := protocol.Result{TaskID: ids[0], State: protocol.StateSuccess, Output: []byte(`"first"`)}
	body, _ := json.Marshal(res)
	f.brk.Publish(ResultQueue(ep), body)
	dup := protocol.Result{TaskID: ids[0], State: protocol.StateFailed, Error: "duplicate"}
	dupBody, _ := json.Marshal(dup)
	f.brk.Publish(ResultQueue(ep), dupBody)

	st := waitTask(t, f.svc, ids[0], 5*time.Second)
	if st.State != protocol.StateSuccess || string(st.Result) != `"first"` {
		t.Errorf("status = %+v (duplicate overwrote the result)", st)
	}
	// Queue drained despite the duplicate being unprocessable.
	deadline := time.Now().Add(2 * time.Second)
	for {
		d, _ := f.brk.Depth(ResultQueue(ep))
		u, _ := f.brk.Unacked(ResultQueue(ep))
		if d == 0 && u == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("result queue not drained: depth=%d unacked=%d", d, u)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestBatchStatus(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`2`)},
	})
	waitTask(t, f.svc, ids[0], 5*time.Second)
	waitTask(t, f.svc, ids[1], 5*time.Second)
	unknown := protocol.NewUUID()
	statuses := f.svc.GetTasks([]protocol.UUID{ids[0], unknown, ids[1]})
	if len(statuses) != 3 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	if statuses[0].State != protocol.StateSuccess || statuses[2].State != protocol.StateSuccess {
		t.Errorf("states = %s, %s", statuses[0].State, statuses[2].State)
	}
	if statuses[1].Error == "" || statuses[1].State != "" {
		t.Errorf("unknown task status = %+v", statuses[1])
	}
}

func TestHeartbeatWatchdog(t *testing.T) {
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	stop := f.svc.MonitorHeartbeats(50*time.Millisecond, 10*time.Millisecond)
	defer stop()
	// Fresh heartbeat: stays online.
	time.Sleep(20 * time.Millisecond)
	rec, _ := f.svc.GetEndpoint(ep)
	if rec.Status != statestore.EndpointOnline {
		t.Fatalf("status = %s before timeout", rec.Status)
	}
	// Silence: the watchdog marks it offline.
	deadline := time.Now().Add(2 * time.Second)
	for {
		rec, _ = f.svc.GetEndpoint(ep)
		if rec.Status == statestore.EndpointOffline {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoint never marked offline")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// A new heartbeat brings it back.
	f.svc.SetEndpointStatus(ep, true)
	rec, _ = f.svc.GetEndpoint(ep)
	if rec.Status != statestore.EndpointOnline {
		t.Errorf("status = %s after heartbeat", rec.Status)
	}
	stop()
	stop() // idempotent
}
