package webservice

import (
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/durable"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
)

// TestCloudRestartRecovery exercises the durability claim end to end: tasks
// buffered for an offline endpoint survive a hard web-service crash and
// execute once the endpoint comes online against the recovered deployment.
// Unlike an in-memory Snapshot/Restore round trip, this goes through the
// real recovery path: both the statestore and the broker journal to WALs in
// a shared data dir, the "crash" skips the shutdown snapshot entirely, and
// the second life rebuilds its state purely by replaying those WALs — the
// same startup sequence cmd/gc-webservice runs with -data-dir.
func TestCloudRestartRecovery(t *testing.T) {
	dir := t.TempDir()

	// --- first life of the cloud, journaling every mutation ---
	durStore, err := durable.OpenStore(durable.StoreOptions{Dir: dir + "/state", SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	durBroker, err := durable.OpenBroker(durable.BrokerOptions{Dir: dir + "/broker", SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	objs := objectstore.New()
	authS := auth.NewService()
	svc, err := New(Config{Store: durStore.State, Broker: durBroker.B, Objects: objs, Auth: authS})
	if err != nil {
		t.Fatal(err)
	}
	tok, err := authS.Issue(
		auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{svc: svc, store: durStore.State, brk: durBroker.B, objs: objs, authS: authS, token: tok}
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "offline-hpc", Owner: "o"})
	// No agent attached: tasks buffer in the broker.
	ids, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"one"`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"two"`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"three"`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := f.brk.Depth(TaskQueue(ep)); d != 3 {
		t.Fatalf("buffered depth = %d", d)
	}

	// Crash the cloud: stop the service and broker but never call Close on
	// the durable layer, so no final snapshot is written and recovery must
	// come from the logs. The WAL file handles are closed only so the dead
	// generation's flusher goroutines stop.
	f.svc.Close()
	f.brk.Close()
	_ = durStore.WAL().Close()
	_ = durBroker.WAL().Close()

	// --- second life: replay the WALs ---
	durStore2, err := durable.OpenStore(durable.StoreOptions{Dir: dir + "/state", SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	durBroker2, err := durable.OpenBroker(durable.BrokerOptions{Dir: dir + "/broker", SnapshotEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	auth2 := auth.NewService()
	svc2, err := New(Config{Store: durStore2.State, Broker: durBroker2.B, Objects: objectstore.New(), Auth: auth2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		svc2.Close()
		durBroker2.B.Close()
		_ = durStore2.Close()
		_ = durBroker2.Close()
	})
	// No re-registration: the endpoint record was recovered from the WAL, so
	// ResumeEndpoints re-declares its queues and re-attaches its result
	// processor — the same thing cmd/gc-webservice does with -data-dir.
	if err := svc2.ResumeEndpoints(); err != nil {
		t.Fatal(err)
	}

	// Tasks are still tracked and still buffered.
	for _, id := range ids {
		st, err := svc2.GetTask(id)
		if err != nil {
			t.Fatalf("task %s lost across restart: %v", id, err)
		}
		if st.State.Terminal() {
			t.Fatalf("task %s already terminal: %s", id, st.State)
		}
	}
	if d, _ := durBroker2.B.Depth(TaskQueue(ep)); d != 3 {
		t.Fatalf("restored depth = %d", d)
	}

	// The endpoint comes online and drains the backlog.
	f2 := &fixture{svc: svc2, store: durStore2.State, brk: durBroker2.B, objs: objectstore.New(), authS: auth2}
	f2.fakeAgent(t, ep)
	for _, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := svc2.GetTask(id)
			if st.State == protocol.StateSuccess {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s never completed after restart (state %s)", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
