package webservice

import (
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// TestCloudRestartRecovery exercises the reliability claim: tasks buffered
// for an offline endpoint survive a full web-service restart (state store +
// broker snapshots) and execute once the endpoint comes online against the
// restored deployment.
func TestCloudRestartRecovery(t *testing.T) {
	// --- first life of the cloud ---
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "offline-hpc", Owner: "o"})
	// No agent attached: tasks buffer in the broker.
	ids, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"one"`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"two"`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"three"`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if d, _ := f.brk.Depth(TaskQueue(ep)); d != 3 {
		t.Fatalf("buffered depth = %d", d)
	}

	storeImg, err := f.store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	brokerImg, err := f.brk.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Crash the cloud.
	f.svc.Close()
	f.brk.Close()

	// --- second life: restore from snapshots ---
	store2 := statestore.New()
	if err := store2.Restore(storeImg); err != nil {
		t.Fatal(err)
	}
	brk2 := broker.New()
	defer brk2.Close()
	if err := brk2.Restore(brokerImg); err != nil {
		t.Fatal(err)
	}
	auth2 := auth.NewService()
	svc2, err := New(Config{Store: store2, Broker: brk2, Objects: objectstore.New(), Auth: auth2})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	// The endpoint re-registers with its existing ID (agent restart),
	// which re-attaches the result processor.
	if _, err := svc2.RegisterEndpoint(RegisterEndpointRequest{ID: ep, Name: "offline-hpc", Owner: "o"}); err != nil {
		t.Fatal(err)
	}

	// Tasks are still tracked and still buffered.
	for _, id := range ids {
		st, err := svc2.GetTask(id)
		if err != nil {
			t.Fatalf("task %s lost across restart: %v", id, err)
		}
		if st.State.Terminal() {
			t.Fatalf("task %s already terminal: %s", id, st.State)
		}
	}
	if d, _ := brk2.Depth(TaskQueue(ep)); d != 3 {
		t.Fatalf("restored depth = %d", d)
	}

	// The endpoint comes online and drains the backlog.
	f2 := &fixture{svc: svc2, store: store2, brk: brk2, objs: objectstore.New(), authS: auth2}
	f2.fakeAgent(t, ep)
	for _, id := range ids {
		deadline := time.Now().Add(10 * time.Second)
		for {
			st, _ := svc2.GetTask(id)
			if st.State == protocol.StateSuccess {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s never completed after restart (state %s)", id, st.State)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
}
