package webservice

import (
	"encoding/json"
	"net/http"
	"testing"
)

func TestSearchEndpoints(t *testing.T) {
	f := newFixture(t)
	f.registerEndpoint(t, RegisterEndpointRequest{Name: "polaris-gpu", Owner: "admin",
		Metadata: map[string]string{"site": "ALCF"}})
	f.registerEndpoint(t, RegisterEndpointRequest{Name: "midway-cpu", Owner: "rcc"})
	mep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "delta-mep", Owner: "admin", MultiUser: true})
	// A spawned child must not appear in discovery.
	childID, err := f.svc.RegisterEndpoint(RegisterEndpointRequest{Name: "delta-mep/uep", Owner: "u", Parent: mep})
	if err != nil {
		t.Fatal(err)
	}
	_ = childID

	all := f.svc.SearchEndpoints("")
	if len(all) != 3 {
		t.Fatalf("all = %d, want 3 (children excluded)", len(all))
	}
	// Sorted by name.
	if all[0].Name != "delta-mep" || all[2].Name != "polaris-gpu" {
		t.Errorf("order = %s..%s", all[0].Name, all[2].Name)
	}

	byName := f.svc.SearchEndpoints("POLARIS")
	if len(byName) != 1 || byName[0].Name != "polaris-gpu" {
		t.Errorf("byName = %+v", byName)
	}
	byMeta := f.svc.SearchEndpoints("alcf")
	if len(byMeta) != 1 || byMeta[0].Name != "polaris-gpu" {
		t.Errorf("byMeta = %+v", byMeta)
	}
	if got := f.svc.SearchEndpoints("nonexistent"); len(got) != 0 {
		t.Errorf("miss = %+v", got)
	}
	// MEPs are flagged so users know to pass a user config.
	for _, ep := range all {
		if ep.Name == "delta-mep" && !ep.MultiUser {
			t.Error("MEP not flagged multi-user")
		}
	}
}

func TestSearchEndpointsHTTP(t *testing.T) {
	h := newHTTPFixture(t)
	h.do(t, "POST", "/v2/endpoints", h.token.Value, RegisterEndpointRequest{Name: "findme"})
	resp, body := h.do(t, "GET", "/v2/endpoints?search=findme", h.token.Value, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	var out struct {
		Endpoints []EndpointSummary `json:"endpoints"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Endpoints) != 1 || out.Endpoints[0].Name != "findme" {
		t.Errorf("endpoints = %+v", out.Endpoints)
	}
}
