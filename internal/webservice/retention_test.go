package webservice

import (
	"testing"
	"time"
)

func TestRetentionSweeper(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)
	ids, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`2`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	waitTask(t, f.svc, ids[0], 5*time.Second)
	waitTask(t, f.svc, ids[1], 5*time.Second)

	// Retention of 1ns: everything terminal is immediately stale.
	stop := f.svc.StartRetentionSweeper(time.Nanosecond, 10*time.Millisecond)
	defer stop()
	deadline := time.Now().Add(2 * time.Second)
	for f.store.CountTasks() > 0 {
		if time.Now().After(deadline) {
			t.Fatalf("tasks not purged: %d remain", f.store.CountTasks())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if _, err := f.svc.GetTask(ids[0]); err == nil {
		t.Error("purged task still retrievable")
	}
	stop()
	stop() // idempotent
}

func TestRetentionKeepsActiveTasks(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	// No agent: task stays non-terminal and must survive the sweeper.
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`)}})
	if n := f.store.PurgeTasksBefore(time.Now().Add(time.Hour)); n != 0 {
		t.Errorf("purged %d active tasks", n)
	}
	st, err := f.svc.GetTask(ids[0])
	if err != nil || st.State.Terminal() {
		t.Errorf("active task affected: %+v, %v", st, err)
	}
}
