package webservice

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/protocol"
)

// httpFixture adds a REST server to the core fixture.
type httpFixture struct {
	*fixture
	srv *Server
}

func newHTTPFixture(t *testing.T) *httpFixture {
	t.Helper()
	f := newFixture(t)
	srv, err := ServeHTTP(f.svc, "127.0.0.1:0", "broker:0", "objects:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &httpFixture{fixture: f, srv: srv}
}

func (h *httpFixture) do(t *testing.T, method, path, token string, body any) (*http.Response, []byte) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, "http://"+h.srv.Addr()+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if token != "" {
		req.Header.Set("Authorization", "Bearer "+token)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func TestHTTPAuthRequired(t *testing.T) {
	h := newHTTPFixture(t)
	resp, _ := h.do(t, "POST", "/v2/functions", "", registerFunctionRequest{Kind: protocol.KindPython, Definition: []byte("x")})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: %d", resp.StatusCode)
	}
	resp, _ = h.do(t, "POST", "/v2/functions", "gc_bogus", registerFunctionRequest{Kind: protocol.KindPython, Definition: []byte("x")})
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("bad token: %d", resp.StatusCode)
	}
}

func TestHTTPFunctionLifecycle(t *testing.T) {
	h := newHTTPFixture(t)
	resp, body := h.do(t, "POST", "/v2/functions", h.token.Value,
		registerFunctionRequest{Kind: protocol.KindPython, Definition: []byte(`{"entrypoint":"identity"}`)})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register: %d %s", resp.StatusCode, body)
	}
	var reg registerFunctionResponse
	json.Unmarshal(body, &reg)
	if !reg.FunctionID.Valid() {
		t.Fatalf("function id %q", reg.FunctionID)
	}
	resp, body = h.do(t, "GET", "/v2/functions/"+string(reg.FunctionID), h.token.Value, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d", resp.StatusCode)
	}
	resp, _ = h.do(t, "GET", "/v2/functions/"+string(protocol.NewUUID()), h.token.Value, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing function: %d", resp.StatusCode)
	}
}

func TestHTTPEndpointAndSubmitFlow(t *testing.T) {
	h := newHTTPFixture(t)
	// Register function.
	_, body := h.do(t, "POST", "/v2/functions", h.token.Value,
		registerFunctionRequest{Kind: protocol.KindPython, Definition: []byte(`{"entrypoint":"identity"}`)})
	var reg registerFunctionResponse
	json.Unmarshal(body, &reg)

	// Register endpoint.
	resp, body := h.do(t, "POST", "/v2/endpoints", h.token.Value,
		RegisterEndpointRequest{Name: "laptop"})
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("register endpoint: %d %s", resp.StatusCode, body)
	}
	var epResp RegisterEndpointResponse
	json.Unmarshal(body, &epResp)
	if epResp.BrokerAddr != "broker:0" || epResp.TaskQueue == "" {
		t.Errorf("resp = %+v", epResp)
	}

	// Heartbeat online.
	resp, _ = h.do(t, "POST", "/v2/endpoints/"+string(epResp.EndpointID)+"/heartbeat", h.token.Value, heartbeatRequest{Online: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat: %d", resp.StatusCode)
	}

	// Fake agent behind the queues.
	h.fakeAgent(t, epResp.EndpointID)

	// Submit a batch of 3.
	var tasks []SubmitRequest
	for i := 0; i < 3; i++ {
		tasks = append(tasks, SubmitRequest{
			EndpointID: epResp.EndpointID, FunctionID: reg.FunctionID,
			Payload: []byte(fmt.Sprintf("%d", i)),
		})
	}
	resp, body = h.do(t, "POST", "/v2/submit", h.token.Value, submitRequest{Tasks: tasks})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit: %d %s", resp.StatusCode, body)
	}
	var sub submitResponse
	json.Unmarshal(body, &sub)
	if len(sub.TaskIDs) != 3 {
		t.Fatalf("task ids = %v", sub.TaskIDs)
	}

	// Poll until success.
	for _, id := range sub.TaskIDs {
		deadline := time.Now().Add(5 * time.Second)
		for {
			resp, body = h.do(t, "GET", "/v2/tasks/"+string(id), h.token.Value, nil)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("get task: %d", resp.StatusCode)
			}
			var st TaskStatus
			json.Unmarshal(body, &st)
			if st.State.Terminal() {
				if st.State != protocol.StateSuccess {
					t.Errorf("task %s: %s %s", id, st.State, st.Error)
				}
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("task %s never finished", id)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Usage endpoint.
	resp, body = h.do(t, "GET", "/v2/usage", h.token.Value, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("usage: %d", resp.StatusCode)
	}
	var usage UsageStats
	json.Unmarshal(body, &usage)
	if usage.Tasks != 3 || usage.Endpoints != 1 {
		t.Errorf("usage = %+v", usage)
	}
}

func TestHTTPMultiUserNeedsManageScope(t *testing.T) {
	h := newHTTPFixture(t)
	limited, _ := h.authS.Issue(auth.Identity{Username: "user@site.edu", Provider: "site"},
		[]string{auth.ScopeCompute}, time.Hour, time.Time{})
	resp, _ := h.do(t, "POST", "/v2/endpoints", limited.Value, RegisterEndpointRequest{Name: "mep", MultiUser: true})
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("mep without manage scope: %d", resp.StatusCode)
	}
	resp, _ = h.do(t, "POST", "/v2/endpoints", h.token.Value, RegisterEndpointRequest{Name: "mep", MultiUser: true})
	if resp.StatusCode != http.StatusCreated {
		t.Errorf("mep with manage scope: %d", resp.StatusCode)
	}
}

func TestHTTPBadBodies(t *testing.T) {
	h := newHTTPFixture(t)
	req, _ := http.NewRequest("POST", "http://"+h.srv.Addr()+"/v2/submit", bytes.NewReader([]byte("{nope")))
	req.Header.Set("Authorization", "Bearer "+h.token.Value)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad json: %d", resp.StatusCode)
	}
}

func TestHTTPHealthz(t *testing.T) {
	h := newHTTPFixture(t)
	resp, err := http.Get("http://" + h.srv.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: %d", resp.StatusCode)
	}
}
