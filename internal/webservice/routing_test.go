package webservice

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// newRoutingFixture is newFixture with routing-relevant config knobs.
func newRoutingFixture(t *testing.T, mutate func(*Config)) *fixture {
	t.Helper()
	f := &fixture{
		store: statestore.New(),
		brk:   broker.New(),
		objs:  objectstore.New(),
		authS: auth.NewService(),
	}
	cfg := Config{Store: f.store, Broker: f.brk, Objects: f.objs, Auth: f.authS}
	if mutate != nil {
		mutate(&cfg)
	}
	svc, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	f.svc = svc
	tok, err := f.authS.Issue(
		auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	f.token = tok
	t.Cleanup(func() {
		f.svc.Close()
		f.brk.Close()
	})
	return f
}

// groupOf registers n online endpoints with echo agents and wraps them in a
// routing group.
func groupOf(t *testing.T, f *fixture, n int, policy string) (protocol.UUID, []protocol.UUID) {
	t.Helper()
	members := make([]protocol.UUID, n)
	for i := range members {
		members[i] = f.registerEndpoint(t, RegisterEndpointRequest{
			Name: fmt.Sprintf("ep-%d", i), Owner: "alice@uchicago.edu",
		})
		f.fakeAgent(t, members[i])
	}
	gid, err := f.svc.CreateRoutingGroup(f.token, "fleet", policy, members)
	if err != nil {
		t.Fatal(err)
	}
	return gid, members
}

func TestRoutingGroupSubmitFansOut(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	gid, members := groupOf(t, f, 3, "round-robin")

	const tasks = 9
	reqs := make([]SubmitRequest, tasks)
	for i := range reqs {
		reqs[i] = SubmitRequest{EndpointID: gid, FunctionID: fn, Payload: []byte("{}")}
	}
	ids, err := f.svc.Submit(f.token, reqs)
	if err != nil {
		t.Fatal(err)
	}
	perMember := map[protocol.UUID]int{}
	for _, id := range ids {
		st := waitTask(t, f.svc, id, 5*time.Second)
		if st.State != protocol.StateSuccess {
			t.Fatalf("task %s ended %s: %s", id, st.State, st.Error)
		}
		rec, err := f.store.GetTask(id)
		if err != nil {
			t.Fatal(err)
		}
		if rec.Task.RoutingGroup != gid {
			t.Fatalf("task %s routing_group = %q, want %s", id, rec.Task.RoutingGroup, gid)
		}
		perMember[rec.Task.EndpointID]++
	}
	// Round-robin over one batch spreads exactly evenly.
	for _, m := range members {
		if perMember[m] != tasks/len(members) {
			t.Fatalf("uneven spread %v over members %v", perMember, members)
		}
	}
}

func TestRoutingGroupValidation(t *testing.T) {
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "a", Owner: "alice@uchicago.edu"})
	mep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "m", Owner: "alice@uchicago.edu", MultiUser: true})

	if _, err := f.svc.CreateRoutingGroup(f.token, "g", "p2c", nil); err == nil {
		t.Error("accepted empty membership")
	}
	if _, err := f.svc.CreateRoutingGroup(f.token, "g", "warp", []protocol.UUID{ep}); err == nil {
		t.Error("accepted unknown policy")
	}
	if _, err := f.svc.CreateRoutingGroup(f.token, "g", "p2c", []protocol.UUID{ep, ep}); err == nil {
		t.Error("accepted duplicate member")
	}
	if _, err := f.svc.CreateRoutingGroup(f.token, "g", "p2c", []protocol.UUID{mep}); err == nil {
		t.Error("accepted multi-user member")
	}
	if _, err := f.svc.CreateRoutingGroup(f.token, "g", "p2c", []protocol.UUID{protocol.NewUUID()}); err == nil {
		t.Error("accepted unregistered member")
	}
	weak, _ := f.authS.Issue(auth.Identity{Username: "bob@anl.gov", Provider: "anl"},
		[]string{auth.ScopeCompute}, time.Hour, time.Time{})
	if _, err := f.svc.CreateRoutingGroup(weak, "g", "p2c", []protocol.UUID{ep}); err == nil {
		t.Error("compute-only token created a routing group")
	}

	gid, err := f.svc.CreateRoutingGroup(f.token, "g", "p2c", []protocol.UUID{ep})
	if err != nil {
		t.Fatal(err)
	}
	bob, _ := f.authS.Issue(auth.Identity{Username: "bob@anl.gov", Provider: "anl"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err := f.svc.UpdateRoutingGroup(bob, gid, "", []protocol.UUID{ep}); err == nil {
		t.Error("non-owner updated the group")
	}
	ep2 := f.registerEndpoint(t, RegisterEndpointRequest{Name: "b", Owner: "alice@uchicago.edu"})
	if err := f.svc.UpdateRoutingGroup(f.token, gid, "round-robin", []protocol.UUID{ep, ep2}); err != nil {
		t.Fatal(err)
	}
	got, err := f.svc.GetRoutingGroup(gid)
	if err != nil || got.Policy != "round-robin" || len(got.Members) != 2 {
		t.Fatalf("updated group = %+v, %v", got, err)
	}
}

func TestRoutingGroupP2CPrefersIdle(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	gid, members := groupOf(t, f, 2, "p2c")
	heavy, idle := members[0], members[1]

	bl := 0
	if err := f.store.SetEndpointLoad(heavy, statestore.EndpointLoad{
		PendingTasks: 1000, TotalWorkers: 4, FreeWorkers: 0, EgressBacklog: &bl,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.SetEndpointLoad(idle, statestore.EndpointLoad{
		PendingTasks: 0, TotalWorkers: 4, FreeWorkers: 4, EgressBacklog: &bl,
	}); err != nil {
		t.Fatal(err)
	}

	const tasks = 40
	reqs := make([]SubmitRequest, tasks)
	for i := range reqs {
		reqs[i] = SubmitRequest{EndpointID: gid, FunctionID: fn, Payload: []byte("{}")}
	}
	ids, err := f.svc.Submit(f.token, reqs)
	if err != nil {
		t.Fatal(err)
	}
	heavyPicks := 0
	for _, id := range ids {
		rec, _ := f.store.GetTask(id)
		if rec.Task.EndpointID == heavy {
			heavyPicks++
		}
	}
	// p2c compares both members on every pick; the 250x-loaded one should
	// essentially never win (hysteresis charges on the idle member stay far
	// below the load gap).
	if heavyPicks > tasks/10 {
		t.Fatalf("heavy member won %d/%d picks", heavyPicks, tasks)
	}
	if v := f.svc.Routing.Counter("route_picks").Value(); v < tasks {
		t.Fatalf("route_picks = %d, want >= %d", v, tasks)
	}
}

func TestRoutingGroupRerouteOnBacklogShed(t *testing.T) {
	f := newRoutingFixture(t, func(c *Config) { c.BacklogShedThreshold = 10 })
	fn := f.registerFunction(t)
	gid, members := groupOf(t, f, 2, "round-robin")
	shedding, ok := members[0], members[1]

	big, zero := 100, 0
	if err := f.store.SetEndpointLoad(shedding, statestore.EndpointLoad{
		TotalWorkers: 4, EgressBacklog: &big,
	}); err != nil {
		t.Fatal(err)
	}
	if err := f.store.SetEndpointLoad(ok, statestore.EndpointLoad{
		TotalWorkers: 4, FreeWorkers: 4, EgressBacklog: &zero,
	}); err != nil {
		t.Fatal(err)
	}

	reqs := make([]SubmitRequest, 6)
	for i := range reqs {
		reqs[i] = SubmitRequest{EndpointID: gid, FunctionID: fn, Payload: []byte("{}")}
	}
	ids, err := f.svc.Submit(f.token, reqs)
	if err != nil {
		t.Fatal(err)
	}
	sawReroute := false
	for _, id := range ids {
		rec, _ := f.store.GetTask(id)
		if rec.Task.EndpointID != ok {
			t.Fatalf("task %s placed on shedding member", id)
		}
		if rec.Task.Rerouted > 0 {
			sawReroute = true
		}
	}
	if !sawReroute {
		t.Error("round-robin over a shedding member never recorded a reroute")
	}
	if v := f.svc.Routing.Counter("route_reroutes").Value(); v == 0 {
		t.Error("route_reroutes stayed 0")
	}

	// Every member over threshold: the submission surfaces the shed as an
	// overload, not a routing failure.
	if err := f.store.SetEndpointLoad(ok, statestore.EndpointLoad{
		TotalWorkers: 4, EgressBacklog: &big,
	}); err != nil {
		t.Fatal(err)
	}
	f.svc.invalidateGroupRoute(gid)
	var oe *OverloadError
	_, err = f.svc.Submit(f.token, []SubmitRequest{{EndpointID: gid, FunctionID: fn, Payload: []byte("{}")}})
	if !errors.As(err, &oe) {
		t.Fatalf("fully-shedding group returned %v, want OverloadError", err)
	}
}

func TestStaleLoadReportNotTrusted(t *testing.T) {
	f := newRoutingFixture(t, func(c *Config) { c.BacklogShedThreshold = 10 })
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "a", Owner: "alice@uchicago.edu"})
	f.fakeAgent(t, ep)

	// A huge backlog reported long ago (a dead agent's last words) must not
	// shed traffic forever: older than 3 heartbeat intervals = unknown.
	big := 100
	past := time.Now().Add(-time.Minute)
	f.store.SetClock(func() time.Time { return past })
	if err := f.store.SetEndpointLoad(ep, statestore.EndpointLoad{TotalWorkers: 4, EgressBacklog: &big}); err != nil {
		t.Fatal(err)
	}
	f.store.SetClock(time.Now)

	ids, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})
	if err != nil {
		t.Fatalf("stale backlog report shed a direct submit: %v", err)
	}
	if st := waitTask(t, f.svc, ids[0], 5*time.Second); st.State != protocol.StateSuccess {
		t.Fatalf("task ended %s", st.State)
	}

	// The same report, fresh, sheds.
	if err := f.store.SetEndpointLoad(ep, statestore.EndpointLoad{TotalWorkers: 4, EgressBacklog: &big}); err != nil {
		t.Fatal(err)
	}
	var oe *OverloadError
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}}); !errors.As(err, &oe) {
		t.Fatalf("fresh over-threshold backlog returned %v, want OverloadError", err)
	}
}

// TestRoutePickConcurrentWithRefresh hammers one group from many goroutines
// with a cache TTL short enough that picks and snapshot refreshes overlap
// continuously. Regression for a data race where the refresh mutated the
// cached record map in place while routePick read it lock-free; run under
// -race this crashed with a concurrent map read/write.
func TestRoutePickConcurrentWithRefresh(t *testing.T) {
	f := newRoutingFixture(t, func(c *Config) { c.HeartbeatInterval = 40 * time.Millisecond })
	gid, _ := groupOf(t, f, 4, "p2c")

	var wg sync.WaitGroup
	deadline := time.Now().Add(150 * time.Millisecond)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if _, _, err := f.svc.routePick(gid, false); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestRoutingGroupSurvivesRestartViaSnapshot(t *testing.T) {
	f := newFixture(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "a", Owner: "alice@uchicago.edu"})
	gid, err := f.svc.CreateRoutingGroup(f.token, "fleet", "p2c", []protocol.UUID{ep})
	if err != nil {
		t.Fatal(err)
	}
	img, err := f.store.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	s2 := statestore.New()
	if err := s2.Restore(img); err != nil {
		t.Fatal(err)
	}
	got, err := s2.GetRoutingGroup(gid)
	if err != nil || len(got.Members) != 1 || got.Members[0] != ep {
		t.Fatalf("restored group = %+v, %v", got, err)
	}
}

func TestUserEndpointReplicasPickWarm(t *testing.T) {
	f := newRoutingFixture(t, func(c *Config) { c.UserEndpointReplicas = 2 })
	fn := f.registerFunction(t)
	mep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "cluster", Owner: "admin", MultiUser: true})
	conf := []byte(`{"NODES": 2}`)

	submit := func() protocol.UUID {
		ids, err := f.svc.Submit(f.token, []SubmitRequest{{
			EndpointID: mep, FunctionID: fn, Payload: []byte("{}"), UserEndpointConfig: conf,
		}})
		if err != nil {
			t.Fatal(err)
		}
		rec, err := f.store.GetTask(ids[0])
		if err != nil {
			t.Fatal(err)
		}
		return rec.Task.EndpointID
	}

	// First two submissions scale out to two replicas.
	r1, r2 := submit(), submit()
	if r1 == r2 {
		t.Fatalf("replicas=2 reused one child for the first two submissions")
	}
	// Only one replica warm: every later pick lands on it.
	if err := f.svc.SetEndpointStatus(r2, true); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := submit(); got != r2 {
			t.Fatalf("pick %d chose cold replica %s, want warm %s", i, got, r2)
		}
	}
	// No third replica ever spawned.
	kids := f.store.ListEndpoints(statestore.EndpointFilter{Parent: mep, Owner: "alice@uchicago.edu"})
	if len(kids) != 2 {
		t.Fatalf("spawned %d replicas, want 2", len(kids))
	}
}
