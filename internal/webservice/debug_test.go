package webservice

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
)

// newTracedHTTPFixture is newHTTPFixture with tracing enabled on the service
// and broker, sharing one collector.
func newTracedHTTPFixture(t *testing.T) (*httpFixture, *trace.Collector) {
	t.Helper()
	col := trace.NewCollector(256)
	f := &fixture{
		store: statestore.New(),
		brk:   broker.New(),
		objs:  objectstore.New(),
		authS: auth.NewService(),
	}
	f.brk.Tracer = trace.NewTracer("broker", col)
	svc, err := New(Config{
		Store: f.store, Broker: f.brk, Objects: f.objs, Auth: f.authS,
		Tracer: trace.NewTracer("webservice", col),
	})
	if err != nil {
		t.Fatal(err)
	}
	f.svc = svc
	tok, err := f.authS.Issue(
		auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	f.token = tok
	t.Cleanup(func() {
		f.svc.Close()
		f.brk.Close()
	})
	srv, err := ServeHTTP(f.svc, "127.0.0.1:0", "broker:0", "objects:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &httpFixture{fixture: f, srv: srv}, col
}

// runTracedTask submits one task through the traced fixture and returns the
// trace ID of its submit span.
func runTracedTask(t *testing.T, h *httpFixture, col *trace.Collector) trace.TraceID {
	t.Helper()
	fn := h.registerFunction(t)
	ep := h.registerEndpoint(t, RegisterEndpointRequest{Name: "traced", Owner: "o"})
	h.fakeAgent(t, ep)
	ids, err := h.svc.Submit(h.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte(`"x"`)}})
	if err != nil {
		t.Fatal(err)
	}
	waitTask(t, h.svc, ids[0], 5*time.Second)
	deadline := time.Now().Add(2 * time.Second)
	for {
		for _, sp := range col.Snapshot() {
			if sp.Name == "submit" {
				return sp.TraceID
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("submit span never recorded")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDebugTracesEndpoint(t *testing.T) {
	h, col := newTracedHTTPFixture(t)
	id := runTracedTask(t, h, col)

	// Unauthorized without a valid token.
	resp, err := http.Get("http://" + h.srv.Addr() + "/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: status %d", resp.StatusCode)
	}

	// Listing names the trace.
	resp, body := h.do(t, "GET", "/debug/traces?token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), string(id)) {
		t.Errorf("listing missing trace %s:\n%s", id, body)
	}

	// Per-trace view renders the critical path.
	resp, body = h.do(t, "GET", "/debug/traces?id="+string(id)+"&token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detail status = %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "critical path") || !strings.Contains(string(body), "submit") {
		t.Errorf("detail view:\n%s", body)
	}

	// Unknown ID is a 404.
	resp, _ = h.do(t, "GET", "/debug/traces?id=deadbeef&token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown id: status %d", resp.StatusCode)
	}

	// JSONL export round-trips through the trace reader.
	resp, body = h.do(t, "GET", "/debug/traces?format=jsonl&token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("jsonl status = %d", resp.StatusCode)
	}
	spans, err := trace.ReadJSONL(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Error("jsonl export empty")
	}

	// Programmatic analysis agrees with the HTTP view.
	sum, err := h.svc.AnalyzeTrace(id)
	if err != nil {
		t.Fatal(err)
	}
	if sum.TraceID != id || sum.Spans == 0 {
		t.Errorf("AnalyzeTrace = %+v", sum)
	}
}

func TestDebugTracesDisabledWithoutTracer(t *testing.T) {
	h := newHTTPFixture(t) // untraced fixture
	resp, _ := h.do(t, "GET", "/debug/traces?token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404 when tracing is off", resp.StatusCode)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	h, col := newTracedHTTPFixture(t)
	runTracedTask(t, h, col)

	resp, err := http.Get("http://" + h.srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Errorf("no token: status %d", resp.StatusCode)
	}

	resp, body := h.do(t, "GET", "/metrics?token="+h.token.Value, "", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	out := string(body)
	for _, want := range []string{"# TYPE gc_webservice_", "# TYPE gc_broker_", "counter"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q:\n%.500s", want, out)
		}
	}
}
