package webservice

import (
	"encoding/json"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/serialize"
	"globuscompute/internal/statestore"
)

type fixture struct {
	svc   *Service
	store *statestore.Store
	brk   *broker.Broker
	objs  *objectstore.Store
	authS *auth.Service
	token auth.Token
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	f := &fixture{
		store: statestore.New(),
		brk:   broker.New(),
		objs:  objectstore.New(),
		authS: auth.NewService(),
	}
	svc, err := New(Config{Store: f.store, Broker: f.brk, Objects: f.objs, Auth: f.authS})
	if err != nil {
		t.Fatal(err)
	}
	f.svc = svc
	tok, err := f.authS.Issue(
		auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	f.token = tok
	t.Cleanup(func() {
		f.svc.Close()
		f.brk.Close()
	})
	return f
}

// registerEndpoint is a helper returning a plain online endpoint.
func (f *fixture) registerEndpoint(t *testing.T, req RegisterEndpointRequest) protocol.UUID {
	t.Helper()
	id, err := f.svc.RegisterEndpoint(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.svc.SetEndpointStatus(id, true); err != nil {
		t.Fatal(err)
	}
	return id
}

// fakeAgent consumes the endpoint's task queue and echoes payloads back as
// successful results.
func (f *fixture) fakeAgent(t *testing.T, ep protocol.UUID) {
	t.Helper()
	c, err := f.brk.Consume(TaskQueue(ep), 16)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for m := range c.Messages() {
			var task protocol.Task
			if err := json.Unmarshal(m.Body, &task); err != nil {
				c.Ack(m.Tag)
				continue
			}
			payload := task.Payload
			if task.PayloadRef != "" {
				payload, _ = f.objs.Get(task.PayloadRef)
			}
			res := protocol.Result{
				TaskID: task.ID, State: protocol.StateSuccess,
				Output: payload, EndpointID: ep,
				Started: time.Now(), Completed: time.Now(),
			}
			body, _ := json.Marshal(res)
			f.brk.Publish(ResultQueue(ep), body)
			c.Ack(m.Tag)
		}
	}()
	t.Cleanup(c.Close)
}

func (f *fixture) registerFunction(t *testing.T) protocol.UUID {
	t.Helper()
	id, err := f.svc.RegisterFunction("alice@uchicago.edu", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func waitTask(t *testing.T, svc *Service, id protocol.UUID, timeout time.Duration) TaskStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := svc.GetTask(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestEndToEndSubmitAndResult(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "laptop", Owner: "alice@uchicago.edu"})
	f.fakeAgent(t, ep)

	ids, err := f.svc.Submit(f.token, []SubmitRequest{{
		EndpointID: ep, FunctionID: fn, Payload: []byte(`"hello"`),
	}})
	if err != nil {
		t.Fatal(err)
	}
	st := waitTask(t, f.svc, ids[0], 5*time.Second)
	if st.State != protocol.StateSuccess {
		t.Fatalf("state = %s err=%s", st.State, st.Error)
	}
	if string(st.Result) != `"hello"` {
		t.Errorf("result = %q", st.Result)
	}
}

func TestRegisterFunctionValidation(t *testing.T) {
	f := newFixture(t)
	if _, err := f.svc.RegisterFunction("o", protocol.KindPython, nil); err == nil {
		t.Error("empty definition accepted")
	}
	if _, err := f.svc.RegisterFunction("o", "golang", []byte("x")); err == nil {
		t.Error("unknown kind accepted")
	}
	id, err := f.svc.RegisterFunction("o", protocol.KindShell, []byte("spec"))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := f.svc.GetFunction(id)
	if err != nil || rec.Kind != protocol.KindShell {
		t.Errorf("rec = %+v, %v", rec, err)
	}
}

func TestSubmitUnknownFunctionOrEndpoint(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: protocol.NewUUID(), Payload: []byte("{}")}}); !errors.Is(err, statestore.ErrNotFound) {
		t.Errorf("unknown function: %v", err)
	}
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: protocol.NewUUID(), FunctionID: fn, Payload: []byte("{}")}}); !errors.Is(err, statestore.ErrNotFound) {
		t.Errorf("unknown endpoint: %v", err)
	}
	if _, err := f.svc.Submit(f.token, nil); err == nil {
		t.Error("empty batch accepted")
	}
}

func TestPayloadLimitAtService(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	big := make([]byte, serialize.MaxPayload+1)
	_, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: big}})
	if !errors.Is(err, serialize.ErrPayloadTooLarge) {
		t.Errorf("err = %v, want payload-too-large", err)
	}
}

func TestPayloadSpillsToObjectStore(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)
	payload := make([]byte, serialize.DefaultInlineThreshold+100)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}
	ids, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: payload}})
	if err != nil {
		t.Fatal(err)
	}
	if f.objs.Len() == 0 {
		t.Error("payload not spilled to object store")
	}
	st := waitTask(t, f.svc, ids[0], 5*time.Second)
	if st.State != protocol.StateSuccess {
		t.Fatalf("state = %s", st.State)
	}
	// The large echoed output must itself have spilled.
	if st.ResultRef == "" {
		t.Error("large result not spilled to object store")
	}
	got, err := f.objs.Get(st.ResultRef)
	if err != nil || len(got) != len(payload) {
		t.Errorf("result blob: %d bytes, %v", len(got), err)
	}
}

func TestBatchSpansMultipleEndpoints(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	epA := f.registerEndpoint(t, RegisterEndpointRequest{Name: "a", Owner: "o"})
	epB := f.registerEndpoint(t, RegisterEndpointRequest{Name: "b", Owner: "o"})
	f.fakeAgent(t, epA)
	f.fakeAgent(t, epB)
	ids, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: epA, FunctionID: fn, Payload: []byte(`"to-a"`)},
		{EndpointID: epB, FunctionID: fn, Payload: []byte(`"to-b"`)},
	})
	if err != nil {
		t.Fatal(err)
	}
	stA := waitTask(t, f.svc, ids[0], 5*time.Second)
	stB := waitTask(t, f.svc, ids[1], 5*time.Second)
	if string(stA.Result) != `"to-a"` || string(stB.Result) != `"to-b"` {
		t.Errorf("results = %s, %s", stA.Result, stB.Result)
	}
	// Tasks landed on their own endpoints.
	if got := f.store.ListTasksByEndpoint(epA); len(got) != 1 || got[0] != ids[0] {
		t.Errorf("epA tasks = %v", got)
	}
	if got := f.store.ListTasksByEndpoint(epB); len(got) != 1 || got[0] != ids[1] {
		t.Errorf("epB tasks = %v", got)
	}
}

func TestBatchValidatesBeforeEnqueue(t *testing.T) {
	// A batch with one bad entry must enqueue nothing.
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	_, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`"good"`)},
		{EndpointID: ep, FunctionID: protocol.NewUUID(), Payload: []byte(`"bad-fn"`)},
	})
	if err == nil {
		t.Fatal("batch with unknown function accepted")
	}
	if f.store.CountTasks() != 0 {
		t.Errorf("partial batch enqueued %d tasks", f.store.CountTasks())
	}
	if d, _ := f.brk.Depth(TaskQueue(ep)); d != 0 {
		t.Errorf("queue depth = %d after failed batch", d)
	}
}

func TestAllowedFunctionsEnforced(t *testing.T) {
	f := newFixture(t)
	allowed := f.registerFunction(t)
	other := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{
		Name: "gateway", Owner: "admin", AllowedFunctions: []protocol.UUID{allowed},
	})
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: other, Payload: []byte("{}")}}); !errors.Is(err, ErrFunctionNotAllowed) {
		t.Errorf("disallowed function: %v", err)
	}
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: allowed, Payload: []byte("{}")}}); err != nil {
		t.Errorf("allowed function rejected: %v", err)
	}
}

func TestAuthPolicyEnforced(t *testing.T) {
	f := newFixture(t)
	f.authS.RegisterPolicy(auth.Policy{Name: "anl-only", AllowedDomains: []string{"anl.gov"}})
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "secure", Owner: "admin", AuthPolicy: "anl-only"})
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}}); !errors.Is(err, auth.ErrPolicyDenied) {
		t.Errorf("policy not enforced: %v", err)
	}
	anlTok, _ := f.authS.Issue(auth.Identity{Username: "bob@anl.gov", Provider: "anl"}, []string{auth.ScopeCompute}, time.Hour, time.Time{})
	if _, err := f.svc.Submit(anlTok, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}}); err != nil {
		t.Errorf("allowed identity rejected: %v", err)
	}
}

func TestMEPSpawnAndConfigHashReuse(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	mep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "cluster", Owner: "admin", MultiUser: true})

	// Listen on the MEP command queue like the MEP agent would.
	cmds, err := f.brk.Consume(CommandQueue(mep), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer cmds.Close()

	confA := json.RawMessage(`{"NODES": 4, "ACCOUNT": "alloc1"}`)
	confAReordered := json.RawMessage(`{"ACCOUNT": "alloc1", "NODES": 4}`)
	confB := json.RawMessage(`{"NODES": 8, "ACCOUNT": "alloc1"}`)

	// Submission without a config fails.
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: mep, FunctionID: fn, Payload: []byte("{}")}}); !errors.Is(err, ErrNeedsUserConfig) {
		t.Errorf("missing config: %v", err)
	}

	submit := func(conf json.RawMessage) protocol.UUID {
		ids, err := f.svc.Submit(f.token, []SubmitRequest{{
			EndpointID: mep, FunctionID: fn, Payload: []byte("{}"), UserEndpointConfig: conf,
		}})
		if err != nil {
			t.Fatal(err)
		}
		rec, _ := f.store.GetTask(ids[0])
		return rec.Task.EndpointID
	}

	childA1 := submit(confA)
	childA2 := submit(confAReordered) // key-order-insensitive hash
	childB := submit(confB)

	if childA1 == mep {
		t.Fatal("task routed to the MEP itself")
	}
	if childA1 != childA2 {
		t.Errorf("same config spawned different UEPs: %s vs %s", childA1, childA2)
	}
	if childB == childA1 {
		t.Error("different config reused the same UEP")
	}

	// Exactly two start commands (one per distinct config).
	starts := 0
	timeout := time.After(2 * time.Second)
	for starts < 2 {
		select {
		case m := <-cmds.Messages():
			var cmd StartEndpointCommand
			if err := json.Unmarshal(m.Body, &cmd); err != nil {
				t.Fatal(err)
			}
			if cmd.UserIdentity.Username != "alice@uchicago.edu" {
				t.Errorf("identity = %s", cmd.UserIdentity.Username)
			}
			if cmd.ConfigHash == "" || cmd.ChildEndpointID == "" {
				t.Errorf("cmd = %+v", cmd)
			}
			cmds.Ack(m.Tag)
			starts++
		case <-timeout:
			t.Fatalf("saw %d start commands, want 2", starts)
		}
	}
	select {
	case <-cmds.Messages():
		t.Error("third start command issued for a reused config")
	case <-time.After(100 * time.Millisecond):
	}

	// Children inherit parent linkage for usage accounting.
	usage := f.svc.Usage()
	if usage.MultiUserEPs != 1 || usage.UserEndpoints != 2 {
		t.Errorf("usage = %+v", usage)
	}
}

func TestDifferentUsersGetDifferentUEPs(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	mep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "c", Owner: "admin", MultiUser: true})
	conf := json.RawMessage(`{"NODES": 1}`)

	bobTok, _ := f.authS.Issue(auth.Identity{Username: "bob@anl.gov", Provider: "anl"}, []string{auth.ScopeCompute}, time.Hour, time.Time{})
	idsA, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: mep, FunctionID: fn, Payload: []byte("{}"), UserEndpointConfig: conf}})
	if err != nil {
		t.Fatal(err)
	}
	idsB, err := f.svc.Submit(bobTok, []SubmitRequest{{EndpointID: mep, FunctionID: fn, Payload: []byte("{}"), UserEndpointConfig: conf}})
	if err != nil {
		t.Fatal(err)
	}
	recA, _ := f.store.GetTask(idsA[0])
	recB, _ := f.store.GetTask(idsB[0])
	if recA.Task.EndpointID == recB.Task.EndpointID {
		t.Error("two identities shared one user endpoint")
	}
}

func TestGroupResultStreaming(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)

	group := protocol.NewUUID()
	if err := f.brk.Declare(GroupResultQueue(group)); err != nil {
		t.Fatal(err)
	}
	stream, err := f.brk.Consume(GroupResultQueue(group), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	ids, err := f.svc.Submit(f.token, []SubmitRequest{
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`1`), GroupID: group},
		{EndpointID: ep, FunctionID: fn, Payload: []byte(`2`), GroupID: group},
	})
	if err != nil {
		t.Fatal(err)
	}
	got := map[protocol.UUID]bool{}
	timeout := time.After(5 * time.Second)
	for len(got) < 2 {
		select {
		case m := <-stream.Messages():
			var res protocol.Result
			if err := json.Unmarshal(m.Body, &res); err != nil {
				t.Fatal(err)
			}
			got[res.TaskID] = true
			stream.Ack(m.Tag)
		case <-timeout:
			t.Fatalf("streamed %d results, want 2", len(got))
		}
	}
	for _, id := range ids {
		if !got[id] {
			t.Errorf("result for %s not streamed", id)
		}
	}
}

func TestHashConfigProperties(t *testing.T) {
	h1, err := HashConfig(json.RawMessage(`{"a": 1, "b": {"c": [1,2]}}`))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := HashConfig(json.RawMessage(`{"b": {"c": [1,2]}, "a": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Error("key order changed the hash")
	}
	h3, _ := HashConfig(json.RawMessage(`{"a": 1, "b": {"c": [2,1]}}`))
	if h3 == h1 {
		t.Error("array order should change the hash")
	}
	if _, err := HashConfig(json.RawMessage(`{bad`)); err == nil {
		t.Error("invalid config hashed")
	}
}

func TestUsageCounters(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	f.fakeAgent(t, ep)
	ids, _ := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})
	waitTask(t, f.svc, ids[0], 5*time.Second)
	u := f.svc.Usage()
	if u.Functions != 1 || u.Endpoints != 1 || u.Tasks != 1 {
		t.Errorf("usage = %+v", u)
	}
	if u.TasksByState[protocol.StateSuccess] != 1 {
		t.Errorf("by-state = %v", u.TasksByState)
	}
}
