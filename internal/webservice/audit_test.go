package webservice

import (
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/protocol"
)

func TestAuditTrailRecordsActions(t *testing.T) {
	f := newFixture(t)
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o"})
	if _, err := f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}}); err != nil {
		t.Fatal(err)
	}
	events := f.svc.AuditTail(0)
	actions := map[string]int{}
	for _, ev := range events {
		actions[ev.Action]++
		if ev.Time.IsZero() {
			t.Error("event without timestamp")
		}
	}
	if actions["register_function"] != 1 || actions["register_endpoint"] != 1 || actions["submit"] != 1 {
		t.Errorf("actions = %v", actions)
	}
}

func TestAuditRecordsDenials(t *testing.T) {
	f := newFixture(t)
	f.authS.RegisterPolicy(auth.Policy{Name: "deny-all", AllowedDomains: []string{"nowhere.invalid"}})
	fn := f.registerFunction(t)
	ep := f.registerEndpoint(t, RegisterEndpointRequest{Name: "e", Owner: "o", AuthPolicy: "deny-all"})
	f.svc.Submit(f.token, []SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: []byte("{}")}})
	found := false
	for _, ev := range f.svc.AuditTail(0) {
		if ev.Action == "submit" && ev.Outcome != "ok" {
			found = true
			if ev.Actor != "alice@uchicago.edu" {
				t.Errorf("actor = %q", ev.Actor)
			}
		}
	}
	if !found {
		t.Error("denial not audited")
	}
}

func TestAuditRingBounded(t *testing.T) {
	a := newAuditLog(4)
	for i := 0; i < 10; i++ {
		a.record(AuditEvent{Action: "a", Detail: string(rune('0' + i))})
	}
	events := a.tail(0)
	if len(events) != 4 {
		t.Fatalf("events = %d, want 4", len(events))
	}
	if events[0].Detail != "6" || events[3].Detail != "9" {
		t.Errorf("ring kept %v..%v", events[0].Detail, events[3].Detail)
	}
	if got := a.tail(2); len(got) != 2 || got[1].Detail != "9" {
		t.Errorf("tail(2) = %v", got)
	}
}

func TestAuditHTTPRequiresManageScope(t *testing.T) {
	h := newHTTPFixture(t)
	limited, _ := h.authS.Issue(auth.Identity{Username: "user@site.edu", Provider: "site"},
		[]string{auth.ScopeCompute}, time.Hour, time.Time{})
	resp, _ := h.do(t, "GET", "/v2/audit", limited.Value, nil)
	if resp.StatusCode != http.StatusForbidden {
		t.Errorf("audit without manage scope: %d", resp.StatusCode)
	}
	// Generate one event, then fetch as admin.
	h.do(t, "POST", "/v2/functions", h.token.Value,
		registerFunctionRequest{Kind: protocol.KindPython, Definition: []byte("x")})
	resp, body := h.do(t, "GET", "/v2/audit?n=10", h.token.Value, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("audit: %d", resp.StatusCode)
	}
	var out struct {
		Events []AuditEvent `json:"events"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Events) == 0 {
		t.Error("no audit events returned")
	}
}
