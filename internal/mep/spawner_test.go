package mep

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/protocol"
	"globuscompute/internal/registry"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/webservice"
)

// spawnerHarness builds a spawner against a private broker + cluster.
func spawnerHarness(t *testing.T) (SpawnFunc, *broker.Broker, *scheduler.Scheduler) {
	t.Helper()
	brk := broker.New()
	sched := scheduler.SimpleCluster(4)
	t.Cleanup(func() {
		sched.Close()
		brk.Close()
	})
	spawn := NewAgentSpawner(SpawnerDeps{
		Scheduler:   sched,
		Conn:        broker.LocalConn(brk),
		Registry:    registry.Builtins(),
		SandboxRoot: t.TempDir(),
	})
	return spawn, brk, sched
}

func spawnWith(t *testing.T, spawn SpawnFunc, brk *broker.Broker, rendered string) (UserEndpoint, protocol.UUID) {
	t.Helper()
	child := protocol.NewUUID()
	brk.Declare("tasks." + string(child))
	brk.Declare("results." + string(child))
	ep, err := spawn(context.Background(), SpawnRequest{
		ChildEndpointID: child,
		LocalUser:       "localuser",
		Identity:        auth.Identity{Username: "u@x.edu"},
		RenderedConfig:  rendered,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ep.Stop)
	return ep, child
}

// runTask routes one task through a spawned endpoint and returns the result.
func runTask(t *testing.T, brk *broker.Broker, child protocol.UUID, task protocol.Task) protocol.Result {
	t.Helper()
	task.EndpointID = child
	body, _ := json.Marshal(task)
	results, err := brk.Consume("results."+string(child), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer results.Close()
	if err := brk.Publish("tasks."+string(child), body); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-results.Messages():
		var res protocol.Result
		json.Unmarshal(m.Body, &res)
		results.Ack(m.Tag)
		return res
	case <-time.After(20 * time.Second):
		t.Fatal("no result from spawned endpoint")
		return protocol.Result{}
	}
}

func TestSpawnerSlurmConfig(t *testing.T) {
	spawn, brk, _ := spawnerHarness(t)
	_, child := spawnWith(t, spawn, brk, `{
	  "engine": {"type": "GlobusComputeEngine", "nodes_per_block": 2, "workers_per_node": 2},
	  "provider": {"type": "SlurmProvider", "partition": "default", "walltime": "00:10:00"}
	}`)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "echo $GC_LOCAL_USER"})
	res := runTask(t, brk, child, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindShell, Payload: payload})
	if res.State != protocol.StateSuccess {
		t.Fatalf("result = %+v", res)
	}
	var sr protocol.ShellResult
	protocol.DecodePayload(res.Output, &sr)
	if sr.Stdout != "localuser" {
		t.Errorf("stdout = %q (privilege-drop env missing)", sr.Stdout)
	}
}

func TestSpawnerLocalProvider(t *testing.T) {
	spawn, brk, _ := spawnerHarness(t)
	_, child := spawnWith(t, spawn, brk, `{
	  "engine": {"type": "GlobusComputeEngine"},
	  "provider": {"type": "LocalProvider"}
	}`)
	payload, _ := protocol.EncodePayload(protocol.PythonSpec{Entrypoint: "identity", Args: []json.RawMessage{json.RawMessage(`7`)}})
	res := runTask(t, brk, child, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: payload})
	if res.State != protocol.StateSuccess || string(res.Output) != "7" {
		t.Errorf("result = %+v", res)
	}
}

func TestSpawnerKubernetesProvider(t *testing.T) {
	spawn, brk, _ := spawnerHarness(t)
	_, child := spawnWith(t, spawn, brk, `{
	  "engine": {"type": "GlobusComputeEngine"},
	  "provider": {"type": "KubernetesProvider"}
	}`)
	payload, _ := protocol.EncodePayload(protocol.PythonSpec{Entrypoint: "identity", Args: []json.RawMessage{json.RawMessage(`"pod"`)}})
	res := runTask(t, brk, child, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: payload})
	if res.State != protocol.StateSuccess {
		t.Errorf("result = %+v", res)
	}
}

func TestSpawnerMPIEngineConfig(t *testing.T) {
	spawn, brk, _ := spawnerHarness(t)
	_, child := spawnWith(t, spawn, brk, `{
	  "engine": {"type": "GlobusMPIEngine", "nodes_per_block": 2, "mpi_launcher": "srun"},
	  "provider": {"type": "SlurmProvider", "partition": "default"}
	}`)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "echo $GC_NODE"})
	res := runTask(t, brk, child, protocol.Task{
		ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
		Resources: protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1},
	})
	if res.State != protocol.StateSuccess {
		t.Fatalf("result = %+v", res)
	}
	var sr protocol.ShellResult
	protocol.DecodePayload(res.Output, &sr)
	if len(sr.Stdout) == 0 {
		t.Error("empty MPI output")
	}
}

func TestSpawnerRejectsBadConfig(t *testing.T) {
	spawn, _, _ := spawnerHarness(t)
	cases := []string{
		`{not json`,
		`{"engine": {"type": "GlobusComputeEngine"}, "provider": {"type": "SlurmProvider", "walltime": "bad"}}`,
	}
	for _, rendered := range cases {
		_, err := spawn(context.Background(), SpawnRequest{
			ChildEndpointID: protocol.NewUUID(),
			LocalUser:       "u",
			RenderedConfig:  rendered,
		})
		if !errors.Is(err, ErrBadConfig) {
			t.Errorf("spawn(%.30q) = %v, want ErrBadConfig", rendered, err)
		}
	}
}

func TestSpawnerHeartbeatCallback(t *testing.T) {
	brk := broker.New()
	sched := scheduler.SimpleCluster(1)
	t.Cleanup(func() { sched.Close(); brk.Close() })
	beats := make(chan bool, 8)
	spawn := NewAgentSpawner(SpawnerDeps{
		Scheduler: sched,
		Conn:      broker.LocalConn(brk),
		Heartbeat: func(_ protocol.UUID, online bool) { beats <- online },
	})
	child := protocol.NewUUID()
	brk.Declare(string(webservice.TaskQueue(child)))
	brk.Declare(string(webservice.ResultQueue(child)))
	ep, err := spawn(context.Background(), SpawnRequest{
		ChildEndpointID: child, LocalUser: "u",
		RenderedConfig: `{"engine": {"type": "GlobusComputeEngine"}, "provider": {"type": "LocalProvider"}}`,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case up := <-beats:
		if !up {
			t.Error("first heartbeat was offline")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no heartbeat")
	}
	ep.Stop()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case up := <-beats:
			if !up {
				return // offline heartbeat observed
			}
		case <-deadline:
			t.Fatal("no offline heartbeat after stop")
		}
	}
}
