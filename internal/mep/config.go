package mep

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// EndpointConfig is the rendered endpoint configuration a template
// produces, mirroring the paper's Listing 9 (the real system renders YAML;
// this repo renders JSON — see DESIGN.md substitutions).
type EndpointConfig struct {
	DisplayName string         `json:"display_name,omitempty"`
	Engine      EngineConfig   `json:"engine"`
	Provider    ProviderConfig `json:"provider"`
}

// EngineConfig selects and sizes the task engine.
type EngineConfig struct {
	// Type is GlobusComputeEngine or GlobusMPIEngine.
	Type           string `json:"type"`
	NodesPerBlock  int    `json:"nodes_per_block,omitempty"`
	WorkersPerNode int    `json:"workers_per_node,omitempty"`
	MaxBlocks      int    `json:"max_blocks,omitempty"`
	// MPILauncher applies to GlobusMPIEngine (mpiexec, srun).
	MPILauncher string `json:"mpi_launcher,omitempty"`
}

// ProviderConfig selects the resource provider.
type ProviderConfig struct {
	// Type is SlurmProvider, PBSProProvider, KubernetesProvider, or
	// LocalProvider.
	Type      string `json:"type"`
	Partition string `json:"partition,omitempty"`
	Account   string `json:"account,omitempty"`
	// Walltime is HH:MM:SS.
	Walltime string `json:"walltime,omitempty"`
}

// ParseEndpointConfig decodes and validates a rendered configuration.
func ParseEndpointConfig(rendered string) (EndpointConfig, error) {
	var cfg EndpointConfig
	dec := json.NewDecoder(strings.NewReader(rendered))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return cfg, fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	switch cfg.Engine.Type {
	case "GlobusComputeEngine", "GlobusMPIEngine":
	case "":
		return cfg, fmt.Errorf("%w: engine type required", ErrBadConfig)
	default:
		return cfg, fmt.Errorf("%w: unknown engine type %q", ErrBadConfig, cfg.Engine.Type)
	}
	switch cfg.Provider.Type {
	case "SlurmProvider", "PBSProProvider", "KubernetesProvider", "LocalProvider":
	case "":
		return cfg, fmt.Errorf("%w: provider type required", ErrBadConfig)
	default:
		return cfg, fmt.Errorf("%w: unknown provider type %q", ErrBadConfig, cfg.Provider.Type)
	}
	if cfg.Engine.NodesPerBlock < 0 || cfg.Engine.WorkersPerNode < 0 || cfg.Engine.MaxBlocks < 0 {
		return cfg, fmt.Errorf("%w: negative engine sizing", ErrBadConfig)
	}
	if cfg.Provider.Walltime != "" {
		if _, err := ParseWalltime(cfg.Provider.Walltime); err != nil {
			return cfg, err
		}
	}
	return cfg, nil
}

// ParseWalltime parses the scheduler's HH:MM:SS walltime notation.
func ParseWalltime(s string) (time.Duration, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, fmt.Errorf("%w: walltime %q not HH:MM:SS", ErrBadConfig, s)
	}
	var vals [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("%w: walltime %q not HH:MM:SS", ErrBadConfig, s)
		}
		vals[i] = v
	}
	if vals[1] > 59 || vals[2] > 59 {
		return 0, fmt.Errorf("%w: walltime %q has out-of-range minutes/seconds", ErrBadConfig, s)
	}
	return time.Duration(vals[0])*time.Hour +
		time.Duration(vals[1])*time.Minute +
		time.Duration(vals[2])*time.Second, nil
}
