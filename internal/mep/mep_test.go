package mep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/idmap"
	"globuscompute/internal/protocol"
	"globuscompute/internal/template"
	"globuscompute/internal/webservice"
)

// fakeEndpoint records spawn/stop and reports idleness.
type fakeEndpoint struct {
	mu       sync.Mutex
	stopped  bool
	busy     bool
	activity time.Time
}

func (f *fakeEndpoint) Stop() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stopped = true
}

func (f *fakeEndpoint) LastActivity() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.activity
}

func (f *fakeEndpoint) Busy() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.busy
}

func (f *fakeEndpoint) isStopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stopped
}

type spawnRecorder struct {
	mu       sync.Mutex
	requests []SpawnRequest
	eps      []*fakeEndpoint
	fail     error
}

func (s *spawnRecorder) spawn(_ context.Context, req SpawnRequest) (UserEndpoint, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.fail != nil {
		return nil, s.fail
	}
	s.requests = append(s.requests, req)
	ep := &fakeEndpoint{activity: time.Now()}
	s.eps = append(s.eps, ep)
	return ep, nil
}

func (s *spawnRecorder) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.requests)
}

const testTemplate = `{"engine": {"type": "GlobusComputeEngine", "nodes_per_block": {{ NODES }}},
"provider": {"type": "SlurmProvider", "account": "{{ ACCOUNT }}", "walltime": "{{ WALLTIME|default("00:10:00") }}"}}`

func testSchema() template.Schema {
	min, max := 1.0, 8.0
	return template.Schema{Properties: map[string]template.Property{
		"NODES":    {Type: template.TypeInteger, Required: true, Minimum: &min, Maximum: &max},
		"ACCOUNT":  {Type: template.TypeString, Required: true, Pattern: `[a-z0-9]+`},
		"WALLTIME": {Type: template.TypeString, Pattern: `\d{2}:\d{2}:\d{2}`},
	}}
}

type mepHarness struct {
	brk *broker.Broker
	mgr *Manager
	rec *spawnRecorder
	id  protocol.UUID
}

func newMEPHarness(t *testing.T, mutate func(*Config)) *mepHarness {
	t.Helper()
	brk := broker.New()
	id := protocol.NewUUID()
	if err := brk.Declare(webservice.CommandQueue(id)); err != nil {
		t.Fatal(err)
	}
	mapper, err := idmap.NewExpressionMapper([]idmap.Rule{{
		Match: `(.*)@uchicago\.edu`, Output: "{0}",
	}})
	if err != nil {
		t.Fatal(err)
	}
	rec := &spawnRecorder{}
	cfg := Config{
		EndpointID: id,
		Conn:       broker.LocalConn(brk),
		Mapper:     mapper,
		Template:   testTemplate,
		Schema:     testSchema(),
		Spawn:      rec.spawn,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	mgr, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := mgr.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		mgr.Stop()
		brk.Close()
	})
	return &mepHarness{brk: brk, mgr: mgr, rec: rec, id: id}
}

// sendStart publishes a start command and returns the child ID.
func (h *mepHarness) sendStart(t *testing.T, username string, userConfig string) protocol.UUID {
	t.Helper()
	child := protocol.NewUUID()
	cmd := webservice.StartEndpointCommand{
		ChildEndpointID: child,
		UserIdentity:    auth.Identity{Username: username, Provider: "test"},
		UserConfig:      json.RawMessage(userConfig),
		ConfigHash:      "h-" + string(child[:8]),
	}
	body, err := json.Marshal(cmd)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.brk.Publish(webservice.CommandQueue(h.id), body); err != nil {
		t.Fatal(err)
	}
	return child
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestSpawnPipeline(t *testing.T) {
	h := newMEPHarness(t, nil)
	child := h.sendStart(t, "alice@uchicago.edu", `{"NODES": 4, "ACCOUNT": "alloc1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "spawn never happened")
	req := h.rec.requests[0]
	if req.LocalUser != "alice" {
		t.Errorf("local user = %q", req.LocalUser)
	}
	if req.ChildEndpointID != child {
		t.Errorf("child ID mismatch")
	}
	// Rendered config is valid and carries the user's values + defaults.
	cfg, err := ParseEndpointConfig(req.RenderedConfig)
	if err != nil {
		t.Fatalf("rendered config invalid: %v\n%s", err, req.RenderedConfig)
	}
	if cfg.Engine.NodesPerBlock != 4 || cfg.Provider.Account != "alloc1" {
		t.Errorf("cfg = %+v", cfg)
	}
	if cfg.Provider.Walltime != "00:10:00" {
		t.Errorf("default walltime = %q", cfg.Provider.Walltime)
	}
	stats := h.mgr.Stats()
	if stats.ActiveChildren != 1 || stats.ChildrenSpawned != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.ByLocalUser["alice"] != 1 {
		t.Errorf("by-user = %v", stats.ByLocalUser)
	}
}

func TestUnmappedIdentityRejected(t *testing.T) {
	h := newMEPHarness(t, nil)
	h.sendStart(t, "intruder@evil.example", `{"NODES": 1, "ACCOUNT": "x1"}`)
	waitFor(t, func() bool { return h.mgr.Stats().IdentityRejected == 1 }, "rejection not recorded")
	if h.rec.count() != 0 {
		t.Error("unauthorized identity spawned an endpoint")
	}
}

func TestSchemaViolationsRejected(t *testing.T) {
	h := newMEPHarness(t, nil)
	cases := []string{
		`{"ACCOUNT": "a1"}`,                       // missing required NODES
		`{"NODES": 99, "ACCOUNT": "a1"}`,          // above maximum
		`{"NODES": 2, "ACCOUNT": "BAD CAPS"}`,     // pattern violation
		`{"NODES": 2, "ACCOUNT": "a1", "X": "y"}`, // unknown property
		`{"NODES": 2, "ACCOUNT": "a1", "WALLTIME": "forever"}`,
	}
	for _, c := range cases {
		h.sendStart(t, "alice@uchicago.edu", c)
	}
	waitFor(t, func() bool { return h.mgr.Stats().ConfigRejected == int64(len(cases)) },
		"rejections not recorded")
	if h.rec.count() != 0 {
		t.Errorf("%d invalid configs spawned endpoints", h.rec.count())
	}
}

func TestMalformedCommandIgnored(t *testing.T) {
	h := newMEPHarness(t, nil)
	h.brk.Publish(webservice.CommandQueue(h.id), []byte("garbage"))
	// A valid command afterwards still works.
	h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "valid command after poison never processed")
}

func TestDuplicateChildIgnored(t *testing.T) {
	h := newMEPHarness(t, nil)
	child := h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "first spawn")
	// Redeliver the same child ID.
	cmd := webservice.StartEndpointCommand{
		ChildEndpointID: child,
		UserIdentity:    auth.Identity{Username: "alice@uchicago.edu"},
		UserConfig:      json.RawMessage(`{"NODES": 1, "ACCOUNT": "a1"}`),
	}
	body, _ := json.Marshal(cmd)
	h.brk.Publish(webservice.CommandQueue(h.id), body)
	time.Sleep(50 * time.Millisecond)
	if h.rec.count() != 1 {
		t.Errorf("duplicate start spawned again: %d", h.rec.count())
	}
}

func TestSpawnFailureCounted(t *testing.T) {
	h := newMEPHarness(t, func(c *Config) {})
	h.rec.fail = errors.New("fork failed")
	h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool {
		return h.mgr.Metrics.Counter("start_failures").Value() == 1
	}, "failure not counted")
	if h.mgr.Stats().ActiveChildren != 0 {
		t.Error("failed spawn left a child record")
	}
}

func TestPerUserEndpointQuota(t *testing.T) {
	h := newMEPHarness(t, func(c *Config) { c.MaxEndpointsPerUser = 2 })
	// Three distinct configs for the same identity: the third exceeds the
	// quota.
	for i := 0; i < 3; i++ {
		h.sendStart(t, "alice@uchicago.edu", fmt.Sprintf(`{"NODES": %d, "ACCOUNT": "a1"}`, i+1))
	}
	waitFor(t, func() bool { return h.mgr.Stats().QuotaRejected == 1 }, "quota rejection not recorded")
	if got := h.rec.count(); got != 2 {
		t.Errorf("spawned = %d, want 2 (quota)", got)
	}
	// A different user is unaffected.
	h.sendStart(t, "bob@uchicago.edu", `{"NODES": 1, "ACCOUNT": "b1"}`)
	waitFor(t, func() bool { return h.rec.count() == 3 }, "other user blocked by quota")
	// Reaping/stopping frees quota: stop one of alice's endpoints.
	h.rec.mu.Lock()
	ep := h.rec.eps[0]
	h.rec.mu.Unlock()
	ep.Stop()
	// The manager still tracks it until reaped; simulate by removing via
	// Stop of the whole manager in cleanup — quota freeing via reap is
	// covered in TestIdleReaping + this accounting check.
	if h.mgr.Stats().ByLocalUser["alice"] != 2 {
		t.Errorf("alice's active children = %d", h.mgr.Stats().ByLocalUser["alice"])
	}
}

func TestIdleReaping(t *testing.T) {
	h := newMEPHarness(t, func(c *Config) { c.IdleTimeout = 50 * time.Millisecond })
	h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "spawn")
	ep := h.rec.eps[0]
	waitFor(t, func() bool { return ep.isStopped() }, "idle child never reaped")
	if h.mgr.Stats().ChildrenReaped != 1 {
		t.Errorf("stats = %+v", h.mgr.Stats())
	}
}

func TestBusyChildNotReaped(t *testing.T) {
	h := newMEPHarness(t, func(c *Config) { c.IdleTimeout = 40 * time.Millisecond })
	h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "spawn")
	ep := h.rec.eps[0]
	ep.mu.Lock()
	ep.busy = true
	ep.activity = time.Now().Add(-time.Hour)
	ep.mu.Unlock()
	time.Sleep(150 * time.Millisecond)
	if ep.isStopped() {
		t.Error("busy child was reaped")
	}
}

func TestStopTerminatesChildren(t *testing.T) {
	h := newMEPHarness(t, nil)
	h.sendStart(t, "alice@uchicago.edu", `{"NODES": 1, "ACCOUNT": "a1"}`)
	waitFor(t, func() bool { return h.rec.count() == 1 }, "spawn")
	h.mgr.Stop()
	if !h.rec.eps[0].isStopped() {
		t.Error("child survived manager stop")
	}
}

func TestConfigValidationAtConstruction(t *testing.T) {
	brk := broker.New()
	defer brk.Close()
	mapper := idmap.Static{}
	good := Config{
		EndpointID: protocol.NewUUID(), Conn: broker.LocalConn(brk),
		Mapper: mapper, Template: "{}", Spawn: func(context.Context, SpawnRequest) (UserEndpoint, error) { return nil, nil },
	}
	cases := []func(Config) Config{
		func(c Config) Config { c.EndpointID = "bad"; return c },
		func(c Config) Config { c.Conn = nil; return c },
		func(c Config) Config { c.Mapper = nil; return c },
		func(c Config) Config { c.Spawn = nil; return c },
		func(c Config) Config { c.Template = ""; return c },
	}
	for i, mutate := range cases {
		if _, err := New(mutate(good)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(good); err != nil {
		t.Errorf("good config rejected: %v", err)
	}
}

func TestParseEndpointConfig(t *testing.T) {
	good := `{"engine": {"type": "GlobusComputeEngine", "nodes_per_block": 2},
	          "provider": {"type": "SlurmProvider", "walltime": "01:30:00"}}`
	cfg, err := ParseEndpointConfig(good)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Engine.NodesPerBlock != 2 {
		t.Errorf("cfg = %+v", cfg)
	}
	bad := []string{
		`{not json`,
		`{"engine": {"type": "WarpEngine"}, "provider": {"type": "SlurmProvider"}}`,
		`{"engine": {"type": "GlobusComputeEngine"}, "provider": {"type": "CloudProvider"}}`,
		`{"engine": {"type": "GlobusComputeEngine"}}`,
		`{"provider": {"type": "SlurmProvider"}}`,
		`{"engine": {"type": "GlobusComputeEngine", "nodes_per_block": -1}, "provider": {"type": "LocalProvider"}}`,
		`{"engine": {"type": "GlobusComputeEngine"}, "provider": {"type": "SlurmProvider", "walltime": "bad"}}`,
		`{"engine": {"type": "GlobusComputeEngine"}, "provider": {"type": "SlurmProvider"}, "extra": 1}`,
	}
	for _, s := range bad {
		if _, err := ParseEndpointConfig(s); !errors.Is(err, ErrBadConfig) {
			t.Errorf("ParseEndpointConfig(%.40q) = %v, want ErrBadConfig", s, err)
		}
	}
}

func TestParseWalltime(t *testing.T) {
	cases := map[string]time.Duration{
		"00:30:00": 30 * time.Minute,
		"01:00:00": time.Hour,
		"00:00:59": 59 * time.Second,
		"48:00:00": 48 * time.Hour,
	}
	for s, want := range cases {
		got, err := ParseWalltime(s)
		if err != nil || got != want {
			t.Errorf("ParseWalltime(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "30:00", "aa:bb:cc", "00:61:00", "00:00:99", "-1:00:00"} {
		if _, err := ParseWalltime(s); err == nil {
			t.Errorf("ParseWalltime(%q) succeeded", s)
		}
	}
}
