// Package mep implements the multi-user endpoint (paper §IV): a process
// manager installed by administrators that, on request from the web
// service, maps the requesting Globus identity to a local account, validates
// the user's configuration against the administrator's schema, renders the
// administrator's configuration template, and spawns a user endpoint under
// the mapped account. The MEP itself never executes tasks.
package mep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/idmap"
	"globuscompute/internal/metrics"
	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/template"
	"globuscompute/internal/webservice"
)

// Common errors.
var (
	ErrNotAuthorized = errors.New("mep: identity not authorized (no mapping)")
	ErrBadConfig     = errors.New("mep: user configuration rejected")
	ErrQuotaExceeded = errors.New("mep: per-user endpoint quota exceeded")
)

// SpawnRequest carries everything a spawner needs to start a user endpoint
// as the mapped local user.
type SpawnRequest struct {
	ChildEndpointID protocol.UUID
	// LocalUser is the mapped local account the endpoint runs as (the
	// fork/setuid/exec step of the real MEP).
	LocalUser string
	Identity  auth.Identity
	// RenderedConfig is the administrator template rendered with the
	// user's values.
	RenderedConfig string
	// UserConfig is the raw user-supplied configuration.
	UserConfig map[string]any
	ConfigHash string
}

// UserEndpoint is a spawned child endpoint process.
type UserEndpoint interface {
	// Stop terminates the endpoint.
	Stop()
	// LastActivity supports idle reaping.
	LastActivity() time.Time
	// Busy reports in-flight work (idle reaping defers to it).
	Busy() bool
}

// SpawnFunc starts a user endpoint for a request.
type SpawnFunc func(ctx context.Context, req SpawnRequest) (UserEndpoint, error)

// Config assembles a multi-user endpoint manager.
type Config struct {
	EndpointID protocol.UUID
	Conn       broker.Conn
	// Mapper translates Globus identities to local accounts; identities
	// with no mapping are rejected (access control).
	Mapper idmap.Mapper
	// Template is the administrator's endpoint configuration template
	// (mini-Jinja over JSON; paper Listing 9 uses Jinja over YAML).
	Template string
	// Schema validates user-supplied template values before rendering.
	Schema template.Schema
	// Spawn starts child endpoints.
	Spawn SpawnFunc
	// IdleTimeout reaps user endpoints with no activity (0 = never),
	// implementing "once the submitted tasks are completed, the user
	// endpoint is destroyed".
	IdleTimeout time.Duration
	// MaxEndpointsPerUser caps concurrently running user endpoints per
	// mapped local account (0 = unlimited) — the administrator's resource
	// utilization control (§IV-C).
	MaxEndpointsPerUser int
	// Heartbeat mirrors the single-user agent's status callback.
	Heartbeat func(online bool)
}

// child tracks one spawned user endpoint.
type child struct {
	id        protocol.UUID
	localUser string
	hash      string
	ep        UserEndpoint
	started   time.Time
}

// Manager is a running multi-user endpoint.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	children map[protocol.UUID]*child
	started  bool
	stopped  bool

	sub  broker.Subscription
	done chan struct{}
	wg   sync.WaitGroup

	Metrics *metrics.Registry
}

// New validates cfg and builds a manager.
func New(cfg Config) (*Manager, error) {
	if !cfg.EndpointID.Valid() {
		return nil, fmt.Errorf("mep: invalid endpoint ID %q", cfg.EndpointID)
	}
	if cfg.Conn == nil {
		return nil, errors.New("mep: broker connection required")
	}
	if cfg.Mapper == nil {
		return nil, errors.New("mep: identity mapper required")
	}
	if cfg.Spawn == nil {
		return nil, errors.New("mep: spawn function required")
	}
	if cfg.Template == "" {
		return nil, errors.New("mep: configuration template required")
	}
	return &Manager{
		cfg:      cfg,
		children: make(map[protocol.UUID]*child),
		done:     make(chan struct{}),
		Metrics:  metrics.NewRegistry(),
	}, nil
}

// Start begins consuming start-endpoint commands.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started {
		m.mu.Unlock()
		return errors.New("mep: already started")
	}
	m.started = true
	m.mu.Unlock()
	sub, err := m.cfg.Conn.Subscribe(webservice.CommandQueue(m.cfg.EndpointID), 16)
	if err != nil {
		return fmt.Errorf("mep: consume command queue: %w", err)
	}
	m.sub = sub
	m.wg.Add(1)
	go m.commandLoop()
	if m.cfg.IdleTimeout > 0 {
		m.wg.Add(1)
		go m.reaperLoop()
	}
	if m.cfg.Heartbeat != nil {
		m.cfg.Heartbeat(true)
	}
	return nil
}

func (m *Manager) commandLoop() {
	defer m.wg.Done()
	mlog := obs.Component("mep").WithEndpoint(string(m.cfg.EndpointID))
	for msg := range m.sub.Messages() {
		var cmd webservice.StartEndpointCommand
		if err := json.Unmarshal(msg.Body, &cmd); err != nil {
			mlog.Warn("malformed command", "error", err)
			_ = m.sub.Ack(msg.Tag)
			continue
		}
		if err := m.handleStart(cmd); err != nil {
			mlog.Error("start endpoint",
				"child_endpoint", string(cmd.ChildEndpointID),
				"user", cmd.UserIdentity.Username, "error", err)
			m.Metrics.Counter("start_failures").Inc()
		}
		_ = m.sub.Ack(msg.Tag)
	}
}

// handleStart performs the identity-map -> validate -> render -> spawn
// pipeline for one start command.
func (m *Manager) handleStart(cmd webservice.StartEndpointCommand) error {
	m.mu.Lock()
	if _, exists := m.children[cmd.ChildEndpointID]; exists {
		m.mu.Unlock()
		return nil // duplicate command; endpoint already running
	}
	m.mu.Unlock()

	localUser, err := m.cfg.Mapper.Map(cmd.UserIdentity)
	if err != nil {
		if errors.Is(err, idmap.ErrNoMapping) {
			m.Metrics.Counter("identity_rejected").Inc()
			return fmt.Errorf("%w: %s", ErrNotAuthorized, cmd.UserIdentity.Username)
		}
		return err
	}
	if m.cfg.MaxEndpointsPerUser > 0 {
		m.mu.Lock()
		running := 0
		for _, c := range m.children {
			if c.localUser == localUser {
				running++
			}
		}
		m.mu.Unlock()
		if running >= m.cfg.MaxEndpointsPerUser {
			m.Metrics.Counter("quota_rejected").Inc()
			return fmt.Errorf("%w: user %q already runs %d endpoints (limit %d)",
				ErrQuotaExceeded, localUser, running, m.cfg.MaxEndpointsPerUser)
		}
	}

	var userConfig map[string]any
	if err := json.Unmarshal(cmd.UserConfig, &userConfig); err != nil {
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	if err := m.cfg.Schema.Validate(userConfig); err != nil {
		m.Metrics.Counter("config_rejected").Inc()
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}
	rendered, err := template.Render(m.cfg.Template, userConfig)
	if err != nil {
		m.Metrics.Counter("config_rejected").Inc()
		return fmt.Errorf("%w: %v", ErrBadConfig, err)
	}

	req := SpawnRequest{
		ChildEndpointID: cmd.ChildEndpointID,
		LocalUser:       localUser,
		Identity:        cmd.UserIdentity,
		RenderedConfig:  rendered,
		UserConfig:      userConfig,
		ConfigHash:      cmd.ConfigHash,
	}
	ep, err := m.cfg.Spawn(context.Background(), req)
	if err != nil {
		return fmt.Errorf("mep: spawn: %w", err)
	}
	m.mu.Lock()
	m.children[cmd.ChildEndpointID] = &child{
		id: cmd.ChildEndpointID, localUser: localUser,
		hash: cmd.ConfigHash, ep: ep, started: time.Now(),
	}
	m.mu.Unlock()
	m.Metrics.Counter("children_spawned").Inc()
	return nil
}

// reaperLoop destroys idle user endpoints.
func (m *Manager) reaperLoop() {
	defer m.wg.Done()
	ticker := time.NewTicker(m.cfg.IdleTimeout / 2)
	defer ticker.Stop()
	for {
		select {
		case <-m.done:
			return
		case <-ticker.C:
		}
		cutoff := time.Now().Add(-m.cfg.IdleTimeout)
		var reap []*child
		m.mu.Lock()
		for id, c := range m.children {
			if !c.ep.Busy() && c.ep.LastActivity().Before(cutoff) {
				reap = append(reap, c)
				delete(m.children, id)
			}
		}
		m.mu.Unlock()
		for _, c := range reap {
			c.ep.Stop()
			m.Metrics.Counter("children_reaped").Inc()
		}
	}
}

// Stats is a snapshot of the manager.
type Stats struct {
	ActiveChildren   int
	ChildrenSpawned  int64
	ChildrenReaped   int64
	IdentityRejected int64
	ConfigRejected   int64
	QuotaRejected    int64
	// ByLocalUser counts active children per mapped account.
	ByLocalUser map[string]int
}

// Stats reports manager state.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{
		ActiveChildren:   len(m.children),
		ChildrenSpawned:  m.Metrics.Counter("children_spawned").Value(),
		ChildrenReaped:   m.Metrics.Counter("children_reaped").Value(),
		IdentityRejected: m.Metrics.Counter("identity_rejected").Value(),
		ConfigRejected:   m.Metrics.Counter("config_rejected").Value(),
		QuotaRejected:    m.Metrics.Counter("quota_rejected").Value(),
		ByLocalUser:      make(map[string]int),
	}
	for _, c := range m.children {
		s.ByLocalUser[c.localUser]++
	}
	return s
}

// Children lists active child endpoint IDs.
func (m *Manager) Children() []protocol.UUID {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]protocol.UUID, 0, len(m.children))
	for id := range m.children {
		out = append(out, id)
	}
	return out
}

// Stop terminates the manager and all user endpoints.
func (m *Manager) Stop() {
	m.mu.Lock()
	if !m.started || m.stopped {
		m.mu.Unlock()
		return
	}
	m.stopped = true
	children := make([]*child, 0, len(m.children))
	for _, c := range m.children {
		children = append(children, c)
	}
	m.children = make(map[protocol.UUID]*child)
	m.mu.Unlock()

	close(m.done)
	if m.sub != nil {
		_ = m.sub.Cancel()
	}
	for _, c := range children {
		c.ep.Stop()
	}
	m.wg.Wait()
	if m.cfg.Heartbeat != nil {
		m.cfg.Heartbeat(false)
	}
}
