package mep

import (
	"context"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/endpoint"
	"globuscompute/internal/engine"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/registry"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/shellfn"
)

// SpawnerDeps carries the resources an agent spawner binds user endpoints
// to: the batch cluster, the broker, the object store, and the worker
// callable registry.
type SpawnerDeps struct {
	// Scheduler backs Slurm/PBS provider configs (required for those).
	Scheduler *scheduler.Scheduler
	// Conn connects spawned agents to the broker.
	Conn broker.Conn
	// Objects resolves payload references (optional).
	Objects endpoint.ObjectFetcher
	// Registry seeds the spawned agents' callable registries (default
	// Builtins).
	Registry *registry.Registry
	// SandboxRoot hosts ShellFunction sandboxes.
	SandboxRoot string
	// Heartbeat reports child endpoint status upstream (optional).
	Heartbeat func(child protocol.UUID, online bool)
}

// NewAgentSpawner returns a SpawnFunc that builds real endpoint agents from
// rendered configurations: provider and engine types, block sizing, and
// walltime come from the admin template; the mapped local user is recorded
// in the task environment (the real MEP forks and drops privileges).
func NewAgentSpawner(deps SpawnerDeps) SpawnFunc {
	if deps.Registry == nil {
		deps.Registry = registry.Builtins()
	}
	return func(_ context.Context, req SpawnRequest) (UserEndpoint, error) {
		cfg, err := ParseEndpointConfig(req.RenderedConfig)
		if err != nil {
			return nil, err
		}
		nodesPerBlock := cfg.Engine.NodesPerBlock
		if nodesPerBlock <= 0 {
			nodesPerBlock = 1
		}
		workersPerNode := cfg.Engine.WorkersPerNode
		if workersPerNode <= 0 {
			workersPerNode = 1
		}
		maxBlocks := cfg.Engine.MaxBlocks
		if maxBlocks <= 0 {
			maxBlocks = 2
		}
		var walltime time.Duration
		if cfg.Provider.Walltime != "" {
			walltime, err = ParseWalltime(cfg.Provider.Walltime)
			if err != nil {
				return nil, err
			}
		}

		var prov provider.Provider
		switch cfg.Provider.Type {
		case "SlurmProvider", "PBSProProvider":
			prov, err = provider.NewBatch(provider.BatchConfig{
				Scheduler: deps.Scheduler, Partition: cfg.Provider.Partition,
				NodesPerBlock: nodesPerBlock, Walltime: walltime,
				Account: cfg.Provider.Account, LabelName: cfg.Provider.Type,
			})
			if err != nil {
				return nil, err
			}
		case "KubernetesProvider":
			prov = provider.NewKubernetes(10*time.Millisecond, req.LocalUser)
		default:
			prov = provider.NewLocal(nodesPerBlock)
		}

		runner := endpoint.NewRunner(deps.Registry, shellfn.Options{
			SandboxRoot: deps.SandboxRoot,
			Env:         map[string]string{"USER": req.LocalUser, "GC_LOCAL_USER": req.LocalUser},
		}, deps.Objects)

		agentCfg := endpoint.Config{
			EndpointID:        req.ChildEndpointID,
			Conn:              deps.Conn,
			Objects:           deps.Objects,
			HeartbeatInterval: time.Second,
		}
		if deps.Heartbeat != nil {
			child := req.ChildEndpointID
			agentCfg.Heartbeat = func(online bool) { deps.Heartbeat(child, online) }
		}
		if cfg.Engine.Type == "GlobusMPIEngine" {
			mpiProv, err := provider.NewBatch(provider.BatchConfig{
				Scheduler: deps.Scheduler, Partition: cfg.Provider.Partition,
				NodesPerBlock: nodesPerBlock, Walltime: walltime,
			})
			if err != nil {
				return nil, err
			}
			mpiEng, err := mpiengine.New(mpiengine.Config{
				Provider: mpiProv, Launcher: cfg.Engine.MPILauncher,
			})
			if err != nil {
				return nil, err
			}
			agentCfg.MPI = mpiEng
		}
		eng, err := engine.New(engine.Config{
			Provider: prov, Run: runner,
			WorkersPerNode: workersPerNode,
			InitBlocks:     1, MinBlocks: 1, MaxBlocks: maxBlocks,
			ScalingInterval: 20 * time.Millisecond,
		})
		if err != nil {
			return nil, err
		}
		agentCfg.Engine = eng
		agent, err := endpoint.New(agentCfg)
		if err != nil {
			return nil, err
		}
		if err := agent.Start(); err != nil {
			return nil, err
		}
		return agent, nil
	}
}
