package mep

import (
	"encoding/json"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

func TestSimAgentServesTasksAndReportsLoad(t *testing.T) {
	brk := broker.New()
	defer brk.Close()
	ep := protocol.NewUUID()
	for _, q := range []string{webservice.TaskQueue(ep), webservice.ResultQueue(ep)} {
		if err := brk.Declare(q); err != nil {
			t.Fatal(err)
		}
	}
	a, err := StartSimAgent(SimAgentConfig{
		EndpointID: ep, Conn: broker.LocalConn(brk), ServiceTime: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Stop()

	results, err := brk.Consume(webservice.ResultQueue(ep), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer results.Close()

	const n = 4
	for i := 0; i < n; i++ {
		task := protocol.Task{ID: protocol.NewUUID(), EndpointID: ep}
		body, _ := json.Marshal(task)
		if err := brk.Publish(webservice.TaskQueue(ep), body); err != nil {
			t.Fatal(err)
		}
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		select {
		case m := <-results.Messages():
			var res protocol.Result
			if err := json.Unmarshal(m.Body, &res); err != nil {
				t.Fatal(err)
			}
			if res.State != protocol.StateSuccess || res.EndpointID != ep {
				t.Fatalf("result = %+v", res)
			}
			results.Ack(m.Tag)
		case <-time.After(5 * time.Second):
			t.Fatalf("result %d never arrived", i)
		}
	}
	// Serial service: n tasks through one simulated worker take >= n * 5ms.
	if elapsed := time.Since(start); elapsed < (n-1)*5*time.Millisecond {
		t.Fatalf("n tasks served in %v — service time not modeled serially", elapsed)
	}
	load := a.Load()
	if load.TasksReceived != n || load.ResultsPublished != n || load.TotalWorkers != 1 {
		t.Fatalf("load = %+v", load)
	}
	if load.EgressBacklog == nil || *load.EgressBacklog != 0 {
		t.Fatalf("egress backlog = %v", load.EgressBacklog)
	}
	if load.PendingTasks != 0 || load.FreeWorkers != 1 {
		t.Fatalf("idle agent load = %+v", load)
	}
}

func TestSimSpawnerThroughMEPPipeline(t *testing.T) {
	spawned := make(chan *SimAgent, 1)
	h := newMEPHarness(t, func(c *Config) {
		c.Spawn = NewSimSpawner(SimSpawnerDeps{
			Conn:        c.Conn,
			ServiceTime: func(SpawnRequest) time.Duration { return time.Millisecond },
			OnSpawn: func(_ protocol.UUID, a *SimAgent) {
				spawned <- a
			},
		})
	})
	child := h.sendStart(t, "alice@uchicago.edu", `{"NODES": 2, "ACCOUNT": "alloc1"}`)

	select {
	case <-spawned:
	case <-time.After(5 * time.Second):
		t.Fatal("sim agent never spawned")
	}
	if got := h.mgr.Stats().ActiveChildren; got != 1 {
		t.Fatalf("active children = %d", got)
	}

	// The spawned sim agent serves the child's task queue end to end.
	if err := h.brk.Declare(webservice.ResultQueue(child)); err != nil {
		t.Fatal(err)
	}
	results, err := h.brk.Consume(webservice.ResultQueue(child), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer results.Close()
	task := protocol.Task{ID: protocol.NewUUID(), EndpointID: child}
	body, _ := json.Marshal(task)
	if err := h.brk.Publish(webservice.TaskQueue(child), body); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-results.Messages():
		var res protocol.Result
		if err := json.Unmarshal(m.Body, &res); err != nil {
			t.Fatal(err)
		}
		if res.TaskID != task.ID {
			t.Fatalf("result for %s, want %s", res.TaskID, task.ID)
		}
		results.Ack(m.Tag)
	case <-time.After(5 * time.Second):
		t.Fatal("sim agent never served the task")
	}
}
