package mep

import (
	"context"
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

// Simulated user endpoints: a SimAgent consumes its task queue like a real
// agent, holds each task for a configurable service time, and publishes a
// success result — one goroutine per endpoint, so an in-process fleet scales
// to 10k endpoints (and stays inside the race detector's goroutine budget at
// 1k). The fleet harness in internal/experiments uses them to measure
// placement policies against skewed per-endpoint service times; NewSimSpawner
// adapts them to the MEP spawn pipeline so a multi-user endpoint manager can
// run an entire simulated fleet through the real start-command flow.

// SimAgentConfig configures one simulated endpoint agent.
type SimAgentConfig struct {
	EndpointID protocol.UUID
	Conn       broker.Conn
	// ServiceTime is how long the agent holds each task before publishing
	// its result — the skew knob (0 = instant echo).
	ServiceTime time.Duration
	// Prefetch bounds in-flight deliveries (default 64). Keep it above the
	// expected queue depth: placement reads queued intake from heartbeats,
	// and tasks parked in the broker because prefetch is exhausted are load
	// the report would miss.
	Prefetch int
}

// SimAgent is a lightweight simulated endpoint. It implements the mep
// UserEndpoint interface.
type SimAgent struct {
	cfg SimAgentConfig
	sub broker.Subscription

	queued    atomic.Int64 // received, result not yet published
	received  atomic.Int64
	published atomic.Int64
	lastAct   atomic.Int64 // unix nanos

	stopOnce sync.Once
	stopped  chan struct{}
	wg       sync.WaitGroup
}

// StartSimAgent subscribes to the endpoint's task queue and starts the
// single service goroutine.
func StartSimAgent(cfg SimAgentConfig) (*SimAgent, error) {
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 64
	}
	// Declare idempotently: the webservice declares these on registration,
	// but a harness-spawned agent may come up first.
	for _, q := range []string{webservice.TaskQueue(cfg.EndpointID), webservice.ResultQueue(cfg.EndpointID)} {
		if err := cfg.Conn.Declare(q); err != nil {
			return nil, err
		}
	}
	sub, err := cfg.Conn.Subscribe(webservice.TaskQueue(cfg.EndpointID), cfg.Prefetch)
	if err != nil {
		return nil, err
	}
	a := &SimAgent{cfg: cfg, sub: sub, stopped: make(chan struct{})}
	a.lastAct.Store(time.Now().UnixNano())
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// loop serves deliveries one at a time: a SimAgent models a one-worker
// endpoint whose capacity is 1/ServiceTime tasks per second. Deliveries are
// drained into a local FIFO as they arrive — while one task is in service —
// so the queued counter (and the heartbeat load report built from it) sees
// the real backlog depth, not just the task on the worker. Placement scores
// backlog; an agent that left queued work invisible in the subscription's
// channel buffer would make a drowning slow endpoint indistinguishable from
// a briefly-busy fast one.
func (a *SimAgent) loop() {
	defer a.wg.Done()
	resultQueue := webservice.ResultQueue(a.cfg.EndpointID)
	type job struct {
		id      protocol.UUID
		tag     uint64
		started time.Time
	}
	var backlog []job
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	serving, closed := false, false
	startNext := func() {
		backlog[0].started = time.Now()
		serving = true
		timer.Reset(a.cfg.ServiceTime)
	}
	for {
		var msgs <-chan broker.Message
		if !closed {
			msgs = a.sub.Messages()
		}
		select {
		case <-a.stopped:
			return
		case m, ok := <-msgs:
			if !ok {
				closed = true
				if !serving {
					return
				}
				continue
			}
			var task protocol.Task
			if err := json.Unmarshal(m.Body, &task); err != nil {
				_ = a.sub.Ack(m.Tag)
				continue
			}
			a.queued.Add(1)
			a.received.Add(1)
			a.lastAct.Store(time.Now().UnixNano())
			backlog = append(backlog, job{id: task.ID, tag: m.Tag})
			if !serving {
				startNext()
			}
		case <-timer.C:
			done := backlog[0]
			res := protocol.Result{
				TaskID: done.id, State: protocol.StateSuccess,
				Output: []byte("1"), EndpointID: a.cfg.EndpointID,
				Started: done.started, Completed: time.Now(),
			}
			body, _ := json.Marshal(res)
			_ = a.cfg.Conn.Publish(resultQueue, body)
			_ = a.sub.Ack(done.tag)
			backlog = backlog[1:]
			a.queued.Add(-1)
			a.published.Add(1)
			a.lastAct.Store(time.Now().UnixNano())
			serving = false
			if len(backlog) > 0 {
				startNext()
			} else if closed {
				return
			}
		}
	}
}

// Load reports the agent's utilization the way a real agent's heartbeat
// does. One simulated worker: free when nothing is queued.
func (a *SimAgent) Load() statestore.EndpointLoad {
	queued := int(a.queued.Load())
	free := 0
	if queued == 0 {
		free = 1
	}
	backlog := 0 // results publish inline; egress never backs up
	return statestore.EndpointLoad{
		PendingTasks: queued, TotalWorkers: 1, FreeWorkers: free,
		TasksReceived:    a.received.Load(),
		ResultsPublished: a.published.Load(),
		EgressBacklog:    &backlog,
	}
}

// Stop cancels the subscription and waits for the service goroutine.
func (a *SimAgent) Stop() {
	a.stopOnce.Do(func() {
		close(a.stopped)
		_ = a.sub.Cancel()
	})
	a.wg.Wait()
}

// LastActivity supports MEP idle reaping.
func (a *SimAgent) LastActivity() time.Time { return time.Unix(0, a.lastAct.Load()) }

// Busy reports queued work.
func (a *SimAgent) Busy() bool { return a.queued.Load() > 0 }

// SimSpawnerDeps configures a simulated-agent spawner.
type SimSpawnerDeps struct {
	// Conn connects spawned sim agents to the broker.
	Conn broker.Conn
	// ServiceTime picks each spawn's per-task service time; nil reads a
	// "service_time_ms" number from the user config (default 1ms).
	ServiceTime func(req SpawnRequest) time.Duration
	// OnSpawn observes each started agent (fleet harnesses use it to wire
	// heartbeat reporting).
	OnSpawn func(id protocol.UUID, a *SimAgent)
}

// NewSimSpawner returns a SpawnFunc producing SimAgents, so a MEP manager
// (or a fleet harness) runs simulated endpoints through the same spawn
// pipeline that builds real agents.
func NewSimSpawner(deps SimSpawnerDeps) SpawnFunc {
	return func(_ context.Context, req SpawnRequest) (UserEndpoint, error) {
		svc := time.Millisecond
		if deps.ServiceTime != nil {
			svc = deps.ServiceTime(req)
		} else if ms, ok := req.UserConfig["service_time_ms"].(float64); ok && ms >= 0 {
			svc = time.Duration(ms * float64(time.Millisecond))
		}
		a, err := StartSimAgent(SimAgentConfig{
			EndpointID: req.ChildEndpointID, Conn: deps.Conn, ServiceTime: svc,
		})
		if err != nil {
			return nil, err
		}
		if deps.OnSpawn != nil {
			deps.OnSpawn(req.ChildEndpointID, a)
		}
		return a, nil
	}
}
