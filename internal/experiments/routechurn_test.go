package experiments

import (
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/webservice"
)

// TestChaosRoutingChurn kills a routing-group member mid-storm and asserts
// the placement layer reroutes around it: the member's offline report lands
// synchronously, so within one heartbeat interval every new submission
// resolves to a survivor. The dead endpoint is then revived and every task
// ever admitted — including those stranded on the dead member's queue —
// reaches exactly one terminal state (part of `make chaos`).
func TestChaosRoutingChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos test skipped in -short mode")
	}
	const base = 25 * time.Millisecond
	f, err := StartRouteFleet(RouteFleetOptions{
		Endpoints:      24,
		SlowFactor:     1, // uniform fleet: churn is the variable under test
		BaseService:    base,
		HeartbeatEvery: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()

	batch := make([]webservice.SubmitRequest, 10)
	for i := range batch {
		batch[i] = webservice.SubmitRequest{EndpointID: f.Group, FunctionID: f.Fn, Payload: []byte(`{"entrypoint":"identity","args":[1]}`)}
	}
	storm := func(batches int) []protocol.UUID {
		ids := make([]protocol.UUID, 0, batches*len(batch))
		for i := 0; i < batches; i++ {
			got, err := f.Svc.Submit(f.Tok, batch)
			if err != nil {
				t.Fatalf("submit batch %d: %v", i, err)
			}
			ids = append(ids, got...)
			time.Sleep(5 * time.Millisecond)
		}
		return ids
	}

	// Phase 1: storm with the full fleet up.
	before := storm(30)

	// Kill a member mid-storm, then give the router one heartbeat interval
	// (candidate snapshots refresh on a much shorter TTL) before measuring.
	const victim = 3
	deadID := f.Endpoints[victim]
	f.StopEndpoint(victim)
	time.Sleep(f.Opts.HeartbeatEvery)

	// Phase 2: every post-death submission must resolve to a survivor.
	after := storm(30)
	recs := f.Store.GetTaskRecords(after)
	for _, id := range after {
		rec, ok := recs[id]
		if !ok {
			t.Fatalf("task %s has no record", id)
		}
		if rec.Task.EndpointID == deadID {
			t.Fatalf("task %s routed to dead endpoint %s after churn", id, deadID)
		}
	}

	// Revive the victim so tasks stranded on its queue drain, then every
	// admitted task must settle terminal exactly once.
	if err := f.ReviveEndpoint(victim, base); err != nil {
		t.Fatal(err)
	}
	all := append(append([]protocol.UUID(nil), before...), after...)
	deadline := time.Now().Add(60 * time.Second)
	for {
		byState := f.Store.CountTasksByState()
		if byState[protocol.StateSuccess]+byState[protocol.StateFailed] >= len(all) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stranded tasks never drained: %v", byState)
		}
		time.Sleep(10 * time.Millisecond)
	}
	recs = f.Store.GetTaskRecords(all)
	success := 0
	for _, id := range all {
		rec, ok := recs[id]
		if !ok || !rec.State.Terminal() {
			t.Fatalf("task %s not terminal (record: %+v)", id, rec)
		}
		if rec.State == protocol.StateSuccess {
			success++
		}
	}
	if success != len(all) {
		t.Fatalf("successes = %d of %d admitted tasks", success, len(all))
	}
	t.Logf("churn outcome: %d tasks, all terminal success; %d post-death tasks rerouted off %s", len(all), len(after), deadID)
}
