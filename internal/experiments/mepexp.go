package experiments

import (
	"fmt"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
)

// MEPReuse measures the T6 claim: submissions with the same user endpoint
// configuration reuse one user endpoint (amortizing spawn cost), while
// modified configurations spawn fresh ones.
func MEPReuse(submitsPerConfig int) (Report, error) {
	r := Report{
		ID:     "mep-reuse",
		Title:  "User endpoint reuse by configuration hash (§IV-B)",
		Header: "event,config,latency_ms,ueps_spawned",
	}
	e, err := newEnv(8)
	if err != nil {
		return r, err
	}
	defer e.close()
	mepID, mgr, err := e.tb.StartMEP(core.MEPOptions{
		Name: "t6-mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(),
	})
	if err != nil {
		return r, err
	}
	fn := &sdk.PythonFunction{Entrypoint: "identity"}

	submitOnce := func(label string, config map[string]any) error {
		ex, err := e.executor(mepID)
		if err != nil {
			return err
		}
		defer ex.Close()
		ex.UserEndpointConfig = config
		for i := 0; i < submitsPerConfig; i++ {
			start := time.Now()
			fut, err := ex.Submit(fn, i)
			if err != nil {
				return err
			}
			if _, err := fut.ResultWithin(60 * time.Second); err != nil {
				return err
			}
			event := "reused"
			if i == 0 {
				event = "first-submit"
			}
			r.Rows = append(r.Rows, fmt.Sprintf("%s,%s,%.1f,%d",
				event, label, float64(time.Since(start).Microseconds())/1000,
				mgr.Stats().ChildrenSpawned))
		}
		return nil
	}

	confA := map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "allocA"}
	confB := map[string]any{"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "allocA"}
	if err := submitOnce("A", confA); err != nil {
		return r, err
	}
	if err := submitOnce("A-again", confA); err != nil { // same hash -> same UEP
		return r, err
	}
	if err := submitOnce("B", confB); err != nil { // new hash -> new UEP
		return r, err
	}
	stats := mgr.Stats()
	r.Notes = append(r.Notes,
		fmt.Sprintf("2 distinct configs -> %d user endpoints spawned across %d submissions",
			stats.ChildrenSpawned, 3*submitsPerConfig),
		"first submission per config pays the spawn cost; subsequent ones route to the running UEP",
	)
	if stats.ChildrenSpawned != 2 {
		return r, fmt.Errorf("expected 2 spawns, saw %d", stats.ChildrenSpawned)
	}
	return r, nil
}

// Elasticity is the A3 ablation: the engine's block elasticity under a
// burst of tasks — blocks scale out on backlog and scale back in when idle.
func Elasticity(tasks int) (Report, error) {
	r := Report{
		ID:     "elasticity",
		Title:  fmt.Sprintf("Provider elasticity under a %d-task burst", tasks),
		Header: "phase,live_blocks,pending_tasks",
	}
	e, err := newEnv(8)
	if err != nil {
		return r, err
	}
	defer e.close()
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{
		Name: "a3-ep", Owner: "bench", UseBatch: true, Workers: 1, NodesPerBlock: 1,
	})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()

	sf := sdk.NewShellFunction("sleep 0.05")
	futs := make([]*sdk.Future, tasks)
	for i := range futs {
		fut, err := ex.SubmitShell(sf, nil)
		if err != nil {
			return r, err
		}
		futs[i] = fut
	}
	// Sample the fleet while the burst drains.
	done := make(chan error, 1)
	go func() { done <- waitAll(futs, 120*time.Second) }()
	maxBlocks := 0
	samples := 0
	for {
		select {
		case err := <-done:
			if err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, fmt.Sprintf("burst-drained,peak=%d,0", maxBlocks))
			if maxBlocks < 2 {
				return r, fmt.Errorf("engine never scaled out (peak blocks %d)", maxBlocks)
			}
			r.Notes = append(r.Notes,
				fmt.Sprintf("blocks scaled from 1 to %d during the burst", maxBlocks),
				"scale-in follows after the idle timeout (engine MinBlocks floor = 1)")
			return r, nil
		case <-time.After(10 * time.Millisecond):
			free, _ := e.tb.Sched.FreeNodes("default")
			live := 8 - free
			if live > maxBlocks {
				maxBlocks = live
			}
			if samples%20 == 0 {
				r.Rows = append(r.Rows, fmt.Sprintf("draining,%d,-", live))
			}
			samples++
		}
	}
}
