package experiments

import (
	"context"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/scheduler"
)

// Fairshare contrasts plain priority scheduling with fairshare on the
// batch-scheduler substrate: a heavy user saturating the queue against a
// light user submitting occasionally. Fairshare bounds the light user's
// queue wait.
func Fairshare(jobsPerUser int) (Report, error) {
	r := Report{
		ID:     "fairshare",
		Title:  fmt.Sprintf("Batch fairshare ablation (heavy user %d jobs vs light user %d)", 4*jobsPerUser, jobsPerUser),
		Header: "mode,user,mean_wait_ms,p95_wait_ms",
	}
	run := func(enable bool) error {
		sched := scheduler.SimpleCluster(2)
		defer sched.Close()
		if enable {
			sched.EnableFairshare(time.Minute, 5)
		}
		waits := map[string]*metrics.Histogram{
			"heavy": metrics.NewHistogram(0),
			"light": metrics.NewHistogram(0),
		}
		var wg sync.WaitGroup
		submit := func(user string, count int, gap time.Duration) {
			defer wg.Done()
			for i := 0; i < count; i++ {
				submitted := time.Now()
				done := make(chan struct{})
				_, err := sched.Submit(scheduler.JobSpec{
					User: user,
					Script: func(context.Context, scheduler.Allocation) error {
						waits[user].Observe(time.Since(submitted))
						time.Sleep(15 * time.Millisecond)
						close(done)
						return nil
					},
				})
				if err != nil {
					return
				}
				if gap > 0 {
					time.Sleep(gap)
				}
				_ = done
			}
		}
		wg.Add(2)
		go submit("heavy", 4*jobsPerUser, 0)
		go submit("light", jobsPerUser, 25*time.Millisecond)
		wg.Wait()
		// Drain: wait until all jobs finished.
		deadline := time.Now().Add(2 * time.Minute)
		for {
			pendingOrRunning := 0
			for _, j := range sched.Queue() {
				if !j.State.Terminal() {
					pendingOrRunning++
				}
			}
			if pendingOrRunning == 0 {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("fairshare arm stalled with %d live jobs", pendingOrRunning)
			}
			time.Sleep(10 * time.Millisecond)
		}
		mode := "priority-only"
		if enable {
			mode = "fairshare"
		}
		for _, user := range []string{"heavy", "light"} {
			h := waits[user]
			r.Rows = append(r.Rows, fmt.Sprintf("%s,%s,%.1f,%.1f", mode, user,
				float64(h.Mean().Microseconds())/1000,
				float64(h.Percentile(95).Microseconds())/1000))
		}
		return nil
	}
	if err := run(false); err != nil {
		return r, err
	}
	if err := run(true); err != nil {
		return r, err
	}
	r.Notes = append(r.Notes,
		"fairshare charges decayed node-seconds per user; the saturating user's effective priority drops, bounding the light user's wait",
	)
	return r, nil
}
