package experiments

import (
	"strings"
	"testing"
)

func TestLatencyReport(t *testing.T) {
	r, err := Latency(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 6 {
		t.Fatalf("rows = %d: %v", len(r.Rows), r.Rows)
	}
	for _, want := range []string{
		"sdk.submit", "submit", "endpoint.dispatch", "engine.execute",
		"result.process", "sdk.resolve", "unattributed", "total (client-observed)",
	} {
		found := false
		for _, row := range r.Rows {
			if strings.HasPrefix(row, want+",") {
				found = true
			}
		}
		if !found {
			t.Errorf("missing segment %q", want)
		}
	}
}

func TestContainersReport(t *testing.T) {
	r, err := Containers(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(r.Rows[0], "(cold)") || !strings.Contains(r.Rows[1], "(warm)") {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestFleetReport(t *testing.T) {
	r, err := Fleet(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, policy := range []string{"round-robin", "fastest", "greenest"} {
		found := false
		for _, row := range r.Rows {
			if strings.HasPrefix(row, policy+",") {
				found = true
			}
		}
		if !found {
			t.Errorf("missing policy %q", policy)
		}
	}
}

func TestFairshareReport(t *testing.T) {
	r, err := Fairshare(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %d: %v", len(r.Rows), r.Rows)
	}
}

func TestElasticityReport(t *testing.T) {
	r, err := Elasticity(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Error("no rows")
	}
}
