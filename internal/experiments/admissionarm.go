// Admission arms for the saturation experiment: the PR-7 overload-protection
// work puts a per-tenant token-bucket admission controller, in-flight
// accounting, and fairshare charging on the webservice submit path. These
// arms measure that front door with admission on vs off — same store,
// broker, and echo agent — so BENCH_pr7.json records the bookkeeping tax
// (the acceptance bar is <= 5% at saturation).
package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

// admissionArm drives n tasks through the full submit front door —
// SubmitBatch validation, (optionally) admission, broker publish, an echo
// agent, and result processing back to terminal state — and reports
// sustained admitted tasks/s plus p50/p99 per-batch submit-call latency.
func admissionArm(admitted bool, offered, n int) (SaturationPoint, error) {
	runtime.GC()
	store, brk := statestore.New(), broker.New()
	objects, authSvc := objectstore.New(), auth.NewService()
	cfg := webservice.Config{Store: store, Broker: brk, Objects: objects, Auth: authSvc}
	mode := "admit-off"
	if admitted {
		mode = "admit-on"
		// Generous limits: the arm measures the accounting overhead of the
		// admitted path, not shedding, so nothing may be rejected.
		cfg.Admission = scheduler.NewAdmission(scheduler.AdmissionConfig{
			FillRate: 5_000_000, Burst: 10_000_000, MaxInFlight: 10 * n,
		})
	}
	svc, err := webservice.New(cfg)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer func() { svc.Close(); brk.Close() }()

	tok, err := authSvc.Issue(
		auth.Identity{Username: "bench@example.edu", Provider: "bench"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		return SaturationPoint{}, err
	}
	ep, err := svc.RegisterEndpoint(webservice.RegisterEndpointRequest{Name: "bench-ep", Owner: "bench@example.edu"})
	if err != nil {
		return SaturationPoint{}, err
	}
	fn, err := svc.RegisterFunction("bench@example.edu", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		return SaturationPoint{}, err
	}

	// Echo agent: consume the task queue, publish an immediate success for
	// each task so the service's result processors drive every admitted
	// task to terminal (exercising in-flight release on the admit-on arm).
	consumer, err := brk.Consume(webservice.TaskQueue(ep), 4*satBatch)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer consumer.Close()
	go func() {
		for m := range consumer.Messages() {
			var task protocol.Task
			if err := json.Unmarshal(m.Body, &task); err == nil {
				res := protocol.Result{
					TaskID: task.ID, State: protocol.StateSuccess,
					Output: []byte("1"), EndpointID: ep,
					Started: time.Now(), Completed: time.Now(),
				}
				body, _ := json.Marshal(res)
				_ = brk.Publish(webservice.ResultQueue(ep), body)
			}
			_ = consumer.Ack(m.Tag)
		}
	}()

	batch := make([]webservice.SubmitRequest, satBatch)
	for i := range batch {
		batch[i] = webservice.SubmitRequest{EndpointID: ep, FunctionID: fn, Payload: []byte(`{"entrypoint":"identity","args":[1]}`)}
	}
	latencies := make([]time.Duration, 0, n/satBatch+1)
	start := time.Now()
	submitted := 0
	for submitted < n {
		if offered > 0 {
			due := start.Add(time.Duration(submitted) * time.Second / time.Duration(offered))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		k := satBatch
		if n-submitted < k {
			k = n - submitted
		}
		callStart := time.Now()
		_, err := svc.Submit(tok, batch[:k])
		if err != nil {
			var oe *webservice.OverloadError
			if errors.As(err, &oe) {
				return SaturationPoint{}, fmt.Errorf("admission arm shed (%s): the arm must measure overhead, not shedding", oe.Reason)
			}
			return SaturationPoint{}, err
		}
		latencies = append(latencies, time.Since(callStart))
		submitted += k
	}
	// Wait for every admitted task to settle terminal so the measured rate
	// covers the whole admit -> publish -> result -> release pipeline.
	deadline := time.Now().Add(120 * time.Second)
	for {
		byState := store.CountTasksByState()
		if byState[protocol.StateSuccess]+byState[protocol.StateFailed] >= n {
			break
		}
		if time.Now().After(deadline) {
			return SaturationPoint{}, fmt.Errorf("admission arm stalled: %v", byState)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start)

	return SaturationPoint{
		Transport:    "inproc",
		Mode:         mode,
		Batch:        satBatch,
		OfferedPerS:  offered,
		Tasks:        n,
		AchievedPerS: float64(n) / elapsed.Seconds(),
		P50US:        percentileUS(latencies, 0.50),
		P99US:        percentileUS(latencies, 0.99),
	}, nil
}
