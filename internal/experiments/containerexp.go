package experiments

import (
	"fmt"
	"time"

	"globuscompute/internal/container"
	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
)

// Containers measures the containerized execution option: cold image pulls
// on first use per endpoint, warm reuse afterwards, and the per-invocation
// start cost.
func Containers(invocations int) (Report, error) {
	r := Report{
		ID:     "containers",
		Title:  fmt.Sprintf("Containerized ShellFunctions: cold pull vs warm reuse (%d invocations)", invocations),
		Header: "invocation,image,latency_ms",
	}
	e, err := newEnv(2)
	if err != nil {
		return r, err
	}
	defer e.close()
	rt := container.NewRuntime(100*time.Millisecond, 2*time.Millisecond)
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{
		Name: "container-ep", Owner: "bench", Workers: 1, Containers: rt,
	})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()

	sf := sdk.NewShellFunction("echo ran in $GC_CONTAINER")
	sf.Container = "analysis:v1"
	var coldMS, warmTotalMS float64
	for i := 0; i < invocations; i++ {
		start := time.Now()
		fut, err := ex.SubmitShell(sf, nil)
		if err != nil {
			return r, err
		}
		sr, err := shellResultWithin(fut, 60*time.Second)
		if err != nil {
			return r, err
		}
		if sr.Stdout != "ran in analysis:v1" {
			return r, fmt.Errorf("container env missing: %q", sr.Stdout)
		}
		ms := float64(time.Since(start).Microseconds()) / 1000
		label := "warm"
		if i == 0 {
			label = "cold"
			coldMS = ms
		} else {
			warmTotalMS += ms
		}
		r.Rows = append(r.Rows, fmt.Sprintf("%d (%s),analysis:v1,%.1f", i+1, label, ms))
	}
	warmMean := warmTotalMS / float64(invocations-1)
	r.Notes = append(r.Notes,
		fmt.Sprintf("cold start %.1fms (image pull) vs %.1fms warm mean — %.1fx", coldMS, warmMean, coldMS/warmMean),
		"the image caches per endpoint runtime; subsequent tasks skip the pull")
	return r, nil
}
