// Codec arms: the PR-8 binary hot-path codec measured against the JSON
// encoding on the framed-TCP batched broker path. Both arms run the exact
// same workload through the same batched client; the only difference is
// whether the client negotiated the compact binary frame encoding at
// declare/consume time.
package experiments

import (
	"fmt"

	"globuscompute/internal/broker"
)

// codecArm runs the batched TCP workload with the binary codec on or off.
// Negotiation is verified before the measurement starts: a codec-bin arm
// that silently fell back to JSON would record a meaningless comparison.
func codecArm(binaryOn bool, offered, n int) (SaturationPoint, error) {
	b := broker.New()
	defer b.Close()
	const queue = "sat"
	if err := b.Declare(queue); err != nil {
		return SaturationPoint{}, err
	}
	srv, err := broker.Serve(b, "127.0.0.1:0")
	if err != nil {
		return SaturationPoint{}, err
	}
	defer srv.Close()
	bc, err := broker.DialBatched(srv.Addr(), broker.BatchConfig{MaxBatch: satBatch})
	if err != nil {
		return SaturationPoint{}, err
	}
	defer bc.Close()

	mode := "codec-json"
	if binaryOn {
		bc.EnableBinary()
		mode = "codec-bin"
	}
	conn := bc.AsConn()
	if err := conn.Declare(queue); err != nil {
		return SaturationPoint{}, err
	}
	if binaryOn && !bc.BinaryNegotiated() {
		return SaturationPoint{}, fmt.Errorf("binary codec was not negotiated")
	}
	return runArm(conn, queue, "tcp", mode, satBatch, offered, n)
}
