package experiments

import (
	"fmt"
	"sort"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
	"globuscompute/internal/workload"
)

// Fig2 regenerates Figure 2: task invocations per day from November 28,
// 2022 to August 14, 2024, truncated at 100,000/day. full controls whether
// every day is printed or a monthly summary.
func Fig2(seed int64, full bool) Report {
	trace := workload.Fig2Trace(workload.Fig2Config{Seed: seed})
	stats := workload.Summarize(trace)
	r := Report{
		ID:     "fig2",
		Title:  "Task invocations per day (truncated at 100,000), Nov 28 2022 - Aug 14 2024",
		Header: "date,tasks[,truncated]",
	}
	if full {
		for _, d := range trace {
			r.Rows = append(r.Rows, workload.FormatDay(d))
		}
	} else {
		// Monthly aggregates for terminal-sized output.
		type month struct {
			total, peak, days, truncated int
		}
		byMonth := map[string]*month{}
		var keys []string
		for _, d := range trace {
			k := d.Date.Format("2006-01")
			m, ok := byMonth[k]
			if !ok {
				m = &month{}
				byMonth[k] = m
				keys = append(keys, k)
			}
			m.total += d.Tasks
			m.days++
			if d.Tasks > m.peak {
				m.peak = d.Tasks
			}
			if d.Truncated {
				m.truncated++
			}
		}
		sort.Strings(keys)
		r.Header = "month,tasks,mean/day,peak/day,truncated_days"
		for _, k := range keys {
			m := byMonth[k]
			r.Rows = append(r.Rows, fmt.Sprintf("%s,%d,%d,%d,%d",
				k, m.total, m.total/m.days, m.peak, m.truncated))
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("executed tasks (raw total): %d — paper reports ~17M since Nov 2022", stats.RawTotal),
		fmt.Sprintf("displayed total after truncation: %d over %d days (%d days clipped at %d)",
			stats.Total, stats.Days, stats.TruncatedDays, workload.Fig2Truncation),
		fmt.Sprintf("growth: mean %d tasks/day in first half vs %d in second half",
			int(stats.FirstHalfMean), int(stats.SecondHalfMean)),
	)
	return r
}

// Fig1 exercises the multi-user endpoint architecture of Figure 1 and
// reports the observed event sequence: submit with a user config -> start
// request to the MEP -> identity mapping -> user endpoint spawn -> task
// execution on the user endpoint.
func Fig1() (Report, error) {
	r := Report{ID: "fig1", Title: "Multi-user endpoint start-endpoint flow (Fig. 1)"}
	e, err := newEnv(4)
	if err != nil {
		return r, err
	}
	defer e.close()

	t0 := time.Now()
	event := func(format string, args ...any) {
		r.Rows = append(r.Rows, fmt.Sprintf("%8.1fms  %s",
			float64(time.Since(t0).Microseconds())/1000, fmt.Sprintf(format, args...)))
	}

	mepID, mgr, err := e.tb.StartMEP(core.MEPOptions{
		Name: "fig1-mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(),
	})
	if err != nil {
		return r, err
	}
	event("(0) administrator deploys multi-user endpoint %s", mepID)

	ex, err := e.executor(mepID)
	if err != nil {
		return r, err
	}
	defer ex.Close()
	ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 2, "ACCOUNT_ID": "314159265"}
	event("(1) user submits task with user endpoint configuration (hash keys the UEP)")

	fut, err := ex.SubmitShell(sdk.NewShellFunction("echo running as $GC_LOCAL_USER"), nil)
	if err != nil {
		return r, err
	}
	event("(2) service issues start-endpoint request to the MEP command queue")

	sr, err := shellResultWithin(fut, 30*time.Second)
	if err != nil {
		return r, err
	}
	stats := mgr.Stats()
	event("(3) MEP mapped identity, spawned user endpoint, task executed: %q", sr.Stdout)
	r.Notes = append(r.Notes,
		fmt.Sprintf("children spawned: %d, by local user: %v", stats.ChildrenSpawned, stats.ByLocalUser),
		"matches Fig. 1: the MEP is a process manager; the task ran on the spawned user endpoint",
	)
	return r, nil
}

// Usage reproduces the §VI deployment statistics two ways: the synthetic
// full-scale inventory, and a live scaled-down replay on the testbed.
func Usage(seed int64) (Report, error) {
	r := Report{
		ID:     "usage",
		Title:  "Deployment statistics (§VI): MEPs, spawned UEPs, endpoint fleet",
		Header: "metric,paper,reproduced",
	}
	// Synthetic full-scale inventory.
	d := workload.GenerateDeployment(seed)
	r.Rows = append(r.Rows,
		fmt.Sprintf("total endpoints,%d,%d", workload.DeployTotalEndpoints, d.TotalEndpoints()),
		fmt.Sprintf("multi-user endpoints,%d,%d", workload.DeployMEPs, len(d.UEPsPerMEP)),
		fmt.Sprintf("spawned user endpoints,%d,%d", workload.DeployUEPs, d.TotalUEPs()),
		fmt.Sprintf("UEP fraction of fleet,>13%%,%.1f%%", 100*d.UEPFraction()),
	)

	// Live replay at 1:100 scale: ~1 MEP spawning UEPs for several users.
	e, err := newEnv(8)
	if err != nil {
		return r, err
	}
	defer e.close()
	mepID, mgr, err := e.tb.StartMEP(core.MEPOptions{
		Name: "usage-mep", Owner: "admin@uchicago.edu", Mapper: uchicagoMapper(),
	})
	if err != nil {
		return r, err
	}
	users := []string{"u1@uchicago.edu", "u2@uchicago.edu", "u3@uchicago.edu"}
	for _, u := range users {
		tok, err := e.tb.IssueToken(u, "uchicago")
		if err != nil {
			return r, err
		}
		client := sdk.NewClient(e.tb.ServiceAddr(), tok.Value)
		ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
			Client: client, EndpointID: mepID, Conn: e.conn, Objects: e.objs,
		})
		if err != nil {
			return r, err
		}
		ex.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "alloc1"}
		fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, u)
		if err != nil {
			ex.Close()
			return r, err
		}
		if _, err := fut.ResultWithin(30 * time.Second); err != nil {
			ex.Close()
			return r, err
		}
		ex.Close()
	}
	u, err := e.client.Usage()
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows,
		fmt.Sprintf("live replay: endpoints,%s,%d", "-", u.Endpoints),
		fmt.Sprintf("live replay: MEPs,%s,%d", "-", u.MultiUserEPs),
		fmt.Sprintf("live replay: spawned UEPs,%s,%d", "-", u.UserEndpoints),
	)
	r.Notes = append(r.Notes,
		fmt.Sprintf("live replay spawned %d UEPs for %d distinct users through one MEP", mgr.Stats().ChildrenSpawned, len(users)))
	return r, nil
}
