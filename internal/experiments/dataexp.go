package experiments

import (
	"fmt"
	"strings"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/sdk"
	"globuscompute/internal/serialize"
)

// ProxyStore measures T8: moving data through the cloud service versus
// passing a proxy reference, across payload sizes, including sizes beyond
// the 10 MB service limit that only the proxy path can carry.
func ProxyStore(sizes []int) (Report, error) {
	if len(sizes) == 0 {
		sizes = []int{1 << 10, 64 << 10, 1 << 20, 8 << 20, 16 << 20}
	}
	r := Report{
		ID:     "proxystore",
		Title:  "Pass-by-value through the cloud vs ProxyStore pass-by-reference (§V)",
		Header: "size_bytes,via_cloud_ms,via_proxy_ms,cloud_ok,proxy_ok",
	}
	e, err := newEnv(2)
	if err != nil {
		return r, err
	}
	defer e.close()
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "t8-ep", Owner: "bench", Workers: 2})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}

	// The proxy store: both client and workers can reach the testbed
	// object store, mirroring a shared in-site store.
	store, err := proxystore.NewStore("site", proxystore.ObjectStoreConnector{Backend: e.tb.Objects}, 16)
	if err != nil {
		return r, err
	}
	reg := proxystore.NewRegistry()
	reg.Register(store)

	for _, size := range sizes {
		payload := strings.Repeat("g", size)

		// Arm 1: pass-by-value through the service (subject to the 10 MB
		// cap).
		cloudMS := -1.0
		cloudOK := true
		start := time.Now()
		fut, err := ex.Submit(fn, payload)
		if err != nil {
			cloudOK = false
		} else if _, err := fut.ResultWithin(120 * time.Second); err != nil {
			cloudOK = false
		} else {
			cloudMS = float64(time.Since(start).Microseconds()) / 1000
		}

		// Arm 2: proxy the payload; only the small reference passes
		// through the service, and the "consumer" resolves it from the
		// store (here: the client side resolves post-result, standing in
		// for the worker-side resolution the transparent proxy performs).
		start = time.Now()
		proxy, err := store.Put(payload)
		if err != nil {
			return r, err
		}
		refJSON, err := proxyReferenceJSON(proxy)
		if err != nil {
			return r, err
		}
		fut2, err := ex.Submit(fn, refJSON)
		if err != nil {
			return r, err
		}
		if _, err := fut2.ResultWithin(120 * time.Second); err != nil {
			return r, err
		}
		var resolved string
		if err := proxy.ResolveInto(&resolved); err != nil || len(resolved) != size {
			return r, fmt.Errorf("proxy resolution lost data: %d of %d bytes, %v", len(resolved), size, err)
		}
		proxyMS := float64(time.Since(start).Microseconds()) / 1000

		cloudStr := fmt.Sprintf("%.1f", cloudMS)
		if !cloudOK {
			cloudStr = "rejected"
		}
		r.Rows = append(r.Rows, fmt.Sprintf("%d,%s,%.1f,%v,true", size, cloudStr, proxyMS, cloudOK))
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("payloads above the %d-byte service limit are rejected pass-by-value but flow pass-by-reference", serialize.MaxPayload),
		"proxies also shrink the bytes brokered through the service to a fixed-size reference")
	return r, nil
}

// proxyReferenceJSON renders the proxy's wire reference as a string
// argument.
func proxyReferenceJSON(p *proxystore.Proxy) (string, error) {
	ref := p.Reference()
	return fmt.Sprintf(`{"ps_store":%q,"ps_key":%q,"ps_size":%d}`, ref.Store, ref.Key, ref.Size), nil
}
