package experiments

import (
	"fmt"
	"os"
	"sync"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
)

// Walltime reproduces Listing 3: a ShellFunction wrapping `sleep 2` with a
// 1-second walltime returns code 124 (T3).
func Walltime() (Report, error) {
	r := Report{
		ID:     "walltime",
		Title:  "ShellFunction walltime enforcement (Listing 3)",
		Header: "command,walltime_s,returncode,elapsed_ms",
	}
	e, err := newEnv(2)
	if err != nil {
		return r, err
	}
	defer e.close()
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "t3-ep", Owner: "bench"})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()

	// The paper's listing: sleep 2, walltime 1 -> 124.
	bf := sdk.NewShellFunction("sleep 2")
	bf.WalltimeSec = 1
	start := time.Now()
	fut, err := ex.SubmitShell(bf, nil)
	if err != nil {
		return r, err
	}
	sr, err := shellResultWithin(fut, 30*time.Second)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, fmt.Sprintf("sleep 2,1,%d,%.0f", sr.ReturnCode,
		float64(time.Since(start).Microseconds())/1000))

	// Control: the same command within its walltime returns 0.
	ok := sdk.NewShellFunction("sleep 0.05")
	ok.WalltimeSec = 5
	fut2, err := ex.SubmitShell(ok, nil)
	if err != nil {
		return r, err
	}
	sr2, err := shellResultWithin(fut2, 30*time.Second)
	if err != nil {
		return r, err
	}
	r.Rows = append(r.Rows, fmt.Sprintf("sleep 0.05,5,%d,-", sr2.ReturnCode))
	r.Notes = append(r.Notes,
		"paper: \"the return code will be set to 124: the shell return code when a timeout is exceeded\"")
	return r, nil
}

// Sandbox demonstrates per-task sandbox isolation (T4): concurrent
// ShellFunctions writing the same filename do not interfere when sandboxed,
// and do when sharing a directory.
func Sandbox(concurrent int) (Report, error) {
	r := Report{
		ID:     "sandbox",
		Title:  fmt.Sprintf("ShellFunction sandbox isolation (%d concurrent writers)", concurrent),
		Header: "mode,tasks,correct_reads,distinct_dirs",
	}
	for _, sandboxed := range []bool{true, false} {
		e, err := newEnv(2)
		if err != nil {
			return r, err
		}
		root, err := os.MkdirTemp("", "gc-sandbox-*")
		if err != nil {
			e.close()
			return r, err
		}
		epID, err := e.tb.StartEndpoint(core.EndpointOptions{
			Name: "t4-ep", Owner: "bench", Workers: concurrent, SandboxRoot: root,
		})
		if err != nil {
			e.close()
			return r, err
		}
		ex, err := e.executor(epID)
		if err != nil {
			e.close()
			return r, err
		}
		sf := sdk.NewShellFunction("echo {val} > out.txt && sleep 0.05 && cat out.txt")
		sf.Sandbox = sandboxed
		if !sandboxed {
			sf.RunDir = root
		}
		var wg sync.WaitGroup
		results := make([]string, concurrent)
		errs := make([]error, concurrent)
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				fut, err := ex.SubmitShell(sf, map[string]string{"val": fmt.Sprint(i)})
				if err != nil {
					errs[i] = err
					return
				}
				sr, err := shellResultWithin(fut, 60*time.Second)
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = sr.Stdout
			}(i)
		}
		wg.Wait()
		correct := 0
		for i, out := range results {
			if errs[i] == nil && out == fmt.Sprint(i) {
				correct++
			}
		}
		entries, _ := os.ReadDir(root)
		dirs := 0
		for _, ent := range entries {
			if ent.IsDir() {
				dirs++
			}
		}
		mode := "shared-dir"
		if sandboxed {
			mode = "sandboxed"
		}
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%d,%d,%d", mode, concurrent, correct, dirs))
		ex.Close()
		e.close()
		os.RemoveAll(root)
	}
	r.Notes = append(r.Notes,
		"sandboxed tasks each read back their own value; shared-dir tasks race on out.txt",
		"paper §III-B2: sandbox creates a unique directory per task UUID")
	return r, nil
}
