// Endpoint arms for the saturation experiment: where satArm measures the
// broker substrate alone, endpointArm drives a full endpoint agent — broker
// delivery, agent intake, engine execution, result egress — and compares the
// pre-PR per-task hot path ("ep-single": one delivery, one ack, one result
// publish per task) against the pipelined path ("ep-pipelined": batched
// intake, engine batch submit, group-commit result egress).
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/endpoint"
	"globuscompute/internal/engine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
)

// epWorkers sizes the arm's worker pool. The echo runner is instant, so a
// small pool keeps the measurement on the task path rather than compute.
const epWorkers = 4

// endpointArm runs n tasks end to end through an endpoint agent and reports
// achieved tasks/s plus submit-to-result-consume latency percentiles.
// pipelined toggles the agent's batched intake / group-commit egress; the
// driver and consumer sides are identical in both modes so the agent is the
// only variable.
func endpointArm(transport string, pipelined bool, offered, n int) (SaturationPoint, error) {
	// Shed the previous arm's garbage so its GC debt doesn't pollute this
	// arm's latency tail (the calibrated broker arms churn a lot of heap).
	runtime.GC()
	b := broker.New()
	epID := protocol.NewUUID()
	taskQ := "tasks." + string(epID)
	resultQ := "results." + string(epID)
	for _, q := range []string{taskQ, resultQ} {
		if err := b.Declare(q); err != nil {
			return SaturationPoint{}, err
		}
	}

	// Three conns — agent, driver, consumer — so one side's socket never
	// serializes another's. The driver and consumer (the measurement
	// harness) always ride wire-batched conns, identical in both arms; the
	// agent's conn is the variable — classic per-frame for ep-single, the
	// PR-3 batched wire protocol for ep-pipelined, since batched delivery
	// frames are part of the pipelined hot path.
	var addr string
	if transport == "tcp" {
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			return SaturationPoint{}, err
		}
		defer srv.Close()
		addr = srv.Addr()
	}
	newConn := func(batched bool) (broker.Conn, func(), error) {
		if transport == "inproc" {
			return broker.LocalConn(b), func() {}, nil
		}
		var bc *broker.Client
		var err error
		if batched {
			bc, err = broker.DialBatched(addr, broker.BatchConfig{MaxBatch: 64})
		} else {
			bc, err = broker.Dial(addr)
		}
		if err != nil {
			return nil, nil, err
		}
		return bc.AsConn(), func() { bc.Close() }, nil
	}
	agentConn, closeAgent, err := newConn(pipelined)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer closeAgent()
	driverConn, closeDriver, err := newConn(true)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer closeDriver()
	consumerConn, closeConsumer, err := newConn(true)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer closeConsumer()

	// The runner echoes the payload (a nanosecond timestamp) straight back,
	// so consumed results carry their submit time.
	echo := func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
	}
	eng, err := engine.New(engine.Config{
		Provider:   provider.NewLocal(epWorkers),
		Run:        echo,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: epWorkers,
	})
	if err != nil {
		return SaturationPoint{}, err
	}
	// Both arms get a deep delivery window so the broker keeps pushing while
	// acks are in flight; only the agent's batching behavior differs.
	cfg := endpoint.Config{EndpointID: epID, Conn: agentConn, Engine: eng, Prefetch: 256}
	if pipelined {
		cfg.IntakeBatch = satBatch
	} else {
		// Pre-pipeline behavior: one delivery decoded, submitted, and acked
		// per wakeup; one publish per result.
		cfg.IntakeBatch = 1
		cfg.EgressMaxBatch = 1
		cfg.DisableAdaptivePrefetch = true
	}
	agent, err := endpoint.New(cfg)
	if err != nil {
		return SaturationPoint{}, err
	}
	if err := agent.Start(); err != nil {
		return SaturationPoint{}, err
	}
	defer agent.Stop()

	sub, err := consumerConn.Subscribe(resultQ, 256)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer sub.Cancel()
	// The consumer acks out of line (bounded overlap) so an ack round trip
	// never stalls result intake — the harness measures the agent, not its
	// own ack latency. Identical in both arms.
	latencies := make([]time.Duration, 0, n)
	consumed := make(chan error, 1)
	var ackWG sync.WaitGroup
	ackSem := make(chan struct{}, 2)
	ack := func(tags []uint64) {
		ackSem <- struct{}{}
		ackWG.Add(1)
		go func() {
			defer ackWG.Done()
			defer func() { <-ackSem }()
			_ = broker.AckBatchOn(sub, tags)
		}()
	}
	go func() {
		defer ackWG.Wait()
		tags := make([]uint64, 0, satBatch)
		for m := range sub.Messages() {
			var res protocol.Result
			if err := json.Unmarshal(m.Body, &res); err != nil {
				consumed <- err
				return
			}
			ts, err := strconv.ParseInt(string(res.Output), 10, 64)
			if err != nil {
				consumed <- fmt.Errorf("result output %q: %w", res.Output, err)
				return
			}
			latencies = append(latencies, time.Since(time.Unix(0, ts)))
			tags = append(tags, m.Tag)
			if len(tags) >= satBatch || len(latencies) == n {
				ack(tags)
				tags = make([]uint64, 0, satBatch)
			}
			if len(latencies) == n {
				consumed <- nil
				return
			}
		}
		consumed <- fmt.Errorf("result stream closed after %d/%d", len(latencies), n)
	}()

	task := func() []byte {
		t := protocol.Task{
			ID: protocol.NewUUID(), EndpointID: epID, Kind: protocol.KindPython,
			Payload: []byte(strconv.FormatInt(time.Now().UnixNano(), 10)),
		}
		body, _ := json.Marshal(t)
		return body
	}
	start := time.Now()
	pace := func(i int) {
		if offered <= 0 {
			return
		}
		due := start.Add(time.Duration(i) * time.Second / time.Duration(offered))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	// The driver always publishes in wire batches with a few round trips in
	// flight: submission cost is held constant (and off the measured path)
	// so the arms differ only in what the agent does.
	pubErr := make(chan error, 1)
	var pubWG sync.WaitGroup
	pubSem := make(chan struct{}, 4)
	for i := 0; i < n; i += satBatch {
		pace(i)
		k := satBatch
		if n-i < k {
			k = n - i
		}
		bodies := make([][]byte, k)
		for j := range bodies {
			bodies[j] = task()
		}
		pubSem <- struct{}{}
		pubWG.Add(1)
		go func(bodies [][]byte) {
			defer pubWG.Done()
			defer func() { <-pubSem }()
			if err := broker.PublishBatchOn(driverConn, taskQ, bodies, nil); err != nil {
				select {
				case pubErr <- err:
				default:
				}
			}
		}(bodies)
	}
	pubWG.Wait()
	select {
	case err := <-pubErr:
		return SaturationPoint{}, err
	default:
	}
	select {
	case err := <-consumed:
		if err != nil {
			return SaturationPoint{}, err
		}
	case <-time.After(120 * time.Second):
		return SaturationPoint{}, fmt.Errorf("endpoint arm timed out after %d/%d results", len(latencies), n)
	}
	elapsed := time.Since(start)
	if os.Getenv("EP_ARM_DEBUG") != "" {
		fmt.Printf("DEBUG %s pipelined=%v: received=%d intake_batches=%d flushes=%d published=%d\n",
			transport, pipelined,
			agent.Metrics.Counter("tasks_received").Value(),
			agent.Metrics.Counter("intake_batches").Value(),
			agent.Metrics.Counter("egress_flushes").Value(),
			agent.Metrics.Counter("results_published").Value())
	}

	mode, batch := "ep-single", 1
	if pipelined {
		mode, batch = "ep-pipelined", satBatch
	}
	return SaturationPoint{
		Transport:    transport,
		Mode:         mode,
		Batch:        batch,
		OfferedPerS:  offered,
		Tasks:        n,
		AchievedPerS: float64(n) / elapsed.Seconds(),
		P50US:        percentileUS(latencies, 0.50),
		P99US:        percentileUS(latencies, 0.99),
	}, nil
}
