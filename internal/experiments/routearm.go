// Route arms: the PR-9 backpressure-aware placement benchmark. A simulated
// fleet (one lightweight agent goroutine per endpoint, spawned through the
// MEP sim spawner) serves tasks under 10x skewed per-endpoint service times
// while the webservice fans a routing group's submissions across it. The
// route-random arm is the baseline every fleet implicitly runs today (pick
// an endpoint blindly); route-p2c scores heartbeat load reports with
// power-of-two-choices. At equal offered load the p99 task latency ratio is
// the PR's headline number (acceptance bar: p2c p99 <= 0.5x random p99).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/mep"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

// RouteFleetOptions sizes a simulated routing fleet.
type RouteFleetOptions struct {
	// Endpoints is the fleet size (default 2000; the full bench runs 10000,
	// the -race smoke 1000).
	Endpoints int
	// SlowFraction of endpoints run SlowFactor x the base service time —
	// the skew the placement policy must route around. Defaults: 2% at 10x.
	SlowFraction float64
	SlowFactor   int
	// BaseService is a fast endpoint's per-task service time (default 1s;
	// slow endpoints take SlowFactor x this).
	BaseService time.Duration
	// HeartbeatEvery is the per-endpoint load-report cadence, delivered
	// decimated: the pump wakes HeartbeatStripes times per interval and
	// reports one stripe of the fleet per wakeup, the way a 10k fleet's
	// heartbeats arrive spread out rather than in one burst. Defaults to
	// 250ms up to 2500 endpoints and 1s beyond — per-endpoint cadence slows
	// as a fleet grows so the aggregate report rate stays bounded (a 10k
	// fleet at 4 reports/s/endpoint would spend the control plane's whole
	// budget on heartbeats).
	HeartbeatEvery   time.Duration
	HeartbeatStripes int
	// Policy is the routing-group placement policy under test.
	Policy string
	// Seed pins placement randomness.
	Seed int64
}

func (o *RouteFleetOptions) defaults() {
	if o.Endpoints <= 0 {
		o.Endpoints = 2000
	}
	if o.SlowFraction <= 0 {
		o.SlowFraction = 0.02
	}
	if o.SlowFactor <= 0 {
		o.SlowFactor = 10
	}
	if o.BaseService <= 0 {
		o.BaseService = time.Second
	}
	if o.HeartbeatEvery <= 0 {
		o.HeartbeatEvery = 250 * time.Millisecond
		if o.Endpoints > 2500 {
			o.HeartbeatEvery = time.Second
		}
	}
	if o.HeartbeatStripes <= 0 {
		o.HeartbeatStripes = 10
		if o.Endpoints > 2500 {
			o.HeartbeatStripes = 25
		}
	}
	if o.Policy == "" {
		o.Policy = "p2c"
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RouteFleet is a running simulated fleet behind one routing group.
type RouteFleet struct {
	Opts  RouteFleetOptions
	Svc   *webservice.Service
	Store *statestore.Store
	Brk   *broker.Broker
	Tok   auth.Token
	Fn    protocol.UUID
	Group protocol.UUID
	// Endpoints lists member IDs in registration order; Slow marks the
	// skewed ones.
	Endpoints []protocol.UUID
	Slow      map[protocol.UUID]bool

	agents []*mep.SimAgent
	// dead[i] is set by StopEndpoint so the heartbeat pump stops reporting
	// the endpoint online (the offline report must stick for rerouting).
	dead    []atomic.Bool
	pumping bool
	stop    chan struct{}
	done    chan struct{}
}

// StartRouteFleet builds a webservice over a fresh store/broker, registers
// the fleet, spawns one sim agent per endpoint through the MEP sim spawner,
// wraps every endpoint in a routing group running opts.Policy, pre-warms one
// load report per endpoint, and starts the decimated heartbeat pump.
func StartRouteFleet(opts RouteFleetOptions) (*RouteFleet, error) {
	opts.defaults()
	store, brk := statestore.New(), broker.New()
	objects, authSvc := objectstore.New(), auth.NewService()
	svc, err := webservice.New(webservice.Config{
		Store: store, Broker: brk, Objects: objects, Auth: authSvc,
		HeartbeatInterval: opts.HeartbeatEvery,
		RoutePolicy:       opts.Policy,
		RouteSeed:         opts.Seed,
	})
	if err != nil {
		brk.Close()
		return nil, err
	}
	f := &RouteFleet{
		Opts: opts, Svc: svc, Store: store, Brk: brk,
		Slow: make(map[protocol.UUID]bool, int(float64(opts.Endpoints)*opts.SlowFraction)+1),
		dead: make([]atomic.Bool, opts.Endpoints),
		stop: make(chan struct{}), done: make(chan struct{}),
	}
	fail := func(err error) (*RouteFleet, error) {
		f.Stop()
		return nil, err
	}

	f.Tok, err = authSvc.Issue(
		auth.Identity{Username: "bench@example.edu", Provider: "bench"},
		[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
	if err != nil {
		return fail(err)
	}
	f.Fn, err = svc.RegisterFunction("bench@example.edu", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		return fail(err)
	}

	// Register the fleet, then spawn sim agents via the MEP spawner with
	// skewed service times: every k-th endpoint is slow.
	slowEvery := int(1 / opts.SlowFraction)
	serviceTimes := make(map[protocol.UUID]time.Duration, opts.Endpoints)
	f.Endpoints = make([]protocol.UUID, opts.Endpoints)
	for i := range f.Endpoints {
		id, err := svc.RegisterEndpoint(webservice.RegisterEndpointRequest{
			Name: fmt.Sprintf("sim-%d", i), Owner: "bench@example.edu",
		})
		if err != nil {
			return fail(err)
		}
		f.Endpoints[i] = id
		serviceTimes[id] = opts.BaseService
		if i%slowEvery == 0 {
			serviceTimes[id] = time.Duration(opts.SlowFactor) * opts.BaseService
			f.Slow[id] = true
		}
	}
	f.agents = make([]*mep.SimAgent, 0, opts.Endpoints)
	spawn := mep.NewSimSpawner(mep.SimSpawnerDeps{
		Conn: broker.LocalConn(brk),
		ServiceTime: func(req mep.SpawnRequest) time.Duration {
			return serviceTimes[req.ChildEndpointID]
		},
		OnSpawn: func(_ protocol.UUID, a *mep.SimAgent) { f.agents = append(f.agents, a) },
	})
	for _, id := range f.Endpoints {
		if _, err := spawn(context.Background(), mep.SpawnRequest{ChildEndpointID: id}); err != nil {
			return fail(err)
		}
	}

	f.Group, err = svc.CreateRoutingGroup(f.Tok, "sim-fleet", opts.Policy, f.Endpoints)
	if err != nil {
		return fail(err)
	}

	// Pre-warm: one report per endpoint so the first picks score real
	// (idle) reports instead of an all-unknown cold fleet.
	for i, id := range f.Endpoints {
		load := f.agents[i].Load()
		if err := svc.RecordHeartbeat(id, true, &load, nil); err != nil {
			return fail(err)
		}
	}
	f.pumping = true
	go f.heartbeatPump()
	return f, nil
}

// heartbeatPump reports one stripe of the fleet per wakeup, so every
// endpoint reports once per HeartbeatEvery without a fleet-wide burst.
func (f *RouteFleet) heartbeatPump() {
	defer close(f.done)
	stripes := f.Opts.HeartbeatStripes
	tick := time.NewTicker(f.Opts.HeartbeatEvery / time.Duration(stripes))
	defer tick.Stop()
	stripe := 0
	for {
		select {
		case <-f.stop:
			return
		case <-tick.C:
		}
		for i := stripe; i < len(f.Endpoints); i += stripes {
			if f.dead[i].Load() {
				continue
			}
			load := f.agents[i].Load()
			_ = f.Svc.RecordHeartbeat(f.Endpoints[i], true, &load, nil)
		}
		stripe = (stripe + 1) % stripes
	}
}

// StopEndpoint kills one sim agent and reports it offline (churn tests).
// The offline report lands synchronously, so placement stops picking the
// member as soon as its candidate snapshot refreshes.
func (f *RouteFleet) StopEndpoint(i int) {
	f.dead[i].Store(true)
	f.agents[i].Stop()
	_ = f.Svc.RecordHeartbeat(f.Endpoints[i], false, nil, nil)
}

// ReviveEndpoint restarts a stopped endpoint's sim agent (draining whatever
// its task queue accumulated while dead) and resumes its heartbeats.
func (f *RouteFleet) ReviveEndpoint(i int, serviceTime time.Duration) error {
	a, err := mep.StartSimAgent(mep.SimAgentConfig{
		EndpointID: f.Endpoints[i], Conn: broker.LocalConn(f.Brk), ServiceTime: serviceTime,
	})
	if err != nil {
		return err
	}
	f.agents[i] = a
	load := a.Load()
	if err := f.Svc.RecordHeartbeat(f.Endpoints[i], true, &load, nil); err != nil {
		return err
	}
	f.dead[i].Store(false)
	return nil
}

// Stop tears the fleet down: heartbeat pump, agents, service, broker.
func (f *RouteFleet) Stop() {
	select {
	case <-f.stop:
	default:
		close(f.stop)
		if f.pumping {
			<-f.done
		}
	}
	for _, a := range f.agents {
		a.Stop()
	}
	f.Svc.Close()
	f.Brk.Close()
}

// Run paces n submissions at offered tasks/s through the routing group,
// waits for every task to settle terminal, and reports achieved tasks/s
// (including the drain of whatever queues the policy built) plus p50/p99
// submit-to-completion task latency from the store's records.
func (f *RouteFleet) Run(offered, n int) (SaturationPoint, error) {
	batch := make([]webservice.SubmitRequest, satBatch)
	for i := range batch {
		batch[i] = webservice.SubmitRequest{EndpointID: f.Group, FunctionID: f.Fn, Payload: []byte(`{"entrypoint":"identity","args":[1]}`)}
	}
	ids := make([]protocol.UUID, 0, n)
	start := time.Now()
	for len(ids) < n {
		if offered > 0 {
			due := start.Add(time.Duration(len(ids)) * time.Second / time.Duration(offered))
			if d := time.Until(due); d > 0 {
				time.Sleep(d)
			}
		}
		k := satBatch
		if n-len(ids) < k {
			k = n - len(ids)
		}
		got, err := f.Svc.Submit(f.Tok, batch[:k])
		if err != nil {
			return SaturationPoint{}, fmt.Errorf("route submit after %d tasks: %w", len(ids), err)
		}
		ids = append(ids, got...)
	}
	// Drain: a skew-blind policy parks deep queues on the slow endpoints,
	// so the deadline scales with how much service time one slow endpoint
	// could have queued behind it — budgeted at 3x the mean per-endpoint
	// depth, since the deepest of a few hundred Poisson queues runs well
	// past the mean.
	worst := 3 * time.Duration(f.Opts.SlowFactor) * f.Opts.BaseService * time.Duration(n/f.Opts.Endpoints+2)
	deadline := time.Now().Add(60*time.Second + worst)
	for {
		byState := f.Store.CountTasksByState()
		if byState[protocol.StateSuccess]+byState[protocol.StateFailed] >= n {
			break
		}
		if time.Now().After(deadline) {
			return SaturationPoint{}, fmt.Errorf("route fleet stalled: %v", byState)
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)

	recs := f.Store.GetTaskRecords(ids)
	latencies := make([]time.Duration, 0, len(ids))
	for _, id := range ids {
		rec, ok := recs[id]
		if !ok || rec.Completed.IsZero() {
			continue
		}
		latencies = append(latencies, rec.Completed.Sub(rec.Created))
	}
	return SaturationPoint{
		Transport:    "fleet",
		Mode:         "route-" + f.Opts.Policy,
		Batch:        satBatch,
		OfferedPerS:  offered,
		Tasks:        n,
		AchievedPerS: float64(n) / elapsed.Seconds(),
		P50US:        percentileUS(latencies, 0.50),
		P99US:        percentileUS(latencies, 0.99),
	}, nil
}

// routeArm runs one policy over a fresh simulated fleet. Offered load and
// task count scale with the fleet so every arm runs the same per-endpoint
// pressure: 0.4 tasks/s per endpoint for ~15 seconds (6 tasks per
// endpoint). At the default 1s/10x skew that is 4x a slow endpoint's
// capacity — a skew-blind policy drowns its slow members (and every task
// queued behind them) while the fast fleet runs at 40% utilization.
//
// The 6-task depth is the p99 margin. Heartbeat-only scoring has a floor: a
// slow endpoint is indistinguishable from a fast one until its first report
// shows queued work (first-touch picks), and a slow member whose queue has
// drained back to depth 1 ties with any busy fast member, so it re-attracts
// roughly one task per service time. That floors a load-aware policy's
// slow-task share near 1% here — its p99 sits at one slow service time —
// while a blind policy's slow queues (and its p99) keep growing linearly
// with depth. The headline is that ratio; at 2 tasks per endpoint both
// effects sit on the same boundary and the ratio collapses.
func routeArm(policy string, fleetN int) (SaturationPoint, error) {
	runtime.GC()
	f, err := StartRouteFleet(RouteFleetOptions{Endpoints: fleetN, Policy: policy})
	if err != nil {
		return SaturationPoint{}, err
	}
	defer f.Stop()
	offered := 2 * fleetN / 5
	n := 6 * fleetN
	return f.Run(offered, n)
}
