package experiments

import (
	"fmt"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/sdk"
)

// StreamingResult carries the measured comparison for one arm of the
// streaming-vs-polling experiment (§III-A claim T1).
type StreamingResult struct {
	Mode          string
	Tasks         int
	Elapsed       time.Duration
	RESTRequests  int64
	BytesSent     int64
	BytesReceived int64
}

// runExecutorArm runs n identity tasks through an executor configured for
// streaming (conn != nil) or polling and measures traffic and latency.
func (e *env) runExecutorArm(streaming bool, pollInterval time.Duration, legacy bool, n int) (StreamingResult, error) {
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "t1-ep", Owner: "bench", Workers: 8})
	if err != nil {
		return StreamingResult{}, err
	}
	cfg := sdk.ExecutorConfig{Client: e.client, EndpointID: epID, Objects: e.objs}
	mode := "polling"
	if streaming {
		cfg.Conn = e.conn
		mode = "streaming"
	} else {
		cfg.PollInterval = pollInterval
		cfg.LegacyPolling = legacy
	}
	ex, err := sdk.NewExecutor(cfg)
	if err != nil {
		return StreamingResult{}, err
	}
	defer ex.Close()

	req0 := e.client.Requests.Load()
	sent0 := e.client.BytesSent.Load()
	recv0 := e.client.BytesReceived.Load()

	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	start := time.Now()
	futs := make([]*sdk.Future, n)
	for i := range futs {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			return StreamingResult{}, err
		}
		futs[i] = fut
	}
	if err := waitAll(futs, 60*time.Second); err != nil {
		return StreamingResult{}, err
	}
	return StreamingResult{
		Mode:          mode,
		Tasks:         n,
		Elapsed:       time.Since(start),
		RESTRequests:  e.client.Requests.Load() - req0,
		BytesSent:     e.client.BytesSent.Load() - sent0,
		BytesReceived: e.client.BytesReceived.Load() - recv0,
	}, nil
}

// Streaming compares the future-based streaming executor with the legacy
// polling path across polling intervals (T1).
func Streaming(n int) (Report, error) {
	r := Report{
		ID:     "streaming",
		Title:  fmt.Sprintf("Executor result streaming vs REST polling (%d tasks)", n),
		Header: "mode,tasks,elapsed_ms,rest_requests,bytes_sent,bytes_received",
	}
	arms := []struct {
		streaming bool
		poll      time.Duration
		legacy    bool
		label     string
	}{
		{true, 0, false, "streaming"},
		{false, 10 * time.Millisecond, true, "legacy-polling@10ms"},
		{false, 100 * time.Millisecond, true, "legacy-polling@100ms"},
		{false, 100 * time.Millisecond, false, "batch-polling@100ms"},
		{false, 500 * time.Millisecond, true, "legacy-polling@500ms"},
	}
	var streamReqs, worstPollReqs int64
	for _, arm := range arms {
		e, err := newEnv(4)
		if err != nil {
			return r, err
		}
		res, err := e.runExecutorArm(arm.streaming, arm.poll, arm.legacy, n)
		e.close()
		if err != nil {
			return r, fmt.Errorf("%s: %w", arm.label, err)
		}
		res.Mode = arm.label
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%d,%.1f,%d,%d,%d",
			res.Mode, res.Tasks, float64(res.Elapsed.Microseconds())/1000,
			res.RESTRequests, res.BytesSent, res.BytesReceived))
		if arm.streaming {
			streamReqs = res.RESTRequests
		} else if res.RESTRequests > worstPollReqs {
			worstPollReqs = res.RESTRequests
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("streaming used %d REST requests vs up to %d when polling — the paper's \"far more efficient in bytes over the wire and time spent waiting\"", streamReqs, worstPollReqs),
		"polling also adds up to one interval of latency per task on top of execution",
	)
	return r, nil
}

// BatchingResult is one arm of the request-batching experiment (T2).
type BatchingResult struct {
	Mode         string
	Tasks        int
	Elapsed      time.Duration
	RESTRequests int64
}

// Batching compares batched submission against one-REST-call-per-task (T2).
func Batching(n int) (Report, error) {
	r := Report{
		ID:     "batching",
		Title:  fmt.Sprintf("SDK request batching (%d tasks)", n),
		Header: "mode,tasks,elapsed_ms,rest_submit_requests",
	}
	arms := []struct {
		window time.Duration
		max    int
		label  string
	}{
		{5 * time.Millisecond, 1024, "batched(5ms window)"},
		{time.Nanosecond, 1, "unbatched(1 task/call)"},
	}
	var batched, unbatched int64
	for _, arm := range arms {
		e, err := newEnv(4)
		if err != nil {
			return r, err
		}
		epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "t2-ep", Owner: "bench", Workers: 8})
		if err != nil {
			e.close()
			return r, err
		}
		ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
			Client: e.client, EndpointID: epID, Conn: e.conn, Objects: e.objs,
			BatchWindow: arm.window, MaxBatch: arm.max,
		})
		if err != nil {
			e.close()
			return r, err
		}
		fn := &sdk.PythonFunction{Entrypoint: "identity"}
		req0 := e.client.Requests.Load()
		start := time.Now()
		futs := make([]*sdk.Future, n)
		for i := range futs {
			fut, err := ex.Submit(fn, i)
			if err != nil {
				ex.Close()
				e.close()
				return r, err
			}
			futs[i] = fut
		}
		if err := waitAll(futs, 60*time.Second); err != nil {
			ex.Close()
			e.close()
			return r, err
		}
		elapsed := time.Since(start)
		// Subtract the single function-registration request.
		reqs := e.client.Requests.Load() - req0 - 1
		ex.Close()
		e.close()
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%d,%.1f,%d",
			arm.label, n, float64(elapsed.Microseconds())/1000, reqs))
		if arm.max == 1 {
			unbatched = reqs
		} else {
			batched = reqs
		}
	}
	r.Notes = append(r.Notes,
		fmt.Sprintf("batching collapsed %d submissions into %d REST calls (vs %d unbatched)", n, batched, unbatched))
	return r, nil
}
