package experiments

import (
	"os"
	"strconv"
	"testing"
	"time"
)

// TestRouteFleetServes is the always-on harness check: a small fast fleet
// behind a routing group serves every submission to a terminal state and
// reports sane latency percentiles.
func TestRouteFleetServes(t *testing.T) {
	f, err := StartRouteFleet(RouteFleetOptions{
		Endpoints:      40,
		BaseService:    20 * time.Millisecond,
		HeartbeatEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Stop()
	pt, err := f.Run(200, 300)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Tasks != 300 || pt.AchievedPerS <= 0 {
		t.Fatalf("point = %+v", pt)
	}
	if pt.P99US < float64(20*time.Millisecond/time.Microsecond) {
		t.Fatalf("p99 %.0fus below one service time — latency not measured end to end", pt.P99US)
	}
	if pt.Mode != "route-p2c" || pt.Transport != "fleet" {
		t.Fatalf("point labeled %s/%s", pt.Transport, pt.Mode)
	}
}

// TestRouteSmoke is the PR-9 acceptance smoke (make route-smoke): 1000
// simulated endpoints under the race detector, 2% of them 10x slower, routed
// by random vs power-of-two-choices at the same offered load. p2c must hold
// p99 task latency to at most half of random's, without losing throughput.
// Gated on GC_ROUTE so plain `go test ./...` stays fast.
func TestRouteSmoke(t *testing.T) {
	if os.Getenv("GC_ROUTE") == "" {
		t.Skip("set GC_ROUTE=1 to run the routing smoke")
	}
	fleetN := 1000
	if v, err := strconv.Atoi(os.Getenv("GC_ROUTE_FLEET")); err == nil && v > 0 {
		fleetN = v
	}
	arms := make(map[string]SaturationPoint, 2)
	for _, policy := range []string{"random", "p2c"} {
		pt, err := routeArm(policy, fleetN)
		if err != nil {
			t.Fatalf("route-%s: %v", policy, err)
		}
		t.Logf("route-%-6s achieved %.0f/s p50 %.0fus p99 %.0fus", policy, pt.AchievedPerS, pt.P50US, pt.P99US)
		arms[policy] = pt
	}
	rnd, p2c := arms["random"], arms["p2c"]
	if p2c.P99US <= 0 || rnd.P99US <= 0 {
		t.Fatalf("missing percentiles: random %+v p2c %+v", rnd, p2c)
	}
	if p2c.P99US > 0.5*rnd.P99US {
		t.Fatalf("p2c p99 %.0fus > 0.5x random p99 %.0fus (ratio %.2fx, bar >= 2x)",
			p2c.P99US, rnd.P99US, rnd.P99US/p2c.P99US)
	}
	if p2c.AchievedPerS < 0.9*rnd.AchievedPerS {
		t.Fatalf("p2c throughput %.0f/s fell below 0.9x random's %.0f/s", p2c.AchievedPerS, rnd.AchievedPerS)
	}
}
