// Saturation: the PR-3 high-throughput task-path benchmark. It drives the
// message broker — the substrate every task and result crosses twice — at
// a paced offered load and at saturation, with and without wire batching,
// in-process and over framed TCP, and reports achieved tasks/s plus p50/p99
// publish-to-consume latency. gc-bench -exp saturation -json writes the
// structured result (BENCH_pr3.json) so the speedup is recorded alongside
// the code that produced it.
package experiments

import (
	"encoding/binary"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/durable"
)

// SaturationPoint is one (transport, mode, offered-load) measurement.
type SaturationPoint struct {
	Transport    string  `json:"transport"`      // "inproc" | "tcp"
	Mode         string  `json:"mode"`           // "unbatched" | "batched"
	Batch        int     `json:"batch"`          // messages per publish/ack round trip
	OfferedPerS  int     `json:"offered_per_s"`  // 0 = saturation (publish as fast as possible)
	Tasks        int     `json:"tasks"`
	AchievedPerS float64 `json:"achieved_tasks_per_s"`
	P50US        float64 `json:"p50_us"`
	P99US        float64 `json:"p99_us"`
}

// SatMeasureVersion identifies the saturation measurement methodology.
// Version 1 added calibrated re-measurement of saturation arms (see
// satMinMeasure); version 0 artifacts recorded short bursts, so their
// saturation tasks/s are not comparable across versions. Version 2 reflects
// the overload-protection work: every publish now crosses an admission
// check and a two-level (interactive/batch) ready queue, and journaled
// publishes carry a priority flag in the WAL record, so absolute saturation
// rates re-baseline while paced arms remain comparable. Version 3
// re-baselines for two reasons: task mutations now maintain per-shard
// state counters (a small per-create/per-transition cost on every
// store-touching arm, bought back many times over by O(1)
// CountTasksByState), and — the deciding one — re-running the *unchanged*
// version-2 binary against its own recorded baseline on this
// infrastructure moved 7 saturated arms by 10-36%, so cross-session
// saturated-arm comparisons at the 10% tolerance are machine drift, not
// signal. Within-run ratios (codec, dedup, route) and paced arms stay
// comparable.
const SatMeasureVersion = 3

// SaturationResult is the JSON artifact gc-bench -json writes.
type SaturationResult struct {
	MeasureVersion int               `json:"measure_version"`
	TasksPerArm    int               `json:"tasks_per_arm"`
	BatchSize      int               `json:"batch_size"`
	Points         []SaturationPoint `json:"points"`
	// TCPSpeedup and InprocSpeedup compare batched vs unbatched achieved
	// tasks/s at saturation (before/after for this PR's batching work).
	TCPSpeedup    float64 `json:"tcp_speedup_at_saturation"`
	InprocSpeedup float64 `json:"inproc_speedup_at_saturation"`
	// TCPEndpointSpeedup and InprocEndpointSpeedup compare the pipelined
	// endpoint agent (batched intake + engine batch submit + group-commit
	// egress) against the per-task agent hot path at saturation.
	TCPEndpointSpeedup    float64 `json:"tcp_endpoint_speedup_at_saturation"`
	InprocEndpointSpeedup float64 `json:"inproc_endpoint_speedup_at_saturation"`
	// WALCost is the durability tax: achieved tasks/s with the broker
	// journaling every publish to a fsync-batched WAL (wal-on) divided by
	// the in-memory broker (wal-off), both at saturation. 1.0 = free.
	WALCost float64 `json:"wal_on_vs_off_at_saturation"`
	// AdmissionCost is the overload-protection tax: achieved tasks/s
	// through the webservice submit front door with per-tenant admission
	// (token bucket + in-flight + fairshare accounting) divided by the
	// same path with admission off, both at saturation. 1.0 = free; the
	// acceptance bar is >= 0.95 (<= 5% overhead).
	AdmissionCost float64 `json:"admission_on_vs_off_at_saturation"`
	// CodecSpeedup compares the binary hot-path frame codec against the
	// JSON encoding on the batched TCP arm at saturation (PR 8; the
	// acceptance bar is >= 1.2x).
	CodecSpeedup float64 `json:"codec_on_vs_off_at_saturation"`
	// DedupByteReduction is server egress bytes without the endpoint dedup
	// cache divided by bytes with it, for a 16-way fan-out of one large
	// content-addressed payload (PR 8; the acceptance bar is >= 5x).
	DedupByteReduction float64 `json:"dedup_byte_reduction_fanout16"`
	// RouteP2CImprovement is route-random p99 task latency divided by
	// route-p2c p99 at equal offered load over a simulated fleet with 10x
	// skewed per-endpoint service times (PR 9; the acceptance bar is >= 2x,
	// i.e. p2c p99 <= 0.5x random p99).
	RouteP2CImprovement float64 `json:"route_p2c_p99_improvement"`
	// RouteP2CThroughput is route-p2c achieved tasks/s divided by
	// route-random's at equal offered load (bar: >= 1 — routing on load
	// must not cost throughput).
	RouteP2CThroughput float64 `json:"route_p2c_throughput_ratio"`
	// RouteFleetSize records how many simulated endpoints the route arms
	// ran (the full bench runs 10000).
	RouteFleetSize int      `json:"route_fleet_size,omitempty"`
	Notes          []string `json:"notes"`
}

// satBatch is the batch size for the batched arms (the acceptance bar asks
// for >= 32).
const satBatch = 32

// Saturation measures broker throughput and latency across the four
// transport x mode arms at a paced load and at saturation. n is the task
// count per arm (floored at 500 for stable percentiles); routeFleet sizes
// the simulated fleet behind the route-random/route-p2c placement arms
// (0 = default, see RouteFleetOptions).
func Saturation(n, routeFleet int) (Report, *SaturationResult, error) {
	if n < 500 {
		n = 500
	}
	if routeFleet <= 0 {
		routeFleet = 2000
	}
	res := &SaturationResult{MeasureVersion: SatMeasureVersion, TasksPerArm: n, BatchSize: satBatch, RouteFleetSize: routeFleet}
	// The paced load exercises the latency-under-load story; saturation
	// (offered 0) exercises peak throughput.
	paced := 2000

	// Endpoint arms run through a full agent on real workers, and the
	// durability arms wait on real fsync batches, so both task counts are
	// capped to keep the smoke run quick.
	epN := n
	if epN > 5000 {
		epN = 5000
	}
	walN := epN

	// Assemble every arm first, then run in two passes: all paced (latency)
	// arms on a quiet machine, then all saturation arms. Calibrated
	// saturation runs churn up to maxScaled allocations each — interleaving
	// them with paced arms puts their GC and scheduler debt straight into
	// the latency tails.
	type armSpec struct {
		offered int
		run     func(offered int) (SaturationPoint, error)
	}
	var specs []armSpec
	for _, transport := range []string{"inproc", "tcp"} {
		for _, batch := range []int{1, satBatch} {
			transport, batch := transport, batch
			for _, offered := range []int{paced, 0} {
				specs = append(specs, armSpec{offered, func(offered int) (SaturationPoint, error) {
					return satArm(transport, batch, offered, n)
				}})
			}
		}
	}
	// Endpoint arms: the same paced/saturation grid through a full agent,
	// per-task ("ep-single") vs pipelined hot path ("ep-pipelined").
	for _, transport := range []string{"inproc", "tcp"} {
		for _, pipelined := range []bool{false, true} {
			transport, pipelined := transport, pipelined
			for _, offered := range []int{paced, 0} {
				specs = append(specs, armSpec{offered, func(offered int) (SaturationPoint, error) {
					return endpointArm(transport, pipelined, offered, epN)
				}})
			}
		}
	}
	// Durability arms: the same batched broker workload with the publish
	// path journaled through internal/durable's group-commit WAL vs the
	// plain in-memory broker.
	for _, journaled := range []bool{false, true} {
		journaled := journaled
		for _, offered := range []int{paced, 0} {
			specs = append(specs, armSpec{offered, func(offered int) (SaturationPoint, error) {
				return walArm(journaled, offered, walN)
			}})
		}
	}
	// Admission arms: the webservice submit front door (validation, broker
	// publish, echo agent, result processing) with per-tenant admission
	// accounting on vs off.
	admN := epN
	for _, admitted := range []bool{false, true} {
		admitted := admitted
		for _, offered := range []int{paced, 0} {
			specs = append(specs, armSpec{offered, func(offered int) (SaturationPoint, error) {
				return admissionArm(admitted, offered, admN)
			}})
		}
	}
	// Codec arms: the batched TCP workload with the binary hot-path frame
	// encoding negotiated vs the JSON encoding.
	for _, binaryOn := range []bool{false, true} {
		binaryOn := binaryOn
		for _, offered := range []int{paced, 0} {
			specs = append(specs, armSpec{offered, func(offered int) (SaturationPoint, error) {
				return codecArm(binaryOn, offered, n)
			}})
		}
	}
	// Route arms: skew-blind vs power-of-two-choices placement over the
	// simulated fleet at equal offered load. Paced by construction (the
	// point is latency under per-endpoint overload, not peak throughput).
	for _, policy := range []string{"random", "p2c"} {
		policy := policy
		specs = append(specs, armSpec{1, func(int) (SaturationPoint, error) {
			return routeArm(policy, routeFleet)
		}})
	}
	points := make([]SaturationPoint, len(specs))
	for pass := 0; pass < 2; pass++ {
		for i, s := range specs {
			if (pass == 0) != (s.offered > 0) {
				continue
			}
			pt, err := s.run(s.offered)
			if err != nil {
				return Report{}, nil, fmt.Errorf("saturation arm %d (offered=%d): %w", i, s.offered, err)
			}
			points[i] = pt
		}
	}
	res.Points = points
	sat := func(transport, mode string, batch int) float64 {
		for _, p := range res.Points {
			if p.Transport == transport && p.Mode == mode && p.Batch == batch && p.OfferedPerS == 0 {
				return p.AchievedPerS
			}
		}
		return 0
	}
	if v := sat("tcp", "unbatched", 1); v > 0 {
		res.TCPSpeedup = sat("tcp", "batched", satBatch) / v
	}
	if v := sat("inproc", "unbatched", 1); v > 0 {
		res.InprocSpeedup = sat("inproc", "batched", satBatch) / v
	}
	if v := sat("tcp", "ep-single", 1); v > 0 {
		res.TCPEndpointSpeedup = sat("tcp", "ep-pipelined", satBatch) / v
	}
	if v := sat("inproc", "ep-single", 1); v > 0 {
		res.InprocEndpointSpeedup = sat("inproc", "ep-pipelined", satBatch) / v
	}
	if v := sat("inproc", "wal-off", satBatch); v > 0 {
		res.WALCost = sat("inproc", "wal-on", satBatch) / v
	}
	if v := sat("inproc", "admit-off", satBatch); v > 0 {
		res.AdmissionCost = sat("inproc", "admit-on", satBatch) / v
	}
	if v := sat("tcp", "codec-json", satBatch); v > 0 {
		res.CodecSpeedup = sat("tcp", "codec-bin", satBatch) / v
	}
	// Route arms are paced-only; look them up by mode alone.
	routePt := func(mode string) SaturationPoint {
		for _, p := range res.Points {
			if p.Transport == "fleet" && p.Mode == mode {
				return p
			}
		}
		return SaturationPoint{}
	}
	if rnd, p2c := routePt("route-random"), routePt("route-p2c"); p2c.P99US > 0 && rnd.AchievedPerS > 0 {
		res.RouteP2CImprovement = rnd.P99US / p2c.P99US
		res.RouteP2CThroughput = p2c.AchievedPerS / rnd.AchievedPerS
	}
	// The data-plane arm measures bytes moved, not tasks/s, so it lives in
	// its own field rather than the point grid.
	bytesOff, bytesOn, err := dedupFanout(16, 1<<20)
	if err != nil {
		return Report{}, nil, fmt.Errorf("dedup fan-out arm: %w", err)
	}
	res.DedupByteReduction = float64(bytesOff) / float64(bytesOn)
	res.Notes = append(res.Notes,
		fmt.Sprintf("unbatched = one publish/ack round trip per task (before); batched = %d tasks per frame (after)", satBatch),
		"tcp arms cross the framed-TCP broker protocol; inproc arms measure the sharded queue map alone",
		"ep-single = per-task agent hot path (before); ep-pipelined = batched intake + engine batch submit + group-commit egress (after)",
		"wal-on = every publish journaled + fsynced (group commit) before enqueue; wal-off = in-memory broker",
		"admit-on = per-tenant token-bucket admission + in-flight + fairshare accounting on the submit front door; admit-off = same path, no admission",
		"codec-bin = binary hot-path frame encoding negotiated at declare/consume; codec-json = same batched TCP path on the JSON encoding",
		fmt.Sprintf("dedup fan-out: 16-way fetch of one 1MiB payload moved %d bytes without the endpoint cache, %d with it", bytesOff, bytesOn),
		fmt.Sprintf("route arms: %d simulated endpoints (2%% run 10x the 1s base service time) behind one routing group at 0.4 tasks/s/endpoint (4x a slow endpoint's capacity); route-random picks blind, route-p2c scores heartbeat load with power-of-two-choices", routeFleet),
	)

	rep := Report{
		ID:     "saturation",
		Title:  "broker saturation: wire batching vs per-task round trips",
		Header: fmt.Sprintf("%-8s %-10s %6s %10s %14s %10s %10s", "transport", "mode", "batch", "offered/s", "achieved/s", "p50(us)", "p99(us)"),
	}
	for _, p := range res.Points {
		offered := "max"
		if p.OfferedPerS > 0 {
			offered = fmt.Sprintf("%d", p.OfferedPerS)
		}
		rep.Rows = append(rep.Rows, fmt.Sprintf("%-8s %-10s %6d %10s %14.0f %10.0f %10.0f",
			p.Transport, p.Mode, p.Batch, offered, p.AchievedPerS, p.P50US, p.P99US))
	}
	rep.Notes = append(rep.Notes,
		fmt.Sprintf("tcp speedup at saturation: %.1fx batched(%d) vs unbatched", res.TCPSpeedup, satBatch),
		fmt.Sprintf("inproc speedup at saturation: %.1fx", res.InprocSpeedup),
		fmt.Sprintf("tcp endpoint speedup at saturation: %.1fx pipelined vs single", res.TCPEndpointSpeedup),
		fmt.Sprintf("inproc endpoint speedup at saturation: %.1fx", res.InprocEndpointSpeedup),
		fmt.Sprintf("wal durability cost at saturation: wal-on achieves %.0f%% of wal-off throughput", 100*res.WALCost),
		fmt.Sprintf("admission cost at saturation: admit-on achieves %.0f%% of admit-off throughput (bar: >= 95%%)", 100*res.AdmissionCost),
		fmt.Sprintf("codec speedup at saturation: %.1fx binary vs json on the batched tcp arm (bar: >= 1.2x)", res.CodecSpeedup),
		fmt.Sprintf("dedup byte reduction: %.1fx fewer bytes moved for a 16-way fan-out of identical input (bar: >= 5x)", res.DedupByteReduction),
		fmt.Sprintf("route p99 improvement over %d simulated endpoints: p2c p99 is %.1fx better than random at equal offered load (bar: >= 2x)", routeFleet, res.RouteP2CImprovement),
		fmt.Sprintf("route throughput ratio: p2c achieves %.2fx random's tasks/s (bar: >= 1x)", res.RouteP2CThroughput))
	return rep, res, nil
}

// satArm runs one measurement: n 64-byte messages through a fresh broker,
// acked as they arrive, with publish-to-consume latency sampled from a
// timestamp embedded in each body.
func satArm(transport string, batch, offered, n int) (SaturationPoint, error) {
	b := broker.New()
	const queue = "sat"
	if err := b.Declare(queue); err != nil {
		return SaturationPoint{}, err
	}

	var conn broker.Conn
	switch transport {
	case "inproc":
		conn = broker.LocalConn(b)
	case "tcp":
		srv, err := broker.Serve(b, "127.0.0.1:0")
		if err != nil {
			return SaturationPoint{}, err
		}
		defer srv.Close()
		var bc *broker.Client
		if batch > 1 {
			bc, err = broker.DialBatched(srv.Addr(), broker.BatchConfig{MaxBatch: batch})
		} else {
			bc, err = broker.Dial(srv.Addr())
		}
		if err != nil {
			return SaturationPoint{}, err
		}
		defer bc.Close()
		conn = bc.AsConn()
	default:
		return SaturationPoint{}, fmt.Errorf("unknown transport %q", transport)
	}

	mode := "unbatched"
	if batch > 1 {
		mode = "batched"
	}
	return runArm(conn, queue, transport, mode, batch, offered, n)
}

// walArm measures the durability tax: the batched in-process workload with
// the broker journaling every publish through a group-commit WAL (and the
// whole journal thrown away afterwards) vs the plain in-memory broker.
func walArm(journaled bool, offered, n int) (SaturationPoint, error) {
	const queue = "sat"
	mode := "wal-off"
	b := broker.New()
	if journaled {
		mode = "wal-on"
		dir, err := os.MkdirTemp("", "gc-walbench-*")
		if err != nil {
			return SaturationPoint{}, err
		}
		defer os.RemoveAll(dir)
		bl, err := durable.OpenBroker(durable.BrokerOptions{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			return SaturationPoint{}, err
		}
		defer bl.Close()
		b = bl.B
	}
	if err := b.Declare(queue); err != nil {
		return SaturationPoint{}, err
	}
	return runArm(broker.LocalConn(b), queue, "inproc", mode, satBatch, offered, n)
}

// satMinMeasure is the floor on a saturation arm's measurement window. A
// few thousand tasks through the fast arms finish in single-digit
// milliseconds — a burst dominated by channel buffering and scheduler
// noise, ±40% run to run. Saturation arms that finish faster than this are
// re-measured testing.B-style with the task count scaled to the observed
// rate, so the recorded number is sustained throughput.
const satMinMeasure = 400 * time.Millisecond

// runArm drives n 64-byte messages through conn at the given offered load,
// acking as they arrive, with publish-to-consume latency sampled from a
// timestamp embedded in each body. Saturation runs shorter than
// satMinMeasure are calibrated and re-measured.
func runArm(conn broker.Conn, queue, transport, mode string, batch, offered, n int) (SaturationPoint, error) {
	// Arms must be heap-independent: a calibrated saturation arm churns up
	// to maxScaled message allocations, and the garbage would otherwise
	// show up as GC pauses in the next arm's latency tail.
	runtime.GC()
	prefetch := 2 * batch
	if prefetch < 64 {
		prefetch = 64
	}
	sub, err := conn.Subscribe(queue, prefetch)
	if err != nil {
		return SaturationPoint{}, err
	}
	defer sub.Cancel()

	pt, elapsed, err := measureArm(conn, sub, queue, transport, mode, batch, offered, n)
	if err != nil || offered > 0 || elapsed >= satMinMeasure {
		return pt, err
	}
	scaled := int(pt.AchievedPerS * satMinMeasure.Seconds())
	const maxScaled = 1_500_000
	if scaled > maxScaled {
		scaled = maxScaled
	}
	if scaled <= n {
		return pt, nil
	}
	pt, _, err = measureArm(conn, sub, queue, transport, mode, batch, offered, scaled)
	return pt, err
}

func measureArm(conn broker.Conn, sub broker.Subscription, queue, transport, mode string, batch, offered, n int) (SaturationPoint, time.Duration, error) {
	latencies := make([]time.Duration, 0, n)
	consumed := make(chan struct{})
	go func() {
		defer close(consumed)
		tags := make([]uint64, 0, batch)
		for m := range sub.Messages() {
			ts := int64(binary.BigEndian.Uint64(m.Body[:8]))
			latencies = append(latencies, time.Since(time.Unix(0, ts)))
			tags = append(tags, m.Tag)
			if len(tags) >= batch || len(latencies) == n {
				_ = broker.AckBatchOn(sub, tags)
				tags = tags[:0]
			}
			if len(latencies) == n {
				return
			}
		}
	}()

	stamp := func() []byte {
		body := make([]byte, 64)
		binary.BigEndian.PutUint64(body[:8], uint64(time.Now().UnixNano()))
		return body
	}
	// pace sleeps so message i is offered at start + i/offered.
	start := time.Now()
	pace := func(i int) {
		if offered <= 0 {
			return
		}
		due := start.Add(time.Duration(i) * time.Second / time.Duration(offered))
		if d := time.Until(due); d > 0 {
			time.Sleep(d)
		}
	}
	if batch <= 1 {
		for i := 0; i < n; i++ {
			pace(i)
			if err := conn.Publish(queue, stamp()); err != nil {
				return SaturationPoint{}, 0, err
			}
		}
	} else {
		for i := 0; i < n; i += batch {
			pace(i)
			k := batch
			if n-i < k {
				k = n - i
			}
			bodies := make([][]byte, k)
			for j := range bodies {
				bodies[j] = stamp()
			}
			if err := broker.PublishBatchOn(conn, queue, bodies, nil); err != nil {
				return SaturationPoint{}, 0, err
			}
		}
	}
	select {
	case <-consumed:
	case <-time.After(60 * time.Second):
		return SaturationPoint{}, 0, fmt.Errorf("timed out after %d/%d tasks", len(latencies), n)
	}
	elapsed := time.Since(start)

	return SaturationPoint{
		Transport:    transport,
		Mode:         mode,
		Batch:        batch,
		OfferedPerS:  offered,
		Tasks:        n,
		AchievedPerS: float64(n) / elapsed.Seconds(),
		P50US:        percentileUS(latencies, 0.50),
		P99US:        percentileUS(latencies, 0.99),
	}, elapsed, nil
}

// percentileUS returns the p-th percentile of ds in microseconds.
func percentileUS(ds []time.Duration, p float64) float64 {
	if len(ds) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Microseconds())
}
