package experiments

import (
	"fmt"
	"strings"
	"time"

	"globuscompute/internal/mpiengine"
	"globuscompute/internal/mpisim"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/workload"
)

// MPIHostname reproduces Listings 6 and 7: an MPIFunction running
// `hostname` on 2 nodes with 1 and 2 ranks per node, printing the per-rank
// host lines.
func MPIHostname() (Report, error) {
	r := Report{
		ID:    "mpi-hostname",
		Title: "MPIFunction hostname across nodes (Listings 6/7)",
	}
	sched, err := scheduler.New(scheduler.Config{
		Partitions: []scheduler.Partition{{Name: "default", Nodes: []string{"exp-14-08", "exp-14-20"}}},
		Backfill:   true,
	})
	if err != nil {
		return r, err
	}
	defer sched.Close()
	prov, err := provider.NewBatch(provider.BatchConfig{Scheduler: sched, Partition: "default", NodesPerBlock: 2})
	if err != nil {
		return r, err
	}
	eng, err := mpiengine.New(mpiengine.Config{Provider: prov})
	if err != nil {
		return r, err
	}
	if err := eng.Start(); err != nil {
		return r, err
	}
	defer eng.Stop()

	for n := 1; n <= 2; n++ {
		payload, err := protocol.EncodePayload(protocol.ShellSpec{Command: "echo $GC_NODE"})
		if err != nil {
			return r, err
		}
		task := protocol.Task{
			ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
			Resources: protocol.ResourceSpec{NumNodes: 2, RanksPerNode: n},
		}
		if err := eng.Submit(task); err != nil {
			return r, err
		}
		select {
		case res := <-eng.Results():
			var sr protocol.ShellResult
			if err := protocol.DecodePayload(res.Output, &sr); err != nil {
				return r, err
			}
			r.Rows = append(r.Rows, fmt.Sprintf("n=%d", n))
			lines := strings.Split(sr.Stdout, "\n")
			// Listing 7 shows sorted host lines.
			for _, h := range sortedCopy(lines) {
				r.Rows = append(r.Rows, h)
			}
		case <-time.After(60 * time.Second):
			return r, fmt.Errorf("mpi-hostname: no result for n=%d", n)
		}
	}
	r.Notes = append(r.Notes,
		"matches Listing 7: 2 host lines for 1 rank/node, 4 (2 per host) for 2 ranks/node",
		"GC_NODE is the simulated-launcher hostname equivalent (see DESIGN.md)")
	return r, nil
}

func sortedCopy(in []string) []string {
	out := append([]string(nil), in...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// PackingResult is one arm of the MPI packing experiment.
type PackingResult struct {
	Mode        string
	Apps        int
	Makespan    time.Duration
	Utilization float64
}

// MPIPacking measures the GlobusMPIEngine's dynamic partitioning (T5):
// a stream of mixed-width MPI applications on one batch block, comparing
// concurrent packing (FIFO and smallest-first) against the serial
// one-app-at-a-time baseline the paper's §III-C motivates, reporting
// makespan and node utilization.
func MPIPacking(apps, blockNodes int, seed int64) (Report, error) {
	r := Report{
		ID:     "mpi-packing",
		Title:  fmt.Sprintf("Concurrent MPI apps in one batch job (%d apps, %d-node block)", apps, blockNodes),
		Header: "mode,apps,makespan_ms,node_utilization",
	}
	specs := workload.MPISpecs(seed, apps, blockNodes)
	// Total node-milliseconds of useful work, for utilization.
	var workNodeMS float64
	for _, s := range specs {
		workNodeMS += float64(s.Nodes) * s.DurationMS
	}

	run := func(strategy mpiengine.Strategy, serial bool) (PackingResult, error) {
		sched := scheduler.SimpleCluster(blockNodes)
		defer sched.Close()
		prov, err := provider.NewBatch(provider.BatchConfig{
			Scheduler: sched, Partition: "default", NodesPerBlock: blockNodes,
		})
		if err != nil {
			return PackingResult{}, err
		}
		eng, err := mpiengine.New(mpiengine.Config{Provider: prov, Strategy: strategy})
		if err != nil {
			return PackingResult{}, err
		}
		if err := eng.Start(); err != nil {
			return PackingResult{}, err
		}
		defer eng.Stop()

		start := time.Now()
		submit := func(s workload.MPISpec) error {
			payload, err := protocol.EncodePayload(protocol.ShellSpec{
				Command: fmt.Sprintf("sleep %.3f", s.DurationMS/1000),
			})
			if err != nil {
				return err
			}
			return eng.Submit(protocol.Task{
				ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
				Resources: protocol.ResourceSpec{NumNodes: s.Nodes, RanksPerNode: s.RanksPerNode},
			})
		}
		if serial {
			// Baseline: wait for each app before submitting the next
			// (one endpoint/batch job per app configuration, as users did
			// before the MPI engine existed).
			for _, s := range specs {
				if err := submit(s); err != nil {
					return PackingResult{}, err
				}
				select {
				case <-eng.Results():
				case <-time.After(120 * time.Second):
					return PackingResult{}, fmt.Errorf("serial arm stalled")
				}
			}
		} else {
			for _, s := range specs {
				if err := submit(s); err != nil {
					return PackingResult{}, err
				}
			}
			for i := 0; i < apps; i++ {
				select {
				case <-eng.Results():
				case <-time.After(120 * time.Second):
					return PackingResult{}, fmt.Errorf("packed arm stalled at %d/%d", i, apps)
				}
			}
		}
		makespan := time.Since(start)
		util := workNodeMS / (float64(blockNodes) * float64(makespan.Milliseconds()))
		return PackingResult{Makespan: makespan, Utilization: util}, nil
	}

	arms := []struct {
		label    string
		strategy mpiengine.Strategy
		serial   bool
	}{
		{"serial-baseline", mpiengine.FIFO, true},
		{"packed-fifo", mpiengine.FIFO, false},
		{"packed-smallest-first", mpiengine.SmallestFirst, false},
	}
	results := map[string]PackingResult{}
	for _, arm := range arms {
		res, err := run(arm.strategy, arm.serial)
		if err != nil {
			return r, fmt.Errorf("%s: %w", arm.label, err)
		}
		res.Mode = arm.label
		res.Apps = apps
		results[arm.label] = res
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%d,%.0f,%.2f",
			arm.label, apps, float64(res.Makespan.Microseconds())/1000, res.Utilization))
	}
	speedup := float64(results["serial-baseline"].Makespan) / float64(results["packed-fifo"].Makespan)
	r.Notes = append(r.Notes,
		fmt.Sprintf("dynamic partitioning speeds up the mixed stream %.1fx over serial execution", speedup),
		"paper §III-C: the runtime \"must be capable of executing multiple MPI applications with varied requirements concurrently within a single batch job\"")
	return r, nil
}

// MPIStrategies is the A2 ablation: partitioner queue orders under a
// contended stream.
func MPIStrategies(apps, blockNodes int, seed int64) (Report, error) {
	r := Report{
		ID:     "mpi-strategies",
		Title:  fmt.Sprintf("MPI partitioner strategy ablation (%d apps, %d nodes)", apps, blockNodes),
		Header: "strategy,makespan_ms,mean_wait_ms",
	}
	specs := workload.MPISpecs(seed, apps, blockNodes)
	for _, strategy := range []mpiengine.Strategy{mpiengine.FIFO, mpiengine.SmallestFirst, mpiengine.LargestFirst} {
		sched := scheduler.SimpleCluster(blockNodes)
		prov, err := provider.NewBatch(provider.BatchConfig{
			Scheduler: sched, Partition: "default", NodesPerBlock: blockNodes,
		})
		if err != nil {
			sched.Close()
			return r, err
		}
		eng, err := mpiengine.New(mpiengine.Config{Provider: prov, Strategy: strategy})
		if err != nil {
			sched.Close()
			return r, err
		}
		if err := eng.Start(); err != nil {
			sched.Close()
			return r, err
		}
		start := time.Now()
		for _, s := range specs {
			payload, _ := protocol.EncodePayload(protocol.ShellSpec{
				Command: fmt.Sprintf("sleep %.3f", s.DurationMS/1000),
			})
			if err := eng.Submit(protocol.Task{
				ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
				Resources: protocol.ResourceSpec{NumNodes: s.Nodes, RanksPerNode: 1},
			}); err != nil {
				eng.Stop()
				sched.Close()
				return r, err
			}
		}
		var totalWaitMS float64
		for i := 0; i < apps; i++ {
			select {
			case res := <-eng.Results():
				totalWaitMS += float64(res.Started.Sub(start).Milliseconds())
			case <-time.After(120 * time.Second):
				eng.Stop()
				sched.Close()
				return r, fmt.Errorf("strategy %s stalled", strategy)
			}
		}
		makespan := time.Since(start)
		eng.Stop()
		sched.Close()
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%.0f,%.0f",
			strategy, float64(makespan.Microseconds())/1000, totalWaitMS/float64(apps)))
	}
	r.Notes = append(r.Notes,
		"smallest-first packs narrow apps into gaps (lower mean wait); FIFO preserves fairness; largest-first favors wide apps")
	return r, nil
}

// BuildPrefixDemo shows the $PARSL_MPI_PREFIX resolution for the report.
func BuildPrefixDemo() Report {
	r := Report{
		ID:     "mpi-prefix",
		Title:  "MPI launcher prefix resolution ($PARSL_MPI_PREFIX)",
		Header: "launcher,ranks,nodes,prefix",
	}
	for _, launcher := range []string{"mpiexec", "srun"} {
		p := mpisim.BuildPrefix(launcher, 4, []string{"node-000", "node-001"})
		r.Rows = append(r.Rows, fmt.Sprintf("%s,4,2,%q", launcher, p))
	}
	return r
}
