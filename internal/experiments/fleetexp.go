package experiments

import (
	"fmt"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/fleet"
	"globuscompute/internal/sdk"
)

// Fleet reproduces the §VI Delta/GreenFaaS pattern: tasks routed across a
// heterogeneous fleet (a fast high-power endpoint and a slow low-power one)
// under three policies, reporting makespan, routing distribution, and
// estimated energy.
func Fleet(rounds int) (Report, error) {
	r := Report{
		ID:     "fleet",
		Title:  fmt.Sprintf("Delta/GreenFaaS-style routing over a heterogeneous fleet (%d rounds x 4 tasks)", rounds),
		Header: "policy,makespan_ms,to_fast,to_slow,energy_fast_J,energy_slow_J",
	}
	for _, policy := range []fleet.Policy{fleet.RoundRobin, fleet.Fastest, fleet.Greenest} {
		e, err := newEnv(4)
		if err != nil {
			return r, err
		}
		makeTarget := func(name string, workers int, watts float64) (*fleet.Target, error) {
			epID, err := e.tb.StartEndpoint(core.EndpointOptions{
				Name: name, Owner: "fleet", Workers: workers, MaxBlocks: 1,
			})
			if err != nil {
				return nil, err
			}
			ex, err := e.executor(epID)
			if err != nil {
				return nil, err
			}
			return &fleet.Target{Name: name, Endpoint: epID, Executor: ex, PowerWatts: watts}, nil
		}
		fast, err := makeTarget("fast", 8, 400)
		if err != nil {
			e.close()
			return r, err
		}
		slow, err := makeTarget("slow", 1, 50)
		if err != nil {
			e.close()
			return r, err
		}
		sched, err := fleet.NewScheduler(policy, []*fleet.Target{fast, slow})
		if err != nil {
			e.close()
			return r, err
		}
		sf := sdk.NewShellFunction("sleep 0.03")
		start := time.Now()
		for i := 0; i < rounds; i++ {
			var futs []*sdk.Future
			for j := 0; j < 4; j++ {
				fut, _, err := sched.SubmitShell(sf, nil)
				if err != nil {
					e.close()
					return r, err
				}
				futs = append(futs, fut)
			}
			if err := waitAll(futs, 60*time.Second); err != nil {
				e.close()
				return r, err
			}
		}
		makespan := time.Since(start)
		routed := sched.Routed()
		energy := sched.EstimatedEnergy(sf.Command)
		r.Rows = append(r.Rows, fmt.Sprintf("%s,%.0f,%d,%d,%.2f,%.2f",
			policy, float64(makespan.Microseconds())/1000,
			routed["fast"], routed["slow"], energy["fast"], energy["slow"]))
		fast.Executor.Close()
		slow.Executor.Close()
		e.close()
	}
	r.Notes = append(r.Notes,
		"fastest (Delta) routes load to the high-capacity endpoint; greenest (GreenFaaS) trades latency for the low-power endpoint when its energy is lower",
		"both exploit profiles learned online from observed time-to-result")
	return r, nil
}
