// Package experiments implements the reproduction harness: one function per
// paper artifact (figures, listings, and quantitative claims — see
// DESIGN.md's per-experiment index). Each experiment assembles a testbed,
// drives the workload, and returns a printable Report; the gc-bench command
// prints them and bench_test.go measures them.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/idmap"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/trace"
)

// Report is a printable experiment result.
type Report struct {
	ID    string
	Title string
	// Header describes the columns of Rows (optional).
	Header string
	Rows   []string
	// Notes carries paper-vs-measured commentary.
	Notes []string
}

// String renders the report.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Header != "" {
		fmt.Fprintln(&b, r.Header)
	}
	for _, row := range r.Rows {
		fmt.Fprintln(&b, row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "# %s\n", n)
	}
	return b.String()
}

// env is a booted testbed plus client-side plumbing shared by experiments.
type env struct {
	tb     *core.Testbed
	client *sdk.Client
	conn   broker.Conn
	dial   *broker.Client
	objs   *objectstore.Client
}

func newEnv(clusterNodes int) (*env, error) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: clusterNodes})
	if err != nil {
		return nil, err
	}
	tok, err := tb.IssueToken("bench@uchicago.edu", "uchicago")
	if err != nil {
		tb.Close()
		return nil, err
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		tb.Close()
		return nil, err
	}
	return &env{
		tb:     tb,
		client: sdk.NewClient(tb.ServiceAddr(), tok.Value),
		conn:   bc.AsConn(),
		dial:   bc,
		objs:   objectstore.NewClient(tb.ObjectsSrv.Addr()),
	}, nil
}

func (e *env) close() {
	e.dial.Close()
	e.tb.Close()
}

func (e *env) executor(ep protocol.UUID) (*sdk.Executor, error) {
	return sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: ep, Conn: e.conn, Objects: e.objs,
		Tracer: trace.NewTracer("sdk", e.tb.Traces),
	})
}

func uchicagoMapper() idmap.Mapper {
	m, err := idmap.NewExpressionMapper([]idmap.Rule{{
		Match: `(.*)@uchicago\.edu`, Output: "{0}",
	}})
	if err != nil {
		panic(err)
	}
	return m
}

// waitAll resolves a set of futures, returning the wall time from start.
func waitAll(futs []*sdk.Future, timeout time.Duration) error {
	for i, f := range futs {
		if _, err := f.ResultWithin(timeout); err != nil {
			return fmt.Errorf("future %d: %w", i, err)
		}
	}
	return nil
}

// shellResultWithin bounds a ShellResult wait.
func shellResultWithin(f *sdk.Future, d time.Duration) (protocol.ShellResult, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return f.ShellResult(ctx)
}
