package experiments

import (
	"strings"
	"testing"
)

func TestFig2Report(t *testing.T) {
	r := Fig2(1, false)
	if len(r.Rows) < 20 {
		t.Errorf("monthly rows = %d", len(r.Rows))
	}
	full := Fig2(1, true)
	if len(full.Rows) < 600 {
		t.Errorf("daily rows = %d", len(full.Rows))
	}
	if !strings.Contains(r.String(), "fig2") {
		t.Error("report string missing ID")
	}
}

func TestFig1Report(t *testing.T) {
	r, err := Fig1()
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 4 {
		t.Errorf("event rows = %d, want 4", len(r.Rows))
	}
	joined := strings.Join(r.Rows, "\n")
	if !strings.Contains(joined, "running as bench") {
		t.Errorf("task did not run under the mapped user:\n%s", joined)
	}
}

func TestUsageReport(t *testing.T) {
	r, err := Usage(1)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Rows, "\n")
	for _, want := range []string{"12418", "spawned user endpoints,1718,1718", "13.8%"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestStreamingReport(t *testing.T) {
	r, err := Streaming(20)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 5 {
		t.Errorf("rows = %d", len(r.Rows))
	}
	// Streaming uses far fewer REST requests than any polling arm.
	if !strings.HasPrefix(r.Rows[0], "streaming,") {
		t.Errorf("first row = %q", r.Rows[0])
	}
}

func TestBatchingReport(t *testing.T) {
	r, err := Batching(30)
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Rows, "\n")
	if !strings.Contains(joined, "batched(5ms window),30") {
		t.Errorf("rows:\n%s", joined)
	}
}

func TestWalltimeReport(t *testing.T) {
	r, err := Walltime()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Rows[0], ",124,") {
		t.Errorf("rc 124 missing: %q", r.Rows[0])
	}
	if !strings.Contains(r.Rows[1], ",0,") {
		t.Errorf("control rc 0 missing: %q", r.Rows[1])
	}
}

func TestSandboxReport(t *testing.T) {
	r, err := Sandbox(4)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(r.Rows[0], "sandboxed,4,4,4") {
		t.Errorf("sandboxed row = %q", r.Rows[0])
	}
}

func TestMPIHostnameReport(t *testing.T) {
	r, err := MPIHostname()
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Rows, "\n")
	// Listing 7 shape: headers plus 2 + 4 host lines.
	if strings.Count(joined, "exp-14-08") != 3 || strings.Count(joined, "exp-14-20") != 3 {
		t.Errorf("host lines wrong:\n%s", joined)
	}
}

func TestMPIPackingReport(t *testing.T) {
	r, err := MPIPacking(8, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Errorf("rows = %d", len(r.Rows))
	}
	if !strings.Contains(strings.Join(r.Notes, " "), "speeds up") {
		t.Errorf("notes = %v", r.Notes)
	}
}

func TestMEPReuseReport(t *testing.T) {
	r, err := MEPReuse(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 {
		t.Errorf("rows = %d, want 6", len(r.Rows))
	}
}

func TestProxyStoreReport(t *testing.T) {
	r, err := ProxyStore([]int{1 << 10, 11 << 20})
	if err != nil {
		t.Fatal(err)
	}
	joined := strings.Join(r.Rows, "\n")
	if !strings.Contains(joined, "rejected") {
		t.Errorf("over-limit payload not rejected:\n%s", joined)
	}
}

func TestBuildPrefixDemo(t *testing.T) {
	r := BuildPrefixDemo()
	if len(r.Rows) != 2 {
		t.Errorf("rows = %d", len(r.Rows))
	}
}
