package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/metrics"
	"globuscompute/internal/sdk"
	"globuscompute/internal/trace"
)

// latencyStageOrder lists the lifecycle stages in pipeline order, so the
// report reads top-to-bottom as a task's journey through the system. Stages
// not in this list (if instrumentation grows) are appended alphabetically.
var latencyStageOrder = []string{
	"sdk.submit",
	"submit",
	"broker.deliver[tasks]",
	"endpoint.dispatch",
	"engine.queue",
	"engine.execute",
	"broker.deliver[results]",
	"result.process",
	"broker.deliver[results.group]",
	"sdk.resolve",
}

// Latency decomposes end-to-end task latency into its pipeline segments —
// the funcX-style breakdown behind the paper's efficiency claims. Unlike a
// timer-based harness, the breakdown is derived from the distributed trace
// each task leaves behind: every stage (SDK submit, service validation,
// broker transit, endpoint dispatch, engine queue and execution, result
// processing, stream resolution) is a real recorded span, aggregated across
// tasks per stage label.
func Latency(n int) (Report, error) {
	r := Report{
		ID:     "latency",
		Title:  fmt.Sprintf("End-to-end latency breakdown from task traces (%d no-op tasks)", n),
		Header: "stage,p50_ms,p95_ms,max_ms",
	}
	e, err := newEnv(2)
	if err != nil {
		return r, err
	}
	defer e.close()
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "lat-ep", Owner: "bench", Workers: 4})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()

	total := metrics.NewHistogram(0)
	var ids []trace.TraceID

	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		submitAt := time.Now()
		fut, err := ex.Submit(fn, i)
		if err != nil {
			return r, err
		}
		res, err := fut.Raw(ctx)
		if err != nil {
			return r, err
		}
		total.Observe(time.Since(submitAt))
		if res.Trace.Valid() {
			ids = append(ids, res.Trace.TraceID)
		}
	}
	if len(ids) == 0 {
		return r, fmt.Errorf("latency: no results carried trace context")
	}
	// The sdk.resolve span ends just after the future resolves; give the
	// final spans a moment to land in the collector before reading it.
	waitForStage(e.tb.Traces, ids, "sdk.resolve", 2*time.Second)

	stages := make(map[string]*metrics.Histogram)
	unattributed := metrics.NewHistogram(0)
	analyzed := 0
	for _, id := range ids {
		spans := e.tb.Traces.Trace(id)
		sum, err := trace.Analyze(spans)
		if err != nil {
			continue
		}
		analyzed++
		for _, s := range spans {
			label := trace.StageLabel(s)
			h := stages[label]
			if h == nil {
				h = metrics.NewHistogram(0)
				stages[label] = h
			}
			h.Observe(s.Duration())
		}
		unattributed.Observe(sum.Unattributed)
	}
	if analyzed == 0 {
		return r, fmt.Errorf("latency: no traces could be analyzed")
	}

	row := func(name string, h *metrics.Histogram) string {
		st := h.Stats()
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		return fmt.Sprintf("%s,%.2f,%.2f,%.2f", name, ms(st.P50), ms(st.P95), ms(st.Max))
	}
	emitted := make(map[string]bool, len(stages))
	for _, name := range latencyStageOrder {
		if h, ok := stages[name]; ok {
			r.Rows = append(r.Rows, row(name, h))
			emitted[name] = true
		}
	}
	var rest []string
	for name := range stages {
		if !emitted[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		r.Rows = append(r.Rows, row(name, stages[name]))
	}
	r.Rows = append(r.Rows,
		row("unattributed", unattributed),
		row("total (client-observed)", total),
	)
	r.Notes = append(r.Notes,
		fmt.Sprintf("stages derived from %d/%d task traces (one span per stage per task)", analyzed, len(ids)),
		"broker.deliver[*] is queue transit (enqueue -> consumer delivery) per queue class",
		"engine.queue is backlog wait (submit -> dispatch); engine.execute is worker wall time",
		"unattributed is critical-path dead time no span accounts for",
	)
	return r, nil
}

// waitForStage polls the collector until every listed trace contains a span
// with the given name, or the timeout elapses (best effort: stragglers just
// analyze without that stage).
func waitForStage(c *trace.Collector, ids []trace.TraceID, stage string, timeout time.Duration) {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		done := true
	scan:
		for _, id := range ids {
			for _, s := range c.Trace(id) {
				if s.Name == stage {
					continue scan
				}
			}
			done = false
			break
		}
		if done {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}
