package experiments

import (
	"context"
	"fmt"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/metrics"
	"globuscompute/internal/sdk"
)

// Latency decomposes end-to-end task latency into its pipeline segments —
// the funcX-style breakdown behind the paper's efficiency claims: time from
// submission to worker start (service + queue + dispatch), execution, and
// result return (worker -> broker -> result processor -> stream -> client).
func Latency(n int) (Report, error) {
	r := Report{
		ID:     "latency",
		Title:  fmt.Sprintf("End-to-end latency breakdown (%d no-op tasks)", n),
		Header: "segment,p50_ms,p95_ms,max_ms",
	}
	e, err := newEnv(2)
	if err != nil {
		return r, err
	}
	defer e.close()
	epID, err := e.tb.StartEndpoint(core.EndpointOptions{Name: "lat-ep", Owner: "bench", Workers: 4})
	if err != nil {
		return r, err
	}
	ex, err := e.executor(epID)
	if err != nil {
		return r, err
	}
	defer ex.Close()

	toStart := metrics.NewHistogram(0)   // submit -> worker start
	execution := metrics.NewHistogram(0) // worker execution
	toResult := metrics.NewHistogram(0)  // worker completion -> client future
	total := metrics.NewHistogram(0)

	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	for i := 0; i < n; i++ {
		submitAt := time.Now()
		fut, err := ex.Submit(fn, i)
		if err != nil {
			return r, err
		}
		res, err := fut.Raw(ctx)
		if err != nil {
			return r, err
		}
		doneAt := time.Now()
		total.Observe(doneAt.Sub(submitAt))
		if !res.Started.IsZero() {
			toStart.Observe(res.Started.Sub(submitAt))
			toResult.Observe(doneAt.Sub(res.Completed))
		}
		execution.Observe(time.Duration(res.ExecutionMS * float64(time.Millisecond)))
	}

	row := func(name string, h *metrics.Histogram) string {
		ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
		return fmt.Sprintf("%s,%.2f,%.2f,%.2f",
			name, ms(h.Percentile(50)), ms(h.Percentile(95)), ms(h.Max()))
	}
	r.Rows = append(r.Rows,
		row("submit->worker-start", toStart),
		row("execution", execution),
		row("result-return", toResult),
		row("total", total),
	)
	r.Notes = append(r.Notes,
		"submit->start covers REST batching, service validation, queue transit, and dispatch",
		"result-return covers worker publish, result processor, group-queue stream, and future resolution")
	return r, nil
}
