// Data-plane arm: the PR-8 pass-by-reference fan-out measurement. One large
// content-addressed payload is fanned out to many tasks on one endpoint;
// without the endpoint dedup cache every task fetches the object over HTTP,
// with it the object crosses the wire once and the LRU serves the rest.
// Bytes moved are read from the object store server's egress counter, so
// the reduction is measured where the network cost actually accrues.
package experiments

import (
	"bytes"
	"fmt"

	"globuscompute/internal/objectstore"
)

// dedupFanout returns server egress bytes for a fanout-way fetch of one
// payloadBytes-sized object, without and with the endpoint dedup cache.
func dedupFanout(fanout, payloadBytes int) (bytesOff, bytesOn int64, err error) {
	s := objectstore.New()
	srv, err := objectstore.ServeHTTP(s, "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	defer srv.Close()
	c := objectstore.NewClient(srv.Addr())

	payload := bytes.Repeat([]byte("fanout-payload-"), payloadBytes/15+1)[:payloadBytes]
	key, err := c.PutContent(payload)
	if err != nil {
		return 0, 0, err
	}

	egress := s.Metrics.Counter("egress_bytes")

	// Dedup off: every fan-out task resolves the reference over the wire.
	before := egress.Value()
	for i := 0; i < fanout; i++ {
		if _, err := c.Get(key); err != nil {
			return 0, 0, err
		}
	}
	bytesOff = egress.Value() - before

	// Dedup on: the bounded LRU in front of the client (exactly how
	// gc-endpoint wires it) absorbs the repeated fetches.
	cache := objectstore.NewDedupCache(c, int64(2*payloadBytes))
	before = egress.Value()
	for i := 0; i < fanout; i++ {
		if _, err := cache.Get(key); err != nil {
			return 0, 0, err
		}
	}
	bytesOn = egress.Value() - before
	if bytesOn <= 0 {
		return 0, 0, fmt.Errorf("dedup-on arm moved %d bytes (want > 0)", bytesOn)
	}
	return bytesOff, bytesOn, nil
}
