package workload

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestFig2TraceCoversWindow(t *testing.T) {
	trace := Fig2Trace(Fig2Config{Seed: 1})
	if len(trace) == 0 {
		t.Fatal("empty trace")
	}
	if !trace[0].Date.Equal(Fig2Start) {
		t.Errorf("start = %v", trace[0].Date)
	}
	if !trace[len(trace)-1].Date.Equal(Fig2End) {
		t.Errorf("end = %v", trace[len(trace)-1].Date)
	}
	wantDays := int(Fig2End.Sub(Fig2Start).Hours()/24) + 1
	if len(trace) != wantDays {
		t.Errorf("days = %d, want %d", len(trace), wantDays)
	}
	// Consecutive dates.
	for i := 1; i < len(trace); i++ {
		if trace[i].Date.Sub(trace[i-1].Date) != 24*time.Hour {
			t.Fatalf("gap at %d", i)
		}
	}
}

func TestFig2TraceShape(t *testing.T) {
	trace := Fig2Trace(Fig2Config{Seed: 42})
	s := Summarize(trace)
	// The executed total is calibrated to ~17M; the displayed total is
	// lower because bursts are clipped.
	if s.RawTotal < 16_500_000 || s.RawTotal > 17_500_000 {
		t.Errorf("raw total = %d, want ~17M", s.RawTotal)
	}
	if s.Total >= s.RawTotal {
		t.Errorf("displayed total %d not reduced by truncation (raw %d)", s.Total, s.RawTotal)
	}
	if s.Total < s.RawTotal/4 {
		t.Errorf("truncation removed too much: displayed %d of raw %d", s.Total, s.RawTotal)
	}
	// No day exceeds the truncation cap.
	if s.Peak > Fig2Truncation {
		t.Errorf("peak = %d exceeds cap", s.Peak)
	}
	// Some bursts must clip (the figure visibly saturates).
	if s.TruncatedDays == 0 {
		t.Error("no truncated days; bursts missing")
	}
	// Growth: the second half of the window carries more traffic.
	if s.SecondHalfMean <= s.FirstHalfMean {
		t.Errorf("no growth: first=%f second=%f", s.FirstHalfMean, s.SecondHalfMean)
	}
	if s.SecondHalfMean < 1.5*s.FirstHalfMean {
		t.Errorf("growth too weak: first=%f second=%f", s.FirstHalfMean, s.SecondHalfMean)
	}
}

func TestFig2TraceDeterministic(t *testing.T) {
	a := Fig2Trace(Fig2Config{Seed: 7})
	b := Fig2Trace(Fig2Config{Seed: 7})
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at day %d", i)
		}
	}
	c := Fig2Trace(Fig2Config{Seed: 8})
	same := true
	for i := range a {
		if a[i].Tasks != c[i].Tasks {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestFig2CustomCalibration(t *testing.T) {
	trace := Fig2Trace(Fig2Config{
		Seed: 1, TotalTasks: 100_000,
		Start: time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2024, 1, 31, 0, 0, 0, 0, time.UTC),
	})
	if len(trace) != 31 {
		t.Errorf("days = %d", len(trace))
	}
	s := Summarize(trace)
	if s.RawTotal < 95_000 || s.RawTotal > 105_000 {
		t.Errorf("raw total = %d, want ~100k", s.RawTotal)
	}
}

func TestDeploymentMatchesPaperAggregates(t *testing.T) {
	d := GenerateDeployment(3)
	if got := d.TotalEndpoints(); got != DeployTotalEndpoints {
		t.Errorf("total endpoints = %d, want %d", got, DeployTotalEndpoints)
	}
	if got := len(d.UEPsPerMEP); got != DeployMEPs {
		t.Errorf("MEPs = %d, want %d", got, DeployMEPs)
	}
	if got := d.TotalUEPs(); got != DeployUEPs {
		t.Errorf("UEPs = %d, want %d", got, DeployUEPs)
	}
	// The paper reports "more than 13%" of endpoints were spawned UEPs.
	frac := d.UEPFraction()
	if frac < 0.13 || frac > 0.15 {
		t.Errorf("UEP fraction = %f, want ~0.138", frac)
	}
	// Every MEP spawned at least one endpoint; distribution heavy-tailed.
	max, min := 0, 1<<30
	for _, n := range d.UEPsPerMEP {
		if n < 1 {
			t.Fatalf("MEP with %d UEPs", n)
		}
		if n > max {
			max = n
		}
		if n < min {
			min = n
		}
	}
	if max < 5*min {
		t.Errorf("distribution not heavy-tailed: max=%d min=%d", max, min)
	}
}

func TestPoissonArrivals(t *testing.T) {
	arr := PoissonArrivals(ArrivalConfig{Seed: 1, Count: 1000, RatePerSec: 100})
	if len(arr) != 1000 {
		t.Fatalf("count = %d", len(arr))
	}
	// Monotone non-decreasing times.
	for i := 1; i < len(arr); i++ {
		if arr[i].At < arr[i-1].At {
			t.Fatalf("time went backwards at %d", i)
		}
	}
	// Mean rate roughly matches (1000 tasks at 100/s ~ 10s span).
	span := arr[len(arr)-1].At.Seconds()
	if span < 5 || span > 20 {
		t.Errorf("span = %fs, want ~10s", span)
	}
	// Sizes and durations positive.
	for _, a := range arr {
		if a.SizeBytes <= 0 || a.DurationMS < 0 {
			t.Fatalf("bad arrival %+v", a)
		}
	}
}

func TestPoissonArrivalsEmptyAndDefaults(t *testing.T) {
	if got := PoissonArrivals(ArrivalConfig{}); got != nil {
		t.Errorf("zero count = %v", got)
	}
	arr := PoissonArrivals(ArrivalConfig{Seed: 2, Count: 10})
	if len(arr) != 10 {
		t.Errorf("defaults produced %d", len(arr))
	}
}

func TestBurstinessCompressesGaps(t *testing.T) {
	smooth := PoissonArrivals(ArrivalConfig{Seed: 5, Count: 5000, RatePerSec: 100})
	bursty := PoissonArrivals(ArrivalConfig{Seed: 5, Count: 5000, RatePerSec: 100, Burstiness: 20})
	if bursty[len(bursty)-1].At >= smooth[len(smooth)-1].At {
		t.Error("burstiness did not compress the arrival span")
	}
}

func TestMPISpecs(t *testing.T) {
	specs := MPISpecs(1, 500, 8)
	if len(specs) != 500 {
		t.Fatalf("count = %d", len(specs))
	}
	narrow := 0
	for _, s := range specs {
		if s.Nodes < 1 || s.Nodes > 8 {
			t.Fatalf("nodes = %d", s.Nodes)
		}
		if s.RanksPerNode < 1 || s.RanksPerNode > 2 {
			t.Fatalf("rpn = %d", s.RanksPerNode)
		}
		if s.Nodes == 1 {
			narrow++
		}
	}
	// Skewed toward narrow applications.
	if narrow < 200 {
		t.Errorf("narrow apps = %d of 500, want majority-ish", narrow)
	}
}

func TestFormatDay(t *testing.T) {
	d := DayCount{Date: time.Date(2023, 5, 1, 0, 0, 0, 0, time.UTC), Tasks: 42}
	if got := FormatDay(d); got != "2023-05-01,42" {
		t.Errorf("got %q", got)
	}
	d.Truncated = true
	d.Tasks = Fig2Truncation
	if got := FormatDay(d); got != "2023-05-01,100000,truncated" {
		t.Errorf("got %q", got)
	}
}

func TestScaleToPeakMillionsPerDay(t *testing.T) {
	trace := Fig2Trace(Fig2Config{Seed: 7})
	const target = 3_000_000
	scaled := ScaleToPeak(trace, target)
	if len(scaled) != len(trace) {
		t.Fatalf("scaled %d days, want %d", len(scaled), len(trace))
	}
	peak := 0
	for _, d := range scaled {
		if d.Tasks != d.RawTasks {
			t.Fatalf("scaled traces must not truncate: %+v", d)
		}
		if d.Tasks > peak {
			peak = d.Tasks
		}
		if d.RawTasks > Fig2Truncation && !d.Truncated {
			t.Fatalf("day over the paper's display cap not marked: %+v", d)
		}
	}
	// Integer rounding can shave a task or two off the exact target.
	if peak < target-len(scaled) || peak > target {
		t.Fatalf("peak = %d, want ~%d", peak, target)
	}
	// A 3M-task day is ~35 submits/s sustained.
	if rps := DayRatePerSec(peak); rps < 34 || rps > 35 {
		t.Fatalf("DayRatePerSec(peak) = %v, want ~34.7", rps)
	}
	if ScaleToPeak(nil, target) != nil || ScaleToPeak(trace, 0) != nil {
		t.Fatal("degenerate inputs must return nil")
	}
}

func TestTenantRatesHeavyTailedAndCalibrated(t *testing.T) {
	const total = 500.0
	rates := TenantRates(42, 16, total, 1.1)
	if len(rates) != 16 {
		t.Fatalf("tenants = %d, want 16", len(rates))
	}
	var sum float64
	for _, r := range rates {
		if r.RatePerSec <= 0 {
			t.Fatalf("tenant %s has non-positive rate %v", r.Name, r.RatePerSec)
		}
		sum += r.RatePerSec
	}
	if math.Abs(sum-total) > 1e-6 {
		t.Fatalf("rates sum to %v, want %v", sum, total)
	}
	// Heavy tail: the top tenant must dominate the median one.
	sorted := append([]TenantRate(nil), rates...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].RatePerSec > sorted[j].RatePerSec })
	if sorted[0].RatePerSec < 3*sorted[8].RatePerSec {
		t.Fatalf("mix not heavy-tailed: top %v vs median %v", sorted[0].RatePerSec, sorted[8].RatePerSec)
	}
	// Deterministic per seed.
	again := TenantRates(42, 16, total, 1.1)
	for i := range rates {
		if rates[i] != again[i] {
			t.Fatalf("TenantRates not deterministic at %d: %+v vs %+v", i, rates[i], again[i])
		}
	}
}
