// Package workload generates the synthetic workloads behind the paper's
// quantitative artifacts: the Fig. 2 task-invocations-per-day series
// (calibrated to the reported ~17 M tasks between November 2022 and August
// 2024, with growth, burstiness, and the figure's 100,000 tasks/day
// truncation), the §VI deployment statistics (12,418 endpoints, 87
// multi-user endpoints spawning 1,718 user endpoints), and the arrival and
// size distributions used by the benchmark harness.
//
// All generators are deterministic given their seed so experiment runs
// reproduce exactly.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Fig. 2 calibration constants from the paper.
const (
	// Fig2TotalTasks is the ~17M tasks executed since November 2022 (§VI).
	Fig2TotalTasks = 17_000_000
	// Fig2Truncation is the figure's per-day display cap.
	Fig2Truncation = 100_000
)

// Fig2Start and Fig2End bound the figure's x axis.
var (
	Fig2Start = time.Date(2022, 11, 28, 0, 0, 0, 0, time.UTC)
	Fig2End   = time.Date(2024, 8, 14, 0, 0, 0, 0, time.UTC)
)

// DayCount is one point of a tasks-per-day series. Tasks carries the
// display value (clipped at Fig2Truncation as in the figure); RawTasks is
// the executed count the §VI total refers to.
type DayCount struct {
	Date     time.Time
	Tasks    int
	RawTasks int
	// Truncated marks days whose raw count exceeded the display cap.
	Truncated bool
}

// Fig2Config tunes the trace shape.
type Fig2Config struct {
	Seed int64
	// TotalTasks calibrates the series sum before truncation
	// (default Fig2TotalTasks).
	TotalTasks int
	// Start/End bound the series (defaults Fig2Start/Fig2End).
	Start, End time.Time
	// BurstProbability is the per-day chance of a campaign burst.
	BurstProbability float64
	// QuietProbability is the per-day chance of a near-idle day.
	QuietProbability float64
}

func (c *Fig2Config) fill() {
	if c.TotalTasks <= 0 {
		c.TotalTasks = Fig2TotalTasks
	}
	if c.Start.IsZero() {
		c.Start = Fig2Start
	}
	if c.End.IsZero() {
		c.End = Fig2End
	}
	if c.BurstProbability == 0 {
		c.BurstProbability = 0.06
	}
	if c.QuietProbability == 0 {
		c.QuietProbability = 0.18
	}
}

// Fig2Trace generates the task-invocations-per-day series: a low-volume
// early period, growing and increasingly consistent use over time (the
// paper's observation), heavy-tailed campaign bursts, and truncation at
// Fig2Truncation for display.
func Fig2Trace(cfg Fig2Config) []DayCount {
	cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	days := int(cfg.End.Sub(cfg.Start).Hours()/24) + 1
	raw := make([]float64, days)
	var sum float64
	for i := 0; i < days; i++ {
		// Growth: the daily baseline rises ~8x across the window.
		progress := float64(i) / float64(days-1)
		base := math.Pow(8, progress)
		// Consistency: early days are spikier (higher variance).
		noise := rng.NormFloat64()*(1.2-0.8*progress) + 1
		if noise < 0.05 {
			noise = 0.05
		}
		v := base * noise
		switch {
		case rng.Float64() < cfg.QuietProbability*(1.5-progress):
			// Quiet day: almost no activity (weekends, early adoption).
			v *= 0.02
		case rng.Float64() < cfg.BurstProbability:
			// Campaign burst: heavy-tailed multiplier.
			v *= 5 + rng.ExpFloat64()*40
		}
		raw[i] = v
		sum += v
	}
	// Calibrate so the series totals cfg.TotalTasks before truncation.
	scale := float64(cfg.TotalTasks) / sum
	out := make([]DayCount, days)
	for i := range raw {
		count := int(raw[i] * scale)
		dc := DayCount{Date: cfg.Start.AddDate(0, 0, i), Tasks: count, RawTasks: count}
		if count > Fig2Truncation {
			dc.Tasks = Fig2Truncation
			dc.Truncated = true
		}
		out[i] = dc
	}
	return out
}

// TraceStats summarizes a day series.
type TraceStats struct {
	Days          int
	Total         int64 // displayed (truncated) sum
	RawTotal      int64 // executed tasks before truncation
	Peak          int
	TruncatedDays int
	Mean          float64
	// FirstHalfMean and SecondHalfMean expose the growth trend.
	FirstHalfMean  float64
	SecondHalfMean float64
}

// Summarize computes TraceStats.
func Summarize(trace []DayCount) TraceStats {
	var s TraceStats
	s.Days = len(trace)
	half := len(trace) / 2
	var firstSum, secondSum float64
	for i, d := range trace {
		s.Total += int64(d.Tasks)
		s.RawTotal += int64(d.RawTasks)
		if d.Tasks > s.Peak {
			s.Peak = d.Tasks
		}
		if d.Truncated {
			s.TruncatedDays++
		}
		if i < half {
			firstSum += float64(d.Tasks)
		} else {
			secondSum += float64(d.Tasks)
		}
	}
	if s.Days > 0 {
		s.Mean = float64(s.Total) / float64(s.Days)
	}
	if half > 0 {
		s.FirstHalfMean = firstSum / float64(half)
		s.SecondHalfMean = secondSum / float64(len(trace)-half)
	}
	return s
}

// §VI deployment statistics.
const (
	DeployTotalEndpoints = 12_418
	DeployMEPs           = 87
	DeployUEPs           = 1_718
)

// Deployment is a synthetic §VI-scale deployment inventory.
type Deployment struct {
	// SingleUser counts ordinary endpoints.
	SingleUser int
	// MEPs counts multi-user endpoints, each with its spawned UEP count.
	UEPsPerMEP []int
}

// TotalEndpoints returns single-user + MEPs + spawned UEPs.
func (d Deployment) TotalEndpoints() int {
	total := d.SingleUser + len(d.UEPsPerMEP)
	for _, n := range d.UEPsPerMEP {
		total += n
	}
	return total
}

// TotalUEPs sums spawned user endpoints.
func (d Deployment) TotalUEPs() int {
	total := 0
	for _, n := range d.UEPsPerMEP {
		total += n
	}
	return total
}

// UEPFraction is the paper's "more than 13%" statistic: spawned UEPs as a
// fraction of all endpoints.
func (d Deployment) UEPFraction() float64 {
	t := d.TotalEndpoints()
	if t == 0 {
		return 0
	}
	return float64(d.TotalUEPs()) / float64(t)
}

// GenerateDeployment builds a deployment matching the paper's aggregates:
// 87 MEPs whose spawned-UEP counts follow a heavy-tailed (Zipf-like)
// distribution summing to 1,718, within a 12,418-endpoint fleet.
func GenerateDeployment(seed int64) Deployment {
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, DeployMEPs)
	var wsum float64
	for i := range weights {
		// Zipf-ish: a few gateways spawn most UEPs.
		weights[i] = 1 / math.Pow(float64(i+1), 1.1) * (0.5 + rng.Float64())
		wsum += weights[i]
	}
	ueps := make([]int, DeployMEPs)
	assigned := 0
	for i, w := range weights {
		n := int(w / wsum * DeployUEPs)
		ueps[i] = n
		assigned += n
	}
	// Distribute the rounding remainder; every MEP spawned at least one.
	for i := 0; assigned < DeployUEPs; i = (i + 1) % DeployMEPs {
		ueps[i]++
		assigned++
	}
	for i := range ueps {
		if ueps[i] == 0 {
			ueps[i] = 1
			assigned++
		}
	}
	// Trim any overshoot from the at-least-one rule off the largest MEP.
	for assigned > DeployUEPs {
		maxI := 0
		for i, n := range ueps {
			if n > ueps[maxI] {
				maxI = i
			}
		}
		ueps[maxI]--
		assigned--
	}
	single := DeployTotalEndpoints - DeployMEPs - DeployUEPs
	return Deployment{SingleUser: single, UEPsPerMEP: ueps}
}

// --- production-scale projections ---

// ScaleToPeak rescales a day series so its raw peak hits targetPeak tasks/day
// — the projection knob that grows the paper's 100k-clipped trace toward the
// millions-per-day regime the scenario harness loads against. Display values
// are the raw values (no truncation: the point of scaling up is to see the
// peak), and Truncated marks days that exceeded the paper's original display
// cap so the provenance stays visible.
func ScaleToPeak(trace []DayCount, targetPeak int) []DayCount {
	if len(trace) == 0 || targetPeak <= 0 {
		return nil
	}
	peak := 0
	for _, d := range trace {
		if d.RawTasks > peak {
			peak = d.RawTasks
		}
	}
	if peak == 0 {
		return nil
	}
	scale := float64(targetPeak) / float64(peak)
	out := make([]DayCount, len(trace))
	for i, d := range trace {
		raw := int(float64(d.RawTasks) * scale)
		out[i] = DayCount{
			Date: d.Date, Tasks: raw, RawTasks: raw,
			Truncated: raw > Fig2Truncation,
		}
	}
	return out
}

// TenantRate is one tenant's share of an offered load: a stable name and a
// per-second submit rate. The scenario harness (gc-loadgen) uses a slice of
// these as its tenant mix.
type TenantRate struct {
	Name       string  `json:"name"`
	RatePerSec float64 `json:"rate_per_sec"`
}

// TenantRates splits totalPerSec across n tenants with a Zipf-like
// heavy-tailed skew (exponent s, typical 1.0–1.2): a few gateway tenants
// carry most of the traffic and a long tail submits occasionally — the shape
// the paper's §VI usage statistics (and the MEP spawn distribution) show.
// Rates are deterministic given the seed and always sum to totalPerSec.
func TenantRates(seed int64, n int, totalPerSec, s float64) []TenantRate {
	if n <= 0 || totalPerSec <= 0 {
		return nil
	}
	if s <= 0 {
		s = 1.1
	}
	rng := rand.New(rand.NewSource(seed))
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = 1 / math.Pow(float64(i+1), s) * (0.75 + 0.5*rng.Float64())
		wsum += weights[i]
	}
	out := make([]TenantRate, n)
	for i, w := range weights {
		out[i] = TenantRate{
			Name:       fmt.Sprintf("tenant-%02d", i),
			RatePerSec: totalPerSec * w / wsum,
		}
	}
	return out
}

// DayRatePerSec converts a tasks-per-day count into the steady per-second
// submit rate that would produce it — how a scaled trace day maps onto a
// loadgen profile's base RPS.
func DayRatePerSec(tasksPerDay int) float64 {
	return float64(tasksPerDay) / (24 * 60 * 60)
}

// --- benchmark workload generators ---

// Arrival is one task arrival offset from the workload start.
type Arrival struct {
	At time.Duration
	// SizeBytes is the task payload size.
	SizeBytes int
	// DurationMS is the simulated task execution time.
	DurationMS float64
}

// ArrivalConfig tunes a generated stream.
type ArrivalConfig struct {
	Seed int64
	// Count is the number of tasks.
	Count int
	// RatePerSec is the mean Poisson arrival rate.
	RatePerSec float64
	// Burstiness > 0 adds exponential bursts (0 = pure Poisson).
	Burstiness float64
	// MeanSizeBytes is the lognormal payload size center (default 1 KiB).
	MeanSizeBytes int
	// MeanDurationMS is the exponential task duration mean (default 10ms).
	MeanDurationMS float64
}

// PoissonArrivals generates a deterministic arrival stream.
func PoissonArrivals(cfg ArrivalConfig) []Arrival {
	if cfg.Count <= 0 {
		return nil
	}
	if cfg.RatePerSec <= 0 {
		cfg.RatePerSec = 100
	}
	if cfg.MeanSizeBytes <= 0 {
		cfg.MeanSizeBytes = 1024
	}
	if cfg.MeanDurationMS <= 0 {
		cfg.MeanDurationMS = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	out := make([]Arrival, cfg.Count)
	var clock time.Duration
	for i := range out {
		gap := rng.ExpFloat64() / cfg.RatePerSec
		if cfg.Burstiness > 0 && rng.Float64() < 0.1 {
			gap /= 1 + cfg.Burstiness*rng.ExpFloat64()
		}
		clock += time.Duration(gap * float64(time.Second))
		// Lognormal sizes: most tasks small, a heavy tail of large ones.
		size := float64(cfg.MeanSizeBytes) * math.Exp(rng.NormFloat64()*0.8)
		out[i] = Arrival{
			At:         clock,
			SizeBytes:  int(size) + 1,
			DurationMS: rng.ExpFloat64() * cfg.MeanDurationMS,
		}
	}
	return out
}

// MPISpecStream generates resource specifications for MPI packing
// experiments: a mix of narrow and wide applications.
type MPISpec struct {
	Nodes        int
	RanksPerNode int
	DurationMS   float64
}

// MPISpecs draws count specifications with nodes in [1, maxNodes],
// skewed toward narrow applications.
func MPISpecs(seed int64, count, maxNodes int) []MPISpec {
	rng := rand.New(rand.NewSource(seed))
	out := make([]MPISpec, count)
	for i := range out {
		// Geometric-ish: P(1 node) highest.
		nodes := 1
		for nodes < maxNodes && rng.Float64() < 0.45 {
			nodes++
		}
		out[i] = MPISpec{
			Nodes:        nodes,
			RanksPerNode: 1 + rng.Intn(2),
			DurationMS:   20 + rng.ExpFloat64()*40,
		}
	}
	return out
}

// FormatDay renders a DayCount as the CSV row the figure harness prints.
func FormatDay(d DayCount) string {
	flag := ""
	if d.Truncated {
		flag = ",truncated"
	}
	return fmt.Sprintf("%s,%d%s", d.Date.Format("2006-01-02"), d.Tasks, flag)
}
