package template_test

import (
	"fmt"

	"globuscompute/internal/template"
)

// The multi-user endpoint configuration template from the paper's
// Listing 9, rendered with a user's values.
func ExampleRender() {
	tmpl := `account={{ ACCOUNT_ID }} nodes={{ NODES_PER_BLOCK }} walltime={{ WALLTIME|default("00:30:00") }}`
	out, err := template.Render(tmpl, map[string]any{
		"ACCOUNT_ID":      "314159265",
		"NODES_PER_BLOCK": 64,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(out)
	// Output: account=314159265 nodes=64 walltime=00:30:00
}

// Schemas reject out-of-policy user values before rendering.
func ExampleSchema_Validate() {
	min, max := 1.0, 64.0
	schema := template.Schema{Properties: map[string]template.Property{
		"NODES": {Type: template.TypeInteger, Required: true, Minimum: &min, Maximum: &max},
	}}
	fmt.Println(schema.Validate(map[string]any{"NODES": 32}))
	err := schema.Validate(map[string]any{"NODES": 4096})
	fmt.Println(err != nil)
	// Output:
	// <nil>
	// true
}
