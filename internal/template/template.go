// Package template implements the configuration templating used by
// multi-user endpoints: administrators write endpoint config templates with
// {{ NAME }} placeholders (optionally {{ NAME|default("value") }} and other
// filters, as with the Jinja2 templates in the paper's Listing 9), users
// supply property values at submit time, and a schema validates those values
// before rendering to protect against injection.
package template

import (
	"encoding/json"
	"errors"
	"fmt"
	"regexp"
	"strconv"
	"strings"
)

// Common errors.
var (
	ErrMissingVar    = errors.New("template: missing variable")
	ErrUnknownFilter = errors.New("template: unknown filter")
	ErrSchema        = errors.New("template: schema violation")
)

// placeholder matches {{ NAME }} and {{ NAME|filter }} / {{ NAME|filter("arg") }}.
var placeholder = regexp.MustCompile(`\{\{\s*([A-Za-z_][A-Za-z0-9_]*)\s*(\|[^}]*)?\}\}`)

// filterCall matches one |name or |name("arg") segment.
var filterCall = regexp.MustCompile(`^([a-z_]+)(?:\(\s*"((?:[^"\\]|\\.)*)"\s*\))?$`)

// Render substitutes placeholders in tmpl from vars. A variable missing from
// vars fails unless a default(...) filter provides a value. Values render
// via fmt for scalars; the json filter emits a JSON literal.
func Render(tmpl string, vars map[string]any) (string, error) {
	var firstErr error
	out := placeholder.ReplaceAllStringFunc(tmpl, func(m string) string {
		sub := placeholder.FindStringSubmatch(m)
		name, filters := sub[1], sub[2]
		val, ok := vars[name]
		rendered := ""
		if ok {
			rendered = renderValue(val)
		}
		if filters != "" {
			for _, f := range strings.Split(strings.TrimPrefix(filters, "|"), "|") {
				f = strings.TrimSpace(f)
				if f == "" {
					continue
				}
				fc := filterCall.FindStringSubmatch(f)
				if fc == nil {
					if firstErr == nil {
						firstErr = fmt.Errorf("%w: %q", ErrUnknownFilter, f)
					}
					return m
				}
				fname, farg := fc[1], unescape(fc[2])
				switch fname {
				case "default":
					if !ok {
						rendered = farg
						ok = true
					}
				case "lower":
					rendered = strings.ToLower(rendered)
				case "upper":
					rendered = strings.ToUpper(rendered)
				case "json":
					src := val
					if !ok {
						src = nil
					}
					b, err := json.Marshal(src)
					if err != nil {
						if firstErr == nil {
							firstErr = fmt.Errorf("template: json filter: %w", err)
						}
						return m
					}
					rendered = string(b)
				default:
					if firstErr == nil {
						firstErr = fmt.Errorf("%w: %q", ErrUnknownFilter, fname)
					}
					return m
				}
			}
		}
		if !ok {
			if firstErr == nil {
				firstErr = fmt.Errorf("%w: %s", ErrMissingVar, name)
			}
			return m
		}
		return rendered
	})
	if firstErr != nil {
		return "", firstErr
	}
	return out, nil
}

func renderValue(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		// JSON numbers decode as float64; render integers without decimals.
		if x == float64(int64(x)) {
			return strconv.FormatInt(int64(x), 10)
		}
		return strconv.FormatFloat(x, 'g', -1, 64)
	case nil:
		return ""
	default:
		return fmt.Sprint(x)
	}
}

func unescape(s string) string {
	s = strings.ReplaceAll(s, `\"`, `"`)
	s = strings.ReplaceAll(s, `\\`, `\`)
	return s
}

// Variables lists the distinct placeholder names in tmpl, in first-use
// order.
func Variables(tmpl string) []string {
	seen := make(map[string]bool)
	var names []string
	for _, m := range placeholder.FindAllStringSubmatch(tmpl, -1) {
		if !seen[m[1]] {
			seen[m[1]] = true
			names = append(names, m[1])
		}
	}
	return names
}

// HasDefault reports whether the named variable carries a default filter
// anywhere in tmpl.
func HasDefault(tmpl, name string) bool {
	for _, m := range placeholder.FindAllStringSubmatch(tmpl, -1) {
		if m[1] == name && strings.Contains(m[2], "default") {
			return true
		}
	}
	return false
}

// PropType is a schema property type.
type PropType string

const (
	TypeString  PropType = "string"
	TypeInteger PropType = "integer"
	TypeNumber  PropType = "number"
	TypeBoolean PropType = "boolean"
)

// Property constrains one user-supplied template variable.
type Property struct {
	Type     PropType `json:"type"`
	Required bool     `json:"required,omitempty"`
	// Pattern constrains string values (anchored automatically).
	Pattern string `json:"pattern,omitempty"`
	// MaxLength bounds string length (0 = 256, the injection guard).
	MaxLength int `json:"max_length,omitempty"`
	// Minimum/Maximum bound numeric values when both are non-nil.
	Minimum *float64 `json:"minimum,omitempty"`
	Maximum *float64 `json:"maximum,omitempty"`
	// Enum restricts values to this set when non-empty.
	Enum []string `json:"enum,omitempty"`
}

// Schema validates a user configuration against per-property constraints.
// AdditionalProperties=false (the default) rejects unknown keys.
type Schema struct {
	Properties           map[string]Property `json:"properties"`
	AdditionalProperties bool                `json:"additional_properties,omitempty"`
}

// unsafe matches characters that would let a string value escape a JSON or
// YAML scalar context; they are rejected in strings without an explicit
// pattern, the template system's injection guard.
var unsafe = regexp.MustCompile("[\"'\n\r{}\\\\]")

// Validate checks vars against the schema.
func (s Schema) Validate(vars map[string]any) error {
	for name, prop := range s.Properties {
		val, ok := vars[name]
		if !ok {
			if prop.Required {
				return fmt.Errorf("%w: missing required property %q", ErrSchema, name)
			}
			continue
		}
		if err := prop.check(name, val); err != nil {
			return err
		}
	}
	if !s.AdditionalProperties {
		for name := range vars {
			if _, ok := s.Properties[name]; !ok {
				return fmt.Errorf("%w: unknown property %q", ErrSchema, name)
			}
		}
	}
	return nil
}

func (p Property) check(name string, val any) error {
	switch p.Type {
	case TypeString, "":
		s, ok := val.(string)
		if !ok {
			return fmt.Errorf("%w: %q must be a string, got %T", ErrSchema, name, val)
		}
		maxLen := p.MaxLength
		if maxLen == 0 {
			maxLen = 256
		}
		if len(s) > maxLen {
			return fmt.Errorf("%w: %q exceeds %d characters", ErrSchema, name, maxLen)
		}
		if len(p.Enum) > 0 {
			found := false
			for _, e := range p.Enum {
				if s == e {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("%w: %q value %q not in enum", ErrSchema, name, s)
			}
			return nil
		}
		if p.Pattern != "" {
			re, err := regexp.Compile("^(?:" + p.Pattern + ")$")
			if err != nil {
				return fmt.Errorf("template: bad pattern for %q: %w", name, err)
			}
			if !re.MatchString(s) {
				return fmt.Errorf("%w: %q value %q does not match %q", ErrSchema, name, s, p.Pattern)
			}
			return nil
		}
		if loc := unsafe.FindString(s); loc != "" {
			return fmt.Errorf("%w: %q contains unsafe character %q", ErrSchema, name, loc)
		}
	case TypeInteger:
		f, ok := toFloat(val)
		if !ok || f != float64(int64(f)) {
			return fmt.Errorf("%w: %q must be an integer, got %v", ErrSchema, name, val)
		}
		return p.checkRange(name, f)
	case TypeNumber:
		f, ok := toFloat(val)
		if !ok {
			return fmt.Errorf("%w: %q must be a number, got %T", ErrSchema, name, val)
		}
		return p.checkRange(name, f)
	case TypeBoolean:
		if _, ok := val.(bool); !ok {
			return fmt.Errorf("%w: %q must be a boolean, got %T", ErrSchema, name, val)
		}
	default:
		return fmt.Errorf("%w: property %q has unknown type %q", ErrSchema, name, p.Type)
	}
	return nil
}

func (p Property) checkRange(name string, f float64) error {
	if p.Minimum != nil && f < *p.Minimum {
		return fmt.Errorf("%w: %q value %g below minimum %g", ErrSchema, name, f, *p.Minimum)
	}
	if p.Maximum != nil && f > *p.Maximum {
		return fmt.Errorf("%w: %q value %g above maximum %g", ErrSchema, name, f, *p.Maximum)
	}
	return nil
}

func toFloat(v any) (float64, bool) {
	switch x := v.(type) {
	case float64:
		return x, true
	case float32:
		return float64(x), true
	case int:
		return float64(x), true
	case int64:
		return float64(x), true
	case json.Number:
		f, err := x.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}
