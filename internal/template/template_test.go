package template

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderBasic(t *testing.T) {
	got, err := Render("nodes: {{ NODES }}", map[string]any{"NODES": 4})
	if err != nil {
		t.Fatal(err)
	}
	if got != "nodes: 4" {
		t.Errorf("got %q", got)
	}
}

func TestRenderListing9Shape(t *testing.T) {
	// The paper's Listing 9 template shape.
	tmpl := `engine:
  type: GlobusComputeEngine
  nodes_per_block: {{ NODES_PER_BLOCK }}
provider:
  type: SlurmProvider
  partition: cpu
  account: {{ ACCOUNT_ID }}
  walltime: {{ WALLTIME|default("00:30:00") }}`
	got, err := Render(tmpl, map[string]any{"NODES_PER_BLOCK": 64, "ACCOUNT_ID": "314159265"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(got, "nodes_per_block: 64") {
		t.Errorf("missing nodes: %q", got)
	}
	if !strings.Contains(got, "account: 314159265") {
		t.Errorf("missing account: %q", got)
	}
	if !strings.Contains(got, `walltime: 00:30:00`) {
		t.Errorf("default not applied: %q", got)
	}
}

func TestRenderDefaultOverridden(t *testing.T) {
	got, err := Render(`{{ W|default("fallback") }}`, map[string]any{"W": "explicit"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "explicit" {
		t.Errorf("got %q", got)
	}
}

func TestRenderMissingVar(t *testing.T) {
	_, err := Render("{{ REQUIRED }}", nil)
	if !errors.Is(err, ErrMissingVar) {
		t.Errorf("err = %v", err)
	}
}

func TestRenderFilters(t *testing.T) {
	got, err := Render("{{ A|lower }} {{ A|upper }}", map[string]any{"A": "MiXeD"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "mixed MIXED" {
		t.Errorf("got %q", got)
	}
}

func TestRenderJSONFilter(t *testing.T) {
	got, err := Render(`{"v": {{ V|json }}}`, map[string]any{"V": `tricky"value`})
	if err != nil {
		t.Fatal(err)
	}
	if got != `{"v": "tricky\"value"}` {
		t.Errorf("got %q", got)
	}
}

func TestRenderUnknownFilter(t *testing.T) {
	if _, err := Render("{{ A|explode }}", map[string]any{"A": "x"}); !errors.Is(err, ErrUnknownFilter) {
		t.Errorf("err = %v", err)
	}
}

func TestRenderChainedDefaultLower(t *testing.T) {
	got, err := Render(`{{ A|default("ABC")|lower }}`, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got != "abc" {
		t.Errorf("got %q", got)
	}
}

func TestRenderFloats(t *testing.T) {
	got, err := Render("{{ F }}", map[string]any{"F": 2.5})
	if err != nil || got != "2.5" {
		t.Errorf("got %q, %v", got, err)
	}
	got, err = Render("{{ F }}", map[string]any{"F": float64(7)})
	if err != nil || got != "7" {
		t.Errorf("whole float got %q, %v", got, err)
	}
}

func TestRenderWhitespaceVariants(t *testing.T) {
	for _, tmpl := range []string{"{{X}}", "{{ X }}", "{{  X  }}"} {
		got, err := Render(tmpl, map[string]any{"X": "v"})
		if err != nil || got != "v" {
			t.Errorf("Render(%q) = %q, %v", tmpl, got, err)
		}
	}
}

func TestVariables(t *testing.T) {
	tmpl := `{{ A }} {{ B|default("x") }} {{ A }}`
	vars := Variables(tmpl)
	if len(vars) != 2 || vars[0] != "A" || vars[1] != "B" {
		t.Errorf("Variables = %v", vars)
	}
	if len(Variables("no placeholders")) != 0 {
		t.Error("found variables in plain text")
	}
}

func TestHasDefault(t *testing.T) {
	tmpl := `{{ A }} {{ B|default("x") }}`
	if HasDefault(tmpl, "A") {
		t.Error("A has no default")
	}
	if !HasDefault(tmpl, "B") {
		t.Error("B has a default")
	}
}

func TestSchemaValidateHappy(t *testing.T) {
	min, max := 1.0, 128.0
	s := Schema{Properties: map[string]Property{
		"NODES":   {Type: TypeInteger, Required: true, Minimum: &min, Maximum: &max},
		"ACCOUNT": {Type: TypeString, Required: true, Pattern: `[0-9]+`},
		"DEBUG":   {Type: TypeBoolean},
	}}
	vars := map[string]any{"NODES": 64, "ACCOUNT": "314159265"}
	if err := s.Validate(vars); err != nil {
		t.Errorf("Validate = %v", err)
	}
}

func TestSchemaMissingRequired(t *testing.T) {
	s := Schema{Properties: map[string]Property{"A": {Type: TypeString, Required: true}}}
	if err := s.Validate(nil); !errors.Is(err, ErrSchema) {
		t.Errorf("err = %v", err)
	}
}

func TestSchemaUnknownProperty(t *testing.T) {
	s := Schema{Properties: map[string]Property{"A": {Type: TypeString}}}
	if err := s.Validate(map[string]any{"B": "x"}); !errors.Is(err, ErrSchema) {
		t.Errorf("err = %v", err)
	}
	s.AdditionalProperties = true
	if err := s.Validate(map[string]any{"B": "x"}); err != nil {
		t.Errorf("additional allowed = %v", err)
	}
}

func TestSchemaTypeErrors(t *testing.T) {
	s := Schema{Properties: map[string]Property{
		"S": {Type: TypeString},
		"I": {Type: TypeInteger},
		"N": {Type: TypeNumber},
		"B": {Type: TypeBoolean},
	}}
	bad := []map[string]any{
		{"S": 3},
		{"I": "three"},
		{"I": 2.5},
		{"N": "nan"},
		{"B": "true"},
	}
	for _, vars := range bad {
		if err := s.Validate(vars); !errors.Is(err, ErrSchema) {
			t.Errorf("Validate(%v) = %v, want schema error", vars, err)
		}
	}
	good := map[string]any{"S": "ok", "I": 3, "N": 2.5, "B": true}
	if err := s.Validate(good); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
}

func TestSchemaRangeEnforced(t *testing.T) {
	min, max := 1.0, 10.0
	s := Schema{Properties: map[string]Property{"N": {Type: TypeInteger, Minimum: &min, Maximum: &max}}}
	if err := s.Validate(map[string]any{"N": 0}); !errors.Is(err, ErrSchema) {
		t.Errorf("below min = %v", err)
	}
	if err := s.Validate(map[string]any{"N": 11}); !errors.Is(err, ErrSchema) {
		t.Errorf("above max = %v", err)
	}
	if err := s.Validate(map[string]any{"N": 5}); err != nil {
		t.Errorf("in range = %v", err)
	}
}

func TestSchemaInjectionGuard(t *testing.T) {
	// Strings without an explicit pattern reject quote/newline/brace
	// characters that could escape the rendered config context.
	s := Schema{Properties: map[string]Property{"V": {Type: TypeString}}}
	for _, evil := range []string{
		"a\"b", "a'b", "a\nb", "{{ PWN }}", `back\slash`,
	} {
		if err := s.Validate(map[string]any{"V": evil}); !errors.Is(err, ErrSchema) {
			t.Errorf("injection %q passed", evil)
		}
	}
	if err := s.Validate(map[string]any{"V": "normal-value_1.0"}); err != nil {
		t.Errorf("benign value rejected: %v", err)
	}
}

func TestSchemaPatternAnchored(t *testing.T) {
	s := Schema{Properties: map[string]Property{"W": {Type: TypeString, Pattern: `\d{2}:\d{2}:\d{2}`}}}
	if err := s.Validate(map[string]any{"W": "00:30:00"}); err != nil {
		t.Errorf("valid walltime rejected: %v", err)
	}
	if err := s.Validate(map[string]any{"W": "xx 00:30:00"}); !errors.Is(err, ErrSchema) {
		t.Errorf("unanchored match passed: %v", err)
	}
}

func TestSchemaEnum(t *testing.T) {
	s := Schema{Properties: map[string]Property{"P": {Type: TypeString, Enum: []string{"cpu", "gpu"}}}}
	if err := s.Validate(map[string]any{"P": "cpu"}); err != nil {
		t.Errorf("enum member rejected: %v", err)
	}
	if err := s.Validate(map[string]any{"P": "tpu"}); !errors.Is(err, ErrSchema) {
		t.Errorf("non-member passed: %v", err)
	}
}

func TestSchemaMaxLength(t *testing.T) {
	s := Schema{Properties: map[string]Property{"V": {Type: TypeString, MaxLength: 4}}}
	if err := s.Validate(map[string]any{"V": "12345"}); !errors.Is(err, ErrSchema) {
		t.Errorf("overlong passed: %v", err)
	}
	// Default cap at 256.
	s2 := Schema{Properties: map[string]Property{"V": {Type: TypeString}}}
	if err := s2.Validate(map[string]any{"V": strings.Repeat("a", 257)}); !errors.Is(err, ErrSchema) {
		t.Errorf("default cap not enforced: %v", err)
	}
}
