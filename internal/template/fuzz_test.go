package template

import "testing"

// FuzzRender ensures arbitrary templates and values never panic the
// renderer; errors are the only acceptable failure mode.
func FuzzRender(f *testing.F) {
	f.Add(`{{ A }}`, "v")
	f.Add(`{{ A|default("x") }}`, "")
	f.Add(`{{ A|bogus }}`, "v")
	f.Add(`{{`, "v")
	f.Add(`}} {{ {{`, "v")
	f.Add(`{{ A|default("\"") }}`, "v")
	f.Fuzz(func(t *testing.T, tmpl, val string) {
		out, err := Render(tmpl, map[string]any{"A": val})
		if err == nil && out == "" && tmpl != "" && val != "" {
			// empty output is fine; just exercising the path
			_ = out
		}
	})
}

// FuzzSchemaValidate hardens property checking against odd values.
func FuzzSchemaValidate(f *testing.F) {
	f.Add("value", 10.0, true)
	f.Add("", -1.0, false)
	f.Fuzz(func(t *testing.T, s string, n float64, b bool) {
		schema := Schema{Properties: map[string]Property{
			"S": {Type: TypeString},
			"N": {Type: TypeNumber},
			"B": {Type: TypeBoolean},
		}}
		_ = schema.Validate(map[string]any{"S": s, "N": n, "B": b})
	})
}
