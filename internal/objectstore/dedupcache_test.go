package objectstore

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
)

// countingFetcher counts how many fetches reach the source.
type countingFetcher struct {
	src   *Store
	calls atomic.Int64
}

func (c *countingFetcher) Get(key string) ([]byte, error) {
	c.calls.Add(1)
	return c.src.Get(key)
}

func TestDedupCacheHitsAndEvictions(t *testing.T) {
	s := New()
	keys := make([]string, 4)
	for i := range keys {
		k, err := s.PutContent(bytes.Repeat([]byte{byte(i + 1)}, 100))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	src := &countingFetcher{src: s}
	// Budget for two 100-byte objects.
	d := NewDedupCache(src, 200)

	for i := 0; i < 3; i++ {
		if _, err := d.Get(keys[0]); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.calls.Load(); got != 1 {
		t.Fatalf("source fetches after repeated Get = %d, want 1", got)
	}
	if hits := d.Metrics.Counter("dedup_cache_hits").Value(); hits != 2 {
		t.Errorf("hits = %d, want 2", hits)
	}

	// Fill past the budget: keys[0] (least recently used after these) must
	// evict.
	if _, err := d.Get(keys[1]); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Get(keys[2]); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 2 || d.Bytes() != 200 {
		t.Fatalf("cache = %d objects / %d bytes, want 2 / 200", d.Len(), d.Bytes())
	}
	if ev := d.Metrics.Counter("dedup_cache_evictions").Value(); ev != 1 {
		t.Errorf("evictions = %d, want 1", ev)
	}
	before := src.calls.Load()
	if _, err := d.Get(keys[0]); err != nil { // evicted: refetches
		t.Fatal(err)
	}
	if got := src.calls.Load(); got != before+1 {
		t.Errorf("evicted key did not refetch (calls %d -> %d)", before, got)
	}
}

func TestDedupCacheSingleflight(t *testing.T) {
	s := New()
	key, err := s.PutContent(bytes.Repeat([]byte("x"), 1000))
	if err != nil {
		t.Fatal(err)
	}
	src := &countingFetcher{src: s}
	d := NewDedupCache(src, 1<<20)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			data, err := d.Get(key)
			if err != nil || len(data) != 1000 {
				t.Errorf("get = %d bytes, %v", len(data), err)
			}
		}()
	}
	wg.Wait()
	// Singleflight coalescing: far fewer source fetches than callers. The
	// first caller may complete before the last starts, so allow a couple.
	if got := src.calls.Load(); got > 3 {
		t.Errorf("source fetches = %d for 16 concurrent gets, want <= 3", got)
	}
}

func TestDedupCacheOversizedObjectNotRetained(t *testing.T) {
	s := New()
	key, err := s.PutContent(bytes.Repeat([]byte("y"), 500))
	if err != nil {
		t.Fatal(err)
	}
	d := NewDedupCache(&countingFetcher{src: s}, 100)
	if _, err := d.Get(key); err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("oversized object was retained (%d cached)", d.Len())
	}
}

func TestPutContentDedupSkipsReingest(t *testing.T) {
	s := New()
	data := bytes.Repeat([]byte("z"), 256)
	k1, err := s.PutContent(data)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.PutContent(data)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatalf("content keys differ: %s vs %s", k1, k2)
	}
	if puts := s.Metrics.Counter("puts").Value(); puts != 1 {
		t.Errorf("puts = %d, want 1 (second PutContent should dedup)", puts)
	}
	if hits := s.Metrics.Counter("dedup_hits").Value(); hits != 1 {
		t.Errorf("dedup_hits = %d, want 1", hits)
	}
}

func TestStoreReaders(t *testing.T) {
	s := New()
	payload := bytes.Repeat([]byte("stream"), 1000)
	n, err := s.PutReader("k", bytes.NewReader(payload), int64(len(payload)))
	if err != nil || n != int64(len(payload)) {
		t.Fatalf("PutReader = %d, %v", n, err)
	}
	rd, size, err := s.GetReader("k")
	if err != nil || size != int64(len(payload)) {
		t.Fatalf("GetReader size = %d, %v", size, err)
	}
	got, _ := io.ReadAll(rd)
	rd.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("GetReader bytes differ from PutReader input")
	}
}

func TestOpenDirSurvivesReopen(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "objects")
	s, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	data := bytes.Repeat([]byte("durable"), 512)
	key, err := s.PutContent(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put("plain/../key", []byte("odd key")); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(key)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("content object after reopen: %d bytes, %v", len(got), err)
	}
	odd, err := s2.Get("plain/../key")
	if err != nil || string(odd) != "odd key" {
		t.Fatalf("odd-key object after reopen: %q, %v", odd, err)
	}

	// Deletes must remove the backing file too.
	if err := s2.Delete(key); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3, err := OpenDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s3.Get(key); err == nil {
		t.Error("deleted object resurrected after reopen")
	}
}

func TestHTTPStreamingAndHead(t *testing.T) {
	s := New()
	srv, err := ServeHTTP(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())

	payload := bytes.Repeat([]byte("http"), 4096)
	key, err := c.PutContent(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ok, err := c.Exists(key); err != nil || !ok {
		t.Fatalf("Exists = %v, %v", ok, err)
	}
	if ok, err := c.Exists("deadbeef"); err != nil || ok {
		t.Fatalf("Exists(missing) = %v, %v", ok, err)
	}

	// Second PutContent of identical bytes must skip the body upload: the
	// HEAD probe finds it, so the server-side ingress counter stays put.
	ingress := s.Metrics.Counter("ingress_bytes").Value()
	if _, err := c.PutContent(payload); err != nil {
		t.Fatal(err)
	}
	if got := s.Metrics.Counter("ingress_bytes").Value(); got != ingress {
		t.Errorf("re-upload moved ingress_bytes %d -> %d, want unchanged", ingress, got)
	}

	rd, size, err := c.GetReader(key)
	if err != nil {
		t.Fatal(err)
	}
	if size != int64(len(payload)) {
		t.Errorf("GetReader Content-Length = %d, want %d", size, len(payload))
	}
	got, _ := io.ReadAll(rd)
	rd.Close()
	if !bytes.Equal(got, payload) {
		t.Fatal("streamed bytes differ")
	}

	// Streamed client put with explicit size.
	big := bytes.Repeat([]byte("s"), 1<<20)
	if err := c.PutReader("bigkey", bytes.NewReader(big), int64(len(big))); err != nil {
		t.Fatal(err)
	}
	if sz, err := s.Size("bigkey"); err != nil || sz != len(big) {
		t.Fatalf("streamed put size = %d, %v", sz, err)
	}
}

func TestDedupCachePassThroughWhenDisabled(t *testing.T) {
	s := New()
	key, err := s.PutContent([]byte("tiny"))
	if err != nil {
		t.Fatal(err)
	}
	src := &countingFetcher{src: s}
	d := NewDedupCache(src, 0)
	for i := 0; i < 3; i++ {
		if _, err := d.Get(key); err != nil {
			t.Fatal(err)
		}
	}
	if got := src.calls.Load(); got != 3 {
		t.Errorf("disabled cache coalesced fetches (calls = %d, want 3)", got)
	}
}

func BenchmarkDedupCacheHit(b *testing.B) {
	s := New()
	key, err := s.PutContent(bytes.Repeat([]byte("b"), 1<<20))
	if err != nil {
		b.Fatal(err)
	}
	d := NewDedupCache(s, 8<<20)
	if _, err := d.Get(key); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleContentKey() {
	fmt.Println(ContentKey([]byte("hello")) == ContentKey([]byte("hello")))
	// Output: true
}
