package objectstore

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestPutGetDelete(t *testing.T) {
	s := New()
	if err := s.Put("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "v" {
		t.Errorf("Get = %q, want v", got)
	}
	if !s.Exists("k") {
		t.Error("Exists = false")
	}
	if n, _ := s.Size("k"); n != 1 {
		t.Errorf("Size = %d, want 1", n)
	}
	if err := s.Delete("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get after delete = %v, want ErrNotFound", err)
	}
	if err := s.Delete("k"); !errors.Is(err, ErrNotFound) {
		t.Errorf("double delete = %v, want ErrNotFound", err)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s := New()
	if err := s.Put("", []byte("x")); err == nil {
		t.Error("Put with empty key succeeded")
	}
}

func TestPutContentDeduplicates(t *testing.T) {
	s := New()
	k1, err := s.PutContent([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	k2, err := s.PutContent([]byte("same"))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Errorf("content keys differ: %q vs %q", k1, k2)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	k3, _ := s.PutContent([]byte("different"))
	if k3 == k1 {
		t.Error("distinct content produced the same key")
	}
}

func TestMaxObjectEnforced(t *testing.T) {
	s := New()
	s.MaxObject = 4
	if err := s.Put("k", []byte("12345")); err == nil {
		t.Error("oversized Put succeeded")
	}
	if err := s.Put("k", []byte("1234")); err != nil {
		t.Errorf("at-limit Put failed: %v", err)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := New()
	s.Put("k", []byte("orig"))
	got, _ := s.Get("k")
	copy(got, "XXXX")
	again, _ := s.Get("k")
	if string(again) != "orig" {
		t.Error("caller mutation leaked into store")
	}
}

func TestTotalBytesAndLen(t *testing.T) {
	s := New()
	s.Put("a", make([]byte, 10))
	s.Put("b", make([]byte, 20))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.TotalBytes() != 30 {
		t.Errorf("TotalBytes = %d, want 30", s.TotalBytes())
	}
	s.Put("a", make([]byte, 5)) // replace
	if s.TotalBytes() != 25 {
		t.Errorf("TotalBytes after replace = %d, want 25", s.TotalBytes())
	}
}

func TestClosedStore(t *testing.T) {
	s := New()
	s.Close()
	if err := s.Put("k", nil); !errors.Is(err, ErrClosed) {
		t.Errorf("Put after close = %v", err)
	}
	if _, err := s.Get("k"); !errors.Is(err, ErrClosed) {
		t.Errorf("Get after close = %v", err)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				key := fmt.Sprintf("k%d-%d", i, j)
				if err := s.Put(key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if got, err := s.Get(key); err != nil || string(got) != key {
					t.Errorf("Get(%s) = %q, %v", key, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	if s.Len() != 800 {
		t.Errorf("Len = %d, want 800", s.Len())
	}
}

func TestHTTPServerRoundTrip(t *testing.T) {
	s := New()
	srv, err := ServeHTTP(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())

	if err := c.Put("blob", []byte{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("blob")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, []byte{0, 1, 2, 3}) {
		t.Errorf("Get = %v", got)
	}
	if err := c.Delete("blob"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get("blob"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Get deleted = %v, want ErrNotFound", err)
	}
	if err := c.Delete("blob"); !errors.Is(err, ErrNotFound) {
		t.Errorf("Delete deleted = %v, want ErrNotFound", err)
	}
}

func TestHTTPBadKeys(t *testing.T) {
	s := New()
	srv, err := ServeHTTP(s, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c := NewClient(srv.Addr())
	if err := c.Put("a/b", []byte("x")); err == nil {
		t.Error("Put with slash in key succeeded")
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	s := New()
	f := func(key string, val []byte) bool {
		if key == "" {
			return true
		}
		if err := s.Put(key, val); err != nil {
			return false
		}
		got, err := s.Get(key)
		return err == nil && bytes.Equal(got, val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
