package objectstore

import (
	"container/list"
	"sync"

	"globuscompute/internal/metrics"
)

// Fetcher fetches an object by key — the read side of Store and Client,
// and the shape the endpoint runner and SDK executor use to resolve
// pass-by-reference payloads.
type Fetcher interface {
	Get(key string) ([]byte, error)
}

// DedupCache is a bounded, byte-budgeted LRU read-through cache in front of
// a Fetcher. Endpoints put one in front of their object-store client so a
// 16-way fan-out of the same large input crosses the wire once: keys are
// content-addressed (SHA-256 of the bytes), so a cached entry can never be
// stale. Concurrent misses on one key are coalesced (singleflight) — the
// wire sees a single fetch even when every worker asks at once.
type DedupCache struct {
	src Fetcher
	max int64

	mu       sync.Mutex
	bytes    int64
	ll       *list.List // front = most recently used
	items    map[string]*list.Element
	inflight map[string]*fetchCall

	Metrics *metrics.Registry
}

type cacheEntry struct {
	key  string
	data []byte
}

// fetchCall is one in-flight source fetch that any number of callers wait
// on.
type fetchCall struct {
	done chan struct{}
	data []byte
	err  error
}

// NewDedupCache caches up to maxBytes of objects fetched from src. A
// maxBytes <= 0 disables caching (every Get passes through).
func NewDedupCache(src Fetcher, maxBytes int64) *DedupCache {
	return &DedupCache{
		src:      src,
		max:      maxBytes,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		inflight: make(map[string]*fetchCall),
		Metrics:  metrics.NewRegistry(),
	}
}

// Get returns the object under key, from cache when possible. Objects
// larger than the cache budget are fetched but not retained.
func (d *DedupCache) Get(key string) ([]byte, error) {
	if d.max <= 0 {
		return d.src.Get(key)
	}
	d.mu.Lock()
	if el, ok := d.items[key]; ok {
		d.ll.MoveToFront(el)
		data := el.Value.(*cacheEntry).data
		d.mu.Unlock()
		d.Metrics.Counter("dedup_cache_hits").Inc()
		return data, nil
	}
	if call, ok := d.inflight[key]; ok {
		// Another goroutine is already fetching this key: wait for it
		// rather than issuing a duplicate wire transfer.
		d.mu.Unlock()
		<-call.done
		if call.err == nil {
			d.Metrics.Counter("dedup_cache_hits").Inc()
		}
		return call.data, call.err
	}
	call := &fetchCall{done: make(chan struct{})}
	d.inflight[key] = call
	d.mu.Unlock()

	d.Metrics.Counter("dedup_cache_misses").Inc()
	call.data, call.err = d.src.Get(key)
	close(call.done)

	d.mu.Lock()
	delete(d.inflight, key)
	if call.err == nil {
		d.add(key, call.data)
	}
	d.mu.Unlock()
	return call.data, call.err
}

// add inserts an entry and evicts from the LRU tail until the byte budget
// holds. Caller holds d.mu.
func (d *DedupCache) add(key string, data []byte) {
	if int64(len(data)) > d.max {
		return // larger than the whole budget: serve, don't retain
	}
	if el, ok := d.items[key]; ok {
		d.ll.MoveToFront(el)
		return
	}
	d.items[key] = d.ll.PushFront(&cacheEntry{key: key, data: data})
	d.bytes += int64(len(data))
	for d.bytes > d.max {
		tail := d.ll.Back()
		if tail == nil {
			break
		}
		ent := tail.Value.(*cacheEntry)
		d.ll.Remove(tail)
		delete(d.items, ent.key)
		d.bytes -= int64(len(ent.data))
		d.Metrics.Counter("dedup_cache_evictions").Inc()
	}
	d.Metrics.Gauge("dedup_cache_bytes").Set(d.bytes)
	d.Metrics.Gauge("dedup_cache_objects").Set(int64(d.ll.Len()))
}

// Len returns the number of cached objects.
func (d *DedupCache) Len() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.ll.Len()
}

// Bytes returns the cached byte total.
func (d *DedupCache) Bytes() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.bytes
}
