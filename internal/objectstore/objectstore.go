// Package objectstore is the S3 substitute: a keyed blob store used by the
// web service to hold task payloads and results that exceed the inline
// threshold, and by ProxyStore as one of its storage connectors. It offers
// an in-process API plus an HTTP server (PUT/GET/HEAD/DELETE
// /objects/<key>) for cross-process access, an optional file-backed mode
// (OpenDir) whose objects survive restarts, and a bounded LRU read-through
// cache (DedupCache) for endpoint-side fan-out dedup.
package objectstore

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// Common errors.
var (
	ErrNotFound = errors.New("objectstore: key not found")
	ErrClosed   = errors.New("objectstore: closed")
)

// Store is a blob store safe for concurrent use. By default it is purely
// in-memory; OpenDir adds a file-backed mode where every object is also
// persisted to disk and reloaded on open, so content-addressed references
// held by tasks in a durable WAL stay resolvable across a restart.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
	closed  bool
	dir     string // "" = memory only
	// MaxObject bounds a single object size; 0 means unlimited.
	MaxObject int
	Metrics   *metrics.Registry
}

// New returns an empty in-memory store.
func New() *Store {
	return &Store{objects: make(map[string][]byte), Metrics: metrics.NewRegistry()}
}

// OpenDir returns a store whose objects are persisted under dir (one
// "<hex(key)>.obj" file per object, written atomically) and eagerly
// reloaded from it, so spilled payload/result references survive a process
// restart. The directory is created if missing.
func OpenDir(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("objectstore: open %s: %w", dir, err)
	}
	s := New()
	s.dir = dir
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("objectstore: open %s: %w", dir, err)
	}
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".obj") {
			continue
		}
		rawKey, err := hex.DecodeString(strings.TrimSuffix(name, ".obj"))
		if err != nil {
			continue // foreign file; not one of ours
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("objectstore: reload %s: %w", name, err)
		}
		s.objects[string(rawKey)] = data
	}
	return s, nil
}

// objectPath maps a key to its backing file. Keys are hex-armored so any
// string key yields a safe filename.
func (s *Store) objectPath(key string) string {
	return filepath.Join(s.dir, hex.EncodeToString([]byte(key))+".obj")
}

// persist writes data for key to the backing directory via temp+rename so a
// crash never leaves a truncated object.
func (s *Store) persist(key string, data []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), s.objectPath(key))
}

// Put stores data under key, replacing any existing object.
func (s *Store) Put(key string, data []byte) error {
	return s.putOwned(key, append([]byte(nil), data...))
}

// putOwned stores data, taking ownership of the slice (no defensive copy).
func (s *Store) putOwned(key string, data []byte) error {
	if key == "" {
		return errors.New("objectstore: empty key")
	}
	if s.MaxObject > 0 && len(data) > s.MaxObject {
		return fmt.Errorf("objectstore: object %q size %d exceeds cap %d", key, len(data), s.MaxObject)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if s.dir != "" {
		if err := s.persist(key, data); err != nil {
			return fmt.Errorf("objectstore: persist %q: %w", key, err)
		}
	}
	s.objects[key] = data
	s.Metrics.Counter("puts").Inc()
	// "ingress_bytes" (not "bytes_in") so the exported counter reads
	// ingress_bytes_total with the unit suffix ahead of _total, per
	// Prometheus naming conventions.
	s.Metrics.Counter("ingress_bytes").Add(int64(len(data)))
	return nil
}

// PutReader streams r into the store under key, reading exactly once into
// the stored buffer (no second copy — sizeHint, when >= 0, pre-sizes it).
// Used by the HTTP server so a multi-MB PUT is not double-buffered.
func (s *Store) PutReader(key string, r io.Reader, sizeHint int64) (int64, error) {
	limit := int64(-1)
	if s.MaxObject > 0 {
		limit = int64(s.MaxObject)
	}
	data, err := readAllHint(r, sizeHint, limit)
	if err != nil {
		return 0, fmt.Errorf("objectstore: put %q: %w", key, err)
	}
	if err := s.putOwned(key, data); err != nil {
		return 0, err
	}
	return int64(len(data)), nil
}

// readAllHint reads r to EOF into a buffer pre-sized by hint. limit >= 0
// rejects inputs beyond limit bytes.
func readAllHint(r io.Reader, hint, limit int64) ([]byte, error) {
	if limit >= 0 {
		lr := io.LimitReader(r, limit+1)
		data, err := io.ReadAll(lr)
		if err != nil {
			return nil, err
		}
		if int64(len(data)) > limit {
			return nil, fmt.Errorf("exceeds %d byte cap", limit)
		}
		return data, nil
	}
	var buf bytes.Buffer
	if hint > 0 {
		buf.Grow(int(hint))
	}
	if _, err := io.Copy(&buf, r); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// ContentKey returns the store key for data: its SHA-256 hex digest.
func ContentKey(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// PutContent stores data under its SHA-256 hex digest and returns the key.
// Identical content deduplicates to the same key — and skips the write
// entirely when the key is already present (counted as dedup_hits).
func (s *Store) PutContent(data []byte) (string, error) {
	key := ContentKey(data)
	s.mu.RLock()
	_, exists := s.objects[key]
	closed := s.closed
	s.mu.RUnlock()
	if closed {
		return "", ErrClosed
	}
	if exists {
		s.Metrics.Counter("dedup_hits").Inc()
		return key, nil
	}
	if err := s.Put(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// Get returns a copy of the object stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	data, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.Metrics.Counter("gets").Inc()
	s.Metrics.Counter("egress_bytes").Add(int64(len(data)))
	return append([]byte(nil), data...), nil
}

// GetReader returns a streaming reader over the object under key and its
// size, without copying the stored bytes. The stored slice is never
// mutated after Put, so reading concurrently with other operations is safe.
func (s *Store) GetReader(key string) (io.ReadCloser, int64, error) {
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, 0, ErrClosed
	}
	data, ok := s.objects[key]
	s.mu.RUnlock()
	if !ok {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.Metrics.Counter("gets").Inc()
	s.Metrics.Counter("egress_bytes").Add(int64(len(data)))
	return io.NopCloser(bytes.NewReader(data)), int64(len(data)), nil
}

// Delete removes the object under key. Deleting a missing key returns
// ErrNotFound.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.objects[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(s.objects, key)
	if s.dir != "" {
		_ = os.Remove(s.objectPath(key))
	}
	s.Metrics.Counter("deletes").Inc()
	return nil
}

// Exists reports whether key is present.
func (s *Store) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[key]
	return ok
}

// Size returns the stored size of key, or ErrNotFound.
func (s *Store) Size(key string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return len(data), nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// TotalBytes returns the sum of stored object sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.objects {
		n += int64(len(d))
	}
	return n
}

// Close marks the store closed; subsequent operations fail. File-backed
// objects stay on disk for the next OpenDir.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.objects = nil
}

// Server exposes a Store over HTTP, mimicking presigned-URL style access:
//
//	PUT    /objects/<key>   store body (streamed; Content-Length pre-sizes)
//	GET    /objects/<key>   fetch (streamed with Content-Length)
//	HEAD   /objects/<key>   existence + size probe (dedup fast path)
//	DELETE /objects/<key>   remove
//	GET    /healthz         liveness
type Server struct {
	store *Store
	http  *http.Server
	ln    net.Listener
}

// ServeHTTP starts an HTTP front end for store on addr.
func ServeHTTP(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("objectstore: listen: %w", err)
	}
	mux := http.NewServeMux()
	s := &Server{store: store, ln: ln}
	mux.HandleFunc("/objects/", s.handleObject)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server.
func (s *Server) Close() { s.http.Close() }

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/objects/")
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		// Stream the body straight into the stored buffer — no ReadAll-
		// then-copy double buffering for multi-MB payloads.
		if _, err := s.store.PutReader(key, io.LimitReader(r.Body, 1<<30), r.ContentLength); err != nil {
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		rd, size, err := s.store.GetReader(key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		defer rd.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
		io.Copy(w, rd)
	case http.MethodHead:
		size, err := s.store.Size(key)
		if err != nil {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(size))
		w.WriteHeader(http.StatusOK)
	case http.MethodDelete:
		err := s.store.Delete(key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client accesses a remote object store server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{base: "http://" + addr, hc: &http.Client{Timeout: 30 * time.Second}}
}

// Put stores data under key on the remote store. bytes.Reader gives the
// request a Content-Length so the server pre-sizes its buffer.
func (c *Client) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.base+"/objects/"+key, bytes.NewReader(data))
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("objectstore: put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("objectstore: put %q: status %s", key, resp.Status)
	}
	return nil
}

// PutReader streams r (size bytes) to the remote store under key without
// buffering the whole object client-side.
func (c *Client) PutReader(key string, r io.Reader, size int64) error {
	req, err := http.NewRequest(http.MethodPut, c.base+"/objects/"+key, r)
	if err != nil {
		return err
	}
	if size >= 0 {
		req.ContentLength = size
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("objectstore: put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("objectstore: put %q: status %s", key, resp.Status)
	}
	return nil
}

// PutContent stores data under its content key, probing with HEAD first so
// re-uploads of content the store already holds (fan-out inputs, retried
// results) skip the body transfer entirely.
func (c *Client) PutContent(data []byte) (string, error) {
	key := ContentKey(data)
	if ok, err := c.Exists(key); err == nil && ok {
		return key, nil
	}
	if err := c.Put(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// Exists probes the remote store for key with a HEAD request.
func (c *Client) Exists(key string) (bool, error) {
	req, err := http.NewRequest(http.MethodHead, c.base+"/objects/"+key, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, fmt.Errorf("objectstore: head: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		return true, nil
	case http.StatusNotFound:
		return false, nil
	default:
		return false, fmt.Errorf("objectstore: head %q: status %s", key, resp.Status)
	}
}

// Get fetches the object under key from the remote store.
func (c *Client) Get(key string) ([]byte, error) {
	rd, size, err := c.GetReader(key)
	if err != nil {
		return nil, err
	}
	defer rd.Close()
	return readAllHint(rd, size, -1)
}

// GetReader streams the object under key from the remote store; the
// returned size is -1 when the server did not send Content-Length.
func (c *Client) GetReader(key string) (io.ReadCloser, int64, error) {
	resp, err := c.hc.Get(c.base + "/objects/" + key)
	if err != nil {
		return nil, 0, fmt.Errorf("objectstore: get: %w", err)
	}
	if resp.StatusCode == http.StatusNotFound {
		resp.Body.Close()
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		return nil, 0, fmt.Errorf("objectstore: get %q: status %s", key, resp.Status)
	}
	return resp.Body, resp.ContentLength, nil
}

// Delete removes the object under key on the remote store.
func (c *Client) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/objects/"+key, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("objectstore: delete: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("objectstore: delete %q: status %s", key, resp.Status)
	}
	return nil
}
