// Package objectstore is the S3 substitute: a keyed blob store used by the
// web service to hold task payloads and results that exceed the inline
// threshold, and by ProxyStore as one of its storage connectors. It offers
// an in-process API plus an HTTP server (PUT/GET/DELETE /objects/<key>) for
// cross-process access.
package objectstore

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// Common errors.
var (
	ErrNotFound = errors.New("objectstore: key not found")
	ErrClosed   = errors.New("objectstore: closed")
)

// Store is an in-memory blob store safe for concurrent use.
type Store struct {
	mu      sync.RWMutex
	objects map[string][]byte
	closed  bool
	// MaxObject bounds a single object size; 0 means unlimited.
	MaxObject int
	Metrics   *metrics.Registry
}

// New returns an empty store.
func New() *Store {
	return &Store{objects: make(map[string][]byte), Metrics: metrics.NewRegistry()}
}

// Put stores data under key, replacing any existing object.
func (s *Store) Put(key string, data []byte) error {
	if key == "" {
		return errors.New("objectstore: empty key")
	}
	if s.MaxObject > 0 && len(data) > s.MaxObject {
		return fmt.Errorf("objectstore: object %q size %d exceeds cap %d", key, len(data), s.MaxObject)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.objects[key] = append([]byte(nil), data...)
	s.Metrics.Counter("puts").Inc()
	// "ingress_bytes" (not "bytes_in") so the exported counter reads
	// ingress_bytes_total with the unit suffix ahead of _total, per
	// Prometheus naming conventions.
	s.Metrics.Counter("ingress_bytes").Add(int64(len(data)))
	return nil
}

// PutContent stores data under its SHA-256 hex digest and returns the key.
// Identical content deduplicates to the same key.
func (s *Store) PutContent(data []byte) (string, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:])
	if err := s.Put(key, data); err != nil {
		return "", err
	}
	return key, nil
}

// Get returns a copy of the object stored under key.
func (s *Store) Get(key string) ([]byte, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.closed {
		return nil, ErrClosed
	}
	data, ok := s.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	s.Metrics.Counter("gets").Inc()
	return append([]byte(nil), data...), nil
}

// Delete removes the object under key. Deleting a missing key returns
// ErrNotFound.
func (s *Store) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if _, ok := s.objects[key]; !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	delete(s.objects, key)
	s.Metrics.Counter("deletes").Inc()
	return nil
}

// Exists reports whether key is present.
func (s *Store) Exists(key string) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	_, ok := s.objects[key]
	return ok
}

// Size returns the stored size of key, or ErrNotFound.
func (s *Store) Size(key string) (int, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	data, ok := s.objects[key]
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return len(data), nil
}

// Len returns the number of stored objects.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.objects)
}

// TotalBytes returns the sum of stored object sizes.
func (s *Store) TotalBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var n int64
	for _, d := range s.objects {
		n += int64(len(d))
	}
	return n
}

// Close marks the store closed; subsequent operations fail.
func (s *Store) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.objects = nil
}

// Server exposes a Store over HTTP, mimicking presigned-URL style access:
//
//	PUT    /objects/<key>   store body
//	GET    /objects/<key>   fetch
//	DELETE /objects/<key>   remove
//	GET    /healthz         liveness
type Server struct {
	store *Store
	http  *http.Server
	ln    net.Listener
}

// ServeHTTP starts an HTTP front end for store on addr.
func ServeHTTP(store *Store, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("objectstore: listen: %w", err)
	}
	mux := http.NewServeMux()
	s := &Server{store: store, ln: ln}
	mux.HandleFunc("/objects/", s.handleObject)
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	s.http = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go s.http.Serve(ln)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the HTTP server.
func (s *Server) Close() { s.http.Close() }

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	key := strings.TrimPrefix(r.URL.Path, "/objects/")
	if key == "" || strings.Contains(key, "/") {
		http.Error(w, "bad key", http.StatusBadRequest)
		return
	}
	switch r.Method {
	case http.MethodPut:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<30))
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if err := s.store.Put(key, body); err != nil {
			http.Error(w, err.Error(), http.StatusInsufficientStorage)
			return
		}
		w.WriteHeader(http.StatusCreated)
	case http.MethodGet:
		data, err := s.store.Get(key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Write(data)
	case http.MethodDelete:
		err := s.store.Delete(key)
		if errors.Is(err, ErrNotFound) {
			http.NotFound(w, r)
			return
		}
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.WriteHeader(http.StatusNoContent)
	default:
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
	}
}

// Client accesses a remote object store server.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient returns a client for the server at addr (host:port).
func NewClient(addr string) *Client {
	return &Client{base: "http://" + addr, hc: &http.Client{Timeout: 30 * time.Second}}
}

// Put stores data under key on the remote store.
func (c *Client) Put(key string, data []byte) error {
	req, err := http.NewRequest(http.MethodPut, c.base+"/objects/"+key, strings.NewReader(string(data)))
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("objectstore: put: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return fmt.Errorf("objectstore: put %q: status %s", key, resp.Status)
	}
	return nil
}

// Get fetches the object under key from the remote store.
func (c *Client) Get(key string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/objects/" + key)
	if err != nil {
		return nil, fmt.Errorf("objectstore: get: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("objectstore: get %q: status %s", key, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// Delete removes the object under key on the remote store.
func (c *Client) Delete(key string) error {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/objects/"+key, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("objectstore: delete: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("objectstore: delete %q: status %s", key, resp.Status)
	}
	return nil
}
