// Package chaos is a deterministic, seedable fault-injection layer for the
// Globus Compute stack. It provides wrappers for every process boundary —
// broker connections (publish failures, delivery delays, connection drops),
// the web service HTTP surface (5xx, 429+Retry-After, latency, transport
// errors), and workers (kills mid-task) — so the delivery guarantees the
// hosted service promises (fire-and-forget tasks survive endpoint and
// network failures) can be exercised and proven in tests instead of assumed.
//
// All randomness flows through one seeded Injector, so a chaos run with a
// fixed seed draws the same fault decisions in the same decision order.
// (Under concurrency the interleaving of *which component* draws next still
// varies with scheduling; determinism is per decision sequence, which is
// what bounded-loss assertions need.)
package chaos

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/trace"
)

// ErrInjected marks a fault synthesized by this package. It wraps
// broker.ErrClosed so retry layers classify it as a transient connection
// loss, which is what it simulates.
var ErrInjected = fmt.Errorf("chaos: injected fault: %w", broker.ErrClosed)

// Injector is the seeded decision source shared by every fault wrapper. It
// also counts fired faults per name so tests can assert injection really
// happened.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	fired map[string]int64
	// disabled pauses all injection (useful to let a chaotic run drain).
	disabled bool
}

// NewInjector returns an injector drawing from the given seed.
func NewInjector(seed int64) *Injector {
	return &Injector{rng: rand.New(rand.NewSource(seed)), fired: make(map[string]int64)}
}

// Decide draws one decision: true with probability p. Fired decisions are
// counted under name.
func (i *Injector) Decide(name string, p float64) bool {
	if i == nil || p <= 0 {
		return false
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.disabled || i.rng.Float64() >= p {
		return false
	}
	i.fired[name]++
	return true
}

// Fired reports how many faults fired under name.
func (i *Injector) Fired(name string) int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.fired[name]
}

// TotalFired sums all fired faults.
func (i *Injector) TotalFired() int64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	var n int64
	for _, v := range i.fired {
		n += v
	}
	return n
}

// SetDisabled pauses (true) or resumes (false) all injection, letting a
// test stop the storm and assert the system drains to a stable state.
func (i *Injector) SetDisabled(v bool) {
	i.mu.Lock()
	i.disabled = v
	i.mu.Unlock()
}

// --- broker connection faults ---

// ConnFaults configures fault injection on a broker.Conn. Probabilities are
// per operation in [0,1].
type ConnFaults struct {
	// PublishFailRate fails Publish/PublishTraced with ErrInjected.
	PublishFailRate float64
	// PublishDelay sleeps before each publish selected by PublishDelayRate
	// (payload-delivery delay injection).
	PublishDelay     time.Duration
	PublishDelayRate float64
	// DropRate drops the subscription on delivery: the message is still
	// handed to the consumer, but with probability DropRate the underlying
	// subscription is cancelled first, so everything unacked (including
	// this message) requeues on the broker and the consumer's stream
	// closes — a simulated connection loss mid-flight.
	DropRate float64
}

// WrapConn returns a Conn that injects f's faults around inner. Pair it
// with broker.NewReconnecting (chaos conn as the Dial result) to exercise
// reconnect-with-resubscribe paths.
func WrapConn(inner broker.Conn, inj *Injector, f ConnFaults) broker.Conn {
	return &faultyConn{inner: inner, inj: inj, f: f}
}

type faultyConn struct {
	inner broker.Conn
	inj   *Injector
	f     ConnFaults
}

func (c *faultyConn) Declare(queue string) error { return c.inner.Declare(queue) }
func (c *faultyConn) Delete(queue string) error  { return c.inner.Delete(queue) }

func (c *faultyConn) Publish(queue string, body []byte) error {
	return c.PublishTraced(queue, body, nil)
}

func (c *faultyConn) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	if c.inj.Decide("conn.publish_delay", c.f.PublishDelayRate) {
		time.Sleep(c.f.PublishDelay)
	}
	if c.inj.Decide("conn.publish_fail", c.f.PublishFailRate) {
		return ErrInjected
	}
	return c.inner.PublishTraced(queue, body, tc)
}

func (c *faultyConn) Subscribe(queue string, prefetch int) (broker.Subscription, error) {
	sub, err := c.inner.Subscribe(queue, prefetch)
	if err != nil {
		return nil, err
	}
	fs := &faultySub{inner: sub, inj: c.inj, f: c.f, out: make(chan broker.Message, prefetch+1)}
	go fs.pump()
	return fs, nil
}

// faultySub relays deliveries, occasionally severing the stream the way a
// dying TCP connection would: unacked messages requeue broker-side and the
// consumer sees its channel close.
type faultySub struct {
	inner broker.Subscription
	inj   *Injector
	f     ConnFaults
	out   chan broker.Message
}

func (s *faultySub) pump() {
	for m := range s.inner.Messages() {
		if s.inj.Decide("conn.drop", s.f.DropRate) {
			// Sever before relaying: the in-flight message requeues along
			// with everything else unacked.
			_ = s.inner.Cancel()
			// Drain any deliveries raced in before the cancel took effect.
			for range s.inner.Messages() {
			}
			close(s.out)
			return
		}
		s.out <- m
	}
	close(s.out)
}

func (s *faultySub) Messages() <-chan broker.Message { return s.out }
func (s *faultySub) Ack(tag uint64) error            { return s.inner.Ack(tag) }
func (s *faultySub) Nack(tag uint64) error           { return s.inner.Nack(tag) }
func (s *faultySub) Reject(tag uint64) error         { return s.inner.Reject(tag) }
func (s *faultySub) Cancel() error                   { return s.inner.Cancel() }

// --- web service HTTP faults ---

// HTTPFaults configures fault injection on the web service REST surface.
type HTTPFaults struct {
	// ErrorRate fails the round trip with a transport error (connection
	// reset) before the request reaches the server.
	ErrorRate float64
	// ServerErrorRate short-circuits with a synthesized 503.
	ServerErrorRate float64
	// TooManyRate short-circuits with a synthesized 429 carrying
	// Retry-After (RetryAfter, default 1s, rendered in whole seconds).
	TooManyRate float64
	RetryAfter  time.Duration
	// Delay sleeps before requests selected by DelayRate (slow responses).
	Delay     time.Duration
	DelayRate float64
}

// RoundTripper injects HTTP faults in front of Base (default
// http.DefaultTransport). Install it as an http.Client Transport, e.g. on
// sdk.Client.HTTP, to exercise client retry/backoff without touching the
// server.
type RoundTripper struct {
	Base   http.RoundTripper
	Inj    *Injector
	Faults HTTPFaults
}

// RoundTrip implements http.RoundTripper.
func (rt *RoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if rt.Inj.Decide("http.delay", rt.Faults.DelayRate) {
		time.Sleep(rt.Faults.Delay)
	}
	if rt.Inj.Decide("http.error", rt.Faults.ErrorRate) {
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, errors.New("chaos: connection reset by peer")
	}
	if rt.Inj.Decide("http.500", rt.Faults.ServerErrorRate) {
		return synthesize(req, http.StatusServiceUnavailable, nil), nil
	}
	if rt.Inj.Decide("http.429", rt.Faults.TooManyRate) {
		ra := rt.Faults.RetryAfter
		if ra <= 0 {
			ra = time.Second
		}
		secs := int(ra / time.Second)
		if secs < 1 {
			secs = 1
		}
		h := http.Header{"Retry-After": []string{strconv.Itoa(secs)}}
		return synthesize(req, http.StatusTooManyRequests, h), nil
	}
	base := rt.Base
	if base == nil {
		base = http.DefaultTransport
	}
	return base.RoundTrip(req)
}

// synthesize fabricates a response without contacting the server (the
// request body is consumed and closed, as a real transport would).
func synthesize(req *http.Request, status int, h http.Header) *http.Response {
	if req.Body != nil {
		_, _ = io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	if h == nil {
		h = http.Header{}
	}
	body := fmt.Sprintf(`{"error":"chaos: injected %d"}`, status)
	h.Set("Content-Type", "application/json")
	return &http.Response{
		StatusCode: status,
		Status:     fmt.Sprintf("%d %s", status, http.StatusText(status)),
		Header:     h,
		Body:       io.NopCloser(strings.NewReader(body)),
		Request:    req,
		Proto:      "HTTP/1.1", ProtoMajor: 1, ProtoMinor: 1,
	}
}

// --- worker faults ---

// RunnerFaults configures worker-kill injection.
type RunnerFaults struct {
	// KillRate kills the worker mid-task with this probability: the
	// wrapped runner returns a zero Result, which the engine treats as a
	// crashed worker and retries under the task's attempt budget.
	KillRate float64
	// KillIf force-kills matching tasks on every attempt (a deliberately
	// poisoned task, for dead-letter assertions). Evaluated before
	// KillRate and counted separately.
	KillIf func(protocol.Task) bool
	// Delay sleeps inside the worker before tasks selected by DelayRate.
	Delay     time.Duration
	DelayRate float64
}

// WrapRunner returns a TaskRunner injecting f's faults around run.
func WrapRunner(run engine.TaskRunner, inj *Injector, f RunnerFaults) engine.TaskRunner {
	return func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		if f.KillIf != nil && f.KillIf(task) {
			inj.note("runner.poison_kill")
			return protocol.Result{}
		}
		if inj.Decide("runner.delay", f.DelayRate) {
			time.Sleep(f.Delay)
		}
		if inj.Decide("runner.kill", f.KillRate) {
			return protocol.Result{}
		}
		return run(ctx, task, w)
	}
}

// note counts an unconditional fault firing.
func (i *Injector) note(name string) {
	if i == nil {
		return
	}
	i.mu.Lock()
	i.fired[name]++
	i.mu.Unlock()
}
