package chaos

import (
	"context"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/protocol"
)

func TestInjectorDeterministic(t *testing.T) {
	a, b := NewInjector(42), NewInjector(42)
	for i := 0; i < 1000; i++ {
		if a.Decide("x", 0.3) != b.Decide("x", 0.3) {
			t.Fatalf("decision %d diverged across same-seed injectors", i)
		}
	}
	if a.Fired("x") != b.Fired("x") {
		t.Errorf("fired counts diverged: %d vs %d", a.Fired("x"), b.Fired("x"))
	}
	if a.Fired("x") == 0 {
		t.Error("p=0.3 over 1000 draws never fired")
	}
	if a.TotalFired() != a.Fired("x") {
		t.Errorf("TotalFired = %d, Fired(x) = %d", a.TotalFired(), a.Fired("x"))
	}
}

func TestInjectorDisabled(t *testing.T) {
	inj := NewInjector(1)
	inj.SetDisabled(true)
	for i := 0; i < 100; i++ {
		if inj.Decide("x", 1.0) {
			t.Fatal("disabled injector fired")
		}
	}
	inj.SetDisabled(false)
	if !inj.Decide("x", 1.0) {
		t.Error("re-enabled injector did not fire at p=1")
	}
}

func TestNilInjectorSafe(t *testing.T) {
	var inj *Injector
	if inj.Decide("x", 1.0) {
		t.Error("nil injector fired")
	}
	if inj.Fired("x") != 0 || inj.TotalFired() != 0 {
		t.Error("nil injector reported fired faults")
	}
	inj.note("x") // must not panic
}

func TestConnPublishFault(t *testing.T) {
	b := broker.New()
	defer b.Close()
	inj := NewInjector(7)
	conn := WrapConn(broker.LocalConn(b), inj, ConnFaults{PublishFailRate: 1.0})
	if err := conn.Declare("q"); err != nil {
		t.Fatal(err)
	}
	err := conn.Publish("q", []byte("x"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if !errors.Is(err, broker.ErrClosed) {
		t.Error("ErrInjected does not unwrap to broker.ErrClosed (retry layers would misclassify it)")
	}
	if inj.Fired("conn.publish_fail") != 1 {
		t.Errorf("fired = %d, want 1", inj.Fired("conn.publish_fail"))
	}
}

func TestConnDropSeversSubscriptionAndRequeues(t *testing.T) {
	b := broker.New()
	defer b.Close()
	inj := NewInjector(7)
	conn := WrapConn(broker.LocalConn(b), inj, ConnFaults{DropRate: 1.0})
	if err := conn.Declare("q"); err != nil {
		t.Fatal(err)
	}
	if err := conn.Publish("q", []byte("precious")); err != nil {
		t.Fatal(err)
	}
	sub, err := conn.Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	// DropRate=1: the stream must close without delivering.
	select {
	case _, ok := <-sub.Messages():
		if ok {
			t.Fatal("delivery arrived despite DropRate=1")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("stream never closed")
	}
	// The message requeued broker-side: a clean consumer receives it.
	clean, err := broker.LocalConn(b).Subscribe("q", 1)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-clean.Messages():
		if string(m.Body) != "precious" {
			t.Fatalf("message = %q", m.Body)
		}
		if !m.Redelivered {
			t.Error("requeued message not flagged redelivered")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("dropped message never requeued")
	}
}

func TestRoundTripperFaults(t *testing.T) {
	req := func() *http.Request {
		r, _ := http.NewRequest("POST", "http://example.invalid/v2/submit",
			strings.NewReader(`{"tasks":[]}`))
		return r
	}

	t.Run("server error", func(t *testing.T) {
		rt := &RoundTripper{Inj: NewInjector(1), Faults: HTTPFaults{ServerErrorRate: 1.0}}
		resp, err := rt.RoundTrip(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("status = %d, want 503", resp.StatusCode)
		}
		body, _ := io.ReadAll(resp.Body)
		if !strings.Contains(string(body), "chaos") {
			t.Errorf("body = %q", body)
		}
	})

	t.Run("rate limited", func(t *testing.T) {
		rt := &RoundTripper{Inj: NewInjector(1), Faults: HTTPFaults{TooManyRate: 1.0, RetryAfter: 3 * time.Second}}
		resp, err := rt.RoundTrip(req())
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Errorf("status = %d, want 429", resp.StatusCode)
		}
		if ra := resp.Header.Get("Retry-After"); ra != "3" {
			t.Errorf("Retry-After = %q, want 3", ra)
		}
	})

	t.Run("transport error", func(t *testing.T) {
		rt := &RoundTripper{Inj: NewInjector(1), Faults: HTTPFaults{ErrorRate: 1.0}}
		if _, err := rt.RoundTrip(req()); err == nil {
			t.Fatal("injected transport error missing")
		}
	})
}

func TestWrapRunnerKill(t *testing.T) {
	var ran int
	base := func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		ran++
		return protocol.Result{State: protocol.StateSuccess}
	}
	inj := NewInjector(1)
	killAll := WrapRunner(base, inj, RunnerFaults{KillRate: 1.0})
	res := killAll(context.Background(), protocol.Task{ID: protocol.NewUUID()}, engine.WorkerInfo{})
	if res.State != "" {
		t.Errorf("killed runner returned state %q, want zero Result", res.State)
	}
	if ran != 0 {
		t.Error("wrapped runner executed despite kill")
	}
	if inj.Fired("runner.kill") != 1 {
		t.Errorf("runner.kill fired = %d", inj.Fired("runner.kill"))
	}
}

func TestWrapRunnerKillIf(t *testing.T) {
	poison := protocol.NewUUID()
	base := func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		return protocol.Result{State: protocol.StateSuccess}
	}
	inj := NewInjector(1)
	run := WrapRunner(base, inj, RunnerFaults{KillIf: func(t protocol.Task) bool { return t.ID == poison }})
	if res := run(context.Background(), protocol.Task{ID: poison}, engine.WorkerInfo{}); res.State != "" {
		t.Error("poison task survived KillIf")
	}
	if res := run(context.Background(), protocol.Task{ID: protocol.NewUUID()}, engine.WorkerInfo{}); res.State != protocol.StateSuccess {
		t.Error("healthy task killed")
	}
	if inj.Fired("runner.poison_kill") != 1 {
		t.Errorf("poison_kill fired = %d, want 1", inj.Fired("runner.poison_kill"))
	}
}
