package proxyexec_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"encoding/json"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/proxyexec"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/sdk"
)

type proxyStack struct {
	tb    *core.Testbed
	ex    *proxyexec.Executor
	store *proxystore.Store
}

func newProxyStack(t *testing.T, minSize int) *proxyStack {
	t.Helper()
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)

	// Client and workers share one in-site store (the testbed object
	// store), as with a shared filesystem or Redis deployment.
	store, err := proxystore.NewStore("site", proxystore.ObjectStoreConnector{Backend: tb.Objects}, 16)
	if err != nil {
		t.Fatal(err)
	}
	policy := proxystore.Policy{MinSize: minSize}

	tok, _ := tb.IssueToken("px@uchicago.edu", "uchicago")
	epID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "px-ep", Owner: "px",
		ProxyStore: store, ProxyPolicy: policy,
	})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	inner, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:     sdk.NewClient(tb.ServiceAddr(), tok.Value),
		EndpointID: epID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := proxystore.NewRegistry()
	reg.Register(store)
	ex, err := proxyexec.Wrap(inner, store, reg, policy)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	return &proxyStack{tb: tb, ex: ex, store: store}
}

func TestWrapValidation(t *testing.T) {
	if _, err := proxyexec.Wrap(nil, nil, nil, proxystore.Policy{}); err == nil {
		t.Error("nil inputs accepted")
	}
}

func TestTransparentArgumentProxying(t *testing.T) {
	s := newProxyStack(t, 1024)
	big := strings.Repeat("w", 100_000)
	// identity receives the resolved value even though only a reference
	// crossed the cloud.
	fut, err := s.ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, big)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := s.ex.Result(ctx, fut)
	if err != nil {
		t.Fatal(err)
	}
	var round string
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	if round != big {
		t.Fatalf("round trip lost data: %d of %d bytes", len(round), len(big))
	}
	if s.store.Metrics.Counter("proxied").Value() < 1 {
		t.Error("argument never proxied")
	}
	if s.store.Metrics.Counter("resolves").Value() < 1 {
		t.Error("worker never resolved the proxy")
	}
}

func TestResultAutoProxied(t *testing.T) {
	s := newProxyStack(t, 1024)
	big := strings.Repeat("r", 50_000)
	fut, err := s.ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, big)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	// The raw (unresolved) future output is a small reference, not the
	// value: the result was proxied on the worker side.
	raw, err := fut.Result(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) > 2048 {
		t.Errorf("raw result is %d bytes; expected a reference", len(raw))
	}
	if !strings.Contains(string(raw), "ps_key") {
		t.Errorf("raw result is not a reference: %.80s", raw)
	}
	out, err := s.ex.Result(ctx, fut)
	if err != nil {
		t.Fatal(err)
	}
	var round string
	if err := json.Unmarshal(out, &round); err != nil {
		t.Fatal(err)
	}
	if round != big {
		t.Fatalf("resolved result lost data: %d bytes", len(round))
	}
}

func TestSmallValuesStayInline(t *testing.T) {
	s := newProxyStack(t, 1<<20)
	fut, err := s.ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, "tiny")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	out, err := s.ex.Result(ctx, fut)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != `"tiny"` {
		t.Errorf("out = %s", out)
	}
	if s.store.Metrics.Counter("proxied").Value() != 0 {
		t.Error("small value was proxied")
	}
}
