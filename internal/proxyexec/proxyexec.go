// Package proxyexec is the ProxyStore executor wrapper the paper describes
// (§V-B): it wraps a Globus Compute executor so task arguments above a
// size policy are automatically proxied into a store (only the reference
// passes through the cloud), and proxied results resolve transparently
// when futures are read. Worker-side resolution happens in the endpoint
// runner (endpoint.RunnerConfig.Proxies).
package proxyexec

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"globuscompute/internal/proxystore"
	"globuscompute/internal/sdk"
)

// Executor wraps an sdk.Executor with argument/result proxying.
type Executor struct {
	inner  *sdk.Executor
	store  *proxystore.Store
	reg    *proxystore.Registry
	policy proxystore.Policy
}

// Wrap builds the proxying wrapper. The registry must be able to resolve
// references created against store (register the store in it).
func Wrap(inner *sdk.Executor, store *proxystore.Store, reg *proxystore.Registry, policy proxystore.Policy) (*Executor, error) {
	if inner == nil || store == nil || reg == nil {
		return nil, errors.New("proxyexec: executor, store, and registry are all required")
	}
	if policy.MinSize <= 0 {
		return nil, errors.New("proxyexec: policy requires a positive MinSize")
	}
	return &Executor{inner: inner, store: store, reg: reg, policy: policy}, nil
}

// Inner returns the wrapped executor (for configuration such as
// ResourceSpec or UserEndpointConfig).
func (e *Executor) Inner() *sdk.Executor { return e.inner }

// Submit proxies oversized arguments by policy, then submits.
func (e *Executor) Submit(fn *sdk.PythonFunction, args ...any) (*sdk.Future, error) {
	prepared := make([]any, len(args))
	for i, a := range args {
		raw, proxied, err := proxystore.MaybeProxy(e.store, e.policy, a)
		if err != nil {
			return nil, fmt.Errorf("proxyexec: arg %d: %w", i, err)
		}
		if proxied {
			prepared[i] = json.RawMessage(raw)
		} else {
			prepared[i] = a
		}
	}
	return e.inner.Submit(fn, prepared...)
}

// Result reads a future and transparently resolves a proxied result.
func (e *Executor) Result(ctx context.Context, fut *sdk.Future) ([]byte, error) {
	out, err := fut.Result(ctx)
	if err != nil {
		return nil, err
	}
	resolved, _, err := proxystore.MaybeResolve(e.reg, json.RawMessage(out))
	if err != nil {
		return nil, fmt.Errorf("proxyexec: resolve result: %w", err)
	}
	return resolved, nil
}

// Close closes the wrapped executor.
func (e *Executor) Close() { e.inner.Close() }
