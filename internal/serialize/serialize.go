// Package serialize implements the payload encoding used between the SDK and
// workers, together with the service's payload size policy: task arguments
// and results above the hosted service's 10 MB cap must travel out of band
// (object store reference or ProxyStore proxy), and payloads above a smaller
// inline threshold are spilled from the task record to the object store.
//
// The hosted service serializes Python objects with dill; the Go substitute
// offers a tagged multi-codec envelope (JSON for interoperable values, gob
// for Go-native graphs) so that workers can decode without guessing.
package serialize

import (
	"bytes"
	"compress/gzip"
	"encoding/gob"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxPayload is the hosted service's documented 10 MB cap on task arguments
// and results passed through the cloud.
const MaxPayload = 10 << 20

// DefaultInlineThreshold is the size above which the web service spills a
// payload to the object store rather than carrying it inline through the
// state store and queues.
const DefaultInlineThreshold = 64 << 10

// ErrPayloadTooLarge is returned when an encoded payload exceeds MaxPayload.
// Callers are expected to switch to pass-by-reference (see proxystore).
var ErrPayloadTooLarge = errors.New("serialize: payload exceeds 10 MB service limit")

// Codec identifies an encoding scheme inside the envelope.
type Codec byte

const (
	// CodecJSON is the default interoperable encoding.
	CodecJSON Codec = 'J'
	// CodecGob encodes Go-native values (worker and client both in Go).
	CodecGob Codec = 'G'
	// CodecRaw wraps a pre-encoded byte slice without interpretation.
	CodecRaw Codec = 'R'
)

// flag bits in the envelope header's second byte.
const flagGzip = 0x1

// header is: codec byte, flags byte, then body.
const headerLen = 2

// Options configures encoding behaviour.
type Options struct {
	Codec Codec
	// Compress gzips bodies larger than CompressAbove bytes.
	Compress      bool
	CompressAbove int
	// Limit overrides MaxPayload when positive; tests use small limits.
	Limit int
}

// DefaultOptions mirror the SDK defaults: JSON, gzip above 4 KiB, 10 MB cap.
func DefaultOptions() Options {
	return Options{Codec: CodecJSON, Compress: true, CompressAbove: 4 << 10, Limit: MaxPayload}
}

func (o Options) limit() int {
	if o.Limit > 0 {
		return o.Limit
	}
	return MaxPayload
}

// Encode serializes v under opts into a self-describing envelope.
func Encode(v any, opts Options) ([]byte, error) {
	var body []byte
	switch opts.Codec {
	case CodecJSON, 0:
		b, err := json.Marshal(v)
		if err != nil {
			return nil, fmt.Errorf("serialize: json: %w", err)
		}
		body = b
		opts.Codec = CodecJSON
	case CodecGob:
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(v); err != nil {
			return nil, fmt.Errorf("serialize: gob: %w", err)
		}
		body = buf.Bytes()
	case CodecRaw:
		raw, ok := v.([]byte)
		if !ok {
			return nil, fmt.Errorf("serialize: raw codec requires []byte, got %T", v)
		}
		body = raw
	default:
		return nil, fmt.Errorf("serialize: unknown codec %q", opts.Codec)
	}

	var flags byte
	if opts.Compress && len(body) > opts.CompressAbove {
		var buf bytes.Buffer
		zw := gzip.NewWriter(&buf)
		if _, err := zw.Write(body); err != nil {
			return nil, fmt.Errorf("serialize: gzip: %w", err)
		}
		if err := zw.Close(); err != nil {
			return nil, fmt.Errorf("serialize: gzip close: %w", err)
		}
		if buf.Len() < len(body) {
			body = buf.Bytes()
			flags |= flagGzip
		}
	}

	out := make([]byte, headerLen+len(body))
	out[0] = byte(opts.Codec)
	out[1] = flags
	copy(out[headerLen:], body)
	if len(out) > opts.limit() {
		return nil, fmt.Errorf("%w (encoded %d bytes, limit %d)", ErrPayloadTooLarge, len(out), opts.limit())
	}
	return out, nil
}

// Decode deserializes an envelope produced by Encode into v. For CodecRaw,
// v must be a *[]byte.
func Decode(data []byte, v any) error {
	if len(data) < headerLen {
		return fmt.Errorf("serialize: envelope too short (%d bytes)", len(data))
	}
	codec, flags := Codec(data[0]), data[1]
	body := data[headerLen:]
	if flags&flagGzip != 0 {
		zr, err := gzip.NewReader(bytes.NewReader(body))
		if err != nil {
			return fmt.Errorf("serialize: gunzip: %w", err)
		}
		decoded, err := io.ReadAll(zr)
		if err != nil {
			return fmt.Errorf("serialize: gunzip read: %w", err)
		}
		if err := zr.Close(); err != nil {
			return fmt.Errorf("serialize: gunzip close: %w", err)
		}
		body = decoded
	}
	switch codec {
	case CodecJSON:
		if err := json.Unmarshal(body, v); err != nil {
			return fmt.Errorf("serialize: json decode: %w", err)
		}
	case CodecGob:
		if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
			return fmt.Errorf("serialize: gob decode: %w", err)
		}
	case CodecRaw:
		p, ok := v.(*[]byte)
		if !ok {
			return fmt.Errorf("serialize: raw codec requires *[]byte, got %T", v)
		}
		*p = append((*p)[:0], body...)
	default:
		return fmt.Errorf("serialize: unknown codec byte %q", codec)
	}
	return nil
}

// CheckLimit enforces the service payload cap on an already-encoded blob.
func CheckLimit(data []byte) error {
	if len(data) > MaxPayload {
		return fmt.Errorf("%w (%d bytes)", ErrPayloadTooLarge, len(data))
	}
	return nil
}

// ShouldSpill reports whether an encoded payload should be written to the
// object store rather than carried inline, given a threshold (<=0 selects
// DefaultInlineThreshold).
func ShouldSpill(data []byte, threshold int) bool {
	if threshold <= 0 {
		threshold = DefaultInlineThreshold
	}
	return len(data) > threshold
}
