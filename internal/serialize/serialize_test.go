package serialize

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestJSONRoundTrip(t *testing.T) {
	type payload struct {
		Name  string
		Count int
		Tags  []string
	}
	in := payload{Name: "x", Count: 3, Tags: []string{"a", "b"}}
	data, err := Encode(in, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var out payload
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out.Name != in.Name || out.Count != in.Count || len(out.Tags) != 2 {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
}

func TestGobRoundTrip(t *testing.T) {
	in := map[string][]int{"a": {1, 2, 3}}
	data, err := Encode(in, Options{Codec: CodecGob})
	if err != nil {
		t.Fatal(err)
	}
	var out map[string][]int
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out["a"]) != 3 || out["a"][2] != 3 {
		t.Errorf("gob round trip = %v", out)
	}
}

func TestRawRoundTrip(t *testing.T) {
	in := []byte{0, 1, 2, 255}
	data, err := Encode(in, Options{Codec: CodecRaw})
	if err != nil {
		t.Fatal(err)
	}
	var out []byte
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Errorf("raw round trip = %v, want %v", out, in)
	}
}

func TestRawCodecTypeErrors(t *testing.T) {
	if _, err := Encode("not bytes", Options{Codec: CodecRaw}); err == nil {
		t.Error("Encode raw with string succeeded")
	}
	data, _ := Encode([]byte("x"), Options{Codec: CodecRaw})
	var s string
	if err := Decode(data, &s); err == nil {
		t.Error("Decode raw into *string succeeded")
	}
}

func TestCompressionApplied(t *testing.T) {
	// Highly compressible payload well above the threshold must shrink.
	in := strings.Repeat("abcdefgh", 4096) // 32 KiB
	opts := DefaultOptions()
	data, err := Encode(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= len(in) {
		t.Errorf("compressed size %d >= input %d", len(data), len(in))
	}
	var out string
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Error("compressed round trip mismatch")
	}
}

func TestCompressionSkippedWhenLarger(t *testing.T) {
	// Incompressible data should be stored uncompressed (flag unset).
	in := make([]byte, 8192)
	for i := range in {
		in[i] = byte(i*7 + i*i*13) // pseudo-random-ish
	}
	data, err := Encode(in, Options{Codec: CodecRaw, Compress: true, CompressAbove: 16})
	if err != nil {
		t.Fatal(err)
	}
	if data[1]&0x1 != 0 {
		// gzip of this may or may not shrink; only assert decode works
		t.Log("payload compressed; verifying round trip")
	}
	var out []byte
	if err := Decode(data, &out); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Error("round trip mismatch")
	}
}

func TestPayloadLimitEnforced(t *testing.T) {
	big := make([]byte, 1024)
	_, err := Encode(big, Options{Codec: CodecRaw, Limit: 512})
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestPayloadLimitDefaultTenMB(t *testing.T) {
	// 10MB + 1 of incompressible-ish data with compression off.
	big := make([]byte, MaxPayload+1)
	_, err := Encode(big, Options{Codec: CodecRaw})
	if !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}

func TestCheckLimit(t *testing.T) {
	if err := CheckLimit(make([]byte, 100)); err != nil {
		t.Errorf("CheckLimit small = %v", err)
	}
	if err := CheckLimit(make([]byte, MaxPayload+1)); !errors.Is(err, ErrPayloadTooLarge) {
		t.Errorf("CheckLimit big = %v, want ErrPayloadTooLarge", err)
	}
}

func TestShouldSpill(t *testing.T) {
	if ShouldSpill(make([]byte, 10), 100) {
		t.Error("small payload should not spill")
	}
	if !ShouldSpill(make([]byte, 200), 100) {
		t.Error("large payload should spill")
	}
	if ShouldSpill(make([]byte, DefaultInlineThreshold), 0) {
		t.Error("at-threshold payload should not spill with defaults")
	}
	if !ShouldSpill(make([]byte, DefaultInlineThreshold+1), 0) {
		t.Error("above-threshold payload should spill with defaults")
	}
}

func TestDecodeErrors(t *testing.T) {
	if err := Decode(nil, new(int)); err == nil {
		t.Error("Decode(nil) succeeded")
	}
	if err := Decode([]byte{'?', 0, 'x'}, new(int)); err == nil {
		t.Error("Decode unknown codec succeeded")
	}
	if err := Decode([]byte{byte(CodecJSON), 0x1, 'x'}, new(int)); err == nil {
		t.Error("Decode bad gzip succeeded")
	}
	if err := Decode([]byte{byte(CodecJSON), 0, '{'}, new(map[string]int)); err == nil {
		t.Error("Decode bad json succeeded")
	}
}

func TestEncodeUnsupportedValue(t *testing.T) {
	if _, err := Encode(make(chan int), Options{Codec: CodecJSON}); err == nil {
		t.Error("Encode(chan) with JSON succeeded")
	}
}

func TestPropertyRawRoundTrip(t *testing.T) {
	f := func(b []byte) bool {
		data, err := Encode(b, Options{Codec: CodecRaw, Compress: true, CompressAbove: 8})
		if err != nil {
			return false
		}
		var out []byte
		if err := Decode(data, &out); err != nil {
			return false
		}
		return bytes.Equal(b, out)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPropertyJSONStringRoundTrip(t *testing.T) {
	f := func(s string) bool {
		data, err := Encode(s, DefaultOptions())
		if err != nil {
			return false
		}
		var out string
		if err := Decode(data, &out); err != nil {
			return false
		}
		return out == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
