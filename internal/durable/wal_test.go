package durable

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func openTestWAL(t *testing.T, dir string, opts WALOptions) *WAL {
	t.Helper()
	opts.Dir = dir
	w, err := OpenWAL(opts)
	if err != nil {
		t.Fatalf("OpenWAL: %v", err)
	}
	return w
}

func collect(t *testing.T, w *WAL, from uint64) (lsns []uint64, payloads []string) {
	t.Helper()
	_, err := w.Replay(from, func(lsn uint64, p []byte) error {
		lsns = append(lsns, lsn)
		payloads = append(payloads, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return
}

func TestWALAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 10; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if got := w.LastLSN(); got != 10 {
		t.Fatalf("LastLSN = %d, want 10", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, payloads := collect(t, w2, 1)
	if len(lsns) != 10 {
		t.Fatalf("replayed %d records, want 10", len(lsns))
	}
	for i, lsn := range lsns {
		if lsn != uint64(i+1) {
			t.Fatalf("lsns[%d] = %d, want %d", i, lsn, i+1)
		}
		if want := fmt.Sprintf("rec-%d", i); payloads[i] != want {
			t.Fatalf("payloads[%d] = %q, want %q", i, payloads[i], want)
		}
	}
	// Recovery resumes the LSN sequence.
	if lsn, err := w2.Append([]byte("after")); err != nil || lsn != 11 {
		t.Fatalf("Append after reopen = (%d, %v), want (11, nil)", lsn, err)
	}
}

// activeSegment returns the path of the newest segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d segs)", err, len(segs))
	}
	return segs[len(segs)-1].path
}

func TestWALTornTailTruncatedRecord(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-write: cut the final record's payload short.
	seg := activeSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, _ := collect(t, w2, 1)
	if len(lsns) != 4 {
		t.Fatalf("replayed %d records after torn tail, want 4", len(lsns))
	}
	// The torn record's LSN is reused: it was never durable.
	if lsn, err := w2.Append([]byte("replacement")); err != nil || lsn != 5 {
		t.Fatalf("Append = (%d, %v), want (5, nil)", lsn, err)
	}
	lsns, payloads := collect(t, w2, 1)
	if len(lsns) != 5 || payloads[4] != "replacement" {
		t.Fatalf("after repair+append: lsns=%v payloads=%v", lsns, payloads)
	}
}

func TestWALTornTailBitFlippedCRC(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 5; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("payload-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Flip a bit in the final record's payload so its CRC no longer verifies.
	seg := activeSegment(t, dir)
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x80
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, _ := collect(t, w2, 1)
	if len(lsns) != 4 {
		t.Fatalf("replayed %d records after bit flip, want 4", len(lsns))
	}
	if got := w2.LastLSN(); got != 4 {
		t.Fatalf("LastLSN = %d, want 4", got)
	}
}

func TestWALEmptyTrailingSegment(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	for i := 0; i < 3; i++ {
		if _, err := w.Append([]byte("x")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// A crash right after rotation leaves a zero-length next segment.
	empty := filepath.Join(dir, fmt.Sprintf("%016x%s", 4, segmentSuffix))
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, _ := collect(t, w2, 1)
	if len(lsns) != 3 {
		t.Fatalf("replayed %d records, want 3", len(lsns))
	}
	if lsn, err := w2.Append([]byte("y")); err != nil || lsn != 4 {
		t.Fatalf("Append = (%d, %v), want (4, nil)", lsn, err)
	}
}

func TestWALGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{})
	const writers, perWriter = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if _, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i))); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, _ := collect(t, w2, 1)
	if len(lsns) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(lsns), writers*perWriter)
	}
	seen := make(map[uint64]bool)
	for _, lsn := range lsns {
		if seen[lsn] {
			t.Fatalf("duplicate LSN %d", lsn)
		}
		seen[lsn] = true
	}
}

func TestWALSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{SegmentBytes: 256, NoSync: true})
	payload := make([]byte, 64)
	for i := 0; i < 40; i++ {
		if _, err := w.Append(payload); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if w.Segments() < 3 {
		t.Fatalf("expected >=3 segments after 40 large appends, got %d", w.Segments())
	}
	before := w.Segments()
	removed, err := w.CompactBelow(w.LastLSN())
	if err != nil {
		t.Fatalf("CompactBelow: %v", err)
	}
	if removed == 0 || w.Segments() != before-removed {
		t.Fatalf("CompactBelow removed %d, segments %d -> %d", removed, before, w.Segments())
	}
	if w.Segments() < 1 {
		t.Fatal("active segment must survive compaction")
	}
	// Records above the horizon still replay after compaction + reopen.
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	if lsn, err := w2.Append(payload); err != nil || lsn != 41 {
		t.Fatalf("Append after compaction = (%d, %v), want (41, nil)", lsn, err)
	}
}

func TestWALAppendAsyncDurableAfterSync(t *testing.T) {
	dir := t.TempDir()
	w := openTestWAL(t, dir, WALOptions{FlushEvery: -1})
	if _, err := w.AppendAsync([]byte("async-1"), []byte("async-2")); err != nil {
		t.Fatalf("AppendAsync: %v", err)
	}
	if err := w.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	w2 := openTestWAL(t, dir, WALOptions{})
	defer w2.Close()
	lsns, payloads := collect(t, w2, 1)
	if len(lsns) != 2 || payloads[1] != "async-2" {
		t.Fatalf("async records lost: lsns=%v payloads=%v", lsns, payloads)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.json")
	if err := WriteFileAtomic(path, []byte("v1"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("v2"), 0o644); err != nil {
		t.Fatalf("WriteFileAtomic overwrite: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "v2" {
		t.Fatalf("read back: %q, %v", data, err)
	}
	// No temp litter left behind.
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("expected 1 file in dir, got %d", len(entries))
	}
}
