package durable

import (
	"testing"

	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
)

// openStore opens a durable store with the background loop disabled so tests
// drive snapshots deterministically.
func openStore(t *testing.T, dir string) *Store {
	t.Helper()
	d, err := OpenStore(StoreOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	return d
}

func seedTasks(t *testing.T, st *statestore.Store, ep protocol.UUID, n int) []protocol.UUID {
	t.Helper()
	if err := st.UpsertEndpoint(statestore.EndpointRecord{ID: ep, Name: "ep"}); err != nil {
		t.Fatalf("UpsertEndpoint: %v", err)
	}
	tasks := make([]protocol.Task, n)
	ids := make([]protocol.UUID, n)
	for i := range tasks {
		ids[i] = protocol.NewUUID()
		tasks[i] = protocol.Task{ID: ids[i], EndpointID: ep}
	}
	if err := st.CreateTasks(tasks); err != nil {
		t.Fatalf("CreateTasks: %v", err)
	}
	return ids
}

// TestStoreRecovery journals a realistic task lifecycle, "crashes" (no Close,
// so no final snapshot — recovery leans entirely on the WAL), reopens, and
// checks every record came back in its exact pre-crash state.
func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	ep := protocol.NewUUID()
	ids := seedTasks(t, d.State, ep, 6)

	if err := d.State.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	if err := d.State.TransitionTasks(ids[:4], protocol.StateDelivered); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	errs := d.State.CompleteTasks([]protocol.Result{
		{TaskID: ids[0], State: protocol.StateSuccess, Output: []byte("ok-0")},
		{TaskID: ids[1], State: protocol.StateFailed, Error: "boom"},
	})
	for i, err := range errs {
		if err != nil {
			t.Fatalf("CompleteTasks[%d]: %v", i, err)
		}
	}
	// Crash: no Close(), no snapshot. Synchronous appends are already
	// durable, so reopening the same directory is the recovery path.

	d2 := openStore(t, dir)
	defer d2.Close()
	want := map[protocol.UUID]protocol.TaskState{
		ids[0]: protocol.StateSuccess,
		ids[1]: protocol.StateFailed,
		ids[2]: protocol.StateDelivered,
		ids[3]: protocol.StateDelivered,
		ids[4]: protocol.StateWaiting,
		ids[5]: protocol.StateWaiting,
	}
	for id, state := range want {
		rec, err := d2.State.GetTask(id)
		if err != nil {
			t.Fatalf("GetTask(%s): %v", id, err)
		}
		if rec.State != state {
			t.Errorf("task %s recovered as %s, want %s", id, rec.State, state)
		}
	}
	rec, _ := d2.State.GetTask(ids[0])
	if string(rec.Result) != "ok-0" {
		t.Errorf("task %s result = %q, want %q", ids[0], rec.Result, "ok-0")
	}
	if _, err := d2.State.GetEndpoint(ep); err != nil {
		t.Errorf("endpoint not recovered: %v", err)
	}
	// The recovered store journals too: mutate, reopen again, verify.
	if err := d2.State.TransitionTask(ids[4], protocol.StateDelivered); err != nil {
		t.Fatalf("TransitionTask after recovery: %v", err)
	}
	d3 := openStore(t, dir)
	defer d3.Close()
	rec, err := d3.State.GetTask(ids[4])
	if err != nil || rec.State != protocol.StateDelivered {
		t.Fatalf("second recovery: task %s = %s, %v", ids[4], rec.State, err)
	}
}

// TestStoreSnapshotCompaction verifies snapshots advance the horizon, compact
// old segments, and that snapshot+tail recovery equals pure-WAL recovery.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	d, err := OpenStore(StoreOptions{Dir: dir, SnapshotEvery: -1, SegmentBytes: 1024})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	ep := protocol.NewUUID()
	ids := seedTasks(t, d.State, ep, 40)
	if err := d.State.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	for _, id := range ids {
		if err := d.State.TransitionTask(id, protocol.StateDelivered); err != nil {
			t.Fatalf("TransitionTask: %v", err)
		}
	}
	before := d.WAL().Segments()
	if before < 2 {
		t.Fatalf("expected multiple segments before compaction, got %d", before)
	}
	if err := d.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	if after := d.WAL().Segments(); after >= before {
		t.Fatalf("compaction did not shrink the log: %d -> %d segments", before, after)
	}
	// Post-snapshot mutations land in the surviving tail.
	errs := d.State.CompleteTasks([]protocol.Result{{TaskID: ids[0], State: protocol.StateSuccess}})
	if errs[0] != nil {
		t.Fatalf("CompleteTasks: %v", errs[0])
	}

	d2 := openStore(t, dir)
	defer d2.Close()
	counts := d2.State.CountTasksByState()
	if counts[protocol.StateSuccess] != 1 || counts[protocol.StateDelivered] != 39 {
		t.Fatalf("recovered counts = %v, want 1 success / 39 delivered", counts)
	}
}

// TestStoreRecoveryIdempotent reopens a directory whose snapshot horizon lags
// the WAL tail (always true right after a snapshotless crash) several times
// in a row; replayed duplicates must be skipped, never doubled.
func TestStoreRecoveryIdempotent(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	ep := protocol.NewUUID()
	ids := seedTasks(t, d.State, ep, 3)
	if err := d.State.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	if err := d.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	// Mutations after the snapshot: replay must apply them exactly once on
	// top of the restored image, every time we reopen.
	if err := d.State.TransitionTask(ids[0], protocol.StateDelivered); err != nil {
		t.Fatalf("TransitionTask: %v", err)
	}
	for round := 0; round < 3; round++ {
		d2 := openStore(t, dir)
		if n := d2.State.CountTasks(); n != 3 {
			t.Fatalf("round %d: %d tasks, want 3", round, n)
		}
		rec, err := d2.State.GetTask(ids[0])
		if err != nil || rec.State != protocol.StateDelivered {
			t.Fatalf("round %d: task state %s, %v", round, rec.State, err)
		}
		d2.wal.Close() // release the handle without writing a fresh snapshot
	}
}

func BenchmarkJournaledCreateTasks(b *testing.B) {
	d, err := OpenStore(StoreOptions{Dir: b.TempDir(), SnapshotEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	ep := protocol.NewUUID()
	if err := d.State.UpsertEndpoint(statestore.EndpointRecord{ID: ep, Name: "ep"}); err != nil {
		b.Fatal(err)
	}
	const batch = 32
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tasks := make([]protocol.Task, batch)
		for j := range tasks {
			tasks[j] = protocol.Task{ID: protocol.NewUUID(), EndpointID: ep}
		}
		if err := d.State.CreateTasks(tasks); err != nil {
			b.Fatal(err)
		}
	}
}
