package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/metrics"
	"globuscompute/internal/obs"
	"globuscompute/internal/trace"
)

// Broker layout within the data directory.
const (
	brokerSnapshotFile = "broker.snap"
	brokerWALDir       = "broker-wal"
)

// BrokerOptions configures the durable broker.
type BrokerOptions struct {
	// Dir is the broker's slice of the data directory.
	Dir string
	// SnapshotEvery is the snapshot + compaction cadence (default
	// DefaultSnapshotEvery; <0 disables the background loop).
	SnapshotEvery time.Duration
	// SegmentBytes overrides the WAL rotation threshold.
	SegmentBytes int64
	// NoSync disables fsync.
	NoSync bool
	// Metrics receives the WAL gauges plus broker_snapshot_age_seconds and
	// broker_wal_replay (exported ..._seconds). Nil uses a private registry.
	Metrics *metrics.Registry
	// Tracer records recovery as a "durable.broker_replay" span. Nil
	// disables.
	Tracer *trace.Tracer
	// Log receives the recovery summary line. Nil uses the default pipeline.
	Log *obs.Logger
}

// brokerRecord is one journaled broker operation.
type brokerRecord struct {
	Op     string   `json:"op"` // declare | delete | pub | ack
	Queue  string   `json:"q"`
	IDs    []uint64 `json:"ids,omitempty"`
	Bodies [][]byte `json:"bodies,omitempty"`
}

// brokerSnapshot is the on-disk snapshot envelope.
type brokerSnapshot struct {
	AppliedLSN uint64       `json:"applied_lsn"`
	Image      broker.Image `json:"image"`
}

// BrokerLog is a broker recovered from disk and journaled to a WAL: queue
// declarations, publishes, and acks are logged so a restart rebuilds every
// queue with its undelivered and unacked messages intact (flagged
// Redelivered — the consumer side must already tolerate at-least-once).
type BrokerLog struct {
	// B is the recovered broker, journal attached.
	B *broker.Broker

	opts BrokerOptions
	wal  *WAL

	mu       sync.Mutex
	nextTok  uint64
	inflight map[uint64]uint64
	snapLSN  uint64
	snapAt   time.Time

	snapAge *metrics.Gauge

	stop chan struct{}
	done chan struct{}
}

// msgRec is the replay model's view of one buffered message.
type msgRec struct {
	id   uint64
	body []byte
}

// OpenBroker restores a broker from opts.Dir (newest snapshot plus the WAL
// tail, deduping replayed publishes by message ID) and returns it journaled.
// Every restored message is flagged Redelivered: the broker cannot know
// which deliveries were in flight at the crash, and at-least-once delivery
// makes over-flagging safe.
func OpenBroker(opts BrokerOptions) (*BrokerLog, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: broker dir: %w", err)
	}
	bl := &BrokerLog{
		B:        broker.New(),
		opts:     opts,
		inflight: make(map[uint64]uint64),
		snapAge:  opts.Metrics.Gauge("broker_snapshot_age_seconds"),
	}

	start := time.Now()
	snapPath := filepath.Join(opts.Dir, brokerSnapshotFile)
	var snap brokerSnapshot
	restored := false
	if img, err := os.ReadFile(snapPath); err == nil {
		if err := json.Unmarshal(img, &snap); err != nil {
			return nil, fmt.Errorf("durable: broker snapshot %s: %w", snapPath, err)
		}
		restored = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: broker snapshot: %w", err)
	}

	wal, err := OpenWAL(WALOptions{
		Dir:          filepath.Join(opts.Dir, brokerWALDir),
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Metrics:      opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	bl.wal = wal

	// Rebuild the queue model: snapshot image first, then the WAL tail on
	// top. Publishes replay idempotently — a message ID already present
	// (because the snapshot horizon is conservative) is skipped.
	model := make(map[string][]msgRec)
	order := []string{} // declaration order, for deterministic restore
	present := make(map[string]map[uint64]bool)
	ensure := func(name string) {
		if _, ok := model[name]; !ok {
			model[name] = nil
			present[name] = make(map[uint64]bool)
			order = append(order, name)
		}
	}
	nextID := snap.Image.NextID
	for _, qi := range snap.Image.Queues {
		ensure(qi.Name)
		for i, body := range qi.Messages {
			m := msgRec{body: body}
			if i < len(qi.IDs) {
				m.id = qi.IDs[i]
			}
			model[qi.Name] = append(model[qi.Name], m)
			if m.id != 0 {
				present[qi.Name][m.id] = true
				if m.id >= nextID {
					nextID = m.id + 1
				}
			}
		}
	}
	replayed := 0
	n, err := wal.Replay(snap.AppliedLSN+1, func(lsn uint64, payload []byte) error {
		var rec brokerRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("durable: broker replay lsn %d: %w", lsn, err)
		}
		switch rec.Op {
		case "declare":
			ensure(rec.Queue)
		case "delete":
			delete(model, rec.Queue)
			delete(present, rec.Queue)
		case "pub":
			ensure(rec.Queue)
			for i, id := range rec.IDs {
				if i >= len(rec.Bodies) || present[rec.Queue][id] {
					continue
				}
				model[rec.Queue] = append(model[rec.Queue], msgRec{id: id, body: rec.Bodies[i]})
				present[rec.Queue][id] = true
				if id >= nextID {
					nextID = id + 1
				}
				replayed++
			}
		case "ack":
			msgs, ok := model[rec.Queue]
			if !ok {
				break
			}
			drop := make(map[uint64]bool, len(rec.IDs))
			for _, id := range rec.IDs {
				drop[id] = true
			}
			kept := msgs[:0]
			for _, m := range msgs {
				if m.id != 0 && drop[m.id] {
					delete(present[rec.Queue], m.id)
					continue
				}
				kept = append(kept, m)
			}
			model[rec.Queue] = kept
		}
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, err
	}

	// Materialize: every surviving message redelivers.
	img := broker.Image{NextID: nextID}
	queues, messages := 0, 0
	for _, name := range order {
		msgs, ok := model[name]
		if !ok {
			continue // deleted during replay
		}
		qi := broker.QueueImage{Name: name, RedeliverTo: len(msgs)}
		for _, m := range msgs {
			qi.Messages = append(qi.Messages, m.body)
			qi.IDs = append(qi.IDs, m.id)
		}
		img.Queues = append(img.Queues, qi)
		queues++
		messages += len(msgs)
	}
	if err := bl.B.RestoreImage(img); err != nil {
		wal.Close()
		return nil, err
	}

	dur := time.Since(start)
	opts.Metrics.Histogram("broker_wal_replay").Observe(dur)
	opts.Tracer.Record(nil, "durable.broker_replay", start, time.Now(),
		"records", fmt.Sprint(n),
		"queues", fmt.Sprint(queues),
		"messages", fmt.Sprint(messages))
	logger := opts.Log
	if logger == nil {
		logger = obs.Component("durable")
	}
	logger.Info("broker recovery complete",
		"snapshot", restored,
		"snapshot_lsn", snap.AppliedLSN,
		"wal_records", n,
		"replayed_publishes", replayed,
		"queues", queues,
		"messages", messages,
		"duration", dur.Round(time.Microsecond).String())

	bl.snapLSN = snap.AppliedLSN
	bl.snapAt = time.Now()
	bl.B.SetJournal(bl)

	if opts.SnapshotEvery > 0 {
		bl.stop = make(chan struct{})
		bl.done = make(chan struct{})
		go bl.snapshotLoop()
	}
	return bl, nil
}

// LogPublish implements broker.Journal: group-commit the publish records
// before the broker enqueues them, tracking the append as in-flight so the
// snapshot horizon never covers a logged-but-unenqueued message.
func (bl *BrokerLog) LogPublish(queue string, ids []uint64, bodies [][]byte) (func(), error) {
	payload, err := json.Marshal(brokerRecord{Op: "pub", Queue: queue, IDs: ids, Bodies: bodies})
	if err != nil {
		return nil, err
	}
	bl.mu.Lock()
	tok := bl.nextTok
	bl.nextTok++
	bl.inflight[tok] = bl.wal.LastLSN() + 1
	bl.mu.Unlock()

	lsn, err := bl.wal.Append(payload)
	bl.mu.Lock()
	if err != nil {
		delete(bl.inflight, tok)
		bl.mu.Unlock()
		return nil, err
	}
	bl.inflight[tok] = lsn
	bl.mu.Unlock()
	return func() {
		bl.mu.Lock()
		delete(bl.inflight, tok)
		bl.mu.Unlock()
	}, nil
}

// LogAck journals acks asynchronously: the delivered message is already gone
// from memory, so losing the record only means a wider redelivery window
// after a crash — which at-least-once delivery absorbs. The hot ack path
// therefore never waits on the disk.
func (bl *BrokerLog) LogAck(queue string, ids []uint64) {
	payload, err := json.Marshal(brokerRecord{Op: "ack", Queue: queue, IDs: ids})
	if err != nil {
		return
	}
	_, _ = bl.wal.AppendAsync(payload)
}

// LogDeclare journals a queue creation (async; a lost record is recreated by
// the first replayed publish).
func (bl *BrokerLog) LogDeclare(queue string) {
	payload, err := json.Marshal(brokerRecord{Op: "declare", Queue: queue})
	if err != nil {
		return
	}
	_, _ = bl.wal.AppendAsync(payload)
}

// LogDelete journals a queue deletion (async).
func (bl *BrokerLog) LogDelete(queue string) {
	payload, err := json.Marshal(brokerRecord{Op: "delete", Queue: queue})
	if err != nil {
		return
	}
	_, _ = bl.wal.AppendAsync(payload)
}

// safeLSN mirrors Store.safeLSN: the horizon below which every journaled
// publish is enqueued in memory.
func (bl *BrokerLog) safeLSN() uint64 {
	bl.mu.Lock()
	defer bl.mu.Unlock()
	safe := bl.wal.LastLSN()
	for _, lsn := range bl.inflight {
		if lsn-1 < safe {
			safe = lsn - 1
		}
	}
	return safe
}

// SnapshotNow writes a broker snapshot at the current safe horizon and
// compacts the WAL below it.
func (bl *BrokerLog) SnapshotNow() error {
	safe := bl.safeLSN()
	bl.mu.Lock()
	cur := bl.snapLSN
	bl.mu.Unlock()
	if safe <= cur {
		return nil
	}
	img := bl.B.SnapshotImage()
	buf, err := json.Marshal(brokerSnapshot{AppliedLSN: safe, Image: img})
	if err != nil {
		return fmt.Errorf("durable: broker snapshot: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(bl.opts.Dir, brokerSnapshotFile), buf, 0o644); err != nil {
		return fmt.Errorf("durable: broker snapshot: %w", err)
	}
	bl.mu.Lock()
	bl.snapLSN = safe
	bl.snapAt = time.Now()
	bl.mu.Unlock()
	bl.snapAge.Set(0)
	if _, err := bl.wal.CompactBelow(safe); err != nil {
		return err
	}
	return nil
}

func (bl *BrokerLog) snapshotLoop() {
	defer close(bl.done)
	ticker := time.NewTicker(bl.opts.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-bl.stop:
			return
		case <-ticker.C:
		}
		bl.mu.Lock()
		age := time.Since(bl.snapAt)
		bl.mu.Unlock()
		bl.snapAge.Set(int64(age.Seconds()))
		_ = bl.SnapshotNow()
	}
}

// WAL exposes the underlying log (tests and the crash suite).
func (bl *BrokerLog) WAL() *WAL { return bl.wal }

// Close stops the snapshot loop, takes a final snapshot, and closes the WAL.
// The broker itself is closed separately.
func (bl *BrokerLog) Close() error {
	if bl.stop != nil {
		close(bl.stop)
		<-bl.done
		bl.stop = nil
	}
	err := bl.SnapshotNow()
	if cerr := bl.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
