package durable

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/obs"
	"globuscompute/internal/statestore"
	"globuscompute/internal/trace"
)

// Store layout within the data directory.
const (
	storeSnapshotFile = "state.snap"
	storeWALDir       = "wal"

	// DefaultSnapshotEvery is the snapshot + compaction cadence.
	DefaultSnapshotEvery = 30 * time.Second
)

// StoreOptions configures the durable statestore.
type StoreOptions struct {
	// Dir is the statestore's slice of the data directory.
	Dir string
	// SnapshotEvery is the snapshot + compaction cadence (default
	// DefaultSnapshotEvery; <0 disables the background loop — tests drive
	// SnapshotNow directly).
	SnapshotEvery time.Duration
	// SegmentBytes overrides the WAL rotation threshold.
	SegmentBytes int64
	// NoSync disables fsync (benchmarking the WAL machinery without the
	// disk).
	NoSync bool
	// Metrics receives the WAL gauges plus snapshot_age_seconds, wal_replay
	// (exported wal_replay_seconds), wal_replayed (.._total), and
	// wal_snapshots (.._total). Nil uses a private registry.
	Metrics *metrics.Registry
	// Tracer records recovery as a "durable.replay" span. Nil disables.
	Tracer *trace.Tracer
	// Log receives the recovery summary line. Nil uses the default pipeline.
	Log *obs.Logger
}

// storeSnapshot is the on-disk snapshot envelope: the statestore image plus
// the LSN horizon it reflects, so recovery knows where WAL replay starts.
type storeSnapshot struct {
	AppliedLSN uint64          `json:"applied_lsn"`
	State      json.RawMessage `json:"state"`
}

// Store is a statestore recovered from disk and journaled to a WAL. It
// implements statestore.Journal: every mutation is appended (group-committed)
// before the in-memory store applies it, and a background loop snapshots the
// store and compacts the log below the snapshot's applied horizon.
type Store struct {
	// State is the recovered store; callers use it exactly like an
	// in-memory one.
	State *statestore.Store

	opts StoreOptions
	wal  *WAL

	mu       sync.Mutex
	nextTok  uint64
	inflight map[uint64]uint64 // token -> LSN (or conservative lower bound)
	snapLSN  uint64            // horizon of the newest on-disk snapshot
	snapAt   time.Time

	snapAge   *metrics.Gauge
	replayHis *metrics.Histogram
	replayed  *metrics.Counter
	snapshots *metrics.Counter

	stop chan struct{}
	done chan struct{}
}

// OpenStore restores the statestore from opts.Dir — newest snapshot plus WAL
// tail, tolerating a torn final record — and returns it journaled, so every
// subsequent mutation is durable before it is visible. An empty directory
// yields an empty store: first boot and recovery are the same code path.
func OpenStore(opts StoreOptions) (*Store, error) {
	if opts.SnapshotEvery == 0 {
		opts.SnapshotEvery = DefaultSnapshotEvery
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: store dir: %w", err)
	}
	d := &Store{
		State:     statestore.New(),
		opts:      opts,
		inflight:  make(map[uint64]uint64),
		snapAge:   opts.Metrics.Gauge("snapshot_age_seconds"),
		replayHis: opts.Metrics.Histogram("wal_replay"),
		replayed:  opts.Metrics.Counter("wal_replayed"),
		snapshots: opts.Metrics.Counter("wal_snapshots"),
	}

	start := time.Now()
	snapPath := filepath.Join(opts.Dir, storeSnapshotFile)
	var snapLSN uint64
	restored := false
	if img, err := os.ReadFile(snapPath); err == nil {
		var snap storeSnapshot
		if err := json.Unmarshal(img, &snap); err != nil {
			return nil, fmt.Errorf("durable: snapshot %s: %w", snapPath, err)
		}
		if err := d.State.Restore(snap.State); err != nil {
			return nil, fmt.Errorf("durable: snapshot %s: %w", snapPath, err)
		}
		snapLSN = snap.AppliedLSN
		restored = true
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("durable: snapshot: %w", err)
	}

	wal, err := OpenWAL(WALOptions{
		Dir:          filepath.Join(opts.Dir, storeWALDir),
		SegmentBytes: opts.SegmentBytes,
		NoSync:       opts.NoSync,
		Metrics:      opts.Metrics,
	})
	if err != nil {
		return nil, err
	}
	d.wal = wal

	// Replay the tail above the snapshot horizon. Mutations whose effect is
	// already in the snapshot (the horizon is conservative) re-apply through
	// the same state machine and are rejected as duplicates or illegal
	// transitions — counted, not fatal.
	applied, skipped := 0, 0
	n, err := wal.Replay(snapLSN+1, func(lsn uint64, payload []byte) error {
		var m statestore.Mutation
		if err := json.Unmarshal(payload, &m); err != nil {
			return fmt.Errorf("durable: replay lsn %d: %w", lsn, err)
		}
		if err := d.State.ApplyMutation(m); err != nil {
			skipped++
			return nil
		}
		applied++
		return nil
	})
	if err != nil {
		wal.Close()
		return nil, err
	}
	dur := time.Since(start)
	d.replayHis.Observe(dur)
	d.replayed.Add(int64(applied))
	opts.Tracer.Record(nil, "durable.replay", start, time.Now(),
		"snapshot_lsn", fmt.Sprint(snapLSN),
		"records", fmt.Sprint(n),
		"applied", fmt.Sprint(applied),
		"skipped", fmt.Sprint(skipped))
	logger := opts.Log
	if logger == nil {
		logger = obs.Component("durable")
	}
	logger.Info("statestore recovery complete",
		"snapshot", restored,
		"snapshot_lsn", snapLSN,
		"wal_records", n,
		"applied", applied,
		"skipped", skipped,
		"last_lsn", wal.LastLSN(),
		"duration", dur.Round(time.Microsecond).String())

	d.snapLSN = snapLSN
	d.snapAt = time.Now()
	d.State.SetJournal(d)

	if opts.SnapshotEvery > 0 {
		d.stop = make(chan struct{})
		d.done = make(chan struct{})
		go d.snapshotLoop()
	}
	return d, nil
}

// LogMutation implements statestore.Journal: marshal, group-commit, and track
// the record as in-flight until the store reports it applied — the safe
// snapshot horizon never advances past a logged-but-unapplied mutation.
func (d *Store) LogMutation(m statestore.Mutation) (func(), error) {
	payload, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	// Register before appending: the record's eventual LSN is strictly above
	// the log's current tail, so that tail+1 is a sound lower bound while the
	// append is in flight.
	d.mu.Lock()
	tok := d.nextTok
	d.nextTok++
	d.inflight[tok] = d.wal.LastLSN() + 1
	d.mu.Unlock()

	lsn, err := d.wal.Append(payload)
	d.mu.Lock()
	if err != nil {
		delete(d.inflight, tok)
		d.mu.Unlock()
		return nil, err
	}
	d.inflight[tok] = lsn
	d.mu.Unlock()
	return func() {
		d.mu.Lock()
		delete(d.inflight, tok)
		d.mu.Unlock()
	}, nil
}

// safeLSN returns the highest LSN such that every record at or below it is
// both durable and applied to the in-memory store — the snapshot horizon.
func (d *Store) safeLSN() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	safe := d.wal.LastLSN()
	for _, lsn := range d.inflight {
		if lsn-1 < safe {
			safe = lsn - 1
		}
	}
	return safe
}

// SnapshotNow writes a snapshot at the current safe horizon and compacts WAL
// segments below it. A no-op when nothing advanced since the last snapshot.
func (d *Store) SnapshotNow() error {
	safe := d.safeLSN()
	d.mu.Lock()
	cur := d.snapLSN
	d.mu.Unlock()
	if safe <= cur {
		return nil
	}
	img, err := d.State.Snapshot()
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	buf, err := json.Marshal(storeSnapshot{AppliedLSN: safe, State: img})
	if err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	if err := WriteFileAtomic(filepath.Join(d.opts.Dir, storeSnapshotFile), buf, 0o644); err != nil {
		return fmt.Errorf("durable: snapshot: %w", err)
	}
	d.mu.Lock()
	d.snapLSN = safe
	d.snapAt = time.Now()
	d.mu.Unlock()
	d.snapshots.Inc()
	d.snapAge.Set(0)
	if _, err := d.wal.CompactBelow(safe); err != nil {
		return err
	}
	return nil
}

func (d *Store) snapshotLoop() {
	defer close(d.done)
	ticker := time.NewTicker(d.opts.SnapshotEvery)
	defer ticker.Stop()
	for {
		select {
		case <-d.stop:
			return
		case <-ticker.C:
		}
		d.mu.Lock()
		age := time.Since(d.snapAt)
		d.mu.Unlock()
		d.snapAge.Set(int64(age.Seconds()))
		_ = d.SnapshotNow()
	}
}

// Metrics returns the registry carrying the WAL and snapshot metrics.
func (d *Store) Metrics() *metrics.Registry { return d.opts.Metrics }

// WAL exposes the underlying log (tests and the crash suite).
func (d *Store) WAL() *WAL { return d.wal }

// Close stops the snapshot loop, takes a final snapshot, and closes the WAL.
// Safe to skip on crash: that is the point of the journal.
func (d *Store) Close() error {
	if d.stop != nil {
		close(d.stop)
		<-d.done
		d.stop = nil
	}
	err := d.SnapshotNow()
	if cerr := d.wal.Close(); err == nil {
		err = cerr
	}
	return err
}
