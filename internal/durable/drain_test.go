package durable

import (
	"fmt"
	"os"
	"testing"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
)

// TestWALCleanCloseNoTailRepairs is the graceful-drain contract at the log
// layer: a Close() that ran to completion (the last step of the SIGTERM
// drain) leaves no torn tail, so the next OpenWAL performs zero truncation
// repairs. A crash mid-write, by contrast, is repaired and counted.
func TestWALCleanCloseNoTailRepairs(t *testing.T) {
	dir := t.TempDir()
	reg := metrics.NewRegistry()
	w := openTestWAL(t, dir, WALOptions{Metrics: reg})
	for i := 0; i < 20; i++ {
		if _, err := w.Append([]byte(fmt.Sprintf("rec-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg2 := metrics.NewRegistry()
	w2 := openTestWAL(t, dir, WALOptions{Metrics: reg2})
	if got := w2.TailRepairs(); got != 0 {
		t.Fatalf("tail repairs after clean close = %d, want 0", got)
	}
	if snap := reg2.TakeSnapshot(); snap.Counters["wal_tail_repairs"] != 0 {
		t.Fatalf("wal_tail_repairs counter = %d, want 0", snap.Counters["wal_tail_repairs"])
	}
	if lsns, _ := collect(t, w2, 1); len(lsns) != 20 {
		t.Fatalf("replayed %d records, want 20", len(lsns))
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Now the crash case: a half-written final record must be repaired
	// exactly once and show up in the counter.
	seg := activeSegment(t, dir)
	fi, err := os.Stat(seg)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(seg, fi.Size()-3); err != nil {
		t.Fatal(err)
	}
	w3 := openTestWAL(t, dir, WALOptions{Metrics: metrics.NewRegistry()})
	defer w3.Close()
	if got := w3.TailRepairs(); got != 1 {
		t.Fatalf("tail repairs after torn tail = %d, want 1", got)
	}
}

// TestStoreDrainRestartNoTornTail models the gc-webservice SIGTERM drain end
// to end at the store layer: mutate state (what the handlers, watchdog, and
// sweeper do), Close() as the drain's final step, then restart on the same
// -data-dir. The restart must replay every record with zero torn-tail
// truncations — the WAL was fsynced and whole when the process exited.
func TestStoreDrainRestartNoTornTail(t *testing.T) {
	dir := t.TempDir()
	d := openStore(t, dir)
	ep := protocol.NewUUID()
	ids := seedTasks(t, d.State, ep, 8)
	if err := d.State.TransitionTasks(ids, protocol.StateWaiting); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	if err := d.State.TransitionTasks(ids[:1], protocol.StateDelivered); err != nil {
		t.Fatalf("TransitionTasks: %v", err)
	}
	errs := d.State.CompleteTasks([]protocol.Result{
		{TaskID: ids[0], State: protocol.StateSuccess, Output: []byte("ok")},
	})
	if errs[0] != nil {
		t.Fatalf("CompleteTasks: %v", errs[0])
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	reg := metrics.NewRegistry()
	d2, err := OpenStore(StoreOptions{Dir: dir, SnapshotEvery: -1, Metrics: reg})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	defer d2.Close()
	if snap := reg.TakeSnapshot(); snap.Counters["wal_tail_repairs"] != 0 {
		t.Fatalf("restart repaired %d torn tails, want 0", snap.Counters["wal_tail_repairs"])
	}
	rec, err := d2.State.GetTask(ids[0])
	if err != nil || rec.State != protocol.StateSuccess {
		t.Fatalf("task 0 after restart = %v, %v", rec.State, err)
	}
	if n := d2.State.CountTasks(); n != 8 {
		t.Fatalf("restart replayed %d tasks, want 8", n)
	}
}
