package durable

import (
	"fmt"
	"testing"
	"time"
)

func openBrokerLog(t *testing.T, dir string) *BrokerLog {
	t.Helper()
	bl, err := OpenBroker(BrokerOptions{Dir: dir, SnapshotEvery: -1})
	if err != nil {
		t.Fatalf("OpenBroker: %v", err)
	}
	return bl
}

// TestBrokerRecovery publishes, delivers, and acks against a journaled
// broker, crashes without closing, and checks the reopened broker holds
// exactly the unacked messages — all flagged Redelivered.
func TestBrokerRecovery(t *testing.T) {
	dir := t.TempDir()
	bl := openBrokerLog(t, dir)
	if err := bl.B.Declare("tasks.ep1"); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := bl.B.Publish("tasks.ep1", []byte(fmt.Sprintf("task-%d", i))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	c, err := bl.B.Consume("tasks.ep1", 2)
	if err != nil {
		t.Fatalf("Consume: %v", err)
	}
	// Deliver two, ack the first: after a crash, task-0 must be gone and
	// task-1 (delivered but unacked) must come back.
	m0 := <-c.Messages()
	m1 := <-c.Messages()
	if err := c.Ack(m0.Tag); err != nil {
		t.Fatalf("Ack: %v", err)
	}
	_ = m1
	// Acks journal asynchronously; force the flush a real deployment gets
	// from the background flusher.
	if err := bl.WAL().Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	// Crash: no Close, no snapshot.

	bl2 := openBrokerLog(t, dir)
	defer bl2.Close()
	depth, err := bl2.B.Depth("tasks.ep1")
	if err != nil {
		t.Fatalf("Depth after recovery: %v", err)
	}
	if depth != 4 {
		t.Fatalf("recovered depth = %d, want 4 (5 published - 1 acked)", depth)
	}
	c2, err := bl2.B.Consume("tasks.ep1", 8)
	if err != nil {
		t.Fatalf("Consume: %v", err)
	}
	seen := map[string]bool{}
	for i := 0; i < 4; i++ {
		select {
		case m := <-c2.Messages():
			if !m.Redelivered {
				t.Errorf("recovered message %q not flagged Redelivered", m.Body)
			}
			seen[string(m.Body)] = true
		case <-time.After(2 * time.Second):
			t.Fatalf("timed out waiting for recovered message %d", i)
		}
	}
	if seen["task-0"] {
		t.Error("acked task-0 came back after recovery")
	}
	for _, want := range []string{"task-1", "task-2", "task-3", "task-4"} {
		if !seen[want] {
			t.Errorf("message %q lost across recovery", want)
		}
	}
}

// TestBrokerSnapshotDedupe snapshots mid-stream and verifies replayed
// publish records already covered by the snapshot are not duplicated.
func TestBrokerSnapshotDedupe(t *testing.T) {
	dir := t.TempDir()
	bl := openBrokerLog(t, dir)
	if err := bl.B.Declare("q"); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	for i := 0; i < 10; i++ {
		if err := bl.B.Publish("q", []byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	if err := bl.SnapshotNow(); err != nil {
		t.Fatalf("SnapshotNow: %v", err)
	}
	for i := 10; i < 15; i++ {
		if err := bl.B.Publish("q", []byte(fmt.Sprintf("m-%d", i))); err != nil {
			t.Fatalf("Publish: %v", err)
		}
	}
	// Crash. The snapshot covers the first 10; the tail holds the last 5 —
	// and possibly records below the horizon if compaction lagged.
	bl2 := openBrokerLog(t, dir)
	defer bl2.Close()
	depth, err := bl2.B.Depth("q")
	if err != nil {
		t.Fatalf("Depth: %v", err)
	}
	if depth != 15 {
		t.Fatalf("recovered depth = %d, want exactly 15 (no duplicates, no losses)", depth)
	}
}

// TestBrokerDeleteJournaled verifies a deleted queue stays deleted across
// recovery.
func TestBrokerDeleteJournaled(t *testing.T) {
	dir := t.TempDir()
	bl := openBrokerLog(t, dir)
	if err := bl.B.Declare("keep"); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if err := bl.B.Declare("drop"); err != nil {
		t.Fatalf("Declare: %v", err)
	}
	if err := bl.B.Publish("drop", []byte("stale")); err != nil {
		t.Fatalf("Publish: %v", err)
	}
	if err := bl.B.Delete("drop"); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := bl.WAL().Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}

	bl2 := openBrokerLog(t, dir)
	defer bl2.Close()
	if _, err := bl2.B.Depth("drop"); err == nil {
		t.Error("deleted queue resurrected after recovery")
	}
	if _, err := bl2.B.Depth("keep"); err != nil {
		t.Errorf("surviving queue lost: %v", err)
	}
}
