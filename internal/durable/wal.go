// Package durable is the control plane's persistence layer: a segmented,
// CRC-checked, fsync-batched write-ahead log with group commit, periodic
// snapshots with log compaction, and crash-recovery paths for the statestore
// (store.go) and the message broker (brokerlog.go). It stands in for the
// hosted service's managed persistence tier (RDS for task state, durable
// RabbitMQ queues) so that a webservice or broker crash loses no
// acknowledged work: every mutation is journaled before it is applied, and
// startup replays the newest snapshot plus the log tail — tolerating a torn
// final record — to restore the exact pre-crash state.
//
// Group commit: concurrent appenders write into one buffered segment; the
// first waiter becomes the committer and a single flush+fsync covers
// everyone queued behind it, so the per-append fsync cost amortizes across
// the batch exactly like the statestore's sharded batch APIs amortize lock
// round trips.
package durable

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
)

// Tunables and format constants.
const (
	// DefaultSegmentBytes is the segment rotation threshold.
	DefaultSegmentBytes = 4 << 20
	// DefaultFlushEvery bounds how long an async (no-wait) append may sit in
	// the write buffer before the background flusher commits it.
	DefaultFlushEvery = 25 * time.Millisecond

	// recordHeaderSize is the fixed per-record header: LSN (8 bytes), payload
	// length (4), CRC-32C over LSN+length+payload (4).
	recordHeaderSize = 16
	// maxRecordBytes rejects absurd lengths during replay so a corrupt
	// header cannot drive a giant allocation.
	maxRecordBytes = 64 << 20

	segmentSuffix = ".wal"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by appends on a closed WAL.
var ErrClosed = errors.New("durable: wal closed")

// WALOptions configures a write-ahead log.
type WALOptions struct {
	// Dir holds the segment files. Created if missing.
	Dir string
	// SegmentBytes is the rotation threshold (default DefaultSegmentBytes).
	SegmentBytes int64
	// NoSync skips fsync on commit (benchmarks and tests on throwaway
	// state); records still flush to the OS on every commit.
	NoSync bool
	// FlushEvery bounds async-append buffering (default DefaultFlushEvery;
	// <0 disables the background flusher).
	FlushEvery time.Duration
	// Metrics receives wal_appends (exported wal_appends_total), wal_fsync
	// (exported wal_fsync_seconds), wal_segment_bytes, wal_segments, and
	// wal_tail_repairs (incremented when OpenWAL truncates a torn tail left
	// by a crash mid-write). Nil uses a private registry.
	Metrics *metrics.Registry
}

// segment is one on-disk log file. Its name encodes the first LSN it may
// contain, so recovery and compaction order segments without reading them.
type segment struct {
	path     string
	firstLSN uint64
}

// WAL is a segmented write-ahead log. Appends are safe for concurrent use;
// Replay must complete before the first append (the recovery sequence).
type WAL struct {
	opts WALOptions

	mu        sync.Mutex
	cond      *sync.Cond
	f         *os.File
	w         *bufio.Writer
	size      int64 // active segment size including buffered bytes
	segs      []segment
	nextLSN   uint64
	writeSeq  uint64 // bumped per append batch
	syncedSeq uint64 // highest writeSeq known durable
	syncing   bool
	err       error // sticky write/sync failure
	closed    bool
	stopFlush chan struct{}
	flushDone chan struct{}

	appends     *metrics.Counter
	fsyncs      *metrics.Histogram
	segBytes    *metrics.Gauge
	segCount    *metrics.Gauge
	tailRepairs *metrics.Counter
}

// OpenWAL opens (or creates) the log in opts.Dir, scans the existing
// segments to find the last durable record, and repairs a torn tail by
// truncating the active segment after the last record whose CRC verifies.
// The returned WAL is ready for Replay followed by appends.
func OpenWAL(opts WALOptions) (*WAL, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if opts.FlushEvery == 0 {
		opts.FlushEvery = DefaultFlushEvery
	}
	if opts.Metrics == nil {
		opts.Metrics = metrics.NewRegistry()
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: wal dir: %w", err)
	}
	w := &WAL{
		opts:        opts,
		appends:     opts.Metrics.Counter("wal_appends"), // exports as wal_appends_total
		fsyncs:      opts.Metrics.Histogram("wal_fsync"),
		segBytes:    opts.Metrics.Gauge("wal_segment_bytes"),
		segCount:    opts.Metrics.Gauge("wal_segments"),
		tailRepairs: opts.Metrics.Counter("wal_tail_repairs"),
	}
	w.cond = sync.NewCond(&w.mu)

	segs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	w.segs = segs
	w.nextLSN = 1
	if len(segs) == 0 {
		if err := w.newSegmentLocked(1); err != nil {
			return nil, err
		}
	} else {
		// Scan every segment for the true last LSN; repair the tail of the
		// active (last) segment so new appends never interleave with a torn
		// record left by a crash mid-write.
		for i, seg := range segs {
			last, goodOff, _, err := scanSegment(seg.path)
			if err != nil {
				return nil, err
			}
			if last >= w.nextLSN {
				w.nextLSN = last + 1
			}
			if i == len(segs)-1 {
				fi, err := os.Stat(seg.path)
				if err != nil {
					return nil, fmt.Errorf("durable: wal stat: %w", err)
				}
				if goodOff < fi.Size() {
					if err := os.Truncate(seg.path, goodOff); err != nil {
						return nil, fmt.Errorf("durable: wal tail repair: %w", err)
					}
					// A clean shutdown leaves no torn tail; this only fires
					// when recovering from a crash mid-write.
					w.tailRepairs.Inc()
				}
				f, err := os.OpenFile(seg.path, os.O_WRONLY, 0o644)
				if err != nil {
					return nil, fmt.Errorf("durable: wal open: %w", err)
				}
				if _, err := f.Seek(goodOff, io.SeekStart); err != nil {
					f.Close()
					return nil, fmt.Errorf("durable: wal seek: %w", err)
				}
				w.f = f
				w.w = bufio.NewWriterSize(f, 64<<10)
				w.size = goodOff
			}
		}
		// An empty trailing segment still names the next LSN range.
		if last := segs[len(segs)-1].firstLSN; last > w.nextLSN {
			w.nextLSN = last
		}
	}
	w.publishGaugesLocked()

	if opts.FlushEvery > 0 {
		w.stopFlush = make(chan struct{})
		w.flushDone = make(chan struct{})
		go w.flushLoop()
	}
	return w, nil
}

func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("durable: wal dir: %w", err)
	}
	var segs []segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		first, err := strconv.ParseUint(strings.TrimSuffix(name, segmentSuffix), 16, 64)
		if err != nil {
			continue // not ours
		}
		segs = append(segs, segment{path: filepath.Join(dir, name), firstLSN: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstLSN < segs[j].firstLSN })
	return segs, nil
}

// scanSegment walks a segment and returns the last valid LSN it holds, the
// byte offset just past the last valid record, and the record count. A torn
// or corrupt record ends the scan without error: everything after it is
// garbage by definition (records are written strictly in order).
func scanSegment(path string) (lastLSN uint64, goodOffset int64, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, fmt.Errorf("durable: wal scan: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	var off int64
	header := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return lastLSN, off, n, nil // clean EOF or torn header
		}
		lsn := binary.BigEndian.Uint64(header[0:8])
		length := binary.BigEndian.Uint32(header[8:12])
		crc := binary.BigEndian.Uint32(header[12:16])
		if length > maxRecordBytes {
			return lastLSN, off, n, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return lastLSN, off, n, nil // torn payload
		}
		if recordCRC(lsn, payload) != crc {
			return lastLSN, off, n, nil // bit flip: stop at last good record
		}
		off += recordHeaderSize + int64(length)
		lastLSN = lsn
		n++
	}
}

func recordCRC(lsn uint64, payload []byte) uint32 {
	var hdr [12]byte
	binary.BigEndian.PutUint64(hdr[0:8], lsn)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	c := crc32.Update(0, castagnoli, hdr[:])
	return crc32.Update(c, castagnoli, payload)
}

// Append durably journals the payloads as consecutive records and returns
// the LSN of the first. It does not return until the records are flushed and
// (unless NoSync) fsynced; concurrent appenders share one fsync via group
// commit.
func (w *WAL) Append(payloads ...[]byte) (uint64, error) {
	seq, first, err := w.write(payloads)
	if err != nil {
		return 0, err
	}
	return first, w.waitSynced(seq)
}

// AppendAsync journals the payloads without waiting for the commit: the
// background flusher (or the next synchronous Append) makes them durable.
// Used for records whose loss only widens redelivery — broker acks — so the
// hot ack path never waits on the disk.
func (w *WAL) AppendAsync(payloads ...[]byte) (uint64, error) {
	_, first, err := w.write(payloads)
	return first, err
}

// Sync blocks until everything appended so far is durable.
func (w *WAL) Sync() error {
	w.mu.Lock()
	seq := w.writeSeq
	w.mu.Unlock()
	return w.waitSynced(seq)
}

func (w *WAL) write(payloads [][]byte) (seq, firstLSN uint64, err error) {
	if len(payloads) == 0 {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.writeSeq, w.nextLSN, w.err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, 0, ErrClosed
	}
	if w.err != nil {
		return 0, 0, w.err
	}
	if w.size >= w.opts.SegmentBytes {
		if err := w.rotateLocked(); err != nil {
			w.err = err
			return 0, 0, err
		}
	}
	firstLSN = w.nextLSN
	var hdr [recordHeaderSize]byte
	for _, p := range payloads {
		lsn := w.nextLSN
		w.nextLSN++
		binary.BigEndian.PutUint64(hdr[0:8], lsn)
		binary.BigEndian.PutUint32(hdr[8:12], uint32(len(p)))
		binary.BigEndian.PutUint32(hdr[12:16], recordCRC(lsn, p))
		if _, err := w.w.Write(hdr[:]); err != nil {
			w.err = err
			return 0, 0, err
		}
		if _, err := w.w.Write(p); err != nil {
			w.err = err
			return 0, 0, err
		}
		w.size += recordHeaderSize + int64(len(p))
	}
	w.writeSeq++
	w.appends.Add(int64(len(payloads)))
	w.publishGaugesLocked()
	return w.writeSeq, firstLSN, nil
}

// waitSynced is the group-commit core: the first waiter to find no commit in
// flight becomes the committer; everyone else sleeps until the committer's
// single flush+fsync covers their writeSeq.
func (w *WAL) waitSynced(seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.syncedSeq < seq && w.err == nil {
		if w.syncing {
			w.cond.Wait()
			continue
		}
		w.syncing = true
		target := w.writeSeq
		flushErr := w.w.Flush()
		f := w.f
		w.mu.Unlock()
		var syncErr error
		if flushErr == nil && !w.opts.NoSync {
			start := time.Now()
			syncErr = f.Sync()
			w.fsyncs.Observe(time.Since(start))
		}
		w.mu.Lock()
		w.syncing = false
		switch {
		case flushErr != nil:
			w.err = flushErr
		case syncErr != nil:
			w.err = syncErr
		case target > w.syncedSeq:
			w.syncedSeq = target
		}
		w.cond.Broadcast()
	}
	return w.err
}

// rotateLocked seals the active segment (flush+fsync) and opens the next.
// Caller holds w.mu; rotation waits out any in-flight commit so the fsync
// never races a file handle swap.
func (w *WAL) rotateLocked() error {
	for w.syncing {
		w.cond.Wait()
	}
	if err := w.w.Flush(); err != nil {
		return err
	}
	if !w.opts.NoSync {
		if err := w.f.Sync(); err != nil {
			return err
		}
	}
	w.syncedSeq = w.writeSeq // everything written so far is durable
	if err := w.f.Close(); err != nil {
		return err
	}
	w.cond.Broadcast()
	return w.newSegmentLocked(w.nextLSN)
}

func (w *WAL) newSegmentLocked(firstLSN uint64) error {
	path := filepath.Join(w.opts.Dir, fmt.Sprintf("%016x%s", firstLSN, segmentSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("durable: wal segment: %w", err)
	}
	// Make the segment's directory entry durable so the file survives a
	// crash immediately after rotation.
	if !w.opts.NoSync {
		if err := syncDir(w.opts.Dir); err != nil {
			f.Close()
			return err
		}
	}
	w.f = f
	w.w = bufio.NewWriterSize(f, 64<<10)
	w.size = 0
	w.segs = append(w.segs, segment{path: path, firstLSN: firstLSN})
	w.publishGaugesLocked()
	return nil
}

// Replay streams every durable record with LSN >= from, in order, to fn. A
// torn or corrupt record ends the replay cleanly at the last good record —
// the crash-recovery contract — and fn errors abort with that error. Replay
// must finish before the first append.
func (w *WAL) Replay(from uint64, fn func(lsn uint64, payload []byte) error) (int, error) {
	w.mu.Lock()
	segs := append([]segment(nil), w.segs...)
	w.mu.Unlock()
	n := 0
	for _, seg := range segs {
		stop, cnt, err := replaySegment(seg.path, from, fn)
		n += cnt
		if err != nil {
			return n, err
		}
		if stop {
			break // torn record: nothing after it is trustworthy
		}
	}
	return n, nil
}

// replaySegment feeds one segment's records to fn. stop reports that a
// torn/corrupt record ended the scan (so later segments must be skipped).
func replaySegment(path string, from uint64, fn func(uint64, []byte) error) (stop bool, n int, err error) {
	f, err := os.Open(path)
	if err != nil {
		return false, 0, fmt.Errorf("durable: wal replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 64<<10)
	header := make([]byte, recordHeaderSize)
	for {
		if _, err := io.ReadFull(r, header); err != nil {
			return !errors.Is(err, io.EOF), n, nil
		}
		lsn := binary.BigEndian.Uint64(header[0:8])
		length := binary.BigEndian.Uint32(header[8:12])
		crc := binary.BigEndian.Uint32(header[12:16])
		if length > maxRecordBytes {
			return true, n, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return true, n, nil
		}
		if recordCRC(lsn, payload) != crc {
			return true, n, nil
		}
		if lsn >= from {
			if err := fn(lsn, payload); err != nil {
				return false, n, err
			}
			n++
		}
	}
}

// CompactBelow deletes whole segments all of whose records have LSN <= lsn
// (the snapshot's applied horizon). The active segment always survives. It
// returns the number of segments removed.
func (w *WAL) CompactBelow(lsn uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	removed := 0
	for len(w.segs) > 1 && w.segs[1].firstLSN <= lsn+1 {
		if err := os.Remove(w.segs[0].path); err != nil && !os.IsNotExist(err) {
			return removed, fmt.Errorf("durable: wal compact: %w", err)
		}
		w.segs = w.segs[1:]
		removed++
	}
	if removed > 0 {
		w.publishGaugesLocked()
	}
	return removed, nil
}

// LastLSN returns the LSN of the most recently appended record (0 if none).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// TailRepairs returns how many torn-tail truncations OpenWAL performed when
// this log was opened. Zero after a clean shutdown and reopen.
func (w *WAL) TailRepairs() int64 {
	return w.tailRepairs.Value()
}

// Segments returns the number of on-disk segment files.
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.segs)
}

func (w *WAL) publishGaugesLocked() {
	w.segBytes.Set(w.size)
	w.segCount.Set(int64(len(w.segs)))
}

func (w *WAL) flushLoop() {
	defer close(w.flushDone)
	ticker := time.NewTicker(w.opts.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-w.stopFlush:
			return
		case <-ticker.C:
		}
		w.mu.Lock()
		dirty := w.syncedSeq < w.writeSeq && !w.closed
		w.mu.Unlock()
		if dirty {
			_ = w.Sync()
		}
	}
}

// Close flushes, fsyncs, and closes the active segment.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.mu.Unlock()
	if w.stopFlush != nil {
		close(w.stopFlush)
		<-w.flushDone
	}
	err := w.Sync()
	w.mu.Lock()
	w.closed = true
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// --- atomic file helpers (shared by snapshots here and statestore.SaveFile) ---

// WriteFileAtomic writes data to path crash-safely: the bytes are written to
// a temp file which is fsynced, renamed over path, and the parent directory
// fsynced, so a crash at any point leaves either the old file or the new one
// — never a torn or missing file.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	cleanup := func() { os.Remove(tmpName) }
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		cleanup()
		return err
	}
	if err := tmp.Close(); err != nil {
		cleanup()
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		cleanup()
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("durable: fsync dir %s: %w", dir, err)
	}
	return nil
}
