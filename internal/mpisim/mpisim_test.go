package mpisim

import (
	"context"
	"strings"
	"testing"
	"time"
)

func TestValidate(t *testing.T) {
	bad := []LaunchSpec{
		{},
		{Command: "x"},
		{Command: "x", Nodes: []string{"n"}},
		{Nodes: []string{"n"}, RanksPerNode: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("Validate(%+v) passed", s)
		}
	}
	good := LaunchSpec{Command: "true", Nodes: []string{"a"}, RanksPerNode: 1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate(good) = %v", err)
	}
}

func TestWorldSize(t *testing.T) {
	s := LaunchSpec{Nodes: []string{"a", "b"}, RanksPerNode: 3}
	if s.WorldSize() != 6 {
		t.Errorf("WorldSize = %d", s.WorldSize())
	}
}

func TestBuildPrefix(t *testing.T) {
	if got := BuildPrefix("", 4, []string{"n1", "n2"}); got != "mpiexec -n 4 -host n1,n2" {
		t.Errorf("default prefix = %q", got)
	}
	if got := BuildPrefix("srun", 2, []string{"n1"}); got != "srun -n 2 -w n1" {
		t.Errorf("srun prefix = %q", got)
	}
	if got := BuildPrefix("mpirun", 1, []string{"x"}); got != "mpirun -n 1 -host x" {
		t.Errorf("mpirun prefix = %q", got)
	}
}

func TestHostnameListing(t *testing.T) {
	// Paper Listing 6/7: `hostname` over 2 nodes with n ranks per node.
	// GC_NODE is the simulated hostname.
	for _, rpn := range []int{1, 2} {
		spec := LaunchSpec{
			Command:      "echo $GC_NODE",
			Nodes:        []string{"exp-14-08", "exp-14-20"},
			RanksPerNode: rpn,
		}
		res, err := Launch(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if res.ReturnCode != 0 {
			t.Fatalf("rc = %d", res.ReturnCode)
		}
		hosts := res.HostsSummary()
		if len(hosts) != 2*rpn {
			t.Fatalf("rpn=%d: %d host lines, want %d", rpn, len(hosts), 2*rpn)
		}
		count := map[string]int{}
		for _, h := range hosts {
			count[h]++
		}
		if count["exp-14-08"] != rpn || count["exp-14-20"] != rpn {
			t.Errorf("rpn=%d: placement %v", rpn, count)
		}
		// stdout is the concatenated per-rank echo output.
		lines := strings.Split(res.ShellResult().Stdout, "\n")
		if len(lines) != 2*rpn {
			t.Errorf("stdout lines = %d, want %d", len(lines), 2*rpn)
		}
	}
}

func TestRankEnvironment(t *testing.T) {
	spec := LaunchSpec{
		Command:      "echo rank=$PMI_RANK size=$PMI_SIZE node=$GC_NODE",
		Nodes:        []string{"a", "b"},
		RanksPerNode: 2,
	}
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, rr := range res.Ranks {
		seen[rr.Stdout] = true
	}
	for _, want := range []string{
		"rank=0 size=4 node=a",
		"rank=1 size=4 node=a",
		"rank=2 size=4 node=b",
		"rank=3 size=4 node=b",
	} {
		if !seen[want] {
			t.Errorf("missing rank output %q (have %v)", want, seen)
		}
	}
}

func TestNonZeroRankPropagates(t *testing.T) {
	spec := LaunchSpec{
		Command:      `if [ "$PMI_RANK" = "1" ]; then exit 7; fi`,
		Nodes:        []string{"a"},
		RanksPerNode: 3,
	}
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != 7 {
		t.Errorf("rc = %d, want 7", res.ReturnCode)
	}
}

func TestWalltimeKillsAllRanks(t *testing.T) {
	spec := LaunchSpec{
		Command:      "sleep 5",
		Nodes:        []string{"a", "b"},
		RanksPerNode: 1,
		Walltime:     100 * time.Millisecond,
	}
	start := time.Now()
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 3*time.Second {
		t.Error("walltime not enforced")
	}
	if res.ReturnCode != 124 {
		t.Errorf("rc = %d, want 124", res.ReturnCode)
	}
}

func TestExtraEnvOverrides(t *testing.T) {
	spec := LaunchSpec{
		Command:      "echo $APP_MODE",
		Nodes:        []string{"a"},
		RanksPerNode: 1,
		Env:          map[string]string{"APP_MODE": "production"},
	}
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ranks[0].Stdout != "production" {
		t.Errorf("stdout = %q", res.Ranks[0].Stdout)
	}
}

func TestShellResultCmdIncludesPrefix(t *testing.T) {
	spec := LaunchSpec{Command: "true", Nodes: []string{"n1", "n2"}, RanksPerNode: 2, Launcher: "srun"}
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	sr := res.ShellResult()
	if !strings.HasPrefix(sr.Cmd, "srun -n 4 -w n1,n2 ") {
		t.Errorf("cmd = %q", sr.Cmd)
	}
}

func TestLaunchInvalidSpec(t *testing.T) {
	if _, err := Launch(context.Background(), LaunchSpec{}); err == nil {
		t.Error("invalid spec launched")
	}
}

func TestManyRanksComplete(t *testing.T) {
	spec := LaunchSpec{
		Command:      "echo $PMI_RANK",
		Nodes:        []string{"a", "b", "c", "d"},
		RanksPerNode: 4,
	}
	res, err := Launch(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ranks) != 16 {
		t.Fatalf("ranks = %d", len(res.Ranks))
	}
	seen := map[string]bool{}
	for _, rr := range res.Ranks {
		seen[rr.Stdout] = true
	}
	if len(seen) != 16 {
		t.Errorf("distinct rank outputs = %d, want 16", len(seen))
	}
}
