// Package mpisim simulates an MPI launcher (mpiexec/srun): given a command,
// a node list, and ranks per node, it launches one process per rank with
// PMI-style environment variables (rank, world size, host) and aggregates
// per-rank output. It is the execution backend for MPIFunctions and the
// substitute for a real MPI runtime on a cluster.
//
// Commands observe their placement through the environment:
//
//	GC_NODE   the node this rank is pinned to (the `hostname` equivalent)
//	PMI_RANK / OMPI_COMM_WORLD_RANK   the rank index
//	PMI_SIZE / OMPI_COMM_WORLD_SIZE   the world size
package mpisim

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/shellfn"
)

// LaunchSpec describes one MPI application launch.
type LaunchSpec struct {
	// Command is the application command line (no launcher prefix).
	Command string
	// Nodes are the nodes granted to this application.
	Nodes []string
	// RanksPerNode is the number of ranks placed on each node.
	RanksPerNode int
	// Launcher names the launcher being simulated (mpiexec, srun); it only
	// affects the rendered prefix string.
	Launcher string
	// Walltime bounds the whole application (all ranks).
	Walltime time.Duration
	// SnippetLines bounds per-rank captured lines.
	SnippetLines int
	// Env adds environment variables to every rank.
	Env map[string]string
	// RunDir is the working directory for every rank.
	RunDir string
}

// Validate checks the spec is launchable.
func (s LaunchSpec) Validate() error {
	if s.Command == "" {
		return errors.New("mpisim: empty command")
	}
	if len(s.Nodes) == 0 {
		return errors.New("mpisim: no nodes")
	}
	if s.RanksPerNode <= 0 {
		return errors.New("mpisim: ranks per node must be positive")
	}
	return nil
}

// WorldSize returns the total rank count.
func (s LaunchSpec) WorldSize() int { return len(s.Nodes) * s.RanksPerNode }

// BuildPrefix renders the launcher prefix the engine substitutes for
// $PARSL_MPI_PREFIX, e.g. "mpiexec -n 4 -host node-000,node-001".
func BuildPrefix(launcher string, nranks int, nodes []string) string {
	if launcher == "" {
		launcher = "mpiexec"
	}
	hosts := strings.Join(nodes, ",")
	switch launcher {
	case "srun":
		return fmt.Sprintf("srun -n %d -w %s", nranks, hosts)
	default:
		return fmt.Sprintf("%s -n %d -host %s", launcher, nranks, hosts)
	}
}

// RankResult is one rank's outcome.
type RankResult struct {
	Rank       int
	Node       string
	ReturnCode int
	Stdout     string
	Stderr     string
}

// Result aggregates an application run.
type Result struct {
	Spec   LaunchSpec
	Ranks  []RankResult
	Prefix string
	// ReturnCode is 0 if all ranks succeeded, otherwise the first nonzero
	// rank code (walltime kills report 124 as with ShellFunctions).
	ReturnCode int
	Elapsed    time.Duration
}

// ShellResult folds the per-rank outputs into the ShellFunction result
// shape: stdout/stderr are the rank outputs concatenated in rank order, as
// in the paper's Listing 7.
func (r Result) ShellResult() protocol.ShellResult {
	var out, errOut []string
	for _, rank := range r.Ranks {
		if rank.Stdout != "" {
			out = append(out, rank.Stdout)
		}
		if rank.Stderr != "" {
			errOut = append(errOut, rank.Stderr)
		}
	}
	return protocol.ShellResult{
		ReturnCode: r.ReturnCode,
		Cmd:        r.Prefix + " " + r.Spec.Command,
		Stdout:     strings.Join(out, "\n"),
		Stderr:     strings.Join(errOut, "\n"),
	}
}

// Launch runs the application: one process per rank, ranks round-robin
// block-wise over nodes (node 0 gets ranks 0..rpn-1, etc.). It returns when
// every rank finishes.
func Launch(ctx context.Context, spec LaunchSpec) (Result, error) {
	if err := spec.Validate(); err != nil {
		return Result{}, err
	}
	world := spec.WorldSize()
	res := Result{
		Spec:   spec,
		Ranks:  make([]RankResult, world),
		Prefix: BuildPrefix(spec.Launcher, world, spec.Nodes),
	}
	if spec.Walltime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Walltime)
		defer cancel()
	}
	start := time.Now()
	var wg sync.WaitGroup
	var firstErr error
	var errMu sync.Mutex
	for rank := 0; rank < world; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			node := spec.Nodes[rank/spec.RanksPerNode]
			env := map[string]string{
				"GC_NODE":              node,
				"PMI_RANK":             strconv.Itoa(rank),
				"PMI_SIZE":             strconv.Itoa(world),
				"OMPI_COMM_WORLD_RANK": strconv.Itoa(rank),
				"OMPI_COMM_WORLD_SIZE": strconv.Itoa(world),
				"SLURM_PROCID":         strconv.Itoa(rank),
				"SLURM_NTASKS":         strconv.Itoa(world),
				"SLURMD_NODENAME":      node,
			}
			for k, v := range spec.Env {
				env[k] = v
			}
			sr, err := shellfn.Execute(ctx, spec.Command, shellfn.Options{
				RunDir:       spec.RunDir,
				SnippetLines: spec.SnippetLines,
				Env:          env,
			})
			if err != nil {
				errMu.Lock()
				if firstErr == nil {
					firstErr = fmt.Errorf("mpisim: rank %d: %w", rank, err)
				}
				errMu.Unlock()
				return
			}
			res.Ranks[rank] = RankResult{
				Rank: rank, Node: node,
				ReturnCode: sr.ReturnCode,
				Stdout:     sr.Stdout, Stderr: sr.Stderr,
			}
		}(rank)
	}
	wg.Wait()
	res.Elapsed = time.Since(start)
	if firstErr != nil {
		return res, firstErr
	}
	for _, rank := range res.Ranks {
		if rank.ReturnCode != 0 {
			res.ReturnCode = rank.ReturnCode
			break
		}
	}
	return res, nil
}

// HostsSummary returns the sorted multiset of nodes that ranks ran on, one
// line per rank — the shape of the paper's Listing 7 `hostname` output.
func (r Result) HostsSummary() []string {
	hosts := make([]string, len(r.Ranks))
	for i, rank := range r.Ranks {
		hosts[i] = rank.Node
	}
	sort.Strings(hosts)
	return hosts
}
