package sdk

import (
	"encoding/json"
	"sync"

	"globuscompute/internal/protocol"
	"globuscompute/internal/shellfn"
)

// PythonFunction references a worker-side entrypoint (the Go substitute for
// a pickled Python callable; see DESIGN.md). Submitting it serializes the
// entrypoint name and arguments into the task payload.
type PythonFunction struct {
	Entrypoint string

	reg registrationCache
}

// ShellFunction is the paper's §III-B task type: a command-line template
// with runtime controls. Placeholders like {message} are substituted from
// kwargs at submission time.
type ShellFunction struct {
	Command string
	// RunDir overrides the remote working directory.
	RunDir string
	// Sandbox runs each invocation in a unique task directory.
	Sandbox bool
	// WalltimeSec kills execution after this many seconds (rc 124).
	WalltimeSec float64
	// SnippetLines bounds captured output lines (default 1000).
	SnippetLines int
	// Env adds environment variables.
	Env map[string]string
	// Container runs the command inside the named image on endpoints with
	// a container runtime.
	Container string

	reg registrationCache
}

// NewShellFunction wraps a command template.
func NewShellFunction(command string) *ShellFunction {
	return &ShellFunction{Command: command}
}

// MPIFunction extends ShellFunction with an MPI launcher: the command runs
// once per rank under the executor's resource specification (§III-C).
type MPIFunction struct {
	ShellFunction
	// Launcher names the MPI launcher (mpiexec, srun); empty uses the
	// endpoint default.
	Launcher string
}

// NewMPIFunction wraps an MPI application command.
func NewMPIFunction(command string) *MPIFunction {
	return &MPIFunction{ShellFunction: ShellFunction{Command: command}}
}

// registrationCache lazily registers a function definition once per client,
// implementing the SDK's on-the-fly registration.
type registrationCache struct {
	mu  sync.Mutex
	ids map[*Client]protocol.UUID
}

func (rc *registrationCache) idFor(c *Client, kind protocol.FunctionKind, definition any) (protocol.UUID, error) {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.ids == nil {
		rc.ids = make(map[*Client]protocol.UUID)
	}
	if id, ok := rc.ids[c]; ok {
		return id, nil
	}
	def, err := json.Marshal(definition)
	if err != nil {
		return "", err
	}
	id, err := c.RegisterFunction(kind, def)
	if err != nil {
		return "", err
	}
	rc.ids[c] = id
	return id, nil
}

// ensureRegistered returns the function UUID, registering on first use.
func (p *PythonFunction) ensureRegistered(c *Client) (protocol.UUID, error) {
	return p.reg.idFor(c, protocol.KindPython, map[string]string{"entrypoint": p.Entrypoint})
}

func (s *ShellFunction) ensureRegistered(c *Client) (protocol.UUID, error) {
	return s.reg.idFor(c, protocol.KindShell, map[string]any{
		"command_template": s.Command, "sandbox": s.Sandbox,
	})
}

func (m *MPIFunction) ensureRegistered(c *Client) (protocol.UUID, error) {
	return m.reg.idFor(c, protocol.KindMPI, map[string]any{
		"command_template": m.Command, "launcher": m.Launcher,
	})
}

// payload builders

func (p *PythonFunction) payload(args []any, kwargs map[string]any) ([]byte, error) {
	spec := protocol.PythonSpec{Entrypoint: p.Entrypoint}
	for _, a := range args {
		b, err := json.Marshal(a)
		if err != nil {
			return nil, err
		}
		spec.Args = append(spec.Args, b)
	}
	if len(kwargs) > 0 {
		spec.Kwargs = make(map[string]json.RawMessage, len(kwargs))
		for k, v := range kwargs {
			b, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			spec.Kwargs[k] = b
		}
	}
	return protocol.EncodePayload(spec)
}

// shellSpec renders the command template with kwargs into a ShellSpec.
func (s *ShellFunction) shellSpec(kwargs map[string]string) (protocol.ShellSpec, error) {
	cmd, err := shellfn.FormatCommand(s.Command, kwargs)
	if err != nil {
		return protocol.ShellSpec{}, err
	}
	return protocol.ShellSpec{
		Command:      cmd,
		RunDir:       s.RunDir,
		Sandbox:      s.Sandbox,
		WalltimeSec:  s.WalltimeSec,
		SnippetLines: s.SnippetLines,
		Container:    s.Container,
		Env:          s.Env,
	}, nil
}

func (s *ShellFunction) payload(kwargs map[string]string) ([]byte, error) {
	spec, err := s.shellSpec(kwargs)
	if err != nil {
		return nil, err
	}
	return protocol.EncodePayload(spec)
}

func (m *MPIFunction) payload(kwargs map[string]string) ([]byte, error) {
	spec, err := m.shellSpec(kwargs)
	if err != nil {
		return nil, err
	}
	spec.Launcher = m.Launcher
	return protocol.EncodePayload(spec)
}
