// Package sdk is the Globus Compute client library: a REST client for the
// web service, a future-based Executor mirroring
// concurrent.futures.Executor (submit returns a future; results stream back
// over the broker rather than by polling), ShellFunction and MPIFunction
// task types, and on-the-fly function registration with request batching.
package sdk

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

// Client talks to the web service REST API.
type Client struct {
	// BaseURL is the service address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Token is the bearer token for every request.
	Token string
	// HTTP is the underlying client (default: 30s timeout).
	HTTP *http.Client

	// MaxRetries bounds extra attempts after the first for transient
	// failures — transport errors, 429, and 5xx responses (default 4;
	// negative disables retries). Each retry waits a jittered exponential
	// backoff starting at RetryBaseDelay (default 50ms) capped at
	// RetryMaxDelay (default 2s), or the server's Retry-After when given.
	MaxRetries     int
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration

	// Wire accounting, used by the streaming-vs-polling and batching
	// experiments to compare REST traffic.
	Requests      atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
	// Retries counts retried attempts (the robustness dashboards read it).
	Retries atomic.Int64
	// Sheds counts overload rejections observed (429, or 503 carrying
	// Retry-After) across all attempts, retried or not — the client-side
	// view of the service's gc_shed_total.
	Sheds atomic.Int64

	// sleep and jitter are test seams (nil selects time.Sleep and a
	// seeded source).
	sleep  func(time.Duration)
	jitter *rand.Rand
	mu     sync.Mutex // guards jitter
}

// NewClient builds a client for the service at addr (host:port) using the
// given bearer token.
func NewClient(addr, token string) *Client {
	return &Client{
		BaseURL: "http://" + addr,
		Token:   token,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// APIError carries a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sdk: api error %d: %s", e.Status, e.Message)
}

// ErrOverloaded is the sentinel for overload sheds: the service rejected the
// request to protect itself (429 admission control, 503 downstream
// saturation). Match with errors.Is; the concrete *OverloadedError carries
// the server's backoff hint.
var ErrOverloaded = errors.New("sdk: service overloaded")

// OverloadedError is returned when the retry budget drains against a
// shedding service. It unwraps to both ErrOverloaded and its *APIError, so
// callers can branch on overload generally or inspect the raw response.
type OverloadedError struct {
	API *APIError
	// RetryAfter is the server's backoff hint from the last shed response.
	RetryAfter time.Duration
	// RetryAt is the wall-clock deadline the hint resolves to: submitting
	// again before it will almost certainly shed again.
	RetryAt time.Time
}

func (e *OverloadedError) Error() string {
	return fmt.Sprintf("sdk: overloaded (status %d, retry after %s): %s",
		e.API.Status, e.RetryAfter, e.API.Message)
}

// Unwrap exposes both the sentinel and the underlying API error to
// errors.Is/As.
func (e *OverloadedError) Unwrap() []error { return []error{ErrOverloaded, e.API} }

// do performs a JSON request/response round trip. Transient failures —
// transport errors, 429, and 5xx — retry with jittered exponential backoff
// under the client's retry budget, honoring Retry-After when the server
// sends one. Retried submits are made exactly-once by attaching an
// idempotency key (see SubmitBatchOpts): a retry whose first attempt was
// processed but whose response was lost replays the original task IDs
// instead of enqueuing duplicates.
func (c *Client) do(method, path string, body, out any) error {
	var encoded []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("sdk: encode request: %w", err)
		}
		encoded = b
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := 1 + c.retryBudget()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			c.Retries.Add(1)
		}
		buf := bytes.NewReader(encoded)
		req, err := http.NewRequest(method, c.BaseURL+path, buf)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+c.Token)
		req.Header.Set("Content-Type", "application/json")
		c.Requests.Add(1)
		c.BytesSent.Add(int64(len(encoded)))
		resp, err := hc.Do(req)
		if err != nil {
			lastErr = fmt.Errorf("sdk: %s %s: %w", method, path, err)
			if attempt+1 < attempts {
				c.backoff(attempt, 0)
			}
			continue
		}
		data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			lastErr = err
			if attempt+1 < attempts {
				c.backoff(attempt, 0)
			}
			continue
		}
		c.BytesReceived.Add(int64(len(data)))
		if resp.StatusCode < 200 || resp.StatusCode >= 300 {
			var apiErr struct {
				Error string `json:"error"`
			}
			msg := string(data)
			if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
				msg = apiErr.Error
			}
			api := &APIError{Status: resp.StatusCode, Message: msg}
			lastErr = api
			ra := retryAfter(resp)
			if resp.StatusCode == http.StatusTooManyRequests ||
				(resp.StatusCode == http.StatusServiceUnavailable && ra > 0) {
				// An overload shed, not a failure: type it so callers can
				// schedule around the server's hint instead of hammering.
				c.Sheds.Add(1)
				lastErr = &OverloadedError{API: api, RetryAfter: ra, RetryAt: time.Now().Add(ra)}
			}
			if retryableStatus(resp.StatusCode) && attempt+1 < attempts {
				c.backoff(attempt, ra)
				continue
			}
			return lastErr
		}
		if out != nil {
			if err := json.Unmarshal(data, out); err != nil {
				return fmt.Errorf("sdk: decode response: %w", err)
			}
		}
		return nil
	}
	return lastErr
}

// retryBudget returns the number of extra attempts allowed.
func (c *Client) retryBudget() int {
	if c.MaxRetries < 0 {
		return 0
	}
	if c.MaxRetries == 0 {
		return 4
	}
	return c.MaxRetries
}

// retryableStatus reports whether a response status merits a retry: rate
// limiting and server-side failures, never other client errors.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code >= 500
}

// retryAfter parses a Retry-After header in whole seconds (0 when absent or
// malformed; the HTTP-date form is not used by this service).
func retryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// backoff sleeps a jittered exponential delay before retry attempt+1. A
// server-provided Retry-After overrides the computed delay.
func (c *Client) backoff(attempt int, after time.Duration) {
	base := c.RetryBaseDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	max := c.RetryMaxDelay
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	// Full jitter in [d/2, d] so synchronized clients spread out.
	c.mu.Lock()
	if c.jitter == nil {
		c.jitter = rand.New(rand.NewSource(1))
	}
	d = d/2 + time.Duration(c.jitter.Int63n(int64(d)/2+1))
	c.mu.Unlock()
	if after > 0 {
		d = after
	}
	sleep := c.sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	sleep(d)
}

// RegisterFunction registers an immutable function definition and returns
// its UUID.
func (c *Client) RegisterFunction(kind protocol.FunctionKind, definition []byte) (protocol.UUID, error) {
	var resp struct {
		FunctionID protocol.UUID `json:"function_uuid"`
	}
	err := c.do("POST", "/v2/functions", map[string]any{
		"kind": kind, "definition": definition,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.FunctionID, nil
}

// FunctionRecord is the client view of a registered function.
type FunctionRecord struct {
	ID         protocol.UUID         `json:"id"`
	Owner      string                `json:"owner"`
	Kind       protocol.FunctionKind `json:"kind"`
	Definition []byte                `json:"definition"`
}

// GetFunction fetches a registered function's record (science gateways use
// this to invoke administrator-approved functions by UUID).
func (c *Client) GetFunction(id protocol.UUID) (FunctionRecord, error) {
	var rec FunctionRecord
	err := c.do("GET", "/v2/functions/"+string(id), nil, &rec)
	return rec, err
}

// RegisterEndpoint registers an endpoint and returns its connection info.
func (c *Client) RegisterEndpoint(req webservice.RegisterEndpointRequest) (webservice.RegisterEndpointResponse, error) {
	var resp webservice.RegisterEndpointResponse
	err := c.do("POST", "/v2/endpoints", req, &resp)
	return resp, err
}

// Heartbeat reports endpoint liveness.
func (c *Client) Heartbeat(ep protocol.UUID, online bool) error {
	return c.do("POST", "/v2/endpoints/"+string(ep)+"/heartbeat", map[string]bool{"online": online}, nil)
}

// HeartbeatWithLoad reports liveness plus the agent's utilization.
func (c *Client) HeartbeatWithLoad(ep protocol.UUID, online bool, load statestore.EndpointLoad) error {
	return c.do("POST", "/v2/endpoints/"+string(ep)+"/heartbeat", map[string]any{
		"online": online, "load": load,
	}, nil)
}

// HeartbeatReport reports liveness plus optional utilization and an optional
// delta-encoded metrics snapshot, the full federation piggyback. Nil fields
// are omitted from the wire so old services ignore what they don't know.
func (c *Client) HeartbeatReport(ep protocol.UUID, online bool, load *statestore.EndpointLoad, snap *metrics.Snapshot) error {
	body := map[string]any{"online": online}
	if load != nil {
		body["load"] = load
	}
	if snap != nil && snap.Len() > 0 {
		body["metrics"] = snap
	}
	return c.do("POST", "/v2/endpoints/"+string(ep)+"/heartbeat", body, nil)
}

// SubmitBatch submits tasks and returns their IDs in order.
func (c *Client) SubmitBatch(tasks []webservice.SubmitRequest) ([]protocol.UUID, error) {
	return c.SubmitBatchOpts(tasks, webservice.SubmitOptions{})
}

// SubmitBatchOpts submits tasks with overload-protection options. Setting
// IdempotencyKey makes the POST safely retryable — the retry loop in do()
// can replay it after a lost response and receive the original task IDs.
func (c *Client) SubmitBatchOpts(tasks []webservice.SubmitRequest, opts webservice.SubmitOptions) ([]protocol.UUID, error) {
	if len(tasks) == 0 {
		return nil, errors.New("sdk: empty batch")
	}
	body := map[string]any{"tasks": tasks}
	if opts.IdempotencyKey != "" {
		body["idempotency_key"] = opts.IdempotencyKey
	}
	if opts.Interactive {
		body["priority"] = "interactive"
	}
	var resp struct {
		TaskIDs []protocol.UUID `json:"task_uuids"`
	}
	err := c.do("POST", "/v2/submit", body, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.TaskIDs) != len(tasks) {
		return nil, fmt.Errorf("sdk: submitted %d tasks, got %d IDs", len(tasks), len(resp.TaskIDs))
	}
	return resp.TaskIDs, nil
}

// TaskStatus polls one task.
func (c *Client) TaskStatus(id protocol.UUID) (webservice.TaskStatus, error) {
	var st webservice.TaskStatus
	err := c.do("GET", "/v2/tasks/"+string(id), nil, &st)
	return st, err
}

// SearchEndpoints discovers endpoints by name or metadata substring (the
// paper's discovery path for multi-user endpoint IDs).
func (c *Client) SearchEndpoints(query string) ([]webservice.EndpointSummary, error) {
	var resp struct {
		Endpoints []webservice.EndpointSummary `json:"endpoints"`
	}
	path := "/v2/endpoints"
	if query != "" {
		path += "?search=" + url.QueryEscape(query)
	}
	if err := c.do("GET", path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Endpoints, nil
}

// TaskStatuses polls many tasks in one REST call (batch_status).
func (c *Client) TaskStatuses(ids []protocol.UUID) ([]webservice.TaskStatus, error) {
	var resp struct {
		Tasks []webservice.TaskStatus `json:"tasks"`
	}
	err := c.do("POST", "/v2/tasks/batch_status", map[string]any{"task_ids": ids}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Tasks, nil
}

// CancelTask requests cancellation of a non-terminal task the token's
// identity owns.
func (c *Client) CancelTask(id protocol.UUID) error {
	return c.do("POST", "/v2/tasks/"+string(id)+"/cancel", nil, nil)
}

// Usage fetches aggregate service statistics.
func (c *Client) Usage() (webservice.UsageStats, error) {
	var u webservice.UsageStats
	err := c.do("GET", "/v2/usage", nil, &u)
	return u, err
}
