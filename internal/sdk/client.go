// Package sdk is the Globus Compute client library: a REST client for the
// web service, a future-based Executor mirroring
// concurrent.futures.Executor (submit returns a future; results stream back
// over the broker rather than by polling), ShellFunction and MPIFunction
// task types, and on-the-fly function registration with request batching.
package sdk

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync/atomic"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/statestore"
	"globuscompute/internal/webservice"
)

// Client talks to the web service REST API.
type Client struct {
	// BaseURL is the service address, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Token is the bearer token for every request.
	Token string
	// HTTP is the underlying client (default: 30s timeout).
	HTTP *http.Client

	// Wire accounting, used by the streaming-vs-polling and batching
	// experiments to compare REST traffic.
	Requests      atomic.Int64
	BytesSent     atomic.Int64
	BytesReceived atomic.Int64
}

// NewClient builds a client for the service at addr (host:port) using the
// given bearer token.
func NewClient(addr, token string) *Client {
	return &Client{
		BaseURL: "http://" + addr,
		Token:   token,
		HTTP:    &http.Client{Timeout: 30 * time.Second},
	}
}

// APIError carries a non-2xx response.
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("sdk: api error %d: %s", e.Status, e.Message)
}

// do performs a JSON request/response round trip. Idempotent GETs retry
// transient transport failures with a short backoff.
func (c *Client) do(method, path string, body, out any) error {
	var encoded []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("sdk: encode request: %w", err)
		}
		encoded = b
	}
	hc := c.HTTP
	if hc == nil {
		hc = http.DefaultClient
	}
	attempts := 1
	if method == http.MethodGet {
		attempts = 3
	}
	var resp *http.Response
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 50 * time.Millisecond)
		}
		buf := bytes.NewReader(encoded)
		req, err := http.NewRequest(method, c.BaseURL+path, buf)
		if err != nil {
			return err
		}
		req.Header.Set("Authorization", "Bearer "+c.Token)
		req.Header.Set("Content-Type", "application/json")
		c.Requests.Add(1)
		c.BytesSent.Add(int64(len(encoded)))
		resp, lastErr = hc.Do(req)
		if lastErr == nil {
			break
		}
	}
	if lastErr != nil {
		return fmt.Errorf("sdk: %s %s: %w", method, path, lastErr)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	c.BytesReceived.Add(int64(len(data)))
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		var apiErr struct {
			Error string `json:"error"`
		}
		msg := string(data)
		if json.Unmarshal(data, &apiErr) == nil && apiErr.Error != "" {
			msg = apiErr.Error
		}
		return &APIError{Status: resp.StatusCode, Message: msg}
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return fmt.Errorf("sdk: decode response: %w", err)
		}
	}
	return nil
}

// RegisterFunction registers an immutable function definition and returns
// its UUID.
func (c *Client) RegisterFunction(kind protocol.FunctionKind, definition []byte) (protocol.UUID, error) {
	var resp struct {
		FunctionID protocol.UUID `json:"function_uuid"`
	}
	err := c.do("POST", "/v2/functions", map[string]any{
		"kind": kind, "definition": definition,
	}, &resp)
	if err != nil {
		return "", err
	}
	return resp.FunctionID, nil
}

// FunctionRecord is the client view of a registered function.
type FunctionRecord struct {
	ID         protocol.UUID         `json:"id"`
	Owner      string                `json:"owner"`
	Kind       protocol.FunctionKind `json:"kind"`
	Definition []byte                `json:"definition"`
}

// GetFunction fetches a registered function's record (science gateways use
// this to invoke administrator-approved functions by UUID).
func (c *Client) GetFunction(id protocol.UUID) (FunctionRecord, error) {
	var rec FunctionRecord
	err := c.do("GET", "/v2/functions/"+string(id), nil, &rec)
	return rec, err
}

// RegisterEndpoint registers an endpoint and returns its connection info.
func (c *Client) RegisterEndpoint(req webservice.RegisterEndpointRequest) (webservice.RegisterEndpointResponse, error) {
	var resp webservice.RegisterEndpointResponse
	err := c.do("POST", "/v2/endpoints", req, &resp)
	return resp, err
}

// Heartbeat reports endpoint liveness.
func (c *Client) Heartbeat(ep protocol.UUID, online bool) error {
	return c.do("POST", "/v2/endpoints/"+string(ep)+"/heartbeat", map[string]bool{"online": online}, nil)
}

// HeartbeatWithLoad reports liveness plus the agent's utilization.
func (c *Client) HeartbeatWithLoad(ep protocol.UUID, online bool, load statestore.EndpointLoad) error {
	return c.do("POST", "/v2/endpoints/"+string(ep)+"/heartbeat", map[string]any{
		"online": online, "load": load,
	}, nil)
}

// SubmitBatch submits tasks and returns their IDs in order.
func (c *Client) SubmitBatch(tasks []webservice.SubmitRequest) ([]protocol.UUID, error) {
	if len(tasks) == 0 {
		return nil, errors.New("sdk: empty batch")
	}
	var resp struct {
		TaskIDs []protocol.UUID `json:"task_uuids"`
	}
	err := c.do("POST", "/v2/submit", map[string]any{"tasks": tasks}, &resp)
	if err != nil {
		return nil, err
	}
	if len(resp.TaskIDs) != len(tasks) {
		return nil, fmt.Errorf("sdk: submitted %d tasks, got %d IDs", len(tasks), len(resp.TaskIDs))
	}
	return resp.TaskIDs, nil
}

// TaskStatus polls one task.
func (c *Client) TaskStatus(id protocol.UUID) (webservice.TaskStatus, error) {
	var st webservice.TaskStatus
	err := c.do("GET", "/v2/tasks/"+string(id), nil, &st)
	return st, err
}

// SearchEndpoints discovers endpoints by name or metadata substring (the
// paper's discovery path for multi-user endpoint IDs).
func (c *Client) SearchEndpoints(query string) ([]webservice.EndpointSummary, error) {
	var resp struct {
		Endpoints []webservice.EndpointSummary `json:"endpoints"`
	}
	path := "/v2/endpoints"
	if query != "" {
		path += "?search=" + url.QueryEscape(query)
	}
	if err := c.do("GET", path, nil, &resp); err != nil {
		return nil, err
	}
	return resp.Endpoints, nil
}

// TaskStatuses polls many tasks in one REST call (batch_status).
func (c *Client) TaskStatuses(ids []protocol.UUID) ([]webservice.TaskStatus, error) {
	var resp struct {
		Tasks []webservice.TaskStatus `json:"tasks"`
	}
	err := c.do("POST", "/v2/tasks/batch_status", map[string]any{"task_ids": ids}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Tasks, nil
}

// CancelTask requests cancellation of a non-terminal task the token's
// identity owns.
func (c *Client) CancelTask(id protocol.UUID) error {
	return c.do("POST", "/v2/tasks/"+string(id)+"/cancel", nil, nil)
}

// Usage fetches aggregate service statistics.
func (c *Client) Usage() (webservice.UsageStats, error) {
	var u webservice.UsageStats
	err := c.do("GET", "/v2/usage", nil, &u)
	return u, err
}
