package sdk

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// ErrTaskFailed wraps remote task failures surfaced through a future.
var ErrTaskFailed = errors.New("sdk: task failed")

// Future is the handle returned by Executor.Submit, mirroring
// concurrent.futures.Future: it resolves exactly once with the task's
// result or error.
type Future struct {
	mu     sync.Mutex
	taskID protocol.UUID
	idSet  chan struct{} // closed once the task ID is assigned
	done   chan struct{} // closed on resolution
	result protocol.Result
	err    error
}

func newFuture() *Future {
	return &Future{idSet: make(chan struct{}), done: make(chan struct{})}
}

// setTaskID records the service-assigned task ID (after the batch flush).
func (f *Future) setTaskID(id protocol.UUID) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.taskID == "" {
		f.taskID = id
		close(f.idSet)
	}
}

// TaskID blocks until the task ID is known (the submission batch flushed)
// and returns it. ctx bounds the wait.
func (f *Future) TaskID(ctx context.Context) (protocol.UUID, error) {
	select {
	case <-f.idSet:
		f.mu.Lock()
		defer f.mu.Unlock()
		return f.taskID, nil
	case <-f.done:
		// Failed before an ID was assigned (e.g. submission error).
		f.mu.Lock()
		defer f.mu.Unlock()
		if f.taskID != "" {
			return f.taskID, nil
		}
		return "", f.err
	case <-ctx.Done():
		return "", ctx.Err()
	}
}

// resolve completes the future. Later calls are ignored (exactly-once).
func (f *Future) resolve(res protocol.Result, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	select {
	case <-f.done:
		return
	default:
	}
	f.result = res
	f.err = err
	if f.taskID == "" && res.TaskID != "" {
		f.taskID = res.TaskID
		close(f.idSet)
	}
	close(f.done)
}

// Done returns a channel closed when the future resolves.
func (f *Future) Done() <-chan struct{} { return f.done }

// Result blocks until resolution and returns the raw result output. Remote
// failures surface as errors wrapping ErrTaskFailed.
func (f *Future) Result(ctx context.Context) ([]byte, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	if f.result.State != protocol.StateSuccess {
		return nil, fmt.Errorf("%w: %s (%s)", ErrTaskFailed, f.result.Error, f.result.State)
	}
	return f.result.Output, nil
}

// ResultWithin is Result with a timeout instead of a context.
func (f *Future) ResultWithin(d time.Duration) ([]byte, error) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	defer cancel()
	return f.Result(ctx)
}

// Raw returns the full protocol result after resolution; it blocks like
// Result but does not convert failures into errors.
func (f *Future) Raw(ctx context.Context) (protocol.Result, error) {
	select {
	case <-f.done:
	case <-ctx.Done():
		return protocol.Result{}, ctx.Err()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.err != nil {
		return protocol.Result{}, f.err
	}
	return f.result, nil
}

// ShellResult decodes the future's output as a ShellResult (for
// ShellFunction and MPIFunction submissions).
func (f *Future) ShellResult(ctx context.Context) (protocol.ShellResult, error) {
	out, err := f.Result(ctx)
	if err != nil {
		return protocol.ShellResult{}, err
	}
	var sr protocol.ShellResult
	if err := protocol.DecodePayload(out, &sr); err != nil {
		return protocol.ShellResult{}, err
	}
	return sr, nil
}
