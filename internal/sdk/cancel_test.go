package sdk_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

func TestCancelQueuedTask(t *testing.T) {
	// A single slow worker: the second task waits in the engine queue and
	// can be cancelled; its future resolves as cancelled.
	e := newEnv(t, core.EndpointOptions{Workers: 1})
	ex := e.executor(t)
	// The victim is slow, so the cancellation reaches the service while
	// the task is still delivered/running and wins the terminal state.
	slow := sdk.NewShellFunction("sleep 0.5")
	fut, err := ex.SubmitShell(slow, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := ex.Cancel(ctx, fut); err != nil {
		t.Fatal(err)
	}
	_, err = fut.Result(ctx)
	if !errors.Is(err, sdk.ErrTaskFailed) {
		t.Fatalf("result err = %v, want cancelled failure", err)
	}
	raw, rawErr := fut.Raw(ctx)
	if rawErr != nil || raw.State != protocol.StateCancelled {
		t.Errorf("raw = %+v, %v", raw, rawErr)
	}
}

func TestCancelCompletedTaskFails(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fut.ResultWithin(10 * time.Second); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := ex.Cancel(ctx, fut); err == nil {
		t.Error("cancel of completed task succeeded")
	}
}

func TestSearchEndpointsViaSDK(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{Name: "discoverable-hpc"})
	results, err := e.client.SearchEndpoints("discoverable")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Name != "discoverable-hpc" {
		t.Errorf("results = %+v", results)
	}
	none, err := e.client.SearchEndpoints("no-such-thing")
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unexpected matches: %+v", none)
	}
}

func TestBatchStatusViaSDK(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	var ids []protocol.UUID
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	for i := 0; i < 5; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.Result(ctx); err != nil {
			t.Fatal(err)
		}
		id, _ := fut.TaskID(ctx)
		ids = append(ids, id)
	}
	statuses, err := e.client.TaskStatuses(ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(statuses) != 5 {
		t.Fatalf("statuses = %d", len(statuses))
	}
	for i, st := range statuses {
		if st.State != protocol.StateSuccess {
			t.Errorf("task %d state = %s", i, st.State)
		}
	}
	// One REST call for all five.
	before := e.client.Requests.Load()
	if _, err := e.client.TaskStatuses(ids); err != nil {
		t.Fatal(err)
	}
	if got := e.client.Requests.Load() - before; got != 1 {
		t.Errorf("batch status used %d requests", got)
	}
}
