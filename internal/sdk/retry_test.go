package sdk

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// newRetryClient points a client at srv with instant (recorded) sleeps.
func newRetryClient(srv *httptest.Server, sleeps *[]time.Duration) *Client {
	c := NewClient(srv.Listener.Addr().String(), "tok")
	c.HTTP = srv.Client()
	c.sleep = func(d time.Duration) { *sleeps = append(*sleeps, d) }
	return c
}

func TestDoRetriesServerErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			http.Error(w, `{"error":"flaky"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"ok":true}`))
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	var out struct {
		OK bool `json:"ok"`
	}
	if err := c.do("GET", "/", nil, &out); err != nil {
		t.Fatalf("do = %v, want success after retries", err)
	}
	if !out.OK {
		t.Error("response not decoded")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d calls, want 3", got)
	}
	if got := c.Retries.Load(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2", len(sleeps))
	}
	// Jittered exponential: each delay in [base/2, cap], second >= first/2
	// by construction of the doubling base.
	for i, d := range sleeps {
		if d < 25*time.Millisecond || d > 2*time.Second {
			t.Errorf("sleep %d = %v outside [base/2, max]", i, d)
		}
	}
}

func TestDoHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "2")
			http.Error(w, `{"error":"slow down"}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	if err := c.do("POST", "/", map[string]int{"x": 1}, nil); err != nil {
		t.Fatalf("do = %v", err)
	}
	if len(sleeps) != 1 || sleeps[0] != 2*time.Second {
		t.Errorf("sleeps = %v, want exactly [2s] from Retry-After", sleeps)
	}
}

func TestDoDoesNotRetryClientErrors(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"bad request"}`, http.StatusBadRequest)
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	err := c.do("POST", "/", nil, nil)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want 400 APIError", err)
	}
	if calls.Load() != 1 {
		t.Errorf("400 retried: %d calls", calls.Load())
	}
	if len(sleeps) != 0 {
		t.Errorf("slept %v on non-retryable error", sleeps)
	}
}

func TestDoRetriesTransportErrors(t *testing.T) {
	// A server that is immediately closed: every attempt fails at the
	// transport layer, exhausting the budget.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	addr := srv.Listener.Addr().String()
	srv.Close()
	var sleeps []time.Duration
	c := NewClient(addr, "tok")
	c.MaxRetries = 2
	c.sleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	if err := c.do("GET", "/", nil, nil); err == nil {
		t.Fatal("do succeeded against closed server")
	}
	if got := c.Retries.Load(); got != 2 {
		t.Errorf("Retries = %d, want 2", got)
	}
	if len(sleeps) != 2 {
		t.Errorf("slept %d times, want 2", len(sleeps))
	}
}

func TestDoNegativeMaxRetriesDisables(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"down"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	c.MaxRetries = -1
	if err := c.do("GET", "/", nil, nil); err == nil {
		t.Fatal("do succeeded")
	}
	if calls.Load() != 1 {
		t.Errorf("calls = %d, want 1 with retries disabled", calls.Load())
	}
}

func TestDoResendsBodyOnRetry(t *testing.T) {
	var calls atomic.Int64
	var bodies []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		buf := make([]byte, 1024)
		n, _ := r.Body.Read(buf)
		bodies = append(bodies, string(buf[:n]))
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"retry me"}`, http.StatusBadGateway)
			return
		}
		w.Write([]byte(`{}`))
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	if err := c.do("POST", "/", map[string]string{"k": "v"}, nil); err != nil {
		t.Fatal(err)
	}
	if len(bodies) != 2 || bodies[0] != bodies[1] || bodies[0] == "" {
		t.Errorf("bodies = %q, want identical non-empty payloads on both attempts", bodies)
	}
}
