package sdk_test

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/core"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

// TestScienceGatewayPattern reproduces the §VI OpenCosmo/ESGF deployment
// style: an administrator registers and reviews functions, restricts an
// endpoint to that allowlist, and portal users invoke functions by UUID
// only. Unapproved functions are refused.
func TestScienceGatewayPattern(t *testing.T) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)

	// Admin registers the approved analysis functions.
	adminTok, _ := tb.IssueToken("admin@alcf.anl.gov", "anl")
	admin := sdk.NewClient(tb.ServiceAddr(), adminTok.Value)
	pyDef, _ := json.Marshal(map[string]string{"entrypoint": "add"})
	approvedPy, err := admin.RegisterFunction(protocol.KindPython, pyDef)
	if err != nil {
		t.Fatal(err)
	}
	shDef, _ := json.Marshal(map[string]any{"command_template": "echo analysis of {dataset}", "sandbox": false})
	approvedSh, err := admin.RegisterFunction(protocol.KindShell, shDef)
	if err != nil {
		t.Fatal(err)
	}

	// The gateway endpoint only executes the approved UUIDs.
	epID, err := tb.StartEndpoint(core.EndpointOptions{
		Name: "gateway-ep", Owner: "admin@alcf.anl.gov",
		AllowedFunctions: []protocol.UUID{approvedPy, approvedSh},
	})
	if err != nil {
		t.Fatal(err)
	}

	// A portal user invokes by UUID without registering anything.
	userTok, _ := tb.IssueToken("visitor@uni.edu", "uni")
	e := envFromTestbed(t, tb, userTok.Value)
	ex := e.executorFor(t, epID)

	fut, err := ex.SubmitRegistered(approvedPy, []any{40, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fut.ResultWithin(20 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "42" {
		t.Errorf("python by UUID = %s", out)
	}

	fut2, err := ex.SubmitRegistered(approvedSh, nil, map[string]string{"dataset": "cmip6"})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	sr, err := fut2.ShellResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Stdout != "analysis of cmip6" {
		t.Errorf("shell by UUID = %q", sr.Stdout)
	}

	// The user's own function is rejected by the allowlist.
	rogue, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, "sneaky")
	if err == nil {
		_, err = rogue.ResultWithin(10 * time.Second)
	}
	if err == nil {
		t.Error("unapproved function executed on gateway endpoint")
	}

	// Submitting by a bogus UUID fails cleanly.
	if _, err := ex.SubmitRegistered(protocol.NewUUID(), nil, nil); err == nil {
		t.Error("unknown function UUID accepted")
	}
	var apiErr *sdk.APIError
	if _, err := ex.SubmitRegistered(protocol.NewUUID(), nil, nil); !errors.As(err, &apiErr) {
		t.Errorf("err = %T", err)
	}
}

// envFromTestbed builds client plumbing for an existing testbed with a
// specific token.
type gwEnv struct {
	tb    *core.Testbed
	token string
}

func envFromTestbed(t *testing.T, tb *core.Testbed, token string) *gwEnv {
	t.Helper()
	return &gwEnv{tb: tb, token: token}
}

func (g *gwEnv) executorFor(t *testing.T, ep protocol.UUID) *sdk.Executor {
	t.Helper()
	client := sdk.NewClient(g.tb.ServiceAddr(), g.token)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: ep,
		PollInterval: 20 * time.Millisecond, // polling keeps this fixture broker-free
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	return ex
}
