package sdk

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/webservice"
)

func TestDoTypedOverloadedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, `{"error":"admission rate","retry_after":7}`, http.StatusTooManyRequests)
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	c.MaxRetries = 2

	before := time.Now()
	err := c.do("POST", "/v2/submit", map[string]int{"x": 1}, nil)
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadedError
	if !errors.As(err, &oe) {
		t.Fatalf("err %T not an OverloadedError", err)
	}
	if oe.RetryAfter != 7*time.Second {
		t.Errorf("RetryAfter = %s, want 7s", oe.RetryAfter)
	}
	if oe.RetryAt.Before(before.Add(7 * time.Second)) {
		t.Errorf("RetryAt %s earlier than hint deadline", oe.RetryAt)
	}
	// The typed error still unwraps to its APIError for status inspection.
	var api *APIError
	if !errors.As(err, &api) || api.Status != http.StatusTooManyRequests {
		t.Fatalf("APIError unwrap = %+v", api)
	}
	// Every shed response counts, including the retried attempts.
	if got := c.Sheds.Load(); got != 3 {
		t.Errorf("Sheds = %d, want 3 (initial + 2 retries)", got)
	}
}

func TestDo503WithoutRetryAfterIsNotOverload(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"crashed"}`, http.StatusServiceUnavailable)
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)
	c.MaxRetries = 1

	err := c.do("GET", "/", nil, nil)
	if errors.Is(err, ErrOverloaded) {
		t.Fatalf("plain 503 classified as overload: %v", err)
	}
	if got := c.Sheds.Load(); got != 0 {
		t.Errorf("Sheds = %d, want 0", got)
	}
}

func TestSubmitBatchOptsIdempotentRetry(t *testing.T) {
	// First POST is "processed but the response is lost" (simulated by a
	// 500); the retry must carry the same idempotency key and priority so
	// the service can replay the original task IDs — the exactly-once
	// submit the key buys.
	var calls atomic.Int64
	var mu sync.Mutex
	var keys, priorities []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var body struct {
			IdempotencyKey string `json:"idempotency_key"`
			Priority       string `json:"priority"`
		}
		_ = json.NewDecoder(r.Body).Decode(&body)
		mu.Lock()
		keys = append(keys, body.IdempotencyKey)
		priorities = append(priorities, body.Priority)
		mu.Unlock()
		if calls.Add(1) == 1 {
			http.Error(w, `{"error":"response lost"}`, http.StatusInternalServerError)
			return
		}
		w.Write([]byte(`{"task_uuids":["11111111-1111-4111-8111-111111111111"]}`))
	}))
	defer srv.Close()
	var sleeps []time.Duration
	c := newRetryClient(srv, &sleeps)

	ids, err := c.SubmitBatchOpts(
		[]webservice.SubmitRequest{{EndpointID: "ep", FunctionID: "fn", Payload: []byte(`1`)}},
		webservice.SubmitOptions{IdempotencyKey: "retry-key-1", Interactive: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 1 {
		t.Fatalf("ids = %v", ids)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 2 || keys[0] != "retry-key-1" || keys[1] != "retry-key-1" {
		t.Fatalf("keys sent = %v, want the same key on both attempts", keys)
	}
	if priorities[0] != "interactive" || priorities[1] != "interactive" {
		t.Fatalf("priorities sent = %v", priorities)
	}
}
