package sdk_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/serialize"
)

type env struct {
	tb     *core.Testbed
	client *sdk.Client
	epID   protocol.UUID
	conn   broker.Conn
	objs   *objectstore.Client
}

func newEnv(t *testing.T, opts core.EndpointOptions) *env {
	t.Helper()
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 8})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tok, err := tb.IssueToken("alice@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	if opts.Name == "" {
		opts.Name = "test-ep"
	}
	if opts.SandboxRoot == "" {
		opts.SandboxRoot = t.TempDir()
	}
	epID, err := tb.StartEndpoint(opts)
	if err != nil {
		t.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	return &env{
		tb:     tb,
		client: sdk.NewClient(tb.ServiceAddr(), tok.Value),
		epID:   epID,
		conn:   bc.AsConn(),
		objs:   objectstore.NewClient(tb.ObjectsSrv.Addr()),
	}
}

func (e *env) executor(t *testing.T) *sdk.Executor {
	t.Helper()
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn, Objects: e.objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	return ex
}

func TestExecutorListing1(t *testing.T) {
	// Paper Listing 1: submit a trivial function, print its result.
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fut.ResultWithin(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "1" {
		t.Errorf("result = %s", out)
	}
}

func TestExecutorManyTasksStreamed(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{Workers: 4})
	ex := e.executor(t)
	const n = 40
	futs := make([]*sdk.Future, n)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	for i := range futs {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		futs[i] = fut
	}
	for i, fut := range futs {
		out, err := fut.ResultWithin(15 * time.Second)
		if err != nil {
			t.Fatalf("task %d: %v", i, err)
		}
		if string(out) != fmt.Sprint(i) {
			t.Errorf("task %d result = %s", i, out)
		}
	}
}

func TestExecutorPollingMode(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, // no Conn -> polling
		PollInterval: 10 * time.Millisecond,
		Objects:      e.objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "add"}, 20, 22)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fut.ResultWithin(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "42" {
		t.Errorf("result = %s", out)
	}
}

func TestExecutorTaskFailure(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "fail"}, "deliberate")
	if err != nil {
		t.Fatal(err)
	}
	_, err = fut.ResultWithin(10 * time.Second)
	if !errors.Is(err, sdk.ErrTaskFailed) {
		t.Errorf("err = %v, want ErrTaskFailed", err)
	}
	if err != nil && !strings.Contains(err.Error(), "deliberate") {
		t.Errorf("error lost remote message: %v", err)
	}
}

func TestShellFunctionListing2(t *testing.T) {
	// Paper Listing 2: echo with a formatted message, three submissions.
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	sf := sdk.NewShellFunction("echo '{message}'")
	for _, msg := range []string{"hello", "hola", "bonjour"} {
		fut, err := ex.SubmitShell(sf, map[string]string{"message": msg})
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		sr, err := fut.ShellResult(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		if sr.Stdout != msg {
			t.Errorf("stdout = %q, want %q", sr.Stdout, msg)
		}
		if sr.ReturnCode != 0 {
			t.Errorf("rc = %d", sr.ReturnCode)
		}
	}
}

func TestShellFunctionListing3Walltime(t *testing.T) {
	// Paper Listing 3: sleep 2 with walltime 1 -> rc 124 (scaled down).
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	bf := sdk.NewShellFunction("sleep 2")
	bf.WalltimeSec = 0.1
	fut, err := ex.SubmitShell(bf, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ReturnCode != 124 {
		t.Errorf("rc = %d, want 124", sr.ReturnCode)
	}
}

func TestMPIFunctionListing6(t *testing.T) {
	// Paper Listing 6/7: hostname over 2 nodes x n ranks.
	e := newEnv(t, core.EndpointOptions{WithMPI: true, MPIBlockNodes: 2})
	ex := e.executor(t)
	fn := sdk.NewMPIFunction("echo $GC_NODE")
	for _, rpn := range []int{1, 2} {
		ex.ResourceSpec = protocol.ResourceSpec{NumNodes: 2, RanksPerNode: rpn}
		fut, err := ex.SubmitMPI(fn, nil)
		if err != nil {
			t.Fatal(err)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		sr, err := fut.ShellResult(ctx)
		cancel()
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(sr.Stdout, "\n")
		if len(lines) != 2*rpn {
			t.Errorf("rpn=%d: lines = %v", rpn, lines)
		}
	}
}

func TestOnTheFlyRegistrationOnce(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	for i := 0; i < 5; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := fut.ResultWithin(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	u, err := e.client.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if u.Functions != 1 {
		t.Errorf("functions registered = %d, want 1 (cached)", u.Functions)
	}
}

func TestBatchingCollapsesSubmits(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{Workers: 4})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn,
		BatchWindow: 50 * time.Millisecond, MaxBatch: 1000,
		Objects: e.objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	var futs []*sdk.Future
	for i := 0; i < 20; i++ {
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatal(err)
		}
		futs = append(futs, fut)
	}
	// All 20 should flush in one REST call after the window; all complete.
	for _, fut := range futs {
		if _, err := fut.ResultWithin(15 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMaxBatchTriggersImmediateFlush(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn,
		BatchWindow: 10 * time.Second, // window would stall without MaxBatch
		MaxBatch:    4,
		Objects:     e.objs,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	var futs []*sdk.Future
	for i := 0; i < 4; i++ {
		fut, _ := ex.Submit(fn, i)
		futs = append(futs, fut)
	}
	for _, fut := range futs {
		if _, err := fut.ResultWithin(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLargeResultViaObjectStore(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	// identity of a big string: the result exceeds the spill threshold.
	big := strings.Repeat("x", serialize.DefaultInlineThreshold+1000)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, big)
	if err != nil {
		t.Fatal(err)
	}
	out, err := fut.ResultWithin(15 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) < len(big) {
		t.Errorf("result size = %d, want >= %d", len(out), len(big))
	}
}

func TestPayloadOverLimitRejected(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	big := strings.Repeat("x", serialize.MaxPayload+1)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, big)
	if err != nil {
		t.Fatal(err) // enqueue succeeds; the flush fails
	}
	_, err = fut.ResultWithin(10 * time.Second)
	if err == nil {
		t.Error("oversized payload succeeded")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: e.client, EndpointID: e.epID, Conn: e.conn,
	})
	if err != nil {
		t.Fatal(err)
	}
	ex.Close()
	if _, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, 1); !errors.Is(err, sdk.ErrExecutorClosed) {
		t.Errorf("err = %v", err)
	}
}

func TestDrain(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{Workers: 2})
	ex := e.executor(t)
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	for i := 0; i < 10; i++ {
		if _, err := ex.Submit(fn, i); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := ex.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if n := ex.Outstanding(); n != 0 {
		t.Errorf("outstanding after drain = %d", n)
	}
}

func TestTaskIDAvailableAfterFlush(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fut, err := ex.Submit(&sdk.PythonFunction{Entrypoint: "identity"}, "x")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	id, err := fut.TaskID(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !id.Valid() {
		t.Errorf("task ID %q", id)
	}
	// The REST polling path agrees with the streamed result.
	if _, err := fut.Result(ctx); err != nil {
		t.Fatal(err)
	}
	st, err := e.client.TaskStatus(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != protocol.StateSuccess {
		t.Errorf("polled state = %s", st.State)
	}
}

func TestKwargsRoundTrip(t *testing.T) {
	e := newEnv(t, core.EndpointOptions{})
	ex := e.executor(t)
	fut, err := ex.SubmitKwargs(&sdk.PythonFunction{Entrypoint: "echo_kwargs"}, nil,
		map[string]any{"alpha": 1.0, "beta": "two"})
	if err != nil {
		t.Fatal(err)
	}
	out, err := fut.ResultWithin(10 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), `"beta":"two"`) {
		t.Errorf("output = %s", out)
	}
}
