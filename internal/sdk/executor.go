package sdk

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/trace"
	"globuscompute/internal/webservice"
)

// ErrExecutorClosed is returned by Submit after Close.
var ErrExecutorClosed = errors.New("sdk: executor closed")

// ObjectFetcher resolves result references spilled to the object store.
type ObjectFetcher interface {
	Get(key string) ([]byte, error)
}

// ExecutorConfig configures an Executor.
type ExecutorConfig struct {
	Client     *Client
	EndpointID protocol.UUID
	// Conn enables streamed results over the broker (the efficient path
	// the paper describes). When nil, the executor falls back to polling
	// the REST API.
	Conn broker.Conn
	// PollInterval applies in polling mode (default 100ms).
	PollInterval time.Duration
	// LegacyPolling polls each task with an individual REST request (the
	// pre-executor SDK behaviour) instead of one batch_status call per
	// tick. Kept for the streaming-vs-polling comparison.
	LegacyPolling bool
	// BatchWindow is how long submissions buffer before a flush
	// (default 2ms) — the SDK's request batching.
	BatchWindow time.Duration
	// MaxBatch flushes immediately once this many submissions buffer
	// (default 128).
	MaxBatch int
	// Objects resolves large results spilled to the object store.
	Objects ObjectFetcher
	// ObjectsCacheBytes, when > 0, wraps Objects in a bounded LRU dedup
	// cache so a fan-in of results sharing one spilled object fetches it
	// over the wire once.
	ObjectsCacheBytes int64
	// Tracer, when set, roots a trace per submission (sdk.submit) and
	// records result resolution (sdk.resolve). Nil disables tracing.
	Tracer *trace.Tracer
}

// Executor mirrors concurrent.futures.Executor over Globus Compute: Submit
// returns a Future, submissions batch into single REST calls, and results
// stream back over a per-executor group queue.
type Executor struct {
	cfg   ExecutorConfig
	group protocol.UUID

	// UserEndpointConfig parameterizes multi-user endpoints (template
	// variables); set before submitting.
	UserEndpointConfig map[string]any
	// ResourceSpec applies to MPIFunction submissions.
	ResourceSpec protocol.ResourceSpec

	mu      sync.Mutex
	pending []pendingSub
	futures map[protocol.UUID]*Future
	orphans map[protocol.UUID]protocol.Result
	closed  bool
	timer   *time.Timer

	sub  broker.Subscription
	done chan struct{}
	wg   sync.WaitGroup
}

type pendingSub struct {
	req  webservice.SubmitRequest
	fut  *Future
	span *trace.ActiveSpan // open sdk.submit root span (nil when untraced)
}

// NewExecutor builds and starts an executor.
func NewExecutor(cfg ExecutorConfig) (*Executor, error) {
	if cfg.Client == nil {
		return nil, errors.New("sdk: executor requires a client")
	}
	if !cfg.EndpointID.Valid() {
		return nil, fmt.Errorf("sdk: invalid endpoint ID %q", cfg.EndpointID)
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 128
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 100 * time.Millisecond
	}
	if cfg.Objects != nil && cfg.ObjectsCacheBytes > 0 {
		cfg.Objects = objectstore.NewDedupCache(cfg.Objects, cfg.ObjectsCacheBytes)
	}
	ex := &Executor{
		cfg:     cfg,
		group:   protocol.NewUUID(),
		futures: make(map[protocol.UUID]*Future),
		orphans: make(map[protocol.UUID]protocol.Result),
		done:    make(chan struct{}),
	}
	if cfg.Conn != nil {
		q := webservice.GroupResultQueue(ex.group)
		if err := cfg.Conn.Declare(q); err != nil {
			return nil, fmt.Errorf("sdk: declare group queue: %w", err)
		}
		sub, err := cfg.Conn.Subscribe(q, 64)
		if err != nil {
			return nil, fmt.Errorf("sdk: subscribe group queue: %w", err)
		}
		ex.sub = sub
		ex.wg.Add(1)
		go ex.streamLoop()
	} else {
		ex.wg.Add(1)
		go ex.pollLoop()
	}
	return ex, nil
}

// Group returns the executor's task group ID.
func (ex *Executor) Group() protocol.UUID { return ex.group }

// Submit schedules a PythonFunction invocation and returns its future.
func (ex *Executor) Submit(fn *PythonFunction, args ...any) (*Future, error) {
	fnID, err := fn.ensureRegistered(ex.cfg.Client)
	if err != nil {
		return nil, err
	}
	payload, err := fn.payload(args, nil)
	if err != nil {
		return nil, err
	}
	return ex.enqueue(fnID, payload, protocol.ResourceSpec{})
}

// SubmitKwargs is Submit with keyword arguments.
func (ex *Executor) SubmitKwargs(fn *PythonFunction, args []any, kwargs map[string]any) (*Future, error) {
	fnID, err := fn.ensureRegistered(ex.cfg.Client)
	if err != nil {
		return nil, err
	}
	payload, err := fn.payload(args, kwargs)
	if err != nil {
		return nil, err
	}
	return ex.enqueue(fnID, payload, protocol.ResourceSpec{})
}

// SubmitRegistered invokes an already-registered function by UUID — the
// science-gateway pattern, where endpoints restrict execution to a reviewed
// allowlist and clients never register code themselves. The function's
// stored definition supplies the entrypoint (python) or command template
// (shell/MPI); args apply to python functions, kwargs fill shell templates.
func (ex *Executor) SubmitRegistered(fnID protocol.UUID, args []any, kwargs map[string]string) (*Future, error) {
	rec, err := ex.cfg.Client.GetFunction(fnID)
	if err != nil {
		return nil, err
	}
	switch rec.Kind {
	case protocol.KindPython:
		var def struct {
			Entrypoint string `json:"entrypoint"`
		}
		if err := json.Unmarshal(rec.Definition, &def); err != nil || def.Entrypoint == "" {
			return nil, fmt.Errorf("sdk: function %s has no entrypoint in its definition", fnID)
		}
		fn := &PythonFunction{Entrypoint: def.Entrypoint}
		payload, err := fn.payload(args, nil)
		if err != nil {
			return nil, err
		}
		return ex.enqueue(fnID, payload, protocol.ResourceSpec{})
	case protocol.KindShell, protocol.KindMPI:
		var def struct {
			CommandTemplate string `json:"command_template"`
			Launcher        string `json:"launcher"`
			Sandbox         bool   `json:"sandbox"`
		}
		if err := json.Unmarshal(rec.Definition, &def); err != nil || def.CommandTemplate == "" {
			return nil, fmt.Errorf("sdk: function %s has no command template in its definition", fnID)
		}
		sf := &ShellFunction{Command: def.CommandTemplate, Sandbox: def.Sandbox}
		spec, err := sf.shellSpec(kwargs)
		if err != nil {
			return nil, err
		}
		spec.Launcher = def.Launcher
		payload, err := protocol.EncodePayload(spec)
		if err != nil {
			return nil, err
		}
		res := protocol.ResourceSpec{}
		if rec.Kind == protocol.KindMPI {
			res = ex.ResourceSpec
		}
		return ex.enqueue(fnID, payload, res)
	default:
		return nil, fmt.Errorf("sdk: function %s has unknown kind %q", fnID, rec.Kind)
	}
}

// SubmitShell schedules a ShellFunction; kwargs fill the command template's
// {placeholders}.
func (ex *Executor) SubmitShell(fn *ShellFunction, kwargs map[string]string) (*Future, error) {
	fnID, err := fn.ensureRegistered(ex.cfg.Client)
	if err != nil {
		return nil, err
	}
	payload, err := fn.payload(kwargs)
	if err != nil {
		return nil, err
	}
	return ex.enqueue(fnID, payload, protocol.ResourceSpec{})
}

// SubmitMPI schedules an MPIFunction under the executor's ResourceSpec.
func (ex *Executor) SubmitMPI(fn *MPIFunction, kwargs map[string]string) (*Future, error) {
	fnID, err := fn.ensureRegistered(ex.cfg.Client)
	if err != nil {
		return nil, err
	}
	payload, err := fn.payload(kwargs)
	if err != nil {
		return nil, err
	}
	return ex.enqueue(fnID, payload, ex.ResourceSpec)
}

// enqueue buffers one submission and arms the batch flush.
func (ex *Executor) enqueue(fnID protocol.UUID, payload []byte, res protocol.ResourceSpec) (*Future, error) {
	req := webservice.SubmitRequest{
		EndpointID: ex.cfg.EndpointID,
		FunctionID: fnID,
		Payload:    payload,
		Resources:  res,
		GroupID:    ex.group,
	}
	if ex.UserEndpointConfig != nil {
		raw, err := json.Marshal(ex.UserEndpointConfig)
		if err != nil {
			return nil, err
		}
		req.UserEndpointConfig = raw
	}
	fut := newFuture()
	// Each submission roots its own trace; the span covers batching wait
	// plus the REST round trip.
	sp := ex.cfg.Tracer.StartSpan(nil, "sdk.submit")
	sp.SetAttr("endpoint", string(ex.cfg.EndpointID))
	req.Trace = sp.Context()
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return nil, ErrExecutorClosed
	}
	ex.pending = append(ex.pending, pendingSub{req: req, fut: fut, span: sp})
	n := len(ex.pending)
	if n >= ex.cfg.MaxBatch {
		batch := ex.takeBatchLocked()
		ex.mu.Unlock()
		ex.flush(batch)
		return fut, nil
	}
	if ex.timer == nil {
		ex.timer = time.AfterFunc(ex.cfg.BatchWindow, ex.flushTimer)
	}
	ex.mu.Unlock()
	return fut, nil
}

func (ex *Executor) takeBatchLocked() []pendingSub {
	batch := ex.pending
	ex.pending = nil
	if ex.timer != nil {
		ex.timer.Stop()
		ex.timer = nil
	}
	return batch
}

func (ex *Executor) flushTimer() {
	ex.mu.Lock()
	batch := ex.takeBatchLocked()
	ex.mu.Unlock()
	ex.flush(batch)
}

// flush submits one batch and wires task IDs to futures.
func (ex *Executor) flush(batch []pendingSub) {
	if len(batch) == 0 {
		return
	}
	reqs := make([]webservice.SubmitRequest, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
	}
	ids, err := ex.cfg.Client.SubmitBatch(reqs)
	if err != nil {
		for _, p := range batch {
			p.span.EndStatus("error")
			p.fut.resolve(protocol.Result{}, fmt.Errorf("sdk: submission failed: %w", err))
		}
		return
	}
	for _, p := range batch {
		p.span.End()
	}
	ex.mu.Lock()
	for i, p := range batch {
		id := ids[i]
		p.fut.setTaskID(id)
		if res, ok := ex.orphans[id]; ok {
			delete(ex.orphans, id)
			ex.mu.Unlock()
			ex.resolveTraced(p.fut, res, nil)
			ex.mu.Lock()
			continue
		}
		ex.futures[id] = p.fut
	}
	ex.mu.Unlock()
}

// streamLoop receives results from the group queue.
func (ex *Executor) streamLoop() {
	defer ex.wg.Done()
	for m := range ex.sub.Messages() {
		var res protocol.Result
		if err := json.Unmarshal(m.Body, &res); err != nil {
			obs.Component("sdk").WithEndpoint(string(ex.cfg.EndpointID)).
				Warn("bad streamed result", "error", err)
			_ = ex.sub.Ack(m.Tag)
			continue
		}
		ex.mu.Lock()
		fut, ok := ex.futures[res.TaskID]
		if ok {
			delete(ex.futures, res.TaskID)
		} else if len(ex.orphans) < 4096 {
			// Result raced ahead of the submit response; hold it. The cap
			// bounds duplicates for already-resolved tasks (e.g. a late
			// worker result after a cancellation).
			ex.orphans[res.TaskID] = res
		}
		ex.mu.Unlock()
		if ok {
			ex.resolveTraced(fut, res, m.Trace)
		}
		_ = ex.sub.Ack(m.Tag)
	}
}

// resolveTraced resolves a future under an sdk.resolve span. parent is the
// delivery's trace context when available (the broker's deliver span);
// otherwise the result's own carried context is used. Results that raced
// ahead of the submit response (the orphan path) resolve here too, so every
// traced task gets a resolution span.
func (ex *Executor) resolveTraced(fut *Future, res protocol.Result, parent *trace.Context) {
	if !parent.Valid() {
		parent = res.Trace
	}
	sp := ex.cfg.Tracer.StartSpan(parent, "sdk.resolve")
	sp.SetAttr("task", string(res.TaskID))
	ex.deliver(fut, res)
	sp.End()
}

// deliver resolves a future, fetching spilled outputs first.
func (ex *Executor) deliver(fut *Future, res protocol.Result) {
	if res.OutputRef != "" && len(res.Output) == 0 {
		if ex.cfg.Objects != nil {
			blob, err := ex.cfg.Objects.Get(res.OutputRef)
			if err != nil {
				fut.resolve(protocol.Result{}, fmt.Errorf("sdk: fetch result %s: %w", res.OutputRef, err))
				return
			}
			res.Output = blob
		}
		// Without object store access the caller still gets the reference
		// via Raw().
	}
	fut.resolve(res, nil)
}

// pollLoop is the legacy polling path (kept for the streaming-vs-polling
// comparison): it asks the REST API for the status of every outstanding
// task each interval, one batch_status call per tick.
func (ex *Executor) pollLoop() {
	defer ex.wg.Done()
	ticker := time.NewTicker(ex.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ex.done:
			return
		case <-ticker.C:
		}
		ex.mu.Lock()
		outstanding := make(map[protocol.UUID]*Future, len(ex.futures))
		ids := make([]protocol.UUID, 0, len(ex.futures))
		for id, fut := range ex.futures {
			outstanding[id] = fut
			ids = append(ids, id)
		}
		ex.mu.Unlock()
		if len(ids) == 0 {
			continue
		}
		if ex.cfg.LegacyPolling {
			for _, id := range ids {
				st, err := ex.cfg.Client.TaskStatus(id)
				if err != nil {
					continue // transient; retry next tick
				}
				ex.settlePolled(outstanding, st)
			}
			continue
		}
		// The batch_status API caps request size; chunk large windows.
		const chunk = 1024
		for start := 0; start < len(ids); start += chunk {
			end := min(start+chunk, len(ids))
			statuses, err := ex.cfg.Client.TaskStatuses(ids[start:end])
			if err != nil {
				break // transient; retry next tick
			}
			for _, st := range statuses {
				ex.settlePolled(outstanding, st)
			}
		}
	}
}

// settlePolled resolves a future from a polled status if terminal.
func (ex *Executor) settlePolled(outstanding map[protocol.UUID]*Future, st webservice.TaskStatus) {
	if !st.State.Terminal() {
		return
	}
	fut := outstanding[st.TaskID]
	if fut == nil {
		return
	}
	ex.mu.Lock()
	delete(ex.futures, st.TaskID)
	ex.mu.Unlock()
	ex.deliver(fut, protocol.Result{
		TaskID: st.TaskID, State: st.State,
		Output: st.Result, OutputRef: st.ResultRef, Error: st.Error,
	})
}

// Cancel requests cancellation of a future's task. The future resolves with
// a cancelled result (via the stream or poll loop); tasks already executing
// may still complete first, in which case cancellation returns an error and
// the original result stands.
func (ex *Executor) Cancel(ctx context.Context, fut *Future) error {
	id, err := fut.TaskID(ctx)
	if err != nil {
		return err
	}
	return ex.cfg.Client.CancelTask(id)
}

// Flush forces any buffered submissions out immediately.
func (ex *Executor) Flush() {
	ex.mu.Lock()
	batch := ex.takeBatchLocked()
	ex.mu.Unlock()
	ex.flush(batch)
}

// Outstanding reports futures not yet resolved.
func (ex *Executor) Outstanding() int {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	return len(ex.futures) + len(ex.pending)
}

// Close flushes buffered submissions and stops the result loops.
// Outstanding futures resolve only if their results already arrived; use
// Drain first to wait for completion.
func (ex *Executor) Close() {
	ex.mu.Lock()
	if ex.closed {
		ex.mu.Unlock()
		return
	}
	ex.closed = true
	batch := ex.takeBatchLocked()
	ex.mu.Unlock()
	ex.flush(batch)
	close(ex.done)
	if ex.sub != nil {
		_ = ex.sub.Cancel()
		// Best effort: remove the per-executor group queue so long-lived
		// brokers don't accumulate them.
		_ = ex.cfg.Conn.Delete(webservice.GroupResultQueue(ex.group))
	}
	ex.wg.Wait()
}

// Drain flushes and waits until every submitted future has resolved or ctx
// expires.
func (ex *Executor) Drain(ctx context.Context) error {
	ex.Flush()
	for {
		if ex.Outstanding() == 0 {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(5 * time.Millisecond):
		}
	}
}
