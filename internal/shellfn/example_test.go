package shellfn_test

import (
	"context"
	"fmt"

	"globuscompute/internal/shellfn"
)

// ShellFunction command templates format at invocation time, as in the
// paper's Listing 2.
func ExampleFormatCommand() {
	cmd, _ := shellfn.FormatCommand("echo '{message}'", map[string]string{"message": "hola"})
	fmt.Println(cmd)
	// Output: echo 'hola'
}

// Execute runs a command and captures bounded output; walltime overruns
// report return code 124 as in Listing 3.
func ExampleExecute() {
	res, err := shellfn.Execute(context.Background(), "echo hello", shellfn.Options{})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(res.ReturnCode, res.Stdout)
	// Output: 0 hello
}
