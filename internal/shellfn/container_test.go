package shellfn

import (
	"context"
	"testing"
	"time"

	"globuscompute/internal/container"
	"globuscompute/internal/protocol"
)

func TestContainerExecution(t *testing.T) {
	rt := container.NewRuntime(20*time.Millisecond, 0)
	res, err := Execute(context.Background(), "echo in $GC_CONTAINER", Options{
		Container: "python:3.11", Containers: rt,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "in python:3.11" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if !rt.Warm("python:3.11") {
		t.Error("image not cached after execution")
	}
}

func TestContainerColdVsWarm(t *testing.T) {
	rt := container.NewRuntime(80*time.Millisecond, 0)
	opts := Options{Container: "sim:app", Containers: rt}

	start := time.Now()
	if _, err := Execute(context.Background(), "true", opts); err != nil {
		t.Fatal(err)
	}
	cold := time.Since(start)

	start = time.Now()
	if _, err := Execute(context.Background(), "true", opts); err != nil {
		t.Fatal(err)
	}
	warm := time.Since(start)

	if cold < 80*time.Millisecond {
		t.Errorf("cold start %s, want >= pull delay", cold)
	}
	if warm >= cold/2 {
		t.Errorf("warm start %s not faster than cold %s", warm, cold)
	}
}

func TestContainerWithoutRuntimeFails(t *testing.T) {
	if _, err := Execute(context.Background(), "true", Options{Container: "x:y"}); err == nil {
		t.Error("container without runtime succeeded")
	}
}

func TestContainerTaskEnvWins(t *testing.T) {
	rt := container.NewRuntime(0, 0)
	res, err := Execute(context.Background(), "echo $GC_CONTAINER", Options{
		Container: "img:1", Containers: rt,
		Env: map[string]string{"GC_CONTAINER": "user-override"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "user-override" {
		t.Errorf("stdout = %q (task env should win)", res.Stdout)
	}
}

func TestContainerViaSpec(t *testing.T) {
	rt := container.NewRuntime(0, 0)
	spec := protocol.ShellSpec{Command: "echo $GC_CONTAINER", Container: "spec:img"}
	res, err := ExecuteSpec(context.Background(), spec, Options{Containers: rt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "spec:img" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestContainerWalltimeDuringPull(t *testing.T) {
	rt := container.NewRuntime(10*time.Second, 0)
	res, err := Execute(context.Background(), "true", Options{
		Container: "huge:img", Containers: rt, Walltime: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != WalltimeReturnCode {
		t.Errorf("rc = %d, want 124 (walltime covers the pull)", res.ReturnCode)
	}
}
