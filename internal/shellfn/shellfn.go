// Package shellfn executes ShellFunctions: command lines run by endpoint
// workers with optional per-task sandbox directories, a walltime bound that
// yields return code 124 (the coreutils timeout convention the paper
// adopts), and capture of the last N lines of stdout and stderr into the
// ShellResult snippets.
package shellfn

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"syscall"
	"time"

	"globuscompute/internal/container"
	"globuscompute/internal/protocol"
)

// WalltimeReturnCode is the return code reported when execution is killed
// for exceeding its walltime, matching `timeout(1)`.
const WalltimeReturnCode = 124

// DefaultSnippetLines is the default bound on captured output lines.
const DefaultSnippetLines = 1000

// Options configures one execution.
type Options struct {
	// RunDir is the working directory; empty selects the process cwd (the
	// "endpoint path" in the paper).
	RunDir string
	// Sandbox creates a unique directory for the task under SandboxRoot
	// (or RunDir when unset) named by the task UUID.
	Sandbox bool
	// SandboxRoot hosts sandbox directories.
	SandboxRoot string
	// TaskID names the sandbox directory.
	TaskID string
	// Walltime bounds execution; zero means unlimited.
	Walltime time.Duration
	// SnippetLines bounds captured stdout/stderr lines (<=0 selects
	// DefaultSnippetLines).
	SnippetLines int
	// Env adds environment variables to the command.
	Env map[string]string
	// Container runs the command inside the named image; requires
	// Containers.
	Container string
	// Containers is the endpoint's container runtime (nil = containers
	// unsupported).
	Containers *container.Runtime
}

// Execute runs command under /bin/sh -c with opts and returns its
// ShellResult. A non-zero return code is not an error; errors indicate the
// execution machinery itself failed (bad sandbox, missing shell).
func Execute(ctx context.Context, command string, opts Options) (protocol.ShellResult, error) {
	res := protocol.ShellResult{Cmd: command}
	lines := opts.SnippetLines
	if lines <= 0 {
		lines = DefaultSnippetLines
	}

	dir := opts.RunDir
	if opts.Sandbox {
		root := opts.SandboxRoot
		if root == "" {
			root = opts.RunDir
		}
		if root == "" {
			root = "."
		}
		name := opts.TaskID
		if name == "" {
			name = string(protocol.NewUUID())
		}
		dir = filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return res, fmt.Errorf("shellfn: create sandbox: %w", err)
		}
	}

	if opts.Walltime > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opts.Walltime)
		defer cancel()
	}

	// Container execution: ensure the image (cold pull on first use) and
	// fold the container context into the command environment.
	if opts.Container != "" {
		if opts.Containers == nil {
			return res, fmt.Errorf("shellfn: task requests container %q but the endpoint has no container runtime", opts.Container)
		}
		cenv, err := opts.Containers.Invoke(ctx, opts.Container)
		if err != nil {
			if ctx.Err() != nil {
				res.ReturnCode = WalltimeReturnCode
				return res, nil
			}
			return res, err
		}
		merged := make(map[string]string, len(opts.Env)+len(cenv))
		for k, v := range cenv {
			merged[k] = v
		}
		for k, v := range opts.Env {
			merged[k] = v
		}
		opts.Env = merged
	}

	stdout := NewTailWriter(lines)
	stderr := NewTailWriter(lines)
	cmd := exec.CommandContext(ctx, "/bin/sh", "-c", command)
	cmd.Dir = dir
	cmd.Stdout = stdout
	cmd.Stderr = stderr
	if len(opts.Env) > 0 {
		env := os.Environ()
		for k, v := range opts.Env {
			env = append(env, k+"="+v)
		}
		cmd.Env = env
	}
	// Kill the whole process group on cancellation so children (which
	// inherit the output pipes) die with the shell; WaitDelay is the
	// backstop if the group kill is not possible.
	cmd.SysProcAttr = &syscall.SysProcAttr{Setpgid: true}
	cmd.Cancel = func() error {
		if cmd.Process == nil {
			return os.ErrProcessDone
		}
		return syscall.Kill(-cmd.Process.Pid, syscall.SIGKILL)
	}
	cmd.WaitDelay = time.Second

	err := cmd.Run()
	res.Stdout, res.Truncated = stdout.Snippet()
	var errTrunc bool
	res.Stderr, errTrunc = stderr.Snippet()
	res.Truncated = res.Truncated || errTrunc

	switch {
	case err == nil:
		res.ReturnCode = 0
	case ctx.Err() == context.DeadlineExceeded:
		res.ReturnCode = WalltimeReturnCode
	case ctx.Err() == context.Canceled:
		res.ReturnCode = WalltimeReturnCode
	default:
		var exitErr *exec.ExitError
		if errors.As(err, &exitErr) {
			res.ReturnCode = exitErr.ExitCode()
		} else {
			return res, fmt.Errorf("shellfn: exec: %w", err)
		}
	}
	return res, nil
}

// ExecuteSpec runs a protocol.ShellSpec (the task payload form) with
// endpoint-level defaults applied.
func ExecuteSpec(ctx context.Context, spec protocol.ShellSpec, defaults Options) (protocol.ShellResult, error) {
	opts := defaults
	if spec.RunDir != "" {
		opts.RunDir = spec.RunDir
	}
	if spec.Sandbox {
		opts.Sandbox = true
	}
	if spec.WalltimeSec > 0 {
		opts.Walltime = time.Duration(spec.WalltimeSec * float64(time.Second))
	}
	if spec.SnippetLines > 0 {
		opts.SnippetLines = spec.SnippetLines
	}
	if spec.Container != "" {
		opts.Container = spec.Container
	}
	if len(spec.Env) > 0 {
		merged := make(map[string]string, len(opts.Env)+len(spec.Env))
		for k, v := range opts.Env {
			merged[k] = v
		}
		for k, v := range spec.Env {
			merged[k] = v
		}
		opts.Env = merged
	}
	return Execute(ctx, spec.Command, opts)
}

// placeholderRE matches {name} placeholders in command templates; {{ and }}
// escape literal braces, as in Python str.format.
var placeholderRE = regexp.MustCompile(`\{([A-Za-z_][A-Za-z0-9_]*)\}`)

// FormatCommand substitutes {name} placeholders in a ShellFunction command
// template with kwargs, mirroring the SDK's invocation-time formatting of
// e.g. ShellFunction("echo '{message}'"). Unknown placeholders are an
// error; "{{" and "}}" render literal braces.
func FormatCommand(template string, kwargs map[string]string) (string, error) {
	const lbrace, rbrace = "\x00GCLB\x00", "\x00GCRB\x00"
	s := strings.ReplaceAll(template, "{{", lbrace)
	s = strings.ReplaceAll(s, "}}", rbrace)
	var missing []string
	s = placeholderRE.ReplaceAllStringFunc(s, func(m string) string {
		name := m[1 : len(m)-1]
		v, ok := kwargs[name]
		if !ok {
			missing = append(missing, name)
			return m
		}
		return v
	})
	if len(missing) > 0 {
		return "", fmt.Errorf("shellfn: unbound placeholders: %s", strings.Join(missing, ", "))
	}
	s = strings.ReplaceAll(s, lbrace, "{")
	s = strings.ReplaceAll(s, rbrace, "}")
	return s, nil
}

// TailWriter is an io.Writer that retains only the last N lines written,
// the mechanism behind ShellResult's bounded stdout/stderr snippets.
type TailWriter struct {
	mu      sync.Mutex
	max     int
	lines   []string // ring of complete lines
	start   int      // ring head
	count   int
	partial bytes.Buffer
	dropped bool
}

// NewTailWriter returns a writer retaining the last max lines.
func NewTailWriter(max int) *TailWriter {
	if max <= 0 {
		max = 1
	}
	return &TailWriter{max: max, lines: make([]string, max)}
}

// Write implements io.Writer.
func (t *TailWriter) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	rest := p
	for {
		idx := bytes.IndexByte(rest, '\n')
		if idx < 0 {
			t.partial.Write(rest)
			break
		}
		t.partial.Write(rest[:idx])
		t.pushLocked(t.partial.String())
		t.partial.Reset()
		rest = rest[idx+1:]
	}
	return len(p), nil
}

func (t *TailWriter) pushLocked(line string) {
	if t.count == t.max {
		t.lines[t.start] = line
		t.start = (t.start + 1) % t.max
		t.dropped = true
		return
	}
	t.lines[(t.start+t.count)%t.max] = line
	t.count++
}

// Snippet returns the retained lines joined by newlines, and whether any
// lines were dropped.
func (t *TailWriter) Snippet() (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, t.count+1)
	for i := 0; i < t.count; i++ {
		out = append(out, t.lines[(t.start+i)%t.max])
	}
	if t.partial.Len() > 0 {
		out = append(out, t.partial.String())
	}
	return strings.Join(out, "\n"), t.dropped
}
