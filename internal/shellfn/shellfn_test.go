package shellfn

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"globuscompute/internal/protocol"
)

func TestEchoCommand(t *testing.T) {
	res, err := Execute(context.Background(), "echo hello", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != 0 {
		t.Errorf("rc = %d", res.ReturnCode)
	}
	if res.Stdout != "hello" {
		t.Errorf("stdout = %q", res.Stdout)
	}
	if res.Cmd != "echo hello" {
		t.Errorf("cmd = %q", res.Cmd)
	}
}

func TestNonZeroExit(t *testing.T) {
	res, err := Execute(context.Background(), "exit 3", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != 3 {
		t.Errorf("rc = %d, want 3", res.ReturnCode)
	}
}

func TestStderrCaptured(t *testing.T) {
	res, err := Execute(context.Background(), "echo oops >&2", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stderr != "oops" {
		t.Errorf("stderr = %q", res.Stderr)
	}
	if res.Stdout != "" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestWalltime124(t *testing.T) {
	// The paper's Listing 3: sleep 2 with walltime 1 -> rc 124.
	start := time.Now()
	res, err := Execute(context.Background(), "sleep 2", Options{Walltime: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != WalltimeReturnCode {
		t.Errorf("rc = %d, want %d", res.ReturnCode, WalltimeReturnCode)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("walltime not enforced: took %s", elapsed)
	}
}

func TestWalltimeNotTriggeredWhenFast(t *testing.T) {
	res, err := Execute(context.Background(), "true", Options{Walltime: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != 0 {
		t.Errorf("rc = %d", res.ReturnCode)
	}
}

func TestContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	res, err := Execute(ctx, "sleep 5", Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != WalltimeReturnCode {
		t.Errorf("rc = %d", res.ReturnCode)
	}
}

func TestRunDir(t *testing.T) {
	dir := t.TempDir()
	res, err := Execute(context.Background(), "pwd", Options{RunDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(res.Stdout); got != dir {
		// Allow symlink resolution differences (e.g. /tmp -> /private/tmp)
		if resolved, _ := filepath.EvalSymlinks(dir); got != resolved {
			t.Errorf("pwd = %q, want %q", got, dir)
		}
	}
}

func TestSandboxCreatesTaskDir(t *testing.T) {
	root := t.TempDir()
	res, err := Execute(context.Background(), "pwd && touch marker", Options{
		Sandbox: true, SandboxRoot: root, TaskID: "task-123",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := filepath.Join(root, "task-123")
	if _, err := os.Stat(filepath.Join(want, "marker")); err != nil {
		t.Errorf("marker not in sandbox: %v", err)
	}
	if res.ReturnCode != 0 {
		t.Errorf("rc = %d", res.ReturnCode)
	}
}

func TestSandboxIsolation(t *testing.T) {
	// Concurrent ShellFunctions writing the same filename must not
	// interfere when sandboxed (paper §III-B2).
	root := t.TempDir()
	const n = 8
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("task-%d", i)
			cmd := fmt.Sprintf("echo %d > out.txt && sleep 0.05 && cat out.txt", i)
			res, err := Execute(context.Background(), cmd, Options{
				Sandbox: true, SandboxRoot: root, TaskID: id,
			})
			if err != nil {
				errs <- err
				return
			}
			if strings.TrimSpace(res.Stdout) != fmt.Sprint(i) {
				errs <- fmt.Errorf("task %d read %q", i, res.Stdout)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// Each sandbox holds its own out.txt.
	entries, _ := os.ReadDir(root)
	if len(entries) != n {
		t.Errorf("sandboxes = %d, want %d", len(entries), n)
	}
}

func TestEnvPassing(t *testing.T) {
	res, err := Execute(context.Background(), "echo $GC_TEST_VAR", Options{
		Env: map[string]string{"GC_TEST_VAR": "injected"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "injected" {
		t.Errorf("stdout = %q", res.Stdout)
	}
}

func TestSnippetTruncation(t *testing.T) {
	res, err := Execute(context.Background(), "seq 1 100", Options{SnippetLines: 10})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(res.Stdout, "\n")
	if len(lines) != 10 {
		t.Fatalf("kept %d lines, want 10", len(lines))
	}
	if lines[0] != "91" || lines[9] != "100" {
		t.Errorf("kept %v, want last 10", lines)
	}
	if !res.Truncated {
		t.Error("Truncated flag not set")
	}
}

func TestExecuteSpecOverrides(t *testing.T) {
	root := t.TempDir()
	spec := protocol.ShellSpec{
		Command:      "sleep 2",
		WalltimeSec:  0.1,
		SnippetLines: 5,
	}
	res, err := ExecuteSpec(context.Background(), spec, Options{SandboxRoot: root})
	if err != nil {
		t.Fatal(err)
	}
	if res.ReturnCode != WalltimeReturnCode {
		t.Errorf("rc = %d", res.ReturnCode)
	}
}

func TestExecuteSpecEnvMerge(t *testing.T) {
	spec := protocol.ShellSpec{
		Command: "echo $A $B",
		Env:     map[string]string{"B": "spec"},
	}
	res, err := ExecuteSpec(context.Background(), spec, Options{Env: map[string]string{"A": "default", "B": "default"}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stdout != "default spec" {
		t.Errorf("stdout = %q, want task env to win", res.Stdout)
	}
}

func TestFormatCommand(t *testing.T) {
	got, err := FormatCommand("echo '{message}'", map[string]string{"message": "hola"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "echo 'hola'" {
		t.Errorf("got %q", got)
	}
}

func TestFormatCommandMissing(t *testing.T) {
	if _, err := FormatCommand("echo {a} {b}", map[string]string{"a": "x"}); err == nil {
		t.Error("unbound placeholder accepted")
	}
}

func TestFormatCommandEscapes(t *testing.T) {
	got, err := FormatCommand("awk '{{print $1}}' {file}", map[string]string{"file": "data.txt"})
	if err != nil {
		t.Fatal(err)
	}
	if got != "awk '{print $1}' data.txt" {
		t.Errorf("got %q", got)
	}
}

func TestFormatCommandNoPlaceholders(t *testing.T) {
	got, err := FormatCommand("ls -la", nil)
	if err != nil || got != "ls -la" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestTailWriterBasics(t *testing.T) {
	w := NewTailWriter(3)
	fmt.Fprintf(w, "a\nb\nc\n")
	s, dropped := w.Snippet()
	if s != "a\nb\nc" || dropped {
		t.Errorf("snippet = %q dropped=%v", s, dropped)
	}
	fmt.Fprintf(w, "d\n")
	s, dropped = w.Snippet()
	if s != "b\nc\nd" || !dropped {
		t.Errorf("snippet = %q dropped=%v", s, dropped)
	}
}

func TestTailWriterPartialLine(t *testing.T) {
	w := NewTailWriter(5)
	fmt.Fprintf(w, "complete\npart")
	s, _ := w.Snippet()
	if s != "complete\npart" {
		t.Errorf("snippet = %q", s)
	}
	fmt.Fprintf(w, "ial\n")
	s, _ = w.Snippet()
	if s != "complete\npartial" {
		t.Errorf("snippet = %q", s)
	}
}

func TestTailWriterSplitWrites(t *testing.T) {
	w := NewTailWriter(10)
	for _, chunk := range []string{"li", "ne1\nli", "ne2", "\n"} {
		w.Write([]byte(chunk))
	}
	s, _ := w.Snippet()
	if s != "line1\nline2" {
		t.Errorf("snippet = %q", s)
	}
}

func TestTailWriterProperty(t *testing.T) {
	// For any sequence of lines, the snippet is exactly the last min(n,max)
	// lines.
	f := func(raw []uint8, maxRaw uint8) bool {
		max := int(maxRaw%20) + 1
		w := NewTailWriter(max)
		var all []string
		for i, b := range raw {
			line := fmt.Sprintf("l%d-%d", i, b)
			all = append(all, line)
			fmt.Fprintln(w, line)
		}
		s, dropped := w.Snippet()
		want := all
		if len(all) > max {
			want = all[len(all)-max:]
		}
		if dropped != (len(all) > max) {
			return false
		}
		if len(want) == 0 {
			return s == ""
		}
		return s == strings.Join(want, "\n")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
