package flows

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/transfer"
)

func TestSimpleFlowSucceeds(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	flow := Flow{Name: "two-step", Actions: []Action{
		{Name: "produce", Do: func(_ context.Context, s State) error {
			s["value"] = 21
			return nil
		}},
		{Name: "double", Do: func(_ context.Context, s State) error {
			s["value"] = s["value"].(int) * 2
			return nil
		}},
	}}
	id, err := r.Start(flow, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := r.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != RunSucceeded {
		t.Fatalf("status = %s", info.Status)
	}
	if info.State["value"].(int) != 42 {
		t.Errorf("state = %v", info.State)
	}
	if len(info.Log) != 2 || info.Log[0].Name != "produce" {
		t.Errorf("log = %+v", info.Log)
	}
}

func TestFlowFailureStopsPipeline(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	ran := atomic.Int32{}
	flow := Flow{Name: "failing", Actions: []Action{
		{Name: "boom", Do: func(context.Context, State) error { return errors.New("stage failed") }},
		{Name: "never", Do: func(context.Context, State) error { ran.Add(1); return nil }},
	}}
	id, _ := r.Start(flow, nil)
	info, _ := r.Wait(id, 5*time.Second)
	if info.Status != RunFailed {
		t.Fatalf("status = %s", info.Status)
	}
	if ran.Load() != 0 {
		t.Error("action after failure executed")
	}
	if len(info.Log) != 1 || info.Log[0].Err == "" {
		t.Errorf("log = %+v", info.Log)
	}
}

func TestRetries(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	attempts := atomic.Int32{}
	flow := Flow{Name: "flaky", Actions: []Action{{
		Name:    "flaky",
		Retries: 3,
		Do: func(context.Context, State) error {
			if attempts.Add(1) < 3 {
				return errors.New("transient")
			}
			return nil
		},
	}}}
	id, _ := r.Start(flow, nil)
	info, _ := r.Wait(id, 5*time.Second)
	if info.Status != RunSucceeded {
		t.Fatalf("status = %s", info.Status)
	}
	if info.Log[0].Attempts != 3 {
		t.Errorf("attempts = %d", info.Log[0].Attempts)
	}
}

func TestActionTimeout(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	flow := Flow{Name: "slow", Actions: []Action{{
		Name:    "hang",
		Timeout: 30 * time.Millisecond,
		Do: func(ctx context.Context, _ State) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return nil
			}
		},
	}}}
	id, _ := r.Start(flow, nil)
	info, _ := r.Wait(id, 5*time.Second)
	if info.Status != RunFailed {
		t.Fatalf("status = %s (timeout not enforced)", info.Status)
	}
}

func TestCancelRun(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	started := make(chan struct{})
	flow := Flow{Name: "cancellable", Actions: []Action{{
		Name: "wait",
		Do: func(ctx context.Context, _ State) error {
			close(started)
			<-ctx.Done()
			return ctx.Err()
		},
	}}}
	id, _ := r.Start(flow, nil)
	<-started
	if err := r.Cancel(id); err != nil {
		t.Fatal(err)
	}
	info, _ := r.Wait(id, 5*time.Second)
	if info.Status != RunFailed {
		t.Errorf("status = %s", info.Status)
	}
}

func TestValidation(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	if _, err := r.Start(Flow{Name: "empty"}, nil); !errors.Is(err, ErrEmptyFlow) {
		t.Errorf("empty flow = %v", err)
	}
	if _, err := r.Start(Flow{Name: "nil-body", Actions: []Action{{Name: "x"}}}, nil); err == nil {
		t.Error("nil action body accepted")
	}
	if _, err := r.Status(protocol.NewUUID()); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("unknown run = %v", err)
	}
	if err := r.Cancel(protocol.NewUUID()); !errors.Is(err, ErrUnknownRun) {
		t.Errorf("cancel unknown = %v", err)
	}
}

func TestStateIsolation(t *testing.T) {
	// The caller's initial map and returned snapshots are not aliased to
	// the run's live state.
	r := NewRunner()
	defer r.Close()
	initial := State{"k": "original"}
	gate := make(chan struct{})
	flow := Flow{Name: "iso", Actions: []Action{
		{Name: "hold", Do: func(context.Context, State) error { <-gate; return nil }},
		{Name: "mutate", Do: func(_ context.Context, s State) error { s["k"] = "mutated"; return nil }},
	}}
	id, _ := r.Start(flow, initial)
	initial["k"] = "caller-clobbered"
	close(gate)
	info, _ := r.Wait(id, 5*time.Second)
	if info.State["k"] != "mutated" {
		t.Errorf("state = %v (caller mutation leaked or update lost)", info.State)
	}
}

func TestTransferActionIntegration(t *testing.T) {
	ts := transfer.NewService()
	defer ts.Close()
	src, _ := ts.CreateEndpoint("src", filepath.Join(t.TempDir(), "src"))
	dst, _ := ts.CreateEndpoint("dst", filepath.Join(t.TempDir(), "dst"))
	os.WriteFile(filepath.Join(src.Root, "in.dat"), []byte("data"), 0o644)

	r := NewRunner()
	defer r.Close()
	flow := Flow{Name: "stage", Actions: []Action{
		TransferAction("stage-in", ts, func(s State) (transfer.Spec, error) {
			return transfer.Spec{
				Source: src.ID, Destination: dst.ID,
				Items: []transfer.Item{{SourcePath: s["input"].(string), DestPath: "staged.dat"}},
			}, nil
		}, "transfer_task"),
	}}
	id, err := r.Start(flow, State{"input": "in.dat"})
	if err != nil {
		t.Fatal(err)
	}
	info, _ := r.Wait(id, 10*time.Second)
	if info.Status != RunSucceeded {
		t.Fatalf("status = %s log=%+v", info.Status, info.Log)
	}
	if info.State["transfer_task"] == "" {
		t.Error("transfer task ID not recorded")
	}
	if _, err := os.Stat(filepath.Join(dst.Root, "staged.dat")); err != nil {
		t.Errorf("staged file missing: %v", err)
	}
}

func TestTransferActionFailure(t *testing.T) {
	ts := transfer.NewService()
	defer ts.Close()
	src, _ := ts.CreateEndpoint("src", filepath.Join(t.TempDir(), "src"))
	dst, _ := ts.CreateEndpoint("dst", filepath.Join(t.TempDir(), "dst"))
	r := NewRunner()
	defer r.Close()
	flow := Flow{Name: "bad", Actions: []Action{
		TransferAction("stage", ts, func(State) (transfer.Spec, error) {
			return transfer.Spec{
				Source: src.ID, Destination: dst.ID,
				Items: []transfer.Item{{SourcePath: "missing.dat", DestPath: "x"}},
			}, nil
		}, ""),
	}}
	id, _ := r.Start(flow, nil)
	info, _ := r.Wait(id, 10*time.Second)
	if info.Status != RunFailed {
		t.Errorf("status = %s", info.Status)
	}
}

func TestConcurrentRuns(t *testing.T) {
	r := NewRunner()
	defer r.Close()
	var ids []protocol.UUID
	for i := 0; i < 10; i++ {
		i := i
		flow := Flow{Name: fmt.Sprintf("run-%d", i), Actions: []Action{{
			Name: "work",
			Do: func(_ context.Context, s State) error {
				s["i"] = i
				return nil
			},
		}}}
		id, err := r.Start(flow, nil)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for i, id := range ids {
		info, _ := r.Wait(id, 5*time.Second)
		if info.Status != RunSucceeded || info.State["i"].(int) != i {
			t.Errorf("run %d: %+v", i, info)
		}
	}
	if got := r.Metrics.Counter("runs_succeeded").Value(); got != 10 {
		t.Errorf("succeeded = %d", got)
	}
}
