// Package flows implements a Globus Flows substitute: fire-and-forget
// automation that orchestrates sequences of actions — data transfer,
// compute tasks, and custom steps — with per-action retries and timeouts
// and a shared state document flowing between steps. This models the
// paper's §VI "real-time analysis" pattern, where Globus Flows drives
// transfer, processing, and publication through Globus Compute.
package flows

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrUnknownRun = errors.New("flows: unknown run")
	ErrEmptyFlow  = errors.New("flows: flow has no actions")
)

// State is the document passed between actions; actions read inputs from
// and write outputs into it.
type State map[string]any

// clone shallow-copies the state for snapshots.
func (s State) clone() State {
	out := make(State, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// Action is one step of a flow.
type Action struct {
	Name string
	// Do performs the step, reading and mutating state.
	Do func(ctx context.Context, state State) error
	// Retries re-runs a failing action this many additional times.
	Retries int
	// Timeout bounds one attempt (0 = no bound).
	Timeout time.Duration
}

// Flow is an ordered action sequence.
type Flow struct {
	Name    string
	Actions []Action
}

// Validate checks the flow is runnable.
func (f Flow) Validate() error {
	if len(f.Actions) == 0 {
		return ErrEmptyFlow
	}
	for i, a := range f.Actions {
		if a.Do == nil {
			return fmt.Errorf("flows: action %d (%s) has no body", i, a.Name)
		}
	}
	return nil
}

// RunStatus is a run's lifecycle state.
type RunStatus string

const (
	RunActive    RunStatus = "ACTIVE"
	RunSucceeded RunStatus = "SUCCEEDED"
	RunFailed    RunStatus = "FAILED"
)

// ActionResult records one executed action.
type ActionResult struct {
	Name     string
	Attempts int
	Err      string
	Elapsed  time.Duration
}

// RunInfo is a point-in-time run snapshot.
type RunInfo struct {
	ID        protocol.UUID
	Flow      string
	Status    RunStatus
	Log       []ActionResult
	State     State
	Started   time.Time
	Completed time.Time
}

// Runner executes flows asynchronously (fire and forget, status by
// polling — the Globus Flows interaction model).
type Runner struct {
	mu   sync.Mutex
	runs map[protocol.UUID]*run
	wg   sync.WaitGroup

	Metrics *metrics.Registry
}

type run struct {
	info   RunInfo
	cancel context.CancelFunc
	done   chan struct{}
}

// NewRunner returns an empty runner.
func NewRunner() *Runner {
	return &Runner{runs: make(map[protocol.UUID]*run), Metrics: metrics.NewRegistry()}
}

// Start launches a flow with an initial state and returns the run ID
// immediately.
func (r *Runner) Start(flow Flow, initial State) (protocol.UUID, error) {
	if err := flow.Validate(); err != nil {
		return "", err
	}
	if initial == nil {
		initial = State{}
	}
	id := protocol.NewUUID()
	ctx, cancel := context.WithCancel(context.Background())
	// Detach from the caller's map before the goroutine starts so later
	// caller mutations cannot race the run.
	state := initial.clone()
	rn := &run{
		info: RunInfo{
			ID: id, Flow: flow.Name, Status: RunActive,
			State: state.clone(), Started: time.Now(),
		},
		cancel: cancel,
		done:   make(chan struct{}),
	}
	r.mu.Lock()
	r.runs[id] = rn
	r.mu.Unlock()
	r.Metrics.Counter("runs_started").Inc()

	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		defer close(rn.done)
		defer cancel()
		for _, action := range flow.Actions {
			res := r.execute(ctx, action, state)
			r.mu.Lock()
			rn.info.Log = append(rn.info.Log, res)
			rn.info.State = state.clone()
			r.mu.Unlock()
			if res.Err != "" {
				r.finish(rn, RunFailed)
				return
			}
			if ctx.Err() != nil {
				r.finish(rn, RunFailed)
				return
			}
		}
		r.finish(rn, RunSucceeded)
	}()
	return id, nil
}

// execute runs one action with retries and timeout.
func (r *Runner) execute(ctx context.Context, action Action, state State) ActionResult {
	res := ActionResult{Name: action.Name}
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= action.Retries; attempt++ {
		res.Attempts++
		attemptCtx := ctx
		var cancel context.CancelFunc
		if action.Timeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, action.Timeout)
		}
		lastErr = action.Do(attemptCtx, state)
		if cancel != nil {
			cancel()
		}
		if lastErr == nil {
			res.Elapsed = time.Since(start)
			r.Metrics.Counter("actions_succeeded").Inc()
			return res
		}
		if ctx.Err() != nil {
			break // run cancelled; do not retry
		}
	}
	res.Elapsed = time.Since(start)
	res.Err = lastErr.Error()
	r.Metrics.Counter("actions_failed").Inc()
	return res
}

func (r *Runner) finish(rn *run, status RunStatus) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rn.info.Status = status
	rn.info.Completed = time.Now()
	if status == RunSucceeded {
		r.Metrics.Counter("runs_succeeded").Inc()
	} else {
		r.Metrics.Counter("runs_failed").Inc()
	}
}

// Status returns a run snapshot.
func (r *Runner) Status(id protocol.UUID) (RunInfo, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	rn, ok := r.runs[id]
	if !ok {
		return RunInfo{}, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	info := rn.info
	info.Log = append([]ActionResult(nil), rn.info.Log...)
	info.State = rn.info.State.clone()
	return info, nil
}

// Wait blocks until the run completes or the timeout elapses.
func (r *Runner) Wait(id protocol.UUID, timeout time.Duration) (RunInfo, error) {
	r.mu.Lock()
	rn, ok := r.runs[id]
	r.mu.Unlock()
	if !ok {
		return RunInfo{}, fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	select {
	case <-rn.done:
		return r.Status(id)
	case <-time.After(timeout):
		return r.Status(id)
	}
}

// Cancel stops an active run after its current action attempt.
func (r *Runner) Cancel(id protocol.UUID) error {
	r.mu.Lock()
	rn, ok := r.runs[id]
	r.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownRun, id)
	}
	rn.cancel()
	return nil
}

// Close waits for active runs to finish.
func (r *Runner) Close() { r.wg.Wait() }
