package flows

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"globuscompute/internal/sdk"
	"globuscompute/internal/transfer"
)

// TransferAction builds a flow action that submits a Globus Transfer task
// (spec derived from the current state) and waits for it to succeed. The
// transfer task ID is recorded under stateKey when non-empty.
func TransferAction(name string, ts *transfer.Service, build func(State) (transfer.Spec, error), stateKey string) Action {
	return Action{
		Name: name,
		Do: func(ctx context.Context, state State) error {
			spec, err := build(state)
			if err != nil {
				return err
			}
			id, err := ts.Submit(spec)
			if err != nil {
				return err
			}
			if stateKey != "" {
				state[stateKey] = string(id)
			}
			deadline := 5 * time.Minute
			if d, ok := ctx.Deadline(); ok {
				deadline = time.Until(d)
			}
			info, err := ts.Wait(id, deadline)
			if err != nil {
				return err
			}
			if info.Status != transfer.StatusSucceeded {
				return fmt.Errorf("flows: transfer %s: %s (%s)", name, info.Status, info.Error)
			}
			return nil
		},
	}
}

// ComputeAction builds a flow action that submits a registered function to
// a Globus Compute executor with arguments derived from state, waits for
// the result, and decodes it into state[outKey].
func ComputeAction(name string, ex *sdk.Executor, fn *sdk.PythonFunction, args func(State) []any, outKey string) Action {
	return Action{
		Name: name,
		Do: func(ctx context.Context, state State) error {
			var argv []any
			if args != nil {
				argv = args(state)
			}
			fut, err := ex.Submit(fn, argv...)
			if err != nil {
				return err
			}
			out, err := fut.Result(ctx)
			if err != nil {
				return err
			}
			if outKey != "" {
				var decoded any
				if err := json.Unmarshal(out, &decoded); err != nil {
					return fmt.Errorf("flows: decode %s result: %w", name, err)
				}
				state[outKey] = decoded
			}
			return nil
		},
	}
}

// ShellAction builds a flow action that runs a ShellFunction with kwargs
// derived from state and records its stdout under outKey. Non-zero return
// codes fail the action.
func ShellAction(name string, ex *sdk.Executor, sf *sdk.ShellFunction, kwargs func(State) map[string]string, outKey string) Action {
	return Action{
		Name: name,
		Do: func(ctx context.Context, state State) error {
			var kw map[string]string
			if kwargs != nil {
				kw = kwargs(state)
			}
			fut, err := ex.SubmitShell(sf, kw)
			if err != nil {
				return err
			}
			sr, err := fut.ShellResult(ctx)
			if err != nil {
				return err
			}
			if sr.ReturnCode != 0 {
				return fmt.Errorf("flows: %s exited %d: %s", name, sr.ReturnCode, sr.Stderr)
			}
			if outKey != "" {
				state[outKey] = sr.Stdout
			}
			return nil
		},
	}
}
