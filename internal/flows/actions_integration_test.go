package flows_test

import (
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/flows"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/sdk"
)

func flowStack(t *testing.T) (*flows.Runner, *sdk.Executor) {
	t.Helper()
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 2})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(tb.Close)
	tok, err := tb.IssueToken("flows@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	epID, err := tb.StartEndpoint(core.EndpointOptions{Name: "flow-ep", Owner: "flows", SandboxRoot: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { bc.Close() })
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:     sdk.NewClient(tb.ServiceAddr(), tok.Value),
		EndpointID: epID, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ex.Close)
	runner := flows.NewRunner()
	t.Cleanup(runner.Close)
	return runner, ex
}

func TestComputeActionIntegration(t *testing.T) {
	runner, ex := flowStack(t)
	flow := flows.Flow{Name: "compute", Actions: []flows.Action{
		flows.ComputeAction("add", ex, &sdk.PythonFunction{Entrypoint: "add"},
			func(s flows.State) []any { return []any{s["a"], s["b"]} }, "sum"),
		flows.ComputeAction("double", ex, &sdk.PythonFunction{Entrypoint: "add"},
			func(s flows.State) []any { return []any{s["sum"], s["sum"]} }, "doubled"),
	}}
	id, err := runner.Start(flow, flows.State{"a": 19, "b": 2})
	if err != nil {
		t.Fatal(err)
	}
	info, err := runner.Wait(id, time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != flows.RunSucceeded {
		t.Fatalf("status = %s log=%+v", info.Status, info.Log)
	}
	if info.State["sum"].(float64) != 21 || info.State["doubled"].(float64) != 42 {
		t.Errorf("state = %v", info.State)
	}
}

func TestShellActionIntegration(t *testing.T) {
	runner, ex := flowStack(t)
	sf := sdk.NewShellFunction("echo processed-{name}")
	flow := flows.Flow{Name: "shell", Actions: []flows.Action{
		flows.ShellAction("process", ex, sf,
			func(s flows.State) map[string]string { return map[string]string{"name": s["name"].(string)} },
			"log"),
	}}
	id, _ := runner.Start(flow, flows.State{"name": "sample42"})
	info, _ := runner.Wait(id, time.Minute)
	if info.Status != flows.RunSucceeded {
		t.Fatalf("status = %s log=%+v", info.Status, info.Log)
	}
	if !strings.Contains(info.State["log"].(string), "processed-sample42") {
		t.Errorf("log = %v", info.State["log"])
	}
}

func TestShellActionNonZeroFailsFlow(t *testing.T) {
	runner, ex := flowStack(t)
	flow := flows.Flow{Name: "failing-shell", Actions: []flows.Action{
		flows.ShellAction("boom", ex, sdk.NewShellFunction("exit 3"), nil, ""),
	}}
	id, _ := runner.Start(flow, nil)
	info, _ := runner.Wait(id, time.Minute)
	if info.Status != flows.RunFailed {
		t.Fatalf("status = %s", info.Status)
	}
	if !strings.Contains(info.Log[0].Err, "exited 3") {
		t.Errorf("err = %q", info.Log[0].Err)
	}
}

func TestComputeActionRemoteErrorFailsFlow(t *testing.T) {
	runner, ex := flowStack(t)
	flow := flows.Flow{Name: "failing-compute", Actions: []flows.Action{
		flows.ComputeAction("fail", ex, &sdk.PythonFunction{Entrypoint: "fail"},
			func(flows.State) []any { return []any{"remote-exception"} }, ""),
	}}
	id, _ := runner.Start(flow, nil)
	info, _ := runner.Wait(id, time.Minute)
	if info.Status != flows.RunFailed {
		t.Fatalf("status = %s", info.Status)
	}
	if !strings.Contains(info.Log[0].Err, "remote-exception") {
		t.Errorf("remote error lost: %q", info.Log[0].Err)
	}
}
