package trace

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Stage is one analyzed span within a trace summary.
type Stage struct {
	Name     string        `json:"name"`
	Process  string        `json:"process,omitempty"`
	SpanID   SpanID        `json:"span_id"`
	Parent   SpanID        `json:"parent_span_id,omitempty"`
	Offset   time.Duration `json:"offset_ns"`   // start relative to trace start
	Duration time.Duration `json:"duration_ns"` // span wall time
	// Gap is dead time between this stage's start and its predecessor's end
	// on the critical path (only set on critical-path stages).
	Gap   time.Duration     `json:"gap_ns,omitempty"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// Summary is the per-trace analysis: the stage list, the critical path
// (root -> latest-finishing descendants), and how much of the end-to-end
// time the instrumented stages fail to account for.
type Summary struct {
	TraceID  TraceID       `json:"trace_id"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    int           `json:"spans"`
	Stages   []Stage       `json:"stages"`
	// CriticalPath walks parent->child links from the root, at each step
	// following the child subtree that finishes last.
	CriticalPath []Stage `json:"critical_path"`
	// Unattributed is the critical-path dead time: end-to-end duration not
	// covered by any critical-path span (queue/transit gaps the
	// instrumentation does not yet name).
	Unattributed time.Duration `json:"unattributed_ns"`
}

// Analyze summarizes one trace's spans (in any order). It fails on empty
// input or on spans from mixed traces.
func Analyze(spans []Span) (Summary, error) {
	if len(spans) == 0 {
		return Summary{}, fmt.Errorf("trace: no spans to analyze")
	}
	id := spans[0].TraceID
	for _, s := range spans {
		if s.TraceID != id {
			return Summary{}, fmt.Errorf("trace: mixed traces %s and %s", id, s.TraceID)
		}
	}
	ordered := make([]Span, len(spans))
	copy(ordered, spans)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Start.Before(ordered[j].Start) })

	start := ordered[0].Start
	end := ordered[0].EndTime
	for _, s := range ordered {
		if s.EndTime.After(end) {
			end = s.EndTime
		}
	}
	sum := Summary{TraceID: id, Start: start, Duration: end.Sub(start), Spans: len(ordered)}
	for _, s := range ordered {
		sum.Stages = append(sum.Stages, Stage{
			Name: s.Name, Process: s.Process, SpanID: s.SpanID, Parent: s.Parent,
			Offset: s.Start.Sub(start), Duration: s.Duration(), Attrs: s.Attrs,
		})
	}
	sum.CriticalPath = criticalPath(ordered, start)
	covered := time.Duration(0)
	for _, st := range sum.CriticalPath {
		covered += st.Duration
	}
	if sum.Unattributed = sum.Duration - covered; sum.Unattributed < 0 {
		// Overlapping critical-path spans (parent time includes child time)
		// can over-cover; clamp rather than report negative dead time.
		sum.Unattributed = 0
	}
	return sum, nil
}

// criticalPath follows parent links from the root span, descending at each
// node into the child whose subtree finishes last, which traces the chain
// of stages that determined the end-to-end latency.
func criticalPath(ordered []Span, traceStart time.Time) []Stage {
	byID := make(map[SpanID]Span, len(ordered))
	children := make(map[SpanID][]Span, len(ordered))
	for _, s := range ordered {
		byID[s.SpanID] = s
		if s.Parent != "" {
			children[s.Parent] = append(children[s.Parent], s)
		}
	}
	// Root: earliest span whose parent is absent from this collection
	// (a true root, or the oldest retained span after ring eviction).
	var root Span
	found := false
	for _, s := range ordered {
		if _, ok := byID[s.Parent]; s.Parent == "" || !ok {
			root = s
			found = true
			break
		}
	}
	if !found {
		root = ordered[0]
	}

	// subtreeEnd memoizes the latest End within each span's subtree.
	ends := make(map[SpanID]time.Time, len(ordered))
	var subtreeEnd func(s Span) time.Time
	subtreeEnd = func(s Span) time.Time {
		if e, ok := ends[s.SpanID]; ok {
			return e
		}
		ends[s.SpanID] = s.EndTime // pre-set to break parent-link cycles
		latest := s.EndTime
		for _, c := range children[s.SpanID] {
			if e := subtreeEnd(c); e.After(latest) {
				latest = e
			}
		}
		ends[s.SpanID] = latest
		return latest
	}

	var path []Stage
	cur := root
	prevEnd := root.Start
	for {
		st := Stage{
			Name: cur.Name, Process: cur.Process, SpanID: cur.SpanID, Parent: cur.Parent,
			Offset: cur.Start.Sub(traceStart), Duration: cur.Duration(), Attrs: cur.Attrs,
		}
		if gap := cur.Start.Sub(prevEnd); gap > 0 {
			st.Gap = gap
		}
		path = append(path, st)
		kids := children[cur.SpanID]
		if len(kids) == 0 {
			return path
		}
		next := kids[0]
		for _, c := range kids[1:] {
			if subtreeEnd(c).After(subtreeEnd(next)) {
				next = c
			}
		}
		if len(path) > len(ordered) { // cycle guard
			return path
		}
		prevEnd = cur.EndTime
		cur = next
	}
}

// StageLabel names a span for aggregation across traces: the span name,
// qualified by the queue attribute's class when present, so task-queue,
// result-queue, and group-stream transits aggregate separately. The class is
// the queue name minus its final (per-entity ID) segment: "tasks.<ep>" ->
// "tasks", "results.group.<g>" -> "results.group".
func StageLabel(s Span) string {
	name := s.Name
	if q := s.Attrs["queue"]; q != "" {
		class := q
		if i := strings.LastIndexByte(q, '.'); i > 0 {
			class = q[:i]
		}
		name += "[" + class + "]"
	}
	return name
}

// String renders the summary as an indented stage table.
func (s Summary) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s: %d spans, %s total\n", s.TraceID, s.Spans, s.Duration)
	fmt.Fprintf(&b, "critical path (%s unattributed):\n", s.Unattributed)
	for _, st := range s.CriticalPath {
		fmt.Fprintf(&b, "  +%-12s %-28s %-12s %s", st.Offset, st.Name, st.Duration, st.Process)
		if st.Gap > 0 {
			fmt.Fprintf(&b, "  (gap %s)", st.Gap)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
