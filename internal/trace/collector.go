package trace

import (
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// DefaultCapacity is the collector ring size when unspecified: enough for
// ~1k traces of 8 spans without rolling over mid-benchmark.
const DefaultCapacity = 8192

// Collector is a bounded in-memory sink for finished spans. It keeps the
// most recent capacity spans in a ring buffer and is safe for concurrent
// use from every instrumented hot path.
type Collector struct {
	mu      sync.Mutex
	buf     []Span
	next    int    // ring write cursor
	filled  bool   // true once the ring has wrapped
	total   uint64 // spans ever added
	dropped uint64 // spans overwritten by the ring
}

// NewCollector returns a collector retaining up to capacity spans
// (<=0 selects DefaultCapacity).
func NewCollector(capacity int) *Collector {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Collector{buf: make([]Span, 0, capacity)}
}

// Add records one finished span.
func (c *Collector) Add(s Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.total++
	if !c.filled && len(c.buf) < cap(c.buf) {
		c.buf = append(c.buf, s)
		return
	}
	c.filled = true
	c.buf[c.next] = s
	c.next = (c.next + 1) % cap(c.buf)
	c.dropped++
}

// Len reports the number of retained spans.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.buf)
}

// Total reports spans ever added; Dropped reports how many the ring
// overwrote (Total - Dropped are retained or were retained longest).
func (c *Collector) Total() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.total
}

// Dropped reports spans lost to ring overwrite.
func (c *Collector) Dropped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

// Snapshot returns retained spans oldest-first.
func (c *Collector) Snapshot() []Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Span, 0, len(c.buf))
	if c.filled {
		out = append(out, c.buf[c.next:]...)
		out = append(out, c.buf[:c.next]...)
	} else {
		out = append(out, c.buf...)
	}
	return out
}

// Trace returns the retained spans of one trace, ordered by start time.
func (c *Collector) Trace(id TraceID) []Span {
	c.mu.Lock()
	var out []Span
	for i := range c.buf {
		if c.buf[i].TraceID == id {
			out = append(out, c.buf[i])
		}
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Start.Before(out[j].Start) })
	return out
}

// TraceIDs lists the distinct retained trace IDs, most recently added last.
func (c *Collector) TraceIDs() []TraceID {
	spans := c.Snapshot()
	seen := make(map[TraceID]bool, len(spans))
	var out []TraceID
	for _, s := range spans {
		if !seen[s.TraceID] {
			seen[s.TraceID] = true
			out = append(out, s.TraceID)
		}
	}
	return out
}

// Reset discards all retained spans (counters keep accumulating).
func (c *Collector) Reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.buf = c.buf[:0]
	c.next = 0
	c.filled = false
}

// WriteJSONL exports retained spans oldest-first, one JSON object per line
// — loadable by any trace tooling and by ReadJSONL.
func (c *Collector) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range c.Snapshot() {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return nil
}

// ReadJSONL loads spans exported by WriteJSONL, e.g. to merge collections
// from several processes before analysis.
func ReadJSONL(r io.Reader) ([]Span, error) {
	dec := json.NewDecoder(r)
	var out []Span
	for {
		var s Span
		if err := dec.Decode(&s); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, s)
	}
}
