// Package trace is a stdlib-only distributed tracing subsystem for the
// task lifecycle: spans with trace/span IDs and parent links, a bounded
// concurrent-safe Collector, a JSONL exporter, and a per-trace critical-path
// analyzer. It underpins the paper's per-stage latency decomposition
// (submit -> broker -> endpoint -> engine -> worker -> result) with real
// per-task measurements instead of hand-placed timers.
//
// Trace context crosses process boundaries as a Context value carried on
// protocol.Envelope, protocol.Task, and protocol.Result; each component
// continues the trace by starting child spans off the carried context. A nil
// *Tracer (and the nil *ActiveSpan it hands out) is a safe no-op, so tracing is
// strictly opt-in and adds no overhead when unconfigured.
package trace

import (
	"context"
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// TraceID identifies one end-to-end task lifecycle (16 random bytes, hex).
type TraceID string

// SpanID identifies one stage within a trace (8 random bytes, hex).
type SpanID string

// Context is the propagated trace context: which trace an operation belongs
// to and which span is its parent. It is the only type that travels on the
// wire (JSON, embedded in envelopes, tasks, and results).
type Context struct {
	TraceID TraceID `json:"trace_id"`
	SpanID  SpanID  `json:"span_id,omitempty"`
}

// Valid reports whether c carries a usable trace ID.
func (c *Context) Valid() bool { return c != nil && c.TraceID != "" }

// idSource is a cheap concurrent ID generator: a crypto-seeded counter
// split into trace and span halves. IDs need uniqueness, not secrecy.
var idSource atomic.Uint64

func init() {
	var b [8]byte
	if _, err := rand.Read(b[:]); err == nil {
		idSource.Store(binary.BigEndian.Uint64(b[:]))
	} else {
		idSource.Store(uint64(time.Now().UnixNano()))
	}
}

// NewTraceID returns a fresh trace identifier.
func NewTraceID() TraceID {
	var b [16]byte
	binary.BigEndian.PutUint64(b[:8], idSource.Add(1))
	binary.BigEndian.PutUint64(b[8:], idSource.Add(1)*0x9e3779b97f4a7c15)
	return TraceID(hex.EncodeToString(b[:]))
}

// NewSpanID returns a fresh span identifier.
func NewSpanID() SpanID {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], idSource.Add(1)*0xbf58476d1ce4e5b9)
	return SpanID(hex.EncodeToString(b[:]))
}

// Span is one recorded stage of a trace: pure data, safe to copy, store,
// and marshal. Live in-progress spans are *ActiveSpan handles; they snapshot
// into a Span at End.
type Span struct {
	TraceID TraceID           `json:"trace_id"`
	SpanID  SpanID            `json:"span_id"`
	Parent  SpanID            `json:"parent_span_id,omitempty"`
	Name    string            `json:"name"`
	Process string            `json:"process,omitempty"`
	Start   time.Time         `json:"start"`
	EndTime time.Time         `json:"end"`
	Status  string            `json:"status,omitempty"`
	Attrs   map[string]string `json:"attrs,omitempty"`
}

// Duration is the span's wall time (zero until ended).
func (s Span) Duration() time.Duration {
	if s.EndTime.IsZero() {
		return 0
	}
	return s.EndTime.Sub(s.Start)
}

// ActiveSpan is a live span created by Tracer.StartSpan. All methods are
// safe on a nil receiver (the no-op span a nil tracer hands out) and safe
// for concurrent use.
type ActiveSpan struct {
	tracer *Tracer
	mu     sync.Mutex
	span   Span
	ended  bool
}

// Context returns the span's propagation context, for handing to the next
// stage. Nil receiver yields nil (propagates "no tracing").
func (s *ActiveSpan) Context() *Context {
	if s == nil {
		return nil
	}
	return &Context{TraceID: s.span.TraceID, SpanID: s.span.SpanID}
}

// SetAttr attaches a key/value attribute. Safe on nil and ended spans.
func (s *ActiveSpan) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	if s.span.Attrs == nil {
		s.span.Attrs = make(map[string]string, 4)
	}
	s.span.Attrs[k] = v
}

// EndStatus finishes the span with an explicit status ("" = ok) and records
// it in the collector. Only the first End wins; nil is a no-op.
func (s *ActiveSpan) EndStatus(status string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	s.span.EndTime = time.Now()
	s.span.Status = status
	snap := s.span
	if len(snap.Attrs) > 0 {
		attrs := make(map[string]string, len(snap.Attrs))
		for k, v := range snap.Attrs {
			attrs[k] = v
		}
		snap.Attrs = attrs
	}
	t := s.tracer
	s.mu.Unlock()
	if t != nil && t.collector != nil {
		t.collector.Add(snap)
	}
}

// End finishes the span successfully.
func (s *ActiveSpan) End() { s.EndStatus("") }

// Tracer creates spans for one component (process). The zero of *Tracer
// (nil) is a valid no-op tracer.
type Tracer struct {
	process   string
	collector *Collector
}

// NewTracer builds a tracer that records ended spans into c under the given
// process name (e.g. "webservice", "broker", "endpoint", "engine", "sdk").
func NewTracer(process string, c *Collector) *Tracer {
	return &Tracer{process: process, collector: c}
}

// Collector returns the tracer's span sink (nil for a nil tracer).
func (t *Tracer) Collector() *Collector {
	if t == nil {
		return nil
	}
	return t.collector
}

// StartSpan begins a span now. A nil or invalid parent starts a new trace
// (the span becomes a root); otherwise the span joins the parent's trace
// with a parent link. Nil tracer returns nil.
func (t *Tracer) StartSpan(parent *Context, name string) *ActiveSpan {
	return t.StartSpanAt(parent, name, time.Now())
}

// StartSpanAt is StartSpan with an explicit start time, for stages whose
// beginning predates the instrumentation point (e.g. service time measured
// from request arrival).
func (t *Tracer) StartSpanAt(parent *Context, name string, start time.Time) *ActiveSpan {
	if t == nil {
		return nil
	}
	s := &ActiveSpan{tracer: t}
	s.span = Span{
		Name:    name,
		Process: t.process,
		Start:   start,
		SpanID:  NewSpanID(),
	}
	if parent.Valid() {
		s.span.TraceID = parent.TraceID
		s.span.Parent = parent.SpanID
	} else {
		s.span.TraceID = NewTraceID()
	}
	return s
}

// Record registers an already-completed stage (start..end) and returns its
// context, for components that learn about a stage after the fact (e.g. the
// interchange recording a remote worker's execution from the result's
// timestamps). Trailing arguments are attribute key/value pairs. Nil tracer
// returns the parent unchanged.
func (t *Tracer) Record(parent *Context, name string, start, end time.Time, attrs ...string) *Context {
	if t == nil || t.collector == nil {
		return parent
	}
	s := Span{
		Name:    name,
		Process: t.process,
		Start:   start,
		EndTime: end,
		SpanID:  NewSpanID(),
	}
	for i := 0; i+1 < len(attrs); i += 2 {
		if s.Attrs == nil {
			s.Attrs = make(map[string]string, len(attrs)/2)
		}
		s.Attrs[attrs[i]] = attrs[i+1]
	}
	if parent.Valid() {
		s.TraceID = parent.TraceID
		s.Parent = parent.SpanID
	} else {
		s.TraceID = NewTraceID()
	}
	t.collector.Add(s)
	return &Context{TraceID: s.TraceID, SpanID: s.SpanID}
}

// ctxKey keys the span context inside a context.Context.
type ctxKey struct{}

// NewContext returns ctx carrying the given trace context.
func NewContext(ctx context.Context, tc *Context) context.Context {
	if tc == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, tc)
}

// FromContext extracts the trace context from ctx (nil if absent).
func FromContext(ctx context.Context) *Context {
	if ctx == nil {
		return nil
	}
	tc, _ := ctx.Value(ctxKey{}).(*Context)
	return tc
}

// Start begins a span as a child of the context carried in ctx (a new root
// when ctx carries none) and returns a derived context carrying the new
// span. This is the in-process idiom: trace.Start-style stage scoping.
func (t *Tracer) Start(ctx context.Context, name string) (context.Context, *ActiveSpan) {
	s := t.StartSpan(FromContext(ctx), name)
	if s == nil {
		return ctx, nil
	}
	return NewContext(ctx, s.Context()), s
}
