package trace

import (
	"strings"
	"testing"
	"time"
)

// chain builds a parent->child span sequence with known offsets/durations.
func chain(t0 time.Time, id TraceID) []Span {
	mk := func(name string, parent SpanID, off, dur time.Duration) Span {
		return Span{TraceID: id, SpanID: NewSpanID(), Parent: parent, Name: name,
			Start: t0.Add(off), EndTime: t0.Add(off + dur)}
	}
	root := mk("submit", "", 0, 10*time.Millisecond)
	deliver := mk("deliver", root.SpanID, 12*time.Millisecond, 3*time.Millisecond)
	execute := mk("execute", deliver.SpanID, 15*time.Millisecond, 20*time.Millisecond)
	// A short sibling that finishes before execute: must NOT be on the
	// critical path.
	queue := mk("queue", deliver.SpanID, 15*time.Millisecond, 1*time.Millisecond)
	return []Span{execute, queue, root, deliver} // shuffled on purpose
}

func TestAnalyze(t *testing.T) {
	t0 := time.Now()
	id := NewTraceID()
	sum, err := Analyze(chain(t0, id))
	if err != nil {
		t.Fatal(err)
	}
	if sum.TraceID != id || sum.Spans != 4 {
		t.Fatalf("summary %+v", sum)
	}
	if sum.Duration != 35*time.Millisecond {
		t.Errorf("duration = %v, want 35ms", sum.Duration)
	}
	var names []string
	for _, st := range sum.CriticalPath {
		names = append(names, st.Name)
	}
	if got := strings.Join(names, ">"); got != "submit>deliver>execute" {
		t.Errorf("critical path = %s", got)
	}
	// Gap between submit end (10ms) and deliver start (12ms) is 2ms.
	if sum.CriticalPath[1].Gap != 2*time.Millisecond {
		t.Errorf("deliver gap = %v, want 2ms", sum.CriticalPath[1].Gap)
	}
	// Unattributed = 35 - (10+3+20) = 2ms of dead time.
	if sum.Unattributed != 2*time.Millisecond {
		t.Errorf("unattributed = %v, want 2ms", sum.Unattributed)
	}
	if sum.Stages[0].Name != "submit" || sum.Stages[0].Offset != 0 {
		t.Errorf("stages[0] = %+v, want submit at offset 0", sum.Stages[0])
	}
	out := sum.String()
	if !strings.Contains(out, "submit") || !strings.Contains(out, string(id)) {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestAnalyzeErrors(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("empty input must error")
	}
	a := Span{TraceID: NewTraceID(), SpanID: NewSpanID()}
	b := Span{TraceID: NewTraceID(), SpanID: NewSpanID()}
	if _, err := Analyze([]Span{a, b}); err == nil {
		t.Error("mixed traces must error")
	}
}

func TestAnalyzeOrphanRoot(t *testing.T) {
	// After ring eviction the true root may be gone: the earliest span with
	// a dangling parent link becomes the root.
	t0 := time.Now()
	id := NewTraceID()
	gone := NewSpanID()
	mid := Span{TraceID: id, SpanID: NewSpanID(), Parent: gone, Name: "mid",
		Start: t0, EndTime: t0.Add(5 * time.Millisecond)}
	leaf := Span{TraceID: id, SpanID: NewSpanID(), Parent: mid.SpanID, Name: "leaf",
		Start: t0.Add(5 * time.Millisecond), EndTime: t0.Add(9 * time.Millisecond)}
	sum, err := Analyze([]Span{leaf, mid})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.CriticalPath) != 2 || sum.CriticalPath[0].Name != "mid" {
		t.Fatalf("critical path %+v", sum.CriticalPath)
	}
}

func TestStageLabel(t *testing.T) {
	cases := []struct {
		name, queue, want string
	}{
		{"endpoint.dispatch", "", "endpoint.dispatch"},
		{"broker.deliver", "tasks.ep1", "broker.deliver[tasks]"},
		{"broker.deliver", "results.ep1", "broker.deliver[results]"},
		{"broker.deliver", "results.group.g1", "broker.deliver[results.group]"},
		{"broker.deliver", "plain", "broker.deliver[plain]"},
	}
	for _, c := range cases {
		s := Span{Name: c.name}
		if c.queue != "" {
			s.Attrs = map[string]string{"queue": c.queue}
		}
		if got := StageLabel(s); got != c.want {
			t.Errorf("StageLabel(%s,%s) = %q, want %q", c.name, c.queue, got, c.want)
		}
	}
}
