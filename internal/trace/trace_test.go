package trace

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

func TestIDUniqueness(t *testing.T) {
	seenT := make(map[TraceID]bool)
	seenS := make(map[SpanID]bool)
	for i := 0; i < 10000; i++ {
		tid := NewTraceID()
		if len(tid) != 32 {
			t.Fatalf("trace id %q: want 32 hex chars", tid)
		}
		if seenT[tid] {
			t.Fatalf("duplicate trace id %s", tid)
		}
		seenT[tid] = true
		sid := NewSpanID()
		if len(sid) != 16 {
			t.Fatalf("span id %q: want 16 hex chars", sid)
		}
		if seenS[sid] {
			t.Fatalf("duplicate span id %s", sid)
		}
		seenS[sid] = true
	}
}

func TestSpanLifecycle(t *testing.T) {
	c := NewCollector(16)
	tr := NewTracer("test", c)

	root := tr.StartSpan(nil, "root")
	root.SetAttr("k", "v")
	rc := root.Context()
	if !rc.Valid() {
		t.Fatal("root context invalid")
	}

	child := tr.StartSpan(rc, "child")
	cc := child.Context()
	if cc.TraceID != rc.TraceID {
		t.Fatalf("child trace %s != root trace %s", cc.TraceID, rc.TraceID)
	}
	child.EndStatus("error")
	child.End() // second End must not double-record
	root.End()

	spans := c.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("recorded %d spans, want 2", len(spans))
	}
	byName := map[string]Span{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	r, ch := byName["root"], byName["child"]
	if r.Parent != "" {
		t.Errorf("root parent = %q, want none", r.Parent)
	}
	if ch.Parent != r.SpanID {
		t.Errorf("child parent = %q, want %q", ch.Parent, r.SpanID)
	}
	if ch.Status != "error" {
		t.Errorf("child status = %q, want error (first End wins)", ch.Status)
	}
	if r.Attrs["k"] != "v" {
		t.Errorf("root attrs = %v", r.Attrs)
	}
	if r.Process != "test" {
		t.Errorf("process = %q", r.Process)
	}
	if r.Duration() < 0 || r.EndTime.Before(r.Start) {
		t.Errorf("bad timing: start %v end %v", r.Start, r.EndTime)
	}
}

func TestAttrAfterEndIgnored(t *testing.T) {
	c := NewCollector(4)
	tr := NewTracer("test", c)
	sp := tr.StartSpan(nil, "s")
	sp.End()
	sp.SetAttr("late", "x")
	if got := c.Snapshot()[0].Attrs; got != nil {
		t.Errorf("attrs after end = %v, want none", got)
	}
}

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.StartSpan(nil, "noop")
	if sp != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// All of these must be no-ops, not panics.
	sp.SetAttr("k", "v")
	sp.EndStatus("error")
	sp.End()
	if sp.Context() != nil {
		t.Error("nil span context must be nil")
	}
	if tr.Collector() != nil {
		t.Error("nil tracer collector must be nil")
	}
	parent := &Context{TraceID: NewTraceID()}
	if got := tr.Record(parent, "x", time.Now(), time.Now()); got != parent {
		t.Error("nil tracer Record must return parent unchanged")
	}
	ctx, s2 := tr.Start(context.Background(), "noop")
	if s2 != nil || FromContext(ctx) != nil {
		t.Error("nil tracer Start must be a no-op")
	}
	var nc *Context
	if nc.Valid() {
		t.Error("nil context must be invalid")
	}
}

func TestContextPropagation(t *testing.T) {
	c := NewCollector(8)
	tr := NewTracer("test", c)
	ctx, root := tr.Start(context.Background(), "outer")
	_, inner := tr.Start(ctx, "inner")
	inner.End()
	root.End()
	spans := c.Snapshot()
	if len(spans) != 2 {
		t.Fatalf("%d spans", len(spans))
	}
	if spans[0].Name != "inner" || spans[0].Parent != root.Context().SpanID {
		t.Errorf("inner span %+v not parented to outer", spans[0])
	}
}

func TestRecord(t *testing.T) {
	c := NewCollector(8)
	tr := NewTracer("interchange", c)
	parent := &Context{TraceID: NewTraceID(), SpanID: NewSpanID()}
	start := time.Now().Add(-time.Second)
	end := time.Now()
	got := tr.Record(parent, "engine.execute", start, end, "worker", "w1")
	if got.TraceID != parent.TraceID || got.SpanID == parent.SpanID {
		t.Fatalf("recorded context %+v", got)
	}
	s := c.Snapshot()[0]
	if s.Parent != parent.SpanID || s.Attrs["worker"] != "w1" {
		t.Errorf("span %+v", s)
	}
	if d := s.Duration(); d < 900*time.Millisecond || d > 1100*time.Millisecond {
		t.Errorf("duration %v", d)
	}
}

func TestCollectorRing(t *testing.T) {
	c := NewCollector(4)
	id := NewTraceID()
	base := time.Now()
	for i := 0; i < 7; i++ {
		c.Add(Span{TraceID: id, SpanID: NewSpanID(), Name: string(rune('a' + i)),
			Start: base.Add(time.Duration(i) * time.Millisecond)})
	}
	if c.Len() != 4 {
		t.Fatalf("len = %d", c.Len())
	}
	if c.Total() != 7 || c.Dropped() != 3 {
		t.Fatalf("total %d dropped %d", c.Total(), c.Dropped())
	}
	snap := c.Snapshot()
	want := []string{"d", "e", "f", "g"}
	for i, s := range snap {
		if s.Name != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (oldest-first)", i, s.Name, want[i])
		}
	}
	if got := c.Trace(id); len(got) != 4 || got[0].Name != "d" {
		t.Errorf("Trace: %d spans, first %q", len(got), got[0].Name)
	}
	if ids := c.TraceIDs(); len(ids) != 1 || ids[0] != id {
		t.Errorf("TraceIDs = %v", ids)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Errorf("len after reset = %d", c.Len())
	}
	if c.Total() != 7 {
		t.Errorf("total after reset = %d (counters must persist)", c.Total())
	}
	c.Add(Span{TraceID: id, Name: "h"})
	if snap := c.Snapshot(); len(snap) != 1 || snap[0].Name != "h" {
		t.Errorf("post-reset snapshot = %v", snap)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	c := NewCollector(8)
	tr := NewTracer("p", c)
	root := tr.StartSpan(nil, "a")
	root.SetAttr("x", "1")
	root.End()
	tr.StartSpan(root.Context(), "b").End()

	var buf bytes.Buffer
	if err := c.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := c.Snapshot()
	if len(got) != len(orig) {
		t.Fatalf("%d spans, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].SpanID != orig[i].SpanID || got[i].Name != orig[i].Name ||
			got[i].Parent != orig[i].Parent || got[i].Attrs["x"] != orig[i].Attrs["x"] {
			t.Errorf("span %d: got %+v want %+v", i, got[i], orig[i])
		}
		if !got[i].Start.Equal(orig[i].Start) || !got[i].EndTime.Equal(orig[i].EndTime) {
			t.Errorf("span %d times drifted", i)
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	c := NewCollector(256)
	tr := NewTracer("conc", c)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				sp := tr.StartSpan(nil, "s")
				sp.SetAttr("i", "x")
				sp.End()
				_ = c.Len()
				if i%50 == 0 {
					_ = c.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if c.Total() != 1600 {
		t.Fatalf("total = %d", c.Total())
	}
}

func BenchmarkStartEnd(b *testing.B) {
	tr := NewTracer("bench", NewCollector(DefaultCapacity))
	parent := &Context{TraceID: NewTraceID(), SpanID: NewSpanID()}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(parent, "stage")
		sp.End()
	}
}

func BenchmarkStartEndNoop(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.StartSpan(nil, "stage")
		sp.SetAttr("k", "v")
		sp.End()
	}
}

func BenchmarkCollectorAdd(b *testing.B) {
	c := NewCollector(DefaultCapacity)
	s := Span{TraceID: NewTraceID(), SpanID: NewSpanID(), Name: "s"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(s)
	}
}
