// Package metrics provides the lightweight counters and latency histograms
// used throughout the stack for accounting and by the benchmark harness.
// All types are safe for concurrent use.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be negative for gauge-like use, but prefer Gauge).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable instantaneous value.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts by n and returns the new value.
func (g *Gauge) Add(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram accumulates duration observations and reports percentile
// summaries. It keeps raw samples up to a cap, then switches to reservoir
// sampling so memory stays bounded on long benches.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
	// capacity of the reservoir
	cap int
	// deterministic LCG for reservoir replacement, so benches reproduce
	rng uint64
}

// NewHistogram returns a histogram with the given reservoir capacity
// (<=0 selects 4096).
func NewHistogram(capacity int) *Histogram {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Histogram{cap: capacity, rng: 0x9e3779b97f4a7c15, min: math.MaxInt64}
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.min = d
	}
	if len(h.samples) < h.cap {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir sampling: replace a random slot with probability cap/count.
	h.rng = h.rng*6364136223846793005 + 1442695040888963407
	idx := h.rng % uint64(h.count)
	if idx < uint64(h.cap) {
		h.samples[idx] = d
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the average observation, or zero when empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest observation.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest observation, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Percentile returns the p-th percentile (0 < p <= 100) over the retained
// samples. Returns zero when empty.
func (h *Histogram) Percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return percentileSorted(h.sortedSamplesLocked(), p)
}

// sortedSamplesLocked copies and sorts the reservoir (caller holds h.mu).
func (h *Histogram) sortedSamplesLocked() []time.Duration {
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted
}

// percentileSorted interpolates the p-th percentile over pre-sorted samples.
func percentileSorted(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// HistogramStats is a consistent point-in-time histogram snapshot. The JSON
// tags keep federated snapshots compact on the heartbeat channel.
type HistogramStats struct {
	Count int64         `json:"n"`
	Sum   time.Duration `json:"sum"`
	Mean  time.Duration `json:"mean,omitempty"`
	Min   time.Duration `json:"min,omitempty"`
	Max   time.Duration `json:"max,omitempty"`
	P50   time.Duration `json:"p50,omitempty"`
	P95   time.Duration `json:"p95,omitempty"`
	P99   time.Duration `json:"p99,omitempty"`
}

// Stats computes every summary field under one lock acquisition, so the
// fields are mutually consistent even while observations stream in
// concurrently (repeated single-field getters could mix epochs: e.g. a count
// from before an observation with a max from after it).
func (h *Histogram) Stats() HistogramStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramStats{Count: h.count, Sum: h.sum}
	if h.count == 0 {
		return s
	}
	s.Mean = h.sum / time.Duration(h.count)
	s.Min = h.min
	s.Max = h.max
	sorted := h.sortedSamplesLocked()
	s.P50 = percentileSorted(sorted, 50)
	s.P95 = percentileSorted(sorted, 95)
	s.P99 = percentileSorted(sorted, 99)
	return s
}

// Summary renders count/mean/p50/p95/p99/max on one line, from one
// consistent snapshot.
func (h *Histogram) Summary() string {
	s := h.Stats()
	return fmt.Sprintf("n=%d mean=%s p50=%s p95=%s p99=%s max=%s",
		s.Count, s.Mean, s.P50, s.P95, s.P99, s.Max)
}

// Registry is a named collection of metrics, one per subsystem instance.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(0)
		r.histograms[name] = h
	}
	return h
}

// Snapshot returns all counter and gauge values by name, for reporting.
func (r *Registry) Snapshot() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	return out
}
