package metrics

import (
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Errorf("counter = %d, want 8000", got)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(42)
	if g.Value() != 42 {
		t.Errorf("gauge = %d, want 42", g.Value())
	}
	if got := g.Add(-2); got != 40 {
		t.Errorf("Add returned %d, want 40", got)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(16)
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Percentile(50) != 0 {
		t.Error("empty histogram should report zeros")
	}
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 10 {
		t.Errorf("count = %d, want 10", h.Count())
	}
	if h.Mean() != 5500*time.Microsecond {
		t.Errorf("mean = %s, want 5.5ms", h.Mean())
	}
	if h.Max() != 10*time.Millisecond {
		t.Errorf("max = %s, want 10ms", h.Max())
	}
	if h.Min() != time.Millisecond {
		t.Errorf("min = %s, want 1ms", h.Min())
	}
}

func TestHistogramPercentileBounds(t *testing.T) {
	h := NewHistogram(16)
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i))
	}
	// Reservoir cap is 16 so only 16 samples retained, but percentiles
	// must remain ordered and within [min, max] of retained samples.
	p50, p95 := h.Percentile(50), h.Percentile(95)
	if p50 > p95 {
		t.Errorf("p50 %s > p95 %s", p50, p95)
	}
	if h.Percentile(0) > h.Percentile(100) {
		t.Error("p0 > p100")
	}
	if h.Percentile(100) > 100 || h.Percentile(0) < 1 {
		t.Errorf("percentile outside observed range: p0=%s p100=%s", h.Percentile(0), h.Percentile(100))
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	h := NewHistogram(8)
	for i := 0; i < 100000; i++ {
		h.Observe(time.Duration(i))
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n > 8 {
		t.Errorf("reservoir grew to %d, cap 8", n)
	}
	if h.Count() != 100000 {
		t.Errorf("count = %d, want 100000", h.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(64)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 2000 {
		t.Errorf("count = %d, want 2000", h.Count())
	}
}

func TestRegistryIdentity(t *testing.T) {
	r := NewRegistry()
	c1 := r.Counter("tasks")
	c1.Inc()
	if c2 := r.Counter("tasks"); c2.Value() != 1 {
		t.Error("Counter did not return the same instance")
	}
	g := r.Gauge("depth")
	g.Set(7)
	if r.Gauge("depth").Value() != 7 {
		t.Error("Gauge did not return the same instance")
	}
	h := r.Histogram("lat")
	h.Observe(time.Second)
	if r.Histogram("lat").Count() != 1 {
		t.Error("Histogram did not return the same instance")
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-1)
	snap := r.Snapshot()
	if snap["a"] != 3 || snap["b"] != -1 {
		t.Errorf("snapshot = %v, want a=3 b=-1", snap)
	}
}

func TestHistogramSummaryNonEmpty(t *testing.T) {
	h := NewHistogram(4)
	h.Observe(time.Millisecond)
	if s := h.Summary(); s == "" {
		t.Error("empty summary")
	}
}
