package metrics

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramStatsConsistent(t *testing.T) {
	h := NewHistogram(64)
	for i := 1; i <= 10; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Stats()
	if s.Count != 10 {
		t.Errorf("count = %d", s.Count)
	}
	if s.Sum != 55*time.Millisecond {
		t.Errorf("sum = %s", s.Sum)
	}
	if s.Mean != 5500*time.Microsecond {
		t.Errorf("mean = %s", s.Mean)
	}
	if s.Min != time.Millisecond || s.Max != 10*time.Millisecond {
		t.Errorf("min/max = %s/%s", s.Min, s.Max)
	}
	if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.Max || s.P50 < s.Min {
		t.Errorf("quantiles out of order: %+v", s)
	}
}

// TestHistogramStatsUnderContention exercises the single-lock snapshot while
// writers race: every snapshot must be internally consistent (ordered
// quantiles within [Min, Max], Mean == Sum/Count).
func TestHistogramStatsUnderContention(t *testing.T) {
	h := NewHistogram(32)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * time.Microsecond
			for {
				select {
				case <-stop:
					return
				default:
					h.Observe(d)
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		s := h.Stats()
		if s.Count == 0 {
			continue
		}
		if s.P50 < s.Min || s.P99 > s.Max || s.P50 > s.P95 || s.P95 > s.P99 {
			t.Fatalf("inconsistent snapshot: %+v", s)
		}
		if got := s.Sum / time.Duration(s.Count); got != s.Mean {
			t.Fatalf("mean %s != sum/count %s (snapshot not atomic)", s.Mean, got)
		}
	}
	close(stop)
	wg.Wait()
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("published.tasks.ep-1").Add(3)
	r.Gauge("queue depth").Set(-2)
	h := r.Histogram("submit")
	h.Observe(250 * time.Millisecond)
	h.Observe(750 * time.Millisecond)

	var b strings.Builder
	if err := r.WriteText(&b, "gc_test"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE gc_test_published_tasks_ep_1_total counter",
		"gc_test_published_tasks_ep_1_total 3",
		"# TYPE gc_test_queue_depth gauge",
		"gc_test_queue_depth -2",
		"# TYPE gc_test_submit_seconds summary",
		`gc_test_submit_seconds{quantile="0.5"}`,
		`gc_test_submit_seconds{quantile="0.99"}`,
		"gc_test_submit_seconds_sum 1\n",
		"gc_test_submit_seconds_count 2\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"plain":        "plain",
		"a.b-c d":      "a_b_c_d",
		"9lives":       "_9lives",
		"":             "_",
		"colons:ok":    "colons:ok",
		"UPPER_lower1": "UPPER_lower1",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}
