package metrics

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// WriteText renders the registry in the Prometheus text exposition format
// (version 0.0.4): counters and gauges as single samples, histograms as
// summaries with p50/p95/p99 quantiles plus _sum and _count. Metric names are
// sanitized to [a-zA-Z0-9_:] and optionally prefixed (prefix is sanitized the
// same way, e.g. "gc_webservice").
//
// Prometheus naming conventions are applied at exposition time: counters gain
// a `_total` suffix and duration histograms a `_seconds` suffix with values
// in seconds. Histograms whose registry name already carries a non-time unit
// suffix (see unitHistogram) record counts via the 1s==1-unit encoding and
// are exported under their own name with unit values — so e.g. the
// `egress_flush_size` histogram exports as `..._egress_flush_size` (results
// per flush), not a misleading `..._egress_flush_size_seconds`.
func (r *Registry) WriteText(w io.Writer, prefix string) error {
	if prefix != "" {
		prefix = sanitizeMetricName(prefix) + "_"
	}

	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := make(map[string]int64, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.Unlock()

	for _, name := range sortedKeys(counters) {
		mn := prefix + sanitizeMetricName(name) + "_total"
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", mn, mn, counters[name]); err != nil {
			return err
		}
	}
	for _, name := range sortedKeys(gauges) {
		mn := prefix + sanitizeMetricName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", mn, mn, gauges[name]); err != nil {
			return err
		}
	}
	hnames := make([]string, 0, len(histograms))
	for name := range histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		s := histograms[name].Stats()
		mn := prefix + sanitizeMetricName(name)
		if !unitHistogram(name) {
			mn += "_seconds"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", mn); err != nil {
			return err
		}
		for _, q := range []struct {
			q string
			v time.Duration
		}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", mn, q.q, q.v.Seconds()); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", mn, s.Sum.Seconds(), mn, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// SanitizeName exposes the exposition-name mapping for other exporters (the
// fleet federation endpoint renders snapshots outside this package).
func SanitizeName(name string) string { return sanitizeMetricName(name) }

// HistogramSeconds reports whether a histogram with this registry name
// exports duration values in seconds (true) or unit-encoded values under its
// own name (false); see WriteText.
func HistogramSeconds(name string) bool { return !unitHistogram(name) }

// unitHistogram reports whether a histogram's registry name already names a
// non-time unit, meaning its observations use the 1s==1-unit encoding and
// its exposition must not claim seconds.
func unitHistogram(name string) bool {
	for _, suffix := range []string{"_size", "_bytes", "_ratio"} {
		if strings.HasSuffix(name, suffix) {
			return true
		}
	}
	return false
}

// sanitizeMetricName maps arbitrary registry names onto the Prometheus
// metric-name alphabet; invalid runes become underscores and a leading digit
// gains one.
func sanitizeMetricName(name string) string {
	out := make([]byte, 0, len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			out = append(out, c)
		case c >= '0' && c <= '9':
			if i == 0 {
				out = append(out, '_')
			}
			out = append(out, c)
		default:
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "_"
	}
	return string(out)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
