package metrics

import (
	"sync"
	"testing"
	"time"
)

// Edge cases around histogram quantiles: empty histograms must report zeros
// (not NaN or panics), and a single observation must be every percentile.

func TestEmptyHistogramQuantiles(t *testing.T) {
	h := NewHistogram(8)
	for _, p := range []float64{0, 50, 99, 100} {
		if v := h.Percentile(p); v != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, v)
		}
	}
	s := h.Stats()
	if s.Count != 0 || s.Mean != 0 || s.Min != 0 || s.Max != 0 || s.P50 != 0 || s.P99 != 0 {
		t.Errorf("empty Stats = %+v, want zeros", s)
	}
	if h.Min() != 0 {
		t.Errorf("empty Min = %v, want 0", h.Min())
	}
}

func TestSingleObservationPercentiles(t *testing.T) {
	h := NewHistogram(8)
	h.Observe(42 * time.Millisecond)
	for _, p := range []float64{0, 1, 50, 99, 100} {
		if v := h.Percentile(p); v != 42*time.Millisecond {
			t.Errorf("Percentile(%v) = %v, want 42ms", p, v)
		}
	}
	s := h.Stats()
	if s.P99 != 42*time.Millisecond || s.Min != 42*time.Millisecond || s.Max != 42*time.Millisecond {
		t.Errorf("single-observation Stats = %+v", s)
	}
}

// TestSnapshotConcurrentObserve drives TakeSnapshot and Stats against
// concurrent observers; meaningful under -race (snapshot-vs-observe races
// surfaced here before the single-lock Stats work).
func TestSnapshotConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				r.Histogram("lat").Observe(time.Duration(i%1000) * time.Microsecond)
				r.Counter("n").Inc()
			}
		}(w)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		s := r.TakeSnapshot()
		hs, ok := s.HistogramValue("lat")
		if !ok {
			continue
		}
		// Internal consistency of one snapshot: percentiles bounded by
		// min/max, count covers the sum's observations.
		if hs.Count > 0 && (hs.P50 < hs.Min || hs.P99 > hs.Max) {
			t.Fatalf("inconsistent snapshot: %+v", hs)
		}
		_ = s.Delta(Snapshot{})
	}
	close(done)
	wg.Wait()
}
