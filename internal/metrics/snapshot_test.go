package metrics

import (
	"encoding/json"
	"testing"
	"time"
)

func TestTakeSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("tasks").Add(7)
	r.Gauge("backlog").Set(3)
	r.Histogram("latency").Observe(10 * time.Millisecond)

	s := r.TakeSnapshot()
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if v, ok := s.CounterValue("tasks"); !ok || v != 7 {
		t.Errorf("counter tasks = %d,%v", v, ok)
	}
	if v, ok := s.GaugeValue("backlog"); !ok || v != 3 {
		t.Errorf("gauge backlog = %d,%v", v, ok)
	}
	if h, ok := s.HistogramValue("latency"); !ok || h.Count != 1 || h.P99 != 10*time.Millisecond {
		t.Errorf("histogram latency = %+v,%v", h, ok)
	}
}

func TestSnapshotDeltaOverlay(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(1)
	r.Counter("b").Add(1)
	r.Gauge("g").Set(5)
	prev := r.TakeSnapshot()

	// Only "a" and a new counter change; "b" and "g" hold still.
	r.Counter("a").Add(1)
	r.Counter("c").Inc()
	cur := r.TakeSnapshot()

	d := cur.Delta(prev)
	if len(d.Counters) != 2 {
		t.Fatalf("delta counters = %v, want only a and c", d.Counters)
	}
	if _, ok := d.Counters["b"]; ok {
		t.Error("unchanged counter b should be elided from the delta")
	}
	if len(d.Gauges) != 0 {
		t.Errorf("unchanged gauge leaked into delta: %v", d.Gauges)
	}

	// Receiver overlays the delta onto its last absolute view.
	abs := prev.Clone()
	abs.Overlay(d)
	if abs.Counters["a"] != 2 || abs.Counters["b"] != 1 || abs.Counters["c"] != 1 {
		t.Errorf("overlay mismatch: %v", abs.Counters)
	}
	if abs.Gauges["g"] != 5 {
		t.Errorf("overlay lost gauge: %v", abs.Gauges)
	}

	// Delta against an empty snapshot is the full snapshot.
	full := cur.Delta(Snapshot{})
	if full.Len() != cur.Len() {
		t.Errorf("full delta Len = %d, want %d", full.Len(), cur.Len())
	}
}

func TestSnapshotBound(t *testing.T) {
	r := NewRegistry()
	for _, n := range []string{"c1", "c2", "c3"} {
		r.Counter(n).Inc()
	}
	r.Gauge("g1").Set(1)
	r.Histogram("h1").Observe(time.Second)
	r.Histogram("h2").Observe(time.Second)

	s := r.TakeSnapshot()
	s.Bound(4)
	if s.Len() != 4 {
		t.Fatalf("bounded Len = %d, want 4", s.Len())
	}
	// Histograms drop first.
	if len(s.Histograms) != 0 {
		t.Errorf("histograms should be dropped first, got %v", s.Histograms)
	}
	// Under the cap: unchanged.
	s2 := r.TakeSnapshot()
	s2.Bound(100)
	if s2.Len() != 6 {
		t.Errorf("under-cap snapshot trimmed: %d", s2.Len())
	}
}

func TestSnapshotMergePrefixAndJSON(t *testing.T) {
	agent := NewRegistry()
	agent.Counter("tasks_received").Add(2)
	eng := NewRegistry()
	eng.Counter("completed").Add(2)
	eng.Histogram("exec").Observe(time.Millisecond)

	var s Snapshot
	s.Merge("", agent.TakeSnapshot())
	s.Merge("engine_", eng.TakeSnapshot())
	if _, ok := s.CounterValue("engine_completed"); !ok {
		t.Fatalf("merge lost prefixed counter: %v", s.Counters)
	}

	// The wire format round-trips.
	b, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["engine_completed"] != 2 || back.Histograms["engine_exec"].Count != 1 {
		t.Errorf("round trip mismatch: %+v", back)
	}
}
