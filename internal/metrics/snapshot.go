package metrics

import (
	"sort"
)

// Snapshot is a serializable point-in-time view of a registry: counter and
// gauge values plus histogram summaries, keyed by metric name. Snapshots are
// the unit of metrics federation — endpoint agents piggyback them (or deltas
// of them) on heartbeats, and the web service overlays them into per-endpoint
// time series. All values are absolute, never increments, so a lost delta
// only delays convergence instead of corrupting it.
type Snapshot struct {
	Counters   map[string]int64          `json:"counters,omitempty"`
	Gauges     map[string]int64          `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms,omitempty"`
}

// TakeSnapshot captures every metric in the registry. Histogram summaries are
// computed per histogram under that histogram's own lock (the registry lock
// only guards the name maps).
func (r *Registry) TakeSnapshot() Snapshot {
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for name, c := range r.counters {
		counters[name] = c
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for name, g := range r.gauges {
		gauges[name] = g
	}
	histograms := make(map[string]*Histogram, len(r.histograms))
	for name, h := range r.histograms {
		histograms[name] = h
	}
	r.mu.Unlock()

	s := Snapshot{
		Counters:   make(map[string]int64, len(counters)),
		Gauges:     make(map[string]int64, len(gauges)),
		Histograms: make(map[string]HistogramStats, len(histograms)),
	}
	for name, c := range counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range histograms {
		s.Histograms[name] = h.Stats()
	}
	return s
}

// Len reports the total number of series in the snapshot.
func (s Snapshot) Len() int {
	return len(s.Counters) + len(s.Gauges) + len(s.Histograms)
}

// Clone deep-copies the snapshot.
func (s Snapshot) Clone() Snapshot {
	out := Snapshot{
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]int64, len(s.Gauges)),
		Histograms: make(map[string]HistogramStats, len(s.Histograms)),
	}
	for k, v := range s.Counters {
		out.Counters[k] = v
	}
	for k, v := range s.Gauges {
		out.Gauges[k] = v
	}
	for k, v := range s.Histograms {
		out.Histograms[k] = v
	}
	return out
}

// Merge copies every series of o into s under the given name prefix,
// overwriting collisions. It is how an agent folds its engine registries into
// one heartbeat snapshot ("engine_" + name).
func (s *Snapshot) Merge(prefix string, o Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64, len(o.Counters))
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]int64, len(o.Gauges))
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramStats, len(o.Histograms))
	}
	for k, v := range o.Counters {
		s.Counters[prefix+k] = v
	}
	for k, v := range o.Gauges {
		s.Gauges[prefix+k] = v
	}
	for k, v := range o.Histograms {
		s.Histograms[prefix+k] = v
	}
}

// Delta returns the compact encoding of s relative to prev: only series whose
// value changed (or that are new) are kept. Values stay absolute, so applying
// a delta is a plain overlay and a dropped delta self-heals on the next
// change. An empty prev yields the full snapshot.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	out := Snapshot{}
	for k, v := range s.Counters {
		if pv, ok := prev.Counters[k]; !ok || pv != v {
			if out.Counters == nil {
				out.Counters = make(map[string]int64)
			}
			out.Counters[k] = v
		}
	}
	for k, v := range s.Gauges {
		if pv, ok := prev.Gauges[k]; !ok || pv != v {
			if out.Gauges == nil {
				out.Gauges = make(map[string]int64)
			}
			out.Gauges[k] = v
		}
	}
	for k, v := range s.Histograms {
		if pv, ok := prev.Histograms[k]; !ok || pv != v {
			if out.Histograms == nil {
				out.Histograms = make(map[string]HistogramStats)
			}
			out.Histograms[k] = v
		}
	}
	return out
}

// Overlay applies d on top of s in place: every series present in d replaces
// (or adds to) the corresponding series in s. It is the receiver-side inverse
// of Delta.
func (s *Snapshot) Overlay(d Snapshot) {
	s.Merge("", d)
}

// Bound caps the snapshot at maxSeries series, dropping histograms first
// (they are the bulkiest series) and then the alphabetically-last counters
// and gauges. It protects the heartbeat channel from pathological metric
// cardinality; under the cap the snapshot is returned unchanged. The drop is
// deterministic so the same registry always trims the same way.
func (s *Snapshot) Bound(maxSeries int) {
	if maxSeries <= 0 || s.Len() <= maxSeries {
		return
	}
	over := s.Len() - maxSeries
	over -= dropLast(&s.Histograms, over)
	if over > 0 {
		over -= dropLast(&s.Gauges, over)
	}
	if over > 0 {
		dropLast(&s.Counters, over)
	}
}

// dropLast removes up to n alphabetically-last keys from m, returning how
// many were removed.
func dropLast[V any](m *map[string]V, n int) int {
	if n <= 0 || len(*m) == 0 {
		return 0
	}
	keys := make([]string, 0, len(*m))
	for k := range *m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	dropped := 0
	for i := len(keys) - 1; i >= 0 && dropped < n; i-- {
		delete(*m, keys[i])
		dropped++
	}
	return dropped
}

// CounterValue returns a counter by name (zero when absent).
func (s Snapshot) CounterValue(name string) (int64, bool) {
	v, ok := s.Counters[name]
	return v, ok
}

// GaugeValue returns a gauge by name.
func (s Snapshot) GaugeValue(name string) (int64, bool) {
	v, ok := s.Gauges[name]
	return v, ok
}

// HistogramValue returns a histogram summary by name.
func (s Snapshot) HistogramValue(name string) (HistogramStats, bool) {
	v, ok := s.Histograms[name]
	return v, ok
}

