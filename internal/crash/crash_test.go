// Package crash is the crash-recovery suite: it builds the real
// gc-webservice binary, runs it with -data-dir, and SIGKILLs it repeatedly
// in the middle of a task storm. After every restart the control plane must
// recover from its WALs: no submitted task may be lost, and every task must
// reach exactly one terminal state — never flip between terminal states,
// never execute into two different outcomes. Gated behind GC_CRASH=1 (run
// via `make crash`) because it builds a binary and kills processes.
package crash

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/webservice"
)

const (
	kills        = 3   // SIGKILL + restart cycles mid-storm
	batchSize    = 8   // tasks per submit batch
	minSubmitted = 24  // the storm must land at least this much work
)

// buildWebservice compiles cmd/gc-webservice once per test binary.
var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

func buildWebservice(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gc-crash-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "gc-webservice")
		cmd := exec.Command("go", "build", "-o", buildBin, "globuscompute/cmd/gc-webservice")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build gc-webservice: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// freeAddr reserves an ephemeral port and releases it for the child to bind.
// The ports must stay fixed across restarts so clients and the agent can
// reconnect to the same addresses.
func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// webservice wraps one life of the gc-webservice process.
type websvc struct {
	cmd   *exec.Cmd
	token string
}

var tokenRe = regexp.MustCompile(`bootstrap token \([^)]*\): (\S+)`)

// startWS launches gc-webservice on fixed addresses over the shared data
// dir and waits for its bootstrap token (printed after all listeners are
// up). The aggressive snapshot cadence makes snapshots and log compaction
// race with the kills.
func startWS(t *testing.T, bin, httpAddr, brokerAddr, objectsAddr, dataDir string) *websvc {
	t.Helper()
	cmd := exec.Command(bin,
		"-http", httpAddr, "-broker", brokerAddr, "-objects", objectsAddr,
		"-data-dir", dataDir, "-snapshot-every", "300ms",
		// Low spill threshold: storm payloads and echoed results travel as
		// content-addressed references, so recovery also proves spilled
		// objects survive the kills (the store is file-backed under the
		// data dir).
		"-spill-threshold", "256")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	tokCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := tokenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case tokCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case tok := <-tokCh:
		return &websvc{cmd: cmd, token: tok}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("gc-webservice never printed its bootstrap token")
		return nil
	}
}

// kill SIGKILLs the process — no shutdown hook, no final snapshot.
func (w *websvc) kill() {
	w.cmd.Process.Kill()
	w.cmd.Wait()
}

func newClient(httpAddr, token string) *sdk.Client {
	c := sdk.NewClient(httpAddr, token)
	c.MaxRetries = 6
	c.RetryBaseDelay = 25 * time.Millisecond
	c.RetryMaxDelay = 500 * time.Millisecond
	return c
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if os.Getenv("GC_CRASH") == "" {
		t.Skip("crash-recovery suite skipped: set GC_CRASH=1 (or run `make crash`)")
	}
	bin := buildWebservice(t)
	dataDir := t.TempDir()
	httpAddr := freeAddr(t)
	brokerAddr := freeAddr(t)
	objectsAddr := freeAddr(t)

	ws := startWS(t, bin, httpAddr, brokerAddr, objectsAddr, dataDir)
	defer func() { ws.kill() }()

	// Registrations land in the WAL: both must survive every crash below.
	client := newClient(httpAddr, ws.token)
	fn, err := client.RegisterFunction(protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatalf("register function: %v", err)
	}
	reg, err := client.RegisterEndpoint(webservice.RegisterEndpointRequest{Name: "crash-ep"})
	if err != nil {
		t.Fatalf("register endpoint: %v", err)
	}
	ep := reg.EndpointID
	if err := client.Heartbeat(ep, true); err != nil {
		t.Fatalf("heartbeat: %v", err)
	}

	// The endpoint agent lives in the test process and talks to the broker
	// over TCP through a reconnecting connection, exactly like gc-endpoint:
	// kills drop the stream, recovery redelivers unacked tasks, and the
	// subscription transparently resubscribes.
	conn, err := broker.NewReconnecting(broker.ReconnectConfig{
		Dial: func() (broker.Conn, error) {
			bc, err := broker.Dial(reg.BrokerAddr)
			if err != nil {
				return nil, err
			}
			// Negotiate the binary hot-path codec on every (re)dial: the
			// recovery guarantees must hold on the compact encoding too.
			bc.EnableBinary()
			return bc.AsConn(), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sub, err := conn.Subscribe(reg.TaskQueue, 16)
	if err != nil {
		t.Fatal(err)
	}
	objects := objectstore.NewClient(reg.ObjectsAddr)
	go func() {
		for m := range sub.Messages() {
			var task protocol.Task
			if err := json.Unmarshal(m.Body, &task); err != nil {
				_ = sub.Ack(m.Tag)
				continue
			}
			payload := task.Payload
			if task.PayloadRef != "" {
				data, err := objects.Get(task.PayloadRef)
				if err != nil {
					// Object store mid-crash: leave the delivery unacked;
					// the recovered broker redelivers and the (recovered,
					// file-backed) store resolves the reference then.
					continue
				}
				payload = data
			}
			res := protocol.Result{
				TaskID: task.ID, State: protocol.StateSuccess,
				Output: payload, EndpointID: ep,
				Started: time.Now(), Completed: time.Now(),
			}
			body, _ := json.Marshal(res)
			if err := conn.Publish(reg.ResultQueue, body); err != nil {
				// Broker mid-crash: leave the delivery unacked; the
				// recovered broker redelivers it and we try again.
				continue
			}
			// Stale tags after a reconnect fail harmlessly — the task
			// redelivers and the service dedupes the duplicate result
			// through its state machine.
			_ = sub.Ack(m.Tag)
		}
	}()

	// Task storm: submit continuously, tolerating the windows where the
	// service is dead. Only IDs the service acknowledged count — those are
	// the ones durability must not lose.
	var (
		mu     sync.Mutex
		ids    []protocol.UUID
		curTok = ws.token
		stop   = make(chan struct{})
		wg     sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		seq := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			tok := curTok
			mu.Unlock()
			c := sdk.NewClient(httpAddr, tok) // fresh client per round: the token changes across restarts
			c.MaxRetries = -1                 // the loop itself is the retry
			batch := make([]webservice.SubmitRequest, batchSize)
			for i := range batch {
				// Payloads are padded past the 256-byte spill threshold so
				// every one crosses as an object-store reference.
				batch[i] = webservice.SubmitRequest{
					EndpointID: ep, FunctionID: fn,
					Payload: []byte(fmt.Sprintf(`"storm-%d-%d-%s"`, seq, i, strings.Repeat("x", 512))),
				}
			}
			seq++
			got, err := c.SubmitBatch(batch)
			if err != nil {
				time.Sleep(50 * time.Millisecond)
				continue
			}
			mu.Lock()
			ids = append(ids, got...)
			mu.Unlock()
			time.Sleep(15 * time.Millisecond)
		}
	}()

	// The storm: SIGKILL the whole cloud mid-flight, restart it over the
	// same data dir, and let WAL replay put the world back.
	for round := 1; round <= kills; round++ {
		time.Sleep(700 * time.Millisecond)
		ws.kill()
		ws = startWS(t, bin, httpAddr, brokerAddr, objectsAddr, dataDir)
		mu.Lock()
		curTok = ws.token
		mu.Unlock()
		// The auth service is deliberately in-memory (tokens are not
		// durable state), so re-mark the endpoint online with a fresh one.
		if err := newClient(httpAddr, ws.token).Heartbeat(ep, true); err != nil {
			t.Fatalf("post-restart heartbeat (round %d): %v", round, err)
		}
	}
	time.Sleep(500 * time.Millisecond)
	close(stop)
	wg.Wait()

	mu.Lock()
	all := append([]protocol.UUID(nil), ids...)
	tok := curTok
	mu.Unlock()
	if len(all) < minSubmitted {
		t.Fatalf("storm only landed %d tasks (want >= %d); kills too aggressive", len(all), minSubmitted)
	}
	t.Logf("storm submitted %d tasks across %d lives", len(all), kills+1)

	// Every acknowledged task must reach a terminal state...
	vc := newClient(httpAddr, tok)
	firstTerminal := make(map[protocol.UUID]protocol.TaskState, len(all))
	poll := func() (pending int) {
		for start := 0; start < len(all); start += 100 {
			end := start + 100
			if end > len(all) {
				end = len(all)
			}
			sts, err := vc.TaskStatuses(all[start:end])
			if err != nil {
				t.Fatalf("batch status: %v", err)
			}
			for _, st := range sts {
				if !st.State.Terminal() {
					pending++
					continue
				}
				if prev, ok := firstTerminal[st.TaskID]; ok && prev != st.State {
					t.Fatalf("task %s changed terminal state: %s -> %s", st.TaskID, prev, st.State)
				}
				firstTerminal[st.TaskID] = st.State
			}
		}
		return pending
	}
	deadline := time.Now().Add(90 * time.Second)
	for {
		pending := poll()
		if pending == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d/%d tasks never reached a terminal state after recovery", pending, len(all))
		}
		time.Sleep(100 * time.Millisecond)
	}
	// ... and exactly one: re-poll to confirm no terminal state flips.
	for i := 0; i < 3; i++ {
		time.Sleep(100 * time.Millisecond)
		poll()
	}
	states := map[protocol.TaskState]int{}
	for _, st := range firstTerminal {
		states[st]++
	}
	t.Logf("terminal states: %v", states)
	if states[protocol.StateSuccess] != len(all) {
		t.Errorf("want all %d tasks Success, got %v", len(all), states)
	}

	// The recovery path itself must have run: the durable registries count
	// replayed WAL records, exported on /metrics of the current life.
	resp, err := http.Get("http://" + httpAddr + "/metrics?token=" + tok)
	if err != nil {
		t.Fatalf("scrape metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	m := regexp.MustCompile(`gc_durable_wal_replayed_total (\d+)`).FindStringSubmatch(string(body))
	if m == nil {
		t.Fatalf("gc_durable_wal_replayed_total missing from /metrics")
	}
	if m[1] == "0" {
		t.Errorf("wal_replayed_total = 0: the final life recovered nothing, suite proved nothing")
	}
	for _, series := range []string{"gc_durable_wal_appends_total", "gc_durable_wal_fsync_seconds", "gc_durable_snapshot_age_seconds"} {
		if !strings.Contains(string(body), series) {
			t.Errorf("expected %s on /metrics", series)
		}
	}
}
