package endpoint

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/registry"
	"globuscompute/internal/shellfn"
)

func TestAgentActivityAndLoad(t *testing.T) {
	h := newHarness(t, false)
	before := h.agent.LastActivity()
	rc := h.results(t)
	h.submit(t, pythonTask(t, "identity", 1))
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess {
		t.Fatalf("result %+v", res)
	}
	if !h.agent.LastActivity().After(before) {
		t.Error("activity timestamp not advanced")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		l := h.agent.SnapshotLoad()
		if l.TasksReceived >= 1 && l.ResultsPublished >= 1 && l.TotalWorkers > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("load = %+v", h.agent.SnapshotLoad())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The agent quiesces to not-busy after the task drains.
	deadline = time.Now().Add(2 * time.Second)
	for h.agent.Busy() {
		if time.Now().After(deadline) {
			t.Fatal("agent stuck busy")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestMalformedTaskDeadLetters(t *testing.T) {
	h := newHarness(t, false)
	h.brk.Publish("tasks."+string(h.epID), []byte("not json"))
	deadline := time.Now().Add(2 * time.Second)
	dlq := "tasks." + string(h.epID) + broker.DeadLetterSuffix
	for {
		if d, err := h.brk.Depth(dlq); err == nil && d == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("poison task never dead-lettered")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if h.agent.Metrics.Counter("dead_lettered").Value() != 1 {
		t.Error("dead-letter counter not incremented")
	}
	// The poison left the task queue for good (rejected, not redelivered
	// forever) and the pipeline is healthy: a subsequent task flows end to
	// end and the DLQ depth holds at one.
	results := h.results(t)
	task := pythonTask(t, "identity", "after-poison")
	h.submit(t, task)
	res := nextResult(t, results)
	if res.TaskID != task.ID || res.State != protocol.StateSuccess {
		t.Fatalf("post-poison result = %+v, want success for %s", res, task.ID)
	}
	if d, err := h.brk.Depth(dlq); err != nil || d != 1 {
		t.Errorf("dlq depth = %d (%v), want 1 — poison must not redeliver", d, err)
	}
	if d, err := h.brk.Depth("tasks." + string(h.epID)); err != nil || d != 0 {
		t.Errorf("task queue depth = %d (%v), want 0", d, err)
	}
}

func TestRunnerProxyResolutionAndResultProxying(t *testing.T) {
	// Unit-level runner test: proxied args resolve, large results proxy.
	store, err := proxystore.NewStore("unit", proxystore.NewMemoryConnector(), 4)
	if err != nil {
		t.Fatal(err)
	}
	preg := proxystore.NewRegistry()
	preg.Register(store)
	run := NewRunnerFrom(RunnerConfig{
		Registry:    registry.Builtins(),
		Shell:       shellfn.Options{},
		Proxies:     preg,
		ProxyStore:  store,
		ProxyPolicy: proxystore.Policy{MinSize: 128},
	})

	big := strings.Repeat("z", 4096)
	proxy, err := store.Put(big)
	if err != nil {
		t.Fatal(err)
	}
	refJSON, _ := json.Marshal(proxy.Reference())
	payload, _ := protocol.EncodePayload(protocol.PythonSpec{
		Entrypoint: "identity",
		Args:       []json.RawMessage{refJSON},
	})
	task := protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: payload}
	res := run(t.Context(), task, engine.WorkerInfo{ID: "w", Node: "n"})
	if res.State != protocol.StateSuccess {
		t.Fatalf("result %+v", res)
	}
	// The output is itself a proxied reference (4 kB > 128 B policy).
	var ref proxystore.Reference
	if err := json.Unmarshal(res.Output, &ref); err != nil || ref.Key == "" {
		t.Fatalf("output not a reference: %.60s (%v)", res.Output, err)
	}
	resolved, err := preg.ResolveReference(ref)
	if err != nil {
		t.Fatal(err)
	}
	if len(resolved) == 0 {
		t.Fatal("empty resolved result")
	}
}

func TestRunnerProxyResolutionFailure(t *testing.T) {
	preg := proxystore.NewRegistry() // no stores registered
	run := NewRunnerFrom(RunnerConfig{
		Registry: registry.Builtins(),
		Proxies:  preg,
	})
	refJSON, _ := json.Marshal(proxystore.Reference{Store: "ghost", Key: "k", Size: 1})
	payload, _ := protocol.EncodePayload(protocol.PythonSpec{
		Entrypoint: "identity",
		Args:       []json.RawMessage{refJSON},
	})
	task := protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: payload}
	res := run(t.Context(), task, engine.WorkerInfo{})
	if res.State != protocol.StateFailed || !strings.Contains(res.Error, "resolve arg") {
		t.Errorf("result %+v", res)
	}
}

func TestRunnerUnsupportedKind(t *testing.T) {
	run := NewRunner(registry.Builtins(), shellfn.Options{}, nil)
	task := protocol.Task{ID: protocol.NewUUID(), Kind: "fortran", Payload: []byte("{}")}
	res := run(t.Context(), task, engine.WorkerInfo{})
	if res.State != protocol.StateFailed {
		t.Errorf("result %+v", res)
	}
}
