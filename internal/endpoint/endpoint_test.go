package endpoint

import (
	"encoding/json"

	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/registry"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/shellfn"
)

type harness struct {
	brk   *broker.Broker
	agent *Agent
	epID  protocol.UUID
	objs  *objectstore.Store
}

func newHarness(t *testing.T, withMPI bool) *harness {
	t.Helper()
	brk := broker.New()
	epID := protocol.NewUUID()
	brk.Declare("tasks." + string(epID))
	brk.Declare("results." + string(epID))

	objs := objectstore.New()
	reg := registry.Builtins()
	eng, err := engine.New(engine.Config{
		Provider:   provider.NewLocal(2),
		Run:        NewRunner(reg, shellfn.Options{SandboxRoot: t.TempDir()}, objs),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		EndpointID: epID,
		Conn:       broker.LocalConn(brk),
		Engine:     eng,
		Objects:    objs,
	}
	if withMPI {
		sched := scheduler.SimpleCluster(2)
		t.Cleanup(sched.Close)
		prov, _ := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: 2})
		mpi, err := mpiengine.New(mpiengine.Config{Provider: prov})
		if err != nil {
			t.Fatal(err)
		}
		cfg.MPI = mpi
	}
	agent, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		agent.Stop()
		brk.Close()
	})
	return &harness{brk: brk, agent: agent, epID: epID, objs: objs}
}

// submit publishes a task to the agent's queue.
func (h *harness) submit(t *testing.T, task protocol.Task) {
	t.Helper()
	task.EndpointID = h.epID
	body, err := json.Marshal(task)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.brk.Publish("tasks."+string(h.epID), body); err != nil {
		t.Fatal(err)
	}
}

// results consumes the endpoint result queue.
func (h *harness) results(t *testing.T) *broker.Consumer {
	t.Helper()
	c, err := h.brk.Consume("results."+string(h.epID), 16)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func nextResult(t *testing.T, c *broker.Consumer) protocol.Result {
	t.Helper()
	select {
	case m := <-c.Messages():
		var res protocol.Result
		if err := json.Unmarshal(m.Body, &res); err != nil {
			t.Fatal(err)
		}
		c.Ack(m.Tag)
		return res
	case <-time.After(10 * time.Second):
		t.Fatal("no result")
		return protocol.Result{}
	}
}

func pythonTask(t *testing.T, entrypoint string, args ...any) protocol.Task {
	t.Helper()
	rawArgs := make([]json.RawMessage, len(args))
	for i, a := range args {
		b, err := json.Marshal(a)
		if err != nil {
			t.Fatal(err)
		}
		rawArgs[i] = b
	}
	payload, err := protocol.EncodePayload(protocol.PythonSpec{Entrypoint: entrypoint, Args: rawArgs})
	if err != nil {
		t.Fatal(err)
	}
	return protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: payload}
}

func TestPythonTaskExecution(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	h.submit(t, pythonTask(t, "add", 1, 2, 3))
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess {
		t.Fatalf("result: %+v", res)
	}
	if string(res.Output) != "6" {
		t.Errorf("output = %s", res.Output)
	}
	if res.EndpointID != h.epID {
		t.Errorf("endpoint = %s", res.EndpointID)
	}
}

func TestPythonTaskError(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	h.submit(t, pythonTask(t, "fail", "kaboom"))
	res := nextResult(t, rc)
	if res.State != protocol.StateFailed || res.Error != "kaboom" {
		t.Errorf("result: %+v", res)
	}
}

func TestUnknownEntrypointFails(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	h.submit(t, pythonTask(t, "nonexistent"))
	res := nextResult(t, rc)
	if res.State != protocol.StateFailed {
		t.Errorf("result: %+v", res)
	}
}

func TestShellTaskExecution(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "echo from-shell"})
	h.submit(t, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindShell, Payload: payload})
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess {
		t.Fatalf("result: %+v", res)
	}
	var sr protocol.ShellResult
	if err := protocol.DecodePayload(res.Output, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Stdout != "from-shell" || sr.ReturnCode != 0 {
		t.Errorf("shell result: %+v", sr)
	}
}

func TestShellWalltimeThroughAgent(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "sleep 2", WalltimeSec: 0.1})
	h.submit(t, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindShell, Payload: payload})
	res := nextResult(t, rc)
	var sr protocol.ShellResult
	if err := protocol.DecodePayload(res.Output, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.ReturnCode != 124 {
		t.Errorf("rc = %d, want 124", sr.ReturnCode)
	}
}

func TestMPITaskThroughAgent(t *testing.T) {
	h := newHarness(t, true)
	rc := h.results(t)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "echo $GC_NODE"})
	h.submit(t, protocol.Task{
		ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload,
		Resources: protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1},
	})
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess {
		t.Fatalf("result: %+v", res)
	}
	var sr protocol.ShellResult
	protocol.DecodePayload(res.Output, &sr)
	if len(sr.Stdout) == 0 {
		t.Error("empty MPI stdout")
	}
}

func TestMPITaskWithoutMPIEngineFails(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	payload, _ := protocol.EncodePayload(protocol.ShellSpec{Command: "true"})
	h.submit(t, protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: payload})
	res := nextResult(t, rc)
	if res.State != protocol.StateFailed {
		t.Errorf("result: %+v", res)
	}
}

func TestPayloadRefResolution(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	task := pythonTask(t, "identity", "big-payload-value")
	key, err := h.objs.PutContent(task.Payload)
	if err != nil {
		t.Fatal(err)
	}
	task.Payload = nil
	task.PayloadRef = key
	h.submit(t, task)
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess {
		t.Fatalf("result: %+v", res)
	}
	if string(res.Output) != `"big-payload-value"` {
		t.Errorf("output = %s", res.Output)
	}
}

func TestMalformedTaskDropped(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	h.brk.Publish("tasks."+string(h.epID), []byte("not json"))
	// A good task after the poison one still executes.
	h.submit(t, pythonTask(t, "identity", "after-poison"))
	res := nextResult(t, rc)
	if res.State != protocol.StateSuccess || string(res.Output) != `"after-poison"` {
		t.Errorf("result: %+v", res)
	}
}

func TestManyTasksThroughAgent(t *testing.T) {
	h := newHarness(t, false)
	rc := h.results(t)
	const n = 50
	for i := 0; i < n; i++ {
		h.submit(t, pythonTask(t, "identity", i))
	}
	seen := map[string]bool{}
	for i := 0; i < n; i++ {
		res := nextResult(t, rc)
		if res.State != protocol.StateSuccess {
			t.Fatalf("result %d: %+v", i, res)
		}
		seen[string(res.Output)] = true
	}
	if len(seen) != n {
		t.Errorf("distinct outputs = %d, want %d", len(seen), n)
	}
}

func TestHeartbeats(t *testing.T) {
	brk := broker.New()
	defer brk.Close()
	epID := protocol.NewUUID()
	brk.Declare("tasks." + string(epID))
	brk.Declare("results." + string(epID))
	var online, offline atomic.Int64
	eng, _ := engine.New(engine.Config{
		Provider:   provider.NewLocal(1),
		Run:        NewRunner(registry.Builtins(), shellfn.Options{}, nil),
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
	})
	agent, err := New(Config{
		EndpointID: epID,
		Conn:       broker.LocalConn(brk),
		Engine:     eng,
		Heartbeat: func(up bool) {
			if up {
				online.Add(1)
			} else {
				offline.Add(1)
			}
		},
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	agent.Stop()
	if online.Load() < 2 {
		t.Errorf("online heartbeats = %d, want >= 2", online.Load())
	}
	if offline.Load() != 1 {
		t.Errorf("offline heartbeats = %d, want 1", offline.Load())
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	brk := broker.New()
	defer brk.Close()
	if _, err := New(Config{EndpointID: protocol.NewUUID(), Conn: broker.LocalConn(brk)}); err == nil {
		t.Error("missing engine accepted")
	}
	if _, err := New(Config{EndpointID: "bad", Conn: broker.LocalConn(brk)}); err == nil {
		t.Error("bad endpoint ID accepted")
	}
}
