package endpoint

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/trace"
)

// fakeSub is a deterministic Subscription: deliveries are preloaded into a
// buffered channel and every acknowledgement is recorded. It has no AckBatch
// method, modeling an old broker / capability-less wrapper.
type fakeSub struct {
	msgs chan broker.Message

	mu         sync.Mutex
	acks       []uint64
	ackBatches [][]uint64
	rejects    []uint64
	cancelOnce sync.Once
}

func newFakeSub(buf int) *fakeSub {
	return &fakeSub{msgs: make(chan broker.Message, buf)}
}

func (s *fakeSub) Messages() <-chan broker.Message { return s.msgs }

func (s *fakeSub) Ack(tag uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.acks = append(s.acks, tag)
	return nil
}

func (s *fakeSub) Nack(tag uint64) error { return nil }

func (s *fakeSub) Reject(tag uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rejects = append(s.rejects, tag)
	return nil
}

func (s *fakeSub) Cancel() error {
	s.cancelOnce.Do(func() { close(s.msgs) })
	return nil
}

func (s *fakeSub) ackedTags() []uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]uint64(nil), s.acks...)
	for _, b := range s.ackBatches {
		out = append(out, b...)
	}
	return out
}

// batchSub adds the AckBatch capability on top of fakeSub.
type batchSub struct{ *fakeSub }

func (s *batchSub) AckBatch(tags []uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ackBatches = append(s.ackBatches, append([]uint64(nil), tags...))
	return nil
}

// fakeConn records publishes. Like fakeSub it deliberately lacks the batch
// capability; batchConn layers it on. hold, when set, blocks every publish
// until released so a test can pile results behind in-flight flushes.
type fakeConn struct {
	sub broker.Subscription

	mu      sync.Mutex
	singles [][]byte
	batches [][][]byte
	hold    chan struct{}
	waiting int
}

func (c *fakeConn) Declare(queue string) error { return nil }
func (c *fakeConn) Delete(queue string) error  { return nil }
func (c *fakeConn) Publish(queue string, body []byte) error {
	return c.PublishTraced(queue, body, nil)
}

// gate blocks the caller on the hold channel (when set), tracking how many
// publishes are in flight.
func (c *fakeConn) gate() {
	c.mu.Lock()
	hold := c.hold
	c.waiting++
	c.mu.Unlock()
	if hold != nil {
		<-hold
	}
	c.mu.Lock()
	c.waiting--
	c.mu.Unlock()
}

func (c *fakeConn) inFlight() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.waiting
}

func (c *fakeConn) PublishTraced(queue string, body []byte, tc *trace.Context) error {
	c.gate()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.singles = append(c.singles, append([]byte(nil), body...))
	return nil
}

func (c *fakeConn) Subscribe(queue string, prefetch int) (broker.Subscription, error) {
	return c.sub, nil
}

func (c *fakeConn) counts() (singles int, batches [][][]byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.singles), append([][][]byte(nil), c.batches...)
}

func (c *fakeConn) totalPublished() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := len(c.singles)
	for _, b := range c.batches {
		n += len(b)
	}
	return n
}

// batchConn adds the PublishBatch capability.
type batchConn struct{ *fakeConn }

func (c *batchConn) PublishBatch(queue string, bodies [][]byte, traces []*trace.Context) error {
	c.gate()
	c.mu.Lock()
	defer c.mu.Unlock()
	cp := make([][]byte, len(bodies))
	for i, b := range bodies {
		cp[i] = append([]byte(nil), b...)
	}
	c.batches = append(c.batches, cp)
	return nil
}

// pipelineAgent wires an agent over a fake conn and a caller-supplied runner.
func pipelineAgent(t *testing.T, conn broker.Conn, run engine.TaskRunner, mut func(*Config)) *Agent {
	t.Helper()
	eng, err := engine.New(engine.Config{
		Provider:   provider.NewLocal(2),
		Run:        run,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
		WorkersPerNode: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{EndpointID: protocol.NewUUID(), Conn: conn, Engine: eng}
	if mut != nil {
		mut(&cfg)
	}
	agent, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agent.Stop)
	return agent
}

func instantRunner(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
	return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
}

func loadTask(t *testing.T, sub *fakeSub, tag uint64, payload string) {
	t.Helper()
	body, err := json.Marshal(protocol.Task{
		ID: protocol.NewUUID(), Kind: protocol.KindPython, Payload: []byte(payload),
	})
	if err != nil {
		t.Fatal(err)
	}
	sub.msgs <- broker.Message{Tag: tag, Body: body}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestPipelineBatchedIntakeAcksInOneBatch preloads a burst of deliveries and
// checks one intake wakeup drains them all: a single ack_batch round trip
// carrying every tag, and one intake_batches tick.
func TestPipelineBatchedIntakeAcksInOneBatch(t *testing.T) {
	sub := &batchSub{newFakeSub(32)}
	conn := &batchConn{&fakeConn{sub: sub}}
	const n = 8
	for i := 0; i < n; i++ {
		loadTask(t, sub.fakeSub, uint64(100+i), fmt.Sprintf(`"p%d"`, i))
	}
	agent := pipelineAgent(t, conn, instantRunner, func(c *Config) {
		c.DisableAdaptivePrefetch = true // fixed budget => one deterministic drain
	})

	waitFor(t, "all results published", func() bool { return conn.totalPublished() == n })
	if got := agent.Metrics.Counter("tasks_received").Value(); got != n {
		t.Errorf("tasks_received = %d, want %d", got, n)
	}
	if got := agent.Metrics.Counter("intake_batches").Value(); got != 1 {
		t.Errorf("intake_batches = %d, want 1 (single drain)", got)
	}
	sub.mu.Lock()
	batches, singles := len(sub.ackBatches), len(sub.acks)
	var batched int
	if batches == 1 {
		batched = len(sub.ackBatches[0])
	}
	sub.mu.Unlock()
	if batches != 1 || batched != n || singles != 0 {
		t.Errorf("acks: %d batch calls (first=%d tags), %d singles; want 1 batch of %d",
			batches, batched, singles, n)
	}
}

// TestPipelineEgressGroupCommit holds every publish in flight while results
// pile up, then checks the backlog coalesces: with at most egressFlightCap
// flushes outstanding, the queued results must group-commit into
// publish_batch flushes rather than going out one by one — while the lone
// first result still uses the classic traced publish envelope.
func TestPipelineEgressGroupCommit(t *testing.T) {
	sub := &batchSub{newFakeSub(8)}
	release := make(chan struct{})
	conn := &batchConn{&fakeConn{sub: sub, hold: release}}
	agent := pipelineAgent(t, conn, instantRunner, nil)

	agent.enqueueResult(protocol.Result{TaskID: protocol.NewUUID(), State: protocol.StateSuccess})
	// Wait until the egress loop has the first flush in flight, then pile
	// more results behind the held publishes.
	waitFor(t, "first flush in flight", func() bool { return conn.inFlight() == 1 })
	const rest = 8
	for i := 0; i < rest; i++ {
		agent.enqueueResult(protocol.Result{TaskID: protocol.NewUUID(), State: protocol.StateSuccess})
	}
	waitFor(t, "results buffered", func() bool { return int(agent.egressBacklog.Load()) >= rest+1 })
	close(release)

	const total = rest + 1
	waitFor(t, "all results published", func() bool { return conn.totalPublished() == total })
	singles, batches := conn.counts()
	if singles < 1 {
		t.Error("no classic publish recorded; the lone first result must use PublishTraced")
	}
	// 9 results against a bounded number of flush slots: at least one flush
	// had to carry more than one result, via the batch capability.
	if len(batches) == 0 {
		t.Errorf("no publish_batch flushes (%d singles); queued results failed to coalesce", singles)
	}
	flushes := singles + len(batches)
	if flushes >= total {
		t.Errorf("%d flushes for %d results; group commit never batched (sizes %v)", flushes, total, batchSizes(batches))
	}
	if got := agent.Metrics.Counter("egress_flushes").Value(); got != int64(flushes) {
		t.Errorf("egress_flushes = %d, want %d", got, flushes)
	}
	waitFor(t, "backlog drained", func() bool { return agent.egressBacklog.Load() == 0 })
}

func batchSizes(batches [][][]byte) []int {
	out := make([]int, len(batches))
	for i, b := range batches {
		out[i] = len(b)
	}
	return out
}

// TestPipelineOldBrokerInterop runs the pipelined agent against a conn and
// subscription with no batch capabilities at all: acks degrade to per-tag
// Ack, flushes degrade to per-result traced publishes, nothing is lost.
func TestPipelineOldBrokerInterop(t *testing.T) {
	sub := newFakeSub(32)
	conn := &fakeConn{sub: sub}
	const n = 10
	for i := 0; i < n; i++ {
		loadTask(t, sub, uint64(200+i), fmt.Sprintf(`"p%d"`, i))
	}
	agent := pipelineAgent(t, conn, instantRunner, nil)

	waitFor(t, "all results published", func() bool { return conn.totalPublished() == n })
	singles, batches := conn.counts()
	if len(batches) != 0 {
		t.Errorf("batch publishes on a capability-less conn: %v", batchSizes(batches))
	}
	if singles != n {
		t.Errorf("classic publishes = %d, want %d", singles, n)
	}
	waitFor(t, "all tags acked", func() bool { return len(sub.ackedTags()) == n })
	seen := map[uint64]bool{}
	for _, tag := range sub.ackedTags() {
		seen[tag] = true
	}
	for i := 0; i < n; i++ {
		if !seen[uint64(200+i)] {
			t.Errorf("tag %d never acked", 200+i)
		}
	}
	if got := agent.Metrics.Counter("results_published").Value(); got != n {
		t.Errorf("results_published = %d, want %d", got, n)
	}
}

// TestPipelineMalformedInBatchDeadLetters mixes a poison body into an intake
// batch: the poison is rejected to the DLQ exactly once, the good tasks run
// and ack, and nothing redelivers forever.
func TestPipelineMalformedInBatchDeadLetters(t *testing.T) {
	sub := &batchSub{newFakeSub(16)}
	conn := &batchConn{&fakeConn{sub: sub}}
	loadTask(t, sub.fakeSub, 1, `"before"`)
	sub.msgs <- broker.Message{Tag: 2, Body: []byte("not json")}
	loadTask(t, sub.fakeSub, 3, `"after"`)
	agent := pipelineAgent(t, conn, instantRunner, func(c *Config) {
		c.DisableAdaptivePrefetch = true
	})

	waitFor(t, "good tasks published", func() bool { return conn.totalPublished() == 2 })
	if got := agent.Metrics.Counter("dead_lettered").Value(); got != 1 {
		t.Errorf("dead_lettered = %d, want 1", got)
	}
	sub.mu.Lock()
	rejects := append([]uint64(nil), sub.rejects...)
	sub.mu.Unlock()
	if len(rejects) != 1 || rejects[0] != 2 {
		t.Errorf("rejects = %v, want exactly [2]", rejects)
	}
	acked := sub.ackedTags()
	if len(acked) != 2 {
		t.Errorf("acked = %v, want tags 1 and 3", acked)
	}
	for _, tag := range acked {
		if tag == 2 {
			t.Error("poison tag 2 was acked instead of rejected")
		}
	}
	// A task submitted after the poison still flows end to end.
	loadTask(t, sub.fakeSub, 4, `"postmortem"`)
	waitFor(t, "post-poison task published", func() bool { return conn.totalPublished() == 3 })
}

// TestAdaptivePrefetchBoundsPending saturates a gated one-worker engine with
// a deep backlog of deliveries and checks intake stops pulling: the engine's
// pending queue stays near the high-water mark instead of absorbing the
// whole queue, and once the gate opens everything completes.
func TestAdaptivePrefetchBoundsPending(t *testing.T) {
	sub := &batchSub{newFakeSub(64)}
	conn := &batchConn{&fakeConn{sub: sub}}
	gate := make(chan struct{})
	gated := func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return protocol.Result{State: protocol.StateSuccess, Output: task.Payload}
	}
	const n = 24
	eng, err := engine.New(engine.Config{
		Provider:   provider.NewLocal(1),
		Run:        gated,
		InitBlocks: 1, MinBlocks: 1, MaxBlocks: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// A small intake batch keeps the backlog high-water mark (floored at one
	// batch) well under the 24 queued deliveries, so the bound is observable.
	agent, err := New(Config{
		EndpointID: protocol.NewUUID(), Conn: conn, Engine: eng,
		IntakeBatch: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := agent.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		select {
		case <-gate:
		default:
			close(gate)
		}
		agent.Stop()
	})

	// Offer the backlog only once the worker is registered: with no workers
	// yet, adaptive prefetch deliberately doesn't throttle (blocking intake
	// on an engine scaling from zero would deadlock the demand signal), and
	// this test is about the steady-state bound.
	waitFor(t, "worker registration", func() bool { return eng.Stats().TotalWorkers >= 1 })
	for i := 0; i < n; i++ {
		loadTask(t, sub.fakeSub, uint64(i+1), fmt.Sprintf(`"p%d"`, i))
	}

	// Let intake run against the saturated engine, tracking the deepest
	// engine backlog it ever builds.
	maxPending := 0
	for deadline := time.Now().Add(300 * time.Millisecond); time.Now().Before(deadline); {
		if p := eng.Stats().PendingTasks; p > maxPending {
			maxPending = p
		}
		time.Sleep(2 * time.Millisecond)
	}
	// One worker, intake batch 4: the high-water mark is 4, so intake must
	// hold well short of the full 24-task backlog. Allow slack for the
	// trickle in flight.
	const bound = 8
	if maxPending > bound {
		t.Errorf("engine pending reached %d with adaptive prefetch; want <= %d", maxPending, bound)
	}
	if conn.totalPublished() != 0 {
		t.Errorf("results published while gate closed: %d", conn.totalPublished())
	}

	close(gate)
	waitFor(t, "all results published after release", func() bool { return conn.totalPublished() == n })
}
