// Package endpoint implements the Globus Compute Agent for a single-user
// endpoint: it consumes the endpoint's task queue from the broker, routes
// tasks to the pilot-job engine (python/shell kinds) or the MPI engine (MPI
// kind), and publishes results to the endpoint's result queue, heartbeating
// its status to the web service.
package endpoint

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/metrics"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/protocol"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/registry"
	"globuscompute/internal/shellfn"
	"globuscompute/internal/trace"
)

// ObjectFetcher resolves payload references spilled to the object store.
type ObjectFetcher interface {
	Get(key string) ([]byte, error)
}

// Config assembles an agent.
type Config struct {
	EndpointID protocol.UUID
	Conn       broker.Conn
	// Engine executes python and shell tasks (required).
	Engine *engine.Engine
	// MPI executes MPI tasks (optional; MPI tasks fail without it).
	MPI *mpiengine.Engine
	// Objects resolves PayloadRef tasks (optional).
	Objects ObjectFetcher
	// Heartbeat, when set, is called periodically with online=true and at
	// shutdown with online=false.
	Heartbeat         func(online bool)
	HeartbeatInterval time.Duration
	// Prefetch bounds in-flight task deliveries (default 32).
	Prefetch int
	// Tracer, when set, records an endpoint.dispatch span per traced task
	// and carries trace context on published results. Nil disables tracing.
	Tracer *trace.Tracer
}

// Agent is a running endpoint.
type Agent struct {
	cfg Config

	mu      sync.Mutex
	started bool
	stopped bool

	sub  broker.Subscription
	done chan struct{}
	wg   sync.WaitGroup

	// lastActivity is the unix-nano time of the last task receipt or
	// result publication, used by multi-user endpoints to reap idle user
	// endpoints.
	lastActivity atomic.Int64

	Metrics *metrics.Registry
}

// LastActivity reports when the agent last received a task or published a
// result (start time if never).
func (a *Agent) LastActivity() time.Time {
	return time.Unix(0, a.lastActivity.Load())
}

// Load is the agent's self-reported utilization, carried in heartbeats.
type Load struct {
	PendingTasks     int
	TotalWorkers     int
	FreeWorkers      int
	TasksReceived    int64
	ResultsPublished int64
}

// SnapshotLoad samples the agent's current utilization.
func (a *Agent) SnapshotLoad() Load {
	var l Load
	if a.cfg.Engine != nil {
		s := a.cfg.Engine.Stats()
		l.PendingTasks = s.PendingTasks
		l.TotalWorkers = s.TotalWorkers
		l.FreeWorkers = s.FreeWorkers
	}
	if a.cfg.MPI != nil {
		s := a.cfg.MPI.Stats()
		l.PendingTasks += s.Pending
		l.TotalWorkers += s.TotalNodes
		l.FreeWorkers += s.FreeNodes
	}
	l.TasksReceived = a.Metrics.Counter("tasks_received").Value()
	l.ResultsPublished = a.Metrics.Counter("results_published").Value()
	return l
}

// Busy reports whether any tasks are pending or executing.
func (a *Agent) Busy() bool {
	if a.cfg.Engine != nil {
		s := a.cfg.Engine.Stats()
		if s.PendingTasks > 0 || s.TasksCompleted < s.TasksSubmitted {
			return true
		}
	}
	if a.cfg.MPI != nil {
		s := a.cfg.MPI.Stats()
		if s.Pending > 0 || s.FreeNodes < s.TotalNodes {
			return true
		}
	}
	return false
}

// New validates cfg and builds an agent.
func New(cfg Config) (*Agent, error) {
	if !cfg.EndpointID.Valid() {
		return nil, fmt.Errorf("endpoint: invalid endpoint ID %q", cfg.EndpointID)
	}
	if cfg.Conn == nil {
		return nil, errors.New("endpoint: broker connection required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("endpoint: engine required")
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 32
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	a := &Agent{cfg: cfg, done: make(chan struct{}), Metrics: metrics.NewRegistry()}
	a.lastActivity.Store(time.Now().UnixNano())
	return a, nil
}

// TaskQueue and ResultQueue mirror the web service naming (duplicated here
// to avoid an import cycle).
func taskQueue(ep protocol.UUID) string   { return "tasks." + string(ep) }
func resultQueue(ep protocol.UUID) string { return "results." + string(ep) }

// Start launches the engines, begins consuming tasks, and starts result
// forwarding and heartbeats.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return errors.New("endpoint: already started")
	}
	a.started = true
	a.mu.Unlock()

	if err := a.cfg.Engine.Start(); err != nil {
		return fmt.Errorf("endpoint: start engine: %w", err)
	}
	if a.cfg.MPI != nil {
		if err := a.cfg.MPI.Start(); err != nil {
			return fmt.Errorf("endpoint: start mpi engine: %w", err)
		}
	}
	sub, err := a.cfg.Conn.Subscribe(taskQueue(a.cfg.EndpointID), a.cfg.Prefetch)
	if err != nil {
		return fmt.Errorf("endpoint: consume tasks: %w", err)
	}
	a.sub = sub

	a.wg.Add(2)
	go a.taskLoop()
	go a.forwardResults(a.cfg.Engine.Results())
	if a.cfg.MPI != nil {
		a.wg.Add(1)
		go a.forwardResults(a.cfg.MPI.Results())
	}
	if a.cfg.Heartbeat != nil {
		a.cfg.Heartbeat(true)
		a.wg.Add(1)
		go a.heartbeatLoop()
	}
	return nil
}

// taskLoop routes deliveries into the engines.
func (a *Agent) taskLoop() {
	defer a.wg.Done()
	for m := range a.sub.Messages() {
		var task protocol.Task
		if err := json.Unmarshal(m.Body, &task); err != nil {
			log.Printf("endpoint %s: malformed task: %v", a.cfg.EndpointID, err)
			// Poison messages dead-letter to tasks.<ep>.dlq for operator
			// inspection rather than redelivering forever.
			if rerr := a.sub.Reject(m.Tag); rerr != nil {
				_ = a.sub.Ack(m.Tag)
			}
			a.Metrics.Counter("dead_lettered").Inc()
			continue
		}
		// Continue the trace: the delivery context (broker transit span) is
		// preferred; the task body's context covers untraced transports.
		parent := m.Trace
		if !parent.Valid() {
			parent = task.Trace
		}
		sp := a.cfg.Tracer.StartSpan(parent, "endpoint.dispatch")
		sp.SetAttr("endpoint", string(a.cfg.EndpointID))
		if next := sp.Context(); next != nil {
			task.Trace = next
		}
		var err error
		if task.Kind == protocol.KindMPI {
			if a.cfg.MPI == nil {
				a.publishResult(protocol.Result{
					TaskID: task.ID, State: protocol.StateFailed,
					Error: "endpoint has no MPI engine configured",
					Trace: task.Trace,
				})
				_ = a.sub.Ack(m.Tag)
				a.Metrics.Counter("rejected_mpi").Inc()
				sp.EndStatus("error")
				continue
			}
			err = a.cfg.MPI.Submit(task)
		} else {
			err = a.cfg.Engine.Submit(task)
		}
		sp.End()
		if err != nil {
			// Invalid tasks fail permanently; transient backlog errors
			// would also land here — report rather than redeliver forever.
			a.publishResult(protocol.Result{
				TaskID: task.ID, State: protocol.StateFailed, Error: err.Error(),
				Trace: task.Trace,
			})
			a.Metrics.Counter("submit_errors").Inc()
		}
		_ = a.sub.Ack(m.Tag)
		a.Metrics.Counter("tasks_received").Inc()
		a.lastActivity.Store(time.Now().UnixNano())
	}
}

// forwardResults publishes engine results to the result queue.
func (a *Agent) forwardResults(ch <-chan protocol.Result) {
	defer a.wg.Done()
	for res := range ch {
		a.publishResult(res)
	}
}

func (a *Agent) publishResult(res protocol.Result) {
	res.EndpointID = a.cfg.EndpointID
	body, err := json.Marshal(res)
	if err != nil {
		log.Printf("endpoint %s: marshal result: %v", a.cfg.EndpointID, err)
		return
	}
	if err := a.cfg.Conn.PublishTraced(resultQueue(a.cfg.EndpointID), body, res.Trace); err != nil {
		log.Printf("endpoint %s: publish result: %v", a.cfg.EndpointID, err)
		return
	}
	a.Metrics.Counter("results_published").Inc()
	a.lastActivity.Store(time.Now().UnixNano())
}

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			a.cfg.Heartbeat(true)
		}
	}
}

// Stop cancels consumption, drains the engines, and heartbeats offline.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()

	close(a.done)
	_ = a.sub.Cancel()
	a.cfg.Engine.Stop()
	if a.cfg.MPI != nil {
		a.cfg.MPI.Stop()
	}
	a.wg.Wait()
	if a.cfg.Heartbeat != nil {
		a.cfg.Heartbeat(false)
	}
}

// RunnerConfig assembles a task runner with optional ProxyStore
// integration: proxied python arguments resolve transparently on the
// worker, and large python results are proxied back by policy (§V-B).
type RunnerConfig struct {
	Registry *registry.Registry
	Shell    shellfn.Options
	Objects  ObjectFetcher
	// Proxies resolves pass-by-reference arguments (nil = references pass
	// through untouched).
	Proxies *proxystore.Registry
	// ProxyStore + ProxyPolicy proxy large results out of band.
	ProxyStore  *proxystore.Store
	ProxyPolicy proxystore.Policy
}

// NewRunner builds the engine TaskRunner for this endpoint: python tasks
// resolve entrypoints in reg; shell tasks execute via shellfn with the
// given defaults; payload references resolve through objects.
func NewRunner(reg *registry.Registry, defaults shellfn.Options, objects ObjectFetcher) engine.TaskRunner {
	return NewRunnerFrom(RunnerConfig{Registry: reg, Shell: defaults, Objects: objects})
}

// NewRunnerFrom builds a runner with full configuration.
func NewRunnerFrom(rc RunnerConfig) engine.TaskRunner {
	reg := rc.Registry
	defaults := rc.Shell
	objects := rc.Objects
	return func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		payload := task.Payload
		if task.PayloadRef != "" {
			if objects == nil {
				return failure(task, "task payload is a reference but endpoint has no object store access")
			}
			blob, err := objects.Get(task.PayloadRef)
			if err != nil {
				return failure(task, fmt.Sprintf("fetch payload %s: %v", task.PayloadRef, err))
			}
			payload = blob
		}
		switch task.Kind {
		case protocol.KindPython:
			var spec protocol.PythonSpec
			if err := protocol.DecodePayload(payload, &spec); err != nil {
				return failure(task, err.Error())
			}
			// Transparent proxy resolution: arguments that are references
			// materialize from the store before invocation.
			if rc.Proxies != nil {
				for i, raw := range spec.Args {
					resolved, _, err := proxystore.MaybeResolve(rc.Proxies, raw)
					if err != nil {
						return failure(task, fmt.Sprintf("resolve arg %d: %v", i, err))
					}
					spec.Args[i] = resolved
				}
				for k, raw := range spec.Kwargs {
					resolved, _, err := proxystore.MaybeResolve(rc.Proxies, raw)
					if err != nil {
						return failure(task, fmt.Sprintf("resolve kwarg %s: %v", k, err))
					}
					spec.Kwargs[k] = resolved
				}
			}
			out, err := reg.Invoke(ctx, spec.Entrypoint, spec.Args, spec.Kwargs)
			if err != nil {
				return failure(task, err.Error())
			}
			encoded, err := json.Marshal(out)
			if err != nil {
				return failure(task, fmt.Sprintf("encode result: %v", err))
			}
			// Result proxying: large outputs go to the store and only the
			// reference returns through the cloud.
			if rc.ProxyStore != nil && rc.ProxyPolicy.ShouldProxy(len(encoded)) {
				refJSON, proxied, perr := proxystore.MaybeProxy(rc.ProxyStore, rc.ProxyPolicy, json.RawMessage(encoded))
				if perr != nil {
					return failure(task, fmt.Sprintf("proxy result: %v", perr))
				}
				if proxied {
					encoded = refJSON
				}
			}
			return protocol.Result{State: protocol.StateSuccess, Output: encoded}
		case protocol.KindShell:
			var spec protocol.ShellSpec
			if err := protocol.DecodePayload(payload, &spec); err != nil {
				return failure(task, err.Error())
			}
			opts := defaults
			opts.TaskID = string(task.ID)
			opts.Env = mergeEnv(defaults.Env, map[string]string{"GC_NODE": w.Node, "GC_WORKER": w.ID})
			sr, err := shellfn.ExecuteSpec(ctx, spec, opts)
			if err != nil {
				return failure(task, err.Error())
			}
			encoded, err := protocol.EncodePayload(sr)
			if err != nil {
				return failure(task, err.Error())
			}
			return protocol.Result{State: protocol.StateSuccess, Output: encoded}
		default:
			return failure(task, fmt.Sprintf("unsupported task kind %q", task.Kind))
		}
	}
}

func failure(task protocol.Task, msg string) protocol.Result {
	return protocol.Result{TaskID: task.ID, State: protocol.StateFailed, Error: msg}
}

func mergeEnv(base, extra map[string]string) map[string]string {
	out := make(map[string]string, len(base)+len(extra))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}
