// Package endpoint implements the Globus Compute Agent for a single-user
// endpoint: it consumes the endpoint's task queue from the broker, routes
// tasks to the pilot-job engine (python/shell kinds) or the MPI engine (MPI
// kind), and publishes results to the endpoint's result queue, heartbeating
// its status to the web service.
package endpoint

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/engine"
	"globuscompute/internal/metrics"
	"globuscompute/internal/mpiengine"
	"globuscompute/internal/obs"
	"globuscompute/internal/protocol"
	"globuscompute/internal/proxystore"
	"globuscompute/internal/registry"
	"globuscompute/internal/shellfn"
	"globuscompute/internal/trace"
)

// ObjectFetcher resolves payload references spilled to the object store.
type ObjectFetcher interface {
	Get(key string) ([]byte, error)
}

// ObjectStorer spills large blobs to the object store by content key — the
// write side of the pass-by-reference data plane (objectstore.Store and
// objectstore.Client both implement it).
type ObjectStorer interface {
	PutContent(data []byte) (string, error)
}

// Config assembles an agent.
type Config struct {
	EndpointID protocol.UUID
	Conn       broker.Conn
	// Engine executes python and shell tasks (required).
	Engine *engine.Engine
	// MPI executes MPI tasks (optional; MPI tasks fail without it).
	MPI *mpiengine.Engine
	// Objects resolves PayloadRef tasks (optional).
	Objects ObjectFetcher
	// Spill, with SpillThreshold > 0, spills result outputs larger than the
	// threshold to the object store on the endpoint side: the result then
	// crosses the broker as a content-addressed OutputRef instead of inline
	// bytes. A spill failure falls back to inline (correctness over
	// optimization).
	Spill          ObjectStorer
	SpillThreshold int
	// Heartbeat, when set, is called periodically with online=true and at
	// shutdown with online=false. The closure typically posts to the web
	// service and may piggyback a metrics snapshot (see SnapshotMetrics).
	Heartbeat         func(online bool)
	HeartbeatInterval time.Duration
	// MetricsInterval decimates heartbeat-piggybacked metrics snapshots:
	// SnapshotMetrics yields a delta at most once per interval (default
	// 2×HeartbeatInterval), so most heartbeats stay payload-free.
	MetricsInterval time.Duration
	// MetricsMaxSeries caps the series carried per snapshot (default 512).
	MetricsMaxSeries int
	// Log overrides the agent's structured logger (default: the process
	// pipeline's "endpoint" component, stamped with the endpoint ID).
	Log *obs.Logger
	// Prefetch bounds in-flight task deliveries (default 32).
	Prefetch int
	// IntakeBatch caps deliveries decoded, submitted, and acked per task-loop
	// wakeup (default Prefetch; 1 restores pre-pipeline single-task intake).
	IntakeBatch int
	// EgressMaxBatch caps results coalesced into one publish_batch flush
	// (default 64; 1 restores per-result publishes). A flush holding a single
	// result always degrades to a plain traced publish, so batching adds no
	// envelope change — and no latency — at idle.
	EgressMaxBatch int
	// EgressFlushWindow, when > 0, delays each egress flush by this much so a
	// burst can accumulate. Zero (the default) is pure group commit: the
	// first result flushes immediately and whatever lands while its publish
	// is in flight forms the next batch.
	EgressFlushWindow time.Duration
	// DisableAdaptivePrefetch pins the per-wakeup intake budget at
	// IntakeBatch. By default the budget scales with the engine's free
	// capacity (FreeWorkers/PendingTasks) and intake pauses entirely while
	// the engine backlog is past its high-water mark, so a saturated engine
	// stops pulling deliveries it cannot start: unacked deliveries then
	// throttle the broker at the prefetch window instead of queueing
	// unboundedly inside the agent.
	DisableAdaptivePrefetch bool
	// Tracer, when set, records an endpoint.dispatch span per traced task
	// and carries trace context on published results. Nil disables tracing.
	Tracer *trace.Tracer
}

// Agent is a running endpoint.
type Agent struct {
	cfg Config

	mu      sync.Mutex
	started bool
	stopped bool

	sub  broker.Subscription
	done chan struct{}
	wg   sync.WaitGroup

	// egress is the result pipeline: producers (the engine/MPI result
	// forwarders and the task loop, which emits submit-failure results)
	// enqueue, the egress loop group-commits to the result queue. producers
	// tracks them all so the channel closes exactly once, after the last
	// possible send.
	egress    chan protocol.Result
	producers sync.WaitGroup
	// egressBacklog counts results accepted from the engines but not yet
	// published (queued or inside an in-flight flush) — the agent-side
	// pressure signal carried in heartbeat load reports.
	egressBacklog atomic.Int64

	// ackSem bounds batch-ack round trips in flight so intake keeps
	// draining while an ack reply is on the wire; acks tracks them so
	// taskLoop exits only after the last ack lands.
	ackSem chan struct{}
	acks   sync.WaitGroup

	// lastActivity is the unix-nano time of the last task receipt or
	// result publication, used by multi-user endpoints to reap idle user
	// endpoints.
	lastActivity atomic.Int64

	// snapMu guards the piggyback snapshot state: the last absolute snapshot
	// (the delta base) and when it was taken (the decimation clock).
	snapMu     sync.Mutex
	lastSnap   metrics.Snapshot
	lastSnapAt time.Time

	log *obs.Logger

	Metrics *metrics.Registry
}

// LastActivity reports when the agent last received a task or published a
// result (start time if never).
func (a *Agent) LastActivity() time.Time {
	return time.Unix(0, a.lastActivity.Load())
}

// Load is the agent's self-reported utilization, carried in heartbeats.
type Load struct {
	PendingTasks     int
	TotalWorkers     int
	FreeWorkers      int
	TasksReceived    int64
	ResultsPublished int64
	// EgressBacklog is the number of completed results still waiting to be
	// published — pressure invisible to the engine stats but very visible to
	// clients, so MEP routing should see it.
	EgressBacklog int
}

// SnapshotLoad samples the agent's current utilization.
func (a *Agent) SnapshotLoad() Load {
	var l Load
	if a.cfg.Engine != nil {
		s := a.cfg.Engine.Stats()
		l.PendingTasks = s.PendingTasks
		l.TotalWorkers = s.TotalWorkers
		l.FreeWorkers = s.FreeWorkers
	}
	if a.cfg.MPI != nil {
		s := a.cfg.MPI.Stats()
		l.PendingTasks += s.Pending
		l.TotalWorkers += s.TotalNodes
		l.FreeWorkers += s.FreeNodes
	}
	l.TasksReceived = a.Metrics.Counter("tasks_received").Value()
	l.ResultsPublished = a.Metrics.Counter("results_published").Value()
	l.EgressBacklog = int(a.egressBacklog.Load())
	return l
}

// Busy reports whether any tasks are pending, executing, or awaiting result
// publication.
func (a *Agent) Busy() bool {
	if a.egressBacklog.Load() > 0 {
		return true
	}
	if a.cfg.Engine != nil {
		s := a.cfg.Engine.Stats()
		if s.PendingTasks > 0 || s.TasksCompleted < s.TasksSubmitted {
			return true
		}
	}
	if a.cfg.MPI != nil {
		s := a.cfg.MPI.Stats()
		if s.Pending > 0 || s.FreeNodes < s.TotalNodes {
			return true
		}
	}
	return false
}

// New validates cfg and builds an agent.
func New(cfg Config) (*Agent, error) {
	if !cfg.EndpointID.Valid() {
		return nil, fmt.Errorf("endpoint: invalid endpoint ID %q", cfg.EndpointID)
	}
	if cfg.Conn == nil {
		return nil, errors.New("endpoint: broker connection required")
	}
	if cfg.Engine == nil {
		return nil, errors.New("endpoint: engine required")
	}
	if cfg.Prefetch <= 0 {
		cfg.Prefetch = 32
	}
	if cfg.IntakeBatch <= 0 {
		cfg.IntakeBatch = cfg.Prefetch
	}
	if cfg.IntakeBatch > cfg.Prefetch {
		cfg.IntakeBatch = cfg.Prefetch
	}
	if cfg.EgressMaxBatch <= 0 {
		cfg.EgressMaxBatch = 64
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = 5 * time.Second
	}
	if cfg.MetricsInterval <= 0 {
		cfg.MetricsInterval = 2 * cfg.HeartbeatInterval
	}
	if cfg.MetricsMaxSeries <= 0 {
		cfg.MetricsMaxSeries = 512
	}
	a := &Agent{
		cfg:     cfg,
		done:    make(chan struct{}),
		egress:  make(chan protocol.Result, 2*cfg.EgressMaxBatch),
		ackSem:  make(chan struct{}, ackFlightCap),
		Metrics: metrics.NewRegistry(),
	}
	a.log = cfg.Log
	if a.log == nil {
		a.log = obs.Component("endpoint")
	}
	a.log = a.log.WithEndpoint(string(cfg.EndpointID))
	a.lastActivity.Store(time.Now().UnixNano())
	return a, nil
}

// SnapshotMetrics returns a delta-encoded snapshot of the agent's and its
// engines' registries for heartbeat piggybacking, or ok=false when the
// decimation interval has not elapsed since the last snapshot. Load gauges
// (pending_tasks, total_workers, free_workers, egress_backlog) are refreshed
// first so the fleet store sees them as series, and engine registries merge
// under engine_/mpiengine_ prefixes. The result is size-capped; values are
// absolute, so a delta lost in transit self-heals on the next change.
func (a *Agent) SnapshotMetrics(now time.Time) (metrics.Snapshot, bool) {
	a.snapMu.Lock()
	defer a.snapMu.Unlock()
	if !a.lastSnapAt.IsZero() && now.Sub(a.lastSnapAt) < a.cfg.MetricsInterval {
		return metrics.Snapshot{}, false
	}
	l := a.SnapshotLoad()
	a.Metrics.Gauge("pending_tasks").Set(int64(l.PendingTasks))
	a.Metrics.Gauge("total_workers").Set(int64(l.TotalWorkers))
	a.Metrics.Gauge("free_workers").Set(int64(l.FreeWorkers))
	a.Metrics.Gauge("egress_backlog").Set(int64(l.EgressBacklog))

	var s metrics.Snapshot
	s.Merge("", a.Metrics.TakeSnapshot())
	if a.cfg.Engine != nil {
		s.Merge("engine_", a.cfg.Engine.Metrics.TakeSnapshot())
	}
	if a.cfg.MPI != nil {
		s.Merge("mpiengine_", a.cfg.MPI.Metrics.TakeSnapshot())
	}
	s.Bound(a.cfg.MetricsMaxSeries)
	d := s.Delta(a.lastSnap)
	a.lastSnap = s
	a.lastSnapAt = now
	return d, true
}

// TaskQueue and ResultQueue mirror the web service naming (duplicated here
// to avoid an import cycle).
func taskQueue(ep protocol.UUID) string   { return "tasks." + string(ep) }
func resultQueue(ep protocol.UUID) string { return "results." + string(ep) }

// Start launches the engines, begins consuming tasks, and starts result
// forwarding and heartbeats.
func (a *Agent) Start() error {
	a.mu.Lock()
	if a.started {
		a.mu.Unlock()
		return errors.New("endpoint: already started")
	}
	a.started = true
	a.mu.Unlock()

	if err := a.cfg.Engine.Start(); err != nil {
		return fmt.Errorf("endpoint: start engine: %w", err)
	}
	if a.cfg.MPI != nil {
		if err := a.cfg.MPI.Start(); err != nil {
			return fmt.Errorf("endpoint: start mpi engine: %w", err)
		}
	}
	sub, err := a.cfg.Conn.Subscribe(taskQueue(a.cfg.EndpointID), a.cfg.Prefetch)
	if err != nil {
		return fmt.Errorf("endpoint: consume tasks: %w", err)
	}
	a.sub = sub

	a.wg.Add(2)
	a.producers.Add(2)
	go a.taskLoop()
	go a.egressLoop()
	go a.forwardResults(a.cfg.Engine.Results())
	if a.cfg.MPI != nil {
		a.producers.Add(1)
		go a.forwardResults(a.cfg.MPI.Results())
	}
	// The egress channel closes exactly once, after the task loop and every
	// engine's result stream drain; egressLoop then flushes the tail and
	// exits.
	go func() {
		a.producers.Wait()
		close(a.egress)
	}()
	if a.cfg.Heartbeat != nil {
		a.cfg.Heartbeat(true)
		a.wg.Add(1)
		go a.heartbeatLoop()
	}
	return nil
}

// taskLoop is the batched intake pump: each wakeup drains up to the intake
// budget of buffered deliveries, decodes them (in parallel for large
// drains), submits the whole batch to the engines, and acknowledges every
// tag in one ack_batch round trip.
func (a *Agent) taskLoop() {
	defer a.wg.Done()
	defer a.producers.Done()
	defer a.acks.Wait()
	batch := make([]broker.Message, 0, a.cfg.IntakeBatch)
	for {
		if !a.waitForCapacity() {
			// Stopping: keep draining so unprocessed deliveries requeue via
			// Cancel rather than stalling the channel.
		}
		m, ok := <-a.sub.Messages()
		if !ok {
			return
		}
		batch = append(batch[:0], m)
		budget := a.intakeBudget()
	drain:
		for len(batch) < budget {
			select {
			case m2, ok := <-a.sub.Messages():
				if !ok {
					break drain
				}
				batch = append(batch, m2)
			default:
				break drain
			}
		}
		a.processDeliveries(batch)
	}
}

// intakeHighWater is the engine-backlog multiple (of total workers) past
// which intake pauses entirely.
const intakeHighWater = 2

// ackFlightCap bounds concurrent batch-ack round trips (see the ack switch
// in processDeliveries).
const ackFlightCap = 2

// highWater is the engine backlog at which intake stops pulling: a multiple
// of the worker count, floored at one full intake batch so a fast-draining
// engine is never throttled below batch granularity.
func (a *Agent) highWater(totalWorkers int) int {
	hw := intakeHighWater * totalWorkers
	if hw < a.cfg.IntakeBatch {
		hw = a.cfg.IntakeBatch
	}
	return hw
}

// intakeBudget sizes the next drain. With adaptive prefetch (the default)
// it is the room left under the engine's backlog high-water mark plus one
// round of workers, clamped to [1, IntakeBatch]: an idle engine gets a full
// batch, one near saturation a trickle.
func (a *Agent) intakeBudget() int {
	maxN := a.cfg.IntakeBatch
	if a.cfg.DisableAdaptivePrefetch {
		return maxN
	}
	s := a.cfg.Engine.Stats()
	budget := a.highWater(s.TotalWorkers) + s.TotalWorkers - s.PendingTasks
	if budget < 1 {
		budget = 1
	}
	if budget > maxN {
		budget = maxN
	}
	return budget
}

// waitForCapacity blocks while the engine backlog exceeds its high-water
// mark, so a saturated engine stops pulling deliveries it cannot start.
// Messages left unacked on the broker throttle delivery at the prefetch
// window — backpressure propagates upstream instead of queueing inside the
// agent. A fast engine drains in microseconds, so the wait spins on the
// scheduler before falling back to short sleeps. Returns false when the
// agent is stopping.
func (a *Agent) waitForCapacity() bool {
	if a.cfg.DisableAdaptivePrefetch {
		return true
	}
	for spins := 0; ; spins++ {
		s := a.cfg.Engine.Stats()
		if s.TotalWorkers == 0 || s.PendingTasks <= a.highWater(s.TotalWorkers) {
			return true
		}
		if spins < 64 {
			runtime.Gosched()
			continue
		}
		select {
		case <-a.done:
			return false
		default:
		}
		time.Sleep(50 * time.Microsecond)
	}
}

// parallelDecodeMin is the drain size at which task decoding fans out
// across goroutines.
const parallelDecodeMin = 16

// processDeliveries decodes, dispatches, and acknowledges one intake batch.
func (a *Agent) processDeliveries(batch []broker.Message) {
	n := len(batch)
	tasks := make([]protocol.Task, n)
	decodeErrs := make([]error, n)
	decode := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			decodeErrs[i] = json.Unmarshal(batch[i].Body, &tasks[i])
		}
	}
	if n < parallelDecodeMin {
		decode(0, n)
	} else {
		workers := runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				decode(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Dispatch: engine tasks batch-submit under one engine lock; MPI tasks
	// submit individually (rare, and the MPI engine runs its own dispatch).
	tags := make([]uint64, 0, n)
	engTasks := make([]protocol.Task, 0, n)
	engSpans := make([]*trace.ActiveSpan, 0, n)
	received := 0
	for i := range batch {
		if decodeErrs[i] != nil {
			a.log.Warn("malformed task dead-lettered", "error", decodeErrs[i])
			// Poison messages dead-letter to tasks.<ep>.dlq for operator
			// inspection rather than redelivering forever.
			if rerr := a.sub.Reject(batch[i].Tag); rerr != nil {
				tags = append(tags, batch[i].Tag)
			}
			a.Metrics.Counter("dead_lettered").Inc()
			continue
		}
		task := tasks[i]
		// Continue the trace: the delivery context (broker transit span) is
		// preferred; the task body's context covers untraced transports.
		parent := batch[i].Trace
		if !parent.Valid() {
			parent = task.Trace
		}
		sp := a.cfg.Tracer.StartSpan(parent, "endpoint.dispatch")
		sp.SetAttr("endpoint", string(a.cfg.EndpointID))
		if next := sp.Context(); next != nil {
			task.Trace = next
		}
		tags = append(tags, batch[i].Tag)
		received++
		if task.Kind == protocol.KindMPI {
			if a.cfg.MPI == nil {
				a.enqueueResult(protocol.Result{
					TaskID: task.ID, State: protocol.StateFailed,
					Error: "endpoint has no MPI engine configured",
					Trace: task.Trace,
				})
				a.Metrics.Counter("rejected_mpi").Inc()
				sp.EndStatus("error")
				continue
			}
			err := a.cfg.MPI.Submit(task)
			sp.End()
			if err != nil {
				a.enqueueResult(protocol.Result{
					TaskID: task.ID, State: protocol.StateFailed, Error: err.Error(),
					Trace: task.Trace,
				})
				a.Metrics.Counter("submit_errors").Inc()
			}
			continue
		}
		engTasks = append(engTasks, task)
		engSpans = append(engSpans, sp)
	}

	if len(engTasks) > 0 {
		errs := a.cfg.Engine.SubmitBatch(engTasks)
		for i, sp := range engSpans {
			sp.End()
			if errs == nil || errs[i] == nil {
				continue
			}
			// Invalid tasks fail permanently; transient backlog errors
			// would also land here — report rather than redeliver forever.
			a.enqueueResult(protocol.Result{
				TaskID: engTasks[i].ID, State: protocol.StateFailed,
				Error: errs[i].Error(), Trace: engTasks[i].Trace,
			})
			a.Metrics.Counter("submit_errors").Inc()
		}
	}

	// Acknowledge the whole drain at once; a lone tag stays on the classic
	// single-ack envelope. Batch acks fire without blocking the loop: an
	// ack's only job is to move the delivery window, and a round trip spent
	// waiting on its reply is a round trip the next drain isn't running. The
	// small flight bound keeps unacked tags from piling up unboundedly when
	// the broker slows down.
	switch len(tags) {
	case 0:
	case 1:
		_ = a.sub.Ack(tags[0])
	default:
		a.ackSem <- struct{}{}
		a.acks.Add(1)
		go func(tags []uint64) {
			defer a.acks.Done()
			defer func() { <-a.ackSem }()
			_ = broker.AckBatchOn(a.sub, tags)
		}(tags)
	}
	if received > 0 {
		a.Metrics.Counter("tasks_received").Add(int64(received))
		a.Metrics.Counter("intake_batches").Inc()
		a.lastActivity.Store(time.Now().UnixNano())
	}
}

// forwardResults feeds one engine's result stream into the egress pipeline.
func (a *Agent) forwardResults(ch <-chan protocol.Result) {
	defer a.producers.Done()
	for res := range ch {
		a.enqueueResult(res)
	}
}

// enqueueResult hands a result to the egress flusher.
func (a *Agent) enqueueResult(res protocol.Result) {
	a.egressBacklog.Add(1)
	a.egress <- res
}

// egressFlightCap bounds concurrent flush publishes in flight. A synchronous
// publish round trip would otherwise serialize egress at one flush per RTT;
// a few overlapping flushes hide that latency, and when every slot is busy
// the drainer blocks — which is exactly when queued results coalesce into
// larger batches.
const egressFlightCap = 4

// egressLoop is the group-commit result flusher: the first queued result
// wakes it, everything buffered up to EgressMaxBatch coalesces into one
// publish_batch, and a lone result degrades to a plain traced publish so
// chaos wrappers and old brokers see the classic envelope. While flushes are
// in flight new results accumulate, so batch size adapts to load without
// adding latency at idle. Results within a flush preserve completion order;
// concurrent flushes may interleave (tasks are independent and the task
// state machine does not rely on cross-result ordering).
func (a *Agent) egressLoop() {
	defer a.wg.Done()
	maxN := a.cfg.EgressMaxBatch
	sem := make(chan struct{}, egressFlightCap)
	var flights sync.WaitGroup
	defer flights.Wait()
	for {
		res, ok := <-a.egress
		if !ok {
			return
		}
		if a.cfg.EgressFlushWindow > 0 {
			time.Sleep(a.cfg.EgressFlushWindow)
		}
		batch := make([]protocol.Result, 0, maxN)
		batch = append(batch, res)
		closed := false
	drain:
		for len(batch) < maxN {
			select {
			case r2, ok := <-a.egress:
				if !ok {
					closed = true
					break drain
				}
				batch = append(batch, r2)
			default:
				break drain
			}
		}
		if maxN == 1 {
			// Per-result mode (the pre-pipeline hot path): publish inline,
			// strictly in order.
			a.publishResults(batch)
		} else {
			sem <- struct{}{}
			flights.Add(1)
			go func(b []protocol.Result) {
				defer flights.Done()
				defer func() { <-sem }()
				a.publishResults(b)
			}(batch)
		}
		if closed {
			return
		}
	}
}

// resultBufPool recycles result-encoding buffers on the egress path,
// mirroring the frame codec's pooling (buffers over 1 MiB are not pooled so
// one huge output cannot pin memory).
var resultBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

const maxPooledResultBuf = 1 << 20

// publishResults marshals and publishes one egress flush. A single result
// uses the classic PublishTraced path; larger flushes go through the conn's
// batch capability (with a sequential fallback for wrapped conns).
func (a *Agent) publishResults(batch []protocol.Result) {
	defer a.egressBacklog.Add(-int64(len(batch)))
	queue := resultQueue(a.cfg.EndpointID)
	bodies := make([][]byte, 0, len(batch))
	traces := make([]*trace.Context, 0, len(batch))
	ids := make([]string, 0, len(batch))
	bufs := make([]*bytes.Buffer, 0, len(batch))
	defer func() {
		for _, b := range bufs {
			if b.Cap() <= maxPooledResultBuf {
				b.Reset()
				resultBufPool.Put(b)
			}
		}
	}()
	for i := range batch {
		batch[i].EndpointID = a.cfg.EndpointID
		// Egress-side spill: ship oversized outputs to the object store and
		// publish a content-addressed reference so the broker hot path never
		// carries bulk data.
		if a.cfg.Spill != nil && a.cfg.SpillThreshold > 0 &&
			batch[i].OutputRef == "" && len(batch[i].Output) > a.cfg.SpillThreshold {
			if key, err := a.cfg.Spill.PutContent(batch[i].Output); err == nil {
				a.Metrics.Counter("spill_results").Inc()
				a.Metrics.Counter("spill_result_bytes").Add(int64(len(batch[i].Output)))
				batch[i].OutputRef = key
				batch[i].Output = nil
			} else {
				a.log.WithTask(string(batch[i].TaskID)).
					Warn("result spill failed; sending inline", "error", err)
			}
		}
		buf := resultBufPool.Get().(*bytes.Buffer)
		buf.Reset()
		if err := json.NewEncoder(buf).Encode(&batch[i]); err != nil {
			a.log.WithTask(string(batch[i].TaskID)).WithTrace(batch[i].Trace).
				Error("marshal result", "error", err)
			buf.Reset()
			resultBufPool.Put(buf)
			continue
		}
		bufs = append(bufs, buf)
		body := buf.Bytes()
		// Encode appends a newline the classic json.Marshal path never had.
		if k := len(body); k > 0 && body[k-1] == '\n' {
			body = body[:k-1]
		}
		bodies = append(bodies, body)
		traces = append(traces, batch[i].Trace)
		ids = append(ids, string(batch[i].TaskID))
	}
	if len(bodies) == 0 {
		return
	}
	published := len(bodies)
	var err error
	if len(bodies) == 1 {
		err = a.cfg.Conn.PublishTraced(queue, bodies[0], traces[0])
	} else {
		err = broker.PublishBatchOn(a.cfg.Conn, queue, bodies, traces)
	}
	if err != nil {
		// A batch flush succeeds or fails as a unit, so one flaky publish
		// would sink every batchmate once the conn's retry budget runs out.
		// Fall back to per-result publishes — each with its own retry budget —
		// and accept that results already sent by a partial batch attempt go
		// out twice (the task state machine absorbs duplicates).
		a.log.Warn("batch publish failed; retrying individually", "results", len(bodies), "error", err)
		published = 0
		for i := range bodies {
			if perr := a.cfg.Conn.PublishTraced(queue, bodies[i], traces[i]); perr != nil {
				a.log.WithTask(ids[i]).WithTrace(traces[i]).
					Error("publish result", "error", perr)
				continue
			}
			published++
		}
		if published == 0 {
			return
		}
	}
	a.Metrics.Counter("results_published").Add(int64(published))
	a.Metrics.Counter("egress_flushes").Inc()
	// Flush size recorded as a duration histogram: one second == one
	// result, so /metrics quantiles read directly as results per flush.
	a.Metrics.Histogram("egress_flush_size").Observe(time.Duration(len(bodies)) * time.Second)
	a.lastActivity.Store(time.Now().UnixNano())
}

// WriteMetrics renders the agent's and its engines' registries in the
// Prometheus text format (the body gc-endpoint serves on /metrics). The
// egress backlog is exported as a gauge sampled at scrape time.
func (a *Agent) WriteMetrics(w io.Writer) error {
	a.Metrics.Gauge("egress_backlog").Set(a.egressBacklog.Load())
	if err := a.Metrics.WriteText(w, "gc_endpoint"); err != nil {
		return err
	}
	if a.cfg.Engine != nil {
		if err := a.cfg.Engine.Metrics.WriteText(w, "gc_engine"); err != nil {
			return err
		}
	}
	if a.cfg.MPI != nil {
		if err := a.cfg.MPI.Metrics.WriteText(w, "gc_mpiengine"); err != nil {
			return err
		}
	}
	return nil
}

func (a *Agent) heartbeatLoop() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.cfg.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			a.cfg.Heartbeat(true)
		}
	}
}

// Stop cancels consumption, drains the engines, and heartbeats offline.
func (a *Agent) Stop() {
	a.mu.Lock()
	if !a.started || a.stopped {
		a.mu.Unlock()
		return
	}
	a.stopped = true
	a.mu.Unlock()

	close(a.done)
	_ = a.sub.Cancel()
	a.cfg.Engine.Stop()
	if a.cfg.MPI != nil {
		a.cfg.MPI.Stop()
	}
	a.wg.Wait()
	if a.cfg.Heartbeat != nil {
		a.cfg.Heartbeat(false)
	}
}

// RunnerConfig assembles a task runner with optional ProxyStore
// integration: proxied python arguments resolve transparently on the
// worker, and large python results are proxied back by policy (§V-B).
type RunnerConfig struct {
	Registry *registry.Registry
	Shell    shellfn.Options
	Objects  ObjectFetcher
	// Proxies resolves pass-by-reference arguments (nil = references pass
	// through untouched).
	Proxies *proxystore.Registry
	// ProxyStore + ProxyPolicy proxy large results out of band.
	ProxyStore  *proxystore.Store
	ProxyPolicy proxystore.Policy
}

// NewRunner builds the engine TaskRunner for this endpoint: python tasks
// resolve entrypoints in reg; shell tasks execute via shellfn with the
// given defaults; payload references resolve through objects.
func NewRunner(reg *registry.Registry, defaults shellfn.Options, objects ObjectFetcher) engine.TaskRunner {
	return NewRunnerFrom(RunnerConfig{Registry: reg, Shell: defaults, Objects: objects})
}

// NewRunnerFrom builds a runner with full configuration.
func NewRunnerFrom(rc RunnerConfig) engine.TaskRunner {
	reg := rc.Registry
	defaults := rc.Shell
	objects := rc.Objects
	return func(ctx context.Context, task protocol.Task, w engine.WorkerInfo) protocol.Result {
		payload := task.Payload
		if task.PayloadRef != "" {
			if objects == nil {
				return failure(task, "task payload is a reference but endpoint has no object store access")
			}
			blob, err := objects.Get(task.PayloadRef)
			if err != nil {
				return failure(task, fmt.Sprintf("fetch payload %s: %v", task.PayloadRef, err))
			}
			payload = blob
		}
		switch task.Kind {
		case protocol.KindPython:
			var spec protocol.PythonSpec
			if err := protocol.DecodePayload(payload, &spec); err != nil {
				return failure(task, err.Error())
			}
			// Transparent proxy resolution: arguments that are references
			// materialize from the store before invocation.
			if rc.Proxies != nil {
				for i, raw := range spec.Args {
					resolved, _, err := proxystore.MaybeResolve(rc.Proxies, raw)
					if err != nil {
						return failure(task, fmt.Sprintf("resolve arg %d: %v", i, err))
					}
					spec.Args[i] = resolved
				}
				for k, raw := range spec.Kwargs {
					resolved, _, err := proxystore.MaybeResolve(rc.Proxies, raw)
					if err != nil {
						return failure(task, fmt.Sprintf("resolve kwarg %s: %v", k, err))
					}
					spec.Kwargs[k] = resolved
				}
			}
			out, err := reg.Invoke(ctx, spec.Entrypoint, spec.Args, spec.Kwargs)
			if err != nil {
				return failure(task, err.Error())
			}
			encoded, err := json.Marshal(out)
			if err != nil {
				return failure(task, fmt.Sprintf("encode result: %v", err))
			}
			// Result proxying: large outputs go to the store and only the
			// reference returns through the cloud.
			if rc.ProxyStore != nil && rc.ProxyPolicy.ShouldProxy(len(encoded)) {
				refJSON, proxied, perr := proxystore.MaybeProxy(rc.ProxyStore, rc.ProxyPolicy, json.RawMessage(encoded))
				if perr != nil {
					return failure(task, fmt.Sprintf("proxy result: %v", perr))
				}
				if proxied {
					encoded = refJSON
				}
			}
			return protocol.Result{State: protocol.StateSuccess, Output: encoded}
		case protocol.KindShell:
			var spec protocol.ShellSpec
			if err := protocol.DecodePayload(payload, &spec); err != nil {
				return failure(task, err.Error())
			}
			opts := defaults
			opts.TaskID = string(task.ID)
			opts.Env = mergeEnv(defaults.Env, map[string]string{"GC_NODE": w.Node, "GC_WORKER": w.ID})
			sr, err := shellfn.ExecuteSpec(ctx, spec, opts)
			if err != nil {
				return failure(task, err.Error())
			}
			encoded, err := protocol.EncodePayload(sr)
			if err != nil {
				return failure(task, err.Error())
			}
			return protocol.Result{State: protocol.StateSuccess, Output: encoded}
		default:
			return failure(task, fmt.Sprintf("unsupported task kind %q", task.Kind))
		}
	}
}

func failure(task protocol.Task, msg string) protocol.Result {
	return protocol.Result{TaskID: task.ID, State: protocol.StateFailed, Error: msg}
}

func mergeEnv(base, extra map[string]string) map[string]string {
	out := make(map[string]string, len(base)+len(extra))
	for k, v := range base {
		out[k] = v
	}
	for k, v := range extra {
		out[k] = v
	}
	return out
}
