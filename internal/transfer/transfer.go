// Package transfer simulates Globus Transfer (§V-A): Connect endpoints
// rooted at filesystem directories, and a fire-and-forget transfer service
// that asynchronously and reliably copies batches of files between
// endpoints, with task status polling, per-item accounting, and retry of
// transient failures — the out-of-band path for datasets too large for the
// compute service's payload limit.
package transfer

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrUnknownEndpoint = errors.New("transfer: unknown endpoint")
	ErrUnknownTask     = errors.New("transfer: unknown task")
	ErrBadPath         = errors.New("transfer: path escapes endpoint root")
)

// Endpoint is a Globus Connect endpoint: a named root directory.
type Endpoint struct {
	ID   protocol.UUID
	Name string
	Root string
}

// resolve maps an endpoint-relative path to the filesystem, rejecting
// escapes.
func (e Endpoint) resolve(rel string) (string, error) {
	clean := filepath.Clean("/" + rel)
	full := filepath.Join(e.Root, clean)
	if !strings.HasPrefix(full, filepath.Clean(e.Root)+string(os.PathSeparator)) && full != filepath.Clean(e.Root) {
		return "", fmt.Errorf("%w: %q", ErrBadPath, rel)
	}
	return full, nil
}

// TaskStatus is a transfer task state.
type TaskStatus string

const (
	StatusActive    TaskStatus = "ACTIVE"
	StatusSucceeded TaskStatus = "SUCCEEDED"
	StatusFailed    TaskStatus = "FAILED"
)

// Item is one file to move.
type Item struct {
	SourcePath string `json:"source_path"`
	DestPath   string `json:"destination_path"`
}

// Spec is a transfer submission.
type Spec struct {
	Source      protocol.UUID `json:"source_endpoint"`
	Destination protocol.UUID `json:"destination_endpoint"`
	Items       []Item        `json:"items"`
	Label       string        `json:"label,omitempty"`
}

// TaskInfo is a point-in-time task snapshot.
type TaskInfo struct {
	ID               protocol.UUID
	Spec             Spec
	Status           TaskStatus
	FilesTransferred int
	BytesTransferred int64
	Error            string
	Submitted        time.Time
	Completed        time.Time
}

// Service is the transfer service.
type Service struct {
	mu        sync.Mutex
	endpoints map[protocol.UUID]Endpoint
	tasks     map[protocol.UUID]*TaskInfo
	wg        sync.WaitGroup
	// Throughput simulates link bandwidth in bytes/sec (0 = unlimited).
	Throughput int64
	// MaxRetries bounds per-item retry of transient copy failures.
	MaxRetries int

	Metrics *metrics.Registry
}

// NewService returns an empty transfer service.
func NewService() *Service {
	return &Service{
		endpoints:  make(map[protocol.UUID]Endpoint),
		tasks:      make(map[protocol.UUID]*TaskInfo),
		MaxRetries: 2,
		Metrics:    metrics.NewRegistry(),
	}
}

// CreateEndpoint registers a Connect endpoint rooted at dir.
func (s *Service) CreateEndpoint(name, dir string) (Endpoint, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Endpoint{}, fmt.Errorf("transfer: endpoint root: %w", err)
	}
	ep := Endpoint{ID: protocol.NewUUID(), Name: name, Root: dir}
	s.mu.Lock()
	s.endpoints[ep.ID] = ep
	s.mu.Unlock()
	return ep, nil
}

// Endpoints lists registered endpoints.
func (s *Service) Endpoints() []Endpoint {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Endpoint, 0, len(s.endpoints))
	for _, ep := range s.endpoints {
		out = append(out, ep)
	}
	return out
}

// Submit starts an asynchronous transfer and returns its task ID
// immediately (fire and forget).
func (s *Service) Submit(spec Spec) (protocol.UUID, error) {
	if len(spec.Items) == 0 {
		return "", errors.New("transfer: no items")
	}
	s.mu.Lock()
	src, okSrc := s.endpoints[spec.Source]
	dst, okDst := s.endpoints[spec.Destination]
	if !okSrc || !okDst {
		s.mu.Unlock()
		return "", fmt.Errorf("%w: source=%v destination=%v", ErrUnknownEndpoint, okSrc, okDst)
	}
	id := protocol.NewUUID()
	info := &TaskInfo{ID: id, Spec: spec, Status: StatusActive, Submitted: time.Now()}
	s.tasks[id] = info
	s.mu.Unlock()

	s.wg.Add(1)
	go s.run(info, src, dst)
	return id, nil
}

// run executes a transfer task.
func (s *Service) run(info *TaskInfo, src, dst Endpoint) {
	defer s.wg.Done()
	var firstErr error
	for _, item := range info.Spec.Items {
		n, err := s.copyItem(src, dst, item)
		if err != nil {
			firstErr = err
			break
		}
		s.mu.Lock()
		info.FilesTransferred++
		info.BytesTransferred += n
		s.mu.Unlock()
		s.Metrics.Counter("files").Inc()
		// "transferred_bytes" keeps the unit suffix ahead of the exported
		// _total, per Prometheus naming conventions.
		s.Metrics.Counter("transferred_bytes").Add(n)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	info.Completed = time.Now()
	if firstErr != nil {
		info.Status = StatusFailed
		info.Error = firstErr.Error()
		s.Metrics.Counter("tasks_failed").Inc()
		return
	}
	info.Status = StatusSucceeded
	s.Metrics.Counter("tasks_succeeded").Inc()
}

// copyItem copies one file with retries and simulated bandwidth.
func (s *Service) copyItem(src, dst Endpoint, item Item) (int64, error) {
	srcPath, err := src.resolve(item.SourcePath)
	if err != nil {
		return 0, err
	}
	dstPath, err := dst.resolve(item.DestPath)
	if err != nil {
		return 0, err
	}
	var lastErr error
	for attempt := 0; attempt <= s.MaxRetries; attempt++ {
		n, err := s.copyOnce(srcPath, dstPath)
		if err == nil {
			return n, nil
		}
		lastErr = err
		// Missing sources are permanent; IO hiccups retry.
		if errors.Is(err, os.ErrNotExist) {
			break
		}
		time.Sleep(time.Duration(attempt+1) * 5 * time.Millisecond)
	}
	return 0, fmt.Errorf("transfer: %s -> %s: %w", item.SourcePath, item.DestPath, lastErr)
}

func (s *Service) copyOnce(srcPath, dstPath string) (int64, error) {
	in, err := os.Open(srcPath)
	if err != nil {
		return 0, err
	}
	defer in.Close()
	if err := os.MkdirAll(filepath.Dir(dstPath), 0o755); err != nil {
		return 0, err
	}
	tmp := dstPath + ".part"
	out, err := os.Create(tmp)
	if err != nil {
		return 0, err
	}
	var n int64
	if s.Throughput > 0 {
		n, err = s.throttledCopy(out, in)
	} else {
		n, err = io.Copy(out, in)
	}
	if cerr := out.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return 0, err
	}
	if err := os.Rename(tmp, dstPath); err != nil {
		os.Remove(tmp)
		return 0, err
	}
	return n, nil
}

// throttledCopy copies in chunks, sleeping to respect Throughput.
func (s *Service) throttledCopy(dst io.Writer, src io.Reader) (int64, error) {
	const chunk = 256 << 10
	buf := make([]byte, chunk)
	var total int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return total, werr
			}
			total += int64(n)
			time.Sleep(time.Duration(float64(n) / float64(s.Throughput) * float64(time.Second)))
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Status returns a task snapshot.
func (s *Service) Status(id protocol.UUID) (TaskInfo, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	info, ok := s.tasks[id]
	if !ok {
		return TaskInfo{}, fmt.Errorf("%w: %s", ErrUnknownTask, id)
	}
	return *info, nil
}

// Wait blocks until the task completes or timeout elapses.
func (s *Service) Wait(id protocol.UUID, timeout time.Duration) (TaskInfo, error) {
	deadline := time.Now().Add(timeout)
	for {
		info, err := s.Status(id)
		if err != nil {
			return TaskInfo{}, err
		}
		if info.Status != StatusActive {
			return info, nil
		}
		if time.Now().After(deadline) {
			return info, fmt.Errorf("transfer: task %s still active after %s", id, timeout)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close waits for in-flight transfers.
func (s *Service) Close() { s.wg.Wait() }
