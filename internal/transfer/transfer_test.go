package transfer

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"globuscompute/internal/protocol"
)

func newPair(t *testing.T) (*Service, Endpoint, Endpoint) {
	t.Helper()
	s := NewService()
	t.Cleanup(s.Close)
	src, err := s.CreateEndpoint("src", filepath.Join(t.TempDir(), "src"))
	if err != nil {
		t.Fatal(err)
	}
	dst, err := s.CreateEndpoint("dst", filepath.Join(t.TempDir(), "dst"))
	if err != nil {
		t.Fatal(err)
	}
	return s, src, dst
}

func writeFile(t *testing.T, ep Endpoint, rel, content string) {
	t.Helper()
	full := filepath.Join(ep.Root, rel)
	if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(full, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestSimpleTransfer(t *testing.T) {
	s, src, dst := newPair(t)
	writeFile(t, src, "data.bin", "payload-bytes")
	id, err := s.Submit(Spec{
		Source: src.ID, Destination: dst.ID,
		Items: []Item{{SourcePath: "data.bin", DestPath: "incoming/data.bin"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	info, err := s.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusSucceeded {
		t.Fatalf("status = %s err=%s", info.Status, info.Error)
	}
	if info.FilesTransferred != 1 || info.BytesTransferred != int64(len("payload-bytes")) {
		t.Errorf("info = %+v", info)
	}
	got, err := os.ReadFile(filepath.Join(dst.Root, "incoming/data.bin"))
	if err != nil || string(got) != "payload-bytes" {
		t.Errorf("dest file = %q, %v", got, err)
	}
}

func TestBatchTransfer(t *testing.T) {
	s, src, dst := newPair(t)
	var items []Item
	for i := 0; i < 10; i++ {
		rel := fmt.Sprintf("f%d.txt", i)
		writeFile(t, src, rel, fmt.Sprintf("content-%d", i))
		items = append(items, Item{SourcePath: rel, DestPath: rel})
	}
	id, _ := s.Submit(Spec{Source: src.ID, Destination: dst.ID, Items: items})
	info, err := s.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.FilesTransferred != 10 {
		t.Errorf("files = %d", info.FilesTransferred)
	}
	for i := 0; i < 10; i++ {
		if _, err := os.Stat(filepath.Join(dst.Root, fmt.Sprintf("f%d.txt", i))); err != nil {
			t.Errorf("missing f%d: %v", i, err)
		}
	}
}

func TestMissingSourceFails(t *testing.T) {
	s, src, dst := newPair(t)
	id, _ := s.Submit(Spec{
		Source: src.ID, Destination: dst.ID,
		Items: []Item{{SourcePath: "ghost.bin", DestPath: "x"}},
	})
	info, err := s.Wait(id, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if info.Status != StatusFailed || info.Error == "" {
		t.Errorf("info = %+v", info)
	}
}

func TestPathEscapeRejected(t *testing.T) {
	s, src, dst := newPair(t)
	writeFile(t, src, "ok.txt", "x")
	id, _ := s.Submit(Spec{
		Source: src.ID, Destination: dst.ID,
		Items: []Item{{SourcePath: "../../../etc/passwd", DestPath: "stolen"}},
	})
	info, _ := s.Wait(id, 5*time.Second)
	// Cleaned paths stay inside the root; the source simply does not
	// exist there, so the task fails without touching the outside world.
	if info.Status != StatusFailed {
		t.Errorf("status = %s", info.Status)
	}
	// Absolute escape on destination is also confined.
	id2, _ := s.Submit(Spec{
		Source: src.ID, Destination: dst.ID,
		Items: []Item{{SourcePath: "ok.txt", DestPath: "../../escape.txt"}},
	})
	info2, _ := s.Wait(id2, 5*time.Second)
	if info2.Status == StatusSucceeded {
		if _, err := os.Stat(filepath.Join(dst.Root, "escape.txt")); err != nil {
			t.Error("destination escaped the endpoint root")
		}
	}
}

func TestUnknownEndpoints(t *testing.T) {
	s := NewService()
	defer s.Close()
	_, err := s.Submit(Spec{Source: protocol.NewUUID(), Destination: protocol.NewUUID(), Items: []Item{{SourcePath: "a", DestPath: "b"}}})
	if !errors.Is(err, ErrUnknownEndpoint) {
		t.Errorf("err = %v", err)
	}
	if _, err := s.Status(protocol.NewUUID()); !errors.Is(err, ErrUnknownTask) {
		t.Errorf("status err = %v", err)
	}
	if _, err := s.Submit(Spec{}); err == nil {
		t.Error("empty spec accepted")
	}
}

func TestFireAndForgetReturnsImmediately(t *testing.T) {
	s, src, dst := newPair(t)
	// 4 MB at 1 MB/s simulated: Submit must not block for the copy.
	big := make([]byte, 4<<20)
	writeFile(t, src, "big.bin", string(big))
	s.Throughput = 1 << 20
	start := time.Now()
	id, err := s.Submit(Spec{
		Source: src.ID, Destination: dst.ID,
		Items: []Item{{SourcePath: "big.bin", DestPath: "big.bin"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Errorf("Submit blocked for %s", elapsed)
	}
	info, _ := s.Status(id)
	if info.Status != StatusActive && info.Status != StatusSucceeded {
		t.Errorf("status = %s", info.Status)
	}
	final, err := s.Wait(id, 30*time.Second)
	if err != nil || final.Status != StatusSucceeded {
		t.Fatalf("final = %+v, %v", final, err)
	}
	if final.Completed.Sub(final.Submitted) < 2*time.Second {
		t.Errorf("4MB at 1MB/s finished in %s; throttling not applied", final.Completed.Sub(final.Submitted))
	}
}

func TestEndpointListing(t *testing.T) {
	s, _, _ := newPair(t)
	if got := len(s.Endpoints()); got != 2 {
		t.Errorf("endpoints = %d", got)
	}
}

func TestMetricsAccumulate(t *testing.T) {
	s, src, dst := newPair(t)
	writeFile(t, src, "m.txt", "12345")
	id, _ := s.Submit(Spec{Source: src.ID, Destination: dst.ID, Items: []Item{{SourcePath: "m.txt", DestPath: "m.txt"}}})
	s.Wait(id, 5*time.Second)
	if s.Metrics.Counter("transferred_bytes").Value() != 5 {
		t.Errorf("bytes = %d", s.Metrics.Counter("transferred_bytes").Value())
	}
	if s.Metrics.Counter("tasks_succeeded").Value() != 1 {
		t.Errorf("succeeded = %d", s.Metrics.Counter("tasks_succeeded").Value())
	}
}
