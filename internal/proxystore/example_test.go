package proxystore_test

import (
	"fmt"

	"globuscompute/internal/proxystore"
)

// Large values become lightweight references; consumers resolve them from
// the store instead of moving bytes through the cloud service.
func ExampleStore() {
	store, _ := proxystore.NewStore("site", proxystore.NewMemoryConnector(), 8)
	proxy, _ := store.Put(map[string]any{"weights": []float64{0.1, 0.2, 0.3}})

	ref := proxy.Reference()
	fmt.Println(ref.Store, ref.Size > 0)

	var model map[string]any
	_ = proxy.ResolveInto(&model)
	fmt.Println(len(model["weights"].([]any)))
	// Output:
	// site true
	// 3
}
