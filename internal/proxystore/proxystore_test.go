package proxystore

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"globuscompute/internal/objectstore"
)

func connectors(t *testing.T) map[string]Connector {
	t.Helper()
	fc, err := NewFileConnector(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Connector{
		"memory":      NewMemoryConnector(),
		"file":        fc,
		"objectstore": ObjectStoreConnector{Backend: objectstore.New()},
	}
}

func TestConnectorRoundTrip(t *testing.T) {
	for name, c := range connectors(t) {
		t.Run(name, func(t *testing.T) {
			if c.Exists("k") {
				t.Error("phantom key")
			}
			if err := c.Put("k", []byte("v")); err != nil {
				t.Fatal(err)
			}
			if !c.Exists("k") {
				t.Error("key missing after put")
			}
			got, err := c.Get("k")
			if err != nil || string(got) != "v" {
				t.Errorf("Get = %q, %v", got, err)
			}
			if err := c.Delete("k"); err != nil {
				t.Fatal(err)
			}
			if _, err := c.Get("k"); !errors.Is(err, ErrNotFound) {
				t.Errorf("Get deleted = %v", err)
			}
		})
	}
}

func TestFileConnectorRejectsTraversal(t *testing.T) {
	fc, _ := NewFileConnector(t.TempDir())
	for _, key := range []string{"", "../escape", "a/b", `a\b`} {
		if err := fc.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) succeeded", key)
		}
	}
}

func TestProxyResolve(t *testing.T) {
	s, err := NewStore("main", NewMemoryConnector(), 8)
	if err != nil {
		t.Fatal(err)
	}
	type model struct {
		Weights []float64
		Name    string
	}
	in := model{Weights: []float64{0.1, 0.2}, Name: "net"}
	p, err := s.Put(in)
	if err != nil {
		t.Fatal(err)
	}
	if p.Reference().Store != "main" || p.Reference().Size == 0 {
		t.Errorf("ref = %+v", p.Reference())
	}
	var out model
	if err := p.ResolveInto(&out); err != nil {
		t.Fatal(err)
	}
	if out.Name != "net" || len(out.Weights) != 2 {
		t.Errorf("out = %+v", out)
	}
}

func TestProxyResolveOnce(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 0)
	p, _ := s.PutBytes([]byte("payload"))
	// Delete behind the proxy's back; the first resolve already cached in
	// the proxy? No — resolve happens lazily, so delete-then-resolve fails;
	// but resolve-then-delete-then-resolve succeeds from the proxy's own
	// memoization.
	if _, err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	s.Evict(p.Reference())
	if _, err := p.Resolve(); err != nil {
		t.Errorf("memoized resolve failed: %v", err)
	}
}

func TestProxyContentAddressing(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 0)
	p1, _ := s.PutBytes([]byte("same"))
	p2, _ := s.PutBytes([]byte("same"))
	if p1.Reference().Key != p2.Reference().Key {
		t.Error("identical content produced different keys")
	}
}

func TestOwnedProxyEvictsOnResolve(t *testing.T) {
	conn := NewMemoryConnector()
	s, _ := NewStore("main", conn, 8)
	p, err := s.PutOwned([]byte("one-shot"))
	if err != nil {
		t.Fatal(err)
	}
	key := p.Reference().Key
	if _, err := p.Resolve(); err != nil {
		t.Fatal(err)
	}
	if conn.Exists(key) {
		t.Error("owned target survived resolve")
	}
	// A second proxy to the same (now deleted) reference reports released.
	p2 := &Proxy{ref: p.Reference(), store: s}
	if _, err := p2.Resolve(); !errors.Is(err, ErrReleased) {
		t.Errorf("err = %v, want ErrReleased", err)
	}
}

func TestCacheHits(t *testing.T) {
	conn := NewMemoryConnector()
	s, _ := NewStore("main", conn, 4)
	p, _ := s.PutBytes([]byte("cached"))
	ref := p.Reference()
	// Two distinct proxies to the same reference: second resolve must hit
	// the cache even after the connector object disappears.
	pa := &Proxy{ref: ref, store: s}
	if _, err := pa.Resolve(); err != nil {
		t.Fatal(err)
	}
	conn.Delete(ref.Key)
	pb := &Proxy{ref: ref, store: s}
	if _, err := pb.Resolve(); err != nil {
		t.Errorf("cache miss after delete: %v", err)
	}
	if s.Metrics.Counter("cache_hits").Value() != 1 {
		t.Errorf("cache hits = %d", s.Metrics.Counter("cache_hits").Value())
	}
}

func TestCacheEvictionBounded(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 2)
	var refs []Reference
	for i := 0; i < 5; i++ {
		p, _ := s.PutBytes([]byte(fmt.Sprintf("obj-%d", i)))
		refs = append(refs, p.Reference())
		if _, err := s.resolve(p.Reference()); err != nil {
			t.Fatal(err)
		}
	}
	s.cacheMu.Lock()
	n := len(s.cache)
	s.cacheMu.Unlock()
	if n > 2 {
		t.Errorf("cache grew to %d entries, cap 2", n)
	}
	_ = refs
}

func TestRegistryResolve(t *testing.T) {
	reg := NewRegistry()
	s, _ := NewStore("site-a", NewMemoryConnector(), 0)
	reg.Register(s)
	p, _ := s.PutBytes([]byte("via registry"))
	got, err := reg.ResolveReference(p.Reference())
	if err != nil || string(got) != "via registry" {
		t.Errorf("resolve = %q, %v", got, err)
	}
	if _, err := reg.ResolveReference(Reference{Store: "nowhere", Key: "k"}); !errors.Is(err, ErrUnknownStore) {
		t.Errorf("unknown store = %v", err)
	}
}

func TestPolicyMaybeProxy(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 0)
	reg := NewRegistry()
	reg.Register(s)
	policy := Policy{MinSize: 100}

	// Small value stays inline.
	raw, proxied, err := MaybeProxy(s, policy, "tiny")
	if err != nil || proxied {
		t.Fatalf("small value proxied: %v, %v", proxied, err)
	}
	if string(raw) != `"tiny"` {
		t.Errorf("raw = %s", raw)
	}
	out, wasRef, err := MaybeResolve(reg, raw)
	if err != nil || wasRef || string(out) != `"tiny"` {
		t.Errorf("resolve inline = %s, %v, %v", out, wasRef, err)
	}

	// Large value becomes a reference.
	big := strings.Repeat("x", 1000)
	raw, proxied, err = MaybeProxy(s, policy, big)
	if err != nil || !proxied {
		t.Fatalf("large value not proxied: %v, %v", proxied, err)
	}
	if len(raw) >= 500 {
		t.Errorf("reference not small: %d bytes", len(raw))
	}
	out, wasRef, err = MaybeResolve(reg, raw)
	if err != nil || !wasRef {
		t.Fatalf("resolve ref: %v, %v", wasRef, err)
	}
	var round string
	if err := json.Unmarshal(out, &round); err != nil || round != big {
		t.Errorf("round trip lost data (%d bytes)", len(round))
	}
}

func TestPolicyDisabled(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 0)
	raw, proxied, err := MaybeProxy(s, Policy{}, strings.Repeat("y", 10000))
	if err != nil || proxied {
		t.Errorf("zero policy proxied: %v %v", proxied, err)
	}
	if len(raw) < 10000 {
		t.Error("value truncated")
	}
}

func TestMaybeResolvePassthrough(t *testing.T) {
	reg := NewRegistry()
	for _, raw := range []string{`42`, `"str"`, `{"a": 1}`, `[1,2]`, `null`} {
		out, wasRef, err := MaybeResolve(reg, json.RawMessage(raw))
		if err != nil || wasRef || string(out) != raw {
			t.Errorf("MaybeResolve(%s) = %s, %v, %v", raw, out, wasRef, err)
		}
	}
}

func TestStoreValidation(t *testing.T) {
	if _, err := NewStore("", NewMemoryConnector(), 0); err == nil {
		t.Error("unnamed store accepted")
	}
	if _, err := NewStore("x", nil, 0); err == nil {
		t.Error("nil connector accepted")
	}
}

func TestConcurrentProxyResolve(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 16)
	p, _ := s.PutBytes([]byte("shared"))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if data, err := p.Resolve(); err != nil || string(data) != "shared" {
				t.Errorf("resolve = %q, %v", data, err)
			}
		}()
	}
	wg.Wait()
	// The proxy memoizes: exactly one connector fetch.
	if got := s.Metrics.Counter("resolves").Value(); got != 1 {
		t.Errorf("connector resolves = %d, want 1", got)
	}
}

func TestPropertyProxyRoundTrip(t *testing.T) {
	s, _ := NewStore("main", NewMemoryConnector(), 4)
	f := func(data []byte) bool {
		p, err := s.PutBytes(data)
		if err != nil {
			return false
		}
		got, err := p.Resolve()
		if err != nil {
			return false
		}
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
