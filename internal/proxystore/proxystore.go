// Package proxystore reimplements the ProxyStore model the paper adopts for
// pass-by-reference data movement (§V-B): objects live in a store reached
// through a pluggable connector (memory, shared filesystem, the object
// store service); producers replace large values with lightweight proxies;
// consumers resolve a proxy on first use, with per-process caching for
// objects shared by many tasks. Proxied task arguments and results bypass
// the cloud service's 10 MB payload limit entirely.
package proxystore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"globuscompute/internal/metrics"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/serialize"
)

// Common errors.
var (
	ErrNotFound     = errors.New("proxystore: object not found")
	ErrUnknownStore = errors.New("proxystore: unknown store")
	ErrReleased     = errors.New("proxystore: proxy target released")
	ErrBadReference = errors.New("proxystore: malformed reference")
)

// Connector moves bytes to and from a storage medium. Implementations
// cover the paper's in-site options (memory, shared filesystem, object
// store); wide-area options are modeled by the transfer package.
type Connector interface {
	Name() string
	Put(key string, data []byte) error
	Get(key string) ([]byte, error)
	Delete(key string) error
	Exists(key string) bool
}

// --- connectors ---

// MemoryConnector keeps objects in process memory (the Redis/margo-style
// in-site store).
type MemoryConnector struct {
	mu      sync.RWMutex
	objects map[string][]byte
}

// NewMemoryConnector returns an empty in-memory connector.
func NewMemoryConnector() *MemoryConnector {
	return &MemoryConnector{objects: make(map[string][]byte)}
}

// Name implements Connector.
func (m *MemoryConnector) Name() string { return "memory" }

// Put implements Connector.
func (m *MemoryConnector) Put(key string, data []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.objects[key] = append([]byte(nil), data...)
	return nil
}

// Get implements Connector.
func (m *MemoryConnector) Get(key string) ([]byte, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	data, ok := m.objects[key]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// Delete implements Connector.
func (m *MemoryConnector) Delete(key string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.objects, key)
	return nil
}

// Exists implements Connector.
func (m *MemoryConnector) Exists(key string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.objects[key]
	return ok
}

// FileConnector stores objects as files under a directory (the shared
// filesystem option on HPC systems).
type FileConnector struct {
	dir string
}

// NewFileConnector uses dir (created if absent).
func NewFileConnector(dir string) (*FileConnector, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("proxystore: file connector: %w", err)
	}
	return &FileConnector{dir: dir}, nil
}

// Name implements Connector.
func (f *FileConnector) Name() string { return "file" }

func (f *FileConnector) path(key string) (string, error) {
	if key == "" || strings.ContainsAny(key, "/\\") {
		return "", fmt.Errorf("%w: bad key %q", ErrBadReference, key)
	}
	return filepath.Join(f.dir, key), nil
}

// Put implements Connector.
func (f *FileConnector) Put(key string, data []byte) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	tmp := p + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, p)
}

// Get implements Connector.
func (f *FileConnector) Get(key string) ([]byte, error) {
	p, err := f.path(key)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return data, err
}

// Delete implements Connector.
func (f *FileConnector) Delete(key string) error {
	p, err := f.path(key)
	if err != nil {
		return err
	}
	err = os.Remove(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	return err
}

// Exists implements Connector.
func (f *FileConnector) Exists(key string) bool {
	p, err := f.path(key)
	if err != nil {
		return false
	}
	_, statErr := os.Stat(p)
	return statErr == nil
}

// ObjectStoreConnector bridges to the object store service (or its HTTP
// client) so proxies can reference S3-style storage.
type ObjectStoreConnector struct {
	// Backend is anything with the object-store Put/Get/Delete shape.
	Backend interface {
		Put(key string, data []byte) error
		Get(key string) ([]byte, error)
		Delete(key string) error
	}
}

// Name implements Connector.
func (o ObjectStoreConnector) Name() string { return "objectstore" }

// Put implements Connector.
func (o ObjectStoreConnector) Put(key string, data []byte) error { return o.Backend.Put(key, data) }

// Get implements Connector, translating the backend's not-found error.
func (o ObjectStoreConnector) Get(key string) ([]byte, error) {
	data, err := o.Backend.Get(key)
	if errors.Is(err, objectstore.ErrNotFound) {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, key)
	}
	return data, err
}

// Delete implements Connector.
func (o ObjectStoreConnector) Delete(key string) error { return o.Backend.Delete(key) }

// Exists implements Connector.
func (o ObjectStoreConnector) Exists(key string) bool {
	_, err := o.Backend.Get(key)
	return err == nil
}

// --- store ---

// Reference is the serializable proxy token that travels inside task
// payloads in place of the object (pass-by-reference).
type Reference struct {
	Store string `json:"ps_store"`
	Key   string `json:"ps_key"`
	Size  int    `json:"ps_size"`
	// Owned marks evict-on-first-resolve semantics (OwnedProxy pattern:
	// the consumer that resolves it releases the target).
	Owned bool `json:"ps_owned,omitempty"`
}

// Store names a connector and provides proxy/resolve with caching.
type Store struct {
	name string
	conn Connector
	// cache holds recently resolved objects for reuse across tasks in the
	// same process.
	cacheMu  sync.Mutex
	cache    map[string][]byte
	cacheCap int
	cacheSeq []string // FIFO eviction order

	Metrics *metrics.Registry
}

// NewStore builds a store over a connector. cacheCap bounds the resolve
// cache entry count (<=0 disables caching).
func NewStore(name string, conn Connector, cacheCap int) (*Store, error) {
	if name == "" {
		return nil, errors.New("proxystore: store requires a name")
	}
	if conn == nil {
		return nil, errors.New("proxystore: store requires a connector")
	}
	return &Store{
		name: name, conn: conn,
		cache: make(map[string][]byte), cacheCap: cacheCap,
		Metrics: metrics.NewRegistry(),
	}, nil
}

// Name returns the store name used in references.
func (s *Store) Name() string { return s.name }

// Put serializes v (JSON envelope) into the connector and returns a proxy.
func (s *Store) Put(v any) (*Proxy, error) {
	data, err := serialize.Encode(v, serialize.Options{Codec: serialize.CodecJSON, Compress: true, CompressAbove: 4 << 10, Limit: 1 << 31})
	if err != nil {
		return nil, err
	}
	return s.PutBytes(data)
}

// PutBytes stores pre-serialized bytes under a content-addressed key.
func (s *Store) PutBytes(data []byte) (*Proxy, error) {
	sum := sha256.Sum256(data)
	key := hex.EncodeToString(sum[:16])
	if err := s.conn.Put(key, data); err != nil {
		return nil, err
	}
	s.Metrics.Counter("proxied").Inc()
	s.Metrics.Counter("proxied_bytes").Add(int64(len(data)))
	return &Proxy{ref: Reference{Store: s.name, Key: key, Size: len(data)}, store: s}, nil
}

// PutOwned stores bytes with evict-on-resolve semantics: the first resolve
// deletes the target (the ownership pattern of the OOPSLA follow-up the
// paper cites for lifetime management).
func (s *Store) PutOwned(data []byte) (*Proxy, error) {
	p, err := s.PutBytes(data)
	if err != nil {
		return nil, err
	}
	p.ref.Owned = true
	return p, nil
}

// resolve fetches the bytes behind a reference, consulting the cache.
func (s *Store) resolve(ref Reference) ([]byte, error) {
	if s.cacheCap > 0 && !ref.Owned {
		s.cacheMu.Lock()
		if data, ok := s.cache[ref.Key]; ok {
			s.cacheMu.Unlock()
			s.Metrics.Counter("cache_hits").Inc()
			return data, nil
		}
		s.cacheMu.Unlock()
	}
	data, err := s.conn.Get(ref.Key)
	if err != nil {
		if errors.Is(err, ErrNotFound) && ref.Owned {
			return nil, fmt.Errorf("%w: %q", ErrReleased, ref.Key)
		}
		return nil, err
	}
	s.Metrics.Counter("resolves").Inc()
	if ref.Owned {
		_ = s.conn.Delete(ref.Key)
	} else if s.cacheCap > 0 {
		s.cacheMu.Lock()
		if _, dup := s.cache[ref.Key]; !dup {
			if len(s.cacheSeq) >= s.cacheCap {
				oldest := s.cacheSeq[0]
				s.cacheSeq = s.cacheSeq[1:]
				delete(s.cache, oldest)
			}
			s.cache[ref.Key] = data
			s.cacheSeq = append(s.cacheSeq, ref.Key)
		}
		s.cacheMu.Unlock()
	}
	return data, nil
}

// Evict removes an object from the connector and cache.
func (s *Store) Evict(ref Reference) error {
	s.cacheMu.Lock()
	delete(s.cache, ref.Key)
	s.cacheMu.Unlock()
	return s.conn.Delete(ref.Key)
}

// Proxy is the transparent-object-proxy analogue: a handle that resolves
// its target on first use and caches the resolution. (Go cannot intercept
// attribute access, so resolution is an explicit method — the factory
// indirection and the pass-by-reference wire format are preserved.)
type Proxy struct {
	ref   Reference
	store *Store

	once sync.Once
	data []byte
	err  error
}

// Reference returns the wire token for embedding in task payloads.
func (p *Proxy) Reference() Reference { return p.ref }

// Resolve fetches (once) and returns the serialized bytes.
func (p *Proxy) Resolve() ([]byte, error) {
	p.once.Do(func() {
		p.data, p.err = p.store.resolve(p.ref)
	})
	return p.data, p.err
}

// ResolveInto decodes the target into v.
func (p *Proxy) ResolveInto(v any) error {
	data, err := p.Resolve()
	if err != nil {
		return err
	}
	return serialize.Decode(data, v)
}

// Release deletes the proxy target.
func (p *Proxy) Release() error { return p.store.Evict(p.ref) }

// --- registry ---

// Registry resolves references by store name; worker processes register the
// stores they can reach (factory lookup in the paper's terms).
type Registry struct {
	mu     sync.RWMutex
	stores map[string]*Store
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{stores: make(map[string]*Store)}
}

// Register adds a store.
func (r *Registry) Register(s *Store) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stores[s.name] = s
}

// Lookup finds a store.
func (r *Registry) Lookup(name string) (*Store, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s, ok := r.stores[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownStore, name)
	}
	return s, nil
}

// ResolveReference fetches the bytes behind a wire reference.
func (r *Registry) ResolveReference(ref Reference) ([]byte, error) {
	s, err := r.Lookup(ref.Store)
	if err != nil {
		return nil, err
	}
	return s.resolve(ref)
}

// --- policy ---

// Policy decides which values get proxied, mirroring ProxyStore's
// size-based executor policy.
type Policy struct {
	// MinSize proxies serialized values at or above this many bytes.
	MinSize int
}

// ShouldProxy applies the policy to a serialized size.
func (p Policy) ShouldProxy(size int) bool {
	return p.MinSize > 0 && size >= p.MinSize
}

// MaybeProxy encodes v and either returns the inline JSON (small values) or
// stores it and returns the reference JSON (large values). The returned
// boolean reports whether a proxy was created.
func MaybeProxy(store *Store, policy Policy, v any) (json.RawMessage, bool, error) {
	inline, err := json.Marshal(v)
	if err != nil {
		return nil, false, err
	}
	if !policy.ShouldProxy(len(inline)) {
		return inline, false, nil
	}
	proxy, err := store.Put(v)
	if err != nil {
		return nil, false, err
	}
	refJSON, err := json.Marshal(proxy.Reference())
	if err != nil {
		return nil, false, err
	}
	return refJSON, true, nil
}

// MaybeResolve inspects raw JSON: if it is a proxy reference, it resolves
// through the registry and returns the original serialized value; otherwise
// it returns raw unchanged.
func MaybeResolve(reg *Registry, raw json.RawMessage) (json.RawMessage, bool, error) {
	var ref Reference
	if err := json.Unmarshal(raw, &ref); err != nil || ref.Store == "" || ref.Key == "" {
		return raw, false, nil
	}
	data, err := reg.ResolveReference(ref)
	if err != nil {
		return nil, true, err
	}
	var v any
	if err := serialize.Decode(data, &v); err != nil {
		return nil, true, err
	}
	out, err := json.Marshal(v)
	if err != nil {
		return nil, true, err
	}
	return out, true, nil
}
