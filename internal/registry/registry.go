// Package registry implements the worker-side callable registry: the Go
// substitute for deserializing pickled Python functions. A registered Globus
// Compute function of kind "python" carries an entrypoint name; workers
// resolve that name here and invoke the Go implementation with the
// JSON-encoded arguments from the task payload.
//
// This preserves the register-once / invoke-by-UUID model: the web service
// stores an immutable FunctionRecord whose definition names an entrypoint,
// and the endpoint can only run entrypoints present in its registry —
// mirroring how a Python endpoint can only run functions whose dependencies
// resolve in its environment.
package registry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrNotFound is returned when an entrypoint is not registered.
var ErrNotFound = errors.New("registry: entrypoint not found")

// Callable is the signature every registered entrypoint implements. args
// and kwargs arrive as raw JSON, mirroring positional and keyword arguments;
// the return value is JSON-serialized into the task result.
type Callable func(ctx context.Context, args []json.RawMessage, kwargs map[string]json.RawMessage) (any, error)

// Registry maps entrypoint names to callables. Safe for concurrent use.
type Registry struct {
	mu    sync.RWMutex
	funcs map[string]Callable
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{funcs: make(map[string]Callable)}
}

// Register binds name to fn. Re-registering a name replaces the previous
// binding (the endpoint's environment was "updated").
func (r *Registry) Register(name string, fn Callable) error {
	if name == "" {
		return errors.New("registry: empty entrypoint name")
	}
	if fn == nil {
		return errors.New("registry: nil callable")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.funcs[name] = fn
	return nil
}

// Lookup resolves an entrypoint.
func (r *Registry) Lookup(name string) (Callable, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	fn, ok := r.funcs[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return fn, nil
}

// Names returns registered entrypoints in sorted order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.funcs))
	for n := range r.funcs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Invoke resolves name and calls it with the given arguments.
func (r *Registry) Invoke(ctx context.Context, name string, args []json.RawMessage, kwargs map[string]json.RawMessage) (any, error) {
	fn, err := r.Lookup(name)
	if err != nil {
		return nil, err
	}
	return fn(ctx, args, kwargs)
}

// Func1 adapts a typed one-argument function into a Callable: the first
// positional argument is decoded into A.
func Func1[A any, R any](f func(ctx context.Context, a A) (R, error)) Callable {
	return func(ctx context.Context, args []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		var a A
		if len(args) > 0 {
			if err := json.Unmarshal(args[0], &a); err != nil {
				return nil, fmt.Errorf("registry: argument 0: %w", err)
			}
		}
		return f(ctx, a)
	}
}

// Func0 adapts a zero-argument function into a Callable.
func Func0[R any](f func(ctx context.Context) (R, error)) Callable {
	return func(ctx context.Context, _ []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		return f(ctx)
	}
}

// Builtins returns a registry preloaded with the small function library the
// examples and benchmarks use.
func Builtins() *Registry {
	r := New()
	r.Register("identity", func(_ context.Context, args []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		if len(args) == 0 {
			return nil, nil
		}
		var v any
		if err := json.Unmarshal(args[0], &v); err != nil {
			return nil, err
		}
		return v, nil
	})
	r.Register("add", func(_ context.Context, args []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		sum := 0.0
		for i, a := range args {
			var x float64
			if err := json.Unmarshal(a, &x); err != nil {
				return nil, fmt.Errorf("registry: add arg %d: %w", i, err)
			}
			sum += x
		}
		return sum, nil
	})
	r.Register("fail", func(_ context.Context, args []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		msg := "task failed"
		if len(args) > 0 {
			var s string
			if json.Unmarshal(args[0], &s) == nil && s != "" {
				msg = s
			}
		}
		return nil, errors.New(msg)
	})
	r.Register("echo_kwargs", func(_ context.Context, _ []json.RawMessage, kwargs map[string]json.RawMessage) (any, error) {
		out := make(map[string]any, len(kwargs))
		for k, v := range kwargs {
			var x any
			if err := json.Unmarshal(v, &x); err != nil {
				return nil, err
			}
			out[k] = x
		}
		return out, nil
	})
	return r
}
