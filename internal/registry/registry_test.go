package registry

import (
	"context"
	"encoding/json"
	"errors"
	"testing"
)

func raw(v any) json.RawMessage {
	b, _ := json.Marshal(v)
	return b
}

func TestRegisterLookupInvoke(t *testing.T) {
	r := New()
	err := r.Register("double", func(_ context.Context, args []json.RawMessage, _ map[string]json.RawMessage) (any, error) {
		var x float64
		if err := json.Unmarshal(args[0], &x); err != nil {
			return nil, err
		}
		return 2 * x, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := r.Invoke(context.Background(), "double", []json.RawMessage{raw(21)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 42 {
		t.Errorf("Invoke = %v, want 42", got)
	}
}

func TestLookupMissing(t *testing.T) {
	r := New()
	if _, err := r.Lookup("nope"); !errors.Is(err, ErrNotFound) {
		t.Errorf("err = %v, want ErrNotFound", err)
	}
	if _, err := r.Invoke(context.Background(), "nope", nil, nil); !errors.Is(err, ErrNotFound) {
		t.Errorf("Invoke err = %v, want ErrNotFound", err)
	}
}

func TestRegisterValidation(t *testing.T) {
	r := New()
	if err := r.Register("", Func0(func(context.Context) (int, error) { return 0, nil })); err == nil {
		t.Error("empty name registered")
	}
	if err := r.Register("x", nil); err == nil {
		t.Error("nil callable registered")
	}
}

func TestReRegisterReplaces(t *testing.T) {
	r := New()
	r.Register("f", Func0(func(context.Context) (int, error) { return 1, nil }))
	r.Register("f", Func0(func(context.Context) (int, error) { return 2, nil }))
	got, err := r.Invoke(context.Background(), "f", nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(int) != 2 {
		t.Errorf("Invoke = %v, want 2 (replacement)", got)
	}
}

func TestNamesSorted(t *testing.T) {
	r := New()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		r.Register(n, Func0(func(context.Context) (int, error) { return 0, nil }))
	}
	names := r.Names()
	want := []string{"alpha", "mid", "zeta"}
	if len(names) != 3 {
		t.Fatalf("Names = %v", names)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %s, want %s", i, names[i], want[i])
		}
	}
}

func TestFunc1Adapter(t *testing.T) {
	r := New()
	r.Register("upper", Func1(func(_ context.Context, s string) (string, error) {
		out := make([]byte, len(s))
		for i := range s {
			c := s[i]
			if c >= 'a' && c <= 'z' {
				c -= 32
			}
			out[i] = c
		}
		return string(out), nil
	}))
	got, err := r.Invoke(context.Background(), "upper", []json.RawMessage{raw("abc")}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(string) != "ABC" {
		t.Errorf("got %v", got)
	}
	// Zero args: zero value decoded.
	got, err = r.Invoke(context.Background(), "upper", nil, nil)
	if err != nil || got.(string) != "" {
		t.Errorf("no-arg invoke = %v, %v", got, err)
	}
	// Bad argument type surfaces an error.
	if _, err := r.Invoke(context.Background(), "upper", []json.RawMessage{raw(3)}, nil); err == nil {
		t.Error("type mismatch accepted")
	}
}

func TestBuiltins(t *testing.T) {
	r := Builtins()
	ctx := context.Background()

	got, err := r.Invoke(ctx, "add", []json.RawMessage{raw(1), raw(2), raw(3.5)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got.(float64) != 6.5 {
		t.Errorf("add = %v", got)
	}

	got, err = r.Invoke(ctx, "identity", []json.RawMessage{raw("pass-through")}, nil)
	if err != nil || got.(string) != "pass-through" {
		t.Errorf("identity = %v, %v", got, err)
	}
	if got, err := r.Invoke(ctx, "identity", nil, nil); err != nil || got != nil {
		t.Errorf("identity no-arg = %v, %v", got, err)
	}

	if _, err := r.Invoke(ctx, "fail", []json.RawMessage{raw("boom")}, nil); err == nil || err.Error() != "boom" {
		t.Errorf("fail = %v", err)
	}
	if _, err := r.Invoke(ctx, "fail", nil, nil); err == nil {
		t.Error("fail without message succeeded")
	}

	got, err = r.Invoke(ctx, "echo_kwargs", nil, map[string]json.RawMessage{"k": raw("v")})
	if err != nil {
		t.Fatal(err)
	}
	if got.(map[string]any)["k"].(string) != "v" {
		t.Errorf("echo_kwargs = %v", got)
	}

	if _, err := r.Invoke(ctx, "add", []json.RawMessage{raw("nan")}, nil); err == nil {
		t.Error("add with string succeeded")
	}
}
