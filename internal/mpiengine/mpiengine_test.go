package mpiengine

import (
	"errors"

	"strings"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
	"globuscompute/internal/scheduler"
)

func mpiTask(t *testing.T, command string, res protocol.ResourceSpec) protocol.Task {
	t.Helper()
	payload, err := protocol.EncodePayload(protocol.ShellSpec{Command: command})
	if err != nil {
		t.Fatal(err)
	}
	return protocol.Task{
		ID: protocol.NewUUID(), Kind: protocol.KindMPI,
		Payload: payload, Resources: res,
	}
}

func newMPIEngine(t *testing.T, clusterNodes, blockNodes int, strategy Strategy) (*Engine, func()) {
	t.Helper()
	sched := scheduler.SimpleCluster(clusterNodes)
	prov, err := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: blockNodes})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := New(Config{Provider: prov, Strategy: strategy})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Start(); err != nil {
		t.Fatal(err)
	}
	return eng, func() {
		eng.Stop()
		sched.Close()
	}
}

func shellResultOf(t *testing.T, r protocol.Result) protocol.ShellResult {
	t.Helper()
	if r.State != protocol.StateSuccess {
		t.Fatalf("result state %s: %s", r.State, r.Error)
	}
	var sr protocol.ShellResult
	if err := protocol.DecodePayload(r.Output, &sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

func TestHostnameAcrossNodes(t *testing.T) {
	// Paper Listing 6/7: 2 nodes, 1..2 ranks per node.
	eng, cleanup := newMPIEngine(t, 2, 2, FIFO)
	defer cleanup()
	for _, rpn := range []int{1, 2} {
		task := mpiTask(t, "echo $GC_NODE", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: rpn})
		if err := eng.Submit(task); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-eng.Results():
			sr := shellResultOf(t, r)
			lines := strings.Split(sr.Stdout, "\n")
			if len(lines) != 2*rpn {
				t.Errorf("rpn=%d: %d lines, want %d: %q", rpn, len(lines), 2*rpn, sr.Stdout)
			}
			hosts := map[string]int{}
			for _, l := range lines {
				hosts[l]++
			}
			if len(hosts) != 2 {
				t.Errorf("rpn=%d: hosts %v, want 2 distinct", rpn, hosts)
			}
			for h, c := range hosts {
				if c != rpn {
					t.Errorf("rpn=%d: host %s ran %d ranks", rpn, h, c)
				}
			}
		case <-time.After(10 * time.Second):
			t.Fatal("no result")
		}
	}
}

func TestPrefixResolution(t *testing.T) {
	eng, cleanup := newMPIEngine(t, 2, 2, FIFO)
	defer cleanup()
	task := mpiTask(t, "$PARSL_MPI_PREFIX echo ok", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1})
	eng.Submit(task)
	r := <-eng.Results()
	sr := shellResultOf(t, r)
	if !strings.HasPrefix(sr.Cmd, "mpiexec -n 2 -host ") {
		t.Errorf("cmd = %q, want launcher prefix resolved", sr.Cmd)
	}
	if strings.Contains(sr.Cmd, "$PARSL_MPI_PREFIX") {
		t.Errorf("cmd = %q still contains placeholder", sr.Cmd)
	}
	if sr.Stdout != "ok\nok" {
		t.Errorf("stdout = %q", sr.Stdout)
	}
}

func TestConcurrentAppsShareBlock(t *testing.T) {
	// An 4-node block should run two 2-node apps concurrently: total time
	// well under serial execution.
	eng, cleanup := newMPIEngine(t, 4, 4, FIFO)
	defer cleanup()
	const sleep = "0.2"
	start := time.Now()
	for i := 0; i < 2; i++ {
		eng.Submit(mpiTask(t, "sleep "+sleep, protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1}))
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-eng.Results():
			shellResultOf(t, r)
		case <-time.After(10 * time.Second):
			t.Fatal("missing result")
		}
	}
	if elapsed := time.Since(start); elapsed > 350*time.Millisecond {
		t.Errorf("two 200ms apps took %s; expected concurrent execution", elapsed)
	}
}

func TestQueueWhenFull(t *testing.T) {
	// 2-node block, two 2-node apps: must serialize, both complete.
	eng, cleanup := newMPIEngine(t, 2, 2, FIFO)
	defer cleanup()
	start := time.Now()
	for i := 0; i < 2; i++ {
		eng.Submit(mpiTask(t, "sleep 0.1", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1}))
	}
	for i := 0; i < 2; i++ {
		select {
		case r := <-eng.Results():
			shellResultOf(t, r)
		case <-time.After(10 * time.Second):
			t.Fatal("missing result")
		}
	}
	if elapsed := time.Since(start); elapsed < 200*time.Millisecond {
		t.Errorf("two serialized 100ms apps took %s; expected >= 200ms", elapsed)
	}
}

func TestRejectionPaths(t *testing.T) {
	eng, cleanup := newMPIEngine(t, 2, 2, FIFO)
	defer cleanup()
	// Wrong kind.
	if err := eng.Submit(protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindShell}); !errors.Is(err, ErrNotMPI) {
		t.Errorf("shell kind = %v", err)
	}
	// Too many nodes for the block.
	task := mpiTask(t, "true", protocol.ResourceSpec{NumNodes: 8})
	if err := eng.Submit(task); !errors.Is(err, ErrTooBig) {
		t.Errorf("oversized = %v", err)
	}
	// Bad payload.
	bad := protocol.Task{ID: protocol.NewUUID(), Kind: protocol.KindMPI, Payload: []byte("{")}
	if err := eng.Submit(bad); err == nil {
		t.Error("bad payload accepted")
	}
	// Inconsistent resource spec.
	incons := mpiTask(t, "true", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 2, NumRanks: 3})
	if err := eng.Submit(incons); err == nil {
		t.Error("inconsistent spec accepted")
	}
}

func TestSubmitBeforeStartAndAfterStop(t *testing.T) {
	sched := scheduler.SimpleCluster(2)
	defer sched.Close()
	prov, _ := provider.NewBatch(provider.BatchConfig{Scheduler: sched, NodesPerBlock: 2})
	eng, _ := New(Config{Provider: prov})
	task := mpiTask(t, "true", protocol.ResourceSpec{NumNodes: 1})
	if err := eng.Submit(task); !errors.Is(err, ErrNotStarted) {
		t.Errorf("before start = %v", err)
	}
	eng.Start()
	eng.Stop()
	if err := eng.Submit(task); !errors.Is(err, ErrStopped) {
		t.Errorf("after stop = %v", err)
	}
}

func TestSmallestFirstPacksAroundWideApp(t *testing.T) {
	// Occupy 3 of 4 nodes; queue a 4-node app then a 1-node app. With
	// smallest-first, the 1-node app runs before the wide one.
	eng, cleanup := newMPIEngine(t, 4, 4, SmallestFirst)
	defer cleanup()
	eng.Submit(mpiTask(t, "sleep 0.3", protocol.ResourceSpec{NumNodes: 3, RanksPerNode: 1}))
	time.Sleep(50 * time.Millisecond) // let it start
	eng.Submit(mpiTask(t, "echo wide", protocol.ResourceSpec{NumNodes: 4, RanksPerNode: 1}))
	eng.Submit(mpiTask(t, "echo narrow", protocol.ResourceSpec{NumNodes: 1, RanksPerNode: 1}))

	var order []string
	for i := 0; i < 3; i++ {
		select {
		case r := <-eng.Results():
			sr := shellResultOf(t, r)
			first := strings.SplitN(sr.Stdout, "\n", 2)[0]
			order = append(order, first)
		case <-time.After(10 * time.Second):
			t.Fatal("missing results")
		}
	}
	// narrow must complete before wide.
	ni, wi := -1, -1
	for i, s := range order {
		switch s {
		case "narrow":
			ni = i
		case "wide":
			wi = i
		}
	}
	if ni == -1 || wi == -1 || ni > wi {
		t.Errorf("completion order %v, want narrow before wide", order)
	}
}

func TestFIFOHeadOfLineBlocks(t *testing.T) {
	// Same setup as above but FIFO: the 1-node app must NOT overtake the
	// 4-node head-of-line app.
	eng, cleanup := newMPIEngine(t, 4, 4, FIFO)
	defer cleanup()
	eng.Submit(mpiTask(t, "sleep 0.3", protocol.ResourceSpec{NumNodes: 3, RanksPerNode: 1}))
	time.Sleep(50 * time.Millisecond)
	eng.Submit(mpiTask(t, "echo wide", protocol.ResourceSpec{NumNodes: 4, RanksPerNode: 1}))
	eng.Submit(mpiTask(t, "echo narrow", protocol.ResourceSpec{NumNodes: 1, RanksPerNode: 1}))
	var order []string
	for i := 0; i < 3; i++ {
		r := <-eng.Results()
		sr := shellResultOf(t, r)
		order = append(order, strings.SplitN(sr.Stdout, "\n", 2)[0])
	}
	wi, ni := -1, -1
	for i, s := range order {
		switch s {
		case "wide":
			wi = i
		case "narrow":
			ni = i
		}
	}
	if wi == -1 || ni == -1 || wi > ni {
		t.Errorf("completion order %v, want wide before narrow under FIFO", order)
	}
}

func TestLargestFirstPrefersWideApps(t *testing.T) {
	// Free the 4-node block while a 1-node and a 4-node app wait; under
	// largest-first the wide app runs first.
	eng, cleanup := newMPIEngine(t, 4, 4, LargestFirst)
	defer cleanup()
	eng.Submit(mpiTask(t, "sleep 0.2", protocol.ResourceSpec{NumNodes: 4, RanksPerNode: 1}))
	time.Sleep(50 * time.Millisecond) // running: block fully busy
	eng.Submit(mpiTask(t, "echo narrow", protocol.ResourceSpec{NumNodes: 1, RanksPerNode: 1}))
	eng.Submit(mpiTask(t, "echo wide", protocol.ResourceSpec{NumNodes: 4, RanksPerNode: 1}))
	var order []string
	for i := 0; i < 3; i++ {
		r := <-eng.Results()
		sr := shellResultOf(t, r)
		order = append(order, strings.SplitN(sr.Stdout, "\n", 2)[0])
	}
	wi, ni := -1, -1
	for i, s := range order {
		switch s {
		case "wide":
			wi = i
		case "narrow":
			ni = i
		}
	}
	if wi == -1 || ni == -1 || wi > ni {
		t.Errorf("order = %v, want wide before narrow under largest-first", order)
	}
}

func TestNoNodeDoubleBookingUnderLoad(t *testing.T) {
	eng, cleanup := newMPIEngine(t, 8, 8, SmallestFirst)
	defer cleanup()
	// Each app writes its node set; verify no two concurrent apps shared
	// a node by checking engine stats never go negative and all complete.
	const apps = 20
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < apps; i++ {
			r := <-eng.Results()
			if r.State != protocol.StateSuccess {
				t.Errorf("app failed: %s", r.Error)
			}
		}
	}()
	for i := 0; i < apps; i++ {
		nodes := 1 + i%4
		if err := eng.Submit(mpiTask(t, "sleep 0.02", protocol.ResourceSpec{NumNodes: nodes, RanksPerNode: 1})); err != nil {
			t.Fatal(err)
		}
		s := eng.Stats()
		if s.FreeNodes < 0 || s.FreeNodes > s.TotalNodes {
			t.Fatalf("stats out of range: %+v", s)
		}
	}
	wg.Wait()
	s := eng.Stats()
	if s.AppsCompleted != apps {
		t.Errorf("completed = %d, want %d", s.AppsCompleted, apps)
	}
}

func TestStopFailsQueuedApps(t *testing.T) {
	eng, cleanup := newMPIEngine(t, 2, 2, FIFO)
	// Occupy the block, then queue extras.
	eng.Submit(mpiTask(t, "sleep 0.2", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1}))
	time.Sleep(30 * time.Millisecond)
	for i := 0; i < 3; i++ {
		eng.Submit(mpiTask(t, "echo queued", protocol.ResourceSpec{NumNodes: 2, RanksPerNode: 1}))
	}
	go cleanup()
	got := 0
	for range eng.Results() {
		got++
	}
	if got != 4 {
		t.Errorf("results = %d, want 4 (1 running + 3 failed-on-stop)", got)
	}
}
