// Package mpiengine implements the GlobusMPIEngine: a runtime that holds one
// or more batch blocks and dynamically partitions their nodes among
// concurrently executing MPIFunctions, each with its own resource
// specification (num_nodes x ranks_per_node). This is the paper's §III-C
// contribution: many MPI applications with varied requirements sharing a
// single batch job.
//
// Commands arrive as protocol.Task with Kind=KindMPI; the ShellSpec payload
// may reference $PARSL_MPI_PREFIX, which the engine resolves to the
// simulated launcher prefix for the nodes it assigns.
package mpiengine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/mpisim"
	"globuscompute/internal/protocol"
	"globuscompute/internal/provider"
)

// Common errors.
var (
	ErrStopped    = errors.New("mpiengine: stopped")
	ErrNotStarted = errors.New("mpiengine: not started")
	ErrNotMPI     = errors.New("mpiengine: task is not an MPIFunction")
	ErrTooBig     = errors.New("mpiengine: resource spec exceeds block size")
)

// Strategy orders the waiting queue when nodes free up.
type Strategy string

const (
	// FIFO serves requests in arrival order (head-of-line blocking
	// possible).
	FIFO Strategy = "fifo"
	// SmallestFirst packs small applications first, maximizing
	// concurrency.
	SmallestFirst Strategy = "smallest-first"
	// LargestFirst schedules wide applications first, minimizing their
	// wait at the cost of small-app latency.
	LargestFirst Strategy = "largest-first"
)

// Config configures the MPI engine.
type Config struct {
	Provider provider.Provider
	// Launcher names the MPI launcher to simulate (mpiexec, srun).
	Launcher string
	// Blocks is the number of pilot blocks to hold (default 1).
	Blocks int
	// Strategy orders pending applications (default FIFO).
	Strategy Strategy
	// QueueCapacity bounds the backlog (default 4096).
	QueueCapacity int
}

func (c *Config) fill() error {
	if c.Provider == nil {
		return errors.New("mpiengine: provider required")
	}
	if c.Launcher == "" {
		c.Launcher = "mpiexec"
	}
	if c.Blocks <= 0 {
		c.Blocks = 1
	}
	if c.Strategy == "" {
		c.Strategy = FIFO
	}
	if c.QueueCapacity <= 0 {
		c.QueueCapacity = 4096
	}
	return nil
}

// partition tracks free nodes within one block.
type partition struct {
	blockID string
	ctx     context.Context
	all     []string
	free    map[string]bool
	removed bool
	apps    sync.WaitGroup
}

type pendingTask struct {
	task protocol.Task
	spec protocol.ShellSpec
	res  protocol.ResourceSpec
	seq  int
}

// Engine is the MPI runtime.
type Engine struct {
	cfg Config

	mu         sync.Mutex
	partitions map[string]*partition
	pending    []*pendingTask
	seq        int
	started    bool
	stopped    bool

	results chan protocol.Result
	wg      sync.WaitGroup

	Metrics *metrics.Registry
}

// New validates cfg and builds the engine.
func New(cfg Config) (*Engine, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Engine{
		cfg:        cfg,
		partitions: make(map[string]*partition),
		results:    make(chan protocol.Result, cfg.QueueCapacity),
		Metrics:    metrics.NewRegistry(),
	}, nil
}

// Start provisions the engine's blocks.
func (e *Engine) Start() error {
	e.mu.Lock()
	if e.started {
		e.mu.Unlock()
		return errors.New("mpiengine: already started")
	}
	e.started = true
	e.mu.Unlock()
	for i := 0; i < e.cfg.Blocks; i++ {
		if _, err := e.cfg.Provider.SubmitBlock(e.runBlock); err != nil {
			return fmt.Errorf("mpiengine: provision block: %w", err)
		}
	}
	return nil
}

// runBlock registers the block's nodes as a partition and serves until the
// block is released.
func (e *Engine) runBlock(ctx context.Context, blk provider.BlockInfo) error {
	p := &partition{
		blockID: blk.ID,
		ctx:     ctx,
		all:     append([]string(nil), blk.Nodes...),
		free:    make(map[string]bool, len(blk.Nodes)),
	}
	for _, n := range blk.Nodes {
		p.free[n] = true
	}
	e.mu.Lock()
	if e.stopped {
		e.mu.Unlock()
		return nil
	}
	e.partitions[blk.ID] = p
	e.mu.Unlock()
	e.dispatch()

	<-ctx.Done()
	e.mu.Lock()
	p.removed = true
	delete(e.partitions, blk.ID)
	e.mu.Unlock()
	p.apps.Wait() // running apps see ctx cancellation and finish
	return nil
}

// Submit enqueues an MPIFunction task. The resource spec must fit within a
// single block.
func (e *Engine) Submit(task protocol.Task) error {
	if task.Kind != protocol.KindMPI {
		return fmt.Errorf("%w: kind %q", ErrNotMPI, task.Kind)
	}
	var spec protocol.ShellSpec
	if err := protocol.DecodePayload(task.Payload, &spec); err != nil {
		return err
	}
	res, err := task.Resources.Normalize()
	if err != nil {
		return err
	}
	blockSize := e.cfg.Provider.NodesPerBlock()
	if res.NumNodes > blockSize {
		return fmt.Errorf("%w: %d nodes requested, blocks have %d", ErrTooBig, res.NumNodes, blockSize)
	}
	e.mu.Lock()
	if !e.started {
		e.mu.Unlock()
		return ErrNotStarted
	}
	if e.stopped {
		e.mu.Unlock()
		return ErrStopped
	}
	if len(e.pending) >= e.cfg.QueueCapacity {
		e.mu.Unlock()
		return fmt.Errorf("mpiengine: backlog full (%d)", len(e.pending))
	}
	e.seq++
	e.pending = append(e.pending, &pendingTask{task: task, spec: spec, res: res, seq: e.seq})
	e.mu.Unlock()
	e.Metrics.Counter("submitted").Inc()
	e.dispatch()
	return nil
}

// Results streams application results; closed by Stop.
func (e *Engine) Results() <-chan protocol.Result { return e.results }

// dispatch assigns pending applications to partitions with enough free
// nodes, in strategy order.
func (e *Engine) dispatch() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stopped {
		return
	}
	e.orderPendingLocked()
	var still []*pendingTask
	for i := 0; i < len(e.pending); i++ {
		pt := e.pending[i]
		nodes, part := e.acquireLocked(pt.res.NumNodes)
		if nodes == nil {
			still = append(still, pt)
			if e.cfg.Strategy == FIFO {
				// Strict FIFO: nothing may overtake the blocked head.
				still = append(still, e.pending[i+1:]...)
				break
			}
			continue
		}
		e.wg.Add(1)
		part.apps.Add(1)
		go e.runApp(part, pt, nodes)
	}
	e.pending = still
}

// orderPendingLocked sorts the queue per strategy; FIFO keeps arrival order.
func (e *Engine) orderPendingLocked() {
	switch e.cfg.Strategy {
	case SmallestFirst:
		sort.SliceStable(e.pending, func(i, j int) bool {
			if e.pending[i].res.NumNodes != e.pending[j].res.NumNodes {
				return e.pending[i].res.NumNodes < e.pending[j].res.NumNodes
			}
			return e.pending[i].seq < e.pending[j].seq
		})
	case LargestFirst:
		sort.SliceStable(e.pending, func(i, j int) bool {
			if e.pending[i].res.NumNodes != e.pending[j].res.NumNodes {
				return e.pending[i].res.NumNodes > e.pending[j].res.NumNodes
			}
			return e.pending[i].seq < e.pending[j].seq
		})
	default:
		sort.SliceStable(e.pending, func(i, j int) bool { return e.pending[i].seq < e.pending[j].seq })
	}
}

// acquireLocked finds a partition with n free nodes and claims them.
func (e *Engine) acquireLocked(n int) ([]string, *partition) {
	for _, p := range e.partitions {
		if p.removed || len(p.free) < n {
			continue
		}
		nodes := make([]string, 0, n)
		for _, name := range p.all { // deterministic order
			if p.free[name] {
				nodes = append(nodes, name)
				if len(nodes) == n {
					break
				}
			}
		}
		for _, name := range nodes {
			delete(p.free, name)
		}
		return nodes, p
	}
	return nil, nil
}

// runApp executes one MPI application on its acquired nodes.
func (e *Engine) runApp(p *partition, pt *pendingTask, nodes []string) {
	defer e.wg.Done()
	defer p.apps.Done()
	start := time.Now()

	command := pt.spec.Command
	prefix := mpisim.BuildPrefix(e.cfg.Launcher, pt.res.NumRanks, nodes)
	// Resolve $PARSL_MPI_PREFIX: the engine owns placement, so a leading
	// prefix reference is stripped (the simulator pins ranks itself) and
	// recorded in the result command line.
	command = strings.TrimSpace(strings.TrimPrefix(command, "$PARSL_MPI_PREFIX"))

	launcher := pt.spec.Launcher
	if launcher == "" {
		launcher = e.cfg.Launcher
	}
	var walltime time.Duration
	if pt.spec.WalltimeSec > 0 {
		walltime = time.Duration(pt.spec.WalltimeSec * float64(time.Second))
	}
	res, err := mpisim.Launch(p.ctx, mpisim.LaunchSpec{
		Command:      command,
		Nodes:        nodes,
		RanksPerNode: pt.res.RanksPerNode,
		Launcher:     launcher,
		Walltime:     walltime,
		SnippetLines: pt.spec.SnippetLines,
		Env:          pt.spec.Env,
		RunDir:       pt.spec.RunDir,
	})

	// Result identity is stamped centrally here (mirroring the pilot-job
	// engine's workerLoop): TaskID and the trace context always ride on the
	// result so no launch path can drop them.
	var out protocol.Result
	out.TaskID = pt.task.ID
	out.Trace = pt.task.Trace
	out.Started = start
	out.Completed = time.Now()
	if err != nil {
		out.State = protocol.StateFailed
		out.Error = err.Error()
	} else {
		sr := res.ShellResult()
		sr.Cmd = prefix + " " + command
		payload, perr := protocol.EncodePayload(sr)
		if perr != nil {
			out.State = protocol.StateFailed
			out.Error = perr.Error()
		} else {
			out.State = protocol.StateSuccess
			out.Output = payload
		}
	}
	e.Metrics.Counter("apps_completed").Inc()
	e.Metrics.Histogram("app_elapsed").Observe(time.Since(start))

	e.mu.Lock()
	stopped := e.stopped
	if !p.removed {
		for _, n := range nodes {
			p.free[n] = true
		}
	}
	e.mu.Unlock()
	// Stop waits on e.wg before closing the results channel, so this send
	// is safe even during shutdown — running apps always report.
	e.results <- out
	if !stopped {
		e.dispatch()
	}
}

// Stats is a point-in-time snapshot.
type Stats struct {
	Pending       int
	FreeNodes     int
	TotalNodes    int
	Partitions    int
	AppsCompleted int64
}

// Stats reports engine state.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Stats{
		Pending:       len(e.pending),
		AppsCompleted: e.Metrics.Counter("apps_completed").Value(),
	}
	for _, p := range e.partitions {
		s.Partitions++
		s.FreeNodes += len(p.free)
		s.TotalNodes += len(p.all)
	}
	return s
}

// Stop cancels blocks, fails queued applications, and closes Results.
func (e *Engine) Stop() {
	e.mu.Lock()
	if !e.started || e.stopped {
		e.mu.Unlock()
		return
	}
	e.stopped = true
	pending := e.pending
	e.pending = nil
	blockIDs := make([]string, 0, len(e.partitions))
	for id := range e.partitions {
		blockIDs = append(blockIDs, id)
	}
	e.mu.Unlock()
	for _, pt := range pending {
		e.results <- protocol.Result{
			TaskID: pt.task.ID, State: protocol.StateFailed,
			Error: "mpi engine stopped before execution",
		}
	}
	for _, id := range blockIDs {
		_ = e.cfg.Provider.CancelBlock(id)
	}
	e.wg.Wait()
	close(e.results)
}
