// Package auth is the Globus Auth substitute: an OAuth2-style token service
// with identities, scopes, introspection, and the authentication policies
// that the paper's multi-user endpoints enforce at the web-service layer
// (allowed/excluded identity domains, required identity provider, and
// maximum session age).
package auth

import (
	"crypto/rand"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"globuscompute/internal/protocol"
)

// Common errors.
var (
	ErrInvalidToken  = errors.New("auth: invalid or expired token")
	ErrPolicyDenied  = errors.New("auth: denied by authentication policy")
	ErrUnknownPolicy = errors.New("auth: unknown policy")
	ErrMissingScope  = errors.New("auth: token missing required scope")
	ErrBadIdentity   = errors.New("auth: malformed identity username")
)

// Identity is a Globus-style identity: username "user@domain" plus the
// identity provider that authenticated it.
type Identity struct {
	// Subject is the stable identity UUID.
	Subject protocol.UUID `json:"sub"`
	// Username is the identity username, e.g. "alice@uchicago.edu".
	Username string `json:"username"`
	// Provider names the identity provider that vouched for this identity.
	Provider string `json:"idp"`
}

// Domain returns the part after '@' in the username.
func (id Identity) Domain() string {
	_, domain, ok := strings.Cut(id.Username, "@")
	if !ok {
		return ""
	}
	return domain
}

// Validate checks the identity is well formed.
func (id Identity) Validate() error {
	if id.Domain() == "" || strings.HasPrefix(id.Username, "@") {
		return fmt.Errorf("%w: %q", ErrBadIdentity, id.Username)
	}
	return nil
}

// Token is an issued bearer token with its claims.
type Token struct {
	Value    string   `json:"value"`
	Identity Identity `json:"identity"`
	Scopes   []string `json:"scopes"`
	// AuthTime records when the user authenticated (for session-age
	// policies); IssuedAt when this token was minted.
	AuthTime time.Time `json:"auth_time"`
	IssuedAt time.Time `json:"issued_at"`
	Expires  time.Time `json:"expires"`
	revoked  bool
}

// HasScope reports whether the token carries scope.
func (t Token) HasScope(scope string) bool {
	for _, s := range t.Scopes {
		if s == scope {
			return true
		}
	}
	return false
}

// Standard scopes used by the compute service.
const (
	ScopeCompute = "compute.api"
	ScopeManage  = "compute.manage_endpoints"
)

// Service issues and introspects tokens. Safe for concurrent use.
type Service struct {
	mu       sync.RWMutex
	tokens   map[string]*Token
	policies map[string]Policy
	now      func() time.Time
	// DefaultTTL applies when Issue is called with ttl <= 0.
	DefaultTTL time.Duration
}

// NewService returns an empty auth service.
func NewService() *Service {
	return &Service{
		tokens:     make(map[string]*Token),
		policies:   make(map[string]Policy),
		now:        time.Now,
		DefaultTTL: time.Hour,
	}
}

// SetClock overrides the time source (tests).
func (s *Service) SetClock(now func() time.Time) { s.now = now }

// Issue mints a bearer token for the identity. authTime conveys when the
// user actually authenticated with their provider; zero means "now".
func (s *Service) Issue(id Identity, scopes []string, ttl time.Duration, authTime time.Time) (Token, error) {
	if err := id.Validate(); err != nil {
		return Token{}, err
	}
	if id.Subject == "" {
		id.Subject = protocol.NewUUID()
	}
	if ttl <= 0 {
		ttl = s.DefaultTTL
	}
	var raw [24]byte
	if _, err := rand.Read(raw[:]); err != nil {
		return Token{}, fmt.Errorf("auth: token entropy: %w", err)
	}
	now := s.now()
	if authTime.IsZero() {
		authTime = now
	}
	tok := Token{
		Value:    "gc_" + hex.EncodeToString(raw[:]),
		Identity: id,
		Scopes:   append([]string(nil), scopes...),
		AuthTime: authTime,
		IssuedAt: now,
		Expires:  now.Add(ttl),
	}
	s.mu.Lock()
	s.tokens[tok.Value] = &tok
	s.mu.Unlock()
	return tok, nil
}

// Introspect validates a bearer token value and returns its claims.
func (s *Service) Introspect(value string) (Token, error) {
	s.mu.RLock()
	tok, ok := s.tokens[value]
	s.mu.RUnlock()
	if !ok || tok.revoked {
		return Token{}, ErrInvalidToken
	}
	if s.now().After(tok.Expires) {
		return Token{}, fmt.Errorf("%w: expired at %s", ErrInvalidToken, tok.Expires)
	}
	return *tok, nil
}

// Authorize introspects and additionally requires a scope.
func (s *Service) Authorize(value, scope string) (Token, error) {
	tok, err := s.Introspect(value)
	if err != nil {
		return Token{}, err
	}
	if !tok.HasScope(scope) {
		return Token{}, fmt.Errorf("%w: %q", ErrMissingScope, scope)
	}
	return tok, nil
}

// Revoke invalidates a token.
func (s *Service) Revoke(value string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if tok, ok := s.tokens[value]; ok {
		tok.revoked = true
	}
}

// Policy is an authentication policy evaluated by the web service before a
// request reaches an endpoint, mirroring the cloud-enforced policies of
// §IV-A5: domain inclusion/exclusion, a required identity provider, and a
// bound on how long ago the user authenticated.
type Policy struct {
	Name string `json:"name"`
	// AllowedDomains, when non-empty, is an allowlist of identity domains.
	AllowedDomains []string `json:"allowed_domains,omitempty"`
	// ExcludedDomains always deny.
	ExcludedDomains []string `json:"excluded_domains,omitempty"`
	// RequiredProvider, when set, demands authentication via this IdP.
	RequiredProvider string `json:"required_provider,omitempty"`
	// MaxSessionAge, when positive, requires AuthTime within this window.
	MaxSessionAge time.Duration `json:"max_session_age,omitempty"`
}

// Evaluate applies the policy to a token's claims at time now.
func (p Policy) Evaluate(tok Token, now time.Time) error {
	domain := tok.Identity.Domain()
	for _, d := range p.ExcludedDomains {
		if strings.EqualFold(domain, d) {
			return fmt.Errorf("%w %q: domain %q excluded", ErrPolicyDenied, p.Name, domain)
		}
	}
	if len(p.AllowedDomains) > 0 {
		ok := false
		for _, d := range p.AllowedDomains {
			if strings.EqualFold(domain, d) {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("%w %q: domain %q not allowed", ErrPolicyDenied, p.Name, domain)
		}
	}
	if p.RequiredProvider != "" && !strings.EqualFold(tok.Identity.Provider, p.RequiredProvider) {
		return fmt.Errorf("%w %q: identity provider %q required", ErrPolicyDenied, p.Name, p.RequiredProvider)
	}
	if p.MaxSessionAge > 0 && now.Sub(tok.AuthTime) > p.MaxSessionAge {
		return fmt.Errorf("%w %q: authentication older than %s", ErrPolicyDenied, p.Name, p.MaxSessionAge)
	}
	return nil
}

// RegisterPolicy stores a named policy.
func (s *Service) RegisterPolicy(p Policy) error {
	if p.Name == "" {
		return errors.New("auth: policy requires a name")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.policies[p.Name] = p
	return nil
}

// EvaluatePolicy looks up a named policy and applies it to the token.
// An empty policy name means "no policy" and always passes.
func (s *Service) EvaluatePolicy(name string, tok Token) error {
	if name == "" {
		return nil
	}
	s.mu.RLock()
	p, ok := s.policies[name]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownPolicy, name)
	}
	return p.Evaluate(tok, s.now())
}
