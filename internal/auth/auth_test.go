package auth

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func alice() Identity {
	return Identity{Username: "alice@uchicago.edu", Provider: "uchicago"}
}

func TestIssueIntrospect(t *testing.T) {
	s := NewService()
	tok, err := s.Issue(alice(), []string{ScopeCompute}, time.Minute, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tok.Value, "gc_") {
		t.Errorf("token value %q", tok.Value)
	}
	got, err := s.Introspect(tok.Value)
	if err != nil {
		t.Fatal(err)
	}
	if got.Identity.Username != "alice@uchicago.edu" {
		t.Errorf("identity = %+v", got.Identity)
	}
	if got.Identity.Subject == "" {
		t.Error("subject not assigned")
	}
	if !got.HasScope(ScopeCompute) {
		t.Error("scope missing")
	}
}

func TestIntrospectUnknown(t *testing.T) {
	s := NewService()
	if _, err := s.Introspect("gc_bogus"); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("err = %v", err)
	}
}

func TestTokenExpiry(t *testing.T) {
	s := NewService()
	base := time.Date(2024, 8, 1, 0, 0, 0, 0, time.UTC)
	s.SetClock(func() time.Time { return base })
	tok, _ := s.Issue(alice(), nil, time.Minute, time.Time{})
	s.SetClock(func() time.Time { return base.Add(2 * time.Minute) })
	if _, err := s.Introspect(tok.Value); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("expired token introspected: %v", err)
	}
}

func TestRevoke(t *testing.T) {
	s := NewService()
	tok, _ := s.Issue(alice(), nil, time.Hour, time.Time{})
	s.Revoke(tok.Value)
	if _, err := s.Introspect(tok.Value); !errors.Is(err, ErrInvalidToken) {
		t.Errorf("revoked token introspected: %v", err)
	}
	s.Revoke("gc_missing") // no panic
}

func TestAuthorizeScope(t *testing.T) {
	s := NewService()
	tok, _ := s.Issue(alice(), []string{ScopeCompute}, time.Hour, time.Time{})
	if _, err := s.Authorize(tok.Value, ScopeCompute); err != nil {
		t.Errorf("Authorize = %v", err)
	}
	if _, err := s.Authorize(tok.Value, ScopeManage); !errors.Is(err, ErrMissingScope) {
		t.Errorf("Authorize wrong scope = %v", err)
	}
}

func TestBadIdentityRejected(t *testing.T) {
	s := NewService()
	for _, name := range []string{"", "nodomain", "@domain.only"} {
		if _, err := s.Issue(Identity{Username: name}, nil, time.Hour, time.Time{}); !errors.Is(err, ErrBadIdentity) {
			t.Errorf("Issue(%q) = %v, want ErrBadIdentity", name, err)
		}
	}
}

func TestIdentityDomain(t *testing.T) {
	if d := alice().Domain(); d != "uchicago.edu" {
		t.Errorf("Domain = %q", d)
	}
	if d := (Identity{Username: "plain"}).Domain(); d != "" {
		t.Errorf("Domain of bare username = %q", d)
	}
}

func TestPolicyAllowedDomains(t *testing.T) {
	p := Policy{Name: "uc-only", AllowedDomains: []string{"uchicago.edu"}}
	now := time.Now()
	ok := Token{Identity: alice(), AuthTime: now}
	if err := p.Evaluate(ok, now); err != nil {
		t.Errorf("allowed domain rejected: %v", err)
	}
	bad := Token{Identity: Identity{Username: "eve@evil.example"}, AuthTime: now}
	if err := p.Evaluate(bad, now); !errors.Is(err, ErrPolicyDenied) {
		t.Errorf("disallowed domain passed: %v", err)
	}
}

func TestPolicyExcludedDomains(t *testing.T) {
	p := Policy{Name: "no-anon", ExcludedDomains: []string{"anonymous.example"}}
	now := time.Now()
	bad := Token{Identity: Identity{Username: "x@anonymous.example"}, AuthTime: now}
	if err := p.Evaluate(bad, now); !errors.Is(err, ErrPolicyDenied) {
		t.Errorf("excluded domain passed: %v", err)
	}
	// Exclusion wins even when the domain is also in the allowlist.
	p2 := Policy{Name: "conflict", AllowedDomains: []string{"a.edu"}, ExcludedDomains: []string{"a.edu"}}
	tok := Token{Identity: Identity{Username: "u@a.edu"}, AuthTime: now}
	if err := p2.Evaluate(tok, now); !errors.Is(err, ErrPolicyDenied) {
		t.Errorf("exclusion did not dominate: %v", err)
	}
}

func TestPolicyRequiredProvider(t *testing.T) {
	p := Policy{Name: "idp", RequiredProvider: "uchicago"}
	now := time.Now()
	if err := p.Evaluate(Token{Identity: alice(), AuthTime: now}, now); err != nil {
		t.Errorf("matching provider rejected: %v", err)
	}
	other := Token{Identity: Identity{Username: "a@b.edu", Provider: "orcid"}, AuthTime: now}
	if err := p.Evaluate(other, now); !errors.Is(err, ErrPolicyDenied) {
		t.Errorf("wrong provider passed: %v", err)
	}
}

func TestPolicySessionAge(t *testing.T) {
	p := Policy{Name: "fresh", MaxSessionAge: time.Hour}
	now := time.Now()
	fresh := Token{Identity: alice(), AuthTime: now.Add(-30 * time.Minute)}
	if err := p.Evaluate(fresh, now); err != nil {
		t.Errorf("fresh session rejected: %v", err)
	}
	stale := Token{Identity: alice(), AuthTime: now.Add(-2 * time.Hour)}
	if err := p.Evaluate(stale, now); !errors.Is(err, ErrPolicyDenied) {
		t.Errorf("stale session passed: %v", err)
	}
}

func TestPolicyCaseInsensitiveDomains(t *testing.T) {
	p := Policy{Name: "ci", AllowedDomains: []string{"UChicago.EDU"}}
	now := time.Now()
	if err := p.Evaluate(Token{Identity: alice(), AuthTime: now}, now); err != nil {
		t.Errorf("case-insensitive match failed: %v", err)
	}
}

func TestServicePolicyRegistry(t *testing.T) {
	s := NewService()
	if err := s.RegisterPolicy(Policy{}); err == nil {
		t.Error("unnamed policy registered")
	}
	s.RegisterPolicy(Policy{Name: "uc", AllowedDomains: []string{"uchicago.edu"}})
	tok, _ := s.Issue(alice(), nil, time.Hour, time.Time{})
	claims, _ := s.Introspect(tok.Value)
	if err := s.EvaluatePolicy("uc", claims); err != nil {
		t.Errorf("EvaluatePolicy = %v", err)
	}
	if err := s.EvaluatePolicy("missing", claims); !errors.Is(err, ErrUnknownPolicy) {
		t.Errorf("unknown policy = %v", err)
	}
	if err := s.EvaluatePolicy("", claims); err != nil {
		t.Errorf("empty policy name should pass: %v", err)
	}
}

func TestTokensAreUnique(t *testing.T) {
	s := NewService()
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		tok, err := s.Issue(alice(), nil, time.Hour, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		if seen[tok.Value] {
			t.Fatal("duplicate token value")
		}
		seen[tok.Value] = true
	}
}
