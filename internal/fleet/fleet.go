// Package fleet implements the scheduling layer the paper's §VI describes
// being built on Globus Compute: Delta profiles function execution across
// endpoints and routes each task to the endpoint predicted to finish it
// soonest; GreenFaaS applies the same model to energy, weighting predicted
// runtime by per-endpoint power draw. Both exploit multi-user endpoints'
// remotely configurable capacity.
package fleet

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"time"

	"globuscompute/internal/metrics"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

// Policy selects the routing objective.
type Policy string

const (
	// Fastest minimizes predicted time-to-result (Delta).
	Fastest Policy = "fastest"
	// Greenest minimizes predicted energy = power x predicted latency
	// (GreenFaaS).
	Greenest Policy = "greenest"
	// RoundRobin ignores profiles (the baseline).
	RoundRobin Policy = "round-robin"
)

// Target is one schedulable endpoint.
type Target struct {
	Name     string
	Endpoint protocol.UUID
	// Executor submits to the endpoint.
	Executor *sdk.Executor
	// PowerWatts models the endpoint's draw for the energy objective.
	PowerWatts float64
}

// Profiler keeps exponentially weighted latency estimates per
// (function label, target) pair — Delta's predictive model.
type Profiler struct {
	mu    sync.Mutex
	alpha float64
	ewma  map[string]float64 // label|target -> seconds
	count map[string]int
}

// NewProfiler returns a profiler with smoothing factor alpha
// (0 < alpha <= 1; default 0.3).
func NewProfiler(alpha float64) *Profiler {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.3
	}
	return &Profiler{alpha: alpha, ewma: make(map[string]float64), count: make(map[string]int)}
}

func key(label, target string) string { return label + "|" + target }

// Record folds one observed latency into the estimate.
func (p *Profiler) Record(label, target string, latency time.Duration) {
	k := key(label, target)
	p.mu.Lock()
	defer p.mu.Unlock()
	sec := latency.Seconds()
	if n := p.count[k]; n == 0 {
		p.ewma[k] = sec
	} else {
		p.ewma[k] = p.alpha*sec + (1-p.alpha)*p.ewma[k]
	}
	p.count[k]++
}

// Predict returns the estimated latency and whether any observations
// exist.
func (p *Profiler) Predict(label, target string) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := key(label, target)
	if p.count[k] == 0 {
		return 0, false
	}
	return time.Duration(p.ewma[k] * float64(time.Second)), true
}

// Samples returns the observation count for a pair.
func (p *Profiler) Samples(label, target string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.count[key(label, target)]
}

// SubmitFunc performs the actual submission against the chosen target.
type SubmitFunc func(t *Target) (*sdk.Future, error)

// Scheduler routes submissions across targets per its policy.
type Scheduler struct {
	policy   Policy
	targets  []*Target
	profiler *Profiler

	mu sync.Mutex
	rr int

	Metrics *metrics.Registry
}

// NewScheduler builds a scheduler over targets.
func NewScheduler(policy Policy, targets []*Target) (*Scheduler, error) {
	if len(targets) == 0 {
		return nil, errors.New("fleet: no targets")
	}
	seen := map[string]bool{}
	for _, t := range targets {
		if t.Name == "" {
			return nil, errors.New("fleet: target without a name")
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("fleet: duplicate target %q", t.Name)
		}
		seen[t.Name] = true
	}
	switch policy {
	case Fastest, Greenest, RoundRobin:
	default:
		return nil, fmt.Errorf("fleet: unknown policy %q", policy)
	}
	return &Scheduler{
		policy:   policy,
		targets:  targets,
		profiler: NewProfiler(0),
		Metrics:  metrics.NewRegistry(),
	}, nil
}

// Profiler exposes the underlying model (for inspection and tests).
func (s *Scheduler) Profiler() *Profiler { return s.profiler }

// Pick chooses the target for a function label under the policy. Unprofiled
// targets are explored first so every endpoint gets sampled.
func (s *Scheduler) Pick(label string) *Target {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.policy == RoundRobin {
		t := s.targets[s.rr%len(s.targets)]
		s.rr++
		return t
	}
	// Exploration: any target without samples gets the next task.
	for _, t := range s.targets {
		if s.profiler.Samples(label, t.Name) == 0 {
			return t
		}
	}
	best := s.targets[0]
	bestScore := math.Inf(1)
	for _, t := range s.targets {
		pred, _ := s.profiler.Predict(label, t.Name)
		score := pred.Seconds()
		if s.policy == Greenest {
			watts := t.PowerWatts
			if watts <= 0 {
				watts = 1
			}
			score *= watts // joules
		}
		if score < bestScore {
			bestScore = score
			best = t
		}
	}
	return best
}

// Submit routes one submission: it picks a target, submits through it, and
// asynchronously records the observed time-to-result into the profile.
func (s *Scheduler) Submit(label string, submit SubmitFunc) (*sdk.Future, *Target, error) {
	target := s.Pick(label)
	start := time.Now()
	fut, err := submit(target)
	if err != nil {
		return nil, target, err
	}
	s.Metrics.Counter("routed." + target.Name).Inc()
	go func() {
		<-fut.Done()
		s.profiler.Record(label, target.Name, time.Since(start))
	}()
	return fut, target, nil
}

// SubmitFunction is Submit for a PythonFunction, labeled by entrypoint.
func (s *Scheduler) SubmitFunction(fn *sdk.PythonFunction, args ...any) (*sdk.Future, *Target, error) {
	return s.Submit(fn.Entrypoint, func(t *Target) (*sdk.Future, error) {
		return t.Executor.Submit(fn, args...)
	})
}

// SubmitShell is Submit for a ShellFunction, labeled by its command
// template.
func (s *Scheduler) SubmitShell(fn *sdk.ShellFunction, kwargs map[string]string) (*sdk.Future, *Target, error) {
	return s.Submit(fn.Command, func(t *Target) (*sdk.Future, error) {
		return t.Executor.SubmitShell(fn, kwargs)
	})
}

// Routed reports how many submissions each target received.
func (s *Scheduler) Routed() map[string]int64 {
	out := make(map[string]int64, len(s.targets))
	for _, t := range s.targets {
		out[t.Name] = s.Metrics.Counter("routed." + t.Name).Value()
	}
	return out
}

// EstimatedEnergy predicts the energy (joules) a task with the given label
// would cost on each target — the GreenFaaS planning view.
func (s *Scheduler) EstimatedEnergy(label string) map[string]float64 {
	out := make(map[string]float64, len(s.targets))
	for _, t := range s.targets {
		pred, ok := s.profiler.Predict(label, t.Name)
		if !ok {
			continue
		}
		watts := t.PowerWatts
		if watts <= 0 {
			watts = 1
		}
		out[t.Name] = pred.Seconds() * watts
	}
	return out
}
