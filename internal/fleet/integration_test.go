package fleet_test

import (
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/fleet"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/sdk"
)

// TestFastestRoutesToFasterEndpoint runs real tasks through two endpoints
// of very different capacity and checks the Delta-style policy learns to
// prefer the faster one.
func TestFastestRoutesToFasterEndpoint(t *testing.T) {
	tb, err := core.NewTestbed(core.Options{ClusterNodes: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("fleet@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	objs := objectstore.NewClient(tb.ObjectsSrv.Addr())

	makeTarget := func(name string, workers int, watts float64) *fleet.Target {
		// MaxBlocks 1 pins capacity so the endpoints stay heterogeneous
		// (no elastic scale-out on the slow one).
		epID, err := tb.StartEndpoint(core.EndpointOptions{Name: name, Owner: "fleet", Workers: workers, MaxBlocks: 1})
		if err != nil {
			t.Fatal(err)
		}
		ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
			Client: client, EndpointID: epID, Conn: bc.AsConn(), Objects: objs,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(ex.Close)
		return &fleet.Target{Name: name, Endpoint: epID, Executor: ex, PowerWatts: watts}
	}

	// The fast endpoint has 8 workers; the slow one a single worker, so
	// queueing inflates its observed time-to-result under load.
	fast := makeTarget("fast", 8, 400)
	slow := makeTarget("slow", 1, 50)
	sched, err := fleet.NewScheduler(fleet.Fastest, []*fleet.Target{fast, slow})
	if err != nil {
		t.Fatal(err)
	}

	sf := sdk.NewShellFunction("sleep 0.05")
	const rounds = 12
	for i := 0; i < rounds; i++ {
		// Keep both endpoints loaded: 4 concurrent submissions per round.
		var futs []*sdk.Future
		for j := 0; j < 4; j++ {
			fut, _, err := sched.SubmitShell(sf, nil)
			if err != nil {
				t.Fatal(err)
			}
			futs = append(futs, fut)
		}
		for _, fut := range futs {
			if _, err := fut.ResultWithin(60 * time.Second); err != nil {
				t.Fatal(err)
			}
		}
	}
	routed := sched.Routed()
	if routed["fast"] <= routed["slow"] {
		t.Errorf("routing did not favor the faster endpoint: %v", routed)
	}
	// Profiles exist for both targets (exploration happened).
	if sched.Profiler().Samples(sf.Command, "slow") == 0 {
		t.Error("slow endpoint never sampled")
	}
}
