package fleet

import (
	"testing"
	"time"
)

func TestProfilerEWMA(t *testing.T) {
	p := NewProfiler(0.5)
	if _, ok := p.Predict("f", "a"); ok {
		t.Error("prediction before samples")
	}
	p.Record("f", "a", 100*time.Millisecond)
	pred, ok := p.Predict("f", "a")
	if !ok || pred != 100*time.Millisecond {
		t.Errorf("first prediction = %v, %v", pred, ok)
	}
	p.Record("f", "a", 200*time.Millisecond)
	pred, _ = p.Predict("f", "a")
	if pred != 150*time.Millisecond { // 0.5*200 + 0.5*100
		t.Errorf("ewma = %v, want 150ms", pred)
	}
	if p.Samples("f", "a") != 2 {
		t.Errorf("samples = %d", p.Samples("f", "a"))
	}
	// Other labels and targets are independent.
	if _, ok := p.Predict("g", "a"); ok {
		t.Error("label leakage")
	}
	if _, ok := p.Predict("f", "b"); ok {
		t.Error("target leakage")
	}
}

func TestProfilerDefaultAlpha(t *testing.T) {
	p := NewProfiler(-1)
	p.Record("f", "a", time.Second)
	p.Record("f", "a", 2*time.Second)
	pred, _ := p.Predict("f", "a")
	// alpha 0.3: 0.3*2 + 0.7*1 = 1.3s (within float tolerance)
	if diff := pred - 1300*time.Millisecond; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("pred = %v", pred)
	}
}

func newTestScheduler(t *testing.T, policy Policy) *Scheduler {
	t.Helper()
	s, err := NewScheduler(policy, []*Target{
		{Name: "fast", PowerWatts: 400},
		{Name: "slow", PowerWatts: 50},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(Fastest, nil); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := NewScheduler(Fastest, []*Target{{}}); err == nil {
		t.Error("unnamed target accepted")
	}
	if _, err := NewScheduler(Fastest, []*Target{{Name: "a"}, {Name: "a"}}); err == nil {
		t.Error("duplicate target accepted")
	}
	if _, err := NewScheduler("warp", []*Target{{Name: "a"}}); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestRoundRobinAlternates(t *testing.T) {
	s := newTestScheduler(t, RoundRobin)
	seen := map[string]int{}
	for i := 0; i < 10; i++ {
		seen[s.Pick("f").Name]++
	}
	if seen["fast"] != 5 || seen["slow"] != 5 {
		t.Errorf("distribution = %v", seen)
	}
}

func TestExplorationBeforeExploitation(t *testing.T) {
	s := newTestScheduler(t, Fastest)
	first := s.Pick("f")
	s.Profiler().Record("f", first.Name, 10*time.Millisecond)
	second := s.Pick("f")
	if second.Name == first.Name {
		t.Errorf("second pick %q did not explore the unprofiled target", second.Name)
	}
}

func TestFastestPolicyExploits(t *testing.T) {
	s := newTestScheduler(t, Fastest)
	s.Profiler().Record("f", "fast", 10*time.Millisecond)
	s.Profiler().Record("f", "slow", 200*time.Millisecond)
	for i := 0; i < 5; i++ {
		if got := s.Pick("f"); got.Name != "fast" {
			t.Fatalf("pick = %q, want fast", got.Name)
		}
	}
	// Per-label profiles: another function still explores.
	if got := s.Pick("other"); s.Profiler().Samples("other", got.Name) != 0 {
		t.Error("exploration skipped for fresh label")
	}
}

func TestGreenestPolicyWeighsPower(t *testing.T) {
	// fast endpoint: 10ms at 400W = 4 J; slow endpoint: 50ms at 50W =
	// 2.5 J. Greenest picks slow; fastest picks fast.
	green := newTestScheduler(t, Greenest)
	green.Profiler().Record("f", "fast", 10*time.Millisecond)
	green.Profiler().Record("f", "slow", 50*time.Millisecond)
	if got := green.Pick("f"); got.Name != "slow" {
		t.Errorf("greenest pick = %q, want slow", got.Name)
	}
	fast := newTestScheduler(t, Fastest)
	fast.Profiler().Record("f", "fast", 10*time.Millisecond)
	fast.Profiler().Record("f", "slow", 50*time.Millisecond)
	if got := fast.Pick("f"); got.Name != "fast" {
		t.Errorf("fastest pick = %q, want fast", got.Name)
	}
	energy := green.EstimatedEnergy("f")
	if energy["fast"] <= energy["slow"] {
		t.Errorf("energy = %v, want fast > slow", energy)
	}
}

func TestGreenestDefaultsPowerToOne(t *testing.T) {
	s, _ := NewScheduler(Greenest, []*Target{
		{Name: "a"}, {Name: "b"},
	})
	s.Profiler().Record("f", "a", 10*time.Millisecond)
	s.Profiler().Record("f", "b", 20*time.Millisecond)
	if got := s.Pick("f"); got.Name != "a" {
		t.Errorf("pick = %q", got.Name)
	}
}
