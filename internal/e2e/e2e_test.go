// Package e2e builds the actual command binaries and drives them as
// separate OS processes: gc-webservice serving the cloud, gc-endpoint and
// gc-mep attaching over TCP, and the SDK submitting real tasks — the full
// deployment topology, nothing in-process.
package e2e

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
)

// binaries builds the three commands once per test binary.
var (
	buildOnce sync.Once
	buildDir  string
	buildErr  error
)

func buildBinaries(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		buildDir, buildErr = os.MkdirTemp("", "gc-e2e-*")
		if buildErr != nil {
			return
		}
		for _, name := range []string{"gc-webservice", "gc-endpoint", "gc-mep"} {
			cmd := exec.Command("go", "build", "-o", filepath.Join(buildDir, name), "globuscompute/cmd/"+name)
			cmd.Dir = repoRoot()
			out, err := cmd.CombinedOutput()
			if err != nil {
				buildErr = fmt.Errorf("build %s: %v\n%s", name, err, out)
				return
			}
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildDir
}

// repoRoot walks up from the working directory to the go.mod.
func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

// process wraps a child with line-scanning helpers.
type process struct {
	cmd   *exec.Cmd
	lines chan string
	buf   []string
	mu    sync.Mutex
}

func startProcess(t *testing.T, bin string, args ...string) *process {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout // interleave; both scanned
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	p := &process{cmd: cmd, lines: make(chan string, 256)}
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			p.mu.Lock()
			p.buf = append(p.buf, line)
			p.mu.Unlock()
			select {
			case p.lines <- line:
			default:
			}
		}
		close(p.lines)
	}()
	t.Cleanup(func() {
		cmd.Process.Signal(os.Interrupt)
		done := make(chan struct{})
		go func() { cmd.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
		}
	})
	return p
}

// waitMatch scans output lines for a regex and returns the first submatch.
func (p *process) waitMatch(t *testing.T, pattern string, timeout time.Duration) string {
	t.Helper()
	re := regexp.MustCompile(pattern)
	// Replay lines already captured.
	p.mu.Lock()
	for _, line := range p.buf {
		if m := re.FindStringSubmatch(line); m != nil {
			p.mu.Unlock()
			return m[1]
		}
	}
	p.mu.Unlock()
	deadline := time.After(timeout)
	for {
		select {
		case line, ok := <-p.lines:
			if !ok {
				t.Fatalf("process exited before matching %q; output:\n%s", pattern, p.dump())
			}
			if m := re.FindStringSubmatch(line); m != nil {
				return m[1]
			}
		case <-deadline:
			t.Fatalf("timed out matching %q; output:\n%s", pattern, p.dump())
		}
	}
}

func (p *process) dump() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strings.Join(p.buf, "\n")
}

// TestBinariesTLSBroker runs the deployment with the AMQPS-equivalent TLS
// broker: the service writes a CA file, the endpoint pins it.
func TestBinariesTLSBroker(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short mode")
	}
	bins := buildBinaries(t)
	caPath := filepath.Join(t.TempDir(), "broker-ca.pem")

	ws := startProcess(t, filepath.Join(bins, "gc-webservice"),
		"-http", "127.0.0.1:0", "-broker", "127.0.0.1:0", "-objects", "127.0.0.1:0",
		"-broker-tls", "-broker-ca-out", caPath)
	api := ws.waitMatch(t, `REST API:\s+http://(\S+)`, 15*time.Second)
	token := ws.waitMatch(t, `bootstrap token \([^)]*\): (\S+)`, 15*time.Second)

	ep := startProcess(t, filepath.Join(bins, "gc-endpoint"),
		"-service", api, "-token", token, "-name", "tls-ep", "-broker-ca", caPath)
	epID := ep.waitMatch(t, `gc-endpoint registered: (\S+)`, 15*time.Second)
	ep.waitMatch(t, `(online); waiting for tasks`, 15*time.Second)

	client := sdk.NewClient(api, token)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: client, EndpointID: protocol.UUID(epID),
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fut, err := ex.SubmitShell(sdk.NewShellFunction("echo over-tls"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		t.Fatalf("%v\nendpoint output:\n%s", err, ep.dump())
	}
	if sr.Stdout != "over-tls" {
		t.Errorf("stdout = %q", sr.Stdout)
	}
}

func TestBinariesEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("process-level e2e skipped in -short mode")
	}
	bins := buildBinaries(t)

	// Cloud.
	ws := startProcess(t, filepath.Join(bins, "gc-webservice"),
		"-http", "127.0.0.1:0", "-broker", "127.0.0.1:0", "-objects", "127.0.0.1:0")
	api := ws.waitMatch(t, `REST API:\s+http://(\S+)`, 15*time.Second)
	token := ws.waitMatch(t, `bootstrap token \([^)]*\): (\S+)`, 15*time.Second)

	// Single-user endpoint agent, TCP engine transport.
	ep := startProcess(t, filepath.Join(bins, "gc-endpoint"),
		"-service", api, "-token", token, "-name", "e2e-ep", "-transport", "tcp")
	epID := ep.waitMatch(t, `gc-endpoint registered: (\S+)`, 15*time.Second)
	ep.waitMatch(t, `(online); waiting for tasks`, 15*time.Second)

	// Submit a shell task through the SDK (polling mode: no broker client
	// needed in the test process).
	client := sdk.NewClient(api, token)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:       client,
		EndpointID:   protocol.UUID(epID),
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()
	fut, err := ex.SubmitShell(sdk.NewShellFunction("echo from-separate-process"), nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	sr, err := fut.ShellResult(ctx)
	if err != nil {
		t.Fatalf("%v\nendpoint output:\n%s", err, ep.dump())
	}
	if sr.Stdout != "from-separate-process" {
		t.Errorf("stdout = %q", sr.Stdout)
	}

	// Multi-user endpoint in its own process.
	mep := startProcess(t, filepath.Join(bins, "gc-mep"),
		"-service", api, "-token", token, "-name", "e2e-mep", "-idle-timeout", "0")
	mepID := mep.waitMatch(t, `gc-mep registered: (\S+)`, 15*time.Second)
	mep.waitMatch(t, `(online); .*waiting for start-endpoint requests`, 15*time.Second)

	ex2, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client:       client,
		EndpointID:   protocol.UUID(mepID),
		PollInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex2.Close()
	ex2.UserEndpointConfig = map[string]any{"NODES_PER_BLOCK": 1, "ACCOUNT_ID": "e2e"}
	fut2, err := ex2.SubmitShell(sdk.NewShellFunction("echo user=$GC_LOCAL_USER"), nil)
	if err != nil {
		t.Fatal(err)
	}
	sr2, err := fut2.ShellResult(ctx)
	if err != nil {
		t.Fatalf("%v\nmep output:\n%s", err, mep.dump())
	}
	if sr2.Stdout != "user=demo" { // demo@example.edu maps to its local part
		t.Errorf("stdout = %q", sr2.Stdout)
	}

	// The service reports the whole fleet.
	usage, err := client.Usage()
	if err != nil {
		t.Fatal(err)
	}
	if usage.Endpoints < 3 || usage.MultiUserEPs != 1 || usage.UserEndpoints != 1 {
		t.Errorf("usage = %+v", usage)
	}
}
