package idmap

import (
	"errors"
	"testing"

	"globuscompute/internal/auth"
)

func ident(username string) auth.Identity {
	return auth.Identity{Username: username, Provider: "test-idp", Subject: "01234567-89ab-4def-8123-456789abcdef"}
}

func TestListing8Mapping(t *testing.T) {
	// The paper's Listing 8: any @uchicago.edu identity maps to the local
	// part of the username.
	m, err := NewExpressionMapper([]Rule{{
		Source: "{username}",
		Match:  `(.*)@uchicago\.edu`,
		Output: "{0}",
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Map(ident("alice@uchicago.edu"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "alice" {
		t.Errorf("mapped to %q", got)
	}
	if _, err := m.Map(ident("bob@anl.gov")); !errors.Is(err, ErrNoMapping) {
		t.Errorf("foreign domain mapped: %v", err)
	}
}

func TestRuleOrderFirstWins(t *testing.T) {
	m, err := NewExpressionMapper([]Rule{
		{Match: `admin@site\.edu`, Output: "root"},
		{Match: `(.*)@site\.edu`, Output: "{0}"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := m.Map(ident("admin@site.edu")); got != "root" {
		t.Errorf("admin mapped to %q", got)
	}
	if got, _ := m.Map(ident("carol@site.edu")); got != "carol" {
		t.Errorf("carol mapped to %q", got)
	}
}

func TestIgnoreCase(t *testing.T) {
	m, err := NewExpressionMapper([]Rule{{
		Match: `(.*)@Site\.EDU`, Output: "{0}", IgnoreCase: true,
	}})
	if err != nil {
		t.Fatal(err)
	}
	if got, err := m.Map(ident("Dave@site.edu")); err != nil || got != "Dave" {
		t.Errorf("got %q, %v", got, err)
	}
}

func TestSourceFields(t *testing.T) {
	m, err := NewExpressionMapper([]Rule{{
		Source: "{idp}:{domain}",
		Match:  `test-idp:(anl\.gov)`,
		Output: "site-{0}",
	}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := m.Map(ident("eve@anl.gov"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "site-anl.gov" {
		t.Errorf("got %q", got)
	}
}

func TestMatchIsAnchored(t *testing.T) {
	m, _ := NewExpressionMapper([]Rule{{Match: `(\w+)@x\.edu`, Output: "{0}"}})
	if _, err := m.Map(ident("evil@x.edu.attacker.com")); !errors.Is(err, ErrNoMapping) {
		t.Errorf("suffix-extended domain mapped: %v", err)
	}
}

func TestMultipleGroups(t *testing.T) {
	m, _ := NewExpressionMapper([]Rule{{
		Match:  `(\w+)\.(\w+)@dept\.edu`,
		Output: "{1}_{0}",
	}})
	got, err := m.Map(ident("jane.doe@dept.edu"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "doe_jane" {
		t.Errorf("got %q", got)
	}
}

func TestRuleValidation(t *testing.T) {
	cases := [][]Rule{
		nil,
		{{Output: "x"}},                   // no match
		{{Match: "x"}},                    // no output
		{{Match: "([bad", Output: "{0}"}}, // bad regex
	}
	for i, rules := range cases {
		if _, err := NewExpressionMapper(rules); !errors.Is(err, ErrBadRule) {
			t.Errorf("case %d: err = %v", i, err)
		}
	}
}

func TestOutOfRangeGroupSkips(t *testing.T) {
	m, _ := NewExpressionMapper([]Rule{
		{Match: `nobody@x\.edu`, Output: "{5}"}, // group 5 doesn't exist -> empty -> skip
		{Match: `(.*)@x\.edu`, Output: "{0}"},
	})
	got, err := m.Map(ident("nobody@x.edu"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "nobody" {
		t.Errorf("got %q (fallthrough expected)", got)
	}
}

func TestParseRulesListing8Document(t *testing.T) {
	doc := `{
	  "DATA_TYPE": "expression_identity_mapping#1.0.0",
	  "mappings": [
	    {"source": "{username}", "match": "(.*)@uchicago\\.edu", "output": "{0}"}
	  ]
	}`
	rules, err := ParseRules([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 || rules[0].Match != `(.*)@uchicago\.edu` {
		t.Errorf("rules = %+v", rules)
	}
}

func TestParseRulesBareArray(t *testing.T) {
	rules, err := ParseRules([]byte(`[{"match": "x", "output": "y"}]`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 1 {
		t.Errorf("rules = %+v", rules)
	}
	if _, err := ParseRules([]byte(`{invalid`)); !errors.Is(err, ErrBadRule) {
		t.Errorf("garbage parsed: %v", err)
	}
}

func TestExternalMapper(t *testing.T) {
	// jq-free JSON handling: the callout reads the identity document and
	// derives the local part with shell tools.
	m := &ExternalMapper{Command: []string{"/bin/sh", "-c",
		`read doc; echo "$doc" | grep -o '"username":"[^"]*"' | cut -d'"' -f4 | cut -d@ -f1`}}
	got, err := m.Map(ident("frank@lab.gov"))
	if err != nil {
		t.Fatal(err)
	}
	if got != "frank" {
		t.Errorf("got %q", got)
	}
}

func TestExternalMapperFailure(t *testing.T) {
	m := &ExternalMapper{Command: []string{"/bin/false"}}
	if _, err := m.Map(ident("x@y.z")); !errors.Is(err, ErrBadCommand) {
		t.Errorf("err = %v", err)
	}
	empty := &ExternalMapper{Command: []string{"/bin/sh", "-c", "true"}}
	if _, err := empty.Map(ident("x@y.z")); !errors.Is(err, ErrNoMapping) {
		t.Errorf("empty output err = %v", err)
	}
	none := &ExternalMapper{}
	if _, err := none.Map(ident("x@y.z")); !errors.Is(err, ErrBadCommand) {
		t.Errorf("no command err = %v", err)
	}
}

func TestChainFallsThrough(t *testing.T) {
	expr, _ := NewExpressionMapper([]Rule{{Match: `(.*)@primary\.edu`, Output: "{0}"}})
	chain := Chain{expr, Static{"guest@other.org": "guest01"}}
	if got, _ := chain.Map(ident("ann@primary.edu")); got != "ann" {
		t.Errorf("primary mapping got %q", got)
	}
	if got, _ := chain.Map(ident("guest@other.org")); got != "guest01" {
		t.Errorf("fallback mapping got %q", got)
	}
	if _, err := chain.Map(ident("stranger@nowhere.net")); !errors.Is(err, ErrNoMapping) {
		t.Errorf("unmapped err = %v", err)
	}
}

func TestChainAbortsOnHardError(t *testing.T) {
	bad := &ExternalMapper{Command: []string{"/bin/false"}}
	chain := Chain{bad, Static{"x@y.z": "x"}}
	if _, err := chain.Map(ident("x@y.z")); !errors.Is(err, ErrBadCommand) {
		t.Errorf("hard error not propagated: %v", err)
	}
}

func TestStaticMapper(t *testing.T) {
	s := Static{"a@b.c": "local-a"}
	if got, err := s.Map(ident("a@b.c")); err != nil || got != "local-a" {
		t.Errorf("got %q, %v", got, err)
	}
	if _, err := s.Map(ident("z@b.c")); !errors.Is(err, ErrNoMapping) {
		t.Errorf("err = %v", err)
	}
}

func TestDeterminism(t *testing.T) {
	m, _ := NewExpressionMapper([]Rule{{Match: `(.*)@d\.edu`, Output: "{0}"}})
	for i := 0; i < 100; i++ {
		got, err := m.Map(ident("same@d.edu"))
		if err != nil || got != "same" {
			t.Fatalf("iteration %d: %q, %v", i, got, err)
		}
	}
}
