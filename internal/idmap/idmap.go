// Package idmap implements the identity-mapping logic multi-user endpoints
// use to translate a Globus identity into a local user account, following
// the Globus Connect Server mapping model the paper describes: ordered
// expression rules (source template, regex match, group-substitution
// output, ignore-case option) plus external-program callouts for custom
// logic, and a chain that consults mappers in order.
package idmap

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"
	"regexp"
	"strings"
	"time"

	"globuscompute/internal/auth"
)

// Common errors.
var (
	ErrNoMapping  = errors.New("idmap: no mapping for identity")
	ErrBadRule    = errors.New("idmap: invalid mapping rule")
	ErrBadCommand = errors.New("idmap: external mapper failed")
)

// Mapper resolves an identity to a local account name.
type Mapper interface {
	Map(id auth.Identity) (string, error)
}

// Rule is one expression mapping, mirroring the JSON document in the
// paper's Listing 8: a source template over identity fields, a regex the
// expanded source must match, and an output template with {0},{1},...
// references to regex capture groups.
type Rule struct {
	// Source is a template over identity fields: {username}, {domain},
	// {sub}, {idp}. Default "{username}".
	Source string `json:"source"`
	// Match is the regular expression applied to the expanded source; it
	// is anchored to the full string.
	Match string `json:"match"`
	// Output is the result template; {N} references match group N (0 is
	// the first capture group, matching the Globus convention).
	Output string `json:"output"`
	// IgnoreCase applies the match case-insensitively.
	IgnoreCase bool `json:"ignore_case,omitempty"`
}

// ExpressionMapper applies rules in order; the first rule whose match
// succeeds produces the mapping.
type ExpressionMapper struct {
	rules    []Rule
	compiled []*regexp.Regexp
}

// NewExpressionMapper validates and compiles the rules.
func NewExpressionMapper(rules []Rule) (*ExpressionMapper, error) {
	if len(rules) == 0 {
		return nil, fmt.Errorf("%w: no rules", ErrBadRule)
	}
	m := &ExpressionMapper{rules: make([]Rule, len(rules)), compiled: make([]*regexp.Regexp, len(rules))}
	for i, r := range rules {
		if r.Source == "" {
			r.Source = "{username}"
		}
		if r.Match == "" {
			return nil, fmt.Errorf("%w: rule %d has no match expression", ErrBadRule, i)
		}
		if r.Output == "" {
			return nil, fmt.Errorf("%w: rule %d has no output template", ErrBadRule, i)
		}
		pattern := "^(?:" + r.Match + ")$"
		if r.IgnoreCase {
			pattern = "(?i)" + pattern
		}
		re, err := regexp.Compile(pattern)
		if err != nil {
			return nil, fmt.Errorf("%w: rule %d: %v", ErrBadRule, i, err)
		}
		m.rules[i] = r
		m.compiled[i] = re
	}
	return m, nil
}

// sourceFields expands identity fields into a rule source template.
func sourceFields(tmpl string, id auth.Identity) string {
	repl := strings.NewReplacer(
		"{username}", id.Username,
		"{domain}", id.Domain(),
		"{sub}", string(id.Subject),
		"{idp}", id.Provider,
	)
	return repl.Replace(tmpl)
}

// groupRef matches {N} references in rule outputs.
var groupRef = regexp.MustCompile(`\{(\d+)\}`)

// Map implements Mapper.
func (m *ExpressionMapper) Map(id auth.Identity) (string, error) {
	for i, re := range m.compiled {
		src := sourceFields(m.rules[i].Source, id)
		groups := re.FindStringSubmatch(src)
		if groups == nil {
			continue
		}
		out := groupRef.ReplaceAllStringFunc(m.rules[i].Output, func(ref string) string {
			var n int
			fmt.Sscanf(ref, "{%d}", &n)
			// {0} is the first capture group per the Globus convention.
			idx := n + 1
			if idx < len(groups) {
				return groups[idx]
			}
			return ""
		})
		if out == "" {
			continue
		}
		return out, nil
	}
	return "", fmt.Errorf("%w: %s", ErrNoMapping, id.Username)
}

// ParseRules loads rules from the JSON document format of Listing 8:
// {"DATA_TYPE": "expression_identity_mapping#1.0.0", "mappings": [...]}.
// A bare JSON array of rules is also accepted.
func ParseRules(data []byte) ([]Rule, error) {
	var doc struct {
		DataType string `json:"DATA_TYPE"`
		Mappings []Rule `json:"mappings"`
	}
	if err := json.Unmarshal(data, &doc); err == nil && len(doc.Mappings) > 0 {
		return doc.Mappings, nil
	}
	var rules []Rule
	if err := json.Unmarshal(data, &rules); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRule, err)
	}
	return rules, nil
}

// ExternalMapper shells out to an administrator-provided program: the
// identity document is written to stdin as JSON and the local username is
// read from stdout, enabling LDAP/database-backed mappings.
type ExternalMapper struct {
	// Command is the program and its arguments.
	Command []string
	// Timeout bounds each invocation (default 5s).
	Timeout time.Duration
}

// Map implements Mapper.
func (e *ExternalMapper) Map(id auth.Identity) (string, error) {
	if len(e.Command) == 0 {
		return "", fmt.Errorf("%w: no command", ErrBadCommand)
	}
	timeout := e.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	doc, err := json.Marshal(id)
	if err != nil {
		return "", fmt.Errorf("idmap: marshal identity: %w", err)
	}
	cmd := exec.CommandContext(ctx, e.Command[0], e.Command[1:]...)
	cmd.Stdin = bytes.NewReader(doc)
	var out, errBuf bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errBuf
	if err := cmd.Run(); err != nil {
		return "", fmt.Errorf("%w: %v (stderr: %s)", ErrBadCommand, err, strings.TrimSpace(errBuf.String()))
	}
	mapped := strings.TrimSpace(out.String())
	if mapped == "" {
		return "", fmt.Errorf("%w: %s", ErrNoMapping, id.Username)
	}
	return mapped, nil
}

// Chain consults mappers in order and returns the first successful mapping;
// ErrNoMapping from one mapper falls through to the next, any other error
// aborts.
type Chain []Mapper

// Map implements Mapper.
func (c Chain) Map(id auth.Identity) (string, error) {
	for _, m := range c {
		out, err := m.Map(id)
		if err == nil {
			return out, nil
		}
		if !errors.Is(err, ErrNoMapping) {
			return "", err
		}
	}
	return "", fmt.Errorf("%w: %s", ErrNoMapping, id.Username)
}

// Static is a fixed table mapper, useful for small deployments and tests.
type Static map[string]string

// Map implements Mapper, keyed by identity username.
func (s Static) Map(id auth.Identity) (string, error) {
	if local, ok := s[id.Username]; ok {
		return local, nil
	}
	return "", fmt.Errorf("%w: %s", ErrNoMapping, id.Username)
}
