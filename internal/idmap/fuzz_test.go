package idmap

import (
	"testing"

	"globuscompute/internal/auth"
)

// FuzzParseRules ensures mapping documents never panic the parser.
func FuzzParseRules(f *testing.F) {
	f.Add([]byte(`{"DATA_TYPE":"expression_identity_mapping#1.0.0","mappings":[{"match":"(.*)@x","output":"{0}"}]}`))
	f.Add([]byte(`[{"match":"a","output":"b"}]`))
	f.Add([]byte(`{`))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		rules, err := ParseRules(data)
		if err != nil {
			return
		}
		// Any parsed rules either compile or error cleanly.
		m, err := NewExpressionMapper(rules)
		if err != nil {
			return
		}
		_, _ = m.Map(auth.Identity{Username: "probe@example.edu", Provider: "p"})
	})
}

// FuzzExpressionMap ensures arbitrary usernames never panic mapping.
func FuzzExpressionMap(f *testing.F) {
	f.Add("alice@uchicago.edu")
	f.Add("")
	f.Add("@@@")
	f.Add("a@b@c")
	f.Fuzz(func(t *testing.T, username string) {
		m, err := NewExpressionMapper([]Rule{{Match: `(.*)@uchicago\.edu`, Output: "{0}"}})
		if err != nil {
			t.Fatal(err)
		}
		_, _ = m.Map(auth.Identity{Username: username})
	})
}
