package idmap_test

import (
	"fmt"

	"globuscompute/internal/auth"
	"globuscompute/internal/idmap"
)

// The expression mapping of the paper's Listing 8: identities from
// uchicago.edu map to their local username.
func ExampleExpressionMapper() {
	mapper, err := idmap.NewExpressionMapper([]idmap.Rule{{
		Source: "{username}",
		Match:  `(.*)@uchicago\.edu`,
		Output: "{0}",
	}})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	local, _ := mapper.Map(auth.Identity{Username: "alice@uchicago.edu"})
	fmt.Println(local)
	_, err = mapper.Map(auth.Identity{Username: "eve@elsewhere.org"})
	fmt.Println(err != nil)
	// Output:
	// alice
	// true
}
