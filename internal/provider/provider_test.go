package provider

import (
	"context"
	"errors"
	"testing"
	"time"

	"globuscompute/internal/scheduler"
)

func waitBlockState(t *testing.T, p Provider, id string, want BlockState, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st, err := p.BlockStatus(id)
		if err != nil {
			t.Fatal(err)
		}
		if st == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("block %s state = %s, want %s", id, st, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchProviderLifecycle(t *testing.T) {
	sched := scheduler.SimpleCluster(4)
	defer sched.Close()
	p, err := NewBatch(BatchConfig{Scheduler: sched, Partition: "default", NodesPerBlock: 2, LabelName: "slurm"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Label() != "slurm" || p.NodesPerBlock() != 2 {
		t.Errorf("label=%s npb=%d", p.Label(), p.NodesPerBlock())
	}

	gotNodes := make(chan []string, 1)
	release := make(chan struct{})
	id, err := p.SubmitBlock(func(ctx context.Context, blk BlockInfo) error {
		gotNodes <- blk.Nodes
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitBlockState(t, p, id, BlockActive, 2*time.Second)
	nodes := <-gotNodes
	if len(nodes) != 2 {
		t.Errorf("nodes = %v", nodes)
	}
	close(release)
	waitBlockState(t, p, id, BlockTerminated, 2*time.Second)
}

func TestBatchProviderCancel(t *testing.T) {
	sched := scheduler.SimpleCluster(1)
	defer sched.Close()
	p, _ := NewBatch(BatchConfig{Scheduler: sched})
	started := make(chan struct{})
	id, _ := p.SubmitBlock(func(ctx context.Context, _ BlockInfo) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	waitBlockState(t, p, id, BlockTerminated, 2*time.Second)
}

func TestBatchProviderPendingIsRequested(t *testing.T) {
	sched := scheduler.SimpleCluster(1)
	defer sched.Close()
	p, _ := NewBatch(BatchConfig{Scheduler: sched})
	release := make(chan struct{})
	defer close(release)
	hold := func(ctx context.Context, _ BlockInfo) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}
	p.SubmitBlock(hold)
	id2, _ := p.SubmitBlock(hold)
	st, err := p.BlockStatus(id2)
	if err != nil {
		t.Fatal(err)
	}
	if st != BlockRequested {
		t.Errorf("queued block state = %s, want requested", st)
	}
}

func TestBatchProviderValidation(t *testing.T) {
	if _, err := NewBatch(BatchConfig{}); err == nil {
		t.Error("NewBatch without scheduler succeeded")
	}
	sched := scheduler.SimpleCluster(1)
	defer sched.Close()
	p, _ := NewBatch(BatchConfig{Scheduler: sched})
	if _, err := p.BlockStatus("bogus"); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("status = %v", err)
	}
	if err := p.CancelBlock("bogus"); !errors.Is(err, ErrUnknownBlock) {
		t.Errorf("cancel = %v", err)
	}
}

func TestLocalProvider(t *testing.T) {
	p := NewLocal(3)
	if p.NodesPerBlock() != 3 || p.Label() != "local" {
		t.Errorf("npb=%d label=%s", p.NodesPerBlock(), p.Label())
	}
	done := make(chan BlockInfo, 1)
	id, err := p.SubmitBlock(func(_ context.Context, blk BlockInfo) error {
		done <- blk
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	blk := <-done
	if len(blk.Nodes) != 3 {
		t.Errorf("nodes = %v", blk.Nodes)
	}
	waitBlockState(t, p, id, BlockTerminated, 2*time.Second)
}

func TestLocalProviderFailure(t *testing.T) {
	p := NewLocal(1)
	id, _ := p.SubmitBlock(func(context.Context, BlockInfo) error {
		return errors.New("launch failed")
	})
	waitBlockState(t, p, id, BlockFailed, 2*time.Second)
}

func TestLocalProviderCancel(t *testing.T) {
	p := NewLocal(1)
	started := make(chan struct{})
	id, _ := p.SubmitBlock(func(ctx context.Context, _ BlockInfo) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	<-started
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	st, _ := p.BlockStatus(id)
	if !st.Terminal() {
		t.Errorf("state after cancel = %s", st)
	}
}

func TestKubernetesProviderStartupDelay(t *testing.T) {
	p := NewKubernetes(30*time.Millisecond, "compute")
	started := time.Now()
	ready := make(chan time.Time, 1)
	id, err := p.SubmitBlock(func(_ context.Context, blk BlockInfo) error {
		if blk.Env["KUBERNETES_NAMESPACE"] != "compute" {
			t.Errorf("env = %v", blk.Env)
		}
		ready <- time.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	st, _ := p.BlockStatus(id)
	if st != BlockRequested {
		t.Errorf("immediate state = %s, want requested (pod pending)", st)
	}
	at := <-ready
	if at.Sub(started) < 30*time.Millisecond {
		t.Errorf("pod ready after %s, want >= 30ms", at.Sub(started))
	}
	waitBlockState(t, p, id, BlockTerminated, 2*time.Second)
}

func TestKubernetesCancelDuringStartup(t *testing.T) {
	p := NewKubernetes(10*time.Second, "")
	launched := make(chan struct{}, 1)
	id, _ := p.SubmitBlock(func(context.Context, BlockInfo) error {
		launched <- struct{}{}
		return nil
	})
	if err := p.CancelBlock(id); err != nil {
		t.Fatal(err)
	}
	select {
	case <-launched:
		t.Error("launch ran despite cancellation during startup")
	case <-time.After(50 * time.Millisecond):
	}
	st, _ := p.BlockStatus(id)
	if st != BlockTerminated {
		t.Errorf("state = %s", st)
	}
}

func TestProviderInterfaceCompliance(t *testing.T) {
	sched := scheduler.SimpleCluster(1)
	defer sched.Close()
	batch, _ := NewBatch(BatchConfig{Scheduler: sched})
	for _, p := range []Provider{batch, NewLocal(1), NewKubernetes(0, "")} {
		if p.Label() == "" {
			t.Errorf("%T has empty label", p)
		}
		if p.NodesPerBlock() < 1 {
			t.Errorf("%T nodes per block = %d", p, p.NodesPerBlock())
		}
	}
}
