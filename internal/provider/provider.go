// Package provider implements the Parsl Provider abstraction the Globus
// Compute agent uses to provision compute resources: an interface to request
// blocks of nodes, poll their status, and release them, with implementations
// for Slurm-like and PBS-like batch schedulers (backed by the scheduler
// simulator), local processes, and a Kubernetes-style pod provider.
package provider

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
)

// BlockState is the provider-level view of a provisioned block (pilot job).
type BlockState string

const (
	BlockRequested  BlockState = "requested"
	BlockActive     BlockState = "active"
	BlockTerminated BlockState = "terminated"
	BlockFailed     BlockState = "failed"
)

// Terminal reports whether the state is final.
func (s BlockState) Terminal() bool {
	return s == BlockTerminated || s == BlockFailed
}

// ErrUnknownBlock is returned for status/cancel of an unknown block ID.
var ErrUnknownBlock = errors.New("provider: unknown block")

// BlockInfo describes a provisioned block handed to its launch function.
type BlockInfo struct {
	ID    string
	Nodes []string
	// Env carries scheduler environment (SLURM_*/PBS_*) when applicable.
	Env map[string]string
}

// LaunchFunc is the pilot-job body: it runs on the provisioned block (here,
// in a goroutine bound to the block's allocation) and returns when the block
// should be released. ctx is cancelled on walltime expiry or CancelBlock.
type LaunchFunc func(ctx context.Context, block BlockInfo) error

// Provider provisions blocks of nodes.
type Provider interface {
	// SubmitBlock requests one block; launch runs once it is provisioned.
	SubmitBlock(launch LaunchFunc) (string, error)
	// BlockStatus reports the current state of a block.
	BlockStatus(id string) (BlockState, error)
	// CancelBlock releases a block, cancelling its launch context.
	CancelBlock(id string) error
	// NodesPerBlock reports the size of each provisioned block.
	NodesPerBlock() int
	// Label names the provider for logs and metrics.
	Label() string
}

// --- batch provider (Slurm / PBS over the scheduler simulator) ---

// BatchConfig configures a batch provider.
type BatchConfig struct {
	Scheduler     *scheduler.Scheduler
	Partition     string
	NodesPerBlock int
	Walltime      time.Duration
	Account       string
	// LabelName overrides the default label.
	LabelName string
}

// Batch is a provider that provisions via the batch scheduler simulator,
// covering both SlurmProvider and PBSProProvider behaviour (the flavor comes
// from the scheduler's configuration).
type Batch struct {
	cfg BatchConfig

	mu     sync.Mutex
	blocks map[string]protocol.UUID // block ID -> scheduler job ID
}

// NewBatch returns a batch provider.
func NewBatch(cfg BatchConfig) (*Batch, error) {
	if cfg.Scheduler == nil {
		return nil, errors.New("provider: batch requires a scheduler")
	}
	if cfg.NodesPerBlock <= 0 {
		cfg.NodesPerBlock = 1
	}
	return &Batch{cfg: cfg, blocks: make(map[string]protocol.UUID)}, nil
}

// Label implements Provider.
func (b *Batch) Label() string {
	if b.cfg.LabelName != "" {
		return b.cfg.LabelName
	}
	return "batch"
}

// NodesPerBlock implements Provider.
func (b *Batch) NodesPerBlock() int { return b.cfg.NodesPerBlock }

// SubmitBlock implements Provider: it submits a pilot job to the scheduler.
func (b *Batch) SubmitBlock(launch LaunchFunc) (string, error) {
	jobID, err := b.cfg.Scheduler.Submit(scheduler.JobSpec{
		Partition: b.cfg.Partition,
		Nodes:     b.cfg.NodesPerBlock,
		Walltime:  b.cfg.Walltime,
		User:      b.cfg.Account,
		Name:      "gc-pilot",
		Script: func(ctx context.Context, alloc scheduler.Allocation) error {
			return launch(ctx, BlockInfo{ID: string(alloc.JobID), Nodes: alloc.Nodes, Env: alloc.Env})
		},
	})
	if err != nil {
		return "", fmt.Errorf("provider: submit block: %w", err)
	}
	id := string(jobID)
	b.mu.Lock()
	b.blocks[id] = jobID
	b.mu.Unlock()
	return id, nil
}

// BlockStatus implements Provider.
func (b *Batch) BlockStatus(id string) (BlockState, error) {
	b.mu.Lock()
	jobID, ok := b.blocks[id]
	b.mu.Unlock()
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	info, err := b.cfg.Scheduler.Status(jobID)
	if err != nil {
		return "", err
	}
	switch info.State {
	case scheduler.JobPending:
		return BlockRequested, nil
	case scheduler.JobRunning:
		return BlockActive, nil
	case scheduler.JobCompleted, scheduler.JobCancelled, scheduler.JobTimeout:
		return BlockTerminated, nil
	default:
		return BlockFailed, nil
	}
}

// CancelBlock implements Provider.
func (b *Batch) CancelBlock(id string) error {
	b.mu.Lock()
	jobID, ok := b.blocks[id]
	b.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	return b.cfg.Scheduler.Cancel(jobID)
}

// --- local provider ---

// Local provisions "blocks" as in-process goroutines on synthetic localhost
// nodes, mirroring Parsl's LocalProvider for laptops and login nodes.
type Local struct {
	// Nodes is the number of synthetic nodes per block (default 1).
	Nodes int

	mu     sync.Mutex
	nextID int
	blocks map[string]*localBlock
}

type localBlock struct {
	cancel context.CancelFunc
	state  BlockState
	done   chan struct{}
}

// NewLocal returns a local provider with nodesPerBlock synthetic nodes.
func NewLocal(nodesPerBlock int) *Local {
	if nodesPerBlock <= 0 {
		nodesPerBlock = 1
	}
	return &Local{Nodes: nodesPerBlock, blocks: make(map[string]*localBlock)}
}

// Label implements Provider.
func (l *Local) Label() string { return "local" }

// NodesPerBlock implements Provider.
func (l *Local) NodesPerBlock() int { return l.Nodes }

// SubmitBlock implements Provider.
func (l *Local) SubmitBlock(launch LaunchFunc) (string, error) {
	l.mu.Lock()
	l.nextID++
	id := fmt.Sprintf("local-%d", l.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	blk := &localBlock{cancel: cancel, state: BlockActive, done: make(chan struct{})}
	l.blocks[id] = blk
	l.mu.Unlock()

	nodes := make([]string, l.Nodes)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("localhost-%d", i)
	}
	go func() {
		defer close(blk.done)
		err := launch(ctx, BlockInfo{ID: id, Nodes: nodes, Env: map[string]string{"GC_LOCAL_BLOCK": id}})
		l.mu.Lock()
		if err != nil && ctx.Err() == nil {
			blk.state = BlockFailed
		} else {
			blk.state = BlockTerminated
		}
		l.mu.Unlock()
	}()
	return id, nil
}

// BlockStatus implements Provider.
func (l *Local) BlockStatus(id string) (BlockState, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	blk, ok := l.blocks[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	return blk.state, nil
}

// CancelBlock implements Provider.
func (l *Local) CancelBlock(id string) error {
	l.mu.Lock()
	blk, ok := l.blocks[id]
	l.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	blk.cancel()
	<-blk.done
	return nil
}

// --- kubernetes-style provider ---

// Kubernetes simulates a pod-per-block provider: each block is one
// single-node "pod" that becomes ready after a startup delay (image pull +
// container start), mirroring the KubernetesProvider used by cloud-adjacent
// endpoints.
type Kubernetes struct {
	// StartupDelay models pod scheduling and image pull time.
	StartupDelay time.Duration
	// Namespace is recorded in the block environment.
	Namespace string

	mu     sync.Mutex
	nextID int
	pods   map[string]*localBlock
}

// NewKubernetes returns a pod provider.
func NewKubernetes(startupDelay time.Duration, namespace string) *Kubernetes {
	if namespace == "" {
		namespace = "default"
	}
	return &Kubernetes{StartupDelay: startupDelay, Namespace: namespace, pods: make(map[string]*localBlock)}
}

// Label implements Provider.
func (k *Kubernetes) Label() string { return "kubernetes" }

// NodesPerBlock implements Provider: one pod per block.
func (k *Kubernetes) NodesPerBlock() int { return 1 }

// SubmitBlock implements Provider.
func (k *Kubernetes) SubmitBlock(launch LaunchFunc) (string, error) {
	k.mu.Lock()
	k.nextID++
	id := fmt.Sprintf("pod-%d", k.nextID)
	ctx, cancel := context.WithCancel(context.Background())
	blk := &localBlock{cancel: cancel, state: BlockRequested, done: make(chan struct{})}
	k.pods[id] = blk
	k.mu.Unlock()

	go func() {
		defer close(blk.done)
		select {
		case <-time.After(k.StartupDelay):
		case <-ctx.Done():
			k.mu.Lock()
			blk.state = BlockTerminated
			k.mu.Unlock()
			return
		}
		k.mu.Lock()
		blk.state = BlockActive
		k.mu.Unlock()
		err := launch(ctx, BlockInfo{
			ID:    id,
			Nodes: []string{id},
			Env:   map[string]string{"KUBERNETES_NAMESPACE": k.Namespace, "POD_NAME": id},
		})
		k.mu.Lock()
		if err != nil && ctx.Err() == nil {
			blk.state = BlockFailed
		} else {
			blk.state = BlockTerminated
		}
		k.mu.Unlock()
	}()
	return id, nil
}

// BlockStatus implements Provider.
func (k *Kubernetes) BlockStatus(id string) (BlockState, error) {
	k.mu.Lock()
	defer k.mu.Unlock()
	blk, ok := k.pods[id]
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	return blk.state, nil
}

// CancelBlock implements Provider.
func (k *Kubernetes) CancelBlock(id string) error {
	k.mu.Lock()
	blk, ok := k.pods[id]
	k.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownBlock, id)
	}
	blk.cancel()
	<-blk.done
	return nil
}
