// Package overload is the seeded overload-protection suite: it drives the
// full in-process stack (admission, bounded queues, priority sheds) through
// tenant floods and restarts and asserts the four contracts from
// docs/ROBUSTNESS.md: a noisy tenant cannot move a well-behaved tenant's
// p99 beyond 2x its solo baseline; every shed carries a Retry-After hint;
// every admitted task reaches exactly one terminal state; and idempotent
// retries return the original task IDs, including across a -data-dir
// restart. Gated behind GC_OVERLOAD=1 (run via `make overload`) because the
// floods take tens of seconds.
package overload

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"globuscompute/internal/auth"
	"globuscompute/internal/broker"
	"globuscompute/internal/core"
	"globuscompute/internal/durable"
	"globuscompute/internal/objectstore"
	"globuscompute/internal/protocol"
	"globuscompute/internal/scheduler"
	"globuscompute/internal/sdk"
	"globuscompute/internal/webservice"
)

const seed = 20240807 // fixed seed: failures reproduce exactly

func gate(t *testing.T) {
	t.Helper()
	if os.Getenv("GC_OVERLOAD") == "" {
		t.Skip("overload suite: set GC_OVERLOAD=1 (run via `make overload`)")
	}
}

// identityPayload builds a raw python-task payload for the builtin identity
// entrypoint, for submits that bypass the Executor.
func identityPayload(t *testing.T, v int) []byte {
	t.Helper()
	b, err := protocol.EncodePayload(protocol.PythonSpec{
		Entrypoint: "identity",
		Args:       []json.RawMessage{json.RawMessage(fmt.Sprintf("%d", v))},
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func p99(latencies []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(float64(len(sorted)) * 0.99)
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// runTenantWorkload submits n identity tasks one at a time through an
// executor and returns the submit-to-result latency of each.
func runTenantWorkload(t *testing.T, ex *sdk.Executor, n int, pace time.Duration) []time.Duration {
	t.Helper()
	fn := &sdk.PythonFunction{Entrypoint: "identity"}
	latencies := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		start := time.Now()
		fut, err := ex.Submit(fn, i)
		if err != nil {
			t.Fatalf("well-behaved submit %d: %v", i, err)
		}
		if _, err := fut.ResultWithin(30 * time.Second); err != nil {
			t.Fatalf("well-behaved result %d: %v", i, err)
		}
		latencies = append(latencies, time.Since(start))
		time.Sleep(pace)
	}
	return latencies
}

// TestOverloadNoisyNeighborFairness measures a well-behaved tenant's p99
// solo, then re-measures it while a noisy tenant floods the same control
// plane at 10x the well-behaved rate. Per-tenant admission must confine the
// flood: the well-behaved p99 may not move beyond 2x its solo baseline.
func TestOverloadNoisyNeighborFairness(t *testing.T) {
	gate(t)
	adm := scheduler.NewAdmission(scheduler.AdmissionConfig{
		FillRate: 100, Burst: 50, MaxInFlight: 100,
	})
	tb, err := core.NewTestbed(core.Options{Admission: adm, QueueLimit: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()

	aliceTok, err := tb.IssueToken("alice@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	malloryTok, err := tb.IssueToken("mallory@example.edu", "example")
	if err != nil {
		t.Fatal(err)
	}
	aliceEP, err := tb.StartEndpoint(core.EndpointOptions{Name: "alice-ep", Owner: "alice@uchicago.edu", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	malloryEP, err := tb.StartEndpoint(core.EndpointOptions{Name: "mallory-ep", Owner: "mallory@example.edu", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}

	bc, err := broker.Dial(tb.BrokerSrv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer bc.Close()
	aliceClient := sdk.NewClient(tb.ServiceAddr(), aliceTok.Value)
	ex, err := sdk.NewExecutor(sdk.ExecutorConfig{
		Client: aliceClient, EndpointID: aliceEP, Conn: bc.AsConn(),
		Objects: objectstore.NewClient(tb.ObjectsSrv.Addr()),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ex.Close()

	const tasks = 40
	const pace = 25 * time.Millisecond // ~40 tasks/s: inside alice's bucket
	solo := p99(runTenantWorkload(t, ex, tasks, pace))
	t.Logf("solo p99 = %s", solo)

	// Flood: mallory submits batches as fast as the client allows — 10x the
	// well-behaved rate and far past her own token bucket, so the excess
	// sheds. The flood runs for the whole contended measurement.
	malloryClient := sdk.NewClient(tb.ServiceAddr(), malloryTok.Value)
	malloryClient.MaxRetries = -1 // sheds fail fast; the flood just resubmits
	stopFlood := make(chan struct{})
	var floodWG sync.WaitGroup
	var floodSubmitted, floodShed atomic.Int64
	rng := rand.New(rand.NewSource(seed))
	malloryFn := registerIdentity(t, tb, "mallory@example.edu")
	batches := make([][]webservice.SubmitRequest, 8)
	for i := range batches {
		batch := make([]webservice.SubmitRequest, 8)
		for j := range batch {
			batch[j] = webservice.SubmitRequest{
				EndpointID: malloryEP,
				FunctionID: malloryFn,
				Payload:    identityPayload(t, rng.Intn(1000)),
			}
		}
		batches[i] = batch
	}
	for w := 0; w < 4; w++ {
		floodWG.Add(1)
		go func(w int) {
			defer floodWG.Done()
			for i := 0; ; i++ {
				select {
				case <-stopFlood:
					return
				default:
				}
				ids, err := malloryClient.SubmitBatch(batches[(w*13+i)%len(batches)])
				switch {
				case err == nil:
					floodSubmitted.Add(int64(len(ids)))
				case errors.Is(err, sdk.ErrOverloaded):
					floodShed.Add(1)
					time.Sleep(10 * time.Millisecond) // misbehaved: ignores Retry-After
				default:
					t.Errorf("flood submit: %v", err)
					return
				}
			}
		}(w)
	}
	// Let the flood saturate mallory's bucket before measuring.
	time.Sleep(500 * time.Millisecond)

	contended := p99(runTenantWorkload(t, ex, tasks, pace))
	close(stopFlood)
	floodWG.Wait()
	t.Logf("contended p99 = %s (flood: %d admitted, %d shed)",
		contended, floodSubmitted.Load(), floodShed.Load())

	if floodShed.Load() == 0 {
		t.Fatal("flood was never shed: admission is not engaging")
	}
	// A floor keeps the 2x criterion meaningful when the solo baseline is a
	// handful of milliseconds (scheduler jitter alone exceeds 2x there).
	baseline := solo
	if baseline < 150*time.Millisecond {
		baseline = 150 * time.Millisecond
	}
	if contended > 2*baseline {
		t.Fatalf("noisy neighbor moved well-behaved p99 %s -> %s (limit 2x %s)",
			solo, contended, baseline)
	}
}

// registerIdentity registers the builtin identity function directly with
// the testbed's service and returns its ID.
func registerIdentity(t *testing.T, tb *core.Testbed, owner string) protocol.UUID {
	t.Helper()
	id, err := tb.Service.RegisterFunction(owner, protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}
	return id
}

// TestOverloadShedsCarryRetryAfter floods a tiny admission budget and
// checks every shed is a typed overload error with a usable retry hint.
func TestOverloadShedsCarryRetryAfter(t *testing.T) {
	gate(t)
	adm := scheduler.NewAdmission(scheduler.AdmissionConfig{
		FillRate: 2, Burst: 4, MaxInFlight: -1,
	})
	tb, err := core.NewTestbed(core.Options{Admission: adm})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("alice@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tb.StartEndpoint(core.EndpointOptions{Name: "ep", Owner: "alice@uchicago.edu"})
	if err != nil {
		t.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	client.MaxRetries = -1
	fn := registerIdentity(t, tb, "alice@uchicago.edu")

	var sheds int
	for i := 0; i < 20; i++ {
		_, err := client.SubmitBatch([]webservice.SubmitRequest{
			{EndpointID: ep, FunctionID: fn, Payload: identityPayload(t, i)},
		})
		if err == nil {
			continue
		}
		if !errors.Is(err, sdk.ErrOverloaded) {
			t.Fatalf("submit %d: non-overload error %v", i, err)
		}
		var oe *sdk.OverloadedError
		if !errors.As(err, &oe) {
			t.Fatalf("submit %d: overload error %T missing typed wrapper", i, err)
		}
		if oe.RetryAfter < time.Second {
			t.Fatalf("submit %d: shed without a usable Retry-After (%s)", i, oe.RetryAfter)
		}
		if oe.RetryAt.Before(time.Now()) {
			t.Fatalf("submit %d: RetryAt deadline already passed", i)
		}
		sheds++
	}
	if sheds == 0 {
		t.Fatal("20 rapid submits against a 4-token burst never shed")
	}
	if got := client.Sheds.Load(); got != int64(sheds) {
		t.Fatalf("client shed counter = %d, want %d", got, sheds)
	}
}

// TestOverloadAdmittedTasksTerminate storms a bounded stack and asserts the
// invariant that makes load shedding safe to retry against: every task the
// service ADMITTED (returned an ID for) reaches exactly one terminal state
// — no losses, no limbo, and no terminal state flipping afterwards.
func TestOverloadAdmittedTasksTerminate(t *testing.T) {
	gate(t)
	adm := scheduler.NewAdmission(scheduler.AdmissionConfig{
		FillRate: 200, Burst: 100, MaxInFlight: 200,
	})
	tb, err := core.NewTestbed(core.Options{Admission: adm, QueueLimit: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer tb.Close()
	tok, err := tb.IssueToken("alice@uchicago.edu", "uchicago")
	if err != nil {
		t.Fatal(err)
	}
	ep, err := tb.StartEndpoint(core.EndpointOptions{Name: "ep", Owner: "alice@uchicago.edu", Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	client := sdk.NewClient(tb.ServiceAddr(), tok.Value)
	client.MaxRetries = -1
	fn := registerIdentity(t, tb, "alice@uchicago.edu")

	var mu sync.Mutex
	var admitted []protocol.UUID
	var wg sync.WaitGroup
	var shed atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < 30; i++ {
				batch := make([]webservice.SubmitRequest, 4)
				for j := range batch {
					batch[j] = webservice.SubmitRequest{
						EndpointID: ep, FunctionID: fn,
						Payload: identityPayload(t, rng.Intn(1000)),
					}
				}
				ids, err := client.SubmitBatch(batch)
				if err != nil {
					if !errors.Is(err, sdk.ErrOverloaded) {
						t.Errorf("storm submit: %v", err)
						return
					}
					shed.Add(1)
					time.Sleep(20 * time.Millisecond)
					continue
				}
				mu.Lock()
				admitted = append(admitted, ids...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if len(admitted) == 0 {
		t.Fatal("storm admitted nothing")
	}
	t.Logf("storm: %d admitted, %d batch sheds", len(admitted), shed.Load())

	// Every admitted task must settle terminal.
	first := make(map[protocol.UUID]protocol.TaskState, len(admitted))
	deadline := time.Now().Add(60 * time.Second)
	for _, id := range admitted {
		for {
			st, err := tb.Service.GetTask(id)
			if err != nil {
				t.Fatalf("GetTask(%s): %v", id, err)
			}
			if st.State.Terminal() {
				first[id] = st.State
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("admitted task %s stuck in %s", id, st.State)
			}
			time.Sleep(10 * time.Millisecond)
		}
	}
	// Terminal means terminal: re-read after a settling delay and verify no
	// task flipped to a different terminal state (or out of one).
	time.Sleep(250 * time.Millisecond)
	for _, id := range admitted {
		st, err := tb.Service.GetTask(id)
		if err != nil {
			t.Fatalf("GetTask(%s) recheck: %v", id, err)
		}
		if st.State != first[id] {
			t.Fatalf("task %s flipped terminal state %s -> %s", id, first[id], st.State)
		}
	}
}

// TestOverloadIdempotentRetryAcrossRestart submits with an idempotency key
// against a durable (-data-dir) control plane, restarts it, and retries the
// same key: the replay must return the original task IDs because the
// key-to-IDs binding is journaled through the WAL, not held in memory.
func TestOverloadIdempotentRetryAcrossRestart(t *testing.T) {
	gate(t)
	dir := t.TempDir()
	openSvc := func() (*durable.Store, *webservice.Service, auth.Token) {
		d, err := durable.OpenStore(durable.StoreOptions{Dir: dir, SnapshotEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		authSvc := auth.NewService()
		svc, err := webservice.New(webservice.Config{
			Store: d.State, Broker: broker.New(), Objects: objectstore.New(), Auth: authSvc,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := svc.ResumeEndpoints(); err != nil {
			t.Fatal(err)
		}
		tok, err := authSvc.Issue(
			auth.Identity{Username: "alice@uchicago.edu", Provider: "uchicago"},
			[]string{auth.ScopeCompute, auth.ScopeManage}, time.Hour, time.Time{})
		if err != nil {
			t.Fatal(err)
		}
		return d, svc, tok
	}

	d, svc, tok := openSvc()
	ep, err := svc.RegisterEndpoint(webservice.RegisterEndpointRequest{Name: "ep", Owner: "alice@uchicago.edu"})
	if err != nil {
		t.Fatal(err)
	}
	fn, err := svc.RegisterFunction("alice@uchicago.edu", protocol.KindPython, []byte(`{"entrypoint":"identity"}`))
	if err != nil {
		t.Fatal(err)
	}
	req := []webservice.SubmitRequest{{EndpointID: ep, FunctionID: fn, Payload: identityPayload(t, 1)}}
	ids1, err := svc.SubmitBatch(tok, req, webservice.SubmitOptions{IdempotencyKey: "across-restart"})
	if err != nil {
		t.Fatal(err)
	}
	// Same key before the restart replays in memory.
	ids2, err := svc.SubmitBatch(tok, req, webservice.SubmitOptions{IdempotencyKey: "across-restart"})
	if err != nil || fmt.Sprint(ids2) != fmt.Sprint(ids1) {
		t.Fatalf("pre-restart replay = %v (%v), want %v", ids2, err, ids1)
	}
	svc.Close()
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart on the same data dir: the retry must still replay.
	d2, svc2, tok2 := openSvc()
	defer func() { svc2.Close(); d2.Close() }()
	ids3, err := svc2.SubmitBatch(tok2, req, webservice.SubmitOptions{IdempotencyKey: "across-restart"})
	if err != nil {
		t.Fatalf("post-restart replay: %v", err)
	}
	if fmt.Sprint(ids3) != fmt.Sprint(ids1) {
		t.Fatalf("post-restart replay = %v, want original %v", ids3, ids1)
	}
	if n := d2.State.CountTasks(); n != 1 {
		t.Fatalf("task count after replayed retry = %d, want 1", n)
	}
	// A fresh key still mints fresh work.
	ids4, err := svc2.SubmitBatch(tok2, req, webservice.SubmitOptions{IdempotencyKey: "new-after-restart"})
	if err != nil {
		t.Fatal(err)
	}
	if ids4[0] == ids1[0] {
		t.Fatal("distinct key replayed the old task ID")
	}
}
