package scenario

import (
	"fmt"
	"time"
)

// Gate reason codes — every failing gate carries one of these as the prefix
// of its Reason so automation can branch on the failure class without
// parsing prose.
const (
	ReasonTooFewSamples       = "too_few_samples"
	ReasonCohortIncomplete    = "cohort_incomplete"
	ReasonNoSteadyBaseline    = "no_steady_baseline"
	ReasonBacklogNotRecovered = "backlog_not_recovered"
	ReasonSteadyBacklogHigh   = "steady_backlog_exceeded"
	ReasonSteadySheds         = "steady_sheds_exceeded"
)

// GateResult is one evaluated gate. Validity gates (Validity=true) decide
// whether the run measured anything; KPI gates decide whether the system
// behaved. Reason is empty on pass and "<code>: detail" on failure.
type GateResult struct {
	Name      string  `json:"name"`
	Validity  bool    `json:"validity"`
	Pass      bool    `json:"pass"`
	Reason    string  `json:"reason,omitempty"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// Totals is the loadgen's cumulative view of the run, used by the cohort
// gates: every accepted task must be observed reaching a terminal state.
type Totals struct {
	Submitted   int64 `json:"submitted"`
	Accepted    int64 `json:"accepted"`
	Shed        int64 `json:"shed"`
	Errors      int64 `json:"errors"`
	Succeeded   int64 `json:"succeeded"`
	Failed      int64 `json:"failed"`
	Outstanding int64 `json:"outstanding"`
}

// Completeness is observed-terminal / accepted (1 when nothing was
// accepted — that case fails the cohort gate separately).
func (t Totals) Completeness() float64 {
	if t.Accepted == 0 {
		return 0
	}
	return float64(t.Succeeded+t.Failed) / float64(t.Accepted)
}

// EvaluateGates runs the profile's validity and KPI gates over the recorded
// series. valid = all validity gates passed; pass = valid AND all KPI gates
// passed.
func EvaluateGates(p Profile, samples []Sample, tot Totals) (gates []GateResult, valid, pass bool) {
	p = p.normalized()
	g := p.Gates

	// --- Run-validity gates ---

	r := GateResult{Name: "min_samples", Validity: true,
		Value: float64(len(samples)), Threshold: float64(g.MinSamples)}
	r.Pass = len(samples) >= g.MinSamples
	if !r.Pass {
		r.Reason = fmt.Sprintf("%s: recorded %d samples, need %d", ReasonTooFewSamples, len(samples), g.MinSamples)
	}
	gates = append(gates, r)

	comp := tot.Completeness()
	r = GateResult{Name: "cohort_complete", Validity: true,
		Value: comp, Threshold: g.MinCompleteness}
	switch {
	case tot.Accepted == 0:
		r.Reason = fmt.Sprintf("%s: no tasks accepted (submitted %d, shed %d, errors %d)",
			ReasonCohortIncomplete, tot.Submitted, tot.Shed, tot.Errors)
	case comp < g.MinCompleteness:
		r.Reason = fmt.Sprintf("%s: %d of %d accepted tasks reached a terminal state (%.4f < %.4f; %d outstanding)",
			ReasonCohortIncomplete, tot.Succeeded+tot.Failed, tot.Accepted, comp, g.MinCompleteness, tot.Outstanding)
	default:
		r.Pass = true
	}
	gates = append(gates, r)

	steady := backlogSeries(samples, PhaseSteady)
	if p.Burst != nil {
		r = GateResult{Name: "steady_baseline", Validity: true,
			Value: float64(len(steady)), Threshold: float64(g.MinSteadySamples)}
		r.Pass = len(steady) >= g.MinSteadySamples
		if !r.Pass {
			r.Reason = fmt.Sprintf("%s: %d pre-burst samples, need %d for a baseline", ReasonNoSteadyBaseline, len(steady), g.MinSteadySamples)
		}
		gates = append(gates, r)
	}

	valid = true
	for _, gr := range gates {
		valid = valid && gr.Pass
	}

	// --- KPI gates ---

	kpiPass := true
	steadyP95 := percentile(steady, 0.95)
	if g.MaxSteadyBacklogP95 > 0 {
		r = GateResult{Name: "steady_backlog_p95", Value: steadyP95, Threshold: g.MaxSteadyBacklogP95}
		r.Pass = steadyP95 <= g.MaxSteadyBacklogP95
		if !r.Pass {
			r.Reason = fmt.Sprintf("%s: steady backlog p95 %.0f > %.0f", ReasonSteadyBacklogHigh, steadyP95, g.MaxSteadyBacklogP95)
		}
		kpiPass = kpiPass && r.Pass
		gates = append(gates, r)
	}
	if g.MaxSteadyShedRatio >= 0 {
		var shed, sub int64
		for _, s := range samples {
			if s.Phase == PhaseSteady {
				shed += s.Window.Shed
				sub += s.Window.Submitted
			}
		}
		ratio := 0.0
		if sub > 0 {
			ratio = float64(shed) / float64(sub)
		}
		r = GateResult{Name: "steady_shed_ratio", Value: ratio, Threshold: g.MaxSteadyShedRatio}
		r.Pass = ratio <= g.MaxSteadyShedRatio
		if !r.Pass {
			r.Reason = fmt.Sprintf("%s: shed %d of %d steady-phase submissions (%.4f > %.4f)",
				ReasonSteadySheds, shed, sub, ratio, g.MaxSteadyShedRatio)
		}
		kpiPass = kpiPass && r.Pass
		gates = append(gates, r)
	}
	if p.Burst != nil {
		r = evalRecovery(p, samples, steadyP95)
		kpiPass = kpiPass && r.Pass
		gates = append(gates, r)
	}

	return gates, valid, valid && kpiPass
}

// evalRecovery is the headline KPI gate: after the last burst window ends,
// the trailing backlog p95 (a RecoveryWindow-sample sliding window) must
// drop to max(RecoveryFactor x steady p95, RecoveryFloor) within
// RecoverWithin poll intervals.
func evalRecovery(p Profile, samples []Sample, steadyP95 float64) GateResult {
	g := p.Gates
	target := g.RecoveryFactor * steadyP95
	if target < g.RecoveryFloor {
		target = g.RecoveryFloor
	}
	r := GateResult{Name: "backlog_recovery", Threshold: target}

	burstEnd, _ := p.LastBurstEnd()
	// Post-burst samples in offset order.
	var post []float64
	for _, s := range samples {
		if time.Duration(s.OffsetSec*float64(time.Second)) >= burstEnd {
			post = append(post, float64(s.Backlog))
		}
	}
	if len(post) == 0 {
		r.Reason = fmt.Sprintf("%s: no samples after burst end (+%.1fs)", ReasonBacklogNotRecovered, burstEnd.Seconds())
		return r
	}
	win := g.RecoveryWindow
	for i := range post {
		lo := i - win + 1
		if lo < 0 {
			continue // window not yet full
		}
		p95 := percentile(post[lo:i+1], 0.95)
		r.Value = p95
		if p95 <= target {
			if i < g.RecoverWithin {
				r.Pass = true
				return r
			}
			r.Reason = fmt.Sprintf("%s: backlog p95 reached %.0f only %d intervals after burst end (limit %d)",
				ReasonBacklogNotRecovered, p95, i, g.RecoverWithin)
			return r
		}
	}
	r.Reason = fmt.Sprintf("%s: trailing backlog p95 %.0f never fell to %.0f in %d post-burst samples",
		ReasonBacklogNotRecovered, r.Value, target, len(post))
	return r
}
