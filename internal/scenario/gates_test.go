package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// burstProfile is a small fixed burst profile for gate tests: 24s run,
// 0.5s polls, one 8x burst over [6s, 10s).
func burstProfile() Profile {
	p := Profile{
		Name: "gate-test", DurationSec: 24, PollIntervalSec: 0.5,
		Tenants: []TenantSpec{{Name: "a", RatePerSec: 100}},
		Burst:   &BurstSpec{AfterSec: 6, DurationSec: 4, Factor: 8},
		Gates:   GateSpec{MinSamples: 10},
	}
	return p.normalized()
}

// series synthesizes the backlog time series for a profile at its poll
// cadence: backlogAt maps an offset to the KPI value.
func series(p Profile, untilSec float64, backlogAt func(offsetSec float64) int) []Sample {
	var out []Sample
	for o := p.PollIntervalSec; o <= untilSec; o += p.PollIntervalSec {
		off := time.Duration(o * float64(time.Second))
		out = append(out, Sample{
			OffsetSec: o, Phase: p.PhaseAt(off), Backlog: backlogAt(o),
		})
	}
	return out
}

func completeTotals(n int64) Totals {
	return Totals{Submitted: n, Accepted: n, Succeeded: n}
}

func findGate(t *testing.T, gates []GateResult, name string) GateResult {
	t.Helper()
	for _, g := range gates {
		if g.Name == name {
			return g
		}
	}
	t.Fatalf("gate %q missing from %+v", name, gates)
	return GateResult{}
}

func TestGateTooFewSamples(t *testing.T) {
	p := burstProfile()
	samples := series(p, 2, func(float64) int { return 5 }) // 4 samples << MinSamples
	gates, valid, pass := EvaluateGates(p, samples, completeTotals(100))
	if valid || pass {
		t.Fatalf("run with %d samples must be invalid", len(samples))
	}
	g := findGate(t, gates, "min_samples")
	if g.Pass || !strings.HasPrefix(g.Reason, ReasonTooFewSamples) {
		t.Fatalf("min_samples gate = %+v", g)
	}
}

func TestGateCohortIncomplete(t *testing.T) {
	p := burstProfile()
	samples := series(p, 30, func(o float64) int { return 5 })

	// 10 of 100 accepted tasks never reached a terminal state.
	tot := Totals{Submitted: 100, Accepted: 100, Succeeded: 85, Failed: 5, Outstanding: 10}
	gates, valid, _ := EvaluateGates(p, samples, tot)
	g := findGate(t, gates, "cohort_complete")
	if valid || g.Pass || !strings.HasPrefix(g.Reason, ReasonCohortIncomplete) {
		t.Fatalf("cohort gate = %+v valid=%v", g, valid)
	}

	// Nothing accepted at all is also an incomplete cohort, not a pass.
	gates, valid, _ = EvaluateGates(p, samples, Totals{Submitted: 100, Shed: 100})
	g = findGate(t, gates, "cohort_complete")
	if valid || g.Pass || !strings.HasPrefix(g.Reason, ReasonCohortIncomplete) {
		t.Fatalf("empty-cohort gate = %+v valid=%v", g, valid)
	}
}

func TestGateNoSteadyBaseline(t *testing.T) {
	p := burstProfile()
	p.Burst.AfterSec = 0.5 // burst starts immediately: no steady samples
	p.Burst.DurationSec = 4
	samples := series(p, 30, func(o float64) int { return 50 })
	gates, valid, _ := EvaluateGates(p, samples, completeTotals(100))
	g := findGate(t, gates, "steady_baseline")
	if valid || g.Pass || !strings.HasPrefix(g.Reason, ReasonNoSteadyBaseline) {
		t.Fatalf("steady_baseline gate = %+v valid=%v", g, valid)
	}
}

func TestGateBacklogRecovery(t *testing.T) {
	p := burstProfile()

	// Recovering series: steady ~10, burst climbs to 800, post-burst decays
	// back under the floor within ~4s (8 intervals).
	recovering := func(o float64) int {
		switch {
		case o < 6:
			return 10
		case o < 10:
			return 800
		default:
			b := 800 - int((o-10)*200)
			if b < 10 {
				b = 10
			}
			return b
		}
	}
	samples := series(p, 30, recovering)
	gates, valid, pass := EvaluateGates(p, samples, completeTotals(1000))
	g := findGate(t, gates, "backlog_recovery")
	if !valid || !pass || !g.Pass {
		t.Fatalf("recovering series must pass: gate=%+v valid=%v pass=%v", g, valid, pass)
	}

	// Non-recovering series: backlog never drains after the burst.
	stuck := func(o float64) int {
		if o < 6 {
			return 10
		}
		return 800
	}
	samples = series(p, 30, stuck)
	gates, valid, pass = EvaluateGates(p, samples, completeTotals(1000))
	g = findGate(t, gates, "backlog_recovery")
	if !valid {
		t.Fatal("non-recovering run is still a valid measurement")
	}
	if pass || g.Pass || !strings.HasPrefix(g.Reason, ReasonBacklogNotRecovered) {
		t.Fatalf("stuck series must fail recovery: gate=%+v pass=%v", g, pass)
	}

	// Too-slow recovery: drains, but only after RecoverWithin intervals.
	slow := func(o float64) int {
		switch {
		case o < 6:
			return 10
		case o < 10:
			return 800
		case o < 10+float64(p.Gates.RecoverWithin)*p.PollIntervalSec+2:
			return 800
		default:
			return 10
		}
	}
	samples = series(p, 40, slow)
	gates, _, pass = EvaluateGates(p, samples, completeTotals(1000))
	g = findGate(t, gates, "backlog_recovery")
	if pass || g.Pass || !strings.HasPrefix(g.Reason, ReasonBacklogNotRecovered) {
		t.Fatalf("slow recovery must fail: gate=%+v", g)
	}
}

func TestGateSteadyKPIs(t *testing.T) {
	p := Profile{
		Name: "steady-test", DurationSec: 10, PollIntervalSec: 0.5,
		Tenants: []TenantSpec{{Name: "a", RatePerSec: 100}},
		Gates:   GateSpec{MinSamples: 10, MaxSteadyBacklogP95: 50},
	}
	p = p.normalized()

	// Clean steady run passes everything.
	samples := series(p, 12, func(float64) int { return 20 })
	_, valid, pass := EvaluateGates(p, samples, completeTotals(500))
	if !valid || !pass {
		t.Fatalf("clean steady run must pass (valid=%v pass=%v)", valid, pass)
	}

	// Backlog above the ceiling fails the p95 gate.
	samples = series(p, 12, func(float64) int { return 200 })
	gates, valid, pass := EvaluateGates(p, samples, completeTotals(500))
	g := findGate(t, gates, "steady_backlog_p95")
	if !valid || pass || g.Pass || !strings.HasPrefix(g.Reason, ReasonSteadyBacklogHigh) {
		t.Fatalf("high steady backlog must fail KPI but stay valid: gate=%+v", g)
	}

	// Steady-phase sheds fail the shed-ratio gate (default tolerance 0).
	samples = series(p, 12, func(float64) int { return 20 })
	for i := range samples {
		samples[i].Window = WindowStats{Submitted: 50, Accepted: 48, Shed: 2}
	}
	gates, _, pass = EvaluateGates(p, samples, completeTotals(500))
	g = findGate(t, gates, "steady_shed_ratio")
	if pass || g.Pass || !strings.HasPrefix(g.Reason, ReasonSteadySheds) {
		t.Fatalf("steady sheds must fail: gate=%+v", g)
	}
}

// TestSummaryCarriesDistinctReasons checks the contract CI scripts rely
// on: each failing gate surfaces its distinct reason code in summary.json.
func TestSummaryCarriesDistinctReasons(t *testing.T) {
	p := burstProfile()
	stuck := series(p, 30, func(o float64) int {
		if o < 6 {
			return 10
		}
		return 800
	})
	tot := Totals{Submitted: 100, Accepted: 100, Succeeded: 90, Outstanding: 10}
	sum := BuildSummary(p, stuck, tot, time.Now().Add(-30*time.Second), time.Now())
	if sum.Valid || sum.Pass {
		t.Fatalf("incomplete cohort must invalidate: %+v", sum.FailReasons)
	}
	data, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	for _, code := range []string{ReasonCohortIncomplete, ReasonBacklogNotRecovered} {
		if !strings.Contains(string(data), code) {
			t.Fatalf("summary.json missing reason %q: %s", code, data)
		}
	}
	if strings.Contains(string(data), ReasonTooFewSamples) {
		t.Fatalf("summary.json carries an unearned reason: %s", data)
	}

	// The passing shape: complete cohort, recovering backlog.
	recovered := series(p, 30, func(o float64) int {
		switch {
		case o < 6:
			return 10
		case o < 10:
			return 800
		default:
			return 10
		}
	})
	sum = BuildSummary(p, recovered, completeTotals(1000), time.Now().Add(-30*time.Second), time.Now())
	if !sum.Valid || !sum.Pass || len(sum.FailReasons) != 0 {
		t.Fatalf("clean run must pass: valid=%v pass=%v reasons=%v", sum.Valid, sum.Pass, sum.FailReasons)
	}
}

func TestProfileSchedule(t *testing.T) {
	p := burstProfile()
	if got := p.PhaseAt(3 * time.Second); got != PhaseSteady {
		t.Fatalf("phase(3s) = %q", got)
	}
	if got := p.PhaseAt(7 * time.Second); got != PhaseBurst {
		t.Fatalf("phase(7s) = %q", got)
	}
	if got := p.PhaseAt(15 * time.Second); got != PhaseRecovery {
		t.Fatalf("phase(15s) = %q", got)
	}
	if f := p.RateFactor(7 * time.Second); f != 8 {
		t.Fatalf("rate factor in burst = %g", f)
	}
	if f := p.RateFactor(15 * time.Second); f != 1 {
		t.Fatalf("rate factor after burst = %g", f)
	}
	end, ok := p.LastBurstEnd()
	if !ok || end != 10*time.Second {
		t.Fatalf("last burst end = %v ok=%v", end, ok)
	}

	// Repeating cadence: bursts at [6,10), [21,25); phase and end follow.
	p.Burst.EverySec = 15
	if got := p.PhaseAt(22 * time.Second); got != PhaseBurst {
		t.Fatalf("phase(22s) with cadence = %q", got)
	}
	if got := p.PhaseAt(12 * time.Second); got != PhaseRecovery {
		t.Fatalf("phase(12s) between bursts = %q", got)
	}
	end, _ = p.LastBurstEnd()
	if end != 25*time.Second {
		t.Fatalf("last cadenced burst end = %v", end)
	}

	// Builtins all validate.
	for _, name := range BuiltinNames() {
		bp, ok := Builtin(name)
		if !ok {
			t.Fatalf("missing builtin %q", name)
		}
		if err := bp.Validate(); err != nil {
			t.Fatalf("builtin %q invalid: %v", name, err)
		}
	}
}
