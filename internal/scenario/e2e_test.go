// End-to-end scenario suite: builds the real gc-webservice binary, runs it
// with -pprof, stands up a 16-endpoint simulated fleet (20ms/task => 800
// tasks/s of drain capacity) behind a p2c routing group, then drives the
// built-in steady and burst profiles through scenario.Run. The burst
// profile offers 2x capacity for several seconds; the run passes only when
// the backlog p95 recovers to near steady state within the gate's window
// and the burst-peak pprof captures landed on disk. Gated behind
// GC_SCENARIO=1 (run via `make scenario`); GC_SCENARIO_FULL=1 swaps in the
// multi-minute soak profiles; GC_SCENARIO_OUT names a JSON file recording
// both gated summaries.
package scenario

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sync"
	"testing"
	"time"

	"globuscompute/internal/broker"
	"globuscompute/internal/mep"
	"globuscompute/internal/protocol"
	"globuscompute/internal/sdk"
	"globuscompute/internal/webservice"
)

const (
	fleetSize       = 16
	simServiceTime  = 20 * time.Millisecond
	heartbeatEvery  = 500 * time.Millisecond
	simPrefetch     = 256
)

var (
	buildOnce sync.Once
	buildBin  string
	buildErr  error
)

func buildWebservice(t *testing.T) string {
	t.Helper()
	buildOnce.Do(func() {
		dir, err := os.MkdirTemp("", "gc-scenario-*")
		if err != nil {
			buildErr = err
			return
		}
		buildBin = filepath.Join(dir, "gc-webservice")
		cmd := exec.Command("go", "build", "-o", buildBin, "globuscompute/cmd/gc-webservice")
		cmd.Dir = repoRoot()
		if out, err := cmd.CombinedOutput(); err != nil {
			buildErr = fmt.Errorf("build gc-webservice: %v\n%s", err, out)
		}
	})
	if buildErr != nil {
		t.Fatal(buildErr)
	}
	return buildBin
}

func repoRoot() string {
	dir, _ := os.Getwd()
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "."
		}
		dir = parent
	}
}

func freeAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

var tokenRe = regexp.MustCompile(`bootstrap token \([^)]*\): (\S+)`)

// startWS launches gc-webservice with pprof enabled and waits for the
// bootstrap token (printed once all listeners are up).
func startWS(t *testing.T, bin, httpAddr, brokerAddr, objectsAddr string) (*exec.Cmd, string) {
	t.Helper()
	cmd := exec.Command(bin,
		"-http", httpAddr, "-broker", brokerAddr, "-objects", objectsAddr,
		"-pprof")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	tokCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			if m := tokenRe.FindStringSubmatch(sc.Text()); m != nil {
				select {
				case tokCh <- m[1]:
				default:
				}
			}
		}
	}()
	select {
	case tok := <-tokCh:
		return cmd, tok
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatal("gc-webservice never printed its bootstrap token")
		return nil, ""
	}
}

// simFleet is the harness-side fleet: sim agents draining task queues plus
// the heartbeat pump that makes their load visible to the service.
type simFleet struct {
	eps    []protocol.UUID
	agents []*mep.SimAgent
	bc     *broker.Client
	stop   chan struct{}
	done   chan struct{}
}

// startFleet registers fleetSize endpoints, attaches a sim agent to each
// over one shared broker connection, pre-warms a load report per endpoint
// (p2c placement scores load reports), and starts the heartbeat pump.
func startFleet(t *testing.T, client *sdk.Client, brokerAddr string) *simFleet {
	t.Helper()
	bc, err := broker.Dial(brokerAddr)
	if err != nil {
		t.Fatalf("dial broker: %v", err)
	}
	bc.EnableBatching(broker.BatchConfig{})
	bc.EnableBinary()
	conn := bc.AsConn()

	f := &simFleet{bc: bc, stop: make(chan struct{}), done: make(chan struct{})}
	for i := 0; i < fleetSize; i++ {
		reg, err := client.RegisterEndpoint(webservice.RegisterEndpointRequest{
			Name: fmt.Sprintf("sim-%02d", i),
		})
		if err != nil {
			t.Fatalf("register endpoint %d: %v", i, err)
		}
		agent, err := mep.StartSimAgent(mep.SimAgentConfig{
			EndpointID: reg.EndpointID, Conn: conn,
			ServiceTime: simServiceTime, Prefetch: simPrefetch,
		})
		if err != nil {
			t.Fatalf("start sim agent %d: %v", i, err)
		}
		f.eps = append(f.eps, reg.EndpointID)
		f.agents = append(f.agents, agent)
		load := agent.Load()
		if err := client.HeartbeatReport(reg.EndpointID, true, &load, nil); err != nil {
			t.Fatalf("pre-warm heartbeat %d: %v", i, err)
		}
	}
	go func() {
		defer close(f.done)
		tick := time.NewTicker(heartbeatEvery)
		defer tick.Stop()
		for {
			select {
			case <-f.stop:
				return
			case <-tick.C:
				for i, agent := range f.agents {
					load := agent.Load()
					_ = client.HeartbeatReport(f.eps[i], true, &load, nil)
				}
			}
		}
	}()
	return f
}

func (f *simFleet) Stop() {
	close(f.stop)
	<-f.done
	for _, a := range f.agents {
		a.Stop()
	}
	f.bc.Close()
}

// createGroup wraps the fleet in a routing group running the p2c policy.
func createGroup(t *testing.T, httpAddr, token string, members []protocol.UUID) protocol.UUID {
	t.Helper()
	body, _ := json.Marshal(map[string]any{
		"name": "scenario-fleet", "policy": "p2c", "members": members,
	})
	req, err := http.NewRequest("POST", "http://"+httpAddr+"/v2/routing_groups", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Authorization", "Bearer "+token)
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("create routing group: %v", err)
	}
	defer resp.Body.Close()
	var out struct {
		GroupID protocol.UUID `json:"routing_group_uuid"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || resp.StatusCode != http.StatusCreated {
		t.Fatalf("create routing group: status %d err %v", resp.StatusCode, err)
	}
	return out.GroupID
}

func TestScenarioHarness(t *testing.T) {
	if os.Getenv("GC_SCENARIO") == "" {
		t.Skip("scenario suite skipped: set GC_SCENARIO=1 (or run `make scenario`)")
	}
	steadyName, burstName := "steady", "burst"
	if os.Getenv("GC_SCENARIO_FULL") != "" {
		steadyName, burstName = "steady-full", "burst-full"
	}

	bin := buildWebservice(t)
	httpAddr, brokerAddr, objectsAddr := freeAddr(t), freeAddr(t), freeAddr(t)
	ws, token := startWS(t, bin, httpAddr, brokerAddr, objectsAddr)
	defer func() {
		ws.Process.Kill()
		ws.Wait()
	}()

	client := sdk.NewClient(httpAddr, token)
	fleet := startFleet(t, client, brokerAddr)
	defer fleet.Stop()
	group := createGroup(t, httpAddr, token, fleet.eps)

	// Run outputs land next to GC_SCENARIO_OUT when set (so `make
	// scenario` leaves samples.csv + pprof captures inspectable), else in
	// the test temp dir.
	outRoot := t.TempDir()
	outPath := os.Getenv("GC_SCENARIO_OUT")
	if outPath != "" {
		outRoot = filepath.Join(filepath.Dir(outPath), "scenario-runs")
	}

	summaries := map[string]Summary{}
	results := map[string]*RunResult{}
	for _, name := range []string{steadyName, burstName} {
		p, ok := Builtin(name)
		if !ok {
			t.Fatalf("missing builtin profile %q", name)
		}
		res, err := Run(context.Background(), RunConfig{
			Service: httpAddr, Token: token, Target: group,
			Profile: p, OutDir: filepath.Join(outRoot, name), Logf: t.Logf,
		})
		if err != nil {
			t.Fatalf("run %s: %v", name, err)
		}
		s := res.Summary
		summaries[name] = s
		results[name] = res
		if !s.Valid || !s.Pass {
			t.Errorf("profile %s did not pass: valid=%v pass=%v reasons=%v",
				name, s.Valid, s.Pass, s.FailReasons)
		}
		if s.Samples < p.Gates.MinSamples {
			t.Errorf("profile %s: %d samples < %d", name, s.Samples, p.Gates.MinSamples)
		}
		if _, err := os.Stat(res.SamplesCSV); err != nil {
			t.Errorf("profile %s: samples.csv missing: %v", name, err)
		}
	}

	// The burst run must have exercised the headline gate and captured
	// burst-peak profiles from the live service.
	burst := summaries[burstName]
	foundRecovery := false
	for _, g := range burst.Gates {
		if g.Name == "backlog_recovery" {
			foundRecovery = true
			if !g.Pass {
				t.Errorf("backlog recovery gate failed: %+v", g)
			}
		}
	}
	if !foundRecovery {
		t.Error("burst run evaluated no backlog_recovery gate")
	}
	if burst.PprofError != "" {
		t.Errorf("pprof capture failed: %s", burst.PprofError)
	}
	if len(burst.PprofFiles) < 2 {
		t.Errorf("expected CPU + heap pprof captures, got %v", burst.PprofFiles)
	}
	for _, f := range burst.PprofFiles {
		fi, err := os.Stat(filepath.Join(outRoot, burstName, f))
		if err != nil || fi.Size() == 0 {
			t.Errorf("pprof capture %s empty or missing (err %v)", f, err)
		}
	}

	// The fleet's service-rate EWMA must have flowed end to end: heartbeat
	// load deltas -> obs.FleetStore -> /metrics/fleet federation gauge ->
	// sampler. Under steady 200 tasks/s the fleet-wide sum should be well
	// above zero by the back half of the run.
	sawRate := false
	for _, sm := range results[steadyName].Samples {
		if sm.ServiceRateSum > 10 {
			sawRate = true
			break
		}
	}
	if !sawRate {
		t.Error("no steady sample observed a positive fleet service-rate sum on /metrics/fleet")
	}

	if outPath != "" {
		record := map[string]any{
			"suite":    "scenario",
			"fleet":    map[string]any{"endpoints": fleetSize, "service_time_ms": simServiceTime.Milliseconds(), "policy": "p2c"},
			"profiles": summaries,
		}
		data, err := json.MarshalIndent(record, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("write %s: %v", outPath, err)
		}
		t.Logf("wrote %s", outPath)
	}
}
